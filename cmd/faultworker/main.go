// Command faultworker is the remote injection worker of a distributed
// campaign: it fetches the campaign config from a faultcampd
// coordinator, leases mask-range shards, executes each with the same
// scheduler machinery a single-node run uses (rebuilding masks,
// checkpoints and prune plans deterministically from the config), and
// streams results back while heartbeating its leases.
//
// Example:
//
//	faultworker -coordinator http://127.0.0.1:8400 -id w1
//	faultworker -addr-file coord.addr     # wait for faultcampd's handshake file
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/telemetry"
)

func main() {
	coordURL := flag.String("coordinator", "", "coordinator base URL (e.g. http://127.0.0.1:8400)")
	addrFile := flag.String("addr-file", "", "read the coordinator address from this file (polls until faultcampd writes it)")
	id := flag.String("id", "", "worker id (default host:pid)")
	poll := flag.Duration("poll", 0, "cap on the wait between lease polls (0: honor the coordinator's hint)")
	heartbeat := flag.Duration("heartbeat", 0, "lease heartbeat period (0: a third of the coordinator's lease TTL)")
	metricsAddr := flag.String("metrics-addr", "", "serve this worker's /metrics, /snapshot.json, /events and /debug/pprof on this address")
	snapJSON := flag.String("snapshot-json", "", "write this worker's final telemetry snapshot as JSON to this file on exit")
	quiet := flag.Bool("quiet", false, "suppress per-shard progress lines")
	flag.Parse()

	if *coordURL == "" && *addrFile == "" {
		fatal(fmt.Errorf("need -coordinator or -addr-file"))
	}
	if *coordURL == "" {
		url, err := waitForAddr(*addrFile, 30*time.Second)
		if err != nil {
			fatal(err)
		}
		*coordURL = url
	}
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	tel := telemetry.New()
	drain := make(chan struct{})
	opt := dist.WorkerOptions{
		ID:        *id,
		Resolve:   cli.Resolve,
		Golden:    core.NewGoldenCache(),
		Heartbeat: *heartbeat,
		Poll:      *poll,
		Telemetry: tel,
		Drain:     drain,
	}
	if !*quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *metricsAddr != "" {
		es := telemetry.NewEventStream(tel)
		tel.AddSink(es)
		srv, err := telemetry.ServeHandler(*metricsAddr, tel.HandlerWithEvents(es))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "faultworker metrics listening on http://%s\n", srv.Addr())
	}

	// Graceful shutdown: SIGTERM/SIGINT drains the worker — it finishes
	// and delivers its in-flight shard, posts its final snapshot to the
	// coordinator, and exits cleanly instead of abandoning the lease.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "faultworker: %v: draining (finishing in-flight shard)\n", sig)
		close(drain)
		// A second signal kills immediately.
		signal.Stop(sigCh)
	}()

	runErr := dist.RunWorker(context.Background(), strings.TrimSuffix(*coordURL, "/"), opt)
	if *snapJSON != "" {
		b, err := tel.Snapshot().JSON()
		if err == nil {
			err = os.WriteFile(*snapJSON, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultworker: writing snapshot:", err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// waitForAddr polls for the coordinator's handshake file.
func waitForAddr(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no coordinator address in %s after %s", path, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultworker:", err)
	os.Exit(1)
}
