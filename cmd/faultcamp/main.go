// Command faultcamp is the injection campaign controller (the second
// module of the injection framework, Fig. 1): it reads fault masks from
// a masks repository (or generates them inline), dispatches every mask
// to a fresh simulator instance through the injector dispatcher, and
// stores the raw run logs in a logs repository for classify to parse.
//
// Example:
//
//	faultcamp -tool mafin-x86 -bench qsort -structure lsq.data \
//	          -masks masksrepo -logs logsrepo
//	faultcamp -tool gefin-arm -bench sha -structure l1d.data -n 500 -logs logsrepo
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (mafin-x86, gefin-x86, gefin-arm)")
	bench := flag.String("bench", "qsort", "benchmark name")
	structure := flag.String("structure", "rf.int", "target structure")
	masksDir := flag.String("masks", "", "masks repository to read from (empty: generate inline)")
	n := flag.Int("n", 200, "inline mask count when -masks is empty")
	seed := flag.Int64("seed", 1, "inline generation seed")
	model := flag.String("model", "transient", "inline fault model")
	logsDir := flag.String("logs", "logsrepo", "logs repository directory")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	timeoutFactor := flag.Uint64("timeout-factor", 3, "cycle limit as a multiple of the fault-free run")
	noEarlyStop := flag.Bool("no-early-stop", false, "disable the §III.B early-stop optimizations")
	checkpoint := flag.Bool("checkpoint", false, "share the fault-free prefix via a drained-machine checkpoint")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	factory, err := sims.Factory(*tool, w)
	if err != nil {
		fatal(err)
	}
	key := fault.CampaignKey(*tool, *bench, *structure)

	var masks []fault.Mask
	if *masksDir != "" {
		repo, err := fault.NewRepository(*masksDir)
		if err != nil {
			fatal(err)
		}
		masks, err = repo.Load(key)
		if err != nil {
			fatal(err)
		}
	} else {
		golden, err := core.Golden(factory)
		if err != nil {
			fatal(err)
		}
		sim := factory()
		arr, ok := sim.Structures()[*structure]
		if !ok {
			fatal(fmt.Errorf("%s has no structure %q", sim.Name(), *structure))
		}
		masks, err = fault.Generate(fault.GeneratorSpec{
			Structure: *structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
			MaxCycle: golden.Cycles, Model: fault.Model(*model), Count: *n, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, err := core.RunCampaign(core.CampaignSpec{
		Tool: *tool, Benchmark: *bench, Structure: *structure,
		Masks: masks, Factory: factory,
		TimeoutFactor: *timeoutFactor, Workers: *workers,
		DisableEarlyStop: *noEarlyStop,
		UseCheckpoint:    *checkpoint,
	})
	if err != nil {
		fatal(err)
	}
	logs, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	if err := logs.Store(key, res); err != nil {
		fatal(err)
	}
	b := core.Parser{}.ParseAll(res.Records)
	fmt.Printf("campaign %s: %d injections in %.1fs\n", key, len(res.Records), time.Since(start).Seconds())
	fmt.Printf("  %s\n", b)
	fmt.Printf("  logs stored in %s\n", logs.Dir())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcamp:", err)
	os.Exit(1)
}
