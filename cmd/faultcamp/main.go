// Command faultcamp is the injection campaign controller (the second
// module of the injection framework, Fig. 1): it reads fault masks from
// a masks repository (or generates them inline), dispatches every mask
// to a fresh simulator instance through the injector dispatcher, and
// stores the raw run logs in a logs repository for classify to parse.
//
// While a campaign executes, the telemetry layer reports progress
// (runs/s, simulated Mcycles/s, worker utilization, outcome drift) on
// stderr, optionally serves live JSON/Prometheus snapshots plus pprof on
// -metrics-addr, and (-trace) writes a JSONL injection trace next to the
// logs.
//
// Example:
//
//	faultcamp -tool mafin-x86 -bench qsort -structure lsq.data \
//	          -masks masksrepo -logs logsrepo
//	faultcamp -tool gefin-arm -bench sha -structure l1d.data -n 500 -logs logsrepo \
//	          -trace -metrics-addr 127.0.0.1:8321
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (mafin-x86, gefin-x86, gefin-arm)")
	bench := flag.String("bench", "qsort", "benchmark name")
	structure := flag.String("structure", "rf.int", "target structure")
	masksDir := flag.String("masks", "", "masks repository to read from (empty: generate inline)")
	n := flag.Int("n", 200, "inline mask count when -masks is empty")
	seed := flag.Int64("seed", 1, "inline generation seed")
	model := flag.String("model", "transient", "inline fault model")
	logsDir := flag.String("logs", "logsrepo", "logs repository directory")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	timeoutFactor := flag.Uint64("timeout-factor", 3, "cycle limit as a multiple of the fault-free run")
	noEarlyStop := flag.Bool("no-early-stop", false, "disable the §III.B early-stop optimizations")
	checkpoint := flag.Bool("checkpoint", false, "share the fault-free prefix via a drained-machine checkpoint")
	pruneOn := flag.Bool("prune", false, "classify provably-masked faults from the golden-run liveness profile without simulating them")
	pruneVerify := flag.Int("prune-verify", 0, "simulate up to this many pruned masks and fail on a class mismatch (implies -prune)")
	ladder := flag.Int("ladder", 0, "number of evenly spaced checkpoint rungs (>= 2, with -checkpoint; 0: single legacy checkpoint)")
	quiet := flag.Bool("quiet", false, "suppress the periodic progress lines (the final summary stays)")
	progressEvery := flag.Duration("progress-every", 2*time.Second, "period of the progress lines")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /snapshot.json and /debug/pprof on this address (e.g. 127.0.0.1:8321)")
	traceOn := flag.Bool("trace", false, "write a JSONL injection trace (<key>.trace.jsonl) into the logs repository")
	snapshotJSON := flag.String("snapshot-json", "", "write the final telemetry snapshot as JSON to this file")
	journalOn := flag.Bool("journal", false, "journal every completed run to <key>.journal.jsonl (fsync'd) so a killed campaign can resume")
	resume := flag.Bool("resume", false, "load completed runs from the journal instead of re-simulating them (implies -journal)")
	runWallLimit := flag.Duration("run-wall-limit", 0, "per-run wall-clock backstop: classify a run as Timeout after this much host time (0: off)")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	factory, err := sims.Factory(*tool, w)
	if err != nil {
		fatal(err)
	}
	key := fault.CampaignKey(*tool, *bench, *structure)

	// The golden memoizer makes the fault-free reference a one-time cost:
	// inline mask generation and the campaign itself share a single run.
	cache := core.NewGoldenCache()
	var masks []fault.Mask
	var goldenRef *core.GoldenInfo
	if *masksDir != "" {
		repo, err := fault.NewRepository(*masksDir)
		if err != nil {
			fatal(err)
		}
		masks, err = repo.Load(key)
		if err != nil {
			fatal(err)
		}
	} else {
		golden, err := cache.Golden(*tool, *bench, factory)
		if err != nil {
			fatal(err)
		}
		entries, bits, ok, err := cache.Geometry(*tool, *bench, factory, *structure)
		if err != nil {
			fatal(err)
		}
		if !ok {
			fatal(fmt.Errorf("%s has no structure %q", golden.Tool, *structure))
		}
		masks, err = fault.Generate(fault.GeneratorSpec{
			Structure: *structure, Entries: entries, BitsPerEntry: bits,
			MaxCycle: golden.Cycles, Model: fault.Model(*model), Count: *n, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		goldenRef = &golden
	}

	logs, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}

	var journal *fault.Journal
	if *journalOn || *resume {
		journal, err = fault.OpenJournal(logs.JournalPath(key))
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
	}

	collector := telemetry.New()
	if *metricsAddr != "" {
		srv, err := collector.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics listening on http://%s (/metrics /snapshot.json /debug/pprof)\n", srv.Addr())
	}
	var trace *telemetry.TraceSink
	if *traceOn {
		trace = telemetry.NewTraceSink()
		collector.AddSink(trace)
	}
	var rep *telemetry.Reporter
	if !*quiet {
		rep = telemetry.StartReporter(collector, os.Stderr, *progressEvery)
	}

	start := time.Now()
	results, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: *tool, Benchmark: *bench, Structure: *structure,
		Masks: masks, Factory: factory,
		TimeoutFactor:    *timeoutFactor,
		DisableEarlyStop: *noEarlyStop,
		UseCheckpoint:    *checkpoint,
		Golden:           goldenRef,
	}}, core.MatrixOptions{
		Workers: *workers, Golden: cache, Telemetry: collector,
		Prune: *pruneOn, PruneVerify: *pruneVerify, CheckpointLadder: *ladder,
		Journal: journal, Resume: *resume, RunWallLimit: *runWallLimit,
	})
	if rep != nil {
		rep.Stop()
	}
	if err != nil {
		fatal(err)
	}
	res := results[0]
	if err := logs.Store(key, res); err != nil {
		fatal(err)
	}
	if trace != nil {
		f, err := logs.CreateTrace(key)
		if err != nil {
			fatal(err)
		}
		if err := trace.Flush(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	snap := collector.Snapshot()
	if *snapshotJSON != "" {
		b, err := snap.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snapshotJSON, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	b := core.Parser{}.ParseAll(res.Records)
	fmt.Printf("campaign %s: %d injections in %.1fs\n", key, len(res.Records), time.Since(start).Seconds())
	fmt.Printf("  %s\n", b)
	fmt.Printf("  logs stored in %s\n", logs.Dir())
	if trace != nil {
		fmt.Printf("  trace: %s (%d records)\n", logs.TracePath(key), trace.Len())
	}
	if snap.PrunedDead+snap.PrunedReplicated > 0 {
		fmt.Printf("  pruned: %d dead + %d replicated of %d masks (%.1f%%), %d ladder restores\n",
			snap.PrunedDead, snap.PrunedReplicated, snap.RunsDone, 100*snap.PruneRate, snap.LadderRestores)
	}
	if journal != nil {
		fmt.Printf("  journal: %s (%d runs appended this process", logs.JournalPath(key), journal.Appended())
		if snap.Resumed > 0 {
			fmt.Printf(", %d resumed", snap.Resumed)
		}
		fmt.Printf(")\n")
	}
	if snap.PanicsContained > 0 {
		fmt.Printf("  contained panics: %d\n", snap.PanicsContained)
	}
	fmt.Printf("summary: %s\n", snap.SummaryLine())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcamp:", err)
	os.Exit(1)
}
