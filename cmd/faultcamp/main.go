// Command faultcamp is the injection campaign controller (the second
// module of the injection framework, Fig. 1): it reads fault masks from
// a masks repository (or generates them inline), dispatches every mask
// to a fresh simulator instance through the injector dispatcher, and
// stores the raw run logs in a logs repository for classify to parse.
//
// Example:
//
//	faultcamp -tool mafin-x86 -bench qsort -structure lsq.data \
//	          -masks masksrepo -logs logsrepo
//	faultcamp -tool gefin-arm -bench sha -structure l1d.data -n 500 -logs logsrepo
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (mafin-x86, gefin-x86, gefin-arm)")
	bench := flag.String("bench", "qsort", "benchmark name")
	structure := flag.String("structure", "rf.int", "target structure")
	masksDir := flag.String("masks", "", "masks repository to read from (empty: generate inline)")
	n := flag.Int("n", 200, "inline mask count when -masks is empty")
	seed := flag.Int64("seed", 1, "inline generation seed")
	model := flag.String("model", "transient", "inline fault model")
	logsDir := flag.String("logs", "logsrepo", "logs repository directory")
	workers := flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	timeoutFactor := flag.Uint64("timeout-factor", 3, "cycle limit as a multiple of the fault-free run")
	noEarlyStop := flag.Bool("no-early-stop", false, "disable the §III.B early-stop optimizations")
	checkpoint := flag.Bool("checkpoint", false, "share the fault-free prefix via a drained-machine checkpoint")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	factory, err := sims.Factory(*tool, w)
	if err != nil {
		fatal(err)
	}
	key := fault.CampaignKey(*tool, *bench, *structure)

	// The golden memoizer makes the fault-free reference a one-time cost:
	// inline mask generation and the campaign itself share a single run.
	cache := core.NewGoldenCache()
	var masks []fault.Mask
	var goldenRef *core.GoldenInfo
	if *masksDir != "" {
		repo, err := fault.NewRepository(*masksDir)
		if err != nil {
			fatal(err)
		}
		masks, err = repo.Load(key)
		if err != nil {
			fatal(err)
		}
	} else {
		golden, err := cache.Golden(*tool, *bench, factory)
		if err != nil {
			fatal(err)
		}
		entries, bits, ok, err := cache.Geometry(*tool, *bench, factory, *structure)
		if err != nil {
			fatal(err)
		}
		if !ok {
			fatal(fmt.Errorf("%s has no structure %q", golden.Tool, *structure))
		}
		masks, err = fault.Generate(fault.GeneratorSpec{
			Structure: *structure, Entries: entries, BitsPerEntry: bits,
			MaxCycle: golden.Cycles, Model: fault.Model(*model), Count: *n, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		goldenRef = &golden
	}

	start := time.Now()
	results, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: *tool, Benchmark: *bench, Structure: *structure,
		Masks: masks, Factory: factory,
		TimeoutFactor:    *timeoutFactor,
		DisableEarlyStop: *noEarlyStop,
		UseCheckpoint:    *checkpoint,
		Golden:           goldenRef,
	}}, core.MatrixOptions{Workers: *workers, Golden: cache})
	if err != nil {
		fatal(err)
	}
	res := results[0]
	logs, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	if err := logs.Store(key, res); err != nil {
		fatal(err)
	}
	b := core.Parser{}.ParseAll(res.Records)
	fmt.Printf("campaign %s: %d injections in %.1fs\n", key, len(res.Records), time.Since(start).Seconds())
	fmt.Printf("  %s\n", b)
	fmt.Printf("  logs stored in %s\n", logs.Dir())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcamp:", err)
	os.Exit(1)
}
