// Command faultcamp is the injection campaign controller (the second
// module of the injection framework, Fig. 1): it reads fault masks from
// a masks repository (or generates them inline), dispatches every mask
// to a fresh simulator instance through the injector dispatcher, and
// stores the raw run logs in a logs repository for classify to parse.
//
// While a campaign executes, the telemetry layer reports progress
// (runs/s, simulated Mcycles/s, worker utilization, outcome drift) on
// stderr, optionally serves live JSON/Prometheus snapshots plus pprof on
// -metrics-addr, and (-trace) writes a JSONL injection trace next to the
// logs.
//
// Example:
//
//	faultcamp -tool mafin-x86 -bench qsort -structure lsq.data \
//	          -masks masksrepo -logs logsrepo
//	faultcamp -tool gefin-arm -bench sha -structure l1d.data -n 500 -logs logsrepo \
//	          -trace -metrics-addr 127.0.0.1:8321
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/fault"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (mafin-x86, gefin-x86, gefin-arm)")
	bench := flag.String("bench", "qsort", "benchmark name")
	structure := flag.String("structure", "rf.int", "target structure")
	masksDir := flag.String("masks", "", "masks repository to read from (empty: generate inline)")
	logsDir := flag.String("logs", "logsrepo", "logs repository directory")
	journalOn := flag.Bool("journal", false, "journal every completed run to <key>.journal.jsonl (fsync'd) so a killed campaign can resume")
	resume := flag.Bool("resume", false, "load completed runs from the journal instead of re-simulating them (implies -journal)")
	cf := cli.Campaign(flag.CommandLine, 200)
	tf := cli.Telemetry(flag.CommandLine, 2*time.Second)
	flag.Parse()

	key := fault.CampaignKey(*tool, *bench, *structure)
	cell := core.CampaignCell{Tool: *tool, Benchmark: *bench, Structure: *structure}
	if *masksDir != "" {
		repo, err := fault.NewRepository(*masksDir)
		if err != nil {
			fatal(err)
		}
		cell.Masks, err = repo.Load(key)
		if err != nil {
			fatal(err)
		}
	}
	cfg, err := cf.Config([]core.CampaignCell{cell})
	if err != nil {
		fatal(err)
	}

	logs, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	att := core.Attach{Golden: core.NewGoldenCache(), Resume: *resume}
	if *journalOn || *resume {
		att.Journal, err = fault.OpenJournal(logs.JournalPath(key))
		if err != nil {
			fatal(err)
		}
		defer att.Journal.Close()
	}

	obs, err := tf.Start(os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer obs.Close()
	obs.StartReporter(tf, os.Stderr)
	att.Telemetry = obs.Collector
	var dsink *divergence.Sink
	if cfg.Divergence {
		dsink = divergence.NewSink()
		att.Divergence = dsink
	}
	if obs.Tracer != nil {
		att.Tracer = obs.Tracer
		att.SpanWorker = "local"
	}

	start := time.Now()
	results, err := core.RunConfig(cfg, cli.Resolve, att)
	obs.StopReporter()
	if err != nil {
		fatal(err)
	}
	res := results[0]
	if err := logs.Store(key, res); err != nil {
		fatal(err)
	}
	tracePath, err := obs.FlushTrace(logs, key)
	if err != nil {
		fatal(err)
	}
	divPath, err := cli.FlushDivergence(dsink, logs, key)
	if err != nil {
		fatal(err)
	}
	spansPath, err := obs.FlushSpans(logs, key)
	if err != nil {
		fatal(err)
	}
	snap, err := obs.Finish(tf)
	if err != nil {
		fatal(err)
	}

	b := core.Parser{}.ParseAll(res.Records)
	fmt.Printf("campaign %s: %d injections in %.1fs\n", key, len(res.Records), time.Since(start).Seconds())
	fmt.Printf("  %s\n", b)
	if b.Weighted() {
		fmt.Printf("  weighted (Horvitz-Thompson): Masked=%5.2f%% vuln=%5.2f%% (weight sum %.1f)\n",
			b.WeightedPct(core.ClassMasked), b.WeightedVulnerability(), b.WeightSum)
	}
	if a := res.Adaptive; a != nil {
		switch {
		case a.Complete:
			fmt.Printf("  exhaustive census complete: %d of %d equivalence classes simulated, margin exact\n",
				a.SimulatedRuns, a.PlannedRuns)
		case a.StoppedEarly:
			fmt.Printf("  stopped early: %d of %d runs simulated, margin %.2f%% at %.0f%% confidence\n",
				a.SimulatedRuns, a.PlannedRuns, 100*a.EffectiveMargin, 100*a.Confidence)
		default:
			fmt.Printf("  ran to budget: %d runs, achieved margin %.2f%% at %.0f%% confidence\n",
				a.SimulatedRuns, 100*a.EffectiveMargin, 100*a.Confidence)
		}
	}
	fmt.Printf("  logs stored in %s\n", logs.Dir())
	if tracePath != "" {
		fmt.Printf("  trace: %s (%d records)\n", tracePath, obs.Trace.Len())
	}
	if divPath != "" {
		fmt.Printf("  divergence: %s (%d records, %d diverged)\n", divPath, dsink.Len(), snap.DivergedRuns)
	}
	if spansPath != "" {
		fmt.Printf("  spans: %s\n", spansPath)
	}
	if snap.PrunedDead+snap.PrunedReplicated > 0 {
		fmt.Printf("  pruned: %d dead + %d replicated of %d masks (%.1f%%), %d ladder restores\n",
			snap.PrunedDead, snap.PrunedReplicated, snap.RunsDone, 100*snap.PruneRate, snap.LadderRestores)
	}
	if att.Journal != nil {
		fmt.Printf("  journal: %s (%d runs appended this process", logs.JournalPath(key), att.Journal.Appended())
		if snap.Resumed > 0 {
			fmt.Printf(", %d resumed", snap.Resumed)
		}
		fmt.Printf(")\n")
	}
	if snap.PanicsContained > 0 {
		fmt.Printf("  contained panics: %d\n", snap.PanicsContained)
	}
	fmt.Printf("summary: %s\n", snap.SummaryLine())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcamp:", err)
	os.Exit(1)
}
