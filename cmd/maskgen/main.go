// Command maskgen is the fault mask generator (the first module of the
// injection framework, Fig. 1): it produces a random set of fault masks
// for one {tool, benchmark, structure} combination and stores them in a
// masks repository for faultcamp to consume.
//
// Example:
//
//	maskgen -tool gefin-x86 -bench qsort -structure l1d.data \
//	        -model transient -n 2000 -seed 7 -masks masksrepo
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (mafin-x86, gefin-x86, gefin-arm)")
	bench := flag.String("bench", "qsort", "benchmark name")
	structure := flag.String("structure", "rf.int", "target structure")
	model := flag.String("model", "transient", "fault model (transient, intermittent, permanent)")
	n := flag.Int("n", 2000, "number of masks (paper: 2000)")
	seed := flag.Int64("seed", 1, "generator seed")
	sites := flag.Int("sites", 1, "sites per mask (multi-bit studies)")
	duration := flag.Uint64("duration", 0, "intermittent window bound in cycles (0: a tenth of the run)")
	masksDir := flag.String("masks", "masksrepo", "masks repository directory")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	factory, err := sims.Factory(*tool, w)
	if err != nil {
		fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		fatal(err)
	}
	sim := factory()
	arr, ok := sim.Structures()[*structure]
	if !ok {
		fatal(fmt.Errorf("%s has no structure %q; available: %v",
			sim.Name(), *structure, names(core.Geometries(sim))))
	}
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: *structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: golden.Cycles, Model: fault.Model(*model),
		Count: *n, Seed: *seed, SitesPerMask: *sites, Duration: *duration,
	})
	if err != nil {
		fatal(err)
	}
	repo, err := fault.NewRepository(*masksDir)
	if err != nil {
		fatal(err)
	}
	key := fault.CampaignKey(*tool, *bench, *structure)
	if err := repo.Store(key, masks); err != nil {
		fatal(err)
	}
	fmt.Printf("stored %d %s masks for %s (fault-free run: %d cycles) in %s\n",
		len(masks), *model, key, golden.Cycles, repo.Dir())
}

func names(gs []core.StructureGeom) []string {
	var out []string
	for _, g := range gs {
		out = append(out, g.Name)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maskgen:", err)
	os.Exit(1)
}
