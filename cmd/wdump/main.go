// Command wdump inspects a benchmark build: the image layout (sections,
// symbols, entry point) and, with -disasm, the full disassembly for
// either ISA. It is the debugging companion of the workload suite.
//
// Examples:
//
//	wdump -bench qsort -isa x86
//	wdump -bench sha -isa arm -disasm | head -40
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa/cisc"
	"repro/internal/isa/risc"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "qsort", "benchmark name")
	isaName := flag.String("isa", "x86", "target ISA (x86 or arm)")
	disasm := flag.Bool("disasm", false, "disassemble the text segment")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	tgt := asm.TargetCISC
	if *isaName == "arm" {
		tgt = asm.TargetRISC
	} else if *isaName != "x86" {
		fatal(fmt.Errorf("unknown ISA %q (x86 or arm)", *isaName))
	}
	img, err := w.Image(tgt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s / %s\n", w.Name, img.ISA)
	fmt.Printf("  entry  0x%06x\n", img.Entry)
	fmt.Printf("  text   0x%06x - 0x%06x (%6d bytes)\n",
		img.TextBase, img.TextBase+uint64(len(img.Text)), len(img.Text))
	fmt.Printf("  data   0x%06x - 0x%06x (%6d bytes)\n",
		img.DataBase, img.DataBase+uint64(len(img.Data)), len(img.Data))
	fmt.Printf("  bss    0x%06x - 0x%06x (%6d bytes)\n",
		img.BSSBase, img.BSSBase+img.BSSSize, img.BSSSize)
	fmt.Printf("  heap   0x%06x\n", img.HeapBase)

	fmt.Println("  functions:")
	type sym struct {
		name string
		addr uint64
	}
	var funcs []sym
	for n, a := range img.FuncAddrs {
		funcs = append(funcs, sym{n, a})
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].addr < funcs[j].addr })
	for _, s := range funcs {
		fmt.Printf("    0x%06x %s\n", s.addr, s.name)
	}
	fmt.Println("  data symbols:")
	var syms []sym
	for n, a := range img.Symbols {
		syms = append(syms, sym{n, a})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for _, s := range syms {
		fmt.Printf("    0x%06x %s\n", s.addr, s.name)
	}

	if !*disasm {
		return
	}
	fmt.Println("\ndisassembly:")
	funcAt := make(map[uint64]string)
	for n, a := range img.FuncAddrs {
		funcAt[a] = n
	}
	pc := img.TextBase
	end := img.TextBase + uint64(len(img.Text))
	for pc < end {
		if name, ok := funcAt[pc]; ok {
			fmt.Printf("\n<%s>:\n", name)
		}
		off := pc - img.TextBase
		var text string
		var n int
		if tgt == asm.TargetCISC {
			text, n = cisc.Disasm(img.Text[off:], pc)
		} else {
			text, n = risc.Disasm(img.Text[off:], pc)
		}
		if n == 0 {
			break
		}
		fmt.Printf("  %06x:  % -24x %s\n", pc, img.Text[off:off+uint64(n)], text)
		pc += uint64(n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wdump:", err)
	os.Exit(1)
}
