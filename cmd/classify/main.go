// Command classify is the parser (the third module of the injection
// framework, Fig. 1): it reads raw campaign logs from a logs repository
// and classifies every injection into the fault-effect classes of
// §III.A. Because the logs hold raw outcomes, the classification can be
// reconfigured — regrouped or coarsened — without re-running any
// campaign.
//
// Examples:
//
//	classify -logs logsrepo                       # all campaigns, six classes
//	classify -logs logsrepo -key mafin-x86__qsort__lsq.data -details
//	classify -logs logsrepo -coarse               # Masked vs NonMasked
//	classify -logs logsrepo -group-simcrash       # simulator crashes → Assert
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
)

func main() {
	logsDir := flag.String("logs", "logsrepo", "logs repository directory")
	key := flag.String("key", "", "single campaign key (default: all campaigns)")
	details := flag.Bool("details", false, "print sub-class details (false/true DUE, deadlock/livelock, crash kinds)")
	coarse := flag.Bool("coarse", false, "coarse-grained classification: Masked vs NonMasked")
	groupSim := flag.Bool("group-simcrash", false, "classify simulator crashes as Assert")
	flag.Parse()

	repo, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	var keys []string
	if *key != "" {
		keys = []string{*key}
	} else {
		keys, err = repo.Campaigns()
		if err != nil {
			fatal(err)
		}
		if len(keys) == 0 {
			fatal(fmt.Errorf("no campaigns in %s", repo.Dir()))
		}
	}
	parser := core.Parser{GroupSimCrashWithAssert: *groupSim, CoarseMaskedOnly: *coarse}
	for _, k := range keys {
		res, err := repo.Load(k)
		if err != nil {
			fatal(err)
		}
		b := parser.ParseAll(res.Records)
		fmt.Printf("%-45s %s\n", k, b)
		if *details {
			var ds []string
			for d, n := range b.Details {
				ds = append(ds, fmt.Sprintf("%s=%d", d, n))
			}
			sort.Strings(ds)
			fmt.Printf("%-45s details: %v (golden: %d cycles, %d instrs)\n",
				"", ds, res.Golden.Cycles, res.Golden.Committed)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
