// Command figures regenerates the tables and figures of the paper's
// evaluation (§IV): the classification Figures 2–6, the Table II–IV
// analogs, the §IV.A statistical sampling numbers, and the runtime
// statistics backing Remarks 1–11.
//
// Examples:
//
//	figures -sampling -table 2 -table 3 -table 4
//	figures -fig 3 -n 200 -seed 1
//	figures -all -n 2000 -logs logsrepo      # the paper-scale campaign
//	figures -remarks
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/report"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint(*l) }

func (l *intList) Set(v string) error {
	var n int
	if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
		return err
	}
	*l = append(*l, n)
	return nil
}

func main() {
	var figs, tables intList
	flag.Var(&figs, "fig", "figure to regenerate (2-6); repeatable")
	flag.Var(&tables, "table", "table to print (2, 3 or 4); repeatable")
	all := flag.Bool("all", false, "regenerate all five figures")
	sampling := flag.Bool("sampling", false, "print the statistical sampling numbers (§IV.A)")
	remarks := flag.Bool("remarks", false, "print the runtime statistics backing Remarks 1-11")
	benchCSV := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all ten)")
	toolCSV := flag.String("tools", "", "comma-separated tool subset (default: all three)")
	logsDir := flag.String("logs", "", "persist campaign logs to this repository directory")
	fromLogs := flag.String("from-logs", "", "rebuild figures from stored logs instead of re-running")
	csvDir := flag.String("csv", "", "also write one CSV per figure into this directory")
	summary := flag.Bool("summary", false, "print the §IV.C differential summary across the selected figures")
	groupSim := flag.Bool("group-simcrash", false, "classify simulator crashes as Assert")
	cf := cli.Campaign(flag.CommandLine, 200)
	tf := cli.Telemetry(flag.CommandLine, 5*time.Second)
	flag.Parse()

	obs, err := tf.Start(os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer obs.Close()

	// The shared campaign knobs arrive through the consolidated config
	// API; the figure specs supply the cells later, so the knob
	// cross-rules (stop margin domain, exhaustive/importance-sampling
	// exclusions) are validated against a representative probe cell.
	cfg := cf.Apply(nil)
	probe := cfg
	probe.Campaigns = []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}}
	if err := probe.Validate(); err != nil {
		fatal(err)
	}
	opt := report.OptionsFromConfig(cfg)
	opt.Parser = core.Parser{GroupSimCrashWithAssert: *groupSim}
	opt.Telemetry = obs.Collector
	opt.ProgressEvery = tf.ProgressEvery
	if *benchCSV != "" {
		opt.Benchmarks = strings.Split(*benchCSV, ",")
	}
	if *toolCSV != "" {
		opt.Tools = strings.Split(*toolCSV, ",")
	}
	if *logsDir != "" {
		repo, err := core.NewLogsRepo(*logsDir)
		if err != nil {
			fatal(err)
		}
		opt.Logs = repo
	}
	if obs.Trace != nil && opt.Logs == nil {
		fatal(fmt.Errorf("-trace requires -logs (the trace lives in the logs repository)"))
	}
	var progress io.Writer = os.Stderr
	if tf.Quiet {
		progress = nil
	}

	if *sampling {
		report.RenderSamplingTable(os.Stdout)
		fmt.Println()
	}
	for _, tb := range tables {
		switch tb {
		case 2:
			report.RenderConfigTable(os.Stdout)
		case 3:
			report.RenderFaultModels(os.Stdout)
		case 4:
			if err := report.RenderStructuresTable(os.Stdout); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("no table %d (have 2, 3, 4)", tb))
		}
		fmt.Println()
	}
	if *remarks {
		stats, err := report.GoldenStats(opt)
		if err != nil {
			fatal(err)
		}
		report.RenderRemarkStats(os.Stdout, stats)
		fmt.Println()
	}

	if *all {
		figs = nil
		for _, f := range report.Figures {
			figs = append(figs, f.ID)
		}
	}
	specs := make([]report.FigureSpec, 0, len(figs))
	for _, id := range figs {
		spec, err := report.FigureByID(id)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, spec)
	}
	var datasets []*report.FigureData
	if *fromLogs != "" {
		repo, err := core.NewLogsRepo(*fromLogs)
		if err != nil {
			fatal(err)
		}
		for _, spec := range specs {
			fd, err := report.LoadFigure(repo, spec, opt)
			if err != nil {
				fatal(err)
			}
			datasets = append(datasets, fd)
		}
	} else if len(specs) > 0 {
		// All requested figures run as one flattened campaign matrix:
		// one shared worker pool, one golden run per {tool, benchmark}.
		var err error
		datasets, err = report.RunFigures(specs, opt, progress)
		if err != nil {
			fatal(err)
		}
		tracePath, err := obs.FlushTrace(opt.Logs, "matrix")
		if err != nil {
			fatal(err)
		}
		if tracePath != "" {
			fmt.Fprintf(os.Stderr, "trace: %s (%d records)\n", tracePath, obs.Trace.Len())
		}
	}
	if _, err := obs.Finish(tf); err != nil {
		fatal(err)
	}
	for i, fd := range datasets {
		fd.Render(os.Stdout)
		fmt.Println()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, fmt.Sprintf("fig%d_%s.csv", specs[i].ID, specs[i].Structure)))
			if err != nil {
				fatal(err)
			}
			if err := fd.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if len(datasets) > 0 {
		// Prints nothing unless some cell ran under adaptive control.
		report.RenderAdaptiveTable(os.Stdout, datasets)
	}
	if *summary && len(datasets) > 0 {
		report.RenderDifferentialSummary(os.Stdout, datasets)
		fmt.Println()
		report.RenderDominantClasses(os.Stdout, datasets)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
