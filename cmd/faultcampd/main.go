// Command faultcampd is the distributed campaign coordinator: it plans
// a campaign config into mask-range shards, serves them to faultworker
// processes over HTTP/JSON with lease-based assignment (heartbeats,
// requeue on worker death, retry with backoff), journals completed runs
// as the exactly-once ledger, and merges the shard results into a logs
// repository — and, with -trace, a JSONL injection trace — byte-
// identical to a single-node faultcamp run of the same config.
//
// Example:
//
//	faultcampd -tool gefin-x86 -bench qsort -structure rf.int -n 500 \
//	           -logs logsrepo -listen 127.0.0.1:0 -addr-file coord.addr &
//	faultworker -addr-file coord.addr -id w1 &
//	faultworker -addr-file coord.addr -id w2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/divergence"
	"repro/internal/fault"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (single-cell mode)")
	bench := flag.String("bench", "qsort", "benchmark name (single-cell mode)")
	structure := flag.String("structure", "rf.int", "target structure (single-cell mode)")
	configPath := flag.String("config", "", "campaign config JSON file (overrides -tool/-bench/-structure and the campaign flags)")
	logsDir := flag.String("logs", "logsrepo", "logs repository directory for the merged results")
	journalOn := flag.Bool("journal", false, "journal every merged simulated run to <key>.journal.jsonl (fsync'd)")
	listen := flag.String("listen", "127.0.0.1:0", "coordinator listen address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (worker handshake)")
	shardSize := flag.Int("shard-size", 50, "masks per shard")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "shard lease TTL; a worker silent this long loses its shard")
	maxRetries := flag.Int("max-retries", 3, "requeue budget per shard before the campaign fails")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "delay before a requeued shard is reassigned (scaled by retry count)")
	fleetJSON := flag.String("fleet-json", "", "write the final fleet-aggregated snapshot (the /snapshot.json view) to this file")
	verbose := flag.Bool("verbose", false, "log lease grants, requeues and completions to stderr")
	cf := cli.Campaign(flag.CommandLine, 200)
	tf := cli.Telemetry(flag.CommandLine, 2*time.Second)
	flag.Parse()

	var cfg core.CampaignConfig
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
		}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
	} else {
		var err error
		cfg, err = cf.Config([]core.CampaignCell{{Tool: *tool, Benchmark: *bench, Structure: *structure}})
		if err != nil {
			fatal(err)
		}
	}
	// Fail fast on what is checkable without a simulator: unknown tools
	// and benchmarks die here, not on the first worker. Structure names
	// need golden-run geometry, so those surface via a worker's shard
	// error (which fails the campaign with the structure named).
	for i, cell := range cfg.Campaigns {
		if _, err := cli.Resolve(cell.Tool, cell.Benchmark); err != nil {
			fatal(fmt.Errorf("campaigns[%d]: %w", i, err))
		}
	}
	keys := cfg.Keys()

	logs, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	obs, err := tf.Start(os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer obs.Close()

	copt := dist.CoordinatorOptions{
		ShardSize:    *shardSize,
		LeaseTTL:     *leaseTTL,
		MaxRetries:   *maxRetries,
		RetryBackoff: *retryBackoff,
		Telemetry:    obs.Collector,
		Tracer:       obs.Tracer,
	}
	var dsink *divergence.Sink
	if cfg.Divergence {
		dsink = divergence.NewSink()
		copt.Divergence = dsink
	}
	if *verbose {
		copt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *journalOn {
		copt.JournalFor = func(key string) (*fault.Journal, error) {
			return fault.OpenJournal(logs.JournalPath(key))
		}
	}
	if cfg.StopMargin > 0 {
		// An adaptive campaign's coordinator settles the cancelled tail of
		// a stopped cell itself, which needs the cell's deterministic mask
		// population — built here exactly as every worker builds it.
		maskCache := core.NewGoldenCache()
		copt.MasksFor = func(campaign int) ([]fault.Mask, error) {
			specs, err := cfg.BuildSpecs(cli.Resolve, maskCache)
			if err != nil {
				return nil, err
			}
			return specs[campaign].Masks, nil
		}
	}
	coord, err := dist.New(cfg, copt)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: coord.ObsHandler(obs.Events)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "faultcampd listening on http://%s (%d campaigns, %d shards; /snapshot.json /metrics /fleet.json /events)\n",
		ln.Addr(), len(cfg.Campaigns), coord.Stats().Shards)
	if *addrFile != "" {
		// Write-then-rename so a polling worker never reads a torn file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}

	obs.StartReporterLine(tf, os.Stderr, coord.ProgressLine)
	start := time.Now()
	results, err := coord.Wait(context.Background())
	obs.StopReporter()
	if err != nil {
		fatal(err)
	}
	if *fleetJSON != "" {
		// The last shard's merge completes the campaign moments before
		// the delivering worker posts its final snapshot; wait for the
		// fleet to settle before freezing the aggregated view.
		if !coord.WaitFleetFinal(*leaseTTL) {
			fmt.Fprintln(os.Stderr, "faultcampd: fleet snapshot frozen before every worker posted its final state")
		}
		b, err := coord.FleetSnapshot().JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*fleetJSON, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	for i, res := range results {
		if err := logs.Store(keys[i], res); err != nil {
			fatal(err)
		}
	}
	traceKey := "matrix"
	if len(keys) == 1 {
		traceKey = keys[0]
	}
	tracePath, err := obs.FlushTrace(logs, traceKey)
	if err != nil {
		fatal(err)
	}
	divPath, err := cli.FlushDivergence(dsink, logs, traceKey)
	if err != nil {
		fatal(err)
	}
	spansPath, err := obs.FlushSpans(logs, traceKey)
	if err != nil {
		fatal(err)
	}
	snap, err := obs.Finish(tf)
	if err != nil {
		fatal(err)
	}

	st := coord.Stats()
	total := 0
	for _, res := range results {
		total += len(res.Records)
	}
	fmt.Printf("distributed campaign: %d injections across %d campaigns in %.1fs\n",
		total, len(results), time.Since(start).Seconds())
	fmt.Printf("  shards: %d completed (%d requeued, %d duplicate completions discarded)\n",
		st.Completed, st.Requeues, st.Duplicates)
	fmt.Printf("  logs stored in %s\n", logs.Dir())
	if tracePath != "" {
		fmt.Printf("  trace: %s (%d records)\n", tracePath, obs.Trace.Len())
	}
	if divPath != "" {
		fmt.Printf("  divergence: %s (%d records, %d diverged)\n", divPath, dsink.Len(), snap.DivergedRuns)
	}
	if spansPath != "" {
		fmt.Printf("  spans: %s\n", spansPath)
	}
	if *fleetJSON != "" {
		fmt.Printf("  fleet snapshot: %s (%d workers)\n", *fleetJSON, len(coord.Fleet()))
	}
	if *journalOn {
		for _, key := range keys {
			fmt.Printf("  journal: %s\n", logs.JournalPath(key))
		}
	}
	fmt.Printf("summary: %s\n", snap.SummaryLine())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcampd:", err)
	os.Exit(1)
}
