// Command faultcampd is the campaign service daemon: a durable,
// multi-tenant queue of fault-injection campaigns multiplexed over one
// elastic faultworker fleet. Campaigns are submitted over the
// versioned /v1 HTTP API (see internal/svc/api), spooled to disk so
// queued and running campaigns survive a daemon restart (running ones
// resume from their journals), and merged into a logs repository
// byte-identical to a single-node faultcamp run of the same config.
//
// Two modes:
//
//	faultcampd -service -logs logsrepo -listen 127.0.0.1:8400 \
//	           -tenants tenants.json &
//	faultworker -coordinator http://127.0.0.1:8400 -id w1 &
//	faultctl -addr http://127.0.0.1:8400 -token tok submit -config c.json
//
// runs the always-on service; without -service the daemon keeps its
// historical one-shot contract — plan one campaign, serve workers,
// merge, print the summary, exit — but implemented as a submission
// through the same public API the service exposes, so there is exactly
// one code path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/svc"
	"repro/internal/svc/api"
	"repro/internal/svc/client"
	"repro/internal/telemetry"
)

func main() {
	tool := flag.String("tool", "gefin-x86", "tool configuration (one-shot single-cell mode)")
	bench := flag.String("bench", "qsort", "benchmark name (one-shot single-cell mode)")
	structure := flag.String("structure", "rf.int", "target structure (one-shot single-cell mode)")
	configPath := flag.String("config", "", "campaign config JSON file (overrides -tool/-bench/-structure and the campaign flags)")
	logsDir := flag.String("logs", "logsrepo", "logs repository directory for the merged results")
	journalOn := flag.Bool("journal", false, "journal every merged simulated run to <key>.journal.jsonl (fsync'd; required for restart-resume)")
	listen := flag.String("listen", "127.0.0.1:0", "service listen address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (worker handshake)")
	shardSize := flag.Int("shard-size", 50, "masks per shard")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "shard lease TTL; a worker silent this long loses its shard")
	maxRetries := flag.Int("max-retries", 3, "requeue budget per shard before the campaign fails")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "delay before a requeued shard is reassigned (scaled by retry count)")
	fleetJSON := flag.String("fleet-json", "", "write the final fleet-aggregated snapshot (the /v1/snapshot.json view) to this file")
	verbose := flag.Bool("verbose", false, "log scheduling, lease grants, requeues and completions to stderr")

	service := flag.Bool("service", false, "run as the always-on multi-campaign service instead of one-shot mode")
	spoolDir := flag.String("spool", "", "campaign spool directory (default <logs>/.spool); the durable queue state")
	indexDir := flag.String("index", "", "result index directory (default <logs>/.index); finished campaigns' outcome tables")
	tenantsPath := flag.String("tenants", "", "tenant JSON file: [{\"name\",\"token\",\"max_active\"}, ...] (default: open access)")
	maxActive := flag.Int("max-active", 4, "campaigns running concurrently across all tenants (-service)")
	maxQueued := flag.Int("max-queued-per-tenant", 0, "live campaigns one tenant may hold, 0 = unlimited (-service)")

	cf := cli.Campaign(flag.CommandLine, 200)
	tf := cli.Telemetry(flag.CommandLine, 2*time.Second)
	flag.Parse()

	logs, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	if *spoolDir == "" {
		*spoolDir = filepath.Join(*logsDir, ".spool")
	}
	if *indexDir == "" {
		*indexDir = filepath.Join(*logsDir, ".index")
	}
	spool, err := svc.OpenSpool(*spoolDir)
	if err != nil {
		fatal(err)
	}
	index, err := fault.NewResultIndex(*indexDir)
	if err != nil {
		fatal(err)
	}
	tenants, err := loadTenants(*tenantsPath)
	if err != nil {
		fatal(err)
	}

	opt := svc.Options{
		Logs:               logs,
		Spool:              spool,
		Index:              index,
		Resolve:            cli.Resolve,
		Tenants:            tenants,
		MaxActive:          *maxActive,
		MaxQueuedPerTenant: *maxQueued,
		ShardSize:          *shardSize,
		LeaseTTL:           *leaseTTL,
		MaxRetries:         *maxRetries,
		RetryBackoff:       *retryBackoff,
		ExitWhenIdle:       !*service,
	}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s, err := svc.New(opt)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	if *addrFile != "" {
		// Write-then-rename so a polling worker never reads a torn file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatal(err)
		}
	}
	if tf.MetricsAddr != "" {
		msrv, err := telemetry.ServeHandler(tf.MetricsAddr, s.Handler())
		if err != nil {
			fatal(err)
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "faultcampd metrics listening on http://%s\n", msrv.Addr())
	}

	if *service {
		runService(s, ln, spool.Dir())
		return
	}
	runOneShot(s, ln, oneShotArgs{
		tool: *tool, bench: *bench, structure: *structure,
		configPath: *configPath, journal: *journalOn,
		fleetJSON: *fleetJSON, leaseTTL: *leaseTTL,
		logs: logs, cf: cf, tf: tf,
	})
}

// runService serves the campaign queue until SIGTERM/SIGINT. Running
// campaigns are deliberately NOT cancelled on shutdown: their spool
// entries stay live, so the next daemon on the same spool re-queues
// and resumes them from their journals.
func runService(s *svc.Service, ln net.Listener, spoolDir string) {
	fmt.Fprintf(os.Stderr, "faultcampd service listening on http://%s (spool %s)\n", ln.Addr(), spoolDir)
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "faultcampd: %v: shutting down (queued and running campaigns stay spooled)\n", sig)
	s.Close()
}

type oneShotArgs struct {
	tool, bench, structure string
	configPath             string
	journal                bool
	fleetJSON              string
	leaseTTL               time.Duration
	logs                   *core.LogsRepo
	cf                     *cli.CampaignFlags
	tf                     *cli.TelemetryFlags
}

// runOneShot is the historical faultcampd contract — one campaign,
// exit when merged — reimplemented as a submit-then-wait through the
// service's own public /v1 API, so the one-shot and service paths
// cannot drift.
func runOneShot(s *svc.Service, ln net.Listener, a oneShotArgs) {
	var cfg core.CampaignConfig
	if a.configPath != "" {
		data, err := os.ReadFile(a.configPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", a.configPath, err))
		}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
	} else {
		var err error
		cfg, err = a.cf.Config([]core.CampaignCell{{Tool: a.tool, Benchmark: a.bench, Structure: a.structure}})
		if err != nil {
			fatal(err)
		}
	}
	keys := cfg.Keys()

	ctx := context.Background()
	cl := client.New("http://" + ln.Addr().String())
	start := time.Now()
	st, err := cl.Submit(ctx, api.SubmitRequest{
		Name: "one-shot",
		Options: api.SubmitOptions{
			Trace:   a.tf.Trace,
			Spans:   a.tf.Spans,
			Journal: a.journal,
			Flat:    true,
		},
		Config: cfg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "faultcampd listening on http://%s (%d campaigns, %d shards; /snapshot.json /metrics /fleet.json /events)\n",
		ln.Addr(), len(cfg.Campaigns), st.Shards)

	var rep *telemetry.Reporter
	if !a.tf.Quiet {
		rep = telemetry.StartReporterFunc(os.Stderr, a.tf.ProgressEvery, func() string {
			snap, err := cl.Snapshot(ctx, st.ID)
			if err != nil {
				return ""
			}
			return snap.ProgressLine()
		})
	}
	final, err := cl.Wait(ctx, st.ID, 200*time.Millisecond)
	if rep != nil {
		rep.Stop()
	}
	if err != nil {
		fatal(err)
	}
	if final.State != api.StateDone {
		fatal(fmt.Errorf("campaign %s: %s", final.State, final.Error))
	}
	// The last shard's merge finishes the campaign moments before its
	// worker hears "done" on the next lease poll; drain the fleet before
	// tearing the listener down so no worker is stranded mid-retry.
	settled := s.WaitFleetFinal(a.leaseTTL)
	if a.fleetJSON != "" {
		if !settled {
			fmt.Fprintln(os.Stderr, "faultcampd: fleet snapshot frozen before every worker posted its final state")
		}
		b, err := s.FleetSnapshot().JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(a.fleetJSON, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	snap, err := cl.Snapshot(ctx, st.ID)
	if err != nil {
		fatal(err)
	}
	if a.tf.SnapshotJSON != "" {
		b, err := snap.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(a.tf.SnapshotJSON, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	akey := "matrix"
	if len(keys) == 1 {
		akey = keys[0]
	}
	total := final.Masks
	fmt.Printf("distributed campaign: %d injections across %d campaigns in %.1fs\n",
		total, len(cfg.Campaigns), time.Since(start).Seconds())
	fmt.Printf("  shards: %d completed (%d requeued, %d duplicate completions discarded)\n",
		final.ShardsCompleted, final.Requeues, final.Duplicates)
	fmt.Printf("  logs stored in %s\n", a.logs.Dir())
	if a.tf.Trace {
		fmt.Printf("  trace: %s (%d records)\n", a.logs.TracePath(akey), total)
	}
	if cfg.Divergence {
		fmt.Printf("  divergence: %s (%d records, %d diverged)\n",
			a.logs.DivergencePath(akey), total, snap.DivergedRuns)
	}
	if a.tf.Spans {
		fmt.Printf("  spans: %s\n", a.logs.SpansPath(akey))
	}
	if a.fleetJSON != "" {
		fmt.Printf("  fleet snapshot: %s (%d workers)\n", a.fleetJSON, len(s.Fleet()))
	}
	if a.journal {
		for _, key := range keys {
			fmt.Printf("  journal: %s\n", a.logs.JournalPath(key))
		}
	}
	fmt.Printf("summary: %s\n", snap.SummaryLine())
	s.Close()
}

// loadTenants parses the tenant credential file: a JSON array of
// {"name", "token", "max_active"} objects. An empty path means open
// access (every request acts as the anonymous tenant).
func loadTenants(path string) ([]svc.Tenant, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw []struct {
		Name      string `json:"name"`
		Token     string `json:"token"`
		MaxActive int    `json:"max_active"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(raw) == 0 {
		return nil, errors.New("tenants file is empty; omit -tenants for open access")
	}
	ts := make([]svc.Tenant, len(raw))
	for i, t := range raw {
		ts[i] = svc.Tenant{Name: t.Name, Token: t.Token, MaxActive: t.MaxActive}
	}
	return ts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcampd:", err)
	os.Exit(1)
}
