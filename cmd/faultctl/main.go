// Command faultctl is the operator CLI of the faultcampd campaign
// service: submit, watch, cancel and query campaigns over the /v1 HTTP
// API with a tenant bearer token.
//
// Examples:
//
//	faultctl -addr http://127.0.0.1:8400 -token tok-alice \
//	         submit -config campaign.json -journal -trace
//	faultctl -addr http://127.0.0.1:8400 -token tok-alice list
//	faultctl -addr http://127.0.0.1:8400 -token tok-alice wait c00000
//	faultctl -addr http://127.0.0.1:8400 -token tok-alice results c00000
//
// submit prints the new campaign's ID (and nothing else) on stdout;
// status prints "id state done/shards masks"; wait blocks until the
// campaign is terminal and prints the final state.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/svc/api"
	"repro/internal/svc/client"
)

func main() {
	g := flag.NewFlagSet("faultctl", flag.ExitOnError)
	addr := g.String("addr", "", "service base URL (e.g. http://127.0.0.1:8400)")
	addrFile := g.String("addr-file", "", "read the service address from this file (polls until faultcampd writes it)")
	token := g.String("token", "", "tenant API token (sent as a Bearer credential)")
	g.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: faultctl [-addr URL | -addr-file FILE] [-token TOK] <command> [args]")
		fmt.Fprintln(os.Stderr, "commands: submit, list, status, cancel, results, snapshot, wait")
		g.PrintDefaults()
	}
	g.Parse(os.Args[1:])
	args := g.Args()
	if len(args) == 0 {
		g.Usage()
		os.Exit(2)
	}
	base, err := resolveAddr(*addr, *addrFile)
	if err != nil {
		fatal(err)
	}
	cl := client.New(base, client.WithToken(*token))
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		cmdSubmit(ctx, cl, rest)
	case "list":
		cmdList(ctx, cl)
	case "status":
		st, err := cl.Get(ctx, oneID(cmd, rest))
		if err != nil {
			fatal(err)
		}
		printStatus(st)
	case "cancel":
		st, err := cl.Cancel(ctx, oneID(cmd, rest))
		if err != nil {
			fatal(err)
		}
		printStatus(st)
	case "results":
		res, err := cl.Results(ctx, oneID(cmd, rest))
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	case "snapshot":
		snap, err := cl.Snapshot(ctx, oneID(cmd, rest))
		if err != nil {
			fatal(err)
		}
		b, err := snap.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(b, '\n'))
	case "wait":
		fs := flag.NewFlagSet("faultctl wait", flag.ExitOnError)
		poll := fs.Duration("poll", 500*time.Millisecond, "status poll period")
		fs.Parse(rest)
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("usage: faultctl wait [-poll D] <campaign-id>"))
		}
		final, err := cl.Wait(ctx, fs.Arg(0), *poll)
		if err != nil {
			fatal(err)
		}
		fmt.Println(final.State)
	default:
		fatal(fmt.Errorf("unknown command %q (want submit, list, status, cancel, results, snapshot or wait)", cmd))
	}
}

func cmdSubmit(ctx context.Context, cl *client.Client, args []string) {
	fs := flag.NewFlagSet("faultctl submit", flag.ExitOnError)
	configPath := fs.String("config", "", "campaign config JSON file (required)")
	name := fs.String("name", "", "human label for the campaign")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	trace := fs.Bool("trace", false, "record the JSONL injection trace")
	spans := fs.Bool("spans", false, "record the JSONL span trace")
	journal := fs.Bool("journal", false, "journal merged runs (required for restart-resume)")
	artifactKey := fs.String("artifact-key", "", "override the trace/spans/divergence file stem")
	wait := fs.Bool("wait", false, "block until the campaign is terminal; exit nonzero unless it is done")
	fs.Parse(args)
	if *configPath == "" {
		fatal(fmt.Errorf("submit: -config is required"))
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	var cfg core.CampaignConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
	}
	st, err := cl.Submit(ctx, api.SubmitRequest{
		Name:     *name,
		Priority: *priority,
		Options: api.SubmitOptions{
			Trace:       *trace,
			Spans:       *spans,
			Journal:     *journal,
			ArtifactKey: *artifactKey,
		},
		Config: cfg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(st.ID)
	if *wait {
		final, err := cl.Wait(ctx, st.ID, 500*time.Millisecond)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "faultctl:", st.ID, final.State)
		if final.State != api.StateDone {
			os.Exit(1)
		}
	}
}

func cmdList(ctx context.Context, cl *client.Client) {
	list, err := cl.List(ctx)
	if err != nil {
		fatal(err)
	}
	for _, st := range list.Campaigns {
		fmt.Printf("%s\t%s\t%s\t%d/%d\t%s\n", st.ID, st.Tenant, st.State, st.ShardsCompleted, st.Shards, st.Name)
	}
}

func printStatus(st api.CampaignStatus) {
	fmt.Printf("%s %s %d/%d %d\n", st.ID, st.State, st.ShardsCompleted, st.Shards, st.Masks)
}

func oneID(cmd string, args []string) string {
	if len(args) != 1 {
		fatal(fmt.Errorf("usage: faultctl %s <campaign-id>", cmd))
	}
	return args[0]
}

// resolveAddr picks the service base URL from -addr or polls the
// -addr-file handshake file faultcampd writes once listening.
func resolveAddr(addr, addrFile string) (string, error) {
	if addr != "" {
		return strings.TrimSuffix(addr, "/"), nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("need -addr or -addr-file")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			if a := strings.TrimSpace(string(data)); a != "" {
				return a, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no service address in %s after 30s", addrFile)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultctl:", err)
	os.Exit(1)
}
