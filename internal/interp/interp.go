// Package interp is the functional reference model: it executes a linked
// program image instruction-by-instruction with architectural semantics
// only (no pipeline, no caches). The test suites use it to validate the
// assembler back-ends and the workloads, and to cross-check that both
// microarchitectural simulators compute exactly the same program outputs
// in fault-free runs.
package interp

import (
	"encoding/binary"
	"math"

	"repro/internal/asm"
	"repro/internal/handoff"
	"repro/internal/isa"
	"repro/internal/isa/cisc"
	"repro/internal/isa/risc"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// Outcome describes how a functional run ended.
type Outcome uint8

const (
	// Completed means the program called exit.
	Completed Outcome = iota
	// ProcessCrash means a fatal exception killed the program.
	ProcessCrash
	// SystemCrash means the kernel panicked.
	SystemCrash
	// StepLimit means the run exceeded the instruction budget.
	StepLimit
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case ProcessCrash:
		return "process-crash"
	case SystemCrash:
		return "system-crash"
	case StepLimit:
		return "step-limit"
	default:
		return "unknown"
	}
}

// Result is the outcome of a functional run.
type Result struct {
	Outcome  Outcome
	ExitCode uint64
	Output   []byte
	Steps    uint64 // macro-instructions executed
	Uops     uint64 // micro-ops executed
	// FatalExc is the exception that ended a crashed run.
	FatalExc isa.Exception
	// Events are the recoverable exceptions recorded by the kernel.
	Events []kernel.Event
}

// Machine is a functional machine instance. It is resumable: run stops
// at instruction boundaries, so a machine can execute in slices
// (Continue), be captured as an architectural handoff.State, or be
// seeded from one taken on a cycle-accurate core.
type Machine struct {
	img  *asm.Image
	dec  isa.Decoder
	mem  *mem.Memory
	kern kernel.Kernel

	pc   uint64
	regs [isa.NumIntRegs]uint64
	fp   [isa.NumFPRegs]float64

	// steps and uops count macro-instructions and micro-ops executed
	// since machine birth; Seed initializes steps to the committed count
	// of the source state so step stamps keep a single time base.
	steps uint64
	uops  uint64

	// Dispatch state hoisted out of the per-step loop: the fetch buffer
	// (so Continue slices don't churn allocations), the decoder's
	// alignment policy, the shared per-image predecode table, and a
	// scratch Inst for slow-path decodes.
	buf        []byte
	alignCheck bool
	cache      *decodeCache
	scratch    isa.Inst

	// Per-machine decode-cache counters, flushed to the package totals
	// when a run slice returns so the hot loop stays contention-free.
	decHits, decMisses uint64
}

// newMachine builds the decoder/memory shell shared by New and Seed.
func newMachine(img *asm.Image) *Machine {
	m := &Machine{img: img, mem: mem.New()}
	switch img.ISA {
	case "arm":
		m.dec = risc.Decoder{}
	default:
		m.dec = cisc.Decoder{}
	}
	m.mem.SetTextEnd(img.TextBase + uint64(len(img.Text)))
	m.buf = make([]byte, m.dec.MaxInstLen())
	m.alignCheck = m.dec.Name() == "arm"
	m.cache = cacheFor(img)
	return m
}

// DisableDecodeCache forces every dispatch through the slow
// Fetch+Decode path. The -no-decode-cache knob and the equivalence
// tests use it to produce the reference behaviour the cached path must
// match byte for byte.
func (m *Machine) DisableDecodeCache() { m.cache = nil }

// New builds a functional machine for the image.
func New(img *asm.Image) *Machine {
	m := newMachine(img)
	m.mem.Load(img.TextBase, img.Text)
	m.mem.Load(img.DataBase, img.Data)
	m.pc = img.Entry
	m.regs[isa.SP] = mem.StackTop
	return m
}

// Seed builds a functional machine resuming from an architectural state
// captured on another tier. The image must be the one the state was
// produced from (it supplies the decoder and the text bounds; the text
// bytes themselves arrive with the memory snapshot).
func Seed(img *asm.Image, st *handoff.State) *Machine {
	m := newMachine(img)
	m.mem.RestorePaged(st.Mem)
	m.kern = st.Kern.Clone()
	m.pc = st.PC
	copy(m.regs[:], st.IntRegs[:])
	for i := range m.fp {
		m.fp[i] = math.Float64frombits(st.FPRegs[i])
	}
	m.steps = st.Committed
	return m
}

// Capture snapshots the machine as an architectural handoff state.
func (m *Machine) Capture() *handoff.State {
	st := &handoff.State{
		PC:        m.pc,
		Mem:       m.mem.SnapshotPaged(),
		Kern:      m.kern.Clone(),
		Cycle:     m.steps,
		Committed: m.steps,
	}
	copy(st.IntRegs[:], m.regs[:])
	for i := range m.fp {
		st.FPRegs[i] = math.Float64bits(m.fp[i])
	}
	return st
}

// Steps returns the macro-instructions executed since machine birth
// (including any committed count inherited through Seed).
func (m *Machine) Steps() uint64 { return m.steps }

// Release returns the machine's RAM to the boot pool. The machine is
// dead afterwards — any further use faults on the nil memory. Captures
// taken before the release stay valid; they never alias the RAM.
func (m *Machine) Release() {
	mem.Release(m.mem)
	m.mem = nil
}

func (m *Machine) get(r isa.Reg) uint64 {
	if r == isa.RegNone {
		return 0
	}
	if r.IsFP() {
		return math.Float64bits(m.fp[r.FPIndex()])
	}
	return m.regs[r]
}

func (m *Machine) set(r isa.Reg, v uint64) {
	if r == isa.RegNone {
		return
	}
	if r.IsFP() {
		m.fp[r.FPIndex()] = math.Float64frombits(v)
		return
	}
	m.regs[r] = v
}

func (m *Machine) getF(r isa.Reg) float64 { return m.fp[r.FPIndex()] }

func (m *Machine) setF(r isa.Reg, v float64) { m.fp[r.FPIndex()] = v }

// Run executes up to maxSteps macro-instructions.
func Run(img *asm.Image, maxSteps uint64) Result {
	m := New(img)
	return m.run(maxSteps)
}

// Continue executes up to maxSteps further macro-instructions on a
// resumable machine (fresh, part-run, or seeded from a handoff state).
// A StepLimit result leaves the machine at an instruction boundary from
// which Continue or Capture may be called again.
func (m *Machine) Continue(maxSteps uint64) Result {
	return m.run(maxSteps)
}

func (m *Machine) fatal(e isa.Exception) Result {
	return Result{Outcome: ProcessCrash, FatalExc: e, Output: m.kern.Output, Events: m.kern.Events}
}

// flushDecodeStats folds the machine-local decode counters into the
// package-wide totals and resets them.
func (m *Machine) flushDecodeStats() {
	if m.decHits > 0 {
		decodeHits.Add(m.decHits)
		m.decHits = 0
	}
	if m.decMisses > 0 {
		decodeMisses.Add(m.decMisses)
		m.decMisses = 0
	}
}

func (m *Machine) run(maxSteps uint64) Result {
	defer m.flushDecodeStats()

	// Steps and uops accumulate on the machine so execution can resume;
	// Result counts therefore report machine totals, which for a fresh
	// machine are exactly the per-run counts.
	for executed := uint64(0); executed < maxSteps; executed++ {
		// Wild control flow into the kernel region is a panic.
		if m.pc >= mem.KernelBase {
			m.kern.Panic(m.steps, m.pc, m.pc)
			return Result{Outcome: SystemCrash, Output: m.kern.Output,
				Steps: m.steps, Uops: m.uops, Events: m.kern.Events}
		}
		var in *isa.Inst
		if m.cache != nil {
			in = m.cache.lookup(m.pc, m.dec)
		}
		if in != nil {
			m.decHits++
		} else {
			m.decMisses++
			n, f := m.mem.Fetch(m.pc, m.buf)
			if f != mem.FaultNone || n == 0 {
				r := m.fatal(isa.ExcPageFault)
				r.Steps, r.Uops = m.steps, m.uops
				return r
			}
			if err := m.dec.Decode(m.buf[:n], m.pc, &m.scratch); err != nil {
				r := m.fatal(isa.ExcIllegalInstr)
				r.Steps, r.Uops = m.steps, m.uops
				return r
			}
			in = &m.scratch
		}
		next := m.pc + uint64(in.Len)

		for i, nu := 0, int(in.NUops); i < nu; i++ {
			u := &in.Uops[i]
			m.uops++
			exc, target, taken, stop := m.exec(u, in, m.steps, m.alignCheck)
			if exc != isa.ExcNone {
				switch kernel.SeverityOf(exc) {
				case kernel.SevRecoverable:
					// Recorded inside exec; continue.
				case kernel.SevPanic:
					return Result{Outcome: SystemCrash, Output: m.kern.Output,
						Steps: m.steps, Uops: m.uops, Events: m.kern.Events}
				default:
					r := m.fatal(exc)
					r.Steps, r.Uops = m.steps, m.uops
					return r
				}
			}
			if stop {
				m.steps++
				return Result{Outcome: Completed, ExitCode: m.kern.ExitCode,
					Output: m.kern.Output, Steps: m.steps, Uops: m.uops, Events: m.kern.Events}
			}
			if taken {
				next = target
			}
		}
		m.pc = next
		m.steps++
	}
	return Result{Outcome: StepLimit, Output: m.kern.Output, Steps: m.steps, Uops: m.uops, Events: m.kern.Events}
}

// exec executes one micro-op. It returns a raised exception, a branch
// target with taken flag, and whether the machine stopped.
func (m *Machine) exec(u *isa.Uop, in *isa.Inst, step uint64, alignCheck bool) (exc isa.Exception, target uint64, taken, stop bool) {
	switch u.Op {
	case isa.Nop:
		return

	case isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
		isa.Sar, isa.Mul, isa.Div, isa.Rem, isa.Mov, isa.Cmp:
		a := m.get(u.Src1)
		b := uint64(u.Imm)
		if !u.UsesImm && u.Src2 != isa.RegNone {
			b = m.get(u.Src2)
		}
		r := isa.EvalInt(u.Op, a, b, m.dec.DivZero())
		if r.DivZero {
			return isa.ExcDivZero, 0, false, false
		}
		m.set(u.Dst, r.Val)
		return

	case isa.Load, isa.FLoad:
		addr := m.get(u.Src1) + uint64(u.Imm)
		if alignCheck && addr%uint64(u.Size) != 0 {
			m.kern.Record(step, m.pc, isa.ExcAlignment, addr)
		}
		var tmp [8]byte
		if f := m.mem.Read(addr, tmp[:u.Size]); f != mem.FaultNone {
			return isa.ExcPageFault, 0, false, false
		}
		v := leLoad(tmp[:u.Size])
		if u.Op == isa.FLoad {
			m.setF(u.Dst, math.Float64frombits(v))
		} else {
			m.set(u.Dst, isa.ExtendLoad(v, u.Size, u.SignExt))
		}
		return

	case isa.Store, isa.FStore:
		addr := m.get(u.Src1) + uint64(u.Imm)
		if alignCheck && addr%uint64(u.Size) != 0 {
			m.kern.Record(step, m.pc, isa.ExcAlignment, addr)
		}
		var v uint64
		if u.Op == isa.FStore {
			v = math.Float64bits(m.getF(u.Src2))
		} else {
			v = m.get(u.Src2)
		}
		var tmp [8]byte
		leStore(tmp[:u.Size], v)
		if f := m.mem.Write(addr, tmp[:u.Size]); f != mem.FaultNone {
			if f == mem.FaultProt {
				return isa.ExcProtFault, 0, false, false
			}
			return isa.ExcPageFault, 0, false, false
		}
		return

	case isa.Jmp:
		return isa.ExcNone, in.Branch.Target, true, false
	case isa.JmpReg, isa.Ret:
		return isa.ExcNone, m.get(u.Src1), true, false
	case isa.BrFlags:
		if isa.EvalCond(u.Cond, m.get(u.Src1)) {
			return isa.ExcNone, in.Branch.Target, true, false
		}
		return
	case isa.BrCmp:
		if isa.EvalCond(u.Cond, isa.CmpFlags(m.get(u.Src1), m.get(u.Src2))) {
			return isa.ExcNone, in.Branch.Target, true, false
		}
		return
	case isa.Call:
		if u.Dst != isa.RegNone {
			m.set(u.Dst, uint64(u.Imm))
		}
		return isa.ExcNone, in.Branch.Target, true, false

	case isa.FAdd, isa.FSub, isa.FMul, isa.FDiv, isa.FMov:
		m.setF(u.Dst, isa.EvalFP(u.Op, m.getF(u.Src1), m.getF(u.Src2)))
		return
	case isa.FCvtIF:
		m.setF(u.Dst, float64(int64(m.get(u.Src1))))
		return
	case isa.FCvtFI:
		m.set(u.Dst, uint64(int64(m.getF(u.Src1))))
		return
	case isa.FMovToFP:
		m.setF(u.Dst, math.Float64frombits(m.get(u.Src1)))
		return
	case isa.FMovFromFP:
		m.set(u.Dst, math.Float64bits(m.getF(u.Src1)))
		return
	case isa.FCmp:
		m.set(u.Dst, isa.FCmpFlags(m.getF(u.Src1), m.getF(u.Src2)))
		return

	case isa.Syscall:
		stop = m.kern.Syscall(step, m.pc, m.get, m.set, m.mem.Read)
		if m.kern.Panicked {
			return isa.ExcKernelPanic, 0, false, false
		}
		return isa.ExcNone, 0, false, stop
	case isa.Halt:
		// HALT is privileged; in user mode it is an illegal instruction.
		return isa.ExcIllegalInstr, 0, false, false
	default:
		return isa.ExcIllegalInstr, 0, false, false
	}
}

func leLoad(b []byte) uint64 {
	switch len(b) {
	case 8:
		return binary.LittleEndian.Uint64(b)
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 1:
		return uint64(b[0])
	}
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func leStore(b []byte, v uint64) {
	switch len(b) {
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 1:
		b[0] = byte(v)
	default:
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
}
