package interp_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/workload"
)

// TestDecodeCacheEquivalence runs every workload on both ISAs with the
// predecoded-instruction cache on and off: the cache is a pure dispatch
// optimisation, so outcome, exit code, output, and the step and uop
// counts must be identical.
func TestDecodeCacheEquivalence(t *testing.T) {
	for _, w := range workload.All() {
		for _, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
			w, tgt := w, tgt
			t.Run(w.Name+"/"+tgt.String(), func(t *testing.T) {
				t.Parallel()
				img, err := w.Image(tgt)
				if err != nil {
					t.Fatal(err)
				}
				const budget = uint64(1) << 62
				cached := interp.New(img).Continue(budget)
				slow := interp.New(img)
				slow.DisableDecodeCache()
				ref := slow.Continue(budget)

				if cached.Outcome != ref.Outcome {
					t.Fatalf("outcome %v with cache, %v without", cached.Outcome, ref.Outcome)
				}
				if cached.ExitCode != ref.ExitCode {
					t.Fatalf("exit code %d with cache, %d without", cached.ExitCode, ref.ExitCode)
				}
				if !bytes.Equal(cached.Output, ref.Output) {
					t.Fatalf("output differs: %d bytes with cache, %d without", len(cached.Output), len(ref.Output))
				}
				if cached.Steps != ref.Steps || cached.Uops != ref.Uops {
					t.Fatalf("work differs: %d steps / %d uops with cache, %d / %d without",
						cached.Steps, cached.Uops, ref.Steps, ref.Uops)
				}
			})
		}
	}
}
