package interp

import (
	"sync"
	"sync/atomic"

	"repro/internal/asm"
	"repro/internal/isa"
)

// decodeCache is a per-image table of predecoded instructions, indexed
// by byte offset into the linked text. Entries are filled lazily: the
// first machine to execute a static instruction decodes it once from
// the image's immutable text bytes, and every later dynamic dispatch —
// on any machine sharing the image — reuses the decoded isa.Inst.
//
// Soundness rests on text immutability: mem.SetTextEnd write-protects
// [TextBase, textEnd) on every tier, so the RAM bytes a Fetch would
// return are always exactly img.Text. Any PC outside the cached text,
// and any decode that fails or would read past the text end, returns a
// cache miss and the caller takes the slow Fetch+Decode path, so
// wild-PC and faulting behaviour is byte-identical to the uncached
// interpreter.
type decodeCache struct {
	base  uint64 // image text base address
	text  []byte // the image's immutable linked text
	slots []atomic.Pointer[isa.Inst]
}

// caches maps each linked image to its predecode table. Images are
// linked once per {tool, benchmark} row and shared by every machine
// boot (sims.Factory), so the registry stays row-sized.
var caches sync.Map // *asm.Image -> *decodeCache

// decodeHits and decodeMisses accumulate, process-wide, the dynamic
// dispatches served from a predecode table vs. pushed through the
// byte-level decoder. Machines count locally and flush per run slice,
// so the hot loop never touches shared cache lines.
var decodeHits, decodeMisses atomic.Uint64

// DecodeCacheStats returns the process-wide decode-cache hit/miss
// totals. Telemetry polls it as a lazily-read source (the same pattern
// as the golden-cache counters), keeping the interpreter hot path free
// of any per-event instrumentation.
func DecodeCacheStats() (hits, misses uint64) {
	return decodeHits.Load(), decodeMisses.Load()
}

func cacheFor(img *asm.Image) *decodeCache {
	if c, ok := caches.Load(img); ok {
		return c.(*decodeCache)
	}
	c := &decodeCache{
		base:  img.TextBase,
		text:  img.Text,
		slots: make([]atomic.Pointer[isa.Inst], len(img.Text)),
	}
	actual, _ := caches.LoadOrStore(img, c)
	return actual.(*decodeCache)
}

// lookup returns the predecoded instruction at pc, decoding and
// memoizing it on first use. A nil return means the PC is outside the
// cached text or its decode cannot be proven to stay inside it; the
// caller must fall back to the slow path, which re-derives the exact
// uncached behaviour (page fault, illegal instruction, or an
// instruction straddling the text end). Racing fills decode the same
// immutable bytes into equal Inst values, so last-store-wins is
// harmless; executed instructions are shared read-only (exec never
// writes through its *isa.Inst).
func (c *decodeCache) lookup(pc uint64, dec isa.Decoder) *isa.Inst {
	off := pc - c.base
	if off >= uint64(len(c.slots)) {
		return nil
	}
	if in := c.slots[off].Load(); in != nil {
		return in
	}
	in := new(isa.Inst)
	if err := dec.Decode(c.text[off:], pc, in); err != nil {
		return nil
	}
	if off+uint64(in.Len) > uint64(len(c.text)) {
		return nil
	}
	c.slots[off].Store(in)
	return in
}
