package interp_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
)

func buildOne(t *testing.T, tgt asm.Target, build func(p *asm.Program)) *asm.Image {
	t.Helper()
	p := asm.NewProgram()
	build(p)
	img, err := p.Build(tgt)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestOutcomeNames(t *testing.T) {
	names := map[interp.Outcome]string{
		interp.Completed:    "completed",
		interp.ProcessCrash: "process-crash",
		interp.SystemCrash:  "system-crash",
		interp.StepLimit:    "step-limit",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d: %q", o, o.String())
		}
	}
	if interp.Outcome(99).String() != "unknown" {
		t.Error("out-of-range outcome name")
	}
}

func TestStepLimit(t *testing.T) {
	img := buildOne(t, asm.TargetCISC, func(p *asm.Program) {
		f := p.Func("main")
		f.Label("spin")
		f.Jmp("spin")
	})
	res := interp.Run(img, 1000)
	if res.Outcome != interp.StepLimit || res.Steps != 1000 {
		t.Fatalf("%v after %d steps", res.Outcome, res.Steps)
	}
}

func TestCrashOnUnmappedLoad(t *testing.T) {
	for _, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
		img := buildOne(t, tgt, func(p *asm.Program) {
			f := p.Func("main")
			f.MovImm(isa.R1, 0x500000) // beyond RAM
			f.Load(8, false, isa.R2, isa.R1, 0)
		})
		res := interp.Run(img, 1000)
		if res.Outcome != interp.ProcessCrash || res.FatalExc != isa.ExcPageFault {
			t.Fatalf("%v: %v/%v", tgt, res.Outcome, res.FatalExc)
		}
	}
}

func TestSystemCrashOnKernelJump(t *testing.T) {
	img := buildOne(t, asm.TargetRISC, func(p *asm.Program) {
		f := p.Func("main")
		f.MovImm(isa.R1, 0x300100)
		f.JmpReg(isa.R1)
	})
	res := interp.Run(img, 1000)
	if res.Outcome != interp.SystemCrash {
		t.Fatalf("%v", res.Outcome)
	}
}

func TestRunOffTextEndCrashes(t *testing.T) {
	// main without exit falls off the end of text.
	img := buildOne(t, asm.TargetCISC, func(p *asm.Program) {
		f := p.Func("main")
		f.Nop()
	})
	res := interp.Run(img, 1000)
	if res.Outcome != interp.ProcessCrash {
		t.Fatalf("%v", res.Outcome)
	}
}

func TestExitCodePropagates(t *testing.T) {
	img := buildOne(t, asm.TargetRISC, func(p *asm.Program) {
		f := p.Func("main")
		f.MovImm(isa.R0, 2)
		f.MovImm(isa.R1, 42)
		f.Syscall()
	})
	res := interp.Run(img, 1000)
	if res.Outcome != interp.Completed || res.ExitCode != 42 {
		t.Fatalf("%v exit %d", res.Outcome, res.ExitCode)
	}
}

func TestUopCountExceedsSteps(t *testing.T) {
	// CISC push/pop crack into multiple uops: Uops > Steps.
	img := buildOne(t, asm.TargetCISC, func(p *asm.Program) {
		f := p.Func("main")
		f.SubI(isa.SP, isa.SP, 16)
		f.MovImm(isa.R1, 7)
		f.Store(8, isa.R1, isa.SP, 0)
		f.Load(8, false, isa.R2, isa.SP, 0)
		f.AddI(isa.SP, isa.SP, 16)
		f.MovImm(isa.R0, 2)
		f.MovImm(isa.R1, 0)
		f.Syscall()
	})
	res := interp.Run(img, 1000)
	if res.Outcome != interp.Completed {
		t.Fatalf("%v", res.Outcome)
	}
	if res.Uops < res.Steps {
		t.Fatalf("uops %d < steps %d", res.Uops, res.Steps)
	}
}

func TestFullInstructionSurface(t *testing.T) {
	// One program touching every uop family the interpreter executes:
	// FP arithmetic and compares, conversions, raw-bit moves, all load
	// and store widths, indirect jumps and the flags paths.
	img := buildOne(t, asm.TargetCISC, func(p *asm.Program) {
		p.Bss("buf", 64)
		p.Bss("out", 8)
		f := p.Func("main")
		f.MovSym(isa.R10, "buf")
		f.FMovImm(isa.F0, 2.5)
		f.FMovImm(isa.F1, -4.25)
		f.FAdd(isa.F2, isa.F0, isa.F1)
		f.FSub(isa.F3, isa.F0, isa.F1)
		f.FMul(isa.F4, isa.F2, isa.F3)
		f.FDiv(isa.F5, isa.F4, isa.F0)
		f.FMov(isa.F6, isa.F5)
		f.FStore(isa.F6, isa.R10, 0)
		f.FLoad(isa.F0, isa.R10, 0)
		f.FBr(isa.CondLT, isa.F0, isa.F3, "less")
		f.Nop()
		f.Label("less")
		f.FCvtFI(isa.R1, isa.F4)
		f.FCvtIF(isa.F1, isa.R1)
		// All store widths.
		f.Store(1, isa.R1, isa.R10, 8)
		f.Store(2, isa.R1, isa.R10, 10)
		f.Store(4, isa.R1, isa.R10, 12)
		f.Store(8, isa.R1, isa.R10, 16)
		f.Load(1, true, isa.R2, isa.R10, 8)
		f.Load(2, false, isa.R3, isa.R10, 10)
		f.Load(4, true, isa.R4, isa.R10, 12)
		// Indirect jump through a function-local label is not
		// expressible; jump to a code address via the text base.
		f.Mul(isa.R5, isa.R2, isa.R3)
		f.Rem(isa.R5, isa.R5, isa.R4)
		f.MovSym(isa.R6, "out")
		f.Store(8, isa.R5, isa.R6, 0)
		f.MovImm(isa.R0, 1)
		f.MovSym(isa.R1, "out")
		f.MovImm(isa.R2, 8)
		f.Syscall()
		f.MovImm(isa.R0, 2)
		f.MovImm(isa.R1, 0)
		f.Syscall()
	})
	res := interp.Run(img, 100_000)
	if res.Outcome != interp.Completed || len(res.Output) != 8 {
		t.Fatalf("%v output %d bytes", res.Outcome, len(res.Output))
	}
}

func TestHaltIsPrivileged(t *testing.T) {
	img := buildOne(t, asm.TargetRISC, func(p *asm.Program) {
		f := p.Func("main")
		f.Halt()
	})
	res := interp.Run(img, 100)
	if res.Outcome != interp.ProcessCrash || res.FatalExc != isa.ExcIllegalInstr {
		t.Fatalf("%v/%v", res.Outcome, res.FatalExc)
	}
}
