// Package kernel is the thin full-system layer shared by both simulators
// and the functional reference interpreter: the syscall ABI, exception
// severity policy, and the simulated output file whose contents decide
// the Masked/SDC classification of every injection run.
//
// The paper's injectors are full-system: faults can surface as process
// crashes (the program is killed by an exception), system crashes (kernel
// panic) or detected-unrecoverable errors (the program completes but
// exceptions were recorded along the way). This package fixes those
// semantics in one place so the two simulators differ only
// microarchitecturally.
package kernel

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Syscall numbers of the kernel ABI. The number goes in R0, arguments in
// R1–R3, the result in R0.
const (
	// SysWrite appends R2 bytes at address R1 to the output file.
	SysWrite = 1
	// SysExit terminates the program with code R1.
	SysExit = 2
)

// Error return values (negated errno style).
const (
	errFault  = ^uint64(13) // EFAULT: bad buffer
	errNoSys  = ^uint64(37) // ENOSYS: unknown syscall
	errTooBig = ^uint64(26) // EFBIG: output file limit exceeded
)

// MaxOutput bounds the simulated output file; a fault that sends the
// program into a write loop hits this limit instead of exhausting host
// memory, and the overflow is recorded as an error event.
const MaxOutput = 1 << 20

// Severity classifies how the kernel reacts to an exception.
type Severity uint8

const (
	// SevRecoverable exceptions are recorded and execution continues;
	// a run that completes with any of these recorded is a DUE.
	SevRecoverable Severity = iota
	// SevFatal exceptions kill the simulated process (process crash).
	SevFatal
	// SevPanic exceptions take down the simulated kernel (system crash).
	SevPanic
)

// SeverityOf returns the kernel policy for an exception.
func SeverityOf(e isa.Exception) Severity {
	switch e {
	case isa.ExcAlignment, isa.ExcSyscallErr:
		return SevRecoverable
	case isa.ExcKernelPanic:
		return SevPanic
	default:
		return SevFatal
	}
}

// Event is one recorded exception.
type Event struct {
	Cycle uint64
	PC    uint64
	Exc   isa.Exception
	Info  uint64 // exception-specific detail (faulting address, syscall number, ...)
}

// RegGet reads an architectural register.
type RegGet func(r isa.Reg) uint64

// RegSet writes an architectural register.
type RegSet func(r isa.Reg, v uint64)

// MemReader reads user memory on behalf of the kernel. The two simulators
// bind it differently: the MARSS-like simulator reads main memory
// directly (the QEMU-hypervisor escape of the paper), while the Gem5-like
// simulator reads through its cache hierarchy.
type MemReader func(addr uint64, dst []byte) mem.Fault

// Kernel is the per-machine kernel state.
type Kernel struct {
	// Output is the simulated output file.
	Output []byte
	// Exited and ExitCode are set by SysExit.
	Exited   bool
	ExitCode uint64
	// Events are the recorded recoverable exceptions.
	Events []Event
	// Panicked is set when a SevPanic condition was raised.
	Panicked bool
}

// Clone returns a deep copy of the kernel state, used by simulator
// checkpointing.
func (k *Kernel) Clone() Kernel {
	c := *k
	c.Output = append([]byte(nil), k.Output...)
	c.Events = append([]Event(nil), k.Events...)
	return c
}

// Record logs a recoverable exception event.
func (k *Kernel) Record(cycle, pc uint64, exc isa.Exception, info uint64) {
	// Cap the log: a fault that turns the program into an exception
	// storm should not exhaust memory; the classification only needs
	// existence and kinds.
	if len(k.Events) < 4096 {
		k.Events = append(k.Events, Event{Cycle: cycle, PC: pc, Exc: exc, Info: info})
	}
}

// Panic marks a kernel panic (system crash).
func (k *Kernel) Panic(cycle, pc uint64, info uint64) {
	k.Panicked = true
	k.Record(cycle, pc, isa.ExcKernelPanic, info)
}

// Syscall executes the system call selected by R0 with architectural
// state accessed through get/set and user memory through read. It
// returns true when the machine should stop (exit or panic).
func (k *Kernel) Syscall(cycle, pc uint64, get RegGet, set RegSet, read MemReader) bool {
	num := get(isa.R0)
	switch num {
	case SysWrite:
		addr, n := get(isa.R1), get(isa.R2)
		if n > MaxOutput || len(k.Output)+int(n) > MaxOutput {
			k.Record(cycle, pc, isa.ExcSyscallErr, num)
			set(isa.R0, errTooBig)
			return false
		}
		buf := make([]byte, n)
		if f := read(addr, buf); f != mem.FaultNone {
			k.Record(cycle, pc, isa.ExcSyscallErr, num)
			set(isa.R0, errFault)
			return false
		}
		k.Output = append(k.Output, buf...)
		set(isa.R0, n)
		return false
	case SysExit:
		k.Exited = true
		k.ExitCode = get(isa.R1)
		return true
	default:
		// An unknown syscall number (often a corrupted R0) is
		// recorded and refused, like a real kernel's ENOSYS.
		k.Record(cycle, pc, isa.ExcSyscallErr, num)
		set(isa.R0, errNoSys)
		return false
	}
}

// HasDUE reports whether any recoverable exceptions were recorded, the
// condition that turns a completed run into a DUE.
func (k *Kernel) HasDUE() bool { return len(k.Events) > 0 }
