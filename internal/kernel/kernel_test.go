package kernel

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

type fakeMachine struct {
	regs map[isa.Reg]uint64
	mem  map[uint64]byte
}

func newFake() *fakeMachine {
	return &fakeMachine{regs: map[isa.Reg]uint64{}, mem: map[uint64]byte{}}
}

func (m *fakeMachine) get(r isa.Reg) uint64    { return m.regs[r] }
func (m *fakeMachine) set(r isa.Reg, v uint64) { m.regs[r] = v }
func (m *fakeMachine) read(addr uint64, dst []byte) mem.Fault {
	if addr < mem.NullPageEnd {
		return mem.FaultUnmapped
	}
	for i := range dst {
		dst[i] = m.mem[addr+uint64(i)]
	}
	return mem.FaultNone
}

func TestSeverityPolicy(t *testing.T) {
	cases := map[isa.Exception]Severity{
		isa.ExcAlignment:    SevRecoverable,
		isa.ExcSyscallErr:   SevRecoverable,
		isa.ExcKernelPanic:  SevPanic,
		isa.ExcIllegalInstr: SevFatal,
		isa.ExcDivZero:      SevFatal,
		isa.ExcPageFault:    SevFatal,
		isa.ExcProtFault:    SevFatal,
	}
	for exc, want := range cases {
		if got := SeverityOf(exc); got != want {
			t.Errorf("%v: %v, want %v", exc, got, want)
		}
	}
}

func TestWriteSyscall(t *testing.T) {
	var k Kernel
	m := newFake()
	m.regs[isa.R0] = SysWrite
	m.regs[isa.R1] = 0x2000
	m.regs[isa.R2] = 3
	m.mem[0x2000], m.mem[0x2001], m.mem[0x2002] = 'a', 'b', 'c'
	if stop := k.Syscall(1, 0x1000, m.get, m.set, m.read); stop {
		t.Fatal("write stopped the machine")
	}
	if string(k.Output) != "abc" || m.regs[isa.R0] != 3 {
		t.Fatalf("output %q, r0 %d", k.Output, m.regs[isa.R0])
	}
	if k.HasDUE() {
		t.Fatal("clean write recorded an event")
	}
}

func TestWriteSyscallBadBuffer(t *testing.T) {
	var k Kernel
	m := newFake()
	m.regs[isa.R0] = SysWrite
	m.regs[isa.R1] = 0x10 // guard page
	m.regs[isa.R2] = 8
	k.Syscall(5, 0x1000, m.get, m.set, m.read)
	if len(k.Output) != 0 {
		t.Fatal("output written from faulting buffer")
	}
	if !k.HasDUE() || k.Events[0].Exc != isa.ExcSyscallErr {
		t.Fatalf("events: %v", k.Events)
	}
	if int64(m.regs[isa.R0]) >= 0 {
		t.Fatalf("r0 = %d, want negative errno", int64(m.regs[isa.R0]))
	}
}

func TestWriteSyscallOutputLimit(t *testing.T) {
	var k Kernel
	m := newFake()
	m.regs[isa.R0] = SysWrite
	m.regs[isa.R1] = 0x2000
	m.regs[isa.R2] = MaxOutput + 1
	k.Syscall(0, 0, m.get, m.set, m.read)
	if len(k.Output) != 0 || !k.HasDUE() {
		t.Fatal("oversized write accepted")
	}
}

func TestExitSyscall(t *testing.T) {
	var k Kernel
	m := newFake()
	m.regs[isa.R0] = SysExit
	m.regs[isa.R1] = 7
	if stop := k.Syscall(0, 0, m.get, m.set, m.read); !stop {
		t.Fatal("exit did not stop")
	}
	if !k.Exited || k.ExitCode != 7 {
		t.Fatalf("exited %v code %d", k.Exited, k.ExitCode)
	}
}

func TestUnknownSyscall(t *testing.T) {
	var k Kernel
	m := newFake()
	m.regs[isa.R0] = 999
	if stop := k.Syscall(0, 0, m.get, m.set, m.read); stop {
		t.Fatal("unknown syscall stopped the machine")
	}
	if !k.HasDUE() || k.Events[0].Info != 999 {
		t.Fatalf("events: %v", k.Events)
	}
}

func TestPanic(t *testing.T) {
	var k Kernel
	k.Panic(10, 0x300000, 0x300000)
	if !k.Panicked {
		t.Fatal("not panicked")
	}
	if len(k.Events) != 1 || k.Events[0].Exc != isa.ExcKernelPanic {
		t.Fatalf("events: %v", k.Events)
	}
}

func TestEventLogCap(t *testing.T) {
	var k Kernel
	for i := 0; i < 10000; i++ {
		k.Record(uint64(i), 0, isa.ExcAlignment, 0)
	}
	if len(k.Events) > 4096 {
		t.Fatalf("event log unbounded: %d", len(k.Events))
	}
}
