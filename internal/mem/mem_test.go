package mem

import "testing"

func TestAddressMapInvariants(t *testing.T) {
	if TextBase != NullPageEnd {
		t.Error("text must start right after the guard page")
	}
	if StackTop != KernelBase {
		t.Error("stack must top out at the kernel boundary")
	}
	if KernelBase >= Size {
		t.Error("kernel region must fit in RAM")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	src := []byte{1, 2, 3, 4, 5}
	if f := m.Write(0x100000, src); f != FaultNone {
		t.Fatalf("write fault %v", f)
	}
	dst := make([]byte, 5)
	if f := m.Read(0x100000, dst); f != FaultNone {
		t.Fatalf("read fault %v", f)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d", i, dst[i])
		}
	}
	if m.Reads() != 1 || m.Writes() != 1 {
		t.Fatalf("counters %d/%d", m.Reads(), m.Writes())
	}
}

func TestGuardPage(t *testing.T) {
	m := New()
	buf := make([]byte, 8)
	if f := m.Read(0, buf); f != FaultUnmapped {
		t.Errorf("null read: %v", f)
	}
	if f := m.Read(0xFF8, buf); f != FaultUnmapped {
		t.Errorf("guard page straddle: %v", f)
	}
	if f := m.Write(0x10, buf); f != FaultUnmapped {
		t.Errorf("null write: %v", f)
	}
}

func TestOutOfRange(t *testing.T) {
	m := New()
	buf := make([]byte, 8)
	if f := m.Read(Size, buf); f != FaultUnmapped {
		t.Errorf("past end: %v", f)
	}
	if f := m.Read(Size-4, buf); f != FaultUnmapped {
		t.Errorf("straddle end: %v", f)
	}
	if f := m.Read(^uint64(0)-3, buf); f != FaultUnmapped {
		t.Errorf("wraparound: %v", f)
	}
}

func TestKernelRegionProtected(t *testing.T) {
	m := New()
	buf := make([]byte, 8)
	if f := m.Read(KernelBase, buf); f != FaultProt {
		t.Errorf("kernel read: %v", f)
	}
	if f := m.Write(KernelBase+0x1000, buf); f != FaultProt {
		t.Errorf("kernel write: %v", f)
	}
	if f := m.Read(KernelBase-8, buf); f != FaultNone {
		t.Errorf("stack top read: %v", f)
	}
	if f := m.Read(KernelBase-4, buf); f != FaultProt {
		t.Errorf("straddle into kernel: %v", f)
	}
}

func TestTextReadOnly(t *testing.T) {
	m := New()
	m.Load(TextBase, []byte{0xAA, 0xBB, 0xCC})
	m.SetTextEnd(TextBase + 3)
	buf := make([]byte, 2)
	if f := m.Read(TextBase, buf); f != FaultNone || buf[0] != 0xAA {
		t.Errorf("text read: %v %x", f, buf)
	}
	if f := m.Write(TextBase, buf); f != FaultProt {
		t.Errorf("text write: %v", f)
	}
	if f := m.Write(TextBase+3, buf); f != FaultNone {
		t.Errorf("post-text write: %v", f)
	}
}

func TestFetch(t *testing.T) {
	m := New()
	m.Load(TextBase, []byte{1, 2, 3, 4})
	m.SetTextEnd(TextBase + 4)
	buf := make([]byte, 10)
	n, f := m.Fetch(TextBase, buf)
	if f != FaultNone || n != 4 || buf[0] != 1 {
		t.Errorf("fetch: n=%d f=%v", n, f)
	}
	n, f = m.Fetch(TextBase+2, buf)
	if f != FaultNone || n != 2 || buf[0] != 3 {
		t.Errorf("tail fetch: n=%d f=%v buf0=%d", n, f, buf[0])
	}
	if _, f = m.Fetch(TextBase+4, buf); f == FaultNone {
		t.Error("fetch past text succeeded")
	}
	if _, f = m.Fetch(KernelBase+8, buf); f != FaultProt {
		t.Errorf("kernel fetch: %v", f)
	}
	if _, f = m.Fetch(0, buf); f != FaultUnmapped {
		t.Errorf("null fetch: %v", f)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New()
	m.Write(0x100000, []byte{9, 9, 9})
	snap := m.Snapshot()
	m.Write(0x100000, []byte{1, 1, 1})
	m.RestoreSnapshot(snap)
	buf := make([]byte, 3)
	m.Read(0x100000, buf)
	if buf[0] != 9 {
		t.Error("restore failed")
	}
}

func TestRawAccessBypassesChecks(t *testing.T) {
	m := New()
	m.RawWrite(KernelBase+16, []byte{7})
	buf := make([]byte, 1)
	m.RawRead(KernelBase+16, buf)
	if buf[0] != 7 {
		t.Error("raw access failed")
	}
}

func TestPagedSnapshotRoundTrip(t *testing.T) {
	m := New()
	m.Write(0x100000, []byte{9, 9, 9})
	snap := m.SnapshotPaged()
	m.Write(0x100000, []byte{1, 1, 1})
	m.Write(0x200000, []byte{5})
	m.RestorePaged(snap)
	buf := make([]byte, 3)
	m.Read(0x100000, buf)
	if buf[0] != 9 {
		t.Error("dirty page not restored")
	}
	m.Read(0x200000, buf[:1])
	if buf[0] != 0 {
		t.Error("page written after the snapshot not zeroed on restore")
	}
}

func TestPagedSnapshotSharesCleanPages(t *testing.T) {
	m := New()
	m.Write(0x100000, []byte{1})
	m.Write(0x180000, []byte{2})
	s1 := m.SnapshotPaged()
	m.Write(0x180000, []byte{3}) // dirty one page between snapshots
	s2 := m.SnapshotPaged()
	clean := int(0x100000 / PageSize)
	dirty := int(0x180000 / PageSize)
	if &s1.Page(clean)[0] != &s2.Page(clean)[0] {
		t.Error("clean page not shared by reference")
	}
	if &s1.Page(dirty)[0] == &s2.Page(dirty)[0] {
		t.Error("dirty page wrongly shared")
	}
	if s1.Page(dirty)[0] != 2 || s2.Page(dirty)[0] != 3 {
		t.Error("snapshots not immutable across the second capture")
	}
}

func TestPagedSnapshotZeroPagesStayNil(t *testing.T) {
	m := New()
	m.Write(0x100000, []byte{1})
	s := m.SnapshotPaged()
	touched := int(0x100000 / PageSize)
	for p := 0; p < int(Size/PageSize); p++ {
		if p == touched {
			if s.Page(p) == nil {
				t.Fatal("written page missing")
			}
			continue
		}
		if s.Page(p) != nil {
			t.Fatalf("page %d materialized without a write", p)
		}
	}
}

func TestPagedRestoreIntoFreshMachine(t *testing.T) {
	m := New()
	m.Load(TextBase, []byte{0xAA})
	m.Write(0x100000, []byte{7})
	s := m.SnapshotPaged()

	fresh := New()
	fresh.Write(0x200000, []byte{9}) // must be wiped by the restore
	fresh.RestorePaged(s)
	buf := make([]byte, 1)
	fresh.RawRead(TextBase, buf)
	if buf[0] != 0xAA {
		t.Error("text page not restored")
	}
	fresh.Read(0x100000, buf)
	if buf[0] != 7 {
		t.Error("data page not restored")
	}
	fresh.Read(0x200000, buf)
	if buf[0] != 0 {
		t.Error("stale write survived the restore")
	}
}

func TestLegacyRestoreResetsPagedTracking(t *testing.T) {
	m := New()
	m.Write(0x100000, []byte{1})
	full := m.Snapshot()
	m.SnapshotPaged()
	m.RestoreSnapshot(full)
	// After a full restore the paged tracker must not share stale pages.
	s := m.SnapshotPaged()
	p := int(0x100000 / PageSize)
	if s.Page(p) == nil || s.Page(p)[0] != 1 {
		t.Error("paged snapshot after legacy restore lost the page")
	}
}
