// Package mem models the main memory and physical address map of the
// simulated machine. Both simulators share this substrate: a flat RAM
// with a guard page at address zero, read-only text, user data/heap/stack
// below the kernel-reserved region, and the kernel region itself at the
// top — the layout that lets injected faults manifest as the paper's
// process-crash (bad user access) and system-crash (kernel corruption)
// outcomes.
package mem

// Address map of the simulated machine.
const (
	// NullPageEnd is the end of the unmapped guard page at address 0;
	// any access below it is a page fault (null-pointer dereference).
	NullPageEnd uint64 = 0x1000
	// TextBase is where program text is loaded. Text is read-only:
	// stores to it raise protection faults.
	TextBase uint64 = 0x1000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop uint64 = 0x300000
	// KernelBase is the start of the kernel-reserved region. User-mode
	// accesses to it raise protection faults; a program counter landing
	// in it indicates wild control flow into the kernel, which the thin
	// kernel model treats as a panic (system crash).
	KernelBase uint64 = 0x300000
	// Size is the total physical memory size.
	Size uint64 = 0x400000
)

// Fault classifies the outcome of a memory access.
type Fault uint8

const (
	// FaultNone means the access succeeded.
	FaultNone Fault = iota
	// FaultUnmapped means the address range falls outside RAM or in
	// the null guard page.
	FaultUnmapped
	// FaultProt means the access violated protection: a store to text
	// or a user access to the kernel region.
	FaultProt
)

// String returns the fault name for logs.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultUnmapped:
		return "unmapped"
	case FaultProt:
		return "protection"
	default:
		return "unknown"
	}
}

// Memory is the flat RAM of one simulated machine instance. It is not
// safe for concurrent use; campaigns give every worker its own instance.
type Memory struct {
	ram []byte
	// textEnd is the end of the read-only text segment.
	textEnd uint64

	reads  uint64
	writes uint64
}

// New returns a zeroed memory.
func New() *Memory {
	return &Memory{ram: make([]byte, Size)}
}

// SetTextEnd marks [TextBase, end) as read-only text. The loader calls it.
func (m *Memory) SetTextEnd(end uint64) { m.textEnd = end }

// TextEnd returns the end of the read-only text segment.
func (m *Memory) TextEnd() uint64 { return m.textEnd }

// Reads returns the number of read accesses.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns the number of write accesses.
func (m *Memory) Writes() uint64 { return m.writes }

// inRAM reports whether [addr, addr+n) is inside mapped RAM and above the
// guard page.
func inRAM(addr uint64, n int) bool {
	return addr >= NullPageEnd && addr+uint64(n) <= Size && addr+uint64(n) >= addr
}

// CheckUser classifies a user-mode data access of n bytes at addr without
// performing it; the pipelines use it at address-generation time.
func (m *Memory) CheckUser(addr uint64, n int, write bool) Fault {
	if !inRAM(addr, n) {
		return FaultUnmapped
	}
	if addr+uint64(n) > KernelBase {
		return FaultProt
	}
	if write && addr < m.textEnd {
		return FaultProt
	}
	return FaultNone
}

// Read copies n = len(dst) bytes at addr into dst with user-mode
// permission checks.
func (m *Memory) Read(addr uint64, dst []byte) Fault {
	if f := m.CheckUser(addr, len(dst), false); f != FaultNone {
		return f
	}
	m.reads++
	copy(dst, m.ram[addr:])
	return FaultNone
}

// Write stores src at addr with user-mode permission checks.
func (m *Memory) Write(addr uint64, src []byte) Fault {
	if f := m.CheckUser(addr, len(src), true); f != FaultNone {
		return f
	}
	m.writes++
	copy(m.ram[addr:], src)
	return FaultNone
}

// Fetch copies len(dst) instruction bytes at addr into dst. Fetching is
// legal only from the text segment; it tolerates a short read at the end
// of text (returning how many bytes were valid).
func (m *Memory) Fetch(addr uint64, dst []byte) (int, Fault) {
	if addr < TextBase || addr >= m.textEnd {
		if addr >= KernelBase && addr < Size {
			return 0, FaultProt
		}
		return 0, FaultUnmapped
	}
	n := len(dst)
	if addr+uint64(n) > m.textEnd {
		n = int(m.textEnd - addr)
	}
	m.reads++
	copy(dst[:n], m.ram[addr:])
	return n, FaultNone
}

// RawRead reads without permission checks or accounting; the kernel and
// the hypervisor escape path (MARSS/QEMU analogue) use it, as does the
// cache hierarchy when it refills lines from RAM.
func (m *Memory) RawRead(addr uint64, dst []byte) {
	copy(dst, m.ram[addr:])
}

// RawWrite writes without permission checks or accounting.
func (m *Memory) RawWrite(addr uint64, src []byte) {
	copy(m.ram[addr:], src)
}

// Load installs an image segment at base.
func (m *Memory) Load(base uint64, data []byte) {
	copy(m.ram[base:], data)
}

// Snapshot returns a copy of RAM for checkpointing.
func (m *Memory) Snapshot() []byte {
	s := make([]byte, len(m.ram))
	copy(s, m.ram)
	return s
}

// RestoreSnapshot restores RAM from a snapshot.
func (m *Memory) RestoreSnapshot(s []byte) {
	copy(m.ram, s)
}
