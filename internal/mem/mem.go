// Package mem models the main memory and physical address map of the
// simulated machine. Both simulators share this substrate: a flat RAM
// with a guard page at address zero, read-only text, user data/heap/stack
// below the kernel-reserved region, and the kernel region itself at the
// top — the layout that lets injected faults manifest as the paper's
// process-crash (bad user access) and system-crash (kernel corruption)
// outcomes.
package mem

import "sync"

// Address map of the simulated machine.
const (
	// NullPageEnd is the end of the unmapped guard page at address 0;
	// any access below it is a page fault (null-pointer dereference).
	NullPageEnd uint64 = 0x1000
	// TextBase is where program text is loaded. Text is read-only:
	// stores to it raise protection faults.
	TextBase uint64 = 0x1000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop uint64 = 0x300000
	// KernelBase is the start of the kernel-reserved region. User-mode
	// accesses to it raise protection faults; a program counter landing
	// in it indicates wild control flow into the kernel, which the thin
	// kernel model treats as a panic (system crash).
	KernelBase uint64 = 0x300000
	// Size is the total physical memory size.
	Size uint64 = 0x400000
)

// Fault classifies the outcome of a memory access.
type Fault uint8

const (
	// FaultNone means the access succeeded.
	FaultNone Fault = iota
	// FaultUnmapped means the address range falls outside RAM or in
	// the null guard page.
	FaultUnmapped
	// FaultProt means the access violated protection: a store to text
	// or a user access to the kernel region.
	FaultProt
)

// String returns the fault name for logs.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultUnmapped:
		return "unmapped"
	case FaultProt:
		return "protection"
	default:
		return "unknown"
	}
}

// Paged-snapshot geometry: RAM is tracked in 4 KiB pages for the
// dirty-page checkpoint deltas.
const (
	// PageSize is the granularity of dirty tracking and snapshot sharing.
	PageSize uint64 = 4096
	numPages        = int(Size / PageSize)
	bmWords         = (numPages + 63) / 64
)

// Memory is the flat RAM of one simulated machine instance. It is not
// safe for concurrent use; campaigns give every worker its own instance.
type Memory struct {
	ram []byte
	// textEnd is the end of the read-only text segment.
	textEnd uint64

	reads  uint64
	writes uint64

	// dirty marks pages written since the last paged snapshot (or
	// restore); nonzero marks pages that have ever been written, so
	// all-zero pages never get copied or restored. lastSnap is the paged
	// snapshot the dirty bits are relative to — successive snapshots on
	// one machine share every clean page with it (copy-on-write), which
	// is what makes a checkpoint ladder cheap: each rung after the first
	// only copies the pages the run dirtied since the previous rung.
	dirty    [bmWords]uint64
	nonzero  [bmWords]uint64
	lastSnap *PagedSnapshot
}

// pool recycles Memory instances across machine boots. A released
// memory zeroes only the pages it ever wrote (nonzero is a conservative
// superset of written pages), so a recycled boot costs a handful of
// page clears instead of a full-RAM zeroing — campaigns boot three
// machines per windowed run, which makes the fresh-allocation memclr a
// measurable fraction of the schedule.
var pool sync.Pool

// New returns a zeroed memory, recycled from the boot pool when one is
// available.
func New() *Memory {
	if v := pool.Get(); v != nil {
		return v.(*Memory)
	}
	return &Memory{ram: make([]byte, Size)}
}

// Release resets m to the state of a fresh New and returns it to the
// boot pool. The caller guarantees the machine owning m is dead and
// drops every reference; using a memory after release corrupts an
// unrelated machine. Snapshots taken from m stay valid — they never
// alias the RAM.
func Release(m *Memory) {
	if m == nil {
		return
	}
	for p := 0; p < numPages; p++ {
		if bmBit(&m.nonzero, p) {
			off := uint64(p) * PageSize
			clear(m.ram[off : off+PageSize])
		}
	}
	for i := range m.dirty {
		m.dirty[i] = 0
		m.nonzero[i] = 0
	}
	m.lastSnap = nil
	m.textEnd = 0
	m.reads, m.writes = 0, 0
	pool.Put(m)
}

// SetTextEnd marks [TextBase, end) as read-only text. The loader calls it.
func (m *Memory) SetTextEnd(end uint64) { m.textEnd = end }

// TextEnd returns the end of the read-only text segment.
func (m *Memory) TextEnd() uint64 { return m.textEnd }

// Reads returns the number of read accesses.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns the number of write accesses.
func (m *Memory) Writes() uint64 { return m.writes }

// inRAM reports whether [addr, addr+n) is inside mapped RAM and above the
// guard page.
func inRAM(addr uint64, n int) bool {
	return addr >= NullPageEnd && addr+uint64(n) <= Size && addr+uint64(n) >= addr
}

// CheckUser classifies a user-mode data access of n bytes at addr without
// performing it; the pipelines use it at address-generation time.
func (m *Memory) CheckUser(addr uint64, n int, write bool) Fault {
	if !inRAM(addr, n) {
		return FaultUnmapped
	}
	if addr+uint64(n) > KernelBase {
		return FaultProt
	}
	if write && addr < m.textEnd {
		return FaultProt
	}
	return FaultNone
}

// Read copies n = len(dst) bytes at addr into dst with user-mode
// permission checks.
func (m *Memory) Read(addr uint64, dst []byte) Fault {
	if f := m.CheckUser(addr, len(dst), false); f != FaultNone {
		return f
	}
	m.reads++
	copy(dst, m.ram[addr:])
	return FaultNone
}

// Write stores src at addr with user-mode permission checks.
func (m *Memory) Write(addr uint64, src []byte) Fault {
	if f := m.CheckUser(addr, len(src), true); f != FaultNone {
		return f
	}
	m.writes++
	m.markDirty(addr, len(src))
	copy(m.ram[addr:], src)
	return FaultNone
}

// Fetch copies len(dst) instruction bytes at addr into dst. Fetching is
// legal only from the text segment; it tolerates a short read at the end
// of text (returning how many bytes were valid).
func (m *Memory) Fetch(addr uint64, dst []byte) (int, Fault) {
	if addr < TextBase || addr >= m.textEnd {
		if addr >= KernelBase && addr < Size {
			return 0, FaultProt
		}
		return 0, FaultUnmapped
	}
	n := len(dst)
	if addr+uint64(n) > m.textEnd {
		n = int(m.textEnd - addr)
	}
	m.reads++
	copy(dst[:n], m.ram[addr:])
	return n, FaultNone
}

// RawRead reads without permission checks or accounting; the kernel and
// the hypervisor escape path (MARSS/QEMU analogue) use it, as does the
// cache hierarchy when it refills lines from RAM.
func (m *Memory) RawRead(addr uint64, dst []byte) {
	copy(dst, m.ram[addr:])
}

// RawWrite writes without permission checks or accounting.
func (m *Memory) RawWrite(addr uint64, src []byte) {
	m.markDirty(addr, len(src))
	copy(m.ram[addr:], src)
}

// Load installs an image segment at base.
func (m *Memory) Load(base uint64, data []byte) {
	m.markDirty(base, len(data))
	copy(m.ram[base:], data)
}

// Snapshot returns a copy of RAM for checkpointing.
func (m *Memory) Snapshot() []byte {
	s := make([]byte, len(m.ram))
	copy(s, m.ram)
	return s
}

// RestoreSnapshot restores RAM from a snapshot. The paged-snapshot
// tracking is conservatively reset: every page counts as written.
func (m *Memory) RestoreSnapshot(s []byte) {
	copy(m.ram, s)
	for i := range m.dirty {
		m.dirty[i] = ^uint64(0)
		m.nonzero[i] = ^uint64(0)
	}
	m.lastSnap = nil
}

// ---- Paged snapshots -------------------------------------------------------

// PagedSnapshot is a page-granular RAM image. A nil page is all zeroes;
// pages clean since the previous snapshot of the same machine are shared
// with it by reference. Snapshots are immutable once taken, so one
// snapshot may seed many machines concurrently.
type PagedSnapshot struct {
	pages [numPages][]byte
}

// markDirty flags the pages of [addr, addr+n) as written. Out-of-range
// spans are clamped the way the copy-based accessors clamp them.
func (m *Memory) markDirty(addr uint64, n int) {
	if n <= 0 || addr >= Size {
		return
	}
	end := addr + uint64(n) - 1
	if end >= Size || end < addr {
		end = Size - 1
	}
	for p := int(addr / PageSize); p <= int(end/PageSize); p++ {
		m.dirty[p>>6] |= 1 << uint(p&63)
		m.nonzero[p>>6] |= 1 << uint(p&63)
	}
}

func bmBit(bm *[bmWords]uint64, p int) bool {
	return bm[p>>6]&(1<<uint(p&63)) != 0
}

// SnapshotPaged captures RAM as a paged snapshot. Pages untouched since
// the machine's previous paged snapshot (or restore) are shared with it;
// pages never written at all stay nil. The returned snapshot becomes the
// new sharing base of this machine.
func (m *Memory) SnapshotPaged() *PagedSnapshot {
	s := &PagedSnapshot{}
	for p := 0; p < numPages; p++ {
		switch {
		case m.lastSnap != nil && !bmBit(&m.dirty, p):
			s.pages[p] = m.lastSnap.pages[p]
		case !bmBit(&m.nonzero, p):
			// Never written: all zeroes, keep nil.
		default:
			pg := make([]byte, PageSize)
			copy(pg, m.ram[uint64(p)*PageSize:])
			s.pages[p] = pg
		}
	}
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	m.lastSnap = s
	return s
}

// RestorePaged loads a paged snapshot into RAM, copying only pages that
// can differ: nil (all-zero) snapshot pages are skipped unless this
// memory has written the page, and a fresh machine restores a small
// program in a handful of page copies instead of a full-RAM copy. The
// snapshot becomes the machine's new sharing base.
func (m *Memory) RestorePaged(s *PagedSnapshot) {
	for p := 0; p < numPages; p++ {
		pg := s.pages[p]
		off := uint64(p) * PageSize
		if pg == nil {
			if bmBit(&m.nonzero, p) {
				page := m.ram[off : off+PageSize]
				for i := range page {
					page[i] = 0
				}
				m.nonzero[p>>6] &^= 1 << uint(p&63)
			}
			continue
		}
		copy(m.ram[off:], pg)
		m.nonzero[p>>6] |= 1 << uint(p&63)
	}
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	m.lastSnap = s
}

// Page returns the snapshot's page p (nil when all zeroes); tests use it
// to assert copy-on-write sharing.
func (s *PagedSnapshot) Page(p int) []byte { return s.pages[p] }
