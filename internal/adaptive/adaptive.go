// Package adaptive implements the sequential-confidence stopping rule
// of budget-driven injection campaigns: per-cell Wilson score intervals
// over the outcome-class proportions, stopping as soon as every class
// is estimated to the target margin at the target confidence.
//
// The estimator is deliberately dumb about scheduling: it consumes a
// multiset of class labels and answers "decided?" — the decision is a
// pure function of the labels fed so far, independent of feeding order
// (only counts enter the interval). The campaign scheduler exploits
// that to keep early stopping deterministic: it evaluates the estimator
// only at completion boundaries over the deterministic simulation
// order, so a given mask population always stops at the same run count
// no matter how workers interleave.
//
// Wilson (1927) score intervals rather than the normal approximation:
// campaign cells routinely see classes with very few (or zero) hits,
// exactly where the Wald interval collapses to zero width and would
// stop immediately and wrongly. The Wilson half-width at zero observed
// hits is z²/(2n)/(1+z²/n) — still positive, shrinking with n — so a
// rare class keeps the campaign running until its proportion is
// genuinely pinned.
package adaptive

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// DefaultCheckEvery is the completion-boundary cadence used when a
// config does not name one: the estimator is consulted every this many
// completed runs of a cell.
const DefaultCheckEvery = 50

// Config parameterizes one cell's stopping rule.
type Config struct {
	// Margin is the target half-width of every class interval (e.g.
	// 0.03 for ±3 points).
	Margin float64
	// Confidence is the interval confidence level (e.g. 0.99).
	Confidence float64
	// CheckEvery is the completion-boundary cadence; 0 means
	// DefaultCheckEvery.
	CheckEvery int
	// Classes is the closed universe of outcome classes. All of them —
	// observed or not — must reach the margin: a class never seen still
	// carries a positive Wilson half-width until n is large enough to
	// bound its proportion near zero.
	Classes []string
}

// Estimator accumulates outcome classes of one campaign cell and
// answers the sequential stopping question. It is not safe for
// concurrent use; the scheduler serializes Add/Decided under its own
// completion lock.
type Estimator struct {
	z      float64
	margin float64
	order  []string
	counts map[string]uint64
	n      uint64
}

// New validates the config and builds an estimator.
func New(cfg Config) (*Estimator, error) {
	if math.IsNaN(cfg.Margin) || cfg.Margin <= 0 || cfg.Margin >= 1 {
		return nil, fmt.Errorf("adaptive: margin %v outside (0, 1)", cfg.Margin)
	}
	z, err := fault.ZFor(cfg.Confidence)
	if err != nil {
		return nil, err
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("adaptive: no outcome classes")
	}
	e := &Estimator{
		z:      z,
		margin: cfg.Margin,
		order:  append([]string(nil), cfg.Classes...),
		counts: make(map[string]uint64, len(cfg.Classes)),
	}
	for _, c := range cfg.Classes {
		e.counts[c] = 0
	}
	return e, nil
}

// Add feeds one completed run's outcome class. Classes outside the
// configured universe are counted toward n but tracked under their own
// label, so an unexpected label widens the decision rather than
// silently vanishing.
func (e *Estimator) Add(class string) {
	if _, ok := e.counts[class]; !ok {
		e.order = append(e.order, class)
	}
	e.counts[class]++
	e.n++
}

// N returns the number of runs fed so far.
func (e *Estimator) N() int { return int(e.n) } //nolint:gosec // run counts are small

// wilsonHalfWidth returns the half-width of the Wilson score interval
// for k successes out of n at quantile z.
func wilsonHalfWidth(k, n uint64, z float64) float64 {
	if n == 0 {
		return 1
	}
	nf := float64(n)
	ph := float64(k) / nf
	denom := 1 + z*z/nf
	return z * math.Sqrt(ph*(1-ph)/nf+z*z/(4*nf*nf)) / denom
}

// EffectiveMargin returns the widest class half-width at the current
// counts — the margin the cell has actually achieved. 1 before any run
// completes.
func (e *Estimator) EffectiveMargin() float64 {
	if e.n == 0 {
		return 1
	}
	worst := 0.0
	for _, c := range e.order {
		if hw := wilsonHalfWidth(e.counts[c], e.n, e.z); hw > worst {
			worst = hw
		}
	}
	return worst
}

// Decided reports whether every class proportion is pinned to the
// target margin at the target confidence.
func (e *Estimator) Decided() bool {
	return e.n > 0 && e.EffectiveMargin() <= e.margin
}

// Counts returns the per-class counts in first-seen-extended universe
// order, for reporting.
func (e *Estimator) Counts() (classes []string, counts []uint64) {
	classes = append([]string(nil), e.order...)
	counts = make([]uint64, len(e.order))
	for i, c := range e.order {
		counts[i] = e.counts[c]
	}
	return classes, counts
}
