package adaptive

import (
	"math"
	"testing"
)

var classes = []string{"Masked", "SDC", "DUE", "Timeout", "Crash", "Assert"}

func TestNewValidates(t *testing.T) {
	bad := []Config{
		{Margin: 0, Confidence: 0.99, Classes: classes},
		{Margin: 1, Confidence: 0.99, Classes: classes},
		{Margin: -0.1, Confidence: 0.99, Classes: classes},
		{Margin: math.NaN(), Confidence: 0.99, Classes: classes},
		{Margin: 0.05, Confidence: 1, Classes: classes},
		{Margin: 0.05, Confidence: 0, Classes: classes},
		{Margin: 0.05, Confidence: 1.2, Classes: classes},
		{Margin: 0.05, Confidence: 0.99},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted a bad config", cfg)
		}
	}
	if _, err := New(Config{Margin: 0.05, Confidence: 0.99, Classes: classes}); err != nil {
		t.Fatalf("New rejected a good config: %v", err)
	}
}

func TestUndecidedUntilEnoughRuns(t *testing.T) {
	e, err := New(Config{Margin: 0.03, Confidence: 0.99, Classes: classes})
	if err != nil {
		t.Fatal(err)
	}
	if e.Decided() {
		t.Fatal("decided with zero runs")
	}
	if m := e.EffectiveMargin(); m != 1 {
		t.Fatalf("EffectiveMargin() = %v before any run, want 1", m)
	}
	// A 50/50 split needs ~the paper's 1843 runs at 99%/3%; feed 200 and
	// the estimator must still be undecided.
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			e.Add("Masked")
		} else {
			e.Add("SDC")
		}
	}
	if e.Decided() {
		t.Fatalf("decided at n=200 with a 50/50 split (margin %v)", e.EffectiveMargin())
	}
	for i := 0; i < 1900; i++ {
		if i%2 == 0 {
			e.Add("Masked")
		} else {
			e.Add("SDC")
		}
	}
	if !e.Decided() {
		t.Fatalf("undecided at n=2100 with a 50/50 split (margin %v)", e.EffectiveMargin())
	}
}

func TestSkewedCellDecidesEarly(t *testing.T) {
	// An all-Masked cell pins every proportion quickly: the k=0 classes
	// share the k=n class's complementary interval.
	e, _ := New(Config{Margin: 0.10, Confidence: 0.95, Classes: classes})
	n := 0
	for !e.Decided() {
		e.Add("Masked")
		if n++; n > 500 {
			t.Fatalf("all-Masked cell undecided after 500 runs (margin %v)", e.EffectiveMargin())
		}
	}
	if n >= 100 {
		t.Errorf("all-Masked cell needed %d runs for a 10%% margin", n)
	}
	// And far fewer than the 50/50 worst case at the same target.
	u, _ := New(Config{Margin: 0.10, Confidence: 0.95, Classes: classes})
	m := 0
	for !u.Decided() {
		if m%2 == 0 {
			u.Add("Masked")
		} else {
			u.Add("SDC")
		}
		m++
	}
	if n >= m {
		t.Errorf("skewed cell (%d runs) not cheaper than 50/50 cell (%d runs)", n, m)
	}
}

func TestDecisionOrderIndependent(t *testing.T) {
	// The decision is a function of the counts, not the feeding order.
	a, _ := New(Config{Margin: 0.15, Confidence: 0.95, Classes: classes})
	b, _ := New(Config{Margin: 0.15, Confidence: 0.95, Classes: classes})
	seq := []string{"Masked", "Masked", "SDC", "Masked", "DUE", "Masked", "Masked", "SDC"}
	for i := 0; i < 10; i++ {
		for _, c := range seq {
			a.Add(c)
		}
		for j := len(seq) - 1; j >= 0; j-- {
			b.Add(seq[j])
		}
		if a.Decided() != b.Decided() || a.EffectiveMargin() != b.EffectiveMargin() {
			t.Fatalf("order-dependent decision at round %d", i)
		}
	}
}

func TestUnknownClassWidensDecision(t *testing.T) {
	e, _ := New(Config{Margin: 0.10, Confidence: 0.95, Classes: classes})
	for i := 0; i < 200; i++ {
		e.Add("Masked")
	}
	if !e.Decided() {
		t.Fatal("baseline cell undecided")
	}
	e.Add("something-new")
	cls, counts := e.Counts()
	found := false
	for i, c := range cls {
		if c == "something-new" && counts[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown class not tracked")
	}
}

func TestWilsonHalfWidthAgainstKnownValues(t *testing.T) {
	// k=0: hw = z²/(2n) / (1+z²/n).
	z := 1.959963984540054
	n := uint64(100)
	want := z * z / (2 * 100) / (1 + z*z/100)
	if got := wilsonHalfWidth(0, n, z); math.Abs(got-want) > 1e-12 {
		t.Errorf("wilsonHalfWidth(0,100) = %v, want %v", got, want)
	}
	// Symmetric in k ↔ n−k.
	if a, b := wilsonHalfWidth(30, 100, z), wilsonHalfWidth(70, 100, z); math.Abs(a-b) > 1e-12 {
		t.Errorf("half-width asymmetric: %v vs %v", a, b)
	}
	// Monotone shrinking with n at fixed proportion.
	if a, b := wilsonHalfWidth(50, 100, z), wilsonHalfWidth(500, 1000, z); b >= a {
		t.Errorf("half-width not shrinking: %v → %v", a, b)
	}
}
