package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestRegFileRenameCommitFlush(t *testing.T) {
	rf := NewRegFile("rf.int", 19, 64, false)
	if rf.FreeCount() != 64-19 {
		t.Fatalf("free = %d", rf.FreeCount())
	}
	// Initially arch i maps to phys i.
	p0 := rf.Lookup(3)
	if p0.Idx != 3 || p0.FP {
		t.Fatalf("initial mapping %v", p0)
	}
	dst, old, ok := rf.Rename(3)
	if !ok || old.Idx != 3 {
		t.Fatalf("rename: %v %v %v", dst, old, ok)
	}
	if rf.Ready(dst) {
		t.Fatal("fresh phys ready")
	}
	rf.Write(dst, 42)
	if !rf.Ready(dst) || rf.Read(dst) != 42 {
		t.Fatal("write/read failed")
	}
	// Speculative lookup sees the new mapping; architectural does not.
	if rf.Lookup(3) != dst {
		t.Fatal("RAT not updated")
	}
	// Flush before commit: mapping reverts, phys reg freed.
	free := rf.FreeCount()
	rf.Flush()
	if rf.Lookup(3).Idx != 3 {
		t.Fatal("flush did not restore RAT")
	}
	if rf.FreeCount() != free+1 {
		t.Fatalf("flush free count %d, want %d", rf.FreeCount(), free+1)
	}
	// Rename + commit: architectural state moves forward.
	dst, old, _ = rf.Rename(3)
	rf.Write(dst, 99)
	rf.Commit(3, dst, old)
	if rf.ReadArch(3) != 99 {
		t.Fatalf("arch read = %d", rf.ReadArch(3))
	}
	rf.Flush()
	if rf.Lookup(3) != dst {
		t.Fatal("flush lost committed mapping")
	}
}

func TestRegFileExhaustion(t *testing.T) {
	rf := NewRegFile("rf", 4, 8, false)
	for i := 0; i < 4; i++ {
		if _, _, ok := rf.Rename(0); !ok {
			t.Fatalf("rename %d failed early", i)
		}
	}
	if _, _, ok := rf.Rename(0); ok {
		t.Fatal("rename succeeded with empty free list")
	}
	rf.Flush()
	if rf.FreeCount() != 4 {
		t.Fatalf("after flush free = %d", rf.FreeCount())
	}
}

func TestRegFilePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRegFile("rf", 8, 8, false)
}

func TestROBOrdering(t *testing.T) {
	r := NewROB(4)
	a := r.Alloc()
	b := r.Alloc()
	r.At(a).PC = 100
	r.At(b).PC = 105
	if r.Len() != 2 || r.Head() != a {
		t.Fatal("alloc/head")
	}
	var pcs []uint64
	r.Walk(func(_ int, e *ROBEntry) bool {
		pcs = append(pcs, e.PC)
		return true
	})
	if len(pcs) != 2 || pcs[0] != 100 || pcs[1] != 105 {
		t.Fatalf("walk order %v", pcs)
	}
	if r.At(a).Seq >= r.At(b).Seq {
		t.Fatal("seq not increasing")
	}
	r.PopHead()
	if r.Head() != b {
		t.Fatal("pop")
	}
	r.FlushAll()
	if !r.Empty() {
		t.Fatal("flush")
	}
}

func TestROBWraparound(t *testing.T) {
	r := NewROB(3)
	for round := 0; round < 5; round++ {
		x := r.Alloc()
		r.At(x).PC = uint64(round)
		if r.At(r.Head()).PC != uint64(round) {
			t.Fatal("head wrong")
		}
		r.PopHead()
	}
	for i := 0; i < 3; i++ {
		r.Alloc()
	}
	if !r.Full() {
		t.Fatal("not full")
	}
}

func TestPackUnpackUop(t *testing.T) {
	u := isa.Uop{Op: isa.Load, Cond: isa.CondLE, Size: 4, SignExt: true, UsesImm: true, Imm: -123456789}
	dst := PhysReg{FP: false, Idx: 200}
	s1 := PhysReg{FP: true, Idx: 77}
	w0, w1 := PackUop(u, dst, s1, PhysNone)
	p := UnpackUop(w0, w1)
	if p.Op != isa.Load || p.Dst != dst || p.Src1 != s1 || p.Src2 != PhysNone ||
		p.Cond != isa.CondLE || p.Size != 4 || !p.SignExt || !p.UsesImm || p.Imm != -123456789 {
		t.Fatalf("round trip: %+v", p)
	}
}

func TestPropPackUnpackIdentity(t *testing.T) {
	f := func(op, cond, size uint8, se, ui, d8 bool, dIdx, s1Idx, s2Idx uint16, imm int64) bool {
		u := isa.Uop{Op: isa.Op(op % 40), Cond: isa.Cond(cond % 11), Size: size % 9,
			SignExt: se, UsesImm: ui, Imm: imm}
		mk := func(idx uint16, fp bool) PhysReg {
			return PhysReg{FP: fp, Idx: idx % 0x7ff}
		}
		dst, s1, s2 := mk(dIdx, d8), mk(s1Idx, !d8), mk(s2Idx, false)
		w0, w1 := PackUop(u, dst, s1, s2)
		p := UnpackUop(w0, w1)
		return p.Op == u.Op && p.Cond == u.Cond && p.Size == u.Size%16 &&
			p.SignExt == se && p.UsesImm == ui && p.Imm == imm &&
			p.Dst == dst && p.Src1 == s1 && p.Src2 == s2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIQAllocReleaseFlush(t *testing.T) {
	q := NewIQ("iq", 4)
	for i := 0; i < 4; i++ {
		if !q.Alloc(uint64(i), uint64(i)<<8, i*10) {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if !q.Full() || q.Alloc(0, 0, 0) {
		t.Fatal("overfull")
	}
	p, rob := q.Entry(2)
	if p.Imm != 2 || rob != 20 {
		t.Fatalf("entry: %+v %d", p, rob)
	}
	q.Release(2)
	if q.Len() != 3 || q.Occupied(2) {
		t.Fatal("release")
	}
	q.FlushAll()
	if q.Len() != 0 {
		t.Fatal("flush")
	}
}

func TestLSQUnifiedForwarding(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "lsq.data", Unified: true, LoadEntries: 32})
	st, ok := q.Alloc(true, 1, 0)
	if !ok {
		t.Fatal("store alloc")
	}
	// seq comes from caller; simulate program order st(seq=1) < ld(seq=2).
	q.entries[st].seq = 1
	q.SetAddr(st, 0x1000, 8)
	q.PutData(st, 0x1122334455667788)
	ld, _ := q.Alloc(false, 2, 2)
	q.SetAddr(ld, 0x1002, 2)
	res := q.QueryLoad(ld)
	if !res.Forward || res.FwdIdx != st || res.FwdShift != 2 {
		t.Fatalf("forward: %+v", res)
	}
	// Little-endian: bytes 2..3 of 0x1122334455667788 are 0x66,0x55.
	v := q.Data(res.FwdIdx) >> (8 * res.FwdShift)
	if uint16(v) != 0x5566 {
		t.Fatalf("forwarded %x", uint16(v))
	}
}

func TestLSQPartialOverlapMustWait(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "lsq", Unified: true, LoadEntries: 8})
	st, _ := q.Alloc(true, 1, 1)
	q.SetAddr(st, 0x1000, 2)
	q.PutData(st, 0xBEEF)
	ld, _ := q.Alloc(false, 2, 2)
	q.SetAddr(ld, 0x1001, 4) // partially covered
	res := q.QueryLoad(ld)
	if !res.MustWait || res.Forward {
		t.Fatalf("partial: %+v", res)
	}
}

func TestLSQUnknownOlderStore(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "lsq", Unified: true, LoadEntries: 8})
	q.Alloc(true, 1, 1) // address never resolved
	ld, _ := q.Alloc(false, 2, 2)
	q.SetAddr(ld, 0x2000, 4)
	res := q.QueryLoad(ld)
	if !res.UnknownOlder {
		t.Fatalf("unknown older not flagged: %+v", res)
	}
	if res.Forward || res.MustWait {
		t.Fatalf("unexpected: %+v", res)
	}
}

func TestLSQYoungestStoreWins(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "lsq", Unified: true, LoadEntries: 8})
	s1, _ := q.Alloc(true, 1, 1)
	q.SetAddr(s1, 0x3000, 8)
	q.PutData(s1, 0x1111111111111111)
	s2, _ := q.Alloc(true, 2, 2)
	q.SetAddr(s2, 0x3000, 8)
	q.PutData(s2, 0x2222222222222222)
	ld, _ := q.Alloc(false, 3, 3)
	q.SetAddr(ld, 0x3000, 8)
	res := q.QueryLoad(ld)
	if !res.Forward || res.FwdIdx != s2 {
		t.Fatalf("youngest-store: %+v", res)
	}
}

func TestLSQViolationDetection(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "lsq", Unified: true, LoadEntries: 8})
	st, _ := q.Alloc(true, 10, 1)
	ld, _ := q.Alloc(false, 20, 2)
	q.SetAddr(ld, 0x4000, 4)
	q.MarkExecuted(ld)
	// Store resolves later to an overlapping address.
	q.SetAddr(st, 0x4002, 4)
	viol := q.StoreResolved(st)
	if len(viol) != 1 || viol[0] != 20 {
		t.Fatalf("violations %v", viol)
	}
	// Non-overlapping store: no violations.
	st2, _ := q.Alloc(true, 30, 3)
	q.SetAddr(st2, 0x5000, 4)
	if v := q.StoreResolved(st2); len(v) != 0 {
		t.Fatalf("false violations %v", v)
	}
}

func TestLSQSplitOrganization(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "sq.data", Unified: false, LoadEntries: 16, StoreEntries: 16})
	ld, ok := q.Alloc(false, 1, 1)
	if !ok {
		t.Fatal("load alloc")
	}
	if q.HasDataStorage(ld) {
		t.Fatal("split-organization load has data storage")
	}
	st, _ := q.Alloc(true, 2, 2)
	if !q.HasDataStorage(st) {
		t.Fatal("store lacks data storage")
	}
	q.PutData(st, 0xABCD)
	if q.Data(st) != 0xABCD {
		t.Fatal("store data")
	}
	// Capacity is per class.
	for i := 0; i < 15; i++ {
		if _, ok := q.Alloc(false, 0, uint64(10+i)); !ok {
			t.Fatalf("load alloc %d", i)
		}
	}
	if q.CanAlloc(false) {
		t.Fatal("load queue should be full")
	}
	if !q.CanAlloc(true) {
		t.Fatal("store queue should have space")
	}
	// The data array of the split organization covers only stores.
	if q.DataArray().Entries() != 16 {
		t.Fatalf("data entries %d", q.DataArray().Entries())
	}
}

func TestLSQFreeAndFlush(t *testing.T) {
	q := NewLSQ(LSQConfig{Name: "lsq", Unified: true, LoadEntries: 4})
	a, _ := q.Alloc(false, 1, 1)
	b, _ := q.Alloc(true, 2, 2)
	q.Free(a)
	if q.Loads() != 0 || q.Stores() != 1 {
		t.Fatalf("counts %d/%d", q.Loads(), q.Stores())
	}
	q.Free(a) // double free is a no-op
	if q.Stores() != 1 {
		t.Fatal("double free")
	}
	_ = b
	q.FlushAll()
	if q.Loads() != 0 || q.Stores() != 0 {
		t.Fatal("flush")
	}
}
