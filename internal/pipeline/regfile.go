// Package pipeline provides the out-of-order building blocks shared by
// the two simulator cores: physical register files with register
// renaming, the reorder buffer, a packed (and therefore faultable) issue
// queue, and the load/store queue in the two organizations the paper
// contrasts — MARSS's unified data-holding queue and Gem5's split queues
// where only the store side holds data (Remark 1).
package pipeline

import (
	"fmt"

	"repro/internal/bitarray"
)

// PhysReg names a physical register: a class (integer or FP) and an
// index within that class's file.
type PhysReg struct {
	FP  bool
	Idx uint16
}

// PhysNone marks an absent operand.
var PhysNone = PhysReg{Idx: 0xffff}

// Valid reports whether the register names a real physical register.
func (p PhysReg) Valid() bool { return p.Idx != 0xffff }

// String renders the physical register for logs.
func (p PhysReg) String() string {
	if !p.Valid() {
		return "-"
	}
	if p.FP {
		return fmt.Sprintf("pf%d", p.Idx)
	}
	return fmt.Sprintf("p%d", p.Idx)
}

// RegFile is one class of physical register file with its rename table
// and free list. The value storage is a faultable array — the structure
// of the paper's Fig. 2.
type RegFile struct {
	fp    bool
	arr   *bitarray.Array
	ready []bool
	live  []bool // allocated (mapped or in flight); dead registers
	// are provably masked injection targets (§III.B optimization (i))
	free      []uint16
	rat       []uint16 // speculative arch → phys
	commitRAT []uint16 // architectural arch → phys

	reads  uint64
	writes uint64
}

// NewRegFile builds a physical register file of physRegs registers
// backing archRegs architectural names. It panics unless every
// architectural register can be mapped with at least one register to
// spare for renaming.
func NewRegFile(name string, archRegs, physRegs int, fp bool) *RegFile {
	if physRegs <= archRegs {
		panic(fmt.Sprintf("pipeline: %s: %d physical registers cannot back %d architectural",
			name, physRegs, archRegs))
	}
	r := &RegFile{
		fp:        fp,
		arr:       bitarray.New(name, physRegs, 64),
		ready:     make([]bool, physRegs),
		live:      make([]bool, physRegs),
		rat:       make([]uint16, archRegs),
		commitRAT: make([]uint16, archRegs),
	}
	// Identity-map the architectural registers; the rest are free.
	for i := 0; i < archRegs; i++ {
		r.rat[i] = uint16(i)
		r.commitRAT[i] = uint16(i)
		r.ready[i] = true
		r.live[i] = true
	}
	for i := physRegs - 1; i >= archRegs; i-- {
		r.free = append(r.free, uint16(i))
	}
	r.arr.SetValidFunc(func(e int) bool { return r.live[e] })
	return r
}

// Array returns the injectable value storage.
func (r *RegFile) Array() *bitarray.Array { return r.arr }

// FreeCount returns the number of allocatable physical registers.
func (r *RegFile) FreeCount() int { return len(r.free) }

// Lookup returns the current speculative mapping of an architectural
// register index.
func (r *RegFile) Lookup(arch int) PhysReg {
	return PhysReg{FP: r.fp, Idx: r.rat[arch]}
}

// Rename allocates a fresh physical register for a write to arch,
// returning the new mapping and the previous one (to free at commit).
// ok is false when the free list is empty (rename must stall).
func (r *RegFile) Rename(arch int) (dst, old PhysReg, ok bool) {
	if len(r.free) == 0 {
		return PhysNone, PhysNone, false
	}
	n := r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	old = PhysReg{FP: r.fp, Idx: r.rat[arch]}
	r.rat[arch] = n
	r.ready[n] = false
	r.live[n] = true
	return PhysReg{FP: r.fp, Idx: n}, old, true
}

// Read reads a physical register through the faultable array.
func (r *RegFile) Read(p PhysReg) uint64 {
	r.reads++
	return r.arr.ReadUint64(int(p.Idx))
}

// Write writes a physical register and marks it ready.
func (r *RegFile) Write(p PhysReg, v uint64) {
	r.writes++
	r.arr.WriteUint64(int(p.Idx), v)
	r.ready[p.Idx] = true
}

// Ready reports whether the physical register has been produced.
func (r *RegFile) Ready(p PhysReg) bool { return r.ready[p.Idx] }

// Commit makes the mapping of arch → dst architectural and recycles the
// physical register it displaced.
func (r *RegFile) Commit(arch int, dst, old PhysReg) {
	r.commitRAT[arch] = dst.Idx
	if old.Valid() {
		r.free = append(r.free, old.Idx)
		r.live[old.Idx] = false
		r.arr.InvalidateObserve(int(old.Idx))
	}
}

// ReadArch reads the architectural (committed) value of an architectural
// register; the kernel uses it at syscalls.
func (r *RegFile) ReadArch(arch int) uint64 {
	return r.Read(PhysReg{FP: r.fp, Idx: r.commitRAT[arch]})
}

// WriteArch writes the architectural value of an architectural register;
// the kernel uses it for syscall results. The write goes to the
// committed physical register, which the speculative RAT also maps after
// a flush.
func (r *RegFile) WriteArch(arch int, v uint64) {
	r.Write(PhysReg{FP: r.fp, Idx: r.commitRAT[arch]}, v)
}

// Flush rewinds the speculative state to the committed state: the RAT is
// restored and the free list rebuilt from the registers not referenced
// by the committed mapping.
func (r *RegFile) Flush() {
	copy(r.rat, r.commitRAT)
	for i := range r.live {
		r.live[i] = false
	}
	for _, p := range r.commitRAT {
		r.live[p] = true
		r.ready[p] = true
	}
	r.free = r.free[:0]
	for i := r.arr.Entries() - 1; i >= 0; i-- {
		if !r.live[i] {
			r.free = append(r.free, uint16(i))
		}
	}
}

// Reads returns the number of physical register reads.
func (r *RegFile) Reads() uint64 { return r.reads }

// Writes returns the number of physical register writes.
func (r *RegFile) Writes() uint64 { return r.writes }
