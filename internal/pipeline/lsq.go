package pipeline

import (
	"fmt"

	"repro/internal/bitarray"
)

// LSQConfig selects the load/store queue organization.
type LSQConfig struct {
	// Name prefixes the data array structure name.
	Name string
	// Unified selects the MARSS organization: one queue whose entries
	// hold data for loads and stores alike. False selects the Gem5
	// organization: separate load and store queues, data held only by
	// the store side.
	Unified bool
	// LoadEntries is the queue size for loads (the total size when
	// Unified).
	LoadEntries int
	// StoreEntries is the store queue size (ignored when Unified).
	StoreEntries int
}

type lsqEntry struct {
	valid     bool
	isStore   bool
	robIdx    int
	seq       uint64
	addr      uint64
	size      uint8
	addrValid bool
	dataValid bool
	executed  bool // loads: result obtained
}

// FwdResult is the answer to a load's store-queue search.
type FwdResult struct {
	// UnknownOlder is set when at least one older store has an
	// unresolved address. The conservative (Gem5-like) core refuses to
	// issue the load; the aggressive (MARSS-like) core proceeds and
	// relies on violation detection.
	UnknownOlder bool
	// MustWait is set when an older store overlaps but cannot forward
	// (partial cover or data not yet available).
	MustWait bool
	// Forward is set when the youngest older overlapping store fully
	// covers the load and its data can be forwarded.
	Forward bool
	// FwdIdx is the forwarding store's queue index.
	FwdIdx int
	// FwdShift is the byte offset of the load within the store's data.
	FwdShift uint
}

// LSQ is the load/store queue.
type LSQ struct {
	cfg     LSQConfig
	entries []lsqEntry
	data    *bitarray.Array
	loads   int
	stores  int
}

// NewLSQ builds a load/store queue; it panics on bad geometry.
func NewLSQ(cfg LSQConfig) *LSQ {
	if cfg.LoadEntries <= 0 || (!cfg.Unified && cfg.StoreEntries <= 0) {
		panic(fmt.Sprintf("pipeline: bad LSQ config %+v", cfg))
	}
	total := cfg.LoadEntries
	dataEntries := cfg.LoadEntries
	if !cfg.Unified {
		total += cfg.StoreEntries
		dataEntries = cfg.StoreEntries
	}
	q := &LSQ{
		cfg:     cfg,
		entries: make([]lsqEntry, total),
		data:    bitarray.New(cfg.Name, dataEntries, 64),
	}
	q.data.SetValidFunc(func(e int) bool {
		i := e
		if !cfg.Unified {
			i += cfg.LoadEntries
		}
		return q.entries[i].valid
	})
	return q
}

// DataArray returns the injectable data storage (the structure of the
// paper's Fig. 6).
func (q *LSQ) DataArray() *bitarray.Array { return q.data }

// Config returns the queue configuration.
func (q *LSQ) Config() LSQConfig { return q.cfg }

// Loads returns the number of load entries in flight.
func (q *LSQ) Loads() int { return q.loads }

// Stores returns the number of store entries in flight.
func (q *LSQ) Stores() int { return q.stores }

// CanAlloc reports whether an entry of the given kind can be allocated.
func (q *LSQ) CanAlloc(isStore bool) bool {
	if q.cfg.Unified {
		return q.loads+q.stores < q.cfg.LoadEntries
	}
	if isStore {
		return q.stores < q.cfg.StoreEntries
	}
	return q.loads < q.cfg.LoadEntries
}

// allocRange returns the index range to search for a free slot.
func (q *LSQ) allocRange(isStore bool) (lo, hi int) {
	if q.cfg.Unified {
		return 0, q.cfg.LoadEntries
	}
	if isStore {
		return q.cfg.LoadEntries, q.cfg.LoadEntries + q.cfg.StoreEntries
	}
	return 0, q.cfg.LoadEntries
}

// dataIdx maps a queue index to its slot in the data array, or -1 when
// the entry has no data storage (split-organization loads).
func (q *LSQ) dataIdx(idx int) int {
	if q.cfg.Unified {
		return idx
	}
	if idx < q.cfg.LoadEntries {
		return -1
	}
	return idx - q.cfg.LoadEntries
}

// HasDataStorage reports whether entry idx owns a data array slot.
func (q *LSQ) HasDataStorage(idx int) bool { return q.dataIdx(idx) >= 0 }

// Alloc reserves an entry for a memory op in program order seq.
func (q *LSQ) Alloc(isStore bool, robIdx int, seq uint64) (int, bool) {
	if !q.CanAlloc(isStore) {
		return -1, false
	}
	lo, hi := q.allocRange(isStore)
	for i := lo; i < hi; i++ {
		if !q.entries[i].valid {
			q.entries[i] = lsqEntry{valid: true, isStore: isStore, robIdx: robIdx, seq: seq}
			if isStore {
				q.stores++
			} else {
				q.loads++
			}
			return i, true
		}
	}
	return -1, false
}

// SetAddr records the resolved address of entry idx.
func (q *LSQ) SetAddr(idx int, addr uint64, size uint8) {
	e := &q.entries[idx]
	e.addr, e.size, e.addrValid = addr, size, true
}

// AddrValid reports whether the entry's address has been resolved.
func (q *LSQ) AddrValid(idx int) bool { return q.entries[idx].addrValid }

// Addr returns the resolved address and size of entry idx.
func (q *LSQ) Addr(idx int) (uint64, uint8) { return q.entries[idx].addr, q.entries[idx].size }

// IsStore reports whether the entry is a store.
func (q *LSQ) IsStore(idx int) bool { return q.entries[idx].isStore }

// RobIdx returns the ROB index of the entry.
func (q *LSQ) RobIdx(idx int) int { return q.entries[idx].robIdx }

// PutData deposits a value into the entry's data slot (store data at
// execute; load results too in the unified organization).
func (q *LSQ) PutData(idx int, v uint64) {
	if di := q.dataIdx(idx); di >= 0 {
		q.data.WriteUint64(di, v)
	}
	q.entries[idx].dataValid = true
}

// Data reads the entry's data slot through the faultable array.
func (q *LSQ) Data(idx int) uint64 {
	di := q.dataIdx(idx)
	if di < 0 {
		return 0
	}
	return q.data.ReadUint64(di)
}

// DataValid reports whether data has been deposited.
func (q *LSQ) DataValid(idx int) bool { return q.entries[idx].dataValid }

// MarkExecuted flags a load whose result has been obtained.
func (q *LSQ) MarkExecuted(idx int) { q.entries[idx].executed = true }

// QueryLoad searches the older stores for the load at idx.
func (q *LSQ) QueryLoad(idx int) FwdResult {
	le := &q.entries[idx]
	var res FwdResult
	res.FwdIdx = -1
	var bestSeq uint64
	for i := range q.entries {
		se := &q.entries[i]
		if !se.valid || !se.isStore || se.seq >= le.seq {
			continue
		}
		if !se.addrValid {
			res.UnknownOlder = true
			continue
		}
		if !overlap(se.addr, se.size, le.addr, le.size) {
			continue
		}
		if se.seq > bestSeq {
			bestSeq = se.seq
			if covers(se.addr, se.size, le.addr, le.size) && se.dataValid && q.HasDataStorage(i) {
				res.Forward = true
				res.FwdIdx = i
				res.FwdShift = uint(le.addr - se.addr)
				res.MustWait = false
			} else {
				res.Forward = false
				res.FwdIdx = -1
				res.MustWait = true
			}
		}
	}
	return res
}

// StoreResolved reports the ROB indices of younger already-executed
// loads that overlap the just-resolved store at idx — the ordering
// violations of aggressive load speculation.
func (q *LSQ) StoreResolved(idx int) []int {
	se := &q.entries[idx]
	var violated []int
	for i := range q.entries {
		le := &q.entries[i]
		if !le.valid || le.isStore || le.seq <= se.seq || !le.executed || !le.addrValid {
			continue
		}
		if overlap(se.addr, se.size, le.addr, le.size) {
			violated = append(violated, le.robIdx)
		}
	}
	return violated
}

// LineSharers returns the queue indices of younger already-executed
// loads whose address shares the cache line of the just-resolved store
// at idx without overlapping its bytes. Aggressive cores (MARSS) replay
// such loads — re-accessing the cache — which is the paper's Remark 3
// mechanism behind MaFIN's inflated executed-load counts.
func (q *LSQ) LineSharers(idx int, lineSize uint64) []int {
	se := &q.entries[idx]
	line := se.addr &^ (lineSize - 1)
	var out []int
	for i := range q.entries {
		le := &q.entries[i]
		if !le.valid || le.isStore || le.seq <= se.seq || !le.executed || !le.addrValid {
			continue
		}
		if le.addr&^(lineSize-1) != line {
			continue
		}
		if overlap(se.addr, se.size, le.addr, le.size) {
			continue // a true violation, reported by StoreResolved
		}
		out = append(out, i)
	}
	return out
}

// Free releases entry idx (commit or squash).
func (q *LSQ) Free(idx int) {
	e := &q.entries[idx]
	if !e.valid {
		return
	}
	if di := q.dataIdx(idx); di >= 0 {
		q.data.InvalidateObserve(di)
	}
	if e.isStore {
		q.stores--
	} else {
		q.loads--
	}
	e.valid = false
}

// FlushAll discards every entry (commit-point recovery).
func (q *LSQ) FlushAll() {
	for i := range q.entries {
		if q.entries[i].valid {
			q.Free(i)
		}
	}
}

func overlap(a uint64, an uint8, b uint64, bn uint8) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

func covers(sa uint64, sn uint8, la uint64, ln uint8) bool {
	return sa <= la && la+uint64(ln) <= sa+uint64(sn)
}
