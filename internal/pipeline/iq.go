package pipeline

import (
	"repro/internal/bitarray"
	"repro/internal/isa"
)

// The issue queue stores each waiting micro-op as a packed 128-bit
// payload in a faultable array, so injected faults corrupt the very bits
// that encode the operation, its operands and its immediate — the way a
// real scheduler entry would be corrupted.
//
// Packed layout (word 1):
//
//	bits  0..7   opcode
//	bits  8..19  dst  (bit 19: FP class, bits 8..18 index; 0xfff = none)
//	bits 20..31  src1
//	bits 32..43  src2
//	bits 44..47  condition code
//	bits 48..51  access size
//	bit  52      sign-extend
//	bit  53      uses-immediate
//
// Word 0 is the 64-bit immediate.

const packedNone = 0xfff

func packReg(p PhysReg) uint64 {
	if !p.Valid() {
		return packedNone
	}
	v := uint64(p.Idx) & 0x7ff
	if p.FP {
		v |= 0x800
	}
	return v
}

func unpackReg(v uint64) PhysReg {
	v &= 0xfff
	if v == packedNone {
		return PhysNone
	}
	return PhysReg{FP: v&0x800 != 0, Idx: uint16(v & 0x7ff)}
}

// PackUop packs a renamed micro-op into the two payload words.
func PackUop(u isa.Uop, dst, src1, src2 PhysReg) (w0, w1 uint64) {
	w0 = uint64(u.Imm)
	w1 = uint64(u.Op) |
		packReg(dst)<<8 |
		packReg(src1)<<20 |
		packReg(src2)<<32 |
		uint64(u.Cond&0xf)<<44 |
		uint64(u.Size&0xf)<<48
	if u.SignExt {
		w1 |= 1 << 52
	}
	if u.UsesImm {
		w1 |= 1 << 53
	}
	return w0, w1
}

// PackedUop is the unpacked view of an issue queue payload.
type PackedUop struct {
	Op              isa.Op
	Dst, Src1, Src2 PhysReg
	Cond            isa.Cond
	Size            uint8
	SignExt         bool
	UsesImm         bool
	Imm             int64
}

// UnpackUop decodes the payload words. A corrupted payload can decode to
// an out-of-range opcode or condition; the caller (the simulator core)
// decides whether that trips an assertion (MaFIN) or propagates
// (GeFIN).
func UnpackUop(w0, w1 uint64) PackedUop {
	return PackedUop{
		Op:      isa.Op(w1 & 0xff),
		Dst:     unpackReg(w1 >> 8),
		Src1:    unpackReg(w1 >> 20),
		Src2:    unpackReg(w1 >> 32),
		Cond:    isa.Cond(w1 >> 44 & 0xf),
		Size:    uint8(w1 >> 48 & 0xf),
		SignExt: w1>>52&1 != 0,
		UsesImm: w1>>53&1 != 0,
		Imm:     int64(w0),
	}
}

// IQ is the issue queue.
type IQ struct {
	arr      *bitarray.Array
	occupied []bool
	robIdx   []int
	count    int
}

// NewIQ builds an issue queue of the given size.
func NewIQ(name string, size int) *IQ {
	if size <= 0 {
		panic("pipeline: IQ size must be positive")
	}
	q := &IQ{
		arr:      bitarray.New(name, size, 128),
		occupied: make([]bool, size),
		robIdx:   make([]int, size),
	}
	q.arr.SetValidFunc(func(e int) bool { return q.occupied[e] })
	return q
}

// Array returns the injectable payload storage.
func (q *IQ) Array() *bitarray.Array { return q.arr }

// Len returns the number of waiting micro-ops.
func (q *IQ) Len() int { return q.count }

// Full reports whether the queue has no space.
func (q *IQ) Full() bool { return q.count == len(q.occupied) }

// Alloc inserts a packed micro-op tied to the given ROB index and
// reports whether space was available.
func (q *IQ) Alloc(w0, w1 uint64, robIdx int) bool {
	for i := range q.occupied {
		if !q.occupied[i] {
			q.occupied[i] = true
			q.robIdx[i] = robIdx
			q.arr.WriteWord(i, 0, w0)
			q.arr.WriteWord(i, 1, w1)
			q.count++
			return true
		}
	}
	return false
}

// Entry reads the payload of slot i through the faultable array.
func (q *IQ) Entry(i int) (PackedUop, int) {
	w0, w1 := q.arr.ReadWordPair(i)
	return UnpackUop(w0, w1), q.robIdx[i]
}

// Occupied reports whether slot i holds a waiting micro-op.
func (q *IQ) Occupied(i int) bool { return q.occupied[i] }

// Size returns the slot count.
func (q *IQ) Size() int { return len(q.occupied) }

// Release frees slot i after issue.
func (q *IQ) Release(i int) {
	if q.occupied[i] {
		q.occupied[i] = false
		q.count--
	}
}

// FlushAll empties the queue (commit-point recovery).
func (q *IQ) FlushAll() {
	for i := range q.occupied {
		if q.occupied[i] {
			q.arr.InvalidateObserve(i)
			q.occupied[i] = false
		}
	}
	q.count = 0
}
