package pipeline

// RegFileState is a deep copy of a physical register file, its rename
// tables and allocation state, used by the simulators' checkpointing
// support. Checkpoints are taken on drained machines, where the
// speculative RAT equals the committed RAT.
type RegFileState struct {
	Arr       []uint64
	Ready     []bool
	Live      []bool
	Free      []uint16
	RAT       []uint16
	CommitRAT []uint16
	Reads     uint64
	Writes    uint64
}

// State captures the register file.
func (r *RegFile) State() *RegFileState {
	s := &RegFileState{
		Arr:       r.arr.Snapshot(),
		Ready:     make([]bool, len(r.ready)),
		Live:      make([]bool, len(r.live)),
		Free:      make([]uint16, len(r.free)),
		RAT:       make([]uint16, len(r.rat)),
		CommitRAT: make([]uint16, len(r.commitRAT)),
		Reads:     r.reads,
		Writes:    r.writes,
	}
	copy(s.Ready, r.ready)
	copy(s.Live, r.live)
	copy(s.Free, r.free)
	copy(s.RAT, r.rat)
	copy(s.CommitRAT, r.commitRAT)
	return s
}

// SetState restores a previously captured state (copied, so one state
// may seed many register files).
func (r *RegFile) SetState(s *RegFileState) {
	r.arr.RestoreSnapshot(s.Arr)
	copy(r.ready, s.Ready)
	copy(r.live, s.Live)
	r.free = append(r.free[:0], s.Free...)
	copy(r.rat, s.RAT)
	copy(r.commitRAT, s.CommitRAT)
	r.reads = s.Reads
	r.writes = s.Writes
}
