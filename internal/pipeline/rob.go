package pipeline

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/isa"
)

// ROBEntry is one in-flight micro-op.
type ROBEntry struct {
	Seq uint64
	PC  uint64
	// NextPC is the fall-through address of the parent macro-instruction.
	NextPC uint64
	Uop    isa.Uop

	// Renamed operands.
	Dst, OldDst, Src1, Src2 PhysReg
	ArchDst                 isa.Reg

	// Execution state.
	Dispatched bool // placed in the issue queue (or LSQ path)
	Executed   bool
	Exc        isa.Exception
	ExcInfo    uint64

	// Branch state (valid on the uop carrying the branch of the
	// macro-instruction).
	IsBranch     bool
	BranchInfo   isa.BranchInfo
	HasPred      bool
	Pred         branch.Prediction
	PredTaken    bool
	PredTarget   uint64
	ActualTaken  bool
	ActualTarget uint64
	Mispredicted bool

	// Memory state.
	LSQIdx int // -1 when not a memory op

	// Violated marks a load caught reading stale data by a later-
	// resolving older store (aggressive load speculation).
	Violated bool

	// Syscall/halt serialization.
	IsSyscall bool
}

// ROB is the reorder buffer: a ring of in-flight micro-ops in program
// order.
type ROB struct {
	entries []ROBEntry
	head    int
	count   int
	seq     uint64
}

// NewROB builds a reorder buffer of the given capacity.
func NewROB(size int) *ROB {
	if size <= 0 {
		panic("pipeline: ROB size must be positive")
	}
	return &ROB{entries: make([]ROBEntry, size)}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.entries) }

// Len returns the number of in-flight micro-ops.
func (r *ROB) Len() int { return r.count }

// Full reports whether the buffer has no space.
func (r *ROB) Full() bool { return r.count == len(r.entries) }

// Empty reports whether nothing is in flight.
func (r *ROB) Empty() bool { return r.count == 0 }

// Alloc appends a new entry at the tail and returns its index. It panics
// when full — dispatch must check Full first.
func (r *ROB) Alloc() int {
	if r.Full() {
		panic("pipeline: ROB overflow")
	}
	idx := (r.head + r.count) % len(r.entries)
	r.count++
	r.seq++
	r.entries[idx] = ROBEntry{Seq: r.seq, LSQIdx: -1}
	return idx
}

// At returns the entry at index idx.
func (r *ROB) At(idx int) *ROBEntry { return &r.entries[idx] }

// Head returns the index of the oldest entry; call only when non-empty.
func (r *ROB) Head() int {
	if r.Empty() {
		panic("pipeline: ROB head of empty buffer")
	}
	return r.head
}

// PopHead retires the oldest entry.
func (r *ROB) PopHead() {
	if r.Empty() {
		panic("pipeline: ROB pop of empty buffer")
	}
	r.head = (r.head + 1) % len(r.entries)
	r.count--
}

// Walk visits the in-flight entries in program order (oldest first),
// stopping early when fn returns false.
func (r *ROB) Walk(fn func(idx int, e *ROBEntry) bool) {
	for i := 0; i < r.count; i++ {
		idx := (r.head + i) % len(r.entries)
		if !fn(idx, &r.entries[idx]) {
			return
		}
	}
}

// FlushAll discards every in-flight entry (commit-point recovery).
func (r *ROB) FlushAll() {
	r.head = 0
	r.count = 0
}

// String summarizes occupancy for debug logs.
func (r *ROB) String() string {
	return fmt.Sprintf("ROB[%d/%d]", r.count, len(r.entries))
}
