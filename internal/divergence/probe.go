package divergence

// Divergence detection compares the committed-instruction PC stream of
// an injected run against the golden run's, block by block: the stream
// is chunked into fixed blocks of BlockSize architectural instructions
// (block b covers committed indices [b·B, (b+1)·B)) and each complete
// block is folded into one FNV-1a hash. The golden signature is built
// once per {tool, benchmark} by a probed golden replay and memoized;
// every injected run then costs one hash fold per committed instruction
// plus one word compare per block — no golden state is kept resident
// and nothing is buffered.
//
// Because injected runs may attach mid-stream (checkpoint restores and
// detail-window seeds resume at an arbitrary committed index), the
// probe skips to the next block boundary before it starts folding: the
// first partially observed block is never compared. Committed-index
// continuity across those seams is what makes this sound — checkpoint
// restore reinstates the full Stats block and window seeding sets
// CommittedInstrs to the functional tier's step count, and both tiers
// count architectural instructions 1:1.
//
// The comparison is a control-flow proxy with one-block resolution: a
// run whose PC stream matches the golden's block hashes to the end is
// reported as not diverged even if it wrote different data (those runs
// are caught at output compare), and the golden run's final partial
// block is never compared.

// BlockSize is the number of committed instructions folded into one
// comparison hash. 64 keeps the signature ~1/64 the size of the PC
// stream while locating divergence to within a block.
const BlockSize = 64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// foldPC folds one committed PC into an FNV-1a running hash,
// little-endian byte by byte.
func foldPC(h, pc uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= pc & 0xff
		h *= fnvPrime64
		pc >>= 8
	}
	return h
}

// Signature is the golden run's committed-stream fingerprint: one hash
// per complete BlockSize-instruction block, plus the total committed
// count. It is immutable once built and safe to share across
// concurrent probes.
type Signature struct {
	BlockSize int
	Hashes    []uint64
	Committed uint64
}

// Blocks returns the number of complete comparison blocks.
func (s *Signature) Blocks() int { return len(s.Hashes) }

// SignatureBuilder accumulates a Signature from a full golden replay.
// It implements the same Commit(pc, index, cycle) hook the cores call
// for probes, so it can be attached directly as a commit probe.
type SignatureBuilder struct {
	hashes    []uint64
	cur       uint64
	n         int
	committed uint64
}

// NewSignatureBuilder returns an empty builder.
func NewSignatureBuilder() *SignatureBuilder {
	return &SignatureBuilder{cur: fnvOffset64}
}

// Commit folds one committed instruction. The builder observes the
// stream from index 0, so every block it sees is complete.
func (b *SignatureBuilder) Commit(pc, index, cycle uint64) {
	_ = index
	_ = cycle
	b.committed++
	b.cur = foldPC(b.cur, pc)
	b.n++
	if b.n == BlockSize {
		b.hashes = append(b.hashes, b.cur)
		b.cur, b.n = fnvOffset64, 0
	}
}

// Signature finalizes the builder, dropping the trailing partial block.
func (b *SignatureBuilder) Signature() Signature {
	return Signature{BlockSize: BlockSize, Hashes: b.hashes, Committed: b.committed}
}

// Probe compares one injected run's committed stream against a golden
// Signature. It is attached to a single simulated machine and is not
// safe for concurrent use (each run owns its own probe). After the
// first block mismatch it stops hashing entirely — a diverged run pays
// only the nil-check at the commit hook.
type Probe struct {
	sig *Signature

	started bool
	block   int
	cur     uint64
	n       int

	diverged bool
	divCycle uint64
	divIndex uint64
}

// NewProbe returns a probe comparing against sig.
func NewProbe(sig *Signature) *Probe {
	return &Probe{sig: sig, cur: fnvOffset64}
}

// Commit folds one committed instruction of the injected run. index is
// the architectural commit index (CommittedInstrs-1), cycle the commit
// cycle. The probe may attach mid-stream; it aligns itself to the next
// block boundary before comparing.
func (p *Probe) Commit(pc, index, cycle uint64) {
	if p.diverged {
		return
	}
	if !p.started {
		if index%BlockSize != 0 {
			return // skip the partially observed block
		}
		p.started = true
		p.block = int(index / BlockSize)
	}
	p.cur = foldPC(p.cur, pc)
	p.n++
	if p.n < BlockSize {
		return
	}
	// A block completed: the run diverged if it hashes differently from
	// the golden block, or if it committed a complete block past the
	// golden run's last one (a longer stream is a different stream —
	// the fault-free prefix is identical, so a matching run ends where
	// the golden did).
	if p.block >= len(p.sig.Hashes) || p.cur != p.sig.Hashes[p.block] {
		p.diverged = true
		p.divCycle = cycle
		p.divIndex = uint64(p.block) * BlockSize
		return
	}
	p.block++
	p.cur, p.n = fnvOffset64, 0
}

// Diverged reports whether the stream left the golden path, and if so
// the commit cycle at which the mismatching block completed and the
// architectural index of that block's first instruction.
func (p *Probe) Diverged() (diverged bool, cycle, index uint64) {
	return p.diverged, p.divCycle, p.divIndex
}
