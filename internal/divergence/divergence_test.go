package divergence

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// goldenStream is a synthetic committed-PC stream: pc(i) = 0x1000 + 4i,
// cycle(i) = 3i. n is the committed-instruction count.
func goldenStream(n int) []uint64 {
	pcs := make([]uint64, n)
	for i := range pcs {
		pcs[i] = 0x1000 + uint64(i)*4
	}
	return pcs
}

func buildSignature(pcs []uint64) Signature {
	b := NewSignatureBuilder()
	for i, pc := range pcs {
		b.Commit(pc, uint64(i), uint64(i)*3)
	}
	return b.Signature()
}

// TestSignatureShape pins the block math: complete blocks are hashed,
// the trailing partial block is dropped, the committed count is exact.
func TestSignatureShape(t *testing.T) {
	const n = 5*BlockSize + 17
	sig := buildSignature(goldenStream(n))
	if sig.BlockSize != BlockSize {
		t.Fatalf("BlockSize = %d, want %d", sig.BlockSize, BlockSize)
	}
	if sig.Blocks() != 5 {
		t.Fatalf("Blocks() = %d, want 5 (trailing partial dropped)", sig.Blocks())
	}
	if sig.Committed != n {
		t.Fatalf("Committed = %d, want %d", sig.Committed, n)
	}
}

// TestProbeMatchingStream: replaying the exact golden stream through a
// probe must not report divergence.
func TestProbeMatchingStream(t *testing.T) {
	pcs := goldenStream(4*BlockSize + 9)
	sig := buildSignature(pcs)
	p := NewProbe(&sig)
	for i, pc := range pcs {
		p.Commit(pc, uint64(i), uint64(i)*3)
	}
	if div, _, _ := p.Diverged(); div {
		t.Fatal("identical stream reported as diverged")
	}
}

// TestProbeDetectsDivergence flips one PC and checks the probe locates
// the divergence to the containing block (index of the block's first
// instruction, cycle of the instruction that completed the block).
func TestProbeDetectsDivergence(t *testing.T) {
	pcs := goldenStream(6 * BlockSize)
	sig := buildSignature(pcs)
	const bad = 3*BlockSize + 11 // inside block 3
	pcs[bad] ^= 0x40

	p := NewProbe(&sig)
	for i, pc := range pcs {
		p.Commit(pc, uint64(i), uint64(i)*3)
	}
	div, cycle, index := p.Diverged()
	if !div {
		t.Fatal("corrupted stream not reported as diverged")
	}
	if want := uint64(3 * BlockSize); index != want {
		t.Fatalf("DivergeIndex = %d, want %d (first instruction of the mismatching block)", index, want)
	}
	// The block completes at committed index 4*BlockSize-1.
	if want := uint64(4*BlockSize-1) * 3; cycle != want {
		t.Fatalf("DivergeCycle = %d, want %d", cycle, want)
	}
}

// TestProbeMidStreamAttach: a probe attached mid-block (a checkpoint
// restore or window seed resumes at an arbitrary committed index) must
// skip the partial block — even a corruption inside it is invisible —
// and compare cleanly from the next boundary.
func TestProbeMidStreamAttach(t *testing.T) {
	pcs := goldenStream(5 * BlockSize)
	sig := buildSignature(pcs)

	// Attach at an unaligned index; corrupt a PC inside the skipped
	// partial block. The probe must not flag it (that block is never
	// compared) and must not misalign the following blocks.
	start := 2*BlockSize + 7
	stream := append([]uint64(nil), pcs...)
	stream[start+3] ^= 0xff
	p := NewProbe(&sig)
	for i := start; i < len(stream); i++ {
		p.Commit(stream[i], uint64(i), uint64(i)*3)
	}
	if div, _, _ := p.Diverged(); div {
		t.Fatal("corruption inside the skipped partial block reported as divergence")
	}

	// Same attach point, corruption in the first fully observed block:
	// that one must be caught.
	stream = append([]uint64(nil), pcs...)
	stream[3*BlockSize+5] ^= 0xff
	p = NewProbe(&sig)
	for i := start; i < len(stream); i++ {
		p.Commit(stream[i], uint64(i), uint64(i)*3)
	}
	div, _, index := p.Diverged()
	if !div {
		t.Fatal("corruption after mid-stream attach not detected")
	}
	if want := uint64(3 * BlockSize); index != want {
		t.Fatalf("DivergeIndex = %d, want %d", index, want)
	}
}

// TestProbeLongerStream: a run that commits a complete block past the
// golden run's last block is a different stream even if every shared
// block matched.
func TestProbeLongerStream(t *testing.T) {
	pcs := goldenStream(3 * BlockSize)
	sig := buildSignature(pcs)
	p := NewProbe(&sig)
	long := goldenStream(4 * BlockSize) // same prefix, one extra block
	for i, pc := range long {
		p.Commit(pc, uint64(i), uint64(i)*3)
	}
	div, _, index := p.Diverged()
	if !div {
		t.Fatal("overlong stream not reported as diverged")
	}
	if want := uint64(3 * BlockSize); index != want {
		t.Fatalf("DivergeIndex = %d, want %d (first block past the golden stream)", index, want)
	}
}

// TestDerive pins the derived masking-depth fields and their
// idempotence.
func TestDerive(t *testing.T) {
	r := Record{
		Cycles:        1000,
		Observed:      true,
		FirstObsCycle: 100,
		Diverged:      true,
		DivergeCycle:  350,
	}
	r.Derive()
	if r.PropagationCycles != 250 || r.TimeToOutcome != 900 {
		t.Fatalf("propagation/time-to-outcome = %d/%d, want 250/900", r.PropagationCycles, r.TimeToOutcome)
	}
	r.Derive() // idempotent: recomputes from primaries, never accumulates
	if r.PropagationCycles != 250 || r.TimeToOutcome != 900 {
		t.Fatalf("Derive is not idempotent: %+v", r)
	}

	unobserved := Record{Cycles: 1000, Diverged: true, DivergeCycle: 350}
	unobserved.Derive()
	if unobserved.PropagationCycles != 0 || unobserved.TimeToOutcome != 0 {
		t.Fatalf("unobserved run carries depth fields: %+v", unobserved)
	}
}

// TestWriteReadRecords checks the JSONL round trip: version stamping on
// write, tolerance for versionless rows, rejection of newer versions.
func TestWriteReadRecords(t *testing.T) {
	recs := []Record{
		{Campaign: "a", MaskID: 0, Status: "completed", Class: "Masked", Cycles: 10},
		{Campaign: "a", MaskID: 1, Status: "completed", Class: "SDC", Cycles: 20,
			Observed: true, FirstObsCycle: 5, Diverged: true, DivergeCycle: 12},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version":1`) {
		t.Fatalf("written records lack the schema version: %s", buf.String())
	}
	back, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].DivergeCycle != 12 || back[1].Class != "SDC" {
		t.Fatalf("round trip lost fields: %+v", back)
	}

	// Versionless rows (older files) parse; newer versions are refused.
	if recs, err := ReadRecords(strings.NewReader(`{"campaign":"a","mask_id":0,"status":"completed","class":"Masked","cycles":1}` + "\n")); err != nil || len(recs) != 1 {
		t.Fatalf("versionless record rejected: %v", err)
	}
	if _, err := ReadRecords(strings.NewReader(`{"schema_version":99,"campaign":"a","mask_id":0}` + "\n")); err == nil {
		t.Fatal("record from a newer schema accepted")
	}
}

// TestSinkByteStable inserts records concurrently in scrambled order
// and checks the flushed bytes equal a serial in-order flush — the
// worker-count independence property the distributed differential
// relies on.
func TestSinkByteStable(t *testing.T) {
	mk := func(camp string, id int) Record {
		return Record{Campaign: camp, MaskID: id, Status: "completed", Class: "Masked", Cycles: uint64(100 + id)}
	}
	serial := NewSink()
	for _, camp := range []string{"a", "b"} {
		for id := 0; id < 40; id++ {
			serial.Add(mk(camp, id))
		}
	}
	var want bytes.Buffer
	if err := serial.Flush(&want); err != nil {
		t.Fatal(err)
	}

	scrambled := NewSink()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			camp := "a"
			if g >= 2 {
				camp = "b"
			}
			for i := 39; i >= 0; i-- {
				if i%2 == g%2 {
					scrambled.Add(mk(camp, i))
				}
			}
		}(g)
	}
	wg.Wait()
	if scrambled.Len() != 80 {
		t.Fatalf("scrambled sink has %d records, want 80", scrambled.Len())
	}
	var got bytes.Buffer
	if err := scrambled.Flush(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("divergence bytes depend on insertion order")
	}
}

// TestAggregate hand-builds records and checks the propagation table
// row math, including the pruned/resumed skip.
func TestAggregate(t *testing.T) {
	recs := []Record{
		// Observed + diverged, propagation 100, outcome 500.
		{Campaign: "k", Class: "SDC", Cycles: 600, Observed: true, FirstObsCycle: 100,
			FaultTouches: 4, Diverged: true, DivergeCycle: 200, PropagationCycles: 100, TimeToOutcome: 500},
		// Observed + diverged, propagation 300.
		{Campaign: "k", Class: "DUE", Cycles: 900, Observed: true, FirstObsCycle: 100,
			FaultTouches: 2, Diverged: true, DivergeCycle: 400, PropagationCycles: 300, TimeToOutcome: 800},
		// Observed, never diverged, classified Masked: the masking-depth row.
		{Campaign: "k", Class: "Masked", Cycles: 600, Observed: true, FirstObsCycle: 50,
			FaultTouches: 6, TimeToOutcome: 550},
		// Never observed.
		{Campaign: "k", Class: "Masked", Cycles: 600},
		// Pruned and resumed rows carry no measurements: skipped.
		{Campaign: "k", Class: "Masked", Pruned: "dead"},
		{Campaign: "k", Class: "SDC", Resumed: true},
	}
	rows := Aggregate(recs)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Runs != 4 || r.Observed != 3 || r.Diverged != 2 || r.MaskedAfterTouch != 1 {
		t.Fatalf("runs/obs/div/masked = %d/%d/%d/%d, want 4/3/2/1", r.Runs, r.Observed, r.Diverged, r.MaskedAfterTouch)
	}
	if r.PropagationP50 != 100 || r.PropagationMax != 300 {
		t.Fatalf("propagation p50/max = %d/%d, want 100/300", r.PropagationP50, r.PropagationMax)
	}
	if want := (4 + 2 + 6.0) / 3; r.MeanTouches != want {
		t.Fatalf("MeanTouches = %v, want %v", r.MeanTouches, want)
	}

	var buf bytes.Buffer
	if err := WriteTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campaign") || !strings.Contains(buf.String(), "k") {
		t.Fatalf("table output: %s", buf.String())
	}
}
