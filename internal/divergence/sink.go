package divergence

import (
	"io"
	"sort"
	"sync"
)

// Sink accumulates divergence records in memory during a campaign and
// writes them as one byte-stable JSONL file at the end. Add is safe for
// concurrent use; Records sorts by (campaign, mask) so the output is
// independent of worker count and completion order, mirroring the
// injection trace sink.
type Sink struct {
	mu   sync.Mutex
	recs []Record
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{} }

// Add appends one record.
func (s *Sink) Add(rec Record) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// Len reports the number of accumulated records.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns a sorted copy of the accumulated records.
func (s *Sink) Records() []Record {
	s.mu.Lock()
	recs := append([]Record(nil), s.recs...)
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Campaign != recs[j].Campaign {
			return recs[i].Campaign < recs[j].Campaign
		}
		return recs[i].MaskID < recs[j].MaskID
	})
	return recs
}

// Flush writes the sorted records to w as JSON Lines.
func (s *Sink) Flush(w io.Writer) error {
	return WriteRecords(w, s.Records())
}
