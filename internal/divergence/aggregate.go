package divergence

import (
	"fmt"
	"io"
	"sort"
)

// TableRow is one per-campaign line of the propagation table: how many
// injections were consumed at all, how many of those escaped into the
// architectural stream, and how deep the masking ran for the ones that
// did. A campaign key is {tool, benchmark, structure}, so rows compare
// the same fault population across simulators.
type TableRow struct {
	Campaign string

	Runs     int // injections (simulated rows only)
	Observed int // corrupt value consumed at least once
	Diverged int // architectural stream left the golden path

	// MaskedAfterTouch counts runs whose corruption was consumed but
	// never diverged and still classified Masked — the microarchitec-
	// tural masking depth the differential study is after.
	MaskedAfterTouch int

	// Propagation percentiles are over diverged runs: cycles from first
	// consumption to divergence. Outcome percentiles are over observed
	// runs: cycles from first consumption to the end of the run.
	PropagationP50, PropagationP90, PropagationMax uint64
	OutcomeP50                                     uint64

	// MeanTouches is the mean consumption count over observed runs.
	MeanTouches float64
}

func percentile(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p * float64(len(xs)-1))
	return xs[i]
}

// Aggregate folds records into per-campaign table rows, sorted by
// campaign key. Pruned and resumed rows are skipped — they carry no
// propagation measurements.
func Aggregate(recs []Record) []TableRow {
	type acc struct {
		row      TableRow
		props    []uint64
		outcomes []uint64
		touches  uint64
	}
	byCampaign := make(map[string]*acc)
	var keys []string
	for _, rec := range recs {
		if rec.Pruned != "" || rec.Resumed {
			continue
		}
		a, ok := byCampaign[rec.Campaign]
		if !ok {
			a = &acc{row: TableRow{Campaign: rec.Campaign}}
			byCampaign[rec.Campaign] = a
			keys = append(keys, rec.Campaign)
		}
		a.row.Runs++
		if rec.Observed {
			a.row.Observed++
			a.touches += rec.FaultTouches
			a.outcomes = append(a.outcomes, rec.TimeToOutcome)
			if rec.Diverged {
				a.row.Diverged++
				a.props = append(a.props, rec.PropagationCycles)
			} else if rec.Class == "Masked" {
				a.row.MaskedAfterTouch++
			}
		}
	}
	sort.Strings(keys)
	rows := make([]TableRow, 0, len(keys))
	for _, k := range keys {
		a := byCampaign[k]
		sort.Slice(a.props, func(i, j int) bool { return a.props[i] < a.props[j] })
		sort.Slice(a.outcomes, func(i, j int) bool { return a.outcomes[i] < a.outcomes[j] })
		a.row.PropagationP50 = percentile(a.props, 0.50)
		a.row.PropagationP90 = percentile(a.props, 0.90)
		if n := len(a.props); n > 0 {
			a.row.PropagationMax = a.props[n-1]
		}
		a.row.OutcomeP50 = percentile(a.outcomes, 0.50)
		if a.row.Observed > 0 {
			a.row.MeanTouches = float64(a.touches) / float64(a.row.Observed)
		}
		rows = append(rows, a.row)
	}
	return rows
}

// WriteTable renders rows as a fixed-width text table (the EXPERIMENTS
// propagation-depth table and the smokecheck -divergence-table output).
func WriteTable(w io.Writer, rows []TableRow) error {
	if _, err := fmt.Fprintf(w, "%-40s %5s %5s %5s %6s %9s %9s %9s %9s %8s\n",
		"campaign", "runs", "obs", "div", "masked", "prop-p50", "prop-p90", "prop-max", "out-p50", "touches"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-40s %5d %5d %5d %6d %9d %9d %9d %9d %8.1f\n",
			r.Campaign, r.Runs, r.Observed, r.Diverged, r.MaskedAfterTouch,
			r.PropagationP50, r.PropagationP90, r.PropagationMax, r.OutcomeP50, r.MeanTouches); err != nil {
			return err
		}
	}
	return nil
}
