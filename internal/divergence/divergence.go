// Package divergence is the provenance layer of the differential fault
// study: per injected run it records *how* the corruption travelled, not
// just the terminal outcome class — when the architectural instruction
// stream first diverged from the golden run, how often the corrupt
// location was consumed, how long the corruption lingered, and how many
// cycles separated first consumption from divergence and from the final
// outcome. The records are what let the experiment tables explain
// MARSS/gem5 disagreements (same fault, different masking depth)
// instead of just counting them.
//
// The recording cost rides on machinery the runs already pay for:
// divergence detection folds the committed-PC stream the cores already
// produce into per-block FNV-1a hashes compared against a memoized
// golden signature (see Probe), and touch counting piggybacks on the
// bitarray observation slow path that only armed runs ever take.
package divergence

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion is the version stamped into every divergence record
// this build writes. Readers accept records up to this version and
// reject newer ones; records without the field (never shipped, but the
// tolerant path is uniform with the trace and journal formats) parse as
// version 0.
//
// Version history:
//
//	1 — initial format (PR 7).
const SchemaVersion = 1

// Record is one JSONL divergence-provenance row: one per injection,
// simulated or not, in (campaign, mask) order beside the injection
// trace. All fields are deterministic functions of the campaign plan
// and the simulated machines — no wall-clock values — so the file is
// byte-stable across runs, worker counts and process restarts.
type Record struct {
	SchemaVersion int `json:"schema_version,omitempty"`

	Campaign string `json:"campaign"`
	MaskID   int    `json:"mask_id"`
	Status   string `json:"status"`
	Class    string `json:"class"`

	// Cycles is the whole-run simulated cycle count.
	Cycles uint64 `json:"cycles"`

	// Observed reports that at least one read consumed the faulty
	// location; FirstObsCycle stamps the first such read. FaultTouches
	// counts every read that consumed a corrupt value and
	// LastTouchCycle the final one — together the corruption footprint
	// over time. CorruptStructures names the watched structures whose
	// faults were consumed.
	Observed          bool     `json:"observed,omitempty"`
	FirstObsCycle     uint64   `json:"first_obs_cycle,omitempty"`
	FaultTouches      uint64   `json:"fault_touches,omitempty"`
	LastTouchCycle    uint64   `json:"last_touch_cycle,omitempty"`
	CorruptStructures []string `json:"corrupt_structures,omitempty"`

	// Diverged reports that the committed-instruction stream left the
	// golden run's path; DivergeCycle is the commit cycle of the block
	// whose hash first mismatched and DivergeIndex the architectural
	// index of that block's first instruction (resolution is one
	// comparison block, see BlockSize). A run with Observed set but
	// Diverged clear was architecturally masked or corrupted data
	// without changing control flow (a data-pure SDC caught at output
	// compare).
	Diverged     bool   `json:"diverged,omitempty"`
	DivergeCycle uint64 `json:"diverge_cycle,omitempty"`
	DivergeIndex uint64 `json:"diverge_index,omitempty"`

	// PropagationCycles is the masking depth: cycles between the first
	// consumption of the corrupt value and the first architectural
	// divergence (zero unless both happened). TimeToOutcome is the
	// cycles between first consumption and the end of the run.
	PropagationCycles uint64 `json:"propagation_cycles,omitempty"`
	TimeToOutcome     uint64 `json:"time_to_outcome,omitempty"`

	// Pruned marks rows the liveness pruner settled without simulation
	// ("dead" or "replicated"); Resumed rows were loaded from the run
	// journal of an earlier process. Neither carries propagation data —
	// nothing was simulated in this process to measure.
	Pruned  string `json:"pruned,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
}

// Derive fills the derived depth fields from the primary ones: call it
// once after the primary measurements are in place.
func (r *Record) Derive() {
	r.PropagationCycles = 0
	r.TimeToOutcome = 0
	if !r.Observed {
		return
	}
	if r.Diverged && r.DivergeCycle >= r.FirstObsCycle {
		r.PropagationCycles = r.DivergeCycle - r.FirstObsCycle
	}
	if r.Cycles >= r.FirstObsCycle {
		r.TimeToOutcome = r.Cycles - r.FirstObsCycle
	}
}

// WriteRecords writes records as JSON Lines, stamping the current
// schema version into records that do not carry one.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		rec := recs[i]
		if rec.SchemaVersion == 0 {
			rec.SchemaVersion = SchemaVersion
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecords reads a JSONL divergence file, tolerating versionless
// records and rejecting records newer than this build understands.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("divergence record %d: %w", len(recs), err)
		}
		if rec.SchemaVersion > SchemaVersion {
			return nil, fmt.Errorf("divergence record %d has schema version %d, this build understands <= %d",
				len(recs), rec.SchemaVersion, SchemaVersion)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
