package asm_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
	"repro/internal/isa"
)

// runBoth builds the program for both targets, runs each on the
// functional model, asserts clean completion and identical output, and
// returns the output.
func runBoth(t *testing.T, p *asm.Program) []byte {
	t.Helper()
	var outs [2][]byte
	for i, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
		img, err := p.Build(tgt)
		if err != nil {
			t.Fatalf("%v build: %v", tgt, err)
		}
		res := interp.Run(img, 50_000_000)
		if res.Outcome != interp.Completed {
			t.Fatalf("%v run: outcome %v (fatal %v) after %d steps",
				tgt, res.Outcome, res.FatalExc, res.Steps)
		}
		if res.ExitCode != 0 {
			t.Fatalf("%v run: exit code %d", tgt, res.ExitCode)
		}
		if len(res.Events) != 0 {
			t.Fatalf("%v run: unexpected kernel events %v", tgt, res.Events)
		}
		outs[i] = res.Output
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("cross-ISA output mismatch:\n x86: %x\n arm: %x", outs[0], outs[1])
	}
	return outs[0]
}

// emitExit appends the standard exit(0) epilogue.
func emitExit(f *asm.Func) {
	f.MovImm(isa.R0, 2) // SysExit
	f.MovImm(isa.R1, 0)
	f.Syscall()
}

// emitWrite writes [addrReg, lenReg] — clobbers R0-R2.
func emitWrite(f *asm.Func, sym string, length int64) {
	f.MovImm(isa.R0, 1) // SysWrite
	f.MovSym(isa.R1, sym)
	f.MovImm(isa.R2, length)
	f.Syscall()
}

func TestArithmeticProgram(t *testing.T) {
	p := asm.NewProgram()
	p.Bss("out", 64)
	f := p.Func("main")
	// Compute a few values exercising every ALU op and store them.
	f.MovSym(isa.R10, "out")
	f.MovImm(isa.R1, 1000)
	f.MovImm(isa.R2, 37)
	f.Add(isa.R3, isa.R1, isa.R2)
	f.Store(8, isa.R3, isa.R10, 0) // 1037
	f.Sub(isa.R3, isa.R1, isa.R2)
	f.Store(8, isa.R3, isa.R10, 8) // 963
	f.Mul(isa.R3, isa.R1, isa.R2)
	f.Store(8, isa.R3, isa.R10, 16) // 37000
	f.Div(isa.R3, isa.R1, isa.R2)
	f.Store(8, isa.R3, isa.R10, 24) // 27
	f.Rem(isa.R3, isa.R1, isa.R2)
	f.Store(8, isa.R3, isa.R10, 32) // 1
	f.Xor(isa.R3, isa.R1, isa.R2)
	f.And(isa.R4, isa.R1, isa.R2)
	f.Or(isa.R5, isa.R3, isa.R4)
	f.Store(8, isa.R5, isa.R10, 40) // 1000|37 pattern
	f.ShlI(isa.R3, isa.R1, 3)
	f.ShrI(isa.R4, isa.R1, 2)
	f.Add(isa.R3, isa.R3, isa.R4)
	f.Store(8, isa.R3, isa.R10, 48) // 8000+250
	f.MovImm(isa.R6, -1000)
	f.SarI(isa.R6, isa.R6, 3)
	f.Store(8, isa.R6, isa.R10, 56) // -125
	emitWrite(f, "out", 64)
	emitExit(f)

	out := runBoth(t, p)
	want := []int64{1037, 963, 37000, 27, 1, 1000 ^ 37 | 1000&37, 8250, -125}
	for i, w := range want {
		got := int64(le64(out[i*8:]))
		if got != w {
			t.Errorf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestLoopsAndBranches(t *testing.T) {
	p := asm.NewProgram()
	p.Bss("out", 8)
	f := p.Func("main")
	// Sum of i*i for i in [0,100) via a loop with a conditional inside.
	f.MovImm(isa.R1, 0) // i
	f.MovImm(isa.R2, 0) // sum
	f.Label("loop")
	f.Mul(isa.R3, isa.R1, isa.R1)
	// if i odd, add 2*i*i instead
	f.AndI(isa.R4, isa.R1, 1)
	f.BrI(isa.CondEQ, isa.R4, 0, "even")
	f.Add(isa.R3, isa.R3, isa.R3)
	f.Label("even")
	f.Add(isa.R2, isa.R2, isa.R3)
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, 100, "loop")
	f.MovSym(isa.R10, "out")
	f.Store(8, isa.R2, isa.R10, 0)
	emitWrite(f, "out", 8)
	emitExit(f)

	out := runBoth(t, p)
	var want uint64
	for i := uint64(0); i < 100; i++ {
		s := i * i
		if i%2 == 1 {
			s *= 2
		}
		want += s
	}
	if got := le64(out); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestCallsAndStack(t *testing.T) {
	p := asm.NewProgram()
	p.Bss("out", 8)
	// Recursive factorial through the calling convention: arg/ret in R0.
	fact := p.Func("fact")
	fact.BrI(isa.CondGT, isa.R0, 1, "rec")
	fact.MovImm(isa.R0, 1)
	fact.Ret()
	fact.Label("rec")
	// Save R0 across the recursive call on the stack.
	fact.SubI(isa.SP, isa.SP, 8)
	fact.Store(8, isa.R0, isa.SP, 0)
	fact.SubI(isa.R0, isa.R0, 1)
	fact.Call("fact")
	fact.Load(8, false, isa.R1, isa.SP, 0)
	fact.AddI(isa.SP, isa.SP, 8)
	fact.Mul(isa.R0, isa.R0, isa.R1)
	fact.Ret()

	f := p.Func("main")
	f.MovImm(isa.R0, 12)
	f.Call("fact")
	f.MovSym(isa.R10, "out")
	f.Store(8, isa.R0, isa.R10, 0)
	emitWrite(f, "out", 8)
	emitExit(f)

	out := runBoth(t, p)
	want := uint64(1)
	for i := uint64(2); i <= 12; i++ {
		want *= i
	}
	if got := le64(out); got != want {
		t.Errorf("12! = %d, want %d", got, want)
	}
}

func TestDataAndByteAccess(t *testing.T) {
	p := asm.NewProgram()
	p.Data("msg", []byte("hello, differential fault injection"))
	p.Bss("out", 40)
	f := p.Func("main")
	// Copy msg to out uppercasing ASCII letters, byte at a time.
	f.MovSym(isa.R1, "msg")
	f.MovSym(isa.R2, "out")
	f.MovImm(isa.R3, 0)
	n := int64(len("hello, differential fault injection"))
	f.Label("loop")
	f.Add(isa.R4, isa.R1, isa.R3)
	f.Load(1, false, isa.R5, isa.R4, 0)
	f.BrI(isa.CondB, isa.R5, 'a', "store")
	f.BrI(isa.CondA, isa.R5, 'z', "store")
	f.SubI(isa.R5, isa.R5, 32)
	f.Label("store")
	f.Add(isa.R4, isa.R2, isa.R3)
	f.Store(1, isa.R5, isa.R4, 0)
	f.AddI(isa.R3, isa.R3, 1)
	f.BrI(isa.CondLT, isa.R3, n, "loop")
	emitWrite(f, "out", n)
	emitExit(f)

	out := runBoth(t, p)
	if string(out) != "HELLO, DIFFERENTIAL FAULT INJECTION" {
		t.Errorf("out = %q", out)
	}
}

func TestSignExtension(t *testing.T) {
	p := asm.NewProgram()
	p.Data("vals", []byte{0xff, 0x80, 0x00, 0x80, 0xff, 0xff, 0xff, 0x7f})
	p.Bss("out", 32)
	f := p.Func("main")
	f.MovSym(isa.R1, "vals")
	f.MovSym(isa.R2, "out")
	f.Load(1, true, isa.R3, isa.R1, 0) // -1
	f.Store(8, isa.R3, isa.R2, 0)
	f.Load(2, true, isa.R3, isa.R1, 0) // 0x80ff sign-extended
	f.Store(8, isa.R3, isa.R2, 8)
	f.Load(4, true, isa.R3, isa.R1, 0) // 0x800080ff sign-extended
	f.Store(8, isa.R3, isa.R2, 16)
	f.Load(4, false, isa.R3, isa.R1, 4) // 0x7fffffff zero-extended
	f.Store(8, isa.R3, isa.R2, 24)
	emitWrite(f, "out", 32)
	emitExit(f)

	out := runBoth(t, p)
	want := []uint64{
		^uint64(0),
		uint64(0xffffffffffff80ff),
		uint64(0xffffffff800080ff),
		0x7fffffff,
	}
	for i, w := range want {
		if got := le64(out[i*8:]); got != w {
			t.Errorf("slot %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	p := asm.NewProgram()
	p.Bss("out", 32)
	f := p.Func("main")
	f.MovSym(isa.R10, "out")
	f.FMovImm(isa.F0, 1.5)
	f.FMovImm(isa.F1, 2.25)
	f.FAdd(isa.F2, isa.F0, isa.F1)
	f.FStore(isa.F2, isa.R10, 0) // 3.75
	f.FMul(isa.F3, isa.F2, isa.F2)
	f.FStore(isa.F3, isa.R10, 8) // 14.0625
	f.FSub(isa.F4, isa.F3, isa.F0)
	f.FDiv(isa.F4, isa.F4, isa.F1)
	f.FStore(isa.F4, isa.R10, 16) // (14.0625-1.5)/2.25
	// Int conversions and an FP branch.
	f.MovImm(isa.R1, 41)
	f.FCvtIF(isa.F5, isa.R1)
	f.FMovImm(isa.F6, 0.999)
	f.FAdd(isa.F5, isa.F5, isa.F6)
	f.FCvtFI(isa.R2, isa.F5) // trunc(41.999) = 41
	f.FBr(isa.CondLT, isa.F0, isa.F1, "less")
	f.MovImm(isa.R2, 0)
	f.Label("less")
	f.Store(8, isa.R2, isa.R10, 24)
	emitWrite(f, "out", 32)
	emitExit(f)

	out := runBoth(t, p)
	if got := le64(out[24:]); got != 41 {
		t.Errorf("fp branch/cvt slot = %d, want 41", got)
	}
}

func TestLargeImmediates(t *testing.T) {
	p := asm.NewProgram()
	p.Bss("out", 32)
	f := p.Func("main")
	f.MovSym(isa.R10, "out")
	f.MovImm(isa.R1, 0x1234_5678_9abc_def0)
	f.Store(8, isa.R1, isa.R10, 0)
	f.MovImm(isa.R2, -5_000_000_000)
	f.Store(8, isa.R2, isa.R10, 8)
	f.AddI(isa.R3, isa.R1, 0x7000_0000_0000) // immediate beyond i32
	f.Store(8, isa.R3, isa.R10, 16)
	f.MovImm(isa.R4, 100)
	f.BrI(isa.CondNE, isa.R4, 1_000_000_000_000, "big") // 64-bit compare imm
	f.MovImm(isa.R4, 0)
	f.Label("big")
	f.Store(8, isa.R4, isa.R10, 24)
	emitWrite(f, "out", 32)
	emitExit(f)

	out := runBoth(t, p)
	if got := le64(out[0:]); got != 0x123456789abcdef0 {
		t.Errorf("imm64 = %#x", got)
	}
	if got := int64(le64(out[8:])); got != -5_000_000_000 {
		t.Errorf("negative imm = %d", got)
	}
	if got := le64(out[16:]); got != 0x123456789abcdef0+0x700000000000 {
		t.Errorf("addi big = %#x", got)
	}
	if got := le64(out[24:]); got != 100 {
		t.Errorf("cmp big imm = %d, want 100", got)
	}
}

func TestALU3AliasingCases(t *testing.T) {
	// Exercise the CISC two-operand lowering corner cases: rd==ra,
	// rd==rb commutative, rd==rb non-commutative, all distinct.
	p := asm.NewProgram()
	p.Bss("out", 32)
	f := p.Func("main")
	f.MovSym(isa.R10, "out")
	f.MovImm(isa.R1, 100)
	f.MovImm(isa.R2, 7)
	f.Sub(isa.R1, isa.R1, isa.R2) // rd==ra: 93
	f.Store(8, isa.R1, isa.R10, 0)
	f.MovImm(isa.R3, 5)
	f.Add(isa.R3, isa.R1, isa.R3) // rd==rb commutative: 98
	f.Store(8, isa.R3, isa.R10, 8)
	f.MovImm(isa.R4, 200)
	f.Sub(isa.R4, isa.R1, isa.R4) // rd==rb non-commutative: 93-200
	f.Store(8, isa.R4, isa.R10, 16)
	f.Sub(isa.R5, isa.R1, isa.R2) // all distinct: 86
	f.Store(8, isa.R5, isa.R10, 24)
	emitWrite(f, "out", 32)
	emitExit(f)

	out := runBoth(t, p)
	want := []int64{93, 98, 93 - 200, 86}
	for i, w := range want {
		if got := int64(le64(out[i*8:])); got != w {
			t.Errorf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	// No main.
	p := asm.NewProgram()
	p.Func("helper").Ret()
	if _, err := p.Build(asm.TargetCISC); err == nil {
		t.Error("missing main accepted")
	}
	// Undefined label.
	p = asm.NewProgram()
	f := p.Func("main")
	f.Jmp("nowhere")
	if _, err := p.Build(asm.TargetCISC); err == nil {
		t.Error("undefined label accepted")
	}
	if _, err := p.Build(asm.TargetRISC); err == nil {
		t.Error("undefined label accepted (risc)")
	}
	// Undefined call target.
	p = asm.NewProgram()
	f = p.Func("main")
	f.Call("ghost")
	if _, err := p.Build(asm.TargetCISC); err == nil {
		t.Error("undefined function accepted")
	}
	// Unknown symbol.
	p = asm.NewProgram()
	f = p.Func("main")
	f.MovSym(isa.R0, "ghost")
	if _, err := p.Build(asm.TargetRISC); err == nil {
		t.Error("unknown symbol accepted")
	}
	// Duplicate data symbol.
	p = asm.NewProgram()
	p.Data("d", []byte{1})
	p.Data("d", []byte{2})
	p.Func("main").Ret()
	if _, err := p.Build(asm.TargetCISC); err == nil {
		t.Error("duplicate data accepted")
	}
	// Duplicate label.
	p = asm.NewProgram()
	f = p.Func("main")
	f.Label("l")
	f.Label("l")
	if _, err := p.Build(asm.TargetCISC); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestBuilderPanicsOnReservedRegs(t *testing.T) {
	for _, bad := range []func(f *asm.Func){
		func(f *asm.Func) { f.Mov(isa.R12, isa.R0) },
		func(f *asm.Func) { f.Mov(isa.R0, isa.LR) },
		func(f *asm.Func) { f.Add(isa.R0, isa.R15, isa.R1) },
		func(f *asm.Func) { f.FMov(isa.F7, isa.F0) },
		func(f *asm.Func) { f.Load(3, false, isa.R0, isa.R1, 0) },
		func(f *asm.Func) { f.FBr(isa.CondA, isa.F0, isa.F1, "x") },
	} {
		p := asm.NewProgram()
		f := p.Func("main")
		func() {
			defer func() {
				if recover() == nil {
					t.Error("builder accepted reserved register / bad arg")
				}
			}()
			bad(f)
		}()
	}
}

func TestImageLayout(t *testing.T) {
	p := asm.NewProgram()
	p.Data("a", []byte{1, 2, 3})
	p.DataAligned("b", []byte{4}, 64)
	p.Bss("z", 100)
	f := p.Func("main")
	emitExit(f)
	for _, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
		img, err := p.Build(tgt)
		if err != nil {
			t.Fatal(err)
		}
		if img.Symbols["a"] != asm.DataBase {
			t.Errorf("a at %#x", img.Symbols["a"])
		}
		if img.Symbols["b"]%64 != 0 {
			t.Errorf("b not aligned: %#x", img.Symbols["b"])
		}
		if img.Symbols["z"] < img.BSSBase || img.BSSSize < 100 {
			t.Errorf("bss layout: z=%#x base=%#x size=%d", img.Symbols["z"], img.BSSBase, img.BSSSize)
		}
		if img.HeapBase%4096 != 0 || img.Symbols["__heap"] != img.HeapBase {
			t.Errorf("heap: %#x", img.HeapBase)
		}
		if img.Entry != img.FuncAddrs["main"] {
			t.Errorf("entry: %#x", img.Entry)
		}
		if img.ISA != tgt.String() {
			t.Errorf("isa: %s", img.ISA)
		}
	}
}

func TestISADifferencesAreReal(t *testing.T) {
	// The same program must produce genuinely different machine code on
	// the two targets: different text sizes and different instruction
	// counts, which is what drives the paper's cross-ISA divergence.
	p := asm.NewProgram()
	p.Bss("out", 8)
	f := p.Func("main")
	f.MovImm(isa.R1, 0)
	f.MovImm(isa.R2, 0)
	f.Label("loop")
	f.Add(isa.R2, isa.R2, isa.R1)
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, 1000, "loop")
	f.MovSym(isa.R10, "out")
	f.Store(8, isa.R2, isa.R10, 0)
	emitWrite(f, "out", 8)
	emitExit(f)

	imgC, err := p.Build(asm.TargetCISC)
	if err != nil {
		t.Fatal(err)
	}
	imgR, err := p.Build(asm.TargetRISC)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgC.Text) == len(imgR.Text) {
		t.Errorf("suspicious: identical text sizes %d", len(imgC.Text))
	}
	if len(imgR.Text)%4 != 0 {
		t.Errorf("risc text not word-multiple: %d", len(imgR.Text))
	}
	resC := interp.Run(imgC, 1_000_000)
	resR := interp.Run(imgR, 1_000_000)
	if resC.Steps == resR.Steps {
		t.Logf("note: step counts happen to coincide: %d", resC.Steps)
	}
	if !bytes.Equal(resC.Output, resR.Output) {
		t.Fatal("outputs differ")
	}
	if le64(resC.Output) != 499500 {
		t.Fatalf("sum = %d", le64(resC.Output))
	}
}

func TestManyFunctions(t *testing.T) {
	// Cross-function call patching with several functions.
	p := asm.NewProgram()
	p.Bss("out", 8)
	for i := 0; i < 5; i++ {
		g := p.Func(fmt.Sprintf("add%d", i))
		g.AddI(isa.R0, isa.R0, int64(i+1))
		g.Ret()
	}
	f := p.Func("main")
	f.MovImm(isa.R0, 0)
	for i := 0; i < 5; i++ {
		f.Call(fmt.Sprintf("add%d", i))
	}
	f.MovSym(isa.R10, "out")
	f.Store(8, isa.R0, isa.R10, 0)
	emitWrite(f, "out", 8)
	emitExit(f)
	out := runBoth(t, p)
	if got := le64(out); got != 15 {
		t.Errorf("sum of calls = %d, want 15", got)
	}
}
