package asm

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/isa/cisc"
	"repro/internal/isa/risc"
	"repro/internal/mem"
)

// DataBase is where the data segment is laid out. It is fixed (rather
// than following text) so that data addresses are identical across the
// two ISAs, keeping the cross-ISA study's memory behaviour comparable.
const DataBase uint64 = 0x100000

// StackReserve is the address below which the heap must stay; the region
// [StackReserve, StackTop) belongs to the downward-growing stack.
const StackReserve uint64 = 0x280000

// Target selects an instruction-set back-end.
type Target uint8

const (
	// TargetCISC compiles for the x86-flavoured ISA.
	TargetCISC Target = iota
	// TargetRISC compiles for the ARM-flavoured ISA.
	TargetRISC
)

// String returns the ISA name of the target.
func (t Target) String() string {
	if t == TargetCISC {
		return "x86"
	}
	return "arm"
}

// Image is a linked, bootable program image.
type Image struct {
	ISA      string
	Entry    uint64
	Text     []byte
	TextBase uint64
	Data     []byte
	DataBase uint64
	BSSBase  uint64
	BSSSize  uint64
	HeapBase uint64
	// Symbols maps data/bss item names to addresses; it also carries
	// the predefined "__heap" symbol.
	Symbols map[string]uint64
	// FuncAddrs maps function names to entry addresses.
	FuncAddrs map[string]uint64
}

// layoutData assigns addresses to data and bss items. The layout is
// target-independent.
func (p *Program) layoutData() (data []byte, bssBase, bssSize, heapBase uint64, syms map[string]uint64, err error) {
	syms = make(map[string]uint64)
	addr := DataBase
	align := func(a uint64, n int) uint64 {
		if n <= 1 {
			return a
		}
		m := uint64(n)
		return (a + m - 1) / m * m
	}
	// Initialized data first.
	for _, d := range p.data {
		if d.bytes == nil {
			continue
		}
		if _, dup := syms[d.name]; dup {
			return nil, 0, 0, 0, nil, fmt.Errorf("asm: duplicate data symbol %q", d.name)
		}
		addr = align(addr, d.align)
		syms[d.name] = addr
		addr += uint64(len(d.bytes))
	}
	dataEnd := addr
	data = make([]byte, dataEnd-DataBase)
	for _, d := range p.data {
		if d.bytes == nil {
			continue
		}
		copy(data[syms[d.name]-DataBase:], d.bytes)
	}
	// BSS after data.
	bssBase = align(dataEnd, 64)
	addr = bssBase
	for _, d := range p.data {
		if d.bytes != nil {
			continue
		}
		if _, dup := syms[d.name]; dup {
			return nil, 0, 0, 0, nil, fmt.Errorf("asm: duplicate data symbol %q", d.name)
		}
		addr = align(addr, d.align)
		syms[d.name] = addr
		addr += uint64(d.size)
	}
	bssSize = addr - bssBase
	heapBase = align(addr, 4096)
	syms["__heap"] = heapBase
	if heapBase >= StackReserve {
		return nil, 0, 0, 0, nil, fmt.Errorf("asm: data+bss end %#x beyond stack reserve %#x", heapBase, StackReserve)
	}
	return data, bssBase, bssSize, heapBase, syms, nil
}

// Build compiles and links the program for the target ISA.
func (p *Program) Build(t Target) (*Image, error) {
	if _, ok := p.funcIdx["main"]; !ok {
		return nil, fmt.Errorf("asm: program has no main function")
	}
	data, bssBase, bssSize, heapBase, syms, err := p.layoutData()
	if err != nil {
		return nil, err
	}
	var text []byte
	var funcAddrs map[string]uint64
	switch t {
	case TargetCISC:
		text, funcAddrs, err = buildCISC(p, syms)
	case TargetRISC:
		text, funcAddrs, err = buildRISC(p, syms)
	default:
		return nil, fmt.Errorf("asm: unknown target %d", t)
	}
	if err != nil {
		return nil, err
	}
	if mem.TextBase+uint64(len(text)) > DataBase {
		return nil, fmt.Errorf("asm: text size %d overflows into data segment", len(text))
	}
	return &Image{
		ISA:       t.String(),
		Entry:     funcAddrs["main"],
		Text:      text,
		TextBase:  mem.TextBase,
		Data:      data,
		DataBase:  DataBase,
		BSSBase:   bssBase,
		BSSSize:   bssSize,
		HeapBase:  heapBase,
		Symbols:   syms,
		FuncAddrs: funcAddrs,
	}, nil
}

func fitsI32(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

func fitsI12(v int64) bool { return v >= -2048 && v <= 2047 }

// patch records a pending branch/call fixup.
type patch struct {
	at    int    // byte offset of the patch site in text
	label string // target label (intra-function) or function name
}

// ---- CISC back-end -----------------------------------------------------------

func buildCISC(p *Program, syms map[string]uint64) ([]byte, map[string]uint64, error) {
	var e cisc.Emitter
	funcAddrs := make(map[string]uint64)
	var callPatches []patch
	const scratch = isa.R12

	for _, f := range p.funcs {
		funcAddrs[f.name] = mem.TextBase + uint64(e.Len())
		labels := make(map[string]int)
		var branchPatches []patch

		for _, in := range f.instrs {
			switch in.kind {
			case irNop:
				e.Nop()
			case irLabel:
				if _, dup := labels[in.label]; dup {
					return nil, nil, fmt.Errorf("asm: %s: duplicate label %q", f.name, in.label)
				}
				labels[in.label] = e.Len()
			case irMov:
				e.ALURR(isa.Mov, in.rd, in.ra)
			case irMovImm:
				if fitsI32(in.imm) {
					e.ALURI(isa.Mov, in.rd, int32(in.imm))
				} else {
					e.MovAbs(in.rd, uint64(in.imm))
				}
			case irMovSym:
				addr, ok := syms[in.label]
				if !ok {
					return nil, nil, fmt.Errorf("asm: %s: unknown symbol %q", f.name, in.label)
				}
				e.MovAbs(in.rd, addr)
			case irALU3:
				emitCISCALU3(&e, in.op, in.rd, in.ra, in.rb, scratch)
			case irALUImm:
				if !fitsI32(in.imm) {
					e.MovAbs(scratch, uint64(in.imm))
					emitCISCALU3(&e, in.op, in.rd, in.ra, scratch, scratch)
					break
				}
				if in.rd != in.ra {
					e.ALURR(isa.Mov, in.rd, in.ra)
				}
				e.ALURI(in.op, in.rd, int32(in.imm))
			case irLoad:
				e.Load(in.size, in.sext, in.rd, in.ra, int32(in.imm))
			case irStore:
				e.Store(in.size, in.rb, in.ra, int32(in.imm))
			case irBr:
				e.ALURR(isa.Cmp, in.ra, in.rb)
				branchPatches = append(branchPatches, patch{e.Jcc(in.cond), in.label})
			case irBrImm:
				if fitsI32(in.imm) {
					e.ALURI(isa.Cmp, in.ra, int32(in.imm))
				} else {
					e.MovAbs(scratch, uint64(in.imm))
					e.ALURR(isa.Cmp, in.ra, scratch)
				}
				branchPatches = append(branchPatches, patch{e.Jcc(in.cond), in.label})
			case irJmp:
				branchPatches = append(branchPatches, patch{e.Jmp(), in.label})
			case irJmpReg:
				e.JmpReg(in.ra)
			case irCall:
				callPatches = append(callPatches, patch{e.Call(), in.label})
			case irRet:
				e.Ret()
			case irSyscall:
				e.Syscall()
			case irHalt:
				e.Halt()
			case irFALU3:
				emitCISCFALU3(&e, in.op, in.rd, in.ra, in.rb)
			case irFMov:
				e.FMov(in.rd, in.ra)
			case irFMovImm:
				e.MovAbs(scratch, math.Float64bits(in.fimm))
				e.FMovToFP(in.rd, scratch)
			case irFLoad:
				e.FLoad(in.rd, in.ra, int32(in.imm))
			case irFStore:
				e.FStore(in.rb, in.ra, int32(in.imm))
			case irFBr:
				e.FCmp(in.ra, in.rb)
				branchPatches = append(branchPatches, patch{e.Jcc(in.cond), in.label})
			case irFCvtIF:
				e.FCvtIF(in.rd, in.ra)
			case irFCvtFI:
				e.FCvtFI(in.rd, in.ra)
			default:
				return nil, nil, fmt.Errorf("asm: %s: unhandled IR kind %d", f.name, in.kind)
			}
		}
		for _, bp := range branchPatches {
			to, ok := labels[bp.label]
			if !ok {
				return nil, nil, fmt.Errorf("asm: %s: undefined label %q", f.name, bp.label)
			}
			cisc.PatchRel32(e.Code, bp.at, int32(to-(bp.at+4)))
		}
	}
	for _, cp := range callPatches {
		addr, ok := funcAddrs[cp.label]
		if !ok {
			return nil, nil, fmt.Errorf("asm: call to undefined function %q", cp.label)
		}
		to := int(addr - mem.TextBase)
		cisc.PatchRel32(e.Code, cp.at, int32(to-(cp.at+4)))
	}
	return e.Code, funcAddrs, nil
}

// emitCISCALU3 lowers a three-operand ALU op onto the two-operand ISA.
func emitCISCALU3(e *cisc.Emitter, op isa.Op, rd, ra, rb, scratch isa.Reg) {
	commutative := op == isa.Add || op == isa.And || op == isa.Or || op == isa.Xor || op == isa.Mul
	switch {
	case rd == ra:
		e.ALURR(op, rd, rb)
	case rd == rb && commutative:
		e.ALURR(op, rd, ra)
	case rd == rb:
		e.ALURR(isa.Mov, scratch, ra)
		e.ALURR(op, scratch, rb)
		e.ALURR(isa.Mov, rd, scratch)
	default:
		e.ALURR(isa.Mov, rd, ra)
		e.ALURR(op, rd, rb)
	}
}

// emitCISCFALU3 lowers a three-operand FP op; F7 is the FP scratch.
func emitCISCFALU3(e *cisc.Emitter, op isa.Op, fd, fa, fb isa.Reg) {
	commutative := op == isa.FAdd || op == isa.FMul
	switch {
	case fd == fa:
		e.FALU(op, fd, fb)
	case fd == fb && commutative:
		e.FALU(op, fd, fa)
	case fd == fb:
		e.FMov(isa.F7, fa)
		e.FALU(op, isa.F7, fb)
		e.FMov(fd, isa.F7)
	default:
		e.FMov(fd, fa)
		e.FALU(op, fd, fb)
	}
}

// ---- RISC back-end -----------------------------------------------------------

func buildRISC(p *Program, syms map[string]uint64) ([]byte, map[string]uint64, error) {
	var e risc.Emitter
	funcAddrs := make(map[string]uint64)
	var callPatches []patch
	const scratch = isa.R12

	movImm := func(rd isa.Reg, v int64) {
		uv := uint64(v)
		emitted := false
		for hw := 0; hw < 4; hw++ {
			c := uint16(uv >> (16 * hw))
			if c == 0 {
				continue
			}
			if !emitted {
				e.MovZ(rd, c, hw)
				emitted = true
			} else {
				e.MovK(rd, c, hw)
			}
		}
		if !emitted {
			e.MovZ(rd, 0, 0)
		}
	}

	type cbPatch struct {
		at    int
		label string
		wide  bool // B/BL rather than CB/BF
	}

	for _, f := range p.funcs {
		funcAddrs[f.name] = mem.TextBase + uint64(e.Len())
		labels := make(map[string]int)
		var branchPatches []cbPatch

		// Non-leaf functions spill the link register at entry.
		if f.hasCall {
			e.ALUI(isa.Sub, isa.SP, isa.SP, 8)
			e.Store(8, isa.LR, isa.SP, 0)
		}

		for _, in := range f.instrs {
			switch in.kind {
			case irNop:
				e.Nop()
			case irLabel:
				if _, dup := labels[in.label]; dup {
					return nil, nil, fmt.Errorf("asm: %s: duplicate label %q", f.name, in.label)
				}
				labels[in.label] = e.Len()
			case irMov:
				e.MovR(in.rd, in.ra)
			case irMovImm:
				movImm(in.rd, in.imm)
			case irMovSym:
				addr, ok := syms[in.label]
				if !ok {
					return nil, nil, fmt.Errorf("asm: %s: unknown symbol %q", f.name, in.label)
				}
				movImm(in.rd, int64(addr))
			case irALU3:
				e.ALU3(in.op, in.rd, in.ra, in.rb)
			case irALUImm:
				if fitsI12(in.imm) {
					e.ALUI(in.op, in.rd, in.ra, int32(in.imm))
				} else {
					movImm(scratch, in.imm)
					e.ALU3(in.op, in.rd, in.ra, scratch)
				}
			case irLoad:
				if fitsI12(in.imm) {
					e.Load(in.size, in.sext, in.rd, in.ra, int32(in.imm))
				} else {
					movImm(scratch, in.imm)
					e.ALU3(isa.Add, scratch, in.ra, scratch)
					e.Load(in.size, in.sext, in.rd, scratch, 0)
				}
			case irStore:
				if fitsI12(in.imm) {
					e.Store(in.size, in.rb, in.ra, int32(in.imm))
				} else {
					movImm(scratch, in.imm)
					e.ALU3(isa.Add, scratch, in.ra, scratch)
					e.Store(in.size, in.rb, scratch, 0)
				}
			case irBr:
				branchPatches = append(branchPatches, cbPatch{e.CB(in.cond, in.ra, in.rb), in.label, false})
			case irBrImm:
				movImm(scratch, in.imm)
				branchPatches = append(branchPatches, cbPatch{e.CB(in.cond, in.ra, scratch), in.label, false})
			case irJmp:
				branchPatches = append(branchPatches, cbPatch{e.B(), in.label, true})
			case irJmpReg:
				e.BR(in.ra)
			case irCall:
				callPatches = append(callPatches, patch{e.BL(), in.label})
			case irRet:
				if f.hasCall {
					e.Load(8, false, isa.LR, isa.SP, 0)
					e.ALUI(isa.Add, isa.SP, isa.SP, 8)
				}
				e.BR(isa.LR)
			case irSyscall:
				e.Syscall()
			case irHalt:
				e.Halt()
			case irFALU3:
				e.FALU(in.op, in.rd, in.ra, in.rb)
			case irFMov:
				e.FMov(in.rd, in.ra)
			case irFMovImm:
				movImm(scratch, int64(math.Float64bits(in.fimm)))
				e.FMovToFP(in.rd, scratch)
			case irFLoad:
				if fitsI12(in.imm) {
					e.FLoad(in.rd, in.ra, int32(in.imm))
				} else {
					movImm(scratch, in.imm)
					e.ALU3(isa.Add, scratch, in.ra, scratch)
					e.FLoad(in.rd, scratch, 0)
				}
			case irFStore:
				if fitsI12(in.imm) {
					e.FStore(in.rb, in.ra, int32(in.imm))
				} else {
					movImm(scratch, in.imm)
					e.ALU3(isa.Add, scratch, in.ra, scratch)
					e.FStore(in.rb, scratch, 0)
				}
			case irFBr:
				e.FCmp(scratch, in.ra, in.rb)
				branchPatches = append(branchPatches, cbPatch{e.BF(in.cond, scratch), in.label, false})
			case irFCvtIF:
				e.FCvtIF(in.rd, in.ra)
			case irFCvtFI:
				e.FCvtFI(in.rd, in.ra)
			default:
				return nil, nil, fmt.Errorf("asm: %s: unhandled IR kind %d", f.name, in.kind)
			}
		}
		for _, bp := range branchPatches {
			to, ok := labels[bp.label]
			if !ok {
				return nil, nil, fmt.Errorf("asm: %s: undefined label %q", f.name, bp.label)
			}
			rel := int32(to - bp.at)
			if bp.wide {
				risc.PatchB(e.Code, bp.at, rel)
			} else {
				if rel < -(1<<13) || rel >= 1<<13 {
					return nil, nil, fmt.Errorf("asm: %s: branch to %q out of ±8KB range", f.name, bp.label)
				}
				risc.PatchCB(e.Code, bp.at, rel)
			}
		}
	}
	for _, cp := range callPatches {
		addr, ok := funcAddrs[cp.label]
		if !ok {
			return nil, nil, fmt.Errorf("asm: call to undefined function %q", cp.label)
		}
		risc.PatchB(e.Code, cp.at, int32(int(addr-mem.TextBase)-cp.at))
	}
	return e.Code, funcAddrs, nil
}
