// Package asm provides the portable assembly layer of the repository: a
// register-level intermediate representation with a builder API, two
// instruction-selection back-ends (one per synthetic ISA), and a linker
// that lays out text and data into a bootable memory image.
//
// The ten MiBench-analog workloads are written once against this IR and
// compiled to both ISAs, which is what makes the paper's cross-ISA
// differential study possible: the same algorithm, the same data, two
// genuinely different instruction streams.
//
// Programs may use integer registers R0–R11 plus SP and floating-point
// registers F0–F6. R12 and F7 are reserved as back-end scratch registers;
// LR and the microcode temporaries are managed by the back-ends.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// irKind enumerates IR instruction kinds.
type irKind uint8

const (
	irNop irKind = iota
	irMov
	irMovImm
	irMovSym
	irALU3
	irALUImm
	irLoad
	irStore
	irBr    // compare-and-branch, register-register
	irBrImm // compare-and-branch, register-immediate
	irJmp
	irJmpReg
	irCall
	irRet
	irSyscall
	irHalt
	irLabel
	irFALU3
	irFMov
	irFMovImm
	irFLoad
	irFStore
	irFBr
	irFCvtIF
	irFCvtFI
)

// instr is one IR instruction.
type instr struct {
	kind  irKind
	op    isa.Op // ALU/FALU op
	cond  isa.Cond
	rd    isa.Reg
	ra    isa.Reg
	rb    isa.Reg
	imm   int64
	fimm  float64
	size  uint8
	sext  bool
	label string // branch target, call target, label name or symbol
}

// Func is a function under construction.
type Func struct {
	name    string
	instrs  []instr
	hasCall bool
}

// Name returns the function name.
func (f *Func) Name() string { return f.name }

// Program is a program under construction: functions plus data items.
type Program struct {
	funcs   []*Func
	funcIdx map[string]*Func
	data    []dataItem
}

type dataItem struct {
	name  string
	bytes []byte
	size  int // for BSS items bytes is nil and size > 0
	align int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{funcIdx: make(map[string]*Func)}
}

// Func starts a new function with the given name and returns its builder.
// Every program needs a "main"; execution begins there.
func (p *Program) Func(name string) *Func {
	if _, dup := p.funcIdx[name]; dup {
		panic(fmt.Sprintf("asm: duplicate function %q", name))
	}
	f := &Func{name: name}
	p.funcs = append(p.funcs, f)
	p.funcIdx[name] = f
	return f
}

// Data adds an initialized data item addressable via MovSym.
func (p *Program) Data(name string, bytes []byte) {
	p.data = append(p.data, dataItem{name: name, bytes: bytes, align: 8})
}

// DataAligned adds an initialized data item with the given alignment.
func (p *Program) DataAligned(name string, bytes []byte, align int) {
	p.data = append(p.data, dataItem{name: name, bytes: bytes, align: align})
}

// Bss reserves size zeroed bytes addressable via MovSym.
func (p *Program) Bss(name string, size int) {
	p.data = append(p.data, dataItem{name: name, size: size, align: 8})
}

// ---- Register validation ----------------------------------------------------

func checkInt(r isa.Reg, what string) {
	if r > isa.R11 && r != isa.SP {
		panic(fmt.Sprintf("asm: %s register %v not usable by programs (R0-R11, SP only)", what, r))
	}
}

func checkFP(r isa.Reg, what string) {
	if !r.IsFP() || r == isa.F7 {
		panic(fmt.Sprintf("asm: %s register %v not usable by programs (F0-F6 only)", what, r))
	}
}

func checkSize(size uint8) {
	switch size {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("asm: bad access size %d", size))
	}
}

// ---- Builder methods ---------------------------------------------------------

func (f *Func) add(i instr) { f.instrs = append(f.instrs, i) }

// Nop emits a no-op.
func (f *Func) Nop() { f.add(instr{kind: irNop}) }

// Label defines a branch target at the current position.
func (f *Func) Label(name string) { f.add(instr{kind: irLabel, label: name}) }

// Mov emits rd = ra.
func (f *Func) Mov(rd, ra isa.Reg) {
	checkInt(rd, "dst")
	checkInt(ra, "src")
	f.add(instr{kind: irMov, rd: rd, ra: ra})
}

// MovImm emits rd = imm (any 64-bit constant).
func (f *Func) MovImm(rd isa.Reg, imm int64) {
	checkInt(rd, "dst")
	f.add(instr{kind: irMovImm, rd: rd, imm: imm})
}

// MovSym emits rd = address-of(sym), where sym names a Data/Bss item or a
// function.
func (f *Func) MovSym(rd isa.Reg, sym string) {
	checkInt(rd, "dst")
	f.add(instr{kind: irMovSym, rd: rd, label: sym})
}

// alu3 is the common three-operand helper.
func (f *Func) alu3(op isa.Op, rd, ra, rb isa.Reg) {
	checkInt(rd, "dst")
	checkInt(ra, "src1")
	checkInt(rb, "src2")
	f.add(instr{kind: irALU3, op: op, rd: rd, ra: ra, rb: rb})
}

// aluImm is the common register-immediate helper.
func (f *Func) aluImm(op isa.Op, rd, ra isa.Reg, imm int64) {
	checkInt(rd, "dst")
	checkInt(ra, "src1")
	f.add(instr{kind: irALUImm, op: op, rd: rd, ra: ra, imm: imm})
}

// Add emits rd = ra + rb. The other ALU builders follow the same shape.
func (f *Func) Add(rd, ra, rb isa.Reg) { f.alu3(isa.Add, rd, ra, rb) }

// Sub emits rd = ra − rb.
func (f *Func) Sub(rd, ra, rb isa.Reg) { f.alu3(isa.Sub, rd, ra, rb) }

// And emits rd = ra & rb.
func (f *Func) And(rd, ra, rb isa.Reg) { f.alu3(isa.And, rd, ra, rb) }

// Or emits rd = ra | rb.
func (f *Func) Or(rd, ra, rb isa.Reg) { f.alu3(isa.Or, rd, ra, rb) }

// Xor emits rd = ra ^ rb.
func (f *Func) Xor(rd, ra, rb isa.Reg) { f.alu3(isa.Xor, rd, ra, rb) }

// Shl emits rd = ra << rb.
func (f *Func) Shl(rd, ra, rb isa.Reg) { f.alu3(isa.Shl, rd, ra, rb) }

// Shr emits rd = ra >> rb (logical).
func (f *Func) Shr(rd, ra, rb isa.Reg) { f.alu3(isa.Shr, rd, ra, rb) }

// Sar emits rd = ra >> rb (arithmetic).
func (f *Func) Sar(rd, ra, rb isa.Reg) { f.alu3(isa.Sar, rd, ra, rb) }

// Mul emits rd = ra * rb.
func (f *Func) Mul(rd, ra, rb isa.Reg) { f.alu3(isa.Mul, rd, ra, rb) }

// Div emits rd = ra / rb (signed).
func (f *Func) Div(rd, ra, rb isa.Reg) { f.alu3(isa.Div, rd, ra, rb) }

// Rem emits rd = ra % rb (signed).
func (f *Func) Rem(rd, ra, rb isa.Reg) { f.alu3(isa.Rem, rd, ra, rb) }

// AddI emits rd = ra + imm. The other immediate ALU builders follow suit.
func (f *Func) AddI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Add, rd, ra, imm) }

// SubI emits rd = ra − imm.
func (f *Func) SubI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Sub, rd, ra, imm) }

// AndI emits rd = ra & imm.
func (f *Func) AndI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.And, rd, ra, imm) }

// OrI emits rd = ra | imm.
func (f *Func) OrI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Or, rd, ra, imm) }

// XorI emits rd = ra ^ imm.
func (f *Func) XorI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Xor, rd, ra, imm) }

// ShlI emits rd = ra << imm.
func (f *Func) ShlI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Shl, rd, ra, imm) }

// ShrI emits rd = ra >> imm (logical).
func (f *Func) ShrI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Shr, rd, ra, imm) }

// SarI emits rd = ra >> imm (arithmetic).
func (f *Func) SarI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Sar, rd, ra, imm) }

// MulI emits rd = ra * imm.
func (f *Func) MulI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Mul, rd, ra, imm) }

// DivI emits rd = ra / imm.
func (f *Func) DivI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Div, rd, ra, imm) }

// RemI emits rd = ra % imm.
func (f *Func) RemI(rd, ra isa.Reg, imm int64) { f.aluImm(isa.Rem, rd, ra, imm) }

// Load emits rd = zero/sign-extended mem[ra+off] of size bytes.
func (f *Func) Load(size uint8, signExt bool, rd, ra isa.Reg, off int32) {
	checkInt(rd, "dst")
	checkInt(ra, "base")
	checkSize(size)
	f.add(instr{kind: irLoad, rd: rd, ra: ra, imm: int64(off), size: size, sext: signExt})
}

// Store emits mem[ra+off] = low size bytes of rs.
func (f *Func) Store(size uint8, rs, ra isa.Reg, off int32) {
	checkInt(rs, "src")
	checkInt(ra, "base")
	checkSize(size)
	f.add(instr{kind: irStore, rb: rs, ra: ra, imm: int64(off), size: size})
}

// Br emits a conditional branch to label when (ra cond rb) holds.
func (f *Func) Br(cond isa.Cond, ra, rb isa.Reg, label string) {
	checkInt(ra, "src1")
	checkInt(rb, "src2")
	f.add(instr{kind: irBr, cond: cond, ra: ra, rb: rb, label: label})
}

// BrI emits a conditional branch to label when (ra cond imm) holds.
func (f *Func) BrI(cond isa.Cond, ra isa.Reg, imm int64, label string) {
	checkInt(ra, "src1")
	f.add(instr{kind: irBrImm, cond: cond, ra: ra, imm: imm, label: label})
}

// Jmp emits an unconditional jump to label.
func (f *Func) Jmp(label string) { f.add(instr{kind: irJmp, label: label}) }

// JmpReg emits an indirect jump to the address in ra.
func (f *Func) JmpReg(ra isa.Reg) {
	checkInt(ra, "target")
	f.add(instr{kind: irJmpReg, ra: ra})
}

// Call emits a call to the named function.
func (f *Func) Call(fn string) {
	f.hasCall = true
	f.add(instr{kind: irCall, label: fn})
}

// Ret emits a return.
func (f *Func) Ret() { f.add(instr{kind: irRet}) }

// Syscall emits a system call (number and arguments in R0–R3 by the
// kernel ABI).
func (f *Func) Syscall() { f.add(instr{kind: irSyscall}) }

// Halt emits a machine halt.
func (f *Func) Halt() { f.add(instr{kind: irHalt}) }

// ---- Floating point ----------------------------------------------------------

func (f *Func) falu3(op isa.Op, fd, fa, fb isa.Reg) {
	checkFP(fd, "dst")
	checkFP(fa, "src1")
	checkFP(fb, "src2")
	f.add(instr{kind: irFALU3, op: op, rd: fd, ra: fa, rb: fb})
}

// FAdd emits fd = fa + fb.
func (f *Func) FAdd(fd, fa, fb isa.Reg) { f.falu3(isa.FAdd, fd, fa, fb) }

// FSub emits fd = fa − fb.
func (f *Func) FSub(fd, fa, fb isa.Reg) { f.falu3(isa.FSub, fd, fa, fb) }

// FMul emits fd = fa * fb.
func (f *Func) FMul(fd, fa, fb isa.Reg) { f.falu3(isa.FMul, fd, fa, fb) }

// FDiv emits fd = fa / fb.
func (f *Func) FDiv(fd, fa, fb isa.Reg) { f.falu3(isa.FDiv, fd, fa, fb) }

// FMov emits fd = fa.
func (f *Func) FMov(fd, fa isa.Reg) {
	checkFP(fd, "dst")
	checkFP(fa, "src")
	f.add(instr{kind: irFMov, rd: fd, ra: fa})
}

// FMovImm emits fd = the given constant.
func (f *Func) FMovImm(fd isa.Reg, v float64) {
	checkFP(fd, "dst")
	f.add(instr{kind: irFMovImm, rd: fd, fimm: v})
}

// FLoad emits fd = mem8[ra+off].
func (f *Func) FLoad(fd, ra isa.Reg, off int32) {
	checkFP(fd, "dst")
	checkInt(ra, "base")
	f.add(instr{kind: irFLoad, rd: fd, ra: ra, imm: int64(off)})
}

// FStore emits mem8[ra+off] = fs.
func (f *Func) FStore(fs, ra isa.Reg, off int32) {
	checkFP(fs, "src")
	checkInt(ra, "base")
	f.add(instr{kind: irFStore, rb: fs, ra: ra, imm: int64(off)})
}

// FBr emits a conditional branch on an FP comparison. Only the condition
// codes al,eq,ne,lt,ge,le,gt,b are encodable on both ISAs for FP
// branches.
func (f *Func) FBr(cond isa.Cond, fa, fb isa.Reg, label string) {
	checkFP(fa, "src1")
	checkFP(fb, "src2")
	if cond > isa.CondB {
		panic(fmt.Sprintf("asm: FP branch condition %v not encodable", cond))
	}
	f.add(instr{kind: irFBr, cond: cond, ra: fa, rb: fb, label: label})
}

// FCvtIF emits fd = float64(int64 ra).
func (f *Func) FCvtIF(fd, ra isa.Reg) {
	checkFP(fd, "dst")
	checkInt(ra, "src")
	f.add(instr{kind: irFCvtIF, rd: fd, ra: ra})
}

// FCvtFI emits rd = int64(trunc fa).
func (f *Func) FCvtFI(rd, fa isa.Reg) {
	checkInt(rd, "dst")
	checkFP(fa, "src")
	f.add(instr{kind: irFCvtFI, rd: rd, ra: fa})
}
