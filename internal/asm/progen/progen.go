// Package progen generates random but well-defined IR programs for
// equivalence fuzzing: every generated program terminates, stays inside
// its scratch buffer, avoids ISA-divergent corner semantics (division by
// zero, unaligned access), and ends by dumping its full register and
// memory state to the output file — so any cross-ISA or cross-simulator
// divergence is observable as an output mismatch.
package progen

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
)

// OutputLen is the output file size every generated program writes.
const OutputLen = 64 + 256

// Generate builds a random program from the seed.
func Generate(seed int64) *asm.Program {
	rng := rand.New(rand.NewSource(seed))
	p := asm.NewProgram()
	p.Bss("scratch", 256)
	p.Bss("out", OutputLen)
	f := p.Func("main")
	regs := []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8}
	r := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	for i, reg := range regs {
		f.MovImm(reg, rng.Int63()-rng.Int63()<<uint(i%3))
	}
	f.MovSym(isa.R10, "scratch")

	ops := rng.Intn(60) + 20
	label := 0
	for i := 0; i < ops; i++ {
		switch rng.Intn(13) {
		case 0:
			f.Add(r(), r(), r())
		case 1:
			f.Sub(r(), r(), r())
		case 2:
			f.Mul(r(), r(), r())
		case 3:
			f.Xor(r(), r(), r())
		case 4:
			f.ShlI(r(), r(), int64(rng.Intn(63)))
		case 5:
			f.SarI(r(), r(), int64(rng.Intn(63)))
		case 6:
			f.AddI(r(), r(), rng.Int63n(1<<40)-rng.Int63n(1<<40))
		case 7:
			// Division guarded against the ISA-dependent /0 and
			// overflow semantics: a positive nonzero divisor.
			d := r()
			f.AndI(d, d, 0xffff)
			f.OrI(d, d, 1)
			f.Div(r(), r(), d)
		case 8:
			f.Store(8, r(), isa.R10, int32(rng.Intn(31))*8)
		case 9:
			f.Load(8, false, r(), isa.R10, int32(rng.Intn(31))*8)
		case 10:
			lbl := fmt.Sprintf("L%d", label)
			label++
			f.BrI(isa.Cond(1+rng.Intn(10)), r(), rng.Int63n(1000)-500, lbl)
			f.Xor(r(), r(), r())
			f.Label(lbl)
		case 11:
			sz := []uint8{1, 2, 4}[rng.Intn(3)]
			off := int32(rng.Intn(200))
			off -= off % int32(sz) // keep the RISC machine alignment-clean
			f.Store(sz, r(), isa.R10, off)
		case 12:
			// FP round trip through integer bits.
			a, b := r(), r()
			f.FCvtIF(isa.F0, a)
			f.FCvtIF(isa.F1, b)
			f.FAdd(isa.F2, isa.F0, isa.F1)
			f.FMul(isa.F2, isa.F2, isa.F0)
			f.FCvtFI(r(), isa.F2)
		}
	}
	// Dump registers and scratch memory.
	f.MovSym(isa.R9, "out")
	for i, reg := range regs {
		f.Store(8, reg, isa.R9, int32(i*8))
	}
	f.MovImm(isa.R0, 0)
	f.Label("copyloop")
	f.Add(isa.R1, isa.R10, isa.R0)
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.Add(isa.R1, isa.R9, isa.R0)
	f.Store(8, isa.R2, isa.R1, 64)
	f.AddI(isa.R0, isa.R0, 8)
	f.BrI(isa.CondLT, isa.R0, 256, "copyloop")
	f.MovImm(isa.R0, 1)
	f.MovSym(isa.R1, "out")
	f.MovImm(isa.R2, OutputLen)
	f.Syscall()
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()
	return p
}
