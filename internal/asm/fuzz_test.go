package asm_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/asm/progen"
	"repro/internal/interp"
)

// TestCrossISARandomPrograms is the equivalence fuzzer for the whole
// assembler / encoder / decoder / semantics stack: random generated IR
// programs must produce byte-identical outputs when compiled for the
// two ISAs — any divergence is a back-end or decoder bug.
func TestCrossISARandomPrograms(t *testing.T) {
	const programs = 80
	for seed := int64(0); seed < programs; seed++ {
		p := progen.Generate(seed)
		var outs [2][]byte
		for i, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
			img, err := p.Build(tgt)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, tgt, err)
			}
			res := interp.Run(img, 5_000_000)
			if res.Outcome != interp.Completed {
				t.Fatalf("seed %d %v: %v (%v)", seed, tgt, res.Outcome, res.FatalExc)
			}
			if len(res.Events) != 0 {
				t.Fatalf("seed %d %v: events %v", seed, tgt, res.Events)
			}
			outs[i] = res.Output
		}
		if !bytes.Equal(outs[0], outs[1]) {
			t.Fatalf("seed %d: cross-ISA divergence\n x86: %x\n arm: %x", seed, outs[0], outs[1])
		}
	}
}
