package gem5_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/gem5"
	"repro/internal/interp"
	"repro/internal/isa"
)

// buildTestProgram mirrors the marss test program: loops, calls, memory
// traffic, FP math and branches with a checksum output.
func buildTestProgram(t *testing.T, tgt asm.Target) *asm.Image {
	t.Helper()
	p := asm.NewProgram()
	p.Bss("buf", 512)
	p.Bss("out", 16)

	sum := p.Func("sumbuf")
	sum.MovSym(isa.R1, "buf")
	sum.MovImm(isa.R0, 0)
	sum.MovImm(isa.R2, 0)
	sum.Label("loop")
	sum.ShlI(isa.R3, isa.R2, 3)
	sum.Add(isa.R3, isa.R1, isa.R3)
	sum.Load(8, false, isa.R4, isa.R3, 0)
	sum.Add(isa.R0, isa.R0, isa.R4)
	sum.AddI(isa.R2, isa.R2, 1)
	sum.BrI(isa.CondLT, isa.R2, 64, "loop")
	sum.Ret()

	f := p.Func("main")
	f.MovSym(isa.R1, "buf")
	f.MovImm(isa.R2, 0)
	f.Label("fill")
	f.Mul(isa.R3, isa.R2, isa.R2)
	f.MulI(isa.R4, isa.R2, 3)
	f.Sub(isa.R3, isa.R3, isa.R4)
	f.AddI(isa.R3, isa.R3, 7)
	f.AndI(isa.R5, isa.R2, 3)
	f.BrI(isa.CondNE, isa.R5, 0, "skip")
	f.Add(isa.R3, isa.R3, isa.R3)
	f.Label("skip")
	f.ShlI(isa.R6, isa.R2, 3)
	f.Add(isa.R6, isa.R1, isa.R6)
	f.Store(8, isa.R3, isa.R6, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, 64, "fill")
	f.Call("sumbuf")
	f.MovSym(isa.R10, "out")
	f.Store(8, isa.R0, isa.R10, 0)
	f.FCvtIF(isa.F0, isa.R0)
	f.FMovImm(isa.F1, 7.0)
	f.FDiv(isa.F2, isa.F0, isa.F1)
	f.FMovImm(isa.F3, 3.5)
	f.FMul(isa.F2, isa.F2, isa.F3)
	f.FCvtFI(isa.R3, isa.F2)
	f.Store(8, isa.R3, isa.R10, 8)
	f.MovImm(isa.R0, 1)
	f.MovSym(isa.R1, "out")
	f.MovImm(isa.R2, 16)
	f.Syscall()
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()

	img, err := p.Build(tgt)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestFaultFreeMatchesReferenceBothISAs(t *testing.T) {
	for _, tc := range []struct {
		tgt asm.Target
		isa gem5.ISA
	}{
		{asm.TargetCISC, gem5.ISAX86},
		{asm.TargetRISC, gem5.ISAARM},
	} {
		img := buildTestProgram(t, tc.tgt)
		ref := interp.Run(img, 10_000_000)
		if ref.Outcome != interp.Completed {
			t.Fatalf("%s reference: %v", tc.isa, ref.Outcome)
		}
		cpu := gem5.New(gem5.DefaultConfig(tc.isa), img)
		res := cpu.Run(50_000_000)
		if res.Status != core.RunCompleted {
			t.Fatalf("%s: %v (%s) after %d cycles, %d instrs",
				tc.isa, res.Status, res.AssertMsg, res.Cycles, res.Committed)
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Fatalf("%s output mismatch:\n gem5: %x\n ref:  %x", tc.isa, res.Output, ref.Output)
		}
		if res.Committed != ref.Steps {
			t.Fatalf("%s committed %d, reference %d", tc.isa, res.Committed, ref.Steps)
		}
		if len(res.Events) != 0 {
			t.Fatalf("%s events: %v", tc.isa, res.Events)
		}
	}
}

func TestCrossISAOutputsAgree(t *testing.T) {
	imgX := buildTestProgram(t, asm.TargetCISC)
	imgA := buildTestProgram(t, asm.TargetRISC)
	resX := gem5.New(gem5.DefaultConfig(gem5.ISAX86), imgX).Run(50_000_000)
	resA := gem5.New(gem5.DefaultConfig(gem5.ISAARM), imgA).Run(50_000_000)
	if resX.Status != core.RunCompleted || resA.Status != core.RunCompleted {
		t.Fatalf("status %v/%v", resX.Status, resA.Status)
	}
	if !bytes.Equal(resX.Output, resA.Output) {
		t.Fatal("cross-ISA outputs differ")
	}
	// The two ISAs must execute different instruction counts — the
	// cross-ISA differential signal.
	if resX.Committed == resA.Committed {
		t.Logf("note: instruction counts coincide at %d", resX.Committed)
	}
}

func TestGem5SplitLSQGeometry(t *testing.T) {
	img := buildTestProgram(t, asm.TargetCISC)
	cpu := gem5.New(gem5.DefaultConfig(gem5.ISAX86), img)
	st := cpu.Structures()
	if st["lsq.data"].Entries() != 16 {
		t.Fatalf("store queue data entries = %d, want 16 (split organization)", st["lsq.data"].Entries())
	}
	if st["rf.fp"].Entries() != 128 {
		t.Fatalf("fp phys regs = %d, want 128", st["rf.fp"].Entries())
	}
	if st["btb.valid"] == nil || st["btb.target"] == nil {
		t.Fatal("unified BTB arrays missing")
	}
	if st["btb.dir.valid"] != nil {
		t.Fatal("gem5 must not have the MARSS split BTBs")
	}
	if st["btb.valid"].Entries() != 2048 {
		t.Fatalf("btb entries %d, want 2048", st["btb.valid"].Entries())
	}
}

func TestGem5Deterministic(t *testing.T) {
	img := buildTestProgram(t, asm.TargetRISC)
	a := gem5.New(gem5.DefaultConfig(gem5.ISAARM), img).Run(50_000_000)
	b := gem5.New(gem5.DefaultConfig(gem5.ISAARM), img).Run(50_000_000)
	if a.Cycles != b.Cycles || !bytes.Equal(a.Output, b.Output) {
		t.Fatal("nondeterministic")
	}
}

func TestGem5FaultSweepRegisterFile(t *testing.T) {
	img := buildTestProgram(t, asm.TargetCISC)
	golden := gem5.New(gem5.DefaultConfig(gem5.ISAX86), img).Run(50_000_000)
	if golden.Status != core.RunCompleted {
		t.Fatal("golden failed")
	}
	outcomes := map[core.RunStatus]int{}
	for i := 0; i < 40; i++ {
		cpu := gem5.New(gem5.DefaultConfig(gem5.ISAX86), img)
		arr := cpu.Structures()["rf.int"]
		arr.Arm(bitarray.Fault{
			Kind:  bitarray.Transient,
			Entry: (i * 11) % arr.Entries(),
			Bit:   (i * 17) % 64,
			Start: uint64(i) * golden.Cycles / 40,
		})
		cpu.WatchArrays([]*bitarray.Array{arr})
		res := cpu.Run(golden.Cycles * 3)
		outcomes[res.Status]++
	}
	if outcomes[core.RunEarlyMasked]+outcomes[core.RunCompleted] == 0 {
		t.Fatalf("no masked outcomes: %v", outcomes)
	}
	t.Logf("outcomes: %v", outcomes)
}

func TestConfigISAMismatchPanics(t *testing.T) {
	img := buildTestProgram(t, asm.TargetCISC)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ISA mismatch")
		}
	}()
	gem5.New(gem5.DefaultConfig(gem5.ISAARM), img)
}
