// Package gem5 implements the Gem5-like out-of-order simulator behind
// the GeFIN injector, for both the x86-flavoured and the ARM-flavoured
// ISA. Its distinguishing microarchitectural traits — each the mirror
// image of a MARSS trait the paper's differential analysis leans on —
// are:
//
//   - split 16-entry load and store queues where only the store queue
//     holds data, so LSQ injections affect stores only (Remark 1);
//   - conservative load issue: a load waits until every older store
//     address has resolved (Remark 3);
//   - true write-back caches: the data array is the only copy of a
//     dirty line, and evictions push its contents — corruption included
//     — down the hierarchy (Remark 3);
//   - no hypervisor: system calls execute through the cache hierarchy
//     (Remarks 3 and 6);
//   - a tournament predictor whose final decision is bound to the
//     global history, with the branch address not participating, and a
//     unified direct-mapped 2K-entry BTB (Remark 6);
//   - compact, infrequent assertion checking: corrupted state
//     propagates until it crashes architecturally or takes the
//     simulator down (Remark 8).
package gem5

import "repro/internal/cache"

// ISA selects the instruction set of the simulated machine.
type ISA string

const (
	// ISAX86 is the x86-flavoured instruction set.
	ISAX86 ISA = "x86"
	// ISAARM is the ARM-flavoured instruction set.
	ISAARM ISA = "arm"
)

// Config parameterizes the simulated core (Table II, Gem5 columns).
type Config struct {
	ISA ISA

	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	IntPhysRegs  int
	FPPhysRegs   int
	IQEntries    int
	LoadEntries  int
	StoreEntries int
	ROBEntries   int
	RASEntries   int

	IntALUs  int
	FPALUs   int
	MemPorts int

	L1I, L1D, L2 cache.Config
	MemLatency   int

	TLBEntries int
	TLBWays    int
	TLBMissLat int

	LocalEntries  int
	LocalHistBits int
	GlobalBits    int
	BTBEntries    int
}

// DefaultConfig returns the Table II Gem5 configuration for the ISA:
// identical memory hierarchy for both, different functional units (x86:
// 6 int ALUs and 4 FP units plus SIMD; ARM: 2 int ALUs and 2 FP&SIMD).
func DefaultConfig(isa ISA) Config {
	cfg := Config{
		ISA:        isa,
		FetchWidth: 4, RenameWidth: 4, IssueWidth: 4, CommitWidth: 4,
		IntPhysRegs: 256, FPPhysRegs: 128,
		IQEntries: 32, LoadEntries: 16, StoreEntries: 16,
		ROBEntries: 40, RASEntries: 16,
		L1I:        cache.Config{Name: "l1i", Size: 32 << 10, LineSize: 64, Ways: 4, Latency: 2},
		L1D:        cache.Config{Name: "l1d", Size: 32 << 10, LineSize: 64, Ways: 4, Latency: 2},
		L2:         cache.Config{Name: "l2", Size: 1 << 20, LineSize: 64, Ways: 16, Latency: 12},
		MemLatency: 100,
		TLBEntries: 64, TLBWays: 4, TLBMissLat: 20,
		LocalEntries: 1024, LocalHistBits: 10, GlobalBits: 12,
		BTBEntries: 2048,
	}
	if isa == ISAARM {
		cfg.IntALUs, cfg.FPALUs, cfg.MemPorts = 2, 2, 2
	} else {
		cfg.IntALUs, cfg.FPALUs, cfg.MemPorts = 6, 4, 4
	}
	return cfg
}
