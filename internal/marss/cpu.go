package marss

import (
	"fmt"
	"math"

	"repro/internal/asm"
	"repro/internal/bitarray"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/isa/cisc"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pipeline"
)

// fetchedUop is one decoded micro-op waiting for rename.
type fetchedUop struct {
	uop     isa.Uop
	pc      uint64
	nextPC  uint64
	exc     isa.Exception
	excInfo uint64

	instFirst bool

	// Branch prediction state, valid on the branch-carrying uop.
	isBranch   bool
	binfo      isa.BranchInfo
	hasPred    bool
	pred       branch.Prediction
	predTaken  bool
	predTarget uint64
	rasTop     int
	rasDepth   int
}

// inflightOp is an issued micro-op waiting for its completion cycle.
type inflightOp struct {
	robIdx int
	seq    uint64
	done   uint64
	value  uint64
	isLoad bool
}

// Stats are the runtime statistics backing the differential analysis.
type Stats struct {
	Cycles          uint64
	CommittedInstrs uint64
	CommittedUops   uint64
	IssuedLoads     uint64
	CommittedLoads  uint64
	IssuedStores    uint64
	CommittedStores uint64
	ForwardedLoads  uint64
	LoadReplays     uint64
	Flushes         uint64
	Syscalls        uint64
}

// CPU is one simulated MARSS-like machine.
type CPU struct {
	cfg Config
	img *asm.Image
	dec cisc.Decoder

	mem  *mem.Memory
	kern kernel.Kernel

	l2, l1d, l1i *cache.Cache
	dtlb, itlb   *cache.TLB
	btbDir       *branch.BTB
	btbInd       *branch.BTB
	tour         *branch.Tournament
	ras          *branch.RAS

	intRF, fpRF *pipeline.RegFile
	rob         *pipeline.ROB
	iq          *pipeline.IQ
	lsq         *pipeline.LSQ

	pc           uint64
	fetchQ       []fetchedUop
	fetchBlocked bool
	fetchReady   uint64
	inflight     []inflightOp

	cycle      uint64
	lastCommit uint64
	stats      Stats

	rasSnaps  [][2]int
	instHeads []bool

	watch     []*bitarray.Array
	earlyStop bool

	// commitProbe, when non-nil, observes every committed architectural
	// instruction (divergence detection); the commit path pays one nil
	// check for it.
	commitProbe core.CommitProbe

	// Terminal state latched by commit.
	finished bool
	result   core.RunResult

	textEnd uint64
	fbuf    []byte
	sbuf    [8]byte
	// ibuf is fetch's decode scratch; see the Decode call site.
	ibuf isa.Inst
}

// assert is the dense MARSS-style internal check: it stops the simulator
// with an assertion failure, never an architectural fault.
func assert(cond bool, msg string) { core.Assert(cond, msg) }

// New boots a simulated machine with the image. The image must be built
// for the x86-flavoured ISA.
func New(cfg Config, img *asm.Image) *CPU {
	if img.ISA != "x86" {
		panic("marss: MARSS models the x86-flavoured ISA only")
	}
	c := &CPU{cfg: cfg, img: img, mem: mem.New(), earlyStop: true}
	c.l2 = cache.New(cfg.L2, cache.MemLevel{M: c.mem, Lat: cfg.MemLatency})
	c.l1d = cache.New(cfg.L1D, c.l2)
	c.l1i = cache.New(cfg.L1I, c.l2)
	c.dtlb = cache.NewTLB(cache.TLBConfig{Name: "dtlb", Entries: cfg.TLBEntries, Ways: cfg.TLBWays, MissLatency: cfg.TLBMissLat})
	c.itlb = cache.NewTLB(cache.TLBConfig{Name: "itlb", Entries: cfg.TLBEntries, Ways: cfg.TLBWays, MissLatency: cfg.TLBMissLat})
	c.btbDir = branch.NewBTB(branch.BTBConfig{Name: "btb.dir", Entries: cfg.BTBDirEntries, Ways: cfg.BTBDirWays})
	c.btbInd = branch.NewBTB(branch.BTBConfig{Name: "btb.ind", Entries: cfg.BTBIndEntries, Ways: cfg.BTBIndWays})
	c.tour = branch.NewTournament(branch.TournamentConfig{
		LocalEntries: cfg.LocalEntries, LocalHistBits: cfg.LocalHistBits,
		GlobalBits: cfg.GlobalBits, ChoiceByAddress: true,
	})
	c.ras = branch.NewRAS("ras", cfg.RASEntries)
	c.intRF = pipeline.NewRegFile("rf.int", isa.NumIntRegs, cfg.IntPhysRegs, false)
	c.fpRF = pipeline.NewRegFile("rf.fp", isa.NumFPRegs, cfg.FPPhysRegs, true)
	c.rob = pipeline.NewROB(cfg.ROBEntries)
	c.iq = pipeline.NewIQ("iq", cfg.IQEntries)
	c.lsq = pipeline.NewLSQ(pipeline.LSQConfig{Name: "lsq.data", Unified: true, LoadEntries: cfg.LSQEntries})

	c.mem.Load(img.TextBase, img.Text)
	c.mem.Load(img.DataBase, img.Data)
	c.textEnd = img.TextBase + uint64(len(img.Text))
	c.mem.SetTextEnd(c.textEnd)
	c.pc = img.Entry
	c.intRF.WriteArch(int(isa.SP), mem.StackTop)
	c.fbuf = make([]byte, c.dec.MaxInstLen())
	c.rasSnaps = make([][2]int, cfg.ROBEntries)
	c.instHeads = make([]bool, cfg.ROBEntries)
	return c
}

// ReleaseMemory returns the machine's RAM to the boot pool; the
// scheduler calls it once a run's result and captures are fully
// extracted. The machine is dead afterwards.
func (c *CPU) ReleaseMemory() {
	mem.Release(c.mem)
	c.mem = nil
}

// Name implements core.Simulator.
func (c *CPU) Name() string { return "MaFIN-x86" }

// ISA implements core.Simulator.
func (c *CPU) ISA() string { return "x86" }

// CurrentCycle implements core.CycleSource: the golden-run liveness
// profiler samples it from the storage-array access hooks.
func (c *CPU) CurrentCycle() uint64 { return c.cycle }

// Structures implements core.Simulator.
func (c *CPU) Structures() map[string]*bitarray.Array {
	m := map[string]*bitarray.Array{
		"rf.int":   c.intRF.Array(),
		"rf.fp":    c.fpRF.Array(),
		"lsq.data": c.lsq.DataArray(),
		"iq":       c.iq.Array(),
		"ras":      c.ras.Array(),
	}
	for _, a := range c.l1d.Arrays() {
		m[a.Name()] = a
	}
	for _, a := range c.l1i.Arrays() {
		m[a.Name()] = a
	}
	for _, a := range c.l2.Arrays() {
		m[a.Name()] = a
	}
	for _, a := range c.dtlb.Arrays() {
		m[a.Name()] = a
	}
	for _, a := range c.itlb.Arrays() {
		m[a.Name()] = a
	}
	for _, a := range c.btbDir.Arrays() {
		m[a.Name()] = a
	}
	for _, a := range c.btbInd.Arrays() {
		m[a.Name()] = a
	}
	return m
}

// WatchArrays implements core.Simulator.
func (c *CPU) WatchArrays(arrs []*bitarray.Array) { c.watch = arrs }

// SetEarlyStop implements core.Simulator.
func (c *CPU) SetEarlyStop(on bool) { c.earlyStop = on }

// Stats implements core.Simulator.
func (c *CPU) Stats() map[string]uint64 {
	m := map[string]uint64{
		"cycles":           c.stats.Cycles,
		"committed_instrs": c.stats.CommittedInstrs,
		"committed_uops":   c.stats.CommittedUops,
		"issued_loads":     c.stats.IssuedLoads,
		"committed_loads":  c.stats.CommittedLoads,
		"issued_stores":    c.stats.IssuedStores,
		"committed_stores": c.stats.CommittedStores,
		"forwarded_loads":  c.stats.ForwardedLoads,
		"load_replays":     c.stats.LoadReplays,
		"flushes":          c.stats.Flushes,
		"syscalls":         c.stats.Syscalls,
		"bp_lookups":       c.tour.Lookups(),
		"bp_mispredicts":   c.tour.Mispredicts(),
	}
	addCache := func(prefix string, s cache.Stats) {
		m[prefix+"_read_hits"] = s.ReadHits
		m[prefix+"_read_misses"] = s.ReadMisses
		m[prefix+"_write_hits"] = s.WriteHits
		m[prefix+"_write_misses"] = s.WriteMisses
		m[prefix+"_writebacks"] = s.Writebacks
		m[prefix+"_replacements"] = s.Replacements
		m[prefix+"_prefetches"] = s.Prefetches
	}
	addCache("l1d", c.l1d.Stats())
	addCache("l1i", c.l1i.Stats())
	addCache("l2", c.l2.Stats())
	return m
}

// ---- Memory helpers ----------------------------------------------------------

// dRead reads program data through the D-cache (or, in the §III.C
// ablation, through a tags-only timing model with data from memory).
func (c *CPU) dRead(addr uint64, dst []byte) int {
	if !c.cfg.ModelDataArrays {
		lat := c.l1d.Timing(addr, len(dst), false)
		c.mem.RawRead(addr, dst)
		return lat
	}
	lat, hit := c.l1d.Read(addr, dst)
	if !hit && c.cfg.L1DPrefetch {
		c.l1d.Prefetch(addr + uint64(c.cfg.L1D.LineSize))
	}
	return lat
}

// dWrite writes program data through the D-cache.
func (c *CPU) dWrite(addr uint64, src []byte) int {
	if !c.cfg.ModelDataArrays {
		lat := c.l1d.Timing(addr, len(src), true)
		c.mem.RawWrite(addr, src)
		return lat
	}
	lat, _ := c.l1d.Write(addr, src)
	return lat
}

// hypervisorRead is the QEMU-escape path: the kernel reads user memory
// from the main memory model directly, bypassing the cache arrays, so
// cache corruption never reaches syscall-visible data (Remark 3).
func (c *CPU) hypervisorRead(addr uint64, dst []byte) mem.Fault {
	return c.mem.Read(addr, dst)
}

// ---- Register helpers ----------------------------------------------------------

func (c *CPU) file(fp bool) *pipeline.RegFile {
	if fp {
		return c.fpRF
	}
	return c.intRF
}

func archSlot(r isa.Reg) (fp bool, idx int) {
	if r.IsFP() {
		return true, r.FPIndex()
	}
	return false, int(r)
}

func (c *CPU) lookup(r isa.Reg) pipeline.PhysReg {
	if r == isa.RegNone {
		return pipeline.PhysNone
	}
	fp, idx := archSlot(r)
	return c.file(fp).Lookup(idx)
}

func (c *CPU) readPhys(p pipeline.PhysReg) uint64 {
	assert(int(p.Idx) < c.file(p.FP).Array().Entries(), "regfile: physical register index out of range")
	return c.file(p.FP).Read(p)
}

func (c *CPU) ready(p pipeline.PhysReg) bool {
	if !p.Valid() {
		return true
	}
	assert(int(p.Idx) < c.file(p.FP).Array().Entries(), "regfile: physical register index out of range")
	return c.file(p.FP).Ready(p)
}

// ---- Run loop ----------------------------------------------------------------

// Run implements core.Simulator.
func (c *CPU) Run(limitCycles uint64) (res core.RunResult) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(core.AssertError); ok {
				res = c.snapshotResult(core.RunAssert)
				res.AssertMsg = ae.Msg
				return
			}
			res = c.snapshotResult(core.RunSimCrash)
			res.AssertMsg = fmt.Sprint(r)
		}
	}()

	const deadlockWindow = 100_000
	for c.cycle < limitCycles {
		for _, a := range c.watch {
			st := a.Tick(c.cycle)
			if c.earlyStop && (st == bitarray.StatusOverwritten || st == bitarray.StatusSkippedInvalid) {
				return c.snapshotResult(core.RunEarlyMasked)
			}
		}
		c.commit()
		if c.finished {
			return c.result
		}
		c.complete()
		c.issue()
		c.rename()
		c.fetch()
		c.cycle++
		c.stats.Cycles = c.cycle
		if c.cycle-c.lastCommit > deadlockWindow {
			r := c.snapshotResult(core.RunCycleLimit)
			r.CommitStalled = true
			return r
		}
	}
	r := c.snapshotResult(core.RunCycleLimit)
	r.CommitStalled = c.cycle-c.lastCommit > deadlockWindow
	return r
}

func (c *CPU) snapshotResult(st core.RunStatus) core.RunResult {
	return core.RunResult{
		Status:    st,
		ExitCode:  c.kern.ExitCode,
		Output:    c.kern.Output,
		Committed: c.stats.CommittedInstrs,
		Cycles:    c.cycle,
		Events:    c.kern.Events,
	}
}

func (c *CPU) finish(st core.RunStatus, exc isa.Exception) {
	c.finished = true
	c.result = c.snapshotResult(st)
	c.result.FatalExc = exc
}

// flush squashes everything in flight and restarts fetch at newPC.
func (c *CPU) flush(newPC uint64) {
	c.rob.FlushAll()
	c.iq.FlushAll()
	c.lsq.FlushAll()
	c.intRF.Flush()
	c.fpRF.Flush()
	c.tour.OnFlush()
	c.inflight = c.inflight[:0]
	c.fetchQ = c.fetchQ[:0]
	c.fetchBlocked = false
	c.pc = newPC
	c.fetchReady = c.cycle + 3 // redirect penalty
	c.stats.Flushes++
}

// ---- Fetch ----------------------------------------------------------------

func (c *CPU) poison(pc uint64, exc isa.Exception, info uint64) {
	c.fetchQ = append(c.fetchQ, fetchedUop{
		uop: isa.Uop{Op: isa.Nop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone},
		pc:  pc, nextPC: pc, exc: exc, excInfo: info, instFirst: true,
	})
	c.fetchBlocked = true
}

func (c *CPU) fetch() {
	if c.fetchBlocked || c.cycle < c.fetchReady || len(c.fetchQ) > 4*c.cfg.FetchWidth {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		pc := c.pc
		if pc >= mem.KernelBase {
			// Committed control flow into the kernel region: the
			// poison reaches commit only on the true path, where it
			// becomes a kernel panic (system crash).
			c.poison(pc, isa.ExcKernelPanic, pc)
			return
		}
		if pc < c.img.TextBase || pc >= c.textEnd {
			c.poison(pc, isa.ExcPageFault, pc)
			return
		}
		paddr, tlbLat := c.itlb.Translate(pc)
		if paddr >= mem.KernelBase || paddr < mem.NullPageEnd {
			// A corrupted TLB PPN redirected the fetch itself.
			c.poison(pc, isa.ExcPageFault, paddr)
			return
		}
		need := c.dec.MaxInstLen()
		if pc+uint64(need) > c.textEnd {
			need = int(c.textEnd - pc)
		}
		var lat int
		var hit bool
		if c.cfg.ModelDataArrays {
			lat, hit = c.l1i.Read(paddr, c.fbuf[:need])
		} else {
			lat = c.l1i.Timing(paddr, need, false)
			hit = lat <= c.cfg.L1I.Latency
			c.mem.RawRead(paddr, c.fbuf[:need])
		}
		if !hit && c.cfg.L1IPrefetch {
			c.l1i.Prefetch(paddr + uint64(c.cfg.L1I.LineSize))
		}
		stall := lat - c.cfg.L1I.Latency + tlbLat
		if stall > 0 {
			c.fetchReady = c.cycle + uint64(stall)
		}

		// Decode into the CPU-owned scratch instruction: a stack-local
		// escapes through the interface call and heap-allocates on every
		// fetch. Both decoders Reset the destination first, and the
		// instruction is fully consumed before the next decode.
		inst := &c.ibuf
		if err := c.dec.Decode(c.fbuf[:need], pc, inst); err != nil {
			// Invalid encodings flow to commit as poisoned uops; if
			// they are on the true path MARSS stops with an assert
			// (Remark 8) — the commit stage decides.
			c.poison(pc, isa.ExcIllegalInstr, pc)
			return
		}
		nextPC := pc + uint64(inst.Len)

		// Branch prediction.
		predTaken, predTarget := false, nextPC
		var pred branch.Prediction
		hasPred := false
		rasTop, rasDepth := c.ras.Snapshot()
		b := inst.Branch
		if b.IsBranch {
			switch {
			case b.IsRet:
				predTaken = true
				if t, ok := c.ras.Pop(); ok {
					predTarget = t
				}
			case b.IsIndirect:
				predTaken = true
				if t, ok := c.btbInd.Lookup(pc); ok {
					predTarget = t
				}
			case b.IsCond:
				pred = c.tour.Predict(pc)
				hasPred = true
				predTaken = pred.Taken
				predTarget = b.Target
				if t, ok := c.btbDir.Lookup(pc); ok {
					predTarget = t
				}
			default: // unconditional direct jump or call
				predTaken = true
				predTarget = b.Target
				if t, ok := c.btbDir.Lookup(pc); ok {
					predTarget = t
				}
			}
			if b.IsCall {
				c.ras.Push(nextPC)
			}
		}

		for i := 0; i < int(inst.NUops); i++ {
			fu := fetchedUop{
				uop: inst.Uops[i], pc: pc, nextPC: nextPC, instFirst: i == 0,
			}
			if inst.Uops[i].IsBranch() {
				fu.isBranch = true
				fu.binfo = b
				fu.hasPred = hasPred
				fu.pred = pred
				fu.predTaken = predTaken
				fu.predTarget = predTarget
				fu.rasTop, fu.rasDepth = rasTop, rasDepth
			}
			c.fetchQ = append(c.fetchQ, fu)
		}

		if b.IsBranch && predTaken {
			c.pc = predTarget
			return // taken-predicted branches end the fetch group
		}
		c.pc = nextPC
		if stall > 0 {
			return
		}
	}
}

// ---- Rename/dispatch ----------------------------------------------------------

func (c *CPU) rename() {
	for n := 0; n < c.cfg.RenameWidth && len(c.fetchQ) > 0; n++ {
		fu := &c.fetchQ[0]
		u := fu.uop
		if c.rob.Full() {
			return
		}
		isMem := u.IsMem()
		if isMem && !c.lsq.CanAlloc(u.IsStore()) {
			return
		}
		needsIQ := fu.exc == isa.ExcNone && c.needsIQ(u)
		if needsIQ && c.iq.Full() {
			return
		}

		src1 := c.lookup(u.Src1)
		src2 := c.lookup(u.Src2)
		var dst, old pipeline.PhysReg
		dst = pipeline.PhysNone
		if u.HasDst() {
			fp, arch := archSlot(u.Dst)
			var ok bool
			dst, old, ok = c.file(fp).Rename(arch)
			if !ok {
				return // free list empty: stall rename
			}
		}

		idx := c.rob.Alloc()
		e := c.rob.At(idx)
		e.PC = fu.pc
		e.NextPC = fu.nextPC
		e.Uop = u
		e.Dst, e.OldDst, e.Src1, e.Src2 = dst, old, src1, src2
		e.ArchDst = u.Dst
		e.Exc, e.ExcInfo = fu.exc, fu.excInfo
		e.IsBranch = fu.isBranch
		if fu.isBranch {
			e.BranchInfo = fu.binfo
			e.HasPred = fu.hasPred
			e.Pred = fu.pred
			e.PredTaken = fu.predTaken
			e.PredTarget = fu.predTarget
			// Reuse the ROB entry's LSQIdx-free fields to stash the
			// RAS snapshot via ExcInfo? No — keep it simple and store
			// in dedicated fields below.
		}
		c.rasSnaps[idx] = [2]int{fu.rasTop, fu.rasDepth}
		if fu.instFirst {
			c.instHeads[idx] = true
		} else {
			c.instHeads[idx] = false
		}

		switch {
		case fu.exc != isa.ExcNone:
			e.Executed = true
		case u.Op == isa.Nop:
			e.Executed = true
		case u.Op == isa.Halt:
			// Privileged in user mode.
			e.Exc = isa.ExcIllegalInstr
			e.Executed = true
		case u.Op == isa.Syscall:
			e.IsSyscall = true
			e.Executed = true
		case u.Op == isa.Jmp:
			e.ActualTaken = true
			e.ActualTarget = fu.binfo.Target
			e.Mispredicted = c.predictedNext(e) != e.ActualTarget
			e.Executed = true
		case u.Op == isa.Call:
			if dst.Valid() {
				c.file(dst.FP).Write(dst, uint64(u.Imm))
			}
			e.ActualTaken = true
			e.ActualTarget = fu.binfo.Target
			e.Mispredicted = c.predictedNext(e) != e.ActualTarget
			e.Executed = true
		default:
			if isMem {
				li, ok := c.lsq.Alloc(u.IsStore(), idx, e.Seq)
				assert(ok, "lsq: allocation failed after capacity check")
				e.LSQIdx = li
			}
			w0, w1 := pipeline.PackUop(u, dst, src1, src2)
			ok := c.iq.Alloc(w0, w1, idx)
			assert(ok, "iq: allocation failed after capacity check")
			e.Dispatched = true
		}
		c.fetchQ = c.fetchQ[1:]
	}
}

// needsIQ reports whether the uop is scheduled through the issue queue.
func (c *CPU) needsIQ(u isa.Uop) bool {
	switch u.Op {
	case isa.Nop, isa.Halt, isa.Syscall, isa.Jmp, isa.Call:
		return false
	}
	return true
}

// predictedNext returns the next PC the front end followed after this
// branch.
func (c *CPU) predictedNext(e *pipeline.ROBEntry) uint64 {
	if e.PredTaken {
		return e.PredTarget
	}
	return e.NextPC
}

// actualNext returns the architecturally correct next PC of a resolved
// branch.
func actualNext(e *pipeline.ROBEntry) uint64 {
	if e.ActualTaken {
		return e.ActualTarget
	}
	return e.NextPC
}

// ---- Issue/execute -------------------------------------------------------------

func (c *CPU) issue() {
	intBudget, fpBudget, memBudget := c.cfg.IntALUs, c.cfg.FPALUs, c.cfg.MemPorts
	issued := 0
	// Oldest-first selection over the occupied issue queue slots.
	type cand struct {
		slot int
		seq  uint64
	}
	var cands []cand
	for i := 0; i < c.iq.Size(); i++ {
		if c.iq.Occupied(i) {
			_, robIdx := c.iq.Entry(i)
			assert(robIdx >= 0 && robIdx < c.rob.Cap(), "iq: corrupted ROB link")
			cands = append(cands, cand{i, c.rob.At(robIdx).Seq})
		}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].seq < cands[j-1].seq; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}

	for _, cd := range cands {
		if issued >= c.cfg.IssueWidth {
			return
		}
		p, robIdx := c.iq.Entry(cd.slot)
		e := c.rob.At(robIdx)
		assert(int(p.Op) < isa.NumOps, "iq: corrupted opcode in issue payload")
		if !c.ready(p.Src1) || !c.ready(p.Src2) {
			if c.cfg.InOrder {
				// The Atom-like model issues strictly in program
				// order: a stalled micro-op stalls everything younger.
				return
			}
			continue
		}
		switch {
		case p.Op == isa.Load || p.Op == isa.FLoad:
			if memBudget == 0 {
				if c.cfg.InOrder {
					return
				}
				continue
			}
			if c.issueLoad(cd.slot, p, robIdx, e) {
				memBudget--
				issued++
			} else if c.cfg.InOrder {
				return
			}
		case p.Op == isa.Store || p.Op == isa.FStore:
			if memBudget == 0 {
				if c.cfg.InOrder {
					return
				}
				continue
			}
			c.issueStore(cd.slot, p, robIdx, e)
			memBudget--
			issued++
		case isFPUOp(p.Op):
			if fpBudget == 0 {
				if c.cfg.InOrder {
					return
				}
				continue
			}
			c.issueFP(cd.slot, p, robIdx, e)
			fpBudget--
			issued++
		default:
			if intBudget == 0 {
				if c.cfg.InOrder {
					return
				}
				continue
			}
			c.issueInt(cd.slot, p, robIdx, e)
			intBudget--
			issued++
		}
	}
}

func isFPUOp(op isa.Op) bool {
	switch op {
	case isa.FAdd, isa.FSub, isa.FMul, isa.FDiv, isa.FMov, isa.FCvtIF,
		isa.FCvtFI, isa.FCmp, isa.FMovToFP, isa.FMovFromFP:
		return true
	}
	return false
}

func (c *CPU) operand(p pipeline.PackedUop) (a, b uint64) {
	if p.Src1.Valid() {
		a = c.readPhys(p.Src1)
	}
	if p.UsesImm {
		b = uint64(p.Imm)
	} else if p.Src2.Valid() {
		b = c.readPhys(p.Src2)
	}
	return a, b
}

// agu computes and validates a data address. It returns ok=false when an
// exception was recorded on the ROB entry.
func (c *CPU) agu(p pipeline.PackedUop, e *pipeline.ROBEntry, write bool) (addr uint64, lat int, ok bool) {
	base := c.readPhys(p.Src1)
	vaddr := base + uint64(p.Imm)
	assert(p.Size >= 1 && p.Size <= 8, "lsq: corrupted access size")
	if f := c.mem.CheckUser(vaddr, int(p.Size), write); f != mem.FaultNone {
		if f == mem.FaultProt {
			e.Exc = isa.ExcProtFault
		} else {
			e.Exc = isa.ExcPageFault
		}
		e.ExcInfo = vaddr
		e.Executed = true
		return 0, 0, false
	}
	paddr, tlbLat := c.dtlb.Translate(vaddr)
	if f := c.mem.CheckUser(paddr, int(p.Size), write); f != mem.FaultNone {
		// A corrupted TLB PPN redirected the access out of bounds.
		e.Exc = isa.ExcPageFault
		e.ExcInfo = paddr
		e.Executed = true
		return 0, 0, false
	}
	return paddr, tlbLat, true
}

// issueLoad attempts to issue a load; MARSS is aggressive: unknown older
// store addresses do not block it. It reports whether the load occupied
// a memory port.
func (c *CPU) issueLoad(slot int, p pipeline.PackedUop, robIdx int, e *pipeline.ROBEntry) bool {
	addr, tlbLat, ok := c.agu(p, e, false)
	if !ok {
		c.iq.Release(slot)
		return true
	}
	assert(e.LSQIdx >= 0, "lsq: load without queue entry")
	c.lsq.SetAddr(e.LSQIdx, addr, p.Size)
	fwd := c.lsq.QueryLoad(e.LSQIdx)
	if fwd.MustWait {
		return false // partial overlap: retry next cycle
	}
	var raw uint64
	var lat int
	if fwd.Forward {
		raw = c.lsq.Data(fwd.FwdIdx) >> (8 * fwd.FwdShift)
		lat = 1
		c.stats.ForwardedLoads++
	} else {
		lat = c.dRead(addr, c.sbuf[:p.Size])
		raw = leLoad(c.sbuf[:p.Size])
	}
	c.stats.IssuedLoads++
	c.lsq.MarkExecuted(e.LSQIdx)
	c.iq.Release(slot)
	c.inflight = append(c.inflight, inflightOp{
		robIdx: robIdx, seq: e.Seq, done: c.cycle + uint64(lat+tlbLat), value: raw, isLoad: true,
	})
	return true
}

func (c *CPU) issueStore(slot int, p pipeline.PackedUop, robIdx int, e *pipeline.ROBEntry) {
	addr, _, ok := c.agu(p, e, true)
	if !ok {
		c.iq.Release(slot)
		return
	}
	assert(e.LSQIdx >= 0, "lsq: store without queue entry")
	var data uint64
	if p.Src2.Valid() {
		data = c.readPhys(p.Src2)
	}
	c.lsq.SetAddr(e.LSQIdx, addr, p.Size)
	c.lsq.PutData(e.LSQIdx, data)
	c.stats.IssuedStores++
	// Aggressive load speculation: a just-resolved store may expose
	// younger loads that already read stale data.
	for _, v := range c.lsq.StoreResolved(e.LSQIdx) {
		assert(v >= 0 && v < c.rob.Cap(), "lsq: corrupted violation ROB link")
		c.rob.At(v).Violated = true
	}
	// MARSS-style replays: younger loads that already executed against
	// the same cache line re-access it once the store resolves, which
	// inflates the executed-load count well above the committed count
	// (the Remark 3 statistic).
	for _, li := range c.lsq.LineSharers(e.LSQIdx, uint64(c.cfg.L1D.LineSize)) {
		la, ls := c.lsq.Addr(li)
		c.stats.IssuedLoads++
		c.dRead(la, c.sbuf[:ls])
	}
	e.Executed = true
	c.iq.Release(slot)
}

func (c *CPU) issueInt(slot int, p pipeline.PackedUop, robIdx int, e *pipeline.ROBEntry) {
	defer c.iq.Release(slot)
	switch p.Op {
	case isa.BrFlags:
		flags := c.readPhys(p.Src1)
		e.ActualTaken = isa.EvalCond(p.Cond, flags)
		e.ActualTarget = e.BranchInfo.Target
		e.Mispredicted = c.predictedNext(e) != actualNext(e)
		e.Executed = true
		return
	case isa.BrCmp:
		a, b := c.operand(p)
		e.ActualTaken = isa.EvalCond(p.Cond, isa.CmpFlags(a, b))
		e.ActualTarget = e.BranchInfo.Target
		e.Mispredicted = c.predictedNext(e) != actualNext(e)
		e.Executed = true
		return
	case isa.JmpReg, isa.Ret:
		e.ActualTaken = true
		e.ActualTarget = c.readPhys(p.Src1)
		e.Mispredicted = c.predictedNext(e) != actualNext(e)
		e.Executed = true
		return
	}
	a, b := c.operand(p)
	r := isa.EvalInt(p.Op, a, b, c.dec.DivZero())
	if r.DivZero {
		e.Exc = isa.ExcDivZero
		e.Executed = true
		return
	}
	lat := 1
	switch p.Op {
	case isa.Mul:
		lat = 3
	case isa.Div, isa.Rem:
		lat = 20
	}
	c.inflight = append(c.inflight, inflightOp{robIdx: robIdx, seq: e.Seq, done: c.cycle + uint64(lat), value: r.Val})
}

func (c *CPU) issueFP(slot int, p pipeline.PackedUop, robIdx int, e *pipeline.ROBEntry) {
	defer c.iq.Release(slot)
	bits := func(p pipeline.PhysReg) float64 { return math.Float64frombits(c.readPhys(p)) }
	var val uint64
	lat := 4
	switch p.Op {
	case isa.FAdd, isa.FSub, isa.FMul, isa.FDiv, isa.FMov:
		if p.Op == isa.FDiv {
			lat = 12
		}
		val = math.Float64bits(isa.EvalFP(p.Op, bits(p.Src1), bits(p.Src2)))
	case isa.FCvtIF:
		val = math.Float64bits(float64(int64(c.readPhys(p.Src1))))
	case isa.FCvtFI:
		val = uint64(int64(bits(p.Src1)))
	case isa.FMovToFP:
		val = c.readPhys(p.Src1)
	case isa.FMovFromFP:
		val = c.readPhys(p.Src1)
	case isa.FCmp:
		val = isa.FCmpFlags(bits(p.Src1), bits(p.Src2))
		lat = 2
	}
	c.inflight = append(c.inflight, inflightOp{robIdx: robIdx, seq: e.Seq, done: c.cycle + uint64(lat), value: val})
}

// ---- Completion ---------------------------------------------------------------

func (c *CPU) complete() {
	out := c.inflight[:0]
	for _, op := range c.inflight {
		if op.done > c.cycle {
			out = append(out, op)
			continue
		}
		e := c.rob.At(op.robIdx)
		assert(e.Seq == op.seq, "complete: stale in-flight op after flush")
		v := op.value
		if op.isLoad {
			v = isa.ExtendLoad(v, e.Uop.Size, e.Uop.SignExt)
			if e.Uop.Op == isa.FLoad {
				// raw bits flow into the FP register unchanged
				v = op.value
			}
			// MARSS's unified LSQ holds load results too: the value
			// lands in the queue's data field and the register read
			// goes through it (Remark 1's mechanism).
			assert(e.LSQIdx >= 0, "complete: load without queue entry")
			c.lsq.PutData(e.LSQIdx, v)
			v = c.lsq.Data(e.LSQIdx)
		}
		if e.Dst.Valid() {
			c.file(e.Dst.FP).Write(e.Dst, v)
		}
		e.Executed = true
	}
	c.inflight = out
}

// ---- Commit ---------------------------------------------------------------

func (c *CPU) commit() {
	for n := 0; n < c.cfg.CommitWidth && !c.rob.Empty(); n++ {
		idx := c.rob.Head()
		e := c.rob.At(idx)
		if !e.Executed {
			return
		}

		// Aggressive-load replay: the load read stale data; squash and
		// refetch from the load's instruction.
		if e.Violated && e.Uop.IsLoad() && e.Exc == isa.ExcNone {
			c.stats.LoadReplays++
			c.flush(e.PC)
			c.lastCommit = c.cycle
			return
		}

		if e.Exc != isa.ExcNone {
			switch kernel.SeverityOf(e.Exc) {
			case kernel.SevRecoverable:
				c.kern.Record(c.cycle, e.PC, e.Exc, e.ExcInfo)
			case kernel.SevPanic:
				c.kern.Panic(c.cycle, e.PC, e.ExcInfo)
				c.finish(core.RunSystemCrash, e.Exc)
				return
			default:
				if e.Exc == isa.ExcIllegalInstr {
					// MARSS stops with an internal assertion on
					// undecodable/unimplemented opcodes rather than
					// delivering #UD — the Remark 8 mechanism that
					// turns corrupted instruction bytes into Asserts.
					assert(false, "decode: invalid or unimplemented opcode reached commit")
				}
				c.finish(core.RunProcessCrash, e.Exc)
				return
			}
		}

		if e.IsSyscall {
			stop := c.kern.Syscall(c.cycle, e.PC,
				func(r isa.Reg) uint64 {
					fp, a := archSlot(r)
					return c.file(fp).ReadArch(a)
				},
				func(r isa.Reg, v uint64) {
					fp, a := archSlot(r)
					c.file(fp).WriteArch(a, v)
				},
				c.hypervisorRead)
			c.stats.Syscalls++
			c.bumpCommitted(idx)
			c.rob.PopHead()
			if stop {
				c.finish(core.RunCompleted, isa.ExcNone)
				return
			}
			if c.kern.Panicked {
				c.finish(core.RunSystemCrash, isa.ExcKernelPanic)
				return
			}
			// Syscalls serialize the pipeline.
			c.flush(e.NextPC)
			c.lastCommit = c.cycle
			return
		}

		if e.LSQIdx >= 0 {
			if e.Uop.IsStore() {
				assert(c.lsq.DataValid(e.LSQIdx), "commit: store without data")
				addr, size := c.lsq.Addr(e.LSQIdx)
				data := c.lsq.Data(e.LSQIdx)
				leStore(c.sbuf[:size], data)
				c.dWrite(addr, c.sbuf[:size])
				c.stats.CommittedStores++
			} else {
				c.stats.CommittedLoads++
			}
			c.lsq.Free(e.LSQIdx)
		}

		if e.Dst.Valid() {
			fp, arch := archSlot(e.ArchDst)
			c.file(fp).Commit(arch, e.Dst, e.OldDst)
		}

		if e.IsBranch {
			c.trainBranch(e)
			if e.Mispredicted {
				snap := c.rasSnaps[idx]
				c.ras.Restore(snap[0], snap[1])
				if e.BranchInfo.IsCall {
					c.ras.Push(e.NextPC)
				} else if e.BranchInfo.IsRet {
					c.ras.Pop()
				}
				target := actualNext(e)
				c.bumpCommitted(idx)
				c.rob.PopHead()
				c.flush(target)
				c.lastCommit = c.cycle
				return
			}
		}

		c.bumpCommitted(idx)
		c.rob.PopHead()
		c.lastCommit = c.cycle
	}
}

func (c *CPU) bumpCommitted(idx int) {
	c.stats.CommittedUops++
	if c.instHeads[idx] {
		c.stats.CommittedInstrs++
		if c.commitProbe != nil {
			c.commitProbe.Commit(c.rob.At(idx).PC, c.stats.CommittedInstrs-1, c.cycle)
		}
	}
}

// SetCommitProbe implements core.CommitProbed: p observes every
// committed architectural instruction from now on; nil detaches.
func (c *CPU) SetCommitProbe(p core.CommitProbe) { c.commitProbe = p }

func (c *CPU) trainBranch(e *pipeline.ROBEntry) {
	if e.HasPred {
		c.tour.Resolve(e.PC, e.Pred, e.ActualTaken)
	}
	b := e.BranchInfo
	switch {
	case b.IsRet:
		// The RAS self-maintains.
	case b.IsIndirect:
		c.btbInd.Update(e.PC, e.ActualTarget)
	default:
		if e.ActualTaken {
			c.btbDir.Update(e.PC, e.ActualTarget)
		}
	}
}

// ---- Little-endian helpers --------------------------------------------------

func leLoad(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func leStore(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}
