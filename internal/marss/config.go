// Package marss implements the MARSS-like out-of-order x86 simulator
// behind the MaFIN injector. Its distinguishing microarchitectural
// traits, each one a difference the paper's differential analysis relies
// on, are:
//
//   - a unified 32-entry load/store queue whose entries hold data for
//     loads and stores alike (Remark 1);
//   - aggressive load issue: loads issue as soon as their address is
//     ready, before older store addresses resolve, with replay on a
//     detected ordering violation (Remark 3);
//   - dual-copy cache data arrays: MARSS keeps program data in its main
//     memory model, so stores propagate there immediately and evictions
//     discard the array copy (Remark 3's extra masking);
//   - a QEMU-hypervisor escape: system calls act on main memory
//     directly, bypassing the data cache (Remarks 3 and 6);
//   - next-line prefetchers on L1D and L1I (the "New" components of
//     Table IV);
//   - a tournament predictor whose final decision is bound to the
//     branch address, and split direct/indirect BTBs (Remark 6);
//   - a dense population of internal assertions, so corrupted
//     instruction bytes stop the simulator with an assert rather than
//     an architectural crash (Remark 8).
package marss

import "repro/internal/cache"

// Config parameterizes the simulated core (Table II, MARSS/x86 column).
type Config struct {
	// Pipeline widths in micro-ops (instructions for fetch).
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// Structure sizes.
	IntPhysRegs int
	FPPhysRegs  int
	IQEntries   int
	LSQEntries  int // unified
	ROBEntries  int
	RASEntries  int

	// Functional units.
	IntALUs  int
	FPALUs   int
	MemPorts int

	// Caches.
	L1I, L1D, L2 cache.Config
	MemLatency   int

	// TLBs.
	TLBEntries int
	TLBWays    int
	TLBMissLat int

	// Branch prediction.
	LocalEntries  int
	LocalHistBits int
	GlobalBits    int
	BTBDirEntries int
	BTBDirWays    int
	BTBIndEntries int
	BTBIndWays    int

	// Prefetchers (the MaFIN "New" components). On by default.
	L1DPrefetch bool
	L1IPrefetch bool

	// InOrder selects MARSS's simple Atom-like in-order pipeline model
	// instead of the out-of-order one (the paper notes MARSS models
	// both and focuses on the OoO model; the in-order model enables the
	// OoO-vs-in-order reliability studies it suggests). In-order issue
	// keeps program order in the scheduler: a micro-op issues only when
	// every older micro-op has issued.
	InOrder bool

	// ModelDataArrays keeps the cache data arrays in the model; turning
	// it off reproduces the unmodified MARSS (for the ~40% throughput
	// ablation of §III.C) — loads and stores then bypass the arrays and
	// act on main memory, and cache structures are timing-only.
	ModelDataArrays bool
}

// InOrderConfig returns the Atom-like in-order MARSS configuration: the
// same structure sizes with a narrow, program-ordered scheduler.
func InOrderConfig() Config {
	cfg := DefaultConfig()
	cfg.InOrder = true
	cfg.IssueWidth = 2
	cfg.CommitWidth = 2
	return cfg
}

// DefaultConfig returns the Table II MARSS/x86 configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth: 4, RenameWidth: 4, IssueWidth: 4, CommitWidth: 4,
		IntPhysRegs: 256, FPPhysRegs: 256,
		IQEntries: 32, LSQEntries: 32, ROBEntries: 64, RASEntries: 16,
		IntALUs: 2, FPALUs: 2, MemPorts: 4,
		L1I:        cache.Config{Name: "l1i", Size: 32 << 10, LineSize: 64, Ways: 4, Latency: 2, DualCopy: true},
		L1D:        cache.Config{Name: "l1d", Size: 32 << 10, LineSize: 64, Ways: 4, Latency: 2, DualCopy: true},
		L2:         cache.Config{Name: "l2", Size: 1 << 20, LineSize: 64, Ways: 16, Latency: 12, DualCopy: true},
		MemLatency: 100,
		TLBEntries: 64, TLBWays: 4, TLBMissLat: 20,
		LocalEntries: 1024, LocalHistBits: 10, GlobalBits: 12,
		BTBDirEntries: 1024, BTBDirWays: 4,
		BTBIndEntries: 512, BTBIndWays: 4,
		L1DPrefetch: true, L1IPrefetch: true,
		ModelDataArrays: true,
	}
}
