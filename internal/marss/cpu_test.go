package marss_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/marss"
)

// buildTestProgram builds a program exercising loops, calls, memory
// traffic, FP and branches, with a checksum written to the output file.
func buildTestProgram(t *testing.T) *asm.Image {
	t.Helper()
	p := asm.NewProgram()
	p.Bss("buf", 512)
	p.Bss("out", 16)

	sum := p.Func("sumbuf") // r0 = sum of 64 longs at buf
	sum.MovSym(isa.R1, "buf")
	sum.MovImm(isa.R0, 0)
	sum.MovImm(isa.R2, 0)
	sum.Label("loop")
	sum.ShlI(isa.R3, isa.R2, 3)
	sum.Add(isa.R3, isa.R1, isa.R3)
	sum.Load(8, false, isa.R4, isa.R3, 0)
	sum.Add(isa.R0, isa.R0, isa.R4)
	sum.AddI(isa.R2, isa.R2, 1)
	sum.BrI(isa.CondLT, isa.R2, 64, "loop")
	sum.Ret()

	f := p.Func("main")
	// Fill buf[i] = i*i - 3i + 7 with a data-dependent branch.
	f.MovSym(isa.R1, "buf")
	f.MovImm(isa.R2, 0)
	f.Label("fill")
	f.Mul(isa.R3, isa.R2, isa.R2)
	f.MulI(isa.R4, isa.R2, 3)
	f.Sub(isa.R3, isa.R3, isa.R4)
	f.AddI(isa.R3, isa.R3, 7)
	f.AndI(isa.R5, isa.R2, 3)
	f.BrI(isa.CondNE, isa.R5, 0, "skip")
	f.Add(isa.R3, isa.R3, isa.R3) // every 4th element doubled
	f.Label("skip")
	f.ShlI(isa.R6, isa.R2, 3)
	f.Add(isa.R6, isa.R1, isa.R6)
	f.Store(8, isa.R3, isa.R6, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, 64, "fill")
	// Sum via a call.
	f.Call("sumbuf")
	f.MovSym(isa.R10, "out")
	f.Store(8, isa.R0, isa.R10, 0)
	// FP: out[8] = trunc(sqrt-free fp math) — (sum/7.0)*3.5.
	f.FCvtIF(isa.F0, isa.R0)
	f.FMovImm(isa.F1, 7.0)
	f.FDiv(isa.F2, isa.F0, isa.F1)
	f.FMovImm(isa.F3, 3.5)
	f.FMul(isa.F2, isa.F2, isa.F3)
	f.FCvtFI(isa.R3, isa.F2)
	f.Store(8, isa.R3, isa.R10, 8)
	// write(out, 16); exit(0)
	f.MovImm(isa.R0, 1)
	f.MovSym(isa.R1, "out")
	f.MovImm(isa.R2, 16)
	f.Syscall()
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()

	img, err := p.Build(asm.TargetCISC)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestFaultFreeMatchesReferenceModel(t *testing.T) {
	img := buildTestProgram(t)
	ref := interp.Run(img, 10_000_000)
	if ref.Outcome != interp.Completed {
		t.Fatalf("reference: %v", ref.Outcome)
	}
	cpu := marss.New(marss.DefaultConfig(), img)
	res := cpu.Run(50_000_000)
	if res.Status != core.RunCompleted {
		t.Fatalf("marss: %v (%s), %d cycles, %d instrs", res.Status, res.AssertMsg, res.Cycles, res.Committed)
	}
	if !bytes.Equal(res.Output, ref.Output) {
		t.Fatalf("output mismatch:\n marss: %x\n ref:   %x", res.Output, ref.Output)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit code %d", res.ExitCode)
	}
	if len(res.Events) != 0 {
		t.Fatalf("events: %v", res.Events)
	}
	if res.Committed == 0 || res.Committed != ref.Steps {
		t.Fatalf("committed %d instrs, reference %d", res.Committed, ref.Steps)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	img := buildTestProgram(t)
	a := marss.New(marss.DefaultConfig(), img).Run(50_000_000)
	b := marss.New(marss.DefaultConfig(), img).Run(50_000_000)
	if a.Cycles != b.Cycles || a.Committed != b.Committed || !bytes.Equal(a.Output, b.Output) {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}

func TestStatsPlausible(t *testing.T) {
	img := buildTestProgram(t)
	cpu := marss.New(marss.DefaultConfig(), img)
	res := cpu.Run(50_000_000)
	if res.Status != core.RunCompleted {
		t.Fatalf("status %v (%s)", res.Status, res.AssertMsg)
	}
	s := cpu.Stats()
	if s["committed_loads"] == 0 || s["committed_stores"] == 0 {
		t.Fatalf("no memory traffic: %v", s)
	}
	if s["issued_loads"] < s["committed_loads"] {
		t.Fatalf("issued loads %d < committed %d", s["issued_loads"], s["committed_loads"])
	}
	if s["l1d_read_hits"]+s["l1d_read_misses"] == 0 {
		t.Fatal("no L1D reads")
	}
	if s["bp_lookups"] == 0 {
		t.Fatal("no branch predictions")
	}
	if s["cycles"] == 0 || s["committed_instrs"] == 0 {
		t.Fatal("no progress stats")
	}
	ipc := float64(s["committed_uops"]) / float64(s["cycles"])
	if ipc < 0.05 || ipc > 4.0 {
		t.Fatalf("implausible IPC %.3f", ipc)
	}
}

func TestStructureInventory(t *testing.T) {
	img := buildTestProgram(t)
	cpu := marss.New(marss.DefaultConfig(), img)
	st := cpu.Structures()
	want := []string{
		"rf.int", "rf.fp", "lsq.data", "iq", "ras",
		"l1d.data", "l1d.tag", "l1d.valid",
		"l1i.data", "l1i.tag", "l1i.valid",
		"l2.data", "l2.tag", "l2.valid",
		"dtlb.valid", "dtlb.tag", "dtlb.ppn",
		"itlb.valid", "itlb.tag", "itlb.ppn",
		"btb.dir.valid", "btb.dir.tag", "btb.dir.target",
		"btb.ind.valid", "btb.ind.tag", "btb.ind.target",
	}
	for _, n := range want {
		if st[n] == nil {
			t.Errorf("missing structure %q", n)
		}
	}
	// Geometry spot checks against Table II.
	if st["rf.int"].Entries() != 256 || st["rf.int"].BitsPerEntry() != 64 {
		t.Errorf("rf.int geometry %dx%d", st["rf.int"].Entries(), st["rf.int"].BitsPerEntry())
	}
	if st["lsq.data"].Entries() != 32 {
		t.Errorf("lsq entries %d, want 32 (unified)", st["lsq.data"].Entries())
	}
	if st["l1d.data"].Entries() != 512 || st["l1d.data"].BitsPerEntry() != 512 {
		t.Errorf("l1d.data geometry %dx%d", st["l1d.data"].Entries(), st["l1d.data"].BitsPerEntry())
	}
}

func TestEarlyStopOnDeadRegisterFault(t *testing.T) {
	img := buildTestProgram(t)
	cpu := marss.New(marss.DefaultConfig(), img)
	// Arm a transient fault into a physical register that is on the
	// free list (entry 250 is initially unallocated): the invalid-entry
	// early stop must fire.
	arr := cpu.Structures()["rf.int"]
	arr.Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: 250, Bit: 5, Start: 100})
	cpu.WatchArrays([]*bitarray.Array{arr})
	res := cpu.Run(50_000_000)
	if res.Status != core.RunEarlyMasked {
		t.Fatalf("status %v, want early-masked", res.Status)
	}
}

func TestFaultInjectionRegisterFileSweep(t *testing.T) {
	// Inject a handful of register-file faults; every run must land in
	// a defined terminal state and masked runs must match the golden
	// output.
	img := buildTestProgram(t)
	golden := marss.New(marss.DefaultConfig(), img).Run(50_000_000)
	if golden.Status != core.RunCompleted {
		t.Fatal("golden run failed")
	}
	limit := golden.Cycles * 3
	outcomes := map[core.RunStatus]int{}
	for i := 0; i < 40; i++ {
		cpu := marss.New(marss.DefaultConfig(), img)
		arr := cpu.Structures()["rf.int"]
		arr.Arm(bitarray.Fault{
			Kind:  bitarray.Transient,
			Entry: (i * 7) % arr.Entries(),
			Bit:   (i * 13) % 64,
			Start: uint64(i) * golden.Cycles / 40,
		})
		cpu.WatchArrays([]*bitarray.Array{arr})
		res := cpu.Run(limit)
		outcomes[res.Status]++
		if res.Status == core.RunCompleted && bytes.Equal(res.Output, golden.Output) &&
			len(res.Events) > 0 {
			t.Errorf("run %d: completed with events but clean output (fine: false DUE) %v", i, res.Events)
		}
	}
	masked := outcomes[core.RunEarlyMasked] + outcomes[core.RunCompleted]
	if masked == 0 {
		t.Fatalf("no masked/completed outcomes at all: %v", outcomes)
	}
	t.Logf("outcomes: %v", outcomes)
}

func TestInOrderModelMatchesReference(t *testing.T) {
	// The Atom-like in-order pipeline must be functionally identical to
	// the OoO one — same outputs — while being slower in cycles.
	img := buildTestProgram(t)
	ooo := marss.New(marss.DefaultConfig(), img).Run(50_000_000)
	ino := marss.New(marss.InOrderConfig(), img).Run(50_000_000)
	if ooo.Status != core.RunCompleted || ino.Status != core.RunCompleted {
		t.Fatalf("status %v / %v", ooo.Status, ino.Status)
	}
	if !bytes.Equal(ooo.Output, ino.Output) {
		t.Fatal("in-order output diverges from OoO")
	}
	if ino.Cycles <= ooo.Cycles {
		t.Fatalf("in-order (%d cycles) not slower than OoO (%d)", ino.Cycles, ooo.Cycles)
	}
	t.Logf("OoO %d cycles vs in-order %d cycles (%.2fx)",
		ooo.Cycles, ino.Cycles, float64(ino.Cycles)/float64(ooo.Cycles))
}
