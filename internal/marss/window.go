package marss

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bitarray"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/isa"
)

// This file implements the core.Windower capability: detail-window
// execution, where the scheduler runs this cycle-accurate core only
// inside a window around the fault and hands architectural state to and
// from the functional tier at the window edges.

// Image returns the program image the machine was booted with; the
// scheduler seeds functional-tier machines from it.
func (c *CPU) Image() *asm.Image { return c.img }

// CaptureArch snapshots the architecturally visible machine state for a
// handoff to the functional tier. The machine must be drained (nothing
// speculative in flight), so the committed register mapping, RAM and
// kernel state are the complete reachable state. MARSS keeps main
// memory authoritative (dual-copy caches), so no cache flush is needed;
// FlushDirty is a no-op in that mode and covers any write-back
// configuration.
func (c *CPU) CaptureArch() (*handoff.State, error) {
	if !c.drained() {
		return nil, fmt.Errorf("marss: architectural capture requires a drained machine")
	}
	c.l1d.FlushDirty()
	c.l2.FlushDirty()
	st := &handoff.State{
		PC:        c.pc,
		Mem:       c.mem.SnapshotPaged(),
		Kern:      c.kern.Clone(),
		Cycle:     c.cycle,
		Committed: c.stats.CommittedInstrs,
	}
	for i := 0; i < isa.NumIntRegs; i++ {
		st.IntRegs[i] = c.intRF.ReadArch(i)
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		st.FPRegs[i] = c.fpRF.ReadArch(i)
	}
	return st, nil
}

// SeedArch loads an architectural state captured on the functional tier
// into this freshly booted machine: RAM, kernel, committed registers,
// PC and the time base. Microarchitectural state (caches, predictors)
// stays cold — the scheduler's pre-fault margin absorbs the warm-up.
// Call it before arming faults.
func (c *CPU) SeedArch(st *handoff.State) {
	c.mem.RestorePaged(st.Mem)
	c.kern = st.Kern.Clone()
	for i := 0; i < isa.NumIntRegs; i++ {
		c.intRF.WriteArch(i, st.IntRegs[i])
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		c.fpRF.WriteArch(i, st.FPRegs[i])
	}
	c.pc = st.PC
	c.cycle = st.Cycle
	c.lastCommit = st.Cycle
	c.stats.Cycles = st.Cycle
	c.stats.CommittedInstrs = st.Committed
	c.fetchReady = st.Cycle
}

// faultCaptureSafe reports whether a fault armed on array a at entry can
// no longer make the true continuation diverge from one replayed off
// captured architectural state. Drained pipeline structures (register
// files, ROB, IQ, LSQ, predictors) are always safe: their content is
// either part of the committed register mapping — which CaptureArch
// materializes exactly — or dead. Cache arrays are safe only while the
// faulted line cannot serve stale bytes (see cache.LineCaptureSafe);
// TLB arrays only while the faulted entry holds no valid translation.
func (c *CPU) faultCaptureSafe(a *bitarray.Array, entry int) bool {
	for _, ch := range []*cache.Cache{c.l1d, c.l1i, c.l2} {
		for _, ca := range ch.Arrays() {
			if ca == a {
				return ch.LineCaptureSafe(entry)
			}
		}
	}
	for _, t := range []*cache.TLB{c.dtlb, c.itlb} {
		for _, ta := range t.Arrays() {
			if ta == a {
				return !t.EntryValid(entry)
			}
		}
	}
	return true
}

// residencySafe reports whether every armed fault is capture-safe.
func (c *CPU) residencySafe() bool {
	for _, a := range c.watch {
		for _, f := range a.Faults() {
			if !c.faultCaptureSafe(a, f.Entry) {
				return false
			}
		}
	}
	return true
}

// RunWindow runs the cycle-accurate detail window: like Run, but once
// the fault machinery can no longer change any cell
// (bitarray.FaultsApplied: every flip applied, no stuck-at window still
// forcing), postMargin further cycles have elapsed, and no residual
// corruption can still serve from a cache or TLB, fetch stops, the
// pipeline drains, and the method returns exited=true — the caller
// continues the run on the functional tier from CaptureArch state. A
// live unread transient in a pipeline structure does not hold the
// window open: on a drained machine its corruption is ordinary stored
// state that the architectural capture carries over exactly. Any
// terminal outcome inside the window (completion, crash, early-masked
// stop, deadlock, cycle limit) returns exited=false with the final
// result, exactly as Run would.
func (c *CPU) RunWindow(limitCycles, postMargin uint64) (res core.RunResult, exited bool) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(core.AssertError); ok {
				res = c.snapshotResult(core.RunAssert)
				res.AssertMsg = ae.Msg
				exited = false
				return
			}
			res = c.snapshotResult(core.RunSimCrash)
			res.AssertMsg = fmt.Sprint(r)
			exited = false
		}
	}()

	const deadlockWindow = 100_000
	applied, closing := false, false
	var appliedCycle uint64
	for c.cycle < limitCycles {
		allApplied := true
		for _, a := range c.watch {
			st := a.Tick(c.cycle)
			if c.earlyStop && (st == bitarray.StatusOverwritten || st == bitarray.StatusSkippedInvalid) {
				return c.snapshotResult(core.RunEarlyMasked), false
			}
			if !applied && !a.FaultsApplied() {
				allApplied = false
			}
		}
		if !applied && allApplied && len(c.watch) > 0 {
			applied, appliedCycle = true, c.cycle
		}
		if applied && !closing && c.cycle >= appliedCycle+postMargin && c.residencySafe() {
			closing = true
		}
		c.commit()
		if c.finished {
			return c.result, false
		}
		c.complete()
		c.issue()
		c.rename()
		if closing {
			if c.drained() {
				c.cycle++
				c.stats.Cycles = c.cycle
				return core.RunResult{}, true
			}
		} else {
			c.fetch()
		}
		c.cycle++
		c.stats.Cycles = c.cycle
		if c.cycle-c.lastCommit > deadlockWindow {
			r := c.snapshotResult(core.RunCycleLimit)
			r.CommitStalled = true
			return r, false
		}
	}
	r := c.snapshotResult(core.RunCycleLimit)
	r.CommitStalled = c.cycle-c.lastCommit > deadlockWindow
	return r, false
}
