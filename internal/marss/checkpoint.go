package marss

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/pipeline"
)

// Checkpoint is a complete drained-machine state: memory, kernel, every
// storage array, all front-end predictor state and the architectural
// register mapping. The paper's injectors use simulator checkpoints to
// share the common prefix of injection runs; campaigns restore one
// checkpoint into many fresh machines and inject only faults whose start
// cycle lies beyond it.
type Checkpoint struct {
	PC         uint64
	Cycle      uint64
	LastCommit uint64
	// Mem is a dirty-page/copy-on-write RAM image: checkpoints taken in
	// sequence on one machine (a checkpoint ladder) share every page the
	// run left untouched, so each capture after the first costs only the
	// pages dirtied since the previous one, and restores skip all-zero
	// pages entirely.
	Mem   *mem.PagedSnapshot
	Kern  kernel.Kernel
	Stats Stats

	L1I, L1D, L2   *cache.State
	DTLB, ITLB     *cache.TLBState
	BTBDir, BTBInd *branch.BTBState
	Tour           *branch.TournamentState
	RAS            *branch.RASState
	IntRF, FPRF    *pipeline.RegFileState
}

// drained reports whether no speculative state is in flight.
func (c *CPU) drained() bool {
	return c.rob.Empty() && len(c.fetchQ) == 0 && len(c.inflight) == 0 &&
		c.iq.Len() == 0 && c.lsq.Loads()+c.lsq.Stores() == 0
}

// RunTo simulates fault-free until the machine drains at or beyond the
// target cycle. It returns the cycle reached and whether the program
// finished before the target was reached (in which case no checkpoint
// can be taken).
func (c *CPU) RunTo(target uint64) (reached uint64, finished bool, err error) {
	limit := target*4 + 1_000_000
	for c.cycle < limit {
		c.commit()
		if c.finished {
			return c.cycle, true, nil
		}
		c.complete()
		c.issue()
		c.rename()
		if c.cycle < target {
			c.fetch()
		} else if c.drained() {
			c.cycle++
			c.stats.Cycles = c.cycle
			return c.cycle, false, nil
		}
		c.cycle++
		c.stats.Cycles = c.cycle
	}
	return c.cycle, false, fmt.Errorf("marss: machine did not drain by cycle %d", limit)
}

// Checkpoint captures the drained machine. It returns an error when
// speculative state is still in flight.
func (c *CPU) Checkpoint() (any, error) {
	if !c.drained() {
		return nil, fmt.Errorf("marss: checkpoint requires a drained machine")
	}
	return &Checkpoint{
		PC:         c.pc,
		Cycle:      c.cycle,
		LastCommit: c.lastCommit,
		Mem:        c.mem.SnapshotPaged(),
		Kern:       c.kern.Clone(),
		Stats:      c.stats,
		L1I:        c.l1i.State(),
		L1D:        c.l1d.State(),
		L2:         c.l2.State(),
		DTLB:       c.dtlb.State(),
		ITLB:       c.itlb.State(),
		BTBDir:     c.btbDir.State(),
		BTBInd:     c.btbInd.State(),
		Tour:       c.tour.State(),
		RAS:        c.ras.State(),
		IntRF:      c.intRF.State(),
		FPRF:       c.fpRF.State(),
	}, nil
}

// Restore loads a checkpoint into this (freshly built) machine. The
// checkpoint is copied, so one checkpoint may seed many machines
// concurrently.
func (c *CPU) Restore(state any) error {
	cp, ok := state.(*Checkpoint)
	if !ok {
		return fmt.Errorf("marss: foreign checkpoint type %T", state)
	}
	c.mem.RestorePaged(cp.Mem)
	c.kern = cp.Kern.Clone()
	c.stats = cp.Stats
	c.l1i.SetState(cp.L1I)
	c.l1d.SetState(cp.L1D)
	c.l2.SetState(cp.L2)
	c.dtlb.SetState(cp.DTLB)
	c.itlb.SetState(cp.ITLB)
	c.btbDir.SetState(cp.BTBDir)
	c.btbInd.SetState(cp.BTBInd)
	c.tour.SetState(cp.Tour)
	c.ras.SetState(cp.RAS)
	c.intRF.SetState(cp.IntRF)
	c.fpRF.SetState(cp.FPRF)
	c.pc = cp.PC
	c.cycle = cp.Cycle
	c.lastCommit = cp.LastCommit
	c.rob.FlushAll()
	c.iq.FlushAll()
	c.lsq.FlushAll()
	c.fetchQ = c.fetchQ[:0]
	c.inflight = c.inflight[:0]
	c.fetchBlocked = false
	c.fetchReady = c.cycle
	c.finished = false
	return nil
}
