package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitarray"
)

// This file holds the two profile-driven mask generators of the adaptive
// campaign plane: the exhaustive enumerator, which collapses the full
// {entry, bit, cycle} fault population into one representative mask per
// liveness equivalence class, and the importance sampler, which draws
// masks preferentially from the live portion of the population while
// carrying the Horvitz–Thompson weights that keep the class-proportion
// estimators unbiased. Both live in their own functions — Generate's
// random stream must stay byte-identical for existing campaigns.

// DefaultImportanceBoost is how much more likely a live fault site is to
// be drawn than a dead one under importance sampling, per unit of cycle
// mass. The exact value only trades variance between strata — the
// Horvitz–Thompson weights keep the estimate unbiased at any boost.
const DefaultImportanceBoost = 4.0

// liveInterval is one liveness equivalence class of a single (entry, bit)
// fault site: every injection cycle in [lo, hi] meets the same next
// covering access, so every fault in the interval provably shares a
// verdict trajectory.
type liveInterval struct {
	entry, bit int
	lo, hi     uint64 // inclusive cycle bounds
	live       bool   // next covering access is a read
}

// mass returns the interval's cycle count — its share of the uniform
// fault population.
func (iv liveInterval) mass() uint64 { return iv.hi - iv.lo + 1 }

// intervals walks the profile and enumerates the liveness intervals of
// every (entry, bit) site over injection cycles [1, MaxCycle], in
// deterministic entry-major, bit-minor, cycle-ascending order. The
// interval masses of one site sum to MaxCycle, so the total mass is
// exactly the uniform population Entries×BitsPerEntry×MaxCycle.
func intervals(spec GeneratorSpec, profile *bitarray.Profile) ([]liveInterval, error) {
	if spec.Entries <= 0 || spec.BitsPerEntry <= 0 {
		return nil, fmt.Errorf("fault: generator spec for %q has bad geometry %d×%d",
			spec.Structure, spec.Entries, spec.BitsPerEntry)
	}
	if spec.MaxCycle == 0 {
		return nil, fmt.Errorf("fault: generator spec for %q has zero max cycle", spec.Structure)
	}
	if profile == nil {
		return nil, fmt.Errorf("fault: no liveness profile for %q", spec.Structure)
	}
	var out []liveInterval
	for e := 0; e < spec.Entries; e++ {
		for b := 0; b < spec.BitsPerEntry; b++ {
			lo := uint64(1)
			for lo <= spec.MaxCycle {
				_, ev, ok := profile.NextCovering(e, b, lo)
				hi := spec.MaxCycle
				live := false
				if ok {
					if ev.Cycle < hi {
						hi = ev.Cycle
					}
					live = ev.Kind == bitarray.AccessRead
				}
				out = append(out, liveInterval{entry: e, bit: b, lo: lo, hi: hi, live: live})
				lo = hi + 1
			}
		}
	}
	return out, nil
}

// EnumerateExhaustive produces the equivalence-class-collapsed census of
// the whole single-bit transient fault population of one structure: one
// representative mask per liveness interval, injected at the interval's
// first cycle and weighted by the interval's cycle mass. Simulating the
// representatives (the liveness pruner settles the dead ones without
// simulation) decides every fault in the population, so a campaign over
// these masks is complete — a zero-margin census, not a sample. The
// weights sum to Entries×BitsPerEntry×MaxCycle, the uniform population
// size. Count and Seed of the spec are ignored; the enumeration is a
// pure function of geometry and profile.
func EnumerateExhaustive(spec GeneratorSpec, profile *bitarray.Profile) ([]Mask, error) {
	if spec.Model != "" && spec.Model != ModelTransient {
		return nil, fmt.Errorf("fault: exhaustive enumeration covers transient faults only, not %q", spec.Model)
	}
	if spec.SitesPerMask > 1 {
		return nil, fmt.Errorf("fault: exhaustive enumeration covers single-site masks only")
	}
	ivs, err := intervals(spec, profile)
	if err != nil {
		return nil, err
	}
	masks := make([]Mask, 0, len(ivs))
	for _, iv := range ivs {
		masks = append(masks, Mask{
			ID: len(masks),
			Sites: []Site{{
				Structure: spec.Structure,
				Entry:     iv.entry,
				Bit:       iv.bit,
				Model:     ModelTransient,
				Cycle:     iv.lo,
			}},
			Weight: float64(iv.mass()),
		})
	}
	return masks, nil
}

// GenerateImportance draws Count single-bit transient masks with the
// live portion of the fault population oversampled by boost (per unit of
// cycle mass) — golden-run liveness as an importance distribution. Each
// mask carries the Horvitz–Thompson weight w = P_uniform / P_drawn of
// its stratum, so the self-normalized estimate Σ_class w / Σ w of any
// class proportion is consistent for the uniform-sampling estimand: the
// oversampling buys variance reduction on the live (non-masked-prone)
// classes without biasing the Masked estimate. Deterministic for a given
// spec and profile; Generate's random stream is untouched.
func GenerateImportance(spec GeneratorSpec, profile *bitarray.Profile, boost float64) ([]Mask, error) {
	if spec.Model != "" && spec.Model != ModelTransient {
		return nil, fmt.Errorf("fault: importance sampling covers transient faults only, not %q", spec.Model)
	}
	if spec.SitesPerMask > 1 {
		return nil, fmt.Errorf("fault: importance sampling covers single-site masks only")
	}
	if spec.Count <= 0 {
		return nil, fmt.Errorf("fault: generator spec for %q has non-positive count %d", spec.Structure, spec.Count)
	}
	if boost <= 0 {
		boost = DefaultImportanceBoost
	}
	ivs, err := intervals(spec, profile)
	if err != nil {
		return nil, err
	}
	// Split the population into the live and dead strata, each a list of
	// intervals with a cumulative-mass index for O(log n) positional
	// draws.
	var live, dead []liveInterval
	var liveCum, deadCum []uint64
	var liveMass, deadMass uint64
	for _, iv := range ivs {
		if iv.live {
			liveMass += iv.mass()
			live = append(live, iv)
			liveCum = append(liveCum, liveMass)
		} else {
			deadMass += iv.mass()
			dead = append(dead, iv)
			deadCum = append(deadCum, deadMass)
		}
	}
	total := liveMass + deadMass
	// The live-stratum draw probability: boosted share of the total mass.
	// Degenerate strata collapse to plain uniform sampling of the other.
	beta := 0.0
	if liveMass > 0 {
		if deadMass == 0 {
			beta = 1
		} else {
			beta = boost * float64(liveMass) / (boost*float64(liveMass) + float64(deadMass))
		}
	}
	// draw picks the cycle at global stratum offset off.
	draw := func(ivs []liveInterval, cum []uint64, off uint64) Site {
		i := sort.Search(len(cum), func(j int) bool { return cum[j] > off })
		iv := ivs[i]
		before := cum[i] - iv.mass()
		return Site{
			Structure: spec.Structure,
			Entry:     iv.entry,
			Bit:       iv.bit,
			Model:     ModelTransient,
			Cycle:     iv.lo + (off - before),
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	masks := make([]Mask, spec.Count)
	for i := range masks {
		var s Site
		var w float64
		if rng.Float64() < beta {
			s = draw(live, liveCum, uint64(rng.Int63n(int64(liveMass)))) //nolint:gosec // masses fit int64
			w = float64(liveMass) / (beta * float64(total))
		} else {
			s = draw(dead, deadCum, uint64(rng.Int63n(int64(deadMass)))) //nolint:gosec // masses fit int64
			w = float64(deadMass) / ((1 - beta) * float64(total))
		}
		masks[i] = Mask{ID: i, Sites: []Site{s}, Weight: w}
	}
	return masks, nil
}
