package fault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalEntry(campaign string, mask int) JournalEntry {
	return JournalEntry{
		Campaign: campaign,
		MaskID:   mask,
		Record:   json.RawMessage(`{"mask_id":` + jsonInt(mask) + `,"status":"completed"}`),
		Observed: mask%2 == 0,
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestJournalRoundTrip appends across two opens and checks the resume
// set reflects exactly what was acknowledged before each reopen.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Entries(); len(got) != 0 {
		t.Fatalf("fresh journal has %d entries", len(got))
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(journalEntry("k", i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appended() != 3 {
		t.Fatalf("appended = %d, want 3", j.Appended())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry("k", 9)); err == nil {
		t.Fatal("append on closed journal succeeded")
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	past := j2.Entries()
	if len(past) != 3 {
		t.Fatalf("reopened journal has %d entries, want 3", len(past))
	}
	for i, e := range past {
		if e.Campaign != "k" || e.MaskID != i || e.Observed != (i%2 == 0) {
			t.Fatalf("entry %d round-tripped wrong: %+v", i, e)
		}
		var rec struct {
			MaskID int    `json:"mask_id"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(e.Record, &rec); err != nil || rec.MaskID != i || rec.Status != "completed" {
			t.Fatalf("entry %d record payload: %s (%v)", i, e.Record, err)
		}
	}
	if err := j2.Append(journalEntry("k", 3)); err != nil {
		t.Fatal(err)
	}
	all, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 || all[3].MaskID != 3 {
		t.Fatalf("after reopen+append: %d entries (%+v)", len(all), all)
	}
}

// TestJournalTornTailRecovered simulates the crash case: a journal whose
// last line was cut mid-write must reopen to the valid prefix, and the
// next append must land on a clean line boundary.
func TestJournalTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(journalEntry("k", i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the file: half an entry, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"campaign":"k","mask_id":2,"rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Entries(); len(got) != 2 {
		t.Fatalf("torn journal reopened with %d entries, want 2", len(got))
	}
	if err := j2.Append(journalEntry("k", 2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("recovered journal has %d lines: %q", len(lines), data)
	}
	for i, line := range lines {
		var e JournalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d does not parse after torn-tail recovery: %q (%v)", i, line, err)
		}
		if e.MaskID != i {
			t.Fatalf("line %d is mask %d", i, e.MaskID)
		}
	}
}

// TestJournalMissingFile: reading a journal that never existed is an
// empty resume set, not an error.
func TestJournalMissingFile(t *testing.T) {
	entries, err := ReadJournalFile(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if entries != nil {
		t.Fatalf("missing journal read as %+v", entries)
	}
}

// TestReadJournalReader covers the io.Reader form used by smokecheck.
func TestReadJournalReader(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 2; i++ {
		b, _ := json.Marshal(journalEntry("c", i))
		sb.Write(b)
		sb.WriteByte('\n')
	}
	sb.WriteString(`{"torn`)
	entries, err := ReadJournal(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Campaign != "c" {
		t.Fatalf("entries: %+v", entries)
	}
}

// Appends stamp the current schema version, unversioned lines (the PR
// 2–4 format) load as version 0, and a line from a newer build fails the
// open — unlike a torn tail it must not be truncated away.
func TestJournalSchemaVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry("k", 0)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema_version":1`) {
		t.Fatalf("appended line carries no schema version: %s", data)
	}

	// An unversioned (legacy) line parses as version 0 next to a stamped one.
	legacy := `{"campaign":"k","mask_id":1,"record":{"mask_id":1,"status":"completed"}}` + "\n"
	if err := os.WriteFile(path, append(data, legacy...), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Plain entries are stamped with the lowest version that expresses
	// them (1), so journals without adaptive control stay byte-identical
	// to older builds; only stopped-early rows carry version 2.
	if len(entries) != 2 || entries[0].SchemaVersion != 1 || entries[1].SchemaVersion != 0 {
		t.Fatalf("mixed-version journal misread: %+v", entries)
	}

	// A future-versioned line is a hard error on every read path.
	future := `{"schema_version":99,"campaign":"k","mask_id":2,"record":{}}` + "\n"
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournalFile(path); err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("ReadJournalFile accepted a future version: %v", err)
	}
	if _, err := ReadJournal(strings.NewReader(future)); err == nil {
		t.Fatal("ReadJournal accepted a future version")
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("OpenJournal accepted (and would truncate) a future-versioned journal")
	}
}

// BenchmarkJournalAppend measures the fsync'd per-run journal cost — the
// durability overhead quoted in EXPERIMENTS.md.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := OpenJournal(filepath.Join(b.TempDir(), "bench.journal.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	e := journalEntry("bench", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MaskID = i
		if err := j.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}
