// Package fault defines the fault models of the differential injection
// framework (Table III of the paper), the fault masks consumed by
// injection campaigns, the fault mask generator, and the statistical
// fault sampling of Leveugle et al. (DATE 2009) used to size campaigns.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitarray"
)

// Model selects a fault model. It mirrors bitarray.FaultKind but is the
// serialized, user-facing form used in mask repositories.
type Model string

const (
	// ModelTransient is a single bit flip at a clock cycle.
	ModelTransient Model = "transient"
	// ModelIntermittent forces a bit to a value for a window of cycles.
	ModelIntermittent Model = "intermittent"
	// ModelPermanent forces a bit to a value for the whole run.
	ModelPermanent Model = "permanent"
)

// Kind converts the model to its bitarray representation.
func (m Model) Kind() (bitarray.FaultKind, error) {
	switch m {
	case ModelTransient:
		return bitarray.Transient, nil
	case ModelIntermittent:
		return bitarray.Intermittent, nil
	case ModelPermanent:
		return bitarray.Permanent, nil
	default:
		return 0, fmt.Errorf("fault: unknown model %q", string(m))
	}
}

// Site pins one single-bit fault to a location and time. A Mask carries
// one or more Sites (multi-bit / multi-structure injections carry several).
type Site struct {
	// Core is the processor core targeted; the simulators in this
	// repository are single-core, so Core is 0 in practice, but the
	// mask format carries it as the paper's masks do.
	Core int `json:"core"`
	// Structure names the microarchitectural structure, e.g. "l1d.data".
	Structure string `json:"structure"`
	// Entry and Bit locate the fault inside the structure.
	Entry int `json:"entry"`
	Bit   int `json:"bit"`
	// Model is the fault type.
	Model Model `json:"model"`
	// Cycle is the injection clock cycle.
	Cycle uint64 `json:"cycle"`
	// Duration is the active window in cycles (intermittent only).
	Duration uint64 `json:"duration,omitempty"`
	// StuckVal is the forced value (intermittent/permanent only).
	StuckVal uint8 `json:"stuck_val,omitempty"`
}

// Fault converts the site to the bitarray fault it arms.
func (s Site) Fault() (bitarray.Fault, error) {
	k, err := s.Model.Kind()
	if err != nil {
		return bitarray.Fault{}, err
	}
	return bitarray.Fault{
		Kind:     k,
		Entry:    s.Entry,
		Bit:      s.Bit,
		StuckVal: s.StuckVal,
		Start:    s.Cycle,
		Duration: s.Duration,
	}, nil
}

// Mask is one experiment of an injection campaign: the set of faults to
// arm before a single simulation run. The common single-bit study uses
// exactly one site per mask.
type Mask struct {
	// ID is the experiment index within the campaign, for log matching.
	ID    int    `json:"id"`
	Sites []Site `json:"sites"`
	// Weight is the Horvitz–Thompson sampling weight of the mask: the
	// ratio of its uniform draw probability to the probability the
	// generator actually drew it with. Uniformly generated masks leave
	// it zero (read as 1); importance-sampled and exhaustive masks carry
	// the weight the estimators need to stay unbiased.
	Weight float64 `json:"weight,omitempty"`
}

// Validate checks the mask against a structure geometry lookup. The
// lookup returns (entries, bitsPerEntry, true) for known structures.
func (m Mask) Validate(geom func(structure string) (entries, bits int, ok bool)) error {
	if len(m.Sites) == 0 {
		return fmt.Errorf("fault: mask %d has no sites", m.ID)
	}
	return m.ValidateSites(geom)
}

// ValidateSites checks every site of the mask against a structure
// geometry lookup. Unlike Validate it accepts an empty mask: the
// campaign scheduler treats a mask with no sites as a fault-free run
// booted from scratch, so only the sites that exist need to be sound.
func (m Mask) ValidateSites(geom func(structure string) (entries, bits int, ok bool)) error {
	for i, s := range m.Sites {
		entries, bits, ok := geom(s.Structure)
		if !ok {
			return fmt.Errorf("fault: mask %d site %d: unknown structure %q", m.ID, i, s.Structure)
		}
		if s.Entry < 0 || s.Entry >= entries {
			return fmt.Errorf("fault: mask %d site %d: entry %d out of range [0,%d)", m.ID, i, s.Entry, entries)
		}
		if s.Bit < 0 || s.Bit >= bits {
			return fmt.Errorf("fault: mask %d site %d: bit %d out of range [0,%d)", m.ID, i, s.Bit, bits)
		}
		if _, err := s.Model.Kind(); err != nil {
			return fmt.Errorf("fault: mask %d site %d: %v", m.ID, i, err)
		}
		if s.Model == ModelIntermittent && s.Duration == 0 {
			return fmt.Errorf("fault: mask %d site %d: intermittent fault with zero duration", m.ID, i)
		}
		if s.StuckVal > 1 {
			return fmt.Errorf("fault: mask %d site %d: stuck value %d not a bit", m.ID, i, s.StuckVal)
		}
	}
	return nil
}

// GeneratorSpec parameterizes the fault mask generator for one campaign:
// one combination of hardware structure and benchmark, as in §III.B of
// the paper.
type GeneratorSpec struct {
	// Structure is the target structure name.
	Structure string
	// Entries and BitsPerEntry give the structure geometry.
	Entries, BitsPerEntry int
	// MaxCycle bounds the random injection cycle; it is the fault-free
	// execution length of the benchmark on the target simulator.
	MaxCycle uint64
	// Model selects the fault model for all generated masks.
	Model Model
	// Count is the number of masks (injection runs) to generate.
	Count int
	// Seed makes generation reproducible.
	Seed int64

	// SitesPerMask > 1 generates multi-bit faults within the structure
	// (combination (a)/(i,ii) of §III.A). Zero means 1.
	SitesPerMask int
	// Adjacent makes multi-bit masks physically clustered: all sites of
	// a mask land in the same entry on consecutive bit positions, the
	// spatial multi-bit-upset pattern of real particle strikes (burst
	// MBUs), rather than independently placed bits.
	Adjacent bool
	// Duration bounds the random duration for intermittent faults; the
	// generated duration is uniform in [1, Duration].
	Duration uint64
}

// Generate produces Count masks with uniformly random entry, bit and
// cycle, the one-step mask-generation process of the paper. The result is
// deterministic for a given spec.
func Generate(spec GeneratorSpec) ([]Mask, error) {
	if spec.Entries <= 0 || spec.BitsPerEntry <= 0 {
		return nil, fmt.Errorf("fault: generator spec for %q has bad geometry %d×%d",
			spec.Structure, spec.Entries, spec.BitsPerEntry)
	}
	if spec.Count <= 0 {
		return nil, fmt.Errorf("fault: generator spec for %q has non-positive count %d", spec.Structure, spec.Count)
	}
	if spec.MaxCycle == 0 {
		return nil, fmt.Errorf("fault: generator spec for %q has zero max cycle", spec.Structure)
	}
	sites := spec.SitesPerMask
	if sites <= 0 {
		sites = 1
	}
	if spec.Adjacent && sites > spec.BitsPerEntry {
		return nil, fmt.Errorf("fault: %d adjacent sites do not fit a %d-bit entry", sites, spec.BitsPerEntry)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	masks := make([]Mask, spec.Count)
	for i := range masks {
		m := Mask{ID: i, Sites: make([]Site, sites)}
		// Adjacent (burst) masks share one entry, one cycle and a run
		// of consecutive bits.
		burstEntry := rng.Intn(spec.Entries)
		burstBit := rng.Intn(spec.BitsPerEntry - sites + 1)
		burstCycle := uint64(rng.Int63n(int64(spec.MaxCycle))) + 1
		for j := range m.Sites {
			s := Site{
				Structure: spec.Structure,
				Entry:     rng.Intn(spec.Entries),
				Bit:       rng.Intn(spec.BitsPerEntry),
				Model:     spec.Model,
				Cycle:     uint64(rng.Int63n(int64(spec.MaxCycle))) + 1,
			}
			if spec.Adjacent {
				s.Entry = burstEntry
				s.Bit = burstBit + j
				s.Cycle = burstCycle
			}
			switch spec.Model {
			case ModelIntermittent:
				d := spec.Duration
				if d == 0 {
					d = spec.MaxCycle / 10
					if d == 0 {
						d = 1
					}
				}
				s.Duration = uint64(rng.Int63n(int64(d))) + 1
				s.StuckVal = uint8(rng.Intn(2))
			case ModelPermanent:
				s.StuckVal = uint8(rng.Intn(2))
				s.Cycle = 0 // permanent faults are present from power-on
			}
			m.Sites[j] = s
		}
		masks[i] = m
	}
	return masks, nil
}

// MultiStructure merges per-structure mask lists into masks that inject
// into several structures simultaneously (combination (b)/(iii) of
// §III.A). All lists must have equal length; mask i of the result carries
// site i of every list.
func MultiStructure(lists ...[]Mask) ([]Mask, error) {
	if len(lists) == 0 {
		return nil, fmt.Errorf("fault: MultiStructure needs at least one list")
	}
	n := len(lists[0])
	for _, l := range lists[1:] {
		if len(l) != n {
			return nil, fmt.Errorf("fault: MultiStructure lists have unequal lengths %d and %d", n, len(l))
		}
	}
	out := make([]Mask, n)
	for i := 0; i < n; i++ {
		m := Mask{ID: i}
		for _, l := range lists {
			m.Sites = append(m.Sites, l[i].Sites...)
		}
		out[i] = m
	}
	return out, nil
}

// ---- Statistical fault sampling (Leveugle et al., DATE 2009) ---------------

// ZFor returns the two-sided normal quantile for the given confidence
// level, or an error when the level lies outside the open interval
// (0, 1) — the domain on which a quantile exists. Configuration
// validation goes through this entry point so a bad stop_confidence is
// reported as such instead of silently producing a garbage z-score.
func ZFor(confidence float64) (float64, error) {
	if math.IsNaN(confidence) || confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("fault: confidence %v outside (0, 1)", confidence)
	}
	return zFor(confidence), nil
}

// maxZ is the two-sided quantile at the largest confidence level
// distinguishable from 1 in double precision — the finite ceiling the
// sampling arithmetic clamps to instead of overflowing to +Inf.
const maxZ = 8.29

// zFor returns the two-sided normal quantile for the given confidence
// level. The three levels used in practice are tabulated exactly; other
// levels go through the inverse error function. Out-of-domain levels
// clamp to the nearest representable quantile (0 below, maxZ above) so
// the sampling formulas stay finite; callers that want a diagnosis use
// ZFor.
func zFor(confidence float64) float64 {
	switch confidence {
	case 0.90:
		return 1.6448536269514722
	case 0.95:
		return 1.959963984540054
	case 0.99:
		return 2.5758293035489004
	}
	if math.IsNaN(confidence) || confidence <= 0 {
		return 0
	}
	if confidence >= 1 {
		return maxZ
	}
	// The two-sided quantile at confidence c satisfies erf(z/√2) = c.
	return math.Sqrt2 * math.Erfinv(confidence)
}

// SampleSize returns the number of fault injection runs required for a
// statistical campaign over a population of populationBits fault sites
// (structure bits × considered cycles, or just structure bits when the
// cycle is part of the uniform draw), at the given confidence (e.g. 0.99)
// and error margin (e.g. 0.03), assuming the worst-case p = 0.5:
//
//	n = N / (1 + e²·(N−1) / (z²·p·(1−p)))
//
// With N → ∞ this converges to the familiar z²·p(1−p)/e², which gives the
// paper's 1843 runs at 99%/3% and 663 runs at 99%/5%.
func SampleSize(populationBits uint64, confidence, margin float64) int {
	// Rounded to nearest, which is how the paper reports 1843 (from
	// 1843.03) and 663 (from 663.49).
	z := zFor(confidence)
	p := 0.5
	if math.IsNaN(margin) || margin <= 0 {
		// Only a census achieves a zero margin; an unbounded population
		// cannot be censused, so report the largest representable size.
		if populationBits == 0 || populationBits > math.MaxInt {
			return math.MaxInt
		}
		return int(populationBits)
	}
	num := z * z * p * (1 - p) / (margin * margin)
	if populationBits == 0 {
		return int(math.Round(num))
	}
	nf := float64(populationBits)
	n := nf / (1 + (margin*margin*(nf-1))/(z*z*p*(1-p)))
	// The finite-population formula approaches N from below but rounding
	// (or a degenerate z) can step past it; a sample can never exceed a
	// census.
	if r := int(math.Round(n)); r >= 0 && uint64(r) < populationBits {
		return r
	}
	if populationBits > math.MaxInt {
		return math.MaxInt
	}
	return int(populationBits)
}

// MarginFor returns the error margin achieved by n injection runs over a
// population of populationBits sites at the given confidence; the inverse
// of SampleSize. The paper notes that 2000 injections correspond to a
// 2.88% margin at 99% confidence.
func MarginFor(populationBits uint64, n int, confidence float64) float64 {
	z := zFor(confidence)
	p := 0.5
	if n <= 0 {
		// Nothing sampled: the proportion is unconstrained.
		return 1
	}
	if populationBits == 0 {
		return z * math.Sqrt(p*(1-p)/float64(n))
	}
	if populationBits == 1 {
		// A one-site population is decided by its single run — zero
		// sampling error — and the N−1 divisor below would be zero.
		return 0
	}
	nf := float64(populationBits)
	if float64(n) >= nf {
		return 0 // census or better
	}
	// Solve n = N / (1 + e²(N−1)/(z²p(1−p))) for e.
	e2 := (nf/float64(n) - 1) * z * z * p * (1 - p) / (nf - 1)
	if e2 < 0 {
		return 0
	}
	return math.Sqrt(e2)
}
