package fault

import (
	"bufio"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestRepositoryStoreReopen(t *testing.T) {
	dir := t.TempDir()
	repo, err := NewRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := CampaignKey("toolA", "bench", "rf.int")
	masks := []Mask{
		{ID: 0, Sites: []Site{{Structure: "rf.int", Entry: 1, Bit: 2}}},
		{ID: 1, Sites: []Site{{Structure: "rf.int", Entry: 3, Bit: 4}}, Weight: 2.5},
	}
	if err := repo.Store(key, masks); err != nil {
		t.Fatal(err)
	}

	// Overwrite with different content, then reopen the repository from
	// scratch: the replacement must be complete, not a truncated mix.
	masks2 := []Mask{{ID: 0, Sites: []Site{{Structure: "rf.int", Entry: 7, Bit: 0}}}}
	if err := repo.Store(key, masks2); err != nil {
		t.Fatal(err)
	}
	repo2, err := NewRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo2.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, masks2) {
		t.Fatalf("reopened masks = %+v, want %+v", got, masks2)
	}

	// The atomic temp file must not survive a successful Store.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}

	keys, err := repo2.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("campaigns = %v, want [%s]", keys, key)
	}
}

func TestAtomicWriteFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := os.ErrInvalid
	if err := AtomicWrite(path, func(*bufio.Writer) error { return wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "old" {
		t.Fatalf("old content clobbered: %q", b)
	}
}
