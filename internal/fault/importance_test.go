package fault

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bitarray"
)

// testProfile builds a 2×2 profile over 100 cycles with a known liveness
// structure:
//
//	entry 0, bits 0-1: write at 10, read at 40  → intervals
//	  [1,10] dead (write), [11,40] live (read), [41,100] dead (no access)
//	entry 1, bit 0:    read at 25              → [1,25] live, [26,100] dead
//	entry 1, bit 1:    no access               → [1,100] dead
func testProfile() *bitarray.Profile {
	return &bitarray.Profile{
		Name: "rob", Entries: 2, BitsPerEntry: 2,
		Events: [][]bitarray.ProfileEvent{
			{
				{Cycle: 10, FirstBit: 0, NBits: 2, Kind: bitarray.AccessWrite},
				{Cycle: 40, FirstBit: 0, NBits: 2, Kind: bitarray.AccessRead},
			},
			{
				{Cycle: 25, FirstBit: 0, NBits: 1, Kind: bitarray.AccessRead},
			},
		},
	}
}

func testGenSpec(count int) GeneratorSpec {
	return GeneratorSpec{
		Structure: "rob", Entries: 2, BitsPerEntry: 2,
		MaxCycle: 100, Model: ModelTransient,
		Count: count, Seed: 7,
	}
}

// The census enumerates exactly the liveness intervals of the profile,
// one representative per interval at the interval's first cycle, and the
// weights partition the uniform population Entries×Bits×MaxCycle.
func TestEnumerateExhaustiveCensus(t *testing.T) {
	masks, err := EnumerateExhaustive(testGenSpec(0), testProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Per site: entry 0 bits 0,1 have 3 intervals each; entry 1 bit 0 has
	// 2; entry 1 bit 1 has 1. Nine equivalence classes total.
	if len(masks) != 9 {
		t.Fatalf("census has %d classes, want 9", len(masks))
	}
	var sum float64
	for i, m := range masks {
		if m.ID != i {
			t.Fatalf("mask %d carries ID %d", i, m.ID)
		}
		if len(m.Sites) != 1 || m.Sites[0].Model != ModelTransient {
			t.Fatalf("mask %d is not a single-site transient: %+v", i, m)
		}
		if m.Weight <= 0 {
			t.Fatalf("mask %d has non-positive weight %v", i, m.Weight)
		}
		sum += m.Weight
	}
	if want := float64(2 * 2 * 100); sum != want {
		t.Fatalf("census weights sum to %v, want the uniform population %v", sum, want)
	}
	// Spot-check one known class: entry 1 bit 0, live interval [1,25].
	found := false
	for _, m := range masks {
		s := m.Sites[0]
		if s.Entry == 1 && s.Bit == 0 && s.Cycle == 1 {
			found = true
			if m.Weight != 25 {
				t.Fatalf("entry 1 bit 0 live class weighs %v, want 25", m.Weight)
			}
		}
	}
	if !found {
		t.Fatal("census misses the entry 1 bit 0 live class")
	}
}

func TestEnumerateExhaustiveRejectsNonCensusSpecs(t *testing.T) {
	spec := testGenSpec(0)
	spec.Model = ModelPermanent
	if _, err := EnumerateExhaustive(spec, testProfile()); err == nil {
		t.Fatal("permanent-model census accepted")
	}
	spec = testGenSpec(0)
	spec.SitesPerMask = 2
	if _, err := EnumerateExhaustive(spec, testProfile()); err == nil {
		t.Fatal("multi-site census accepted")
	}
	if _, err := EnumerateExhaustive(testGenSpec(0), nil); err == nil {
		t.Fatal("nil-profile census accepted")
	}
}

// Importance draws are deterministic in the seed, stay inside the
// population, and carry exactly the two stratum weights.
func TestGenerateImportanceWeights(t *testing.T) {
	const n = 2000
	masks, err := GenerateImportance(testGenSpec(n), testProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(masks) != n {
		t.Fatalf("%d masks, want %d", len(masks), n)
	}
	// Strata of testProfile: live mass 2×30 + 25 = 85, dead mass 315,
	// total 400.
	const liveMass, deadMass, total = 85.0, 315.0, 400.0
	beta := DefaultImportanceBoost * liveMass / (DefaultImportanceBoost*liveMass + deadMass)
	wLive := liveMass / (beta * total)
	wDead := deadMass / ((1 - beta) * total)
	var sum float64
	var liveDraws int
	for i, m := range masks {
		if m.ID != i || len(m.Sites) != 1 {
			t.Fatalf("mask %d malformed: %+v", i, m)
		}
		s := m.Sites[0]
		if s.Entry < 0 || s.Entry >= 2 || s.Bit < 0 || s.Bit >= 2 || s.Cycle < 1 || s.Cycle > 100 {
			t.Fatalf("mask %d outside the population: %+v", i, s)
		}
		switch {
		case math.Abs(m.Weight-wLive) < 1e-12:
			liveDraws++
		case math.Abs(m.Weight-wDead) < 1e-12:
		default:
			t.Fatalf("mask %d weight %v is neither stratum weight (%v live, %v dead)", i, m.Weight, wLive, wDead)
		}
		sum += m.Weight
	}
	// E[w] = 1 per draw (Horvitz–Thompson), so the mean weight must hover
	// near 1; and the live stratum must actually be oversampled relative
	// to its 85/400 share.
	if mean := sum / n; math.Abs(mean-1) > 0.1 {
		t.Fatalf("mean weight %v, want ≈ 1 (unbiased)", mean)
	}
	if share := float64(liveDraws) / n; share < liveMass/total {
		t.Fatalf("live share %v not oversampled beyond the uniform %v", share, liveMass/total)
	}

	again, err := GenerateImportance(testGenSpec(n), testProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(masks, again) {
		t.Fatal("importance draw not deterministic in the seed")
	}
}

// Degenerate strata collapse to uniform sampling of the other with unit
// weights — no NaN, no Inf.
func TestGenerateImportanceDegenerateStrata(t *testing.T) {
	dead := &bitarray.Profile{Name: "rob", Entries: 1, BitsPerEntry: 1, Events: [][]bitarray.ProfileEvent{{}}}
	spec := testGenSpec(50)
	spec.Entries, spec.BitsPerEntry = 1, 1
	masks, err := GenerateImportance(spec, dead, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range masks {
		if m.Weight != 1 {
			t.Fatalf("all-dead population draw weighs %v, want exactly 1", m.Weight)
		}
	}

	live := &bitarray.Profile{Name: "rob", Entries: 1, BitsPerEntry: 1, Events: [][]bitarray.ProfileEvent{
		{{Cycle: 100, FirstBit: 0, NBits: 1, Kind: bitarray.AccessRead}},
	}}
	masks, err = GenerateImportance(spec, live, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range masks {
		if m.Weight != 1 {
			t.Fatalf("all-live population draw weighs %v, want exactly 1", m.Weight)
		}
	}
}

func TestGenerateImportanceRejectsBadSpecs(t *testing.T) {
	spec := testGenSpec(10)
	spec.Model = ModelIntermittent
	if _, err := GenerateImportance(spec, testProfile(), 0); err == nil {
		t.Fatal("intermittent-model importance sampling accepted")
	}
	spec = testGenSpec(0)
	if _, err := GenerateImportance(spec, testProfile(), 0); err == nil {
		t.Fatal("zero-count importance sampling accepted")
	}
	spec = testGenSpec(10)
	if _, err := GenerateImportance(spec, nil, 0); err == nil {
		t.Fatal("nil-profile importance sampling accepted")
	}
}
