package fault

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/bitarray"
)

func TestModelKind(t *testing.T) {
	cases := []struct {
		m    Model
		want bitarray.FaultKind
	}{
		{ModelTransient, bitarray.Transient},
		{ModelIntermittent, bitarray.Intermittent},
		{ModelPermanent, bitarray.Permanent},
	}
	for _, c := range cases {
		k, err := c.m.Kind()
		if err != nil || k != c.want {
			t.Errorf("%q.Kind() = %v, %v", c.m, k, err)
		}
	}
	if _, err := Model("bogus").Kind(); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestSiteFault(t *testing.T) {
	s := Site{Structure: "l1d.data", Entry: 7, Bit: 100, Model: ModelIntermittent,
		Cycle: 55, Duration: 10, StuckVal: 1}
	f, err := s.Fault()
	if err != nil {
		t.Fatal(err)
	}
	want := bitarray.Fault{Kind: bitarray.Intermittent, Entry: 7, Bit: 100,
		StuckVal: 1, Start: 55, Duration: 10}
	if f != want {
		t.Fatalf("Fault() = %+v, want %+v", f, want)
	}
}

func geom(structure string) (int, int, bool) {
	if structure == "rf.int" {
		return 256, 64, true
	}
	return 0, 0, false
}

func TestMaskValidate(t *testing.T) {
	ok := Mask{ID: 1, Sites: []Site{{Structure: "rf.int", Entry: 10, Bit: 5, Model: ModelTransient, Cycle: 1}}}
	if err := ok.Validate(geom); err != nil {
		t.Fatalf("valid mask rejected: %v", err)
	}
	bad := []Mask{
		{ID: 2},
		{ID: 3, Sites: []Site{{Structure: "nope", Model: ModelTransient}}},
		{ID: 4, Sites: []Site{{Structure: "rf.int", Entry: 256, Model: ModelTransient}}},
		{ID: 5, Sites: []Site{{Structure: "rf.int", Bit: 64, Model: ModelTransient}}},
		{ID: 6, Sites: []Site{{Structure: "rf.int", Model: Model("x")}}},
		{ID: 7, Sites: []Site{{Structure: "rf.int", Model: ModelIntermittent, Duration: 0}}},
		{ID: 8, Sites: []Site{{Structure: "rf.int", Model: ModelTransient, StuckVal: 2}}},
	}
	for _, m := range bad {
		if err := m.Validate(geom); err == nil {
			t.Errorf("mask %d accepted, want error", m.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GeneratorSpec{Structure: "rf.int", Entries: 256, BitsPerEntry: 64,
		MaxCycle: 100000, Model: ModelTransient, Count: 50, Seed: 42}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].ID != i {
			t.Fatalf("mask %d has ID %d", i, a[i].ID)
		}
		if len(a[i].Sites) != 1 || a[i].Sites[0] != b[i].Sites[0] {
			t.Fatalf("generation not deterministic at mask %d", i)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	spec := GeneratorSpec{Structure: "s", Entries: 8, BitsPerEntry: 12,
		MaxCycle: 500, Model: ModelIntermittent, Count: 300, Seed: 7, Duration: 50}
	masks, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range masks {
		s := m.Sites[0]
		if s.Entry < 0 || s.Entry >= 8 || s.Bit < 0 || s.Bit >= 12 {
			t.Fatalf("site out of geometry: %+v", s)
		}
		if s.Cycle == 0 || s.Cycle > 500 {
			t.Fatalf("cycle out of range: %+v", s)
		}
		if s.Duration == 0 || s.Duration > 50 {
			t.Fatalf("duration out of range: %+v", s)
		}
		if s.StuckVal > 1 {
			t.Fatalf("stuck value out of range: %+v", s)
		}
	}
}

func TestGeneratePermanentStartsAtZero(t *testing.T) {
	masks, err := Generate(GeneratorSpec{Structure: "s", Entries: 4, BitsPerEntry: 4,
		MaxCycle: 100, Model: ModelPermanent, Count: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range masks {
		if m.Sites[0].Cycle != 0 {
			t.Fatalf("permanent fault with nonzero start: %+v", m.Sites[0])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []GeneratorSpec{
		{Structure: "s", Entries: 0, BitsPerEntry: 4, MaxCycle: 10, Count: 1},
		{Structure: "s", Entries: 4, BitsPerEntry: 0, MaxCycle: 10, Count: 1},
		{Structure: "s", Entries: 4, BitsPerEntry: 4, MaxCycle: 10, Count: 0},
		{Structure: "s", Entries: 4, BitsPerEntry: 4, MaxCycle: 0, Count: 1},
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestGenerateMultiBit(t *testing.T) {
	masks, err := Generate(GeneratorSpec{Structure: "s", Entries: 16, BitsPerEntry: 8,
		MaxCycle: 100, Model: ModelTransient, Count: 10, Seed: 3, SitesPerMask: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range masks {
		if len(m.Sites) != 3 {
			t.Fatalf("mask %d has %d sites, want 3", m.ID, len(m.Sites))
		}
	}
}

func TestMultiStructure(t *testing.T) {
	a, _ := Generate(GeneratorSpec{Structure: "a", Entries: 4, BitsPerEntry: 4,
		MaxCycle: 10, Model: ModelTransient, Count: 5, Seed: 1})
	b, _ := Generate(GeneratorSpec{Structure: "b", Entries: 4, BitsPerEntry: 4,
		MaxCycle: 10, Model: ModelTransient, Count: 5, Seed: 2})
	merged, err := MultiStructure(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 5 {
		t.Fatalf("len = %d", len(merged))
	}
	for _, m := range merged {
		if len(m.Sites) != 2 || m.Sites[0].Structure != "a" || m.Sites[1].Structure != "b" {
			t.Fatalf("bad merge: %+v", m)
		}
	}
	if _, err := MultiStructure(a, b[:3]); err == nil {
		t.Fatal("unequal lists accepted")
	}
	if _, err := MultiStructure(); err == nil {
		t.Fatal("empty call accepted")
	}
}

// TestSampleSizePaperNumbers pins the paper's §IV.A figures exactly.
func TestSampleSizePaperNumbers(t *testing.T) {
	if n := SampleSize(0, 0.99, 0.03); n != 1843 {
		t.Errorf("SampleSize(∞, 99%%, 3%%) = %d, want 1843", n)
	}
	if n := SampleSize(0, 0.99, 0.05); n != 663 {
		t.Errorf("SampleSize(∞, 99%%, 5%%) = %d, want 663", n)
	}
	// 2000 injections correspond to a 2.88% margin at 99% confidence.
	m := MarginFor(0, 2000, 0.99)
	if math.Abs(m-0.0288) > 0.0001 {
		t.Errorf("MarginFor(2000, 99%%) = %.4f, want ≈0.0288", m)
	}
}

func TestSampleSizeFinitePopulation(t *testing.T) {
	// For a small population the finite correction must bite:
	// n(N) < n(∞) and n(N) ≤ N.
	inf := SampleSize(0, 0.99, 0.03)
	for _, N := range []uint64{100, 1000, 10000, 1 << 20} {
		n := SampleSize(N, 0.99, 0.03)
		if n > inf {
			t.Errorf("SampleSize(%d) = %d > %d", N, n, inf)
		}
		if uint64(n) > N {
			t.Errorf("SampleSize(%d) = %d exceeds population", N, n)
		}
	}
	// Tiny population: essentially exhaustive.
	if n := SampleSize(10, 0.99, 0.03); n != 10 {
		t.Errorf("SampleSize(10) = %d, want 10", n)
	}
}

func TestSampleSizeMonotonicity(t *testing.T) {
	// Tighter margin requires more runs; higher confidence requires more runs.
	if SampleSize(0, 0.99, 0.01) <= SampleSize(0, 0.99, 0.03) {
		t.Error("sample size not monotone in margin")
	}
	if SampleSize(0, 0.99, 0.03) <= SampleSize(0, 0.90, 0.03) {
		t.Error("sample size not monotone in confidence")
	}
}

func TestMarginSampleSizeRoundTrip(t *testing.T) {
	f := func(nSeed uint16) bool {
		n := int(nSeed%5000) + 100
		m := MarginFor(0, n, 0.99)
		back := SampleSize(0, 0.99, m)
		// Round-trip within rounding slack.
		return back >= n-1 && back <= n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingMathEdgeCases(t *testing.T) {
	// A one-site population used to divide by N−1 = 0 in MarginFor.
	if m := MarginFor(1, 1, 0.99); m != 0 {
		t.Errorf("MarginFor(N=1) = %v, want 0", m)
	}
	if n := SampleSize(1, 0.99, 0.03); n != 1 {
		t.Errorf("SampleSize(N=1) = %d, want 1", n)
	}
	// Sampling more than the population is a census: zero margin, and
	// never NaN from a negative variance term.
	if m := MarginFor(10, 25, 0.99); m != 0 {
		t.Errorf("MarginFor(n>N) = %v, want 0", m)
	}
	// Nothing sampled constrains nothing.
	if m := MarginFor(100, 0, 0.99); m != 1 {
		t.Errorf("MarginFor(n=0) = %v, want 1", m)
	}
	// A zero margin demands a census; for an unbounded population the
	// result is clamped, not infinite.
	if n := SampleSize(1000, 0.99, 0); n != 1000 {
		t.Errorf("SampleSize(margin=0, N=1000) = %d, want 1000", n)
	}
	if n := SampleSize(0, 0.99, 0); n != math.MaxInt {
		t.Errorf("SampleSize(margin=0, N=∞) = %d, want MaxInt", n)
	}
	// Out-of-domain confidence levels must stay finite everywhere.
	for _, c := range []float64{-1, 0, 1, 1.5, math.NaN()} {
		for _, N := range []uint64{0, 1, 100} {
			if m := MarginFor(N, 50, c); math.IsNaN(m) || math.IsInf(m, 0) {
				t.Errorf("MarginFor(N=%d, conf=%v) = %v", N, c, m)
			}
			n := SampleSize(N, c, 0.03)
			if N != 0 && uint64(n) > N {
				t.Errorf("SampleSize(N=%d, conf=%v) = %d exceeds population", N, c, n)
			}
		}
		if z := zFor(c); math.IsNaN(z) || math.IsInf(z, 0) {
			t.Errorf("zFor(%v) = %v", c, z)
		}
	}
}

func TestZForDomain(t *testing.T) {
	for _, c := range []float64{-0.5, 0, 1, 1.01, math.NaN()} {
		if _, err := ZFor(c); err == nil {
			t.Errorf("ZFor(%v) accepted an out-of-domain confidence", c)
		}
	}
	for _, c := range []float64{0.5, 0.90, 0.95, 0.98, 0.99, 0.999} {
		z, err := ZFor(c)
		if err != nil {
			t.Fatalf("ZFor(%v): %v", c, err)
		}
		if z != zFor(c) {
			t.Errorf("ZFor(%v) = %v, zFor = %v", c, z, zFor(c))
		}
	}
}

func TestMarginForSampleSizeProperty(t *testing.T) {
	// Running the recommended sample achieves the requested margin (up
	// to round-to-nearest slack on the sample size).
	f := func(nSeed uint32, cSeed, eSeed uint8) bool {
		N := uint64(nSeed%1_000_000) + 1
		c := 0.80 + float64(cSeed%19)/100 // 0.80 .. 0.98
		e := 0.01 + float64(eSeed%10)/100 // 0.01 .. 0.10
		n := SampleSize(N, c, e)
		if n < 0 || uint64(n) > N {
			return false
		}
		// Round-to-nearest can undershoot the exact sample size by up to
		// 0.5 runs, inflating the achieved margin by ~e/(4n); allow that
		// slack and nothing more.
		m := MarginFor(N, n, c)
		return !math.IsNaN(m) && m <= e*(1+1.0/math.Max(float64(n), 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZForNonTabulated(t *testing.T) {
	// 98% two-sided quantile ≈ 2.3263.
	z := zFor(0.98)
	if math.Abs(z-2.3263478740408408) > 1e-9 {
		t.Errorf("zFor(0.98) = %v", z)
	}
}

func TestMaskJSONRoundTrip(t *testing.T) {
	masks, _ := Generate(GeneratorSpec{Structure: "l1d.data", Entries: 8192, BitsPerEntry: 512,
		MaxCycle: 1e6, Model: ModelIntermittent, Count: 25, Seed: 9, Duration: 1000})
	var buf bytes.Buffer
	if err := WriteMasks(&buf, masks); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMasks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(masks) {
		t.Fatalf("len = %d, want %d", len(back), len(masks))
	}
	for i := range masks {
		if masks[i].ID != back[i].ID || masks[i].Sites[0] != back[i].Sites[0] {
			t.Fatalf("mask %d round trip mismatch", i)
		}
	}
}

func TestRepository(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "masks")
	repo, err := NewRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	masks, _ := Generate(GeneratorSpec{Structure: "rf.int", Entries: 256, BitsPerEntry: 64,
		MaxCycle: 1000, Model: ModelTransient, Count: 10, Seed: 5})
	key := CampaignKey("gefin-x86", "qsort", "rf.int")
	if err := repo.Store(key, masks); err != nil {
		t.Fatal(err)
	}
	back, err := repo.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 10 {
		t.Fatalf("loaded %d masks", len(back))
	}
	keys, err := repo.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("Campaigns = %v", keys)
	}
	if _, err := repo.Load("missing"); err == nil {
		t.Fatal("loading missing campaign succeeded")
	}
}

func TestGenerateAdjacentBurst(t *testing.T) {
	masks, err := Generate(GeneratorSpec{Structure: "l1d.data", Entries: 512, BitsPerEntry: 512,
		MaxCycle: 10000, Model: ModelTransient, Count: 50, Seed: 4,
		SitesPerMask: 3, Adjacent: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range masks {
		if len(m.Sites) != 3 {
			t.Fatalf("mask %d: %d sites", m.ID, len(m.Sites))
		}
		e, b, c := m.Sites[0].Entry, m.Sites[0].Bit, m.Sites[0].Cycle
		for j, s := range m.Sites {
			if s.Entry != e || s.Cycle != c || s.Bit != b+j {
				t.Fatalf("mask %d not a burst: %+v", m.ID, m.Sites)
			}
		}
		if m.Sites[2].Bit >= 512 {
			t.Fatalf("burst overflows entry: %+v", m.Sites)
		}
	}
	// Bursts wider than the entry are rejected.
	if _, err := Generate(GeneratorSpec{Structure: "v", Entries: 8, BitsPerEntry: 2,
		MaxCycle: 100, Model: ModelTransient, Count: 1, SitesPerMask: 3, Adjacent: true}); err == nil {
		t.Fatal("oversized burst accepted")
	}
}
