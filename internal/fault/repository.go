package fault

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Repository is the on-disk "masks repository" of the injection framework
// (Fig. 1 of the paper): one JSON-lines file per
// {structure, benchmark, tool} campaign, each line one Mask.
type Repository struct {
	dir string
}

// NewRepository opens (creating if needed) a masks repository rooted at dir.
func NewRepository(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fault: creating masks repository: %w", err)
	}
	return &Repository{dir: dir}, nil
}

// Dir returns the repository root directory.
func (r *Repository) Dir() string { return r.dir }

// campaignFile maps a campaign key to its file path.
func (r *Repository) campaignFile(key string) string {
	return filepath.Join(r.dir, key+".masks.jsonl")
}

// CampaignKey builds the canonical campaign key for a tool, benchmark and
// structure combination.
func CampaignKey(tool, benchmark, structure string) string {
	return fmt.Sprintf("%s__%s__%s", tool, benchmark, structure)
}

// Store writes the masks of a campaign, replacing any previous content.
// The write is atomic (temp file + rename), so a crash mid-Store leaves
// either the old file or the new one, never a truncated mix.
func (r *Repository) Store(key string, masks []Mask) error {
	err := AtomicWrite(r.campaignFile(key), func(w *bufio.Writer) error {
		return WriteMasks(w, masks)
	})
	if err != nil {
		return fmt.Errorf("fault: storing masks for %s: %w", key, err)
	}
	return nil
}

// AtomicWrite writes a file via a same-directory temp file renamed over
// the target, so readers (and crash recovery) only ever see a complete
// old or complete new file. The temp file is fsynced before the rename.
func AtomicWrite(path string, write func(*bufio.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads the masks of a campaign.
func (r *Repository) Load(key string) ([]Mask, error) {
	f, err := os.Open(r.campaignFile(key))
	if err != nil {
		return nil, fmt.Errorf("fault: loading masks for %s: %w", key, err)
	}
	defer f.Close()
	masks, err := ReadMasks(f)
	if err != nil {
		return nil, fmt.Errorf("fault: loading masks for %s: %w", key, err)
	}
	return masks, nil
}

// Campaigns lists the stored campaign keys in sorted order.
func (r *Repository) Campaigns() ([]string, error) {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("fault: listing masks repository: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		const suffix = ".masks.jsonl"
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			keys = append(keys, name[:len(name)-len(suffix)])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// WriteMasks streams masks as JSON lines.
func WriteMasks(w io.Writer, masks []Mask) error {
	enc := json.NewEncoder(w)
	for i := range masks {
		if err := enc.Encode(&masks[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadMasks reads JSON-lines masks until EOF.
func ReadMasks(r io.Reader) ([]Mask, error) {
	dec := json.NewDecoder(r)
	var masks []Mask
	for {
		var m Mask
		if err := dec.Decode(&m); err != nil {
			if err == io.EOF {
				return masks, nil
			}
			return nil, err
		}
		masks = append(masks, m)
	}
}
