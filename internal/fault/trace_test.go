package fault

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	recs := []TraceRecord{
		{
			Campaign: "gefin-x86__qsort__rf.int",
			MaskID:   0,
			Sites:    []Site{{Structure: "rf.int", Entry: 3, Bit: 7, Cycle: 120}},
			Status:   "completed",
			Class:    "Masked",
			Cycles:   4096,
		},
		{
			Campaign:      "gefin-x86__qsort__rf.int",
			MaskID:        1,
			Sites:         []Site{{Structure: "rf.int", Entry: 1, Bit: 0, Cycle: 10}},
			Status:        "completed",
			Class:         "SDC",
			Cycles:        4100,
			Observed:      true,
			FirstObsCycle: 42,
		},
		{
			Campaign:  "gefin-x86__qsort__rf.int",
			MaskID:    2,
			Sites:     []Site{{Structure: "rf.int", Entry: 2, Bit: 5, Cycle: 9}},
			Status:    "early-masked",
			Class:     "Masked",
			Cycles:    200,
			EarlyStop: "overwritten",
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(recs) {
		t.Fatalf("trace has %d lines, want %d", got, len(recs))
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round-trip returned %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Campaign != recs[i].Campaign || back[i].MaskID != recs[i].MaskID ||
			back[i].Class != recs[i].Class || back[i].FirstObsCycle != recs[i].FirstObsCycle ||
			back[i].EarlyStop != recs[i].EarlyStop || len(back[i].Sites) != len(recs[i].Sites) {
			t.Fatalf("record %d mangled: got %+v want %+v", i, back[i], recs[i])
		}
	}
}

func TestTraceOmitsEmptyOptionalFields(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, []TraceRecord{{Campaign: "k", Status: "completed", Class: "Masked"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "first_obs_cycle") || strings.Contains(buf.String(), "early_stop") {
		t.Fatalf("unobserved record carries optional fields: %s", buf.String())
	}
}

func TestReadTraceEmpty(t *testing.T) {
	recs, err := ReadTrace(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty trace returned %d records", len(recs))
	}
}

// Every written row carries the lowest schema version that expresses it
// — plain rows stay at version 1 so campaigns without adaptive control
// remain byte-identical to older builds, stopped-early rows carry
// version 2. Unversioned rows (the PR 2–4 format) read back fine, and
// rows from a newer build are rejected rather than misread.
func TestTraceSchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	rows := []TraceRecord{
		{Campaign: "k", Status: "completed", Class: "Masked"},
		{Campaign: "k", MaskID: 1, Status: "stopped-early", Stopped: true},
	}
	if err := WriteTrace(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema_version":1`) {
		t.Fatalf("plain row not stamped version 1: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"schema_version":2`) {
		t.Fatalf("stopped row not stamped version 2: %s", buf.String())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].SchemaVersion != 1 || back[1].SchemaVersion != TraceSchemaVersion {
		t.Fatalf("round-trip version: %+v", back)
	}
	if !back[1].Stopped {
		t.Fatalf("stopped flag lost in round trip: %+v", back[1])
	}

	legacy := `{"campaign":"k","mask_id":0,"sites":null,"status":"completed","class":"Masked","cycles":0,"observed":false}` + "\n"
	old, err := ReadTrace(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("unversioned trace rejected: %v", err)
	}
	if len(old) != 1 || old[0].SchemaVersion != 0 || old[0].Class != "Masked" {
		t.Fatalf("unversioned trace misread: %+v", old)
	}

	future := `{"schema_version":99,"campaign":"k","status":"completed","class":"Masked"}` + "\n"
	if _, err := ReadTrace(strings.NewReader(future)); err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("future-versioned trace accepted: %v", err)
	}
}
