package fault

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	recs := []TraceRecord{
		{
			Campaign: "gefin-x86__qsort__rf.int",
			MaskID:   0,
			Sites:    []Site{{Structure: "rf.int", Entry: 3, Bit: 7, Cycle: 120}},
			Status:   "completed",
			Class:    "Masked",
			Cycles:   4096,
		},
		{
			Campaign:      "gefin-x86__qsort__rf.int",
			MaskID:        1,
			Sites:         []Site{{Structure: "rf.int", Entry: 1, Bit: 0, Cycle: 10}},
			Status:        "completed",
			Class:         "SDC",
			Cycles:        4100,
			Observed:      true,
			FirstObsCycle: 42,
		},
		{
			Campaign:  "gefin-x86__qsort__rf.int",
			MaskID:    2,
			Sites:     []Site{{Structure: "rf.int", Entry: 2, Bit: 5, Cycle: 9}},
			Status:    "early-masked",
			Class:     "Masked",
			Cycles:    200,
			EarlyStop: "overwritten",
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(recs) {
		t.Fatalf("trace has %d lines, want %d", got, len(recs))
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round-trip returned %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Campaign != recs[i].Campaign || back[i].MaskID != recs[i].MaskID ||
			back[i].Class != recs[i].Class || back[i].FirstObsCycle != recs[i].FirstObsCycle ||
			back[i].EarlyStop != recs[i].EarlyStop || len(back[i].Sites) != len(recs[i].Sites) {
			t.Fatalf("record %d mangled: got %+v want %+v", i, back[i], recs[i])
		}
	}
}

func TestTraceOmitsEmptyOptionalFields(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, []TraceRecord{{Campaign: "k", Status: "completed", Class: "Masked"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "first_obs_cycle") || strings.Contains(buf.String(), "early_stop") {
		t.Fatalf("unobserved record carries optional fields: %s", buf.String())
	}
}

func TestReadTraceEmpty(t *testing.T) {
	recs, err := ReadTrace(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty trace returned %d records", len(recs))
	}
}
