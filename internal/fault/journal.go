package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JournalEntry is one line of the durable run journal: the completed
// record of a single injection run, keyed by {campaign, mask_id}. The
// journal is the crash-safety counterpart of the logs repository — where
// logs are written once at campaign end, journal lines are fsync'd as
// runs finish, so a killed campaign can be resumed without re-simulating
// any completed mask.
//
// Record is the raw core.LogRecord JSON (kept opaque here so the fault
// package needs no dependency on core). The Observed/FirstObsCycle/
// EarlyStop extras mirror the TraceRecord fields that are not derivable
// from the record alone; carrying them is what makes a resumed
// campaign's JSONL injection trace byte-identical to an uninterrupted
// run's.
type JournalEntry struct {
	// SchemaVersion is the journal format version the line was written
	// under; Append stamps JournalSchemaVersion on entries that carry
	// none. Zero identifies lines from before the field existed (the
	// unversioned PR 2–4 format), which parse unchanged.
	SchemaVersion int             `json:"schema_version,omitempty"`
	Campaign      string          `json:"campaign"`
	MaskID        int             `json:"mask_id"`
	Record        json.RawMessage `json:"record"`
	Observed      bool            `json:"observed,omitempty"`
	FirstObsCycle uint64          `json:"first_obs_cycle,omitempty"`
	EarlyStop     string          `json:"early_stop,omitempty"`
	// StoppedEarly marks an entry whose run was cancelled by the cell's
	// sequential stopping rule — settled provenance, not a simulated
	// run. Resume recomputes the stop decision from the real entries and
	// only uses this flag to avoid re-settling what is already durable.
	StoppedEarly bool `json:"stopped_early,omitempty"`
}

// JournalSchemaVersion is the journal format version this build writes
// (see TraceSchemaVersion for the version history; the two formats
// version independently). Version 2 adds the stopped_early flag of
// adaptive campaigns; Append stamps it only on entries that carry the
// flag, so fixed-budget journals keep writing version-1 lines.
const JournalSchemaVersion = 2

// Journal is an append-only JSONL run journal. Append marshals one entry,
// writes it as a single line and fsyncs before returning, so every
// acknowledged line survives a SIGKILL of the campaign process. Safe for
// concurrent use by scheduler workers.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	past     []JournalEntry
	appended int
}

// parseJournal decodes the longest valid line-prefix of a journal file.
// A crash can leave a torn (or, after power loss, corrupt) tail; entries
// after the first undecodable line are dropped and validLen reports how
// many bytes of the file are good, so OpenJournal can truncate the rest
// away before appending. A line that parses but carries a schema version
// newer than this build understands is a hard error — unlike a torn
// tail, it means a newer build owns the journal, and truncating its
// lines away would destroy acknowledged runs.
func parseJournal(data []byte) (entries []JournalEntry, validLen int64, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		var e JournalEntry
		if err := json.Unmarshal(data[off:off+nl], &e); err != nil {
			break
		}
		if e.SchemaVersion > JournalSchemaVersion {
			return nil, 0, fmt.Errorf("fault: journal entry %d has schema version %d; this build reads versions <= %d",
				len(entries), e.SchemaVersion, JournalSchemaVersion)
		}
		entries = append(entries, e)
		off += nl + 1
		validLen = int64(off)
	}
	return entries, validLen, nil
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. Entries already on disk — the completed runs of a killed
// campaign — are loaded and exposed via Entries; a torn trailing line is
// discarded and truncated away so the next Append starts on a clean line
// boundary.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("fault: opening journal %s: %w", path, err)
	}
	entries, validLen, err := parseJournal(data)
	if err != nil {
		return nil, fmt.Errorf("fault: opening journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: opening journal %s: %w", path, err)
	}
	if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("fault: truncating torn journal tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("fault: seeking journal %s: %w", path, err)
	}
	return &Journal{f: f, path: path, past: entries}, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Entries returns the entries that were on disk when the journal was
// opened — the resume set. The returned slice is shared; treat it as
// read-only.
func (j *Journal) Entries() []JournalEntry { return j.past }

// Appended reports how many entries this process has appended since
// opening (excludes the resume set).
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Append writes one entry as a JSON line and fsyncs it, stamping
// unstamped entries with the lowest schema version that can express
// them (the current version for stopped-early provenance, 1 otherwise).
func (j *Journal) Append(e JournalEntry) error {
	if e.SchemaVersion == 0 {
		if e.StoppedEarly {
			e.SchemaVersion = JournalSchemaVersion
		} else {
			e.SchemaVersion = 1
		}
	}
	b, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("fault: journal append for %s mask %d: %w", e.Campaign, e.MaskID, err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fault: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("fault: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fault: journal sync: %w", err)
	}
	j.appended++
	return nil
}

// Close closes the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ReadJournal decodes journal entries from a reader, tolerating a torn
// trailing line the way OpenJournal does. Entries stamped with a newer
// schema version than this build understands are an error.
func ReadJournal(r io.Reader) ([]JournalEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fault: reading journal: %w", err)
	}
	entries, _, err := parseJournal(data)
	return entries, err
}

// ReadJournalFile reads the journal at path; a missing file is an empty
// journal, not an error.
func ReadJournalFile(path string) ([]JournalEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fault: reading journal %s: %w", path, err)
	}
	entries, _, err := parseJournal(data)
	return entries, err
}
