package fault

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// OutcomeIndexSchemaVersion stamps indexed outcome files so future
// readers can tell old breakdowns from new ones.
const OutcomeIndexSchemaVersion = 1

// AdaptiveIndexSummary is the indexed form of a cell's adaptive
// early-stopping trailer.
type AdaptiveIndexSummary struct {
	StoppedEarly    bool    `json:"stopped_early"`
	SimulatedRuns   int     `json:"simulated_runs"`
	PlannedRuns     int     `json:"planned_runs"`
	EffectiveMargin float64 `json:"effective_margin"`
	Confidence      float64 `json:"confidence,omitempty"`
}

// DivergenceIndexSummary is the indexed aggregate of a cell's
// divergence records: how many faulty runs architecturally diverged
// from the golden run, and how fast corruption propagated.
type DivergenceIndexSummary struct {
	Records               int     `json:"records"`
	Diverged              int     `json:"diverged"`
	MeanPropagationCycles float64 `json:"mean_propagation_cycles,omitempty"`
	MeanTimeToOutcome     float64 `json:"mean_time_to_outcome,omitempty"`
}

// OutcomeIndex is one campaign cell's aggregated outcome breakdown —
// everything GET /v1/campaigns/{id}/results serves without re-reading
// the cell's JSONL logs. It is pure data: the campaign service computes
// the numbers from the run records at finalize time and stores them
// here.
type OutcomeIndex struct {
	SchemaVersion int    `json:"schema_version"`
	Key           string `json:"key"`
	Tool          string `json:"tool"`
	Benchmark     string `json:"benchmark"`
	Structure     string `json:"structure"`

	// Runs counts committed run records; WeightSum is the importance
	// weight mass behind them (equal to Runs when sampling is uniform).
	Runs      int     `json:"runs"`
	WeightSum float64 `json:"weight_sum,omitempty"`

	// Statuses and Classes count records per terminal status and per
	// outcome class; Shares and WeightedShares are the matching
	// fractions of Runs and WeightSum.
	Statuses       map[string]int     `json:"statuses,omitempty"`
	Classes        map[string]int     `json:"classes,omitempty"`
	Shares         map[string]float64 `json:"shares,omitempty"`
	WeightedShares map[string]float64 `json:"weighted_shares,omitempty"`

	// Vulnerability is the weighted share of runs whose fault was not
	// masked (the paper's vulnerability estimate for the cell).
	Vulnerability float64 `json:"vulnerability"`

	Adaptive   *AdaptiveIndexSummary   `json:"adaptive,omitempty"`
	Divergence *DivergenceIndexSummary `json:"divergence,omitempty"`
}

// ResultIndex is the on-disk index of finished campaigns' outcome
// breakdowns: one JSON file per campaign ID holding its []OutcomeIndex,
// written atomically so a crash never leaves a torn index.
type ResultIndex struct {
	dir string
}

// NewResultIndex opens (creating if needed) a result index rooted at dir.
func NewResultIndex(dir string) (*ResultIndex, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fault: creating result index: %w", err)
	}
	return &ResultIndex{dir: dir}, nil
}

// Dir returns the index root directory.
func (x *ResultIndex) Dir() string { return x.dir }

func (x *ResultIndex) indexFile(id string) string {
	return filepath.Join(x.dir, id+".index.json")
}

// Store writes (atomically, replacing) the indexed cells of a campaign.
func (x *ResultIndex) Store(id string, cells []OutcomeIndex) error {
	err := AtomicWrite(x.indexFile(id), func(w *bufio.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cells)
	})
	if err != nil {
		return fmt.Errorf("fault: storing result index for %s: %w", id, err)
	}
	return nil
}

// Load reads the indexed cells of a campaign.
func (x *ResultIndex) Load(id string) ([]OutcomeIndex, error) {
	b, err := os.ReadFile(x.indexFile(id))
	if err != nil {
		return nil, fmt.Errorf("fault: loading result index for %s: %w", id, err)
	}
	var cells []OutcomeIndex
	if err := json.Unmarshal(b, &cells); err != nil {
		return nil, fmt.Errorf("fault: loading result index for %s: %w", id, err)
	}
	return cells, nil
}

// Has reports whether an index exists for the campaign ID.
func (x *ResultIndex) Has(id string) bool {
	_, err := os.Stat(x.indexFile(id))
	return err == nil
}

// List returns the indexed campaign IDs in sorted order.
func (x *ResultIndex) List() ([]string, error) {
	ents, err := os.ReadDir(x.dir)
	if err != nil {
		return nil, fmt.Errorf("fault: listing result index: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		const suffix = ".index.json"
		if strings.HasSuffix(name, suffix) && len(name) > len(suffix) {
			ids = append(ids, strings.TrimSuffix(name, suffix))
		}
	}
	sort.Strings(ids)
	return ids, nil
}
