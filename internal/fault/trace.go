package fault

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSchemaVersion is the trace format version this build writes.
// Every row carries it, so a reader can reject rows written by a newer
// build instead of silently misinterpreting fields. Version history:
//
//	0 (absent) — the unversioned PR 2–4 format; accepted on read
//	1          — identical fields plus the schema_version stamp itself
//	2          — adds the stopped_early provenance flag of adaptive
//	             campaigns; stamped per row, only on rows that carry it,
//	             so fixed-budget traces stay byte-identical to version 1
const TraceSchemaVersion = 2

// TraceRecord is one row of the JSONL injection trace that sits next to
// the campaign logs in the logs repository. Where a core.LogRecord keeps
// the raw run outcome for offline (re-)classification, a TraceRecord is
// the debugging view of one injection: where the fault landed (the mask
// coordinates), when the machine first observed it, and what the default
// classification made of the run. Records carry no wall-clock fields, so
// a trace written for a fixed seed is byte-stable across runs and worker
// counts.
type TraceRecord struct {
	// SchemaVersion is the trace format version the row was written
	// under; WriteTrace stamps TraceSchemaVersion on rows that carry
	// none. Zero identifies rows from before the field existed.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Campaign is the {tool, benchmark, structure} campaign key.
	Campaign string `json:"campaign"`
	// MaskID and Sites are the injected mask's coordinates.
	MaskID int    `json:"mask_id"`
	Sites  []Site `json:"sites"`
	// Status is the raw run status; Class is the default parser's
	// classification of the run.
	Status string `json:"status"`
	Class  string `json:"class"`
	// Cycles is the simulated cycle count of the run.
	Cycles uint64 `json:"cycles"`
	// Observed reports whether any read consumed the faulty location;
	// FirstObsCycle is the cycle of the earliest such read.
	Observed      bool   `json:"observed"`
	FirstObsCycle uint64 `json:"first_obs_cycle,omitempty"`
	// EarlyStop names the §III.B proof that ended an early-masked run
	// ("overwritten" or "skipped-invalid").
	EarlyStop string `json:"early_stop,omitempty"`
	// Pruned marks a row the liveness pruner settled without simulation:
	// "dead" or "replicated". RepMask is the representative whose verdict
	// a replicated row carries (a pointer: mask IDs start at 0, which
	// omitempty would otherwise drop).
	Pruned  string `json:"pruned,omitempty"`
	RepMask *int   `json:"rep_mask,omitempty"`
	// Stopped marks a row whose run was cancelled by the cell's
	// sequential stopping rule before simulation — provenance for
	// smokecheck and resume, not an outcome.
	Stopped bool `json:"stopped_early,omitempty"`
}

// WriteTrace encodes records as JSON lines, stamping unstamped rows
// with the lowest schema version that can express them: rows carrying
// the stopped_early flag get the current version, all others version 1,
// so a fixed-budget campaign's trace is byte-identical to what older
// builds wrote.
func WriteTrace(w io.Writer, recs []TraceRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		rec := recs[i]
		if rec.SchemaVersion == 0 {
			if rec.Stopped {
				rec.SchemaVersion = TraceSchemaVersion
			} else {
				rec.SchemaVersion = 1
			}
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("fault: writing trace record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL injection trace. Rows stamped with a schema
// version newer than this build understands are an error — a trace from
// a newer build must be rejected, not misread. Unstamped rows (the PR
// 2–4 format, version 0) are accepted unchanged.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	dec := json.NewDecoder(r)
	var recs []TraceRecord
	for {
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return recs, nil
			}
			return nil, fmt.Errorf("fault: reading trace record %d: %w", len(recs), err)
		}
		if rec.SchemaVersion > TraceSchemaVersion {
			return nil, fmt.Errorf("fault: trace record %d has schema version %d; this build reads versions <= %d",
				len(recs), rec.SchemaVersion, TraceSchemaVersion)
		}
		recs = append(recs, rec)
	}
}
