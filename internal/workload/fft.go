package workload

import (
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
)

// fft: an in-place radix-2 decimation-in-time FFT of 512 complex points
// in double precision, the analog of MiBench's fft. Twiddle factors are
// a precomputed table (the simulated ISAs have no sin/cos); the Go
// reference executes the identical butterfly order so the IEEE-754
// results match bit for bit. The output file is the raw real and
// imaginary arrays.

const (
	fftN    = 512
	fftBits = 9 // log2(fftN), the bit-reversal width
)

func fftInput() []float64 {
	g := newLCG(0xfff7)
	xs := make([]float64, fftN)
	for i := range xs {
		// A mix of tones plus bounded noise.
		xs[i] = math.Sin(2*math.Pi*float64(i)*5/fftN) +
			0.5*math.Sin(2*math.Pi*float64(i)*17/fftN) +
			0.25*float64(g.next()%1000)/1000
	}
	return xs
}

func fftTwiddles() (wr, wi []float64) {
	wr = make([]float64, fftN/2)
	wi = make([]float64, fftN/2)
	for k := range wr {
		ang := -2 * math.Pi * float64(k) / fftN
		wr[k] = math.Cos(ang)
		wi[k] = math.Sin(ang)
	}
	return wr, wi
}

// fftModel runs the exact algorithm the IR implements.
func fftModel() (xr, xi []float64) {
	xr = fftInput()
	xi = make([]float64, fftN)
	wr, wi := fftTwiddles()
	// Bit-reverse permutation.
	for i := 0; i < fftN; i++ {
		j, tmp := 0, i
		for k := 0; k < fftBits; k++ {
			j = j<<1 | tmp&1
			tmp >>= 1
		}
		if i < j {
			xr[i], xr[j] = xr[j], xr[i]
			xi[i], xi[j] = xi[j], xi[i]
		}
	}
	for ln := 2; ln <= fftN; ln <<= 1 {
		half := ln / 2
		step := fftN / ln
		for i := 0; i < fftN; i += ln {
			for j := 0; j < half; j++ {
				cr, ci := wr[j*step], wi[j*step]
				a, b := i+j, i+j+half
				tr := xr[b]*cr - xi[b]*ci
				ti := xr[b]*ci + xi[b]*cr
				xr[b] = xr[a] - tr
				xi[b] = xi[a] - ti
				xr[a] = xr[a] + tr
				xi[a] = xi[a] + ti
			}
		}
	}
	return xr, xi
}

func f64bytes(vs []float64) []byte {
	var out []byte
	for _, v := range vs {
		out = append(out, le64(math.Float64bits(v))...)
	}
	return out
}

func refFFT() []byte {
	xr, xi := fftModel()
	return append(f64bytes(xr), f64bytes(xi)...)
}

func buildFFT() *asm.Program {
	p := asm.NewProgram()
	// x holds xr[0..fftN-1] then xi[0..fftN-1], contiguously.
	p.Data("x", append(f64bytes(fftInput()), make([]byte, fftN*8)...))
	wr, wi := fftTwiddles()
	// tw holds wr[0..fftN/2-1] then wi[0..fftN/2-1].
	p.Data("tw", append(f64bytes(wr), f64bytes(wi)...))

	const xiOff = fftN * 8     // byte offset of xi within x
	const wiOff = fftN / 2 * 8 // byte offset of wi within tw

	f := p.Func("main")
	xb := isa.R10 // x base
	tb := isa.R11 // tw base
	f.MovSym(xb, "x")
	f.MovSym(tb, "tw")

	// Bit-reverse permutation. i=r1, j=r2, tmp=r3, k=r4.
	f.MovImm(isa.R1, 0)
	f.Label("brev")
	f.MovImm(isa.R2, 0)
	f.Mov(isa.R3, isa.R1)
	f.MovImm(isa.R4, 0)
	f.Label("revk")
	f.ShlI(isa.R2, isa.R2, 1)
	f.AndI(isa.R5, isa.R3, 1)
	f.Or(isa.R2, isa.R2, isa.R5)
	f.ShrI(isa.R3, isa.R3, 1)
	f.AddI(isa.R4, isa.R4, 1)
	f.BrI(isa.CondLT, isa.R4, fftBits, "revk")
	f.Br(isa.CondGE, isa.R1, isa.R2, "noswap")
	// swap xr[i],xr[j] and xi[i],xi[j]
	f.ShlI(isa.R5, isa.R1, 3)
	f.Add(isa.R5, xb, isa.R5)
	f.ShlI(isa.R6, isa.R2, 3)
	f.Add(isa.R6, xb, isa.R6)
	f.FLoad(isa.F0, isa.R5, 0)
	f.FLoad(isa.F1, isa.R6, 0)
	f.FStore(isa.F1, isa.R5, 0)
	f.FStore(isa.F0, isa.R6, 0)
	f.FLoad(isa.F0, isa.R5, xiOff)
	f.FLoad(isa.F1, isa.R6, xiOff)
	f.FStore(isa.F1, isa.R5, xiOff)
	f.FStore(isa.F0, isa.R6, xiOff)
	f.Label("noswap")
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, fftN, "brev")

	// Butterfly stages. ln=r1, half=r2, step=r3, i=r4, j=r5.
	f.MovImm(isa.R1, 2)
	f.Label("stage")
	f.ShrI(isa.R2, isa.R1, 1)
	f.MovImm(isa.R3, fftN)
	f.Div(isa.R3, isa.R3, isa.R1)
	f.MovImm(isa.R4, 0)
	f.Label("groups")
	f.MovImm(isa.R5, 0)
	f.Label("bfly")
	// twiddle address: tb + (j*step)*8
	f.Mul(isa.R6, isa.R5, isa.R3)
	f.ShlI(isa.R6, isa.R6, 3)
	f.Add(isa.R6, tb, isa.R6)
	f.FLoad(isa.F0, isa.R6, 0)     // cr
	f.FLoad(isa.F1, isa.R6, wiOff) // ci
	// a = i+j, b = a+half (byte addresses in r7, r8)
	f.Add(isa.R7, isa.R4, isa.R5)
	f.Add(isa.R8, isa.R7, isa.R2)
	f.ShlI(isa.R7, isa.R7, 3)
	f.Add(isa.R7, xb, isa.R7)
	f.ShlI(isa.R8, isa.R8, 3)
	f.Add(isa.R8, xb, isa.R8)
	f.FLoad(isa.F2, isa.R8, 0)     // xr[b]
	f.FLoad(isa.F3, isa.R8, xiOff) // xi[b]
	// tr = xr[b]*cr - xi[b]*ci ; ti = xr[b]*ci + xi[b]*cr
	f.FMul(isa.F4, isa.F2, isa.F0)
	f.FMul(isa.F5, isa.F3, isa.F1)
	f.FSub(isa.F4, isa.F4, isa.F5) // tr
	f.FMul(isa.F5, isa.F2, isa.F1)
	f.FMul(isa.F6, isa.F3, isa.F0)
	f.FAdd(isa.F5, isa.F5, isa.F6) // ti
	// xr[b] = xr[a]-tr; xr[a] += tr
	f.FLoad(isa.F2, isa.R7, 0)
	f.FSub(isa.F6, isa.F2, isa.F4)
	f.FStore(isa.F6, isa.R8, 0)
	f.FAdd(isa.F2, isa.F2, isa.F4)
	f.FStore(isa.F2, isa.R7, 0)
	// xi[b] = xi[a]-ti; xi[a] += ti
	f.FLoad(isa.F3, isa.R7, xiOff)
	f.FSub(isa.F6, isa.F3, isa.F5)
	f.FStore(isa.F6, isa.R8, xiOff)
	f.FAdd(isa.F3, isa.F3, isa.F5)
	f.FStore(isa.F3, isa.R7, xiOff)
	f.AddI(isa.R5, isa.R5, 1)
	f.Br(isa.CondLT, isa.R5, isa.R2, "bfly")
	f.Add(isa.R4, isa.R4, isa.R1)
	f.BrI(isa.CondLT, isa.R4, fftN, "groups")
	f.ShlI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLE, isa.R1, fftN, "stage")

	emitWriteOut(f, "x", fftN*16)
	emitExit(f)
	return p
}
