package workload

import (
	"math"

	"repro/internal/asm"
	"repro/internal/isa"
)

// cjpeg / djpeg: a JPEG-style transform codec over a 16×16 grayscale
// image — integer 8×8 DCT (scaled-cosine matrix arithmetic), standard
// luminance quantization, zigzag scan and run-length entropy coding —
// the analogs of MiBench's cjpeg and djpeg. cjpeg's output file is the
// encoded stream; djpeg consumes a pre-encoded stream (embedded at build
// time from the reference encoder) and outputs the decoded pixels.

const (
	jpegW      = 16
	jpegH      = 16
	jpegBlocks = (jpegW / 8) * (jpegH / 8)
	dctShift   = 20
	dctRound   = 1 << 19
	jpegEOB    = 0xFF
)

// jpegQuant is the standard JPEG luminance quantization table.
var jpegQuant = [64]int64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegZigzag maps scan position to block position.
var jpegZigzag = [64]byte{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// dctMatrix returns the orthonormal DCT-II basis scaled by 1024.
func dctMatrix() [64]int64 {
	var m [64]int64
	for u := 0; u < 8; u++ {
		alpha := math.Sqrt(2.0 / 8.0)
		if u == 0 {
			alpha = math.Sqrt(1.0 / 8.0)
		}
		for x := 0; x < 8; x++ {
			m[u*8+x] = int64(math.Round(alpha * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) * 1024))
		}
	}
	return m
}

func jpegImage() []byte { return grayImage(jpegW, jpegH, 0xca7) }

// divRound divides rounding half away from zero, the quantizer's rule.
func divRound(y, q int64) int64 {
	if y >= 0 {
		return (y + q/2) / q
	}
	return -((-y + q/2) / q)
}

// refCJPEG encodes the image; it is both the cjpeg golden output and the
// djpeg input stream.
func refCJPEG() []byte {
	img := jpegImage()
	m := dctMatrix()
	var out []byte
	for b := 0; b < jpegBlocks; b++ {
		bx, by := b%(jpegW/8), b/(jpegW/8)
		var px [64]int64
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				px[r*8+c] = int64(img[(by*8+r)*jpegW+bx*8+c]) - 128
			}
		}
		var tmp, y [64]int64
		for u := 0; u < 8; u++ {
			for x := 0; x < 8; x++ {
				var s int64
				for k := 0; k < 8; k++ {
					s += m[u*8+k] * px[k*8+x]
				}
				tmp[u*8+x] = s
			}
		}
		for u := 0; u < 8; u++ {
			for v := 0; v < 8; v++ {
				var s int64
				for k := 0; k < 8; k++ {
					s += tmp[u*8+k] * m[v*8+k]
				}
				y[u*8+v] = divRound((s+dctRound)>>dctShift, jpegQuant[u*8+v])
			}
		}
		run := 0
		for i := 0; i < 64; i++ {
			v := y[jpegZigzag[i]]
			if v == 0 {
				run++
				continue
			}
			out = append(out, byte(run), byte(uint16(v)), byte(uint16(v)>>8))
			run = 0
		}
		out = append(out, jpegEOB)
	}
	return out
}

// refDJPEG decodes the reference stream back to pixels.
func refDJPEG() []byte {
	m := dctMatrix()
	stream := refCJPEG()
	img := make([]byte, jpegW*jpegH)
	pos := 0
	for b := 0; b < jpegBlocks; b++ {
		bx, by := b%(jpegW/8), b/(jpegW/8)
		var y [64]int64
		i := 0
		for {
			r := stream[pos]
			pos++
			if r == jpegEOB {
				break
			}
			i += int(r)
			v := int64(int16(uint16(stream[pos]) | uint16(stream[pos+1])<<8))
			pos += 2
			y[jpegZigzag[i]] = v * jpegQuant[jpegZigzag[i]]
			i++
		}
		var tmp [64]int64
		for x := 0; x < 8; x++ {
			for v := 0; v < 8; v++ {
				var s int64
				for u := 0; u < 8; u++ {
					s += m[u*8+x] * y[u*8+v]
				}
				tmp[x*8+v] = s
			}
		}
		for x := 0; x < 8; x++ {
			for k := 0; k < 8; k++ {
				var s int64
				for v := 0; v < 8; v++ {
					s += tmp[x*8+v] * m[v*8+k]
				}
				p := ((s + dctRound) >> dctShift) + 128
				if p < 0 {
					p = 0
				}
				if p > 255 {
					p = 255
				}
				img[(by*8+x)*jpegW+bx*8+k] = byte(p)
			}
		}
	}
	return img
}

func jpegTables(p *asm.Program) {
	m := dctMatrix()
	p.Data("dctm", le64s(m[:]))
	p.Data("quant", le64s(jpegQuant[:]))
	p.Data("zigzag", jpegZigzag[:])
}

// emitMac8 emits s += A[i*8+k] * B[f(k)] accumulation loops' inner body
// via a helper pattern shared by the DCT kernels; kept inline at each
// call site for clarity of the generated code.

func buildCJPEG() *asm.Program {
	p := asm.NewProgram()
	p.Data("img", jpegImage())
	jpegTables(p)
	p.Bss("P", 64*8)   // centered pixels
	p.Bss("T", 64*8)   // M·P
	p.Bss("Y", 64*8)   // quantized coefficients
	p.Bss("out", 1024) // encoded stream
	p.Bss("wp", 8)     // write offset
	p.Bss("bidx", 8)   // block index

	// dctblock: P → Y (forward DCT + quantization). Globals only.
	d := p.Func("dctblock")
	// T = M·P: u=r1, x=r2, k=r3, s=r4.
	d.MovSym(isa.R10, "dctm")
	d.MovSym(isa.R11, "P")
	d.MovImm(isa.R1, 0)
	d.Label("uloop")
	d.MovImm(isa.R2, 0)
	d.Label("xloop")
	d.MovImm(isa.R3, 0)
	d.MovImm(isa.R4, 0)
	d.Label("kloop")
	d.ShlI(isa.R5, isa.R1, 6) // u*64
	d.ShlI(isa.R6, isa.R3, 3) // k*8
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R10, isa.R5)
	d.Load(8, false, isa.R7, isa.R5, 0) // M[u*8+k]
	d.ShlI(isa.R5, isa.R3, 6)           // k*64
	d.ShlI(isa.R6, isa.R2, 3)           // x*8
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R11, isa.R5)
	d.Load(8, false, isa.R8, isa.R5, 0) // P[k*8+x]
	d.Mul(isa.R7, isa.R7, isa.R8)
	d.Add(isa.R4, isa.R4, isa.R7)
	d.AddI(isa.R3, isa.R3, 1)
	d.BrI(isa.CondLT, isa.R3, 8, "kloop")
	d.MovSym(isa.R5, "T")
	d.ShlI(isa.R6, isa.R1, 6)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.ShlI(isa.R6, isa.R2, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Store(8, isa.R4, isa.R5, 0)
	d.AddI(isa.R2, isa.R2, 1)
	d.BrI(isa.CondLT, isa.R2, 8, "xloop")
	d.AddI(isa.R1, isa.R1, 1)
	d.BrI(isa.CondLT, isa.R1, 8, "uloop")
	// Y = quant((T·Mᵀ + round) >> shift): u=r1, v=r2, k=r3, s=r4.
	d.MovSym(isa.R11, "T")
	d.MovImm(isa.R1, 0)
	d.Label("u2loop")
	d.MovImm(isa.R2, 0)
	d.Label("v2loop")
	d.MovImm(isa.R3, 0)
	d.MovImm(isa.R4, 0)
	d.Label("k2loop")
	d.ShlI(isa.R5, isa.R1, 6)
	d.ShlI(isa.R6, isa.R3, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R11, isa.R5)
	d.Load(8, false, isa.R7, isa.R5, 0) // T[u*8+k]
	d.ShlI(isa.R5, isa.R2, 6)
	d.ShlI(isa.R6, isa.R3, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R10, isa.R5)
	d.Load(8, false, isa.R8, isa.R5, 0) // M[v*8+k]
	d.Mul(isa.R7, isa.R7, isa.R8)
	d.Add(isa.R4, isa.R4, isa.R7)
	d.AddI(isa.R3, isa.R3, 1)
	d.BrI(isa.CondLT, isa.R3, 8, "k2loop")
	d.AddI(isa.R4, isa.R4, dctRound)
	d.SarI(isa.R4, isa.R4, dctShift)
	// Quantize with rounding half away from zero.
	d.ShlI(isa.R5, isa.R1, 3)
	d.Add(isa.R5, isa.R5, isa.R2) // u*8+v
	d.MovSym(isa.R6, "quant")
	d.ShlI(isa.R7, isa.R5, 3)
	d.Add(isa.R6, isa.R6, isa.R7)
	d.Load(8, false, isa.R6, isa.R6, 0) // q
	d.ShrI(isa.R8, isa.R6, 1)           // q/2
	d.BrI(isa.CondLT, isa.R4, 0, "neg")
	d.Add(isa.R4, isa.R4, isa.R8)
	d.Div(isa.R4, isa.R4, isa.R6)
	d.Jmp("quantdone")
	d.Label("neg")
	d.MovImm(isa.R9, 0)
	d.Sub(isa.R4, isa.R9, isa.R4) // -y
	d.Add(isa.R4, isa.R4, isa.R8)
	d.Div(isa.R4, isa.R4, isa.R6)
	d.Sub(isa.R4, isa.R9, isa.R4)
	d.Label("quantdone")
	d.MovSym(isa.R6, "Y")
	d.ShlI(isa.R7, isa.R5, 3)
	d.Add(isa.R6, isa.R6, isa.R7)
	d.Store(8, isa.R4, isa.R6, 0)
	d.AddI(isa.R2, isa.R2, 1)
	d.BrI(isa.CondLT, isa.R2, 8, "v2loop")
	d.AddI(isa.R1, isa.R1, 1)
	d.BrI(isa.CondLT, isa.R1, 8, "u2loop")
	d.Ret()

	f := p.Func("main")
	f.MovSym(isa.R1, "wp")
	f.MovImm(isa.R0, 0)
	f.Store(8, isa.R0, isa.R1, 0)
	f.MovSym(isa.R1, "bidx")
	f.Store(8, isa.R0, isa.R1, 0)

	f.Label("blkloop")
	// Load block pixels centered at 0: P[r*8+c] = img[...] - 128.
	f.MovSym(isa.R1, "bidx")
	f.Load(8, false, isa.R1, isa.R1, 0)
	f.AndI(isa.R2, isa.R1, 1) // bx
	f.ShrI(isa.R3, isa.R1, 1) // by
	f.MovSym(isa.R10, "img")
	f.MovSym(isa.R11, "P")
	f.MovImm(isa.R4, 0) // r
	f.Label("prow")
	f.MovImm(isa.R5, 0) // c
	f.Label("pcol")
	// src = img + (by*8+r)*16 + bx*8 + c
	f.ShlI(isa.R6, isa.R3, 3)
	f.Add(isa.R6, isa.R6, isa.R4)
	f.ShlI(isa.R6, isa.R6, 4)
	f.ShlI(isa.R7, isa.R2, 3)
	f.Add(isa.R6, isa.R6, isa.R7)
	f.Add(isa.R6, isa.R6, isa.R5)
	f.Add(isa.R6, isa.R10, isa.R6)
	f.Load(1, false, isa.R7, isa.R6, 0)
	f.SubI(isa.R7, isa.R7, 128)
	// dst = P + (r*8+c)*8
	f.ShlI(isa.R6, isa.R4, 3)
	f.Add(isa.R6, isa.R6, isa.R5)
	f.ShlI(isa.R6, isa.R6, 3)
	f.Add(isa.R6, isa.R11, isa.R6)
	f.Store(8, isa.R7, isa.R6, 0)
	f.AddI(isa.R5, isa.R5, 1)
	f.BrI(isa.CondLT, isa.R5, 8, "pcol")
	f.AddI(isa.R4, isa.R4, 1)
	f.BrI(isa.CondLT, isa.R4, 8, "prow")

	f.Call("dctblock")

	// Run-length encode Y in zigzag order. i=r1, run=r2.
	f.MovSym(isa.R10, "zigzag")
	f.MovSym(isa.R11, "Y")
	f.MovSym(isa.R8, "out")
	f.MovSym(isa.R9, "wp")
	f.Load(8, false, isa.R9, isa.R9, 0) // current offset in r9
	f.MovImm(isa.R1, 0)
	f.MovImm(isa.R2, 0)
	f.Label("rle")
	f.Add(isa.R3, isa.R10, isa.R1)
	f.Load(1, false, isa.R3, isa.R3, 0) // zz[i]
	f.ShlI(isa.R3, isa.R3, 3)
	f.Add(isa.R3, isa.R11, isa.R3)
	f.Load(8, false, isa.R4, isa.R3, 0) // v
	f.BrI(isa.CondNE, isa.R4, 0, "emitv")
	f.AddI(isa.R2, isa.R2, 1)
	f.Jmp("rlenext")
	f.Label("emitv")
	f.Add(isa.R5, isa.R8, isa.R9)
	f.Store(1, isa.R2, isa.R5, 0) // run byte
	f.Store(1, isa.R4, isa.R5, 1) // value low byte
	f.ShrI(isa.R6, isa.R4, 8)
	f.Store(1, isa.R6, isa.R5, 2) // value high byte
	f.AddI(isa.R9, isa.R9, 3)
	f.MovImm(isa.R2, 0)
	f.Label("rlenext")
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, 64, "rle")
	// EOB marker.
	f.Add(isa.R5, isa.R8, isa.R9)
	f.MovImm(isa.R4, jpegEOB)
	f.Store(1, isa.R4, isa.R5, 0)
	f.AddI(isa.R9, isa.R9, 1)
	f.MovSym(isa.R5, "wp")
	f.Store(8, isa.R9, isa.R5, 0)

	f.MovSym(isa.R1, "bidx")
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.Store(8, isa.R2, isa.R1, 0)
	f.BrI(isa.CondLT, isa.R2, jpegBlocks, "blkloop")

	// write(out, wp); exit(0)
	f.MovSym(isa.R3, "wp")
	f.Load(8, false, isa.R2, isa.R3, 0)
	f.MovImm(isa.R0, 1)
	f.MovSym(isa.R1, "out")
	f.Syscall()
	emitExit(f)
	return p
}

func buildDJPEG() *asm.Program {
	p := asm.NewProgram()
	p.Data("stream", refCJPEG())
	jpegTables(p)
	p.Bss("Yc", 64*8)         // dequantized coefficients
	p.Bss("T", 64*8)          // Mᵀ·Y
	p.Bss("img", jpegW*jpegH) // decoded pixels
	p.Bss("rp", 8)            // read offset
	p.Bss("bidx", 8)          // block index

	// idctblock: Yc → pixels of block bidx written into img (clamped).
	d := p.Func("idctblock")
	// T[x*8+v] = Σ_u M[u*8+x] * Y[u*8+v]: x=r1, v=r2, u=r3, s=r4.
	d.MovSym(isa.R10, "dctm")
	d.MovSym(isa.R11, "Yc")
	d.MovImm(isa.R1, 0)
	d.Label("xloop")
	d.MovImm(isa.R2, 0)
	d.Label("vloop")
	d.MovImm(isa.R3, 0)
	d.MovImm(isa.R4, 0)
	d.Label("uloop")
	d.ShlI(isa.R5, isa.R3, 6)
	d.ShlI(isa.R6, isa.R1, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R10, isa.R5)
	d.Load(8, false, isa.R7, isa.R5, 0) // M[u*8+x]
	d.ShlI(isa.R5, isa.R3, 6)
	d.ShlI(isa.R6, isa.R2, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R11, isa.R5)
	d.Load(8, false, isa.R8, isa.R5, 0) // Y[u*8+v]
	d.Mul(isa.R7, isa.R7, isa.R8)
	d.Add(isa.R4, isa.R4, isa.R7)
	d.AddI(isa.R3, isa.R3, 1)
	d.BrI(isa.CondLT, isa.R3, 8, "uloop")
	d.MovSym(isa.R5, "T")
	d.ShlI(isa.R6, isa.R1, 6)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.ShlI(isa.R6, isa.R2, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Store(8, isa.R4, isa.R5, 0)
	d.AddI(isa.R2, isa.R2, 1)
	d.BrI(isa.CondLT, isa.R2, 8, "vloop")
	d.AddI(isa.R1, isa.R1, 1)
	d.BrI(isa.CondLT, isa.R1, 8, "xloop")
	// p[x*8+k] = clamp(((Σ_v T[x*8+v]*M[v*8+k] + round)>>shift)+128),
	// stored into img at the block position. x=r1, k=r2, v=r3, s=r4.
	d.MovSym(isa.R11, "T")
	d.MovImm(isa.R1, 0)
	d.Label("x2loop")
	d.MovImm(isa.R2, 0)
	d.Label("k2loop")
	d.MovImm(isa.R3, 0)
	d.MovImm(isa.R4, 0)
	d.Label("v2loop")
	d.ShlI(isa.R5, isa.R1, 6)
	d.ShlI(isa.R6, isa.R3, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R11, isa.R5)
	d.Load(8, false, isa.R7, isa.R5, 0) // T[x*8+v]
	d.ShlI(isa.R5, isa.R3, 6)
	d.ShlI(isa.R6, isa.R2, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R10, isa.R5)
	d.Load(8, false, isa.R8, isa.R5, 0) // M[v*8+k]
	d.Mul(isa.R7, isa.R7, isa.R8)
	d.Add(isa.R4, isa.R4, isa.R7)
	d.AddI(isa.R3, isa.R3, 1)
	d.BrI(isa.CondLT, isa.R3, 8, "v2loop")
	d.AddI(isa.R4, isa.R4, dctRound)
	d.SarI(isa.R4, isa.R4, dctShift)
	d.AddI(isa.R4, isa.R4, 128)
	d.BrI(isa.CondGE, isa.R4, 0, "noneg")
	d.MovImm(isa.R4, 0)
	d.Label("noneg")
	d.BrI(isa.CondLE, isa.R4, 255, "nocap")
	d.MovImm(isa.R4, 255)
	d.Label("nocap")
	// dst = img + (by*8+x)*16 + bx*8 + k
	d.MovSym(isa.R5, "bidx")
	d.Load(8, false, isa.R5, isa.R5, 0)
	d.AndI(isa.R6, isa.R5, 1) // bx
	d.ShrI(isa.R5, isa.R5, 1) // by
	d.ShlI(isa.R5, isa.R5, 3)
	d.Add(isa.R5, isa.R5, isa.R1)
	d.ShlI(isa.R5, isa.R5, 4)
	d.ShlI(isa.R6, isa.R6, 3)
	d.Add(isa.R5, isa.R5, isa.R6)
	d.Add(isa.R5, isa.R5, isa.R2)
	d.MovSym(isa.R6, "img")
	d.Add(isa.R5, isa.R6, isa.R5)
	d.Store(1, isa.R4, isa.R5, 0)
	d.AddI(isa.R2, isa.R2, 1)
	d.BrI(isa.CondLT, isa.R2, 8, "k2loop")
	d.AddI(isa.R1, isa.R1, 1)
	d.BrI(isa.CondLT, isa.R1, 8, "x2loop")
	d.Ret()

	f := p.Func("main")
	f.MovSym(isa.R1, "rp")
	f.MovImm(isa.R0, 0)
	f.Store(8, isa.R0, isa.R1, 0)
	f.MovSym(isa.R1, "bidx")
	f.Store(8, isa.R0, isa.R1, 0)

	f.Label("blkloop")
	// Clear Yc.
	f.MovSym(isa.R10, "Yc")
	f.MovImm(isa.R1, 0)
	f.MovImm(isa.R2, 0)
	f.Label("clr")
	f.ShlI(isa.R3, isa.R1, 3)
	f.Add(isa.R3, isa.R10, isa.R3)
	f.Store(8, isa.R2, isa.R3, 0)
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, 64, "clr")
	// Decode one block: i=r1 (zigzag position), rp in r9.
	f.MovSym(isa.R11, "stream")
	f.MovSym(isa.R8, "rp")
	f.Load(8, false, isa.R9, isa.R8, 0)
	f.MovImm(isa.R1, 0)
	f.Label("dec")
	f.Add(isa.R2, isa.R11, isa.R9)
	f.Load(1, false, isa.R3, isa.R2, 0) // run byte
	f.BrI(isa.CondEQ, isa.R3, jpegEOB, "blockdone")
	f.Add(isa.R1, isa.R1, isa.R3)       // skip run zeros
	f.Load(1, false, isa.R4, isa.R2, 1) // value low byte
	f.Load(1, false, isa.R5, isa.R2, 2) // value high byte
	f.ShlI(isa.R5, isa.R5, 8)
	f.Or(isa.R4, isa.R4, isa.R5)
	f.ShlI(isa.R4, isa.R4, 48) // sign-extend 16 → 64
	f.SarI(isa.R4, isa.R4, 48)
	f.AddI(isa.R9, isa.R9, 3)
	// Yc[zz[i]] = v * quant[zz[i]]
	f.MovSym(isa.R5, "zigzag")
	f.Add(isa.R5, isa.R5, isa.R1)
	f.Load(1, false, isa.R5, isa.R5, 0)
	f.MovSym(isa.R6, "quant")
	f.ShlI(isa.R7, isa.R5, 3)
	f.Add(isa.R6, isa.R6, isa.R7)
	f.Load(8, false, isa.R6, isa.R6, 0)
	f.Mul(isa.R4, isa.R4, isa.R6)
	f.Add(isa.R7, isa.R10, isa.R7)
	f.Store(8, isa.R4, isa.R7, 0)
	f.AddI(isa.R1, isa.R1, 1)
	f.Jmp("dec")
	f.Label("blockdone")
	f.AddI(isa.R9, isa.R9, 1) // consume EOB
	f.Store(8, isa.R9, isa.R8, 0)

	f.Call("idctblock")

	f.MovSym(isa.R1, "bidx")
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.Store(8, isa.R2, isa.R1, 0)
	f.BrI(isa.CondLT, isa.R2, jpegBlocks, "blkloop")

	emitWriteOut(f, "img", jpegW*jpegH)
	emitExit(f)
	return p
}
