package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// smooth / edge / corner: the SUSAN-style image kernels of MiBench over
// a 32×32 grayscale test image —
//
//   - smooth: 3×3 mean filter,
//   - edge:   Sobel gradient magnitude with threshold,
//   - corner: Moravec corner response (minimum SSD over four shifts)
//     with threshold.
//
// Each writes its result image (interior region) to the output file.

const (
	susanW = 32
	susanH = 32
)

func susanImage() []byte { return grayImage(susanW, susanH, 0x5a5a) }

// ---- smooth -------------------------------------------------------------------

func refSmooth() []byte {
	img := susanImage()
	out := make([]byte, (susanW-2)*(susanH-2))
	for y := 1; y < susanH-1; y++ {
		for x := 1; x < susanW-1; x++ {
			var s int64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					s += int64(img[(y+dy)*susanW+x+dx])
				}
			}
			out[(y-1)*(susanW-2)+x-1] = byte(s / 9)
		}
	}
	return out
}

func buildSmooth() *asm.Program {
	p := asm.NewProgram()
	p.Data("img", susanImage())
	p.Bss("out", (susanW-2)*(susanH-2))

	f := p.Func("main")
	f.MovSym(isa.R10, "img")
	f.MovSym(isa.R11, "out")
	f.MovImm(isa.R1, 1) // y
	f.Label("yloop")
	f.MovImm(isa.R2, 1) // x
	f.Label("xloop")
	f.MovImm(isa.R3, 0)  // sum
	f.MovImm(isa.R4, -1) // dy
	f.Label("dyloop")
	f.MovImm(isa.R5, -1) // dx
	f.Label("dxloop")
	f.Add(isa.R6, isa.R1, isa.R4)
	f.ShlI(isa.R6, isa.R6, 5) // (y+dy)*32
	f.Add(isa.R6, isa.R6, isa.R2)
	f.Add(isa.R6, isa.R6, isa.R5)
	f.Add(isa.R6, isa.R10, isa.R6)
	f.Load(1, false, isa.R7, isa.R6, 0)
	f.Add(isa.R3, isa.R3, isa.R7)
	f.AddI(isa.R5, isa.R5, 1)
	f.BrI(isa.CondLE, isa.R5, 1, "dxloop")
	f.AddI(isa.R4, isa.R4, 1)
	f.BrI(isa.CondLE, isa.R4, 1, "dyloop")
	f.DivI(isa.R3, isa.R3, 9)
	// out[(y-1)*30 + x-1]
	f.SubI(isa.R6, isa.R1, 1)
	f.MulI(isa.R6, isa.R6, susanW-2)
	f.Add(isa.R6, isa.R6, isa.R2)
	f.SubI(isa.R6, isa.R6, 1)
	f.Add(isa.R6, isa.R11, isa.R6)
	f.Store(1, isa.R3, isa.R6, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, susanW-1, "xloop")
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, susanH-1, "yloop")

	emitWriteOut(f, "out", (susanW-2)*(susanH-2))
	emitExit(f)
	return p
}

// ---- edge ---------------------------------------------------------------------

const edgeThreshold = 120

func refEdge() []byte {
	img := susanImage()
	px := func(x, y int) int64 { return int64(img[y*susanW+x]) }
	out := make([]byte, (susanW-2)*(susanH-2))
	for y := 1; y < susanH-1; y++ {
		for x := 1; x < susanW-1; x++ {
			gx := px(x+1, y-1) + 2*px(x+1, y) + px(x+1, y+1) -
				px(x-1, y-1) - 2*px(x-1, y) - px(x-1, y+1)
			gy := px(x-1, y+1) + 2*px(x, y+1) + px(x+1, y+1) -
				px(x-1, y-1) - 2*px(x, y-1) - px(x+1, y-1)
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			v := byte(0)
			if gx+gy > edgeThreshold {
				v = 255
			}
			out[(y-1)*(susanW-2)+x-1] = v
		}
	}
	return out
}

func buildEdge() *asm.Program {
	p := asm.NewProgram()
	p.Data("img", susanImage())
	// Sobel kernels as 9-entry tables, matched with pixel offsets.
	kx := []int64{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	ky := []int64{-1, -2, -1, 0, 0, 0, 1, 2, 1}
	p.Data("kx", le64s(kx))
	p.Data("ky", le64s(ky))
	p.Bss("out", (susanW-2)*(susanH-2))

	f := p.Func("main")
	f.MovSym(isa.R10, "img")
	f.MovSym(isa.R11, "out")
	f.MovImm(isa.R1, 1) // y
	f.Label("yloop")
	f.MovImm(isa.R2, 1) // x
	f.Label("xloop")
	f.MovImm(isa.R3, 0) // gx
	f.MovImm(isa.R4, 0) // gy
	f.MovImm(isa.R5, 0) // tap index 0..8
	f.Label("taps")
	// dy = tap/3 - 1, dx = tap%3 - 1
	f.DivI(isa.R6, isa.R5, 3)
	f.SubI(isa.R6, isa.R6, 1)
	f.RemI(isa.R7, isa.R5, 3)
	f.SubI(isa.R7, isa.R7, 1)
	f.Add(isa.R6, isa.R6, isa.R1)
	f.ShlI(isa.R6, isa.R6, 5)
	f.Add(isa.R6, isa.R6, isa.R2)
	f.Add(isa.R6, isa.R6, isa.R7)
	f.Add(isa.R6, isa.R10, isa.R6)
	f.Load(1, false, isa.R6, isa.R6, 0) // pixel
	f.ShlI(isa.R7, isa.R5, 3)
	f.MovSym(isa.R8, "kx")
	f.Add(isa.R8, isa.R8, isa.R7)
	f.Load(8, false, isa.R8, isa.R8, 0)
	f.Mul(isa.R8, isa.R8, isa.R6)
	f.Add(isa.R3, isa.R3, isa.R8)
	f.MovSym(isa.R8, "ky")
	f.Add(isa.R8, isa.R8, isa.R7)
	f.Load(8, false, isa.R8, isa.R8, 0)
	f.Mul(isa.R8, isa.R8, isa.R6)
	f.Add(isa.R4, isa.R4, isa.R8)
	f.AddI(isa.R5, isa.R5, 1)
	f.BrI(isa.CondLT, isa.R5, 9, "taps")
	// |gx| + |gy|
	f.BrI(isa.CondGE, isa.R3, 0, "gxpos")
	f.MovImm(isa.R6, 0)
	f.Sub(isa.R3, isa.R6, isa.R3)
	f.Label("gxpos")
	f.BrI(isa.CondGE, isa.R4, 0, "gypos")
	f.MovImm(isa.R6, 0)
	f.Sub(isa.R4, isa.R6, isa.R4)
	f.Label("gypos")
	f.Add(isa.R3, isa.R3, isa.R4)
	f.MovImm(isa.R5, 0)
	f.BrI(isa.CondLE, isa.R3, edgeThreshold, "store")
	f.MovImm(isa.R5, 255)
	f.Label("store")
	f.SubI(isa.R6, isa.R1, 1)
	f.MulI(isa.R6, isa.R6, susanW-2)
	f.Add(isa.R6, isa.R6, isa.R2)
	f.SubI(isa.R6, isa.R6, 1)
	f.Add(isa.R6, isa.R11, isa.R6)
	f.Store(1, isa.R5, isa.R6, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, susanW-1, "xloop")
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, susanH-1, "yloop")

	emitWriteOut(f, "out", (susanW-2)*(susanH-2))
	emitExit(f)
	return p
}

// ---- corner -------------------------------------------------------------------

const cornerThreshold = 900

// refCorner computes the Moravec response: for each interior pixel the
// minimum over four shift directions of the sum of squared differences
// across a 3×3 window, thresholded.
func refCorner() []byte {
	img := susanImage()
	px := func(x, y int) int64 { return int64(img[y*susanW+x]) }
	out := make([]byte, (susanW-4)*(susanH-4))
	shifts := [4][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}}
	for y := 2; y < susanH-2; y++ {
		for x := 2; x < susanW-2; x++ {
			minSSD := int64(1) << 62
			for _, sh := range shifts {
				var ssd int64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						d := px(x+dx, y+dy) - px(x+dx+sh[0], y+dy+sh[1])
						ssd += d * d
					}
				}
				if ssd < minSSD {
					minSSD = ssd
				}
			}
			v := byte(0)
			if minSSD > cornerThreshold {
				v = 255
			}
			out[(y-2)*(susanW-4)+x-2] = v
		}
	}
	return out
}

func buildCorner() *asm.Program {
	p := asm.NewProgram()
	p.Data("img", susanImage())
	// Shift table: four (dx,dy) pairs.
	p.Data("shifts", le64s([]int64{1, 0, 0, 1, 1, 1, 1, -1}))
	p.Bss("out", (susanW-4)*(susanH-4))

	f := p.Func("main")
	f.MovSym(isa.R10, "img")
	f.MovImm(isa.R1, 2) // y
	f.Label("yloop")
	f.MovImm(isa.R2, 2) // x
	f.Label("xloop")
	f.MovImm(isa.R3, 1<<62) // minSSD
	f.MovImm(isa.R4, 0)     // shift index
	f.Label("shloop")
	f.MovImm(isa.R5, 0)  // ssd
	f.MovImm(isa.R6, -1) // dy
	f.Label("dyloop")
	f.MovImm(isa.R7, -1) // dx
	f.Label("dxloop")
	// a = px(x+dx, y+dy)
	f.Add(isa.R8, isa.R1, isa.R6)
	f.ShlI(isa.R8, isa.R8, 5)
	f.Add(isa.R8, isa.R8, isa.R2)
	f.Add(isa.R8, isa.R8, isa.R7)
	f.Add(isa.R8, isa.R10, isa.R8)
	f.Load(1, false, isa.R9, isa.R8, 0)
	// b = px(x+dx+sx, y+dy+sy): reuse address a + sx + sy*32
	f.MovSym(isa.R0, "shifts")
	f.ShlI(isa.R11, isa.R4, 4)
	f.Add(isa.R0, isa.R0, isa.R11)
	f.Load(8, false, isa.R11, isa.R0, 0) // sx
	f.Add(isa.R8, isa.R8, isa.R11)
	f.Load(8, false, isa.R11, isa.R0, 8) // sy
	f.ShlI(isa.R11, isa.R11, 5)
	f.Add(isa.R8, isa.R8, isa.R11)
	f.Load(1, false, isa.R8, isa.R8, 0)
	f.Sub(isa.R9, isa.R9, isa.R8)
	f.Mul(isa.R9, isa.R9, isa.R9)
	f.Add(isa.R5, isa.R5, isa.R9)
	f.AddI(isa.R7, isa.R7, 1)
	f.BrI(isa.CondLE, isa.R7, 1, "dxloop")
	f.AddI(isa.R6, isa.R6, 1)
	f.BrI(isa.CondLE, isa.R6, 1, "dyloop")
	f.Br(isa.CondGE, isa.R5, isa.R3, "noupdate")
	f.Mov(isa.R3, isa.R5)
	f.Label("noupdate")
	f.AddI(isa.R4, isa.R4, 1)
	f.BrI(isa.CondLT, isa.R4, 4, "shloop")
	f.MovImm(isa.R5, 0)
	f.BrI(isa.CondLE, isa.R3, cornerThreshold, "store")
	f.MovImm(isa.R5, 255)
	f.Label("store")
	f.SubI(isa.R6, isa.R1, 2)
	f.MulI(isa.R6, isa.R6, susanW-4)
	f.Add(isa.R6, isa.R6, isa.R2)
	f.SubI(isa.R6, isa.R6, 2)
	f.MovSym(isa.R7, "out")
	f.Add(isa.R6, isa.R7, isa.R6)
	f.Store(1, isa.R5, isa.R6, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, susanW-2, "xloop")
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, susanH-2, "yloop")

	emitWriteOut(f, "out", (susanW-4)*(susanH-4))
	emitExit(f)
	return p
}
