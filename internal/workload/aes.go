package workload

import (
	"crypto/aes"

	"repro/internal/asm"
	"repro/internal/isa"
)

// caes: AES-128 ECB encryption of 16 blocks (256 bytes), the analog of
// MiBench's AES workload. The S-box, xtime table, combined
// SubBytes+ShiftRows index table and expanded round keys are data; the
// rounds themselves (byte substitution, row shifts, MixColumns over
// GF(2^8), round-key addition) execute in the IR. The Go reference is
// the standard library's crypto/aes, which pins the implementation to
// the real cipher. The output file is the ciphertext.

const aesBlocks = 16

var aesKey = []byte{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

func aesPlaintext() []byte {
	return newLCG(0xae5).bytes(aesBlocks * 16)
}

func refAES() []byte {
	c, err := aes.NewCipher(aesKey)
	if err != nil {
		panic(err)
	}
	pt := aesPlaintext()
	out := make([]byte, len(pt))
	for i := 0; i < len(pt); i += 16 {
		c.Encrypt(out[i:i+16], pt[i:i+16])
	}
	return out
}

// aesSbox is the AES S-box.
var aesSbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// aesXtime is the GF(2^8) doubling table.
func aesXtime() []byte {
	t := make([]byte, 256)
	for i := 0; i < 256; i++ {
		v := i << 1
		if i&0x80 != 0 {
			v ^= 0x11b
		}
		t[i] = byte(v)
	}
	return t
}

// aesShiftIdx[i] is the source byte index feeding output byte i of the
// combined SubBytes+ShiftRows step (column-major state layout).
func aesShiftIdx() []byte {
	idx := make([]byte, 16)
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			idx[c*4+r] = byte(((c+r)%4)*4 + r)
		}
	}
	return idx
}

// aesRoundKeys expands the key to the 11 round keys (176 bytes).
func aesRoundKeys() []byte {
	rcon := byte(1)
	w := make([]byte, 176)
	copy(w, aesKey)
	for i := 16; i < 176; i += 4 {
		t := [4]byte{w[i-4], w[i-3], w[i-2], w[i-1]}
		if i%16 == 0 {
			t = [4]byte{aesSbox[t[1]] ^ rcon, aesSbox[t[2]], aesSbox[t[3]], aesSbox[t[0]]}
			rcon = aesXtime()[rcon]
		}
		for j := 0; j < 4; j++ {
			w[i+j] = w[i-16+j] ^ t[j]
		}
	}
	return w
}

func buildAES() *asm.Program {
	p := asm.NewProgram()
	p.Data("pt", aesPlaintext())
	p.Data("sbox", aesSbox[:])
	p.Data("xt", aesXtime())
	p.Data("sridx", aesShiftIdx())
	p.Data("rk", aesRoundKeys())
	p.Bss("st", 16)
	p.Bss("st2", 16)
	p.Bss("ct", aesBlocks*16)
	p.Bss("blkv", 8)

	// subshift: st2[i] = sbox[st[sridx[i]]]
	ss := p.Func("subshift")
	ss.MovSym(isa.R10, "st")
	ss.MovSym(isa.R11, "st2")
	ss.MovSym(isa.R4, "sridx")
	ss.MovSym(isa.R5, "sbox")
	ss.MovImm(isa.R1, 0)
	ss.Label("loop")
	ss.Add(isa.R2, isa.R4, isa.R1)
	ss.Load(1, false, isa.R2, isa.R2, 0) // src index
	ss.Add(isa.R2, isa.R10, isa.R2)
	ss.Load(1, false, isa.R2, isa.R2, 0) // st[src]
	ss.Add(isa.R2, isa.R5, isa.R2)
	ss.Load(1, false, isa.R2, isa.R2, 0) // sbox[...]
	ss.Add(isa.R3, isa.R11, isa.R1)
	ss.Store(1, isa.R2, isa.R3, 0)
	ss.AddI(isa.R1, isa.R1, 1)
	ss.BrI(isa.CondLT, isa.R1, 16, "loop")
	ss.Ret()

	// mixcolumns: st[c] = MixColumn(st2[c]) for the four columns.
	mc := p.Func("mixcolumns")
	mc.MovSym(isa.R10, "st2")
	mc.MovSym(isa.R11, "st")
	mc.MovSym(isa.R9, "xt")
	mc.MovImm(isa.R1, 0) // column byte base 0,4,8,12
	mc.Label("col")
	// load a0..a3 into r2..r5
	mc.Add(isa.R8, isa.R10, isa.R1)
	mc.Load(1, false, isa.R2, isa.R8, 0)
	mc.Load(1, false, isa.R3, isa.R8, 1)
	mc.Load(1, false, isa.R4, isa.R8, 2)
	mc.Load(1, false, isa.R5, isa.R8, 3)
	// b0 = xt[a0] ^ xt[a1] ^ a1 ^ a2 ^ a3
	mc.Add(isa.R6, isa.R9, isa.R2)
	mc.Load(1, false, isa.R6, isa.R6, 0)
	mc.Add(isa.R7, isa.R9, isa.R3)
	mc.Load(1, false, isa.R7, isa.R7, 0)
	mc.Xor(isa.R6, isa.R6, isa.R7)
	mc.Xor(isa.R6, isa.R6, isa.R3)
	mc.Xor(isa.R6, isa.R6, isa.R4)
	mc.Xor(isa.R6, isa.R6, isa.R5)
	mc.Add(isa.R0, isa.R11, isa.R1)
	mc.Store(1, isa.R6, isa.R0, 0)
	// b1 = a0 ^ xt[a1] ^ xt[a2] ^ a2 ^ a3
	mc.Add(isa.R6, isa.R9, isa.R3)
	mc.Load(1, false, isa.R6, isa.R6, 0)
	mc.Xor(isa.R6, isa.R6, isa.R2)
	mc.Add(isa.R7, isa.R9, isa.R4)
	mc.Load(1, false, isa.R7, isa.R7, 0)
	mc.Xor(isa.R6, isa.R6, isa.R7)
	mc.Xor(isa.R6, isa.R6, isa.R4)
	mc.Xor(isa.R6, isa.R6, isa.R5)
	mc.Store(1, isa.R6, isa.R0, 1)
	// b2 = a0 ^ a1 ^ xt[a2] ^ xt[a3] ^ a3
	mc.Add(isa.R6, isa.R9, isa.R4)
	mc.Load(1, false, isa.R6, isa.R6, 0)
	mc.Xor(isa.R6, isa.R6, isa.R2)
	mc.Xor(isa.R6, isa.R6, isa.R3)
	mc.Add(isa.R7, isa.R9, isa.R5)
	mc.Load(1, false, isa.R7, isa.R7, 0)
	mc.Xor(isa.R6, isa.R6, isa.R7)
	mc.Xor(isa.R6, isa.R6, isa.R5)
	mc.Store(1, isa.R6, isa.R0, 2)
	// b3 = xt[a0] ^ a0 ^ a1 ^ a2 ^ xt[a3]
	mc.Add(isa.R6, isa.R9, isa.R2)
	mc.Load(1, false, isa.R6, isa.R6, 0)
	mc.Xor(isa.R6, isa.R6, isa.R2)
	mc.Xor(isa.R6, isa.R6, isa.R3)
	mc.Xor(isa.R6, isa.R6, isa.R4)
	mc.Add(isa.R7, isa.R9, isa.R5)
	mc.Load(1, false, isa.R7, isa.R7, 0)
	mc.Xor(isa.R6, isa.R6, isa.R7)
	mc.Store(1, isa.R6, isa.R0, 3)
	mc.AddI(isa.R1, isa.R1, 4)
	mc.BrI(isa.CondLT, isa.R1, 16, "col")
	mc.Ret()

	// addkey(r0 = round): st[i] ^= rk[round*16+i], from st in place.
	ak := p.Func("addkey")
	ak.MovSym(isa.R10, "st")
	ak.MovSym(isa.R11, "rk")
	ak.ShlI(isa.R2, isa.R0, 4)
	ak.Add(isa.R11, isa.R11, isa.R2)
	ak.MovImm(isa.R1, 0)
	ak.Label("loop")
	ak.Add(isa.R2, isa.R10, isa.R1)
	ak.Load(1, false, isa.R3, isa.R2, 0)
	ak.Add(isa.R4, isa.R11, isa.R1)
	ak.Load(1, false, isa.R4, isa.R4, 0)
	ak.Xor(isa.R3, isa.R3, isa.R4)
	ak.Store(1, isa.R3, isa.R2, 0)
	ak.AddI(isa.R1, isa.R1, 1)
	ak.BrI(isa.CondLT, isa.R1, 16, "loop")
	ak.Ret()

	// copy16(r0 = src, r1 = dst)
	cp := p.Func("copy16")
	cp.MovImm(isa.R2, 0)
	cp.Label("loop")
	cp.Add(isa.R3, isa.R0, isa.R2)
	cp.Load(1, false, isa.R4, isa.R3, 0)
	cp.Add(isa.R3, isa.R1, isa.R2)
	cp.Store(1, isa.R4, isa.R3, 0)
	cp.AddI(isa.R2, isa.R2, 1)
	cp.BrI(isa.CondLT, isa.R2, 16, "loop")
	cp.Ret()

	f := p.Func("main")
	f.MovSym(isa.R1, "blkv")
	f.MovImm(isa.R0, 0)
	f.Store(8, isa.R0, isa.R1, 0)

	f.Label("blkloop")
	// st = pt[blk*16]
	f.MovSym(isa.R1, "blkv")
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.ShlI(isa.R2, isa.R2, 4)
	f.MovSym(isa.R0, "pt")
	f.Add(isa.R0, isa.R0, isa.R2)
	f.MovSym(isa.R1, "st")
	f.Call("copy16")
	// AddRoundKey 0.
	f.MovImm(isa.R0, 0)
	f.Call("addkey")
	// Rounds 1..9: store the round counter on the stack across calls.
	f.MovImm(isa.R5, 1)
	f.Label("rounds")
	f.SubI(isa.SP, isa.SP, 8)
	f.Store(8, isa.R5, isa.SP, 0)
	f.Call("subshift")
	f.Call("mixcolumns")
	f.Load(8, false, isa.R0, isa.SP, 0)
	f.Call("addkey")
	f.Load(8, false, isa.R5, isa.SP, 0)
	f.AddI(isa.SP, isa.SP, 8)
	f.AddI(isa.R5, isa.R5, 1)
	f.BrI(isa.CondLT, isa.R5, 10, "rounds")
	// Final round: SubBytes+ShiftRows, copy st2 → st, AddRoundKey 10.
	f.Call("subshift")
	f.MovSym(isa.R0, "st2")
	f.MovSym(isa.R1, "st")
	f.Call("copy16")
	f.MovImm(isa.R0, 10)
	f.Call("addkey")
	// ct[blk*16] = st
	f.MovSym(isa.R1, "blkv")
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.ShlI(isa.R3, isa.R2, 4)
	f.MovSym(isa.R0, "st")
	f.MovSym(isa.R1, "ct")
	f.Add(isa.R1, isa.R1, isa.R3)
	f.Call("copy16")
	// next block
	f.MovSym(isa.R1, "blkv")
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.Store(8, isa.R2, isa.R1, 0)
	f.BrI(isa.CondLT, isa.R2, aesBlocks, "blkloop")

	emitWriteOut(f, "ct", aesBlocks*16)
	emitExit(f)
	return p
}
