package workload

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/interp"
)

// TestWorkloadsMatchReferenceOnBothISAs is the central functional
// validation: every benchmark, compiled for both ISAs and executed on
// the functional model, must reproduce its pure-Go reference output
// byte for byte with a clean exit.
func TestWorkloadsMatchReferenceOnBothISAs(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want := w.Reference()
			if len(want) == 0 {
				t.Fatal("empty reference output")
			}
			for _, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
				img, err := w.Image(tgt)
				if err != nil {
					t.Fatalf("%v: %v", tgt, err)
				}
				res := interp.Run(img, 100_000_000)
				if res.Outcome != interp.Completed {
					t.Fatalf("%v: outcome %v (exc %v) after %d steps",
						tgt, res.Outcome, res.FatalExc, res.Steps)
				}
				if res.ExitCode != 0 {
					t.Fatalf("%v: exit %d", tgt, res.ExitCode)
				}
				if len(res.Events) != 0 {
					t.Fatalf("%v: kernel events %v", tgt, res.Events)
				}
				if !bytes.Equal(res.Output, want) {
					limit := len(want)
					if limit > 64 {
						limit = 64
					}
					got := res.Output
					if len(got) > limit {
						got = got[:limit]
					}
					t.Fatalf("%v: output mismatch\n got %x (%d bytes)\nwant %x (%d bytes)",
						tgt, got, len(res.Output), want[:limit], len(want))
				}
				t.Logf("%v: %d instructions, %d uops", tgt, res.Steps, res.Uops)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	wantNames := []string{"djpeg", "search", "smooth", "edge", "corner",
		"sha", "fft", "qsort", "cjpeg", "caes"}
	if len(names) != 10 {
		t.Fatalf("want the paper's 10 benchmarks, got %d", len(names))
	}
	for i, n := range wantNames {
		if names[i] != n {
			t.Errorf("benchmark %d = %q, want %q", i, names[i], n)
		}
	}
	if _, err := ByName("qsort"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestReferenceDeterminism(t *testing.T) {
	for _, w := range All() {
		a, b := w.Reference(), w.Reference()
		if !bytes.Equal(a, b) {
			t.Errorf("%s: nondeterministic reference", w.Name)
		}
	}
}
