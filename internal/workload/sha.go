package workload

import (
	"crypto/sha1"

	"repro/internal/asm"
	"repro/internal/isa"
)

// sha: SHA-1 of a 2 KiB message, the analog of MiBench's sha. The hash
// is computed from scratch in the IR (message schedule, 80 rounds per
// block); the Go reference is the standard library's crypto/sha1, which
// pins the assembly implementation to the real algorithm. The output
// file is the 20-byte digest.

const shaMsgLen = 2048

func shaMessage() []byte {
	return newLCG(0x51a1).bytes(shaMsgLen)
}

// shaPadded returns the message with SHA-1 padding applied (done in Go;
// the IR consumes whole blocks).
func shaPadded() []byte {
	msg := shaMessage()
	l := len(msg)
	msg = append(msg, 0x80)
	for len(msg)%64 != 56 {
		msg = append(msg, 0)
	}
	bits := uint64(l) * 8
	for i := 7; i >= 0; i-- {
		msg = append(msg, byte(bits>>(8*i)))
	}
	return msg
}

func refSHA() []byte {
	d := sha1.Sum(shaMessage())
	return d[:]
}

func buildSHA() *asm.Program {
	p := asm.NewProgram()
	padded := shaPadded()
	nblocks := int64(len(padded) / 64)
	p.Data("msg", padded)
	p.Bss("w", 80*4)
	p.Bss("hst", 5*8)
	p.Bss("out", 20)

	f := p.Func("main")
	mask := isa.R11
	wbase := isa.R10
	blk := isa.R8
	f.MovImm(mask, 0xFFFFFFFF)
	f.MovSym(wbase, "w")
	// Initialize the five chaining values.
	f.MovSym(isa.R9, "hst")
	for i, h := range []int64{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0} {
		f.MovImm(isa.R0, h)
		f.Store(8, isa.R0, isa.R9, int32(i*8))
	}
	f.MovImm(blk, 0)

	f.Label("blockloop")
	// r1 = &msg[blk*64]
	f.MovSym(isa.R1, "msg")
	f.ShlI(isa.R0, blk, 6)
	f.Add(isa.R1, isa.R1, isa.R0)

	// Schedule w[0..15]: big-endian words of the block.
	f.MovImm(isa.R2, 0)
	f.Label("w16")
	f.ShlI(isa.R3, isa.R2, 2)
	f.Add(isa.R3, isa.R1, isa.R3)
	f.Load(4, false, isa.R4, isa.R3, 0)
	// byte swap r4
	f.AndI(isa.R5, isa.R4, 0xff)
	f.ShlI(isa.R5, isa.R5, 24)
	f.ShrI(isa.R6, isa.R4, 8)
	f.AndI(isa.R6, isa.R6, 0xff)
	f.ShlI(isa.R6, isa.R6, 16)
	f.ShrI(isa.R7, isa.R4, 16)
	f.AndI(isa.R7, isa.R7, 0xff)
	f.ShlI(isa.R7, isa.R7, 8)
	f.ShrI(isa.R9, isa.R4, 24)
	f.AndI(isa.R9, isa.R9, 0xff)
	f.Or(isa.R4, isa.R5, isa.R6)
	f.Or(isa.R4, isa.R4, isa.R7)
	f.Or(isa.R4, isa.R4, isa.R9)
	f.ShlI(isa.R3, isa.R2, 2)
	f.Add(isa.R3, wbase, isa.R3)
	f.Store(4, isa.R4, isa.R3, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, 16, "w16")

	// Schedule w[16..79]: rotl1 of the xor of four earlier words.
	f.Label("w80")
	f.ShlI(isa.R3, isa.R2, 2)
	f.Add(isa.R3, wbase, isa.R3)
	f.Load(4, false, isa.R4, isa.R3, -12) // w[t-3]
	f.Load(4, false, isa.R5, isa.R3, -32) // w[t-8]
	f.Xor(isa.R4, isa.R4, isa.R5)
	f.Load(4, false, isa.R5, isa.R3, -56) // w[t-14]
	f.Xor(isa.R4, isa.R4, isa.R5)
	f.Load(4, false, isa.R5, isa.R3, -64) // w[t-16]
	f.Xor(isa.R4, isa.R4, isa.R5)
	f.ShlI(isa.R5, isa.R4, 1)
	f.ShrI(isa.R4, isa.R4, 31)
	f.Or(isa.R4, isa.R4, isa.R5)
	f.And(isa.R4, isa.R4, mask)
	f.Store(4, isa.R4, isa.R3, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, 80, "w80")

	// Load chaining values into a..e = r2..r6.
	f.MovSym(isa.R9, "hst")
	f.Load(8, false, isa.R2, isa.R9, 0)
	f.Load(8, false, isa.R3, isa.R9, 8)
	f.Load(8, false, isa.R4, isa.R9, 16)
	f.Load(8, false, isa.R5, isa.R9, 24)
	f.Load(8, false, isa.R6, isa.R9, 32)

	// 80 rounds, t in r7.
	f.MovImm(isa.R7, 0)
	f.Label("rounds")
	// f-value in r1, k folded into the temp sum.
	f.BrI(isa.CondGE, isa.R7, 20, "q2")
	f.And(isa.R1, isa.R3, isa.R4) // b&c
	f.Xor(isa.R9, isa.R3, mask)   // ~b
	f.And(isa.R9, isa.R9, isa.R5) // ~b & d
	f.Or(isa.R1, isa.R1, isa.R9)
	f.MovImm(isa.R9, 0x5A827999)
	f.Jmp("havef")
	f.Label("q2")
	f.BrI(isa.CondGE, isa.R7, 40, "q3")
	f.Xor(isa.R1, isa.R3, isa.R4)
	f.Xor(isa.R1, isa.R1, isa.R5)
	f.MovImm(isa.R9, 0x6ED9EBA1)
	f.Jmp("havef")
	f.Label("q3")
	f.BrI(isa.CondGE, isa.R7, 60, "q4")
	f.And(isa.R1, isa.R3, isa.R4)
	f.And(isa.R9, isa.R3, isa.R5)
	f.Or(isa.R1, isa.R1, isa.R9)
	f.And(isa.R9, isa.R4, isa.R5)
	f.Or(isa.R1, isa.R1, isa.R9)
	f.MovImm(isa.R9, 0x8F1BBCDC)
	f.Jmp("havef")
	f.Label("q4")
	f.Xor(isa.R1, isa.R3, isa.R4)
	f.Xor(isa.R1, isa.R1, isa.R5)
	f.MovImm(isa.R9, 0xCA62C1D6)
	f.Label("havef")
	// temp = rotl5(a) + f + e + k + w[t]
	f.ShlI(isa.R0, isa.R2, 5)
	f.Add(isa.R1, isa.R1, isa.R0)
	f.ShrI(isa.R0, isa.R2, 27)
	f.Add(isa.R1, isa.R1, isa.R0)
	f.Add(isa.R1, isa.R1, isa.R6)
	f.Add(isa.R1, isa.R1, isa.R9)
	f.ShlI(isa.R9, isa.R7, 2)
	f.Add(isa.R9, wbase, isa.R9)
	f.Load(4, false, isa.R9, isa.R9, 0)
	f.Add(isa.R1, isa.R1, isa.R9)
	f.And(isa.R1, isa.R1, mask)
	// e=d; d=c; c=rotl30(b); b=a; a=temp
	f.Mov(isa.R6, isa.R5)
	f.Mov(isa.R5, isa.R4)
	f.ShlI(isa.R9, isa.R3, 30)
	f.ShrI(isa.R0, isa.R3, 2)
	f.Or(isa.R9, isa.R9, isa.R0)
	f.And(isa.R4, isa.R9, mask)
	f.Mov(isa.R3, isa.R2)
	f.Mov(isa.R2, isa.R1)
	f.AddI(isa.R7, isa.R7, 1)
	f.BrI(isa.CondLT, isa.R7, 80, "rounds")

	// Fold the block into the chaining values.
	f.MovSym(isa.R9, "hst")
	for i, r := range []isa.Reg{isa.R2, isa.R3, isa.R4, isa.R5, isa.R6} {
		f.Load(8, false, isa.R0, isa.R9, int32(i*8))
		f.Add(isa.R0, isa.R0, r)
		f.And(isa.R0, isa.R0, mask)
		f.Store(8, isa.R0, isa.R9, int32(i*8))
	}
	f.AddI(blk, blk, 1)
	f.BrI(isa.CondLT, blk, nblocks, "blockloop")

	// Emit the big-endian digest.
	f.MovSym(isa.R9, "hst")
	f.MovSym(isa.R1, "out")
	f.MovImm(isa.R2, 0)
	f.Label("emit")
	f.ShlI(isa.R3, isa.R2, 3)
	f.Add(isa.R3, isa.R9, isa.R3)
	f.Load(8, false, isa.R4, isa.R3, 0)
	// byte swap r4 (32-bit) into r5
	f.AndI(isa.R5, isa.R4, 0xff)
	f.ShlI(isa.R5, isa.R5, 24)
	f.ShrI(isa.R6, isa.R4, 8)
	f.AndI(isa.R6, isa.R6, 0xff)
	f.ShlI(isa.R6, isa.R6, 16)
	f.Or(isa.R5, isa.R5, isa.R6)
	f.ShrI(isa.R6, isa.R4, 16)
	f.AndI(isa.R6, isa.R6, 0xff)
	f.ShlI(isa.R6, isa.R6, 8)
	f.Or(isa.R5, isa.R5, isa.R6)
	f.ShrI(isa.R6, isa.R4, 24)
	f.AndI(isa.R6, isa.R6, 0xff)
	f.Or(isa.R5, isa.R5, isa.R6)
	f.ShlI(isa.R3, isa.R2, 2)
	f.Add(isa.R3, isa.R1, isa.R3)
	f.Store(4, isa.R5, isa.R3, 0)
	f.AddI(isa.R2, isa.R2, 1)
	f.BrI(isa.CondLT, isa.R2, 5, "emit")

	emitWriteOut(f, "out", 20)
	emitExit(f)
	return p
}
