// Package workload provides the ten MiBench-analog benchmarks of the
// paper's evaluation (§IV.B): djpeg, search, smooth, edge, corner, sha,
// fft, qsort, cjpeg and caes — re-implemented in the portable assembly IR
// so that one source compiles to both synthetic ISAs, plus a pure-Go
// reference model per benchmark that computes the expected output file.
//
// The reference models double as golden outputs for the injection
// classification and as cross-validation for the simulators: a fault-free
// run of any simulator must produce exactly the reference bytes.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Workload is one benchmark.
type Workload struct {
	// Name matches the paper's benchmark names.
	Name string
	// Build constructs the IR program.
	Build func() *asm.Program
	// Reference computes the expected output file contents.
	Reference func() []byte
}

// All returns the ten benchmarks in the paper's order of presentation.
func All() []Workload {
	return []Workload{
		{Name: "djpeg", Build: buildDJPEG, Reference: refDJPEG},
		{Name: "search", Build: buildSearch, Reference: refSearch},
		{Name: "smooth", Build: buildSmooth, Reference: refSmooth},
		{Name: "edge", Build: buildEdge, Reference: refEdge},
		{Name: "corner", Build: buildCorner, Reference: refCorner},
		{Name: "sha", Build: buildSHA, Reference: refSHA},
		{Name: "fft", Build: buildFFT, Reference: refFFT},
		{Name: "qsort", Build: buildQsort, Reference: refQsort},
		{Name: "cjpeg", Build: buildCJPEG, Reference: refCJPEG},
		{Name: "caes", Build: buildAES, Reference: refAES},
	}
}

// Names returns the benchmark names in order.
func Names() []string {
	var ns []string
	for _, w := range All() {
		ns = append(ns, w.Name)
	}
	return ns
}

// ByName looks a benchmark up.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// Image builds and links the benchmark for a target ISA.
func (w Workload) Image(t asm.Target) (*asm.Image, error) {
	img, err := w.Build().Build(t)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return img, nil
}

// ---- Shared emit helpers ------------------------------------------------------

// emitWriteOut appends a write(sym, n) syscall; clobbers R0–R2.
func emitWriteOut(f *asm.Func, sym string, n int64) {
	f.MovImm(isa.R0, 1)
	f.MovSym(isa.R1, sym)
	f.MovImm(isa.R2, n)
	f.Syscall()
}

// emitExit appends exit(0); clobbers R0–R1.
func emitExit(f *asm.Func) {
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()
}

// ---- Deterministic input generation --------------------------------------------

// lcg is the shared input generator: a 64-bit LCG with splitmix-style
// output scrambling, evaluated in Go at build time so both ISAs and the
// reference model see identical bytes.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	z := g.s
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	return z
}

func (g *lcg) bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(g.next())
	}
	return out
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func le64s(vs []int64) []byte {
	var out []byte
	for _, v := range vs {
		out = append(out, le64(uint64(v))...)
	}
	return out
}

// grayImage generates a deterministic pseudo-photographic gray image:
// smooth gradients plus texture plus a few hard geometric edges, so the
// smoothing/edge/corner kernels have meaningful features to find.
func grayImage(w, h int, seed uint64) []byte {
	g := newLCG(seed)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 40 + 3*x + 2*y // gradient
			if x > w/3 && x < 2*w/3 && y > h/3 && y < 2*h/3 {
				v += 90 // bright box: edges and corners
			}
			if (x+y)%7 == 0 {
				v += 12 // diagonal texture
			}
			v += int(g.next() % 9) // noise
			if v > 255 {
				v = 255
			}
			img[y*w+x] = byte(v)
		}
	}
	return img
}

// sortInt64 sorts a copy (reference model for qsort).
func sortInt64(in []int64) []int64 {
	out := make([]int64, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
