package workload

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// qsort: recursive in-place quicksort of 1024 signed 64-bit keys
// (Lomuto partition), the analog of MiBench's qsort. The output file is
// the sorted array.

const qsortN = 1024

func qsortInput() []int64 {
	g := newLCG(0x9b4c)
	keys := make([]int64, qsortN)
	for i := range keys {
		keys[i] = int64(g.next())
	}
	return keys
}

func refQsort() []byte {
	return le64s(sortInt64(qsortInput()))
}

func buildQsort() *asm.Program {
	p := asm.NewProgram()
	p.Data("arr", le64s(qsortInput()))

	// qsort(r0=lo, r1=hi): sorts arr[lo..hi] inclusive.
	q := p.Func("qsort")
	q.Br(isa.CondGE, isa.R0, isa.R1, "done")
	q.MovSym(isa.R10, "arr")
	// pivot = arr[hi]
	q.ShlI(isa.R2, isa.R1, 3)
	q.Add(isa.R2, isa.R10, isa.R2)
	q.Load(8, false, isa.R3, isa.R2, 0)
	// i = lo-1 (r4), j = lo (r5)
	q.SubI(isa.R4, isa.R0, 1)
	q.Mov(isa.R5, isa.R0)
	q.Label("loopj")
	q.Br(isa.CondGE, isa.R5, isa.R1, "endpart")
	q.ShlI(isa.R6, isa.R5, 3)
	q.Add(isa.R6, isa.R10, isa.R6)
	q.Load(8, false, isa.R7, isa.R6, 0) // arr[j]
	q.Br(isa.CondGT, isa.R7, isa.R3, "skip")
	q.AddI(isa.R4, isa.R4, 1)
	q.ShlI(isa.R8, isa.R4, 3)
	q.Add(isa.R8, isa.R10, isa.R8)
	q.Load(8, false, isa.R9, isa.R8, 0) // arr[i]
	q.Store(8, isa.R7, isa.R8, 0)       // arr[i] = arr[j]
	q.Store(8, isa.R9, isa.R6, 0)       // arr[j] = old arr[i]
	q.Label("skip")
	q.AddI(isa.R5, isa.R5, 1)
	q.Jmp("loopj")
	q.Label("endpart")
	// p = i+1; swap arr[p], arr[hi]
	q.AddI(isa.R4, isa.R4, 1)
	q.ShlI(isa.R6, isa.R4, 3)
	q.Add(isa.R6, isa.R10, isa.R6)
	q.Load(8, false, isa.R7, isa.R6, 0) // arr[p]
	q.Load(8, false, isa.R9, isa.R2, 0) // arr[hi]
	q.Store(8, isa.R9, isa.R6, 0)
	q.Store(8, isa.R7, isa.R2, 0)
	// Recurse left: qsort(lo, p-1); save p and hi across the call.
	q.SubI(isa.SP, isa.SP, 16)
	q.Store(8, isa.R4, isa.SP, 0) // p
	q.Store(8, isa.R1, isa.SP, 8) // hi
	q.SubI(isa.R1, isa.R4, 1)
	q.Call("qsort")
	// Recurse right: qsort(p+1, hi).
	q.Load(8, false, isa.R4, isa.SP, 0)
	q.Load(8, false, isa.R1, isa.SP, 8)
	q.AddI(isa.SP, isa.SP, 16)
	q.AddI(isa.R0, isa.R4, 1)
	q.Call("qsort")
	q.Label("done")
	q.Ret()

	f := p.Func("main")
	f.MovImm(isa.R0, 0)
	f.MovImm(isa.R1, qsortN-1)
	f.Call("qsort")
	emitWriteOut(f, "arr", qsortN*8)
	emitExit(f)
	return p
}
