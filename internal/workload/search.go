package workload

import (
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// search: Boyer-Moore-Horspool substring search of eight patterns over a
// 4 KiB text, the analog of MiBench's (office) string search. For every
// pattern the output file records the number of occurrences and the
// first match position.

const searchTextLen = 4096

var searchWords = []string{
	"fault", "injection", "micro", "architectural", "simulator", "cache",
	"register", "pipeline", "branch", "queue", "transient", "masked",
	"silent", "corruption", "vulnerability", "reliability", "the", "and",
	"of", "differential",
}

var searchPatterns = []string{
	"fault", "cache line", "pipeline", "notpresent",
	"masked", "silent corruption", "the", "queue",
}

func searchText() []byte {
	g := newLCG(0x5ea9c4)
	var b strings.Builder
	for b.Len() < searchTextLen {
		w := searchWords[g.next()%uint64(len(searchWords))]
		b.WriteString(w)
		if g.next()%8 == 0 {
			b.WriteString(" line")
		}
		if g.next()%23 == 0 {
			b.WriteString(" silent corruption")
		}
		b.WriteByte(' ')
	}
	return []byte(b.String()[:searchTextLen])
}

// horspool is the exact algorithm the IR implements: all matches
// (including overlapping), advancing by the Horspool shift.
func horspool(text, pat []byte) (count uint64, first uint64) {
	m, n := len(pat), len(text)
	first = ^uint64(0)
	var shift [256]int
	for i := range shift {
		shift[i] = m
	}
	for i := 0; i < m-1; i++ {
		shift[pat[i]] = m - 1 - i
	}
	pos := 0
	for pos <= n-m {
		k := 0
		for k < m && text[pos+k] == pat[k] {
			k++
		}
		if k == m {
			count++
			if first == ^uint64(0) {
				first = uint64(pos)
			}
		}
		pos += shift[text[pos+m-1]]
	}
	return count, first
}

func refSearch() []byte {
	text := searchText()
	var out []byte
	for _, p := range searchPatterns {
		c, f := horspool(text, []byte(p))
		out = append(out, le64(c)...)
		out = append(out, le64(f)...)
	}
	return out
}

func buildSearch() *asm.Program {
	p := asm.NewProgram()
	text := searchText()
	p.Data("text", text)
	// Patterns: concatenated bytes plus (offset, length) tables.
	var pats []byte
	var offs, lens []int64
	for _, s := range searchPatterns {
		offs = append(offs, int64(len(pats)))
		lens = append(lens, int64(len(s)))
		pats = append(pats, s...)
	}
	p.Data("pats", pats)
	p.Data("poff", le64s(offs))
	p.Data("plen", le64s(lens))
	p.Bss("shift", 256*8)
	p.Bss("out", int(len(searchPatterns))*16)
	p.Bss("pidx", 8)

	f := p.Func("main")
	f.MovSym(isa.R1, "pidx")
	f.MovImm(isa.R0, 0)
	f.Store(8, isa.R0, isa.R1, 0)

	f.Label("patloop")
	// r10 = pattern base, r11 = m (length).
	f.MovSym(isa.R1, "pidx")
	f.Load(8, false, isa.R1, isa.R1, 0)
	f.ShlI(isa.R2, isa.R1, 3)
	f.MovSym(isa.R3, "poff")
	f.Add(isa.R3, isa.R3, isa.R2)
	f.Load(8, false, isa.R10, isa.R3, 0)
	f.MovSym(isa.R3, "pats")
	f.Add(isa.R10, isa.R3, isa.R10)
	f.MovSym(isa.R3, "plen")
	f.Add(isa.R3, isa.R3, isa.R2)
	f.Load(8, false, isa.R11, isa.R3, 0)

	// Build the shift table: shift[c] = m, then m-1-i for pattern heads.
	f.MovSym(isa.R2, "shift")
	f.MovImm(isa.R3, 0)
	f.Label("tinit")
	f.ShlI(isa.R4, isa.R3, 3)
	f.Add(isa.R4, isa.R2, isa.R4)
	f.Store(8, isa.R11, isa.R4, 0)
	f.AddI(isa.R3, isa.R3, 1)
	f.BrI(isa.CondLT, isa.R3, 256, "tinit")
	f.MovImm(isa.R3, 0)
	f.SubI(isa.R5, isa.R11, 1) // m-1
	f.Label("tfill")
	f.Br(isa.CondGE, isa.R3, isa.R5, "tdone")
	f.Add(isa.R4, isa.R10, isa.R3)
	f.Load(1, false, isa.R4, isa.R4, 0) // pat[i]
	f.ShlI(isa.R4, isa.R4, 3)
	f.Add(isa.R4, isa.R2, isa.R4)
	f.Sub(isa.R6, isa.R5, isa.R3) // m-1-i
	f.Store(8, isa.R6, isa.R4, 0)
	f.AddI(isa.R3, isa.R3, 1)
	f.Jmp("tfill")
	f.Label("tdone")

	// Scan: pos=r3, count=r6, first=r7, textbase=r8, limit=r9.
	f.MovSym(isa.R8, "text")
	f.MovImm(isa.R9, searchTextLen)
	f.Sub(isa.R9, isa.R9, isa.R11) // n-m
	f.MovImm(isa.R3, 0)
	f.MovImm(isa.R6, 0)
	f.MovImm(isa.R7, -1)
	f.Label("scan")
	f.Br(isa.CondGT, isa.R3, isa.R9, "scandone")
	// Compare pat against text[pos..]: k=r4.
	f.MovImm(isa.R4, 0)
	f.Label("cmp")
	f.Br(isa.CondGE, isa.R4, isa.R11, "match")
	f.Add(isa.R5, isa.R8, isa.R3)
	f.Add(isa.R5, isa.R5, isa.R4)
	f.Load(1, false, isa.R5, isa.R5, 0)
	f.Add(isa.R0, isa.R10, isa.R4)
	f.Load(1, false, isa.R0, isa.R0, 0)
	f.Br(isa.CondNE, isa.R5, isa.R0, "advance")
	f.AddI(isa.R4, isa.R4, 1)
	f.Jmp("cmp")
	f.Label("match")
	f.AddI(isa.R6, isa.R6, 1)
	f.BrI(isa.CondNE, isa.R7, -1, "advance")
	f.Mov(isa.R7, isa.R3)
	f.Label("advance")
	// pos += shift[text[pos+m-1]]
	f.Add(isa.R5, isa.R8, isa.R3)
	f.Add(isa.R5, isa.R5, isa.R11)
	f.Load(1, false, isa.R5, isa.R5, -1)
	f.ShlI(isa.R5, isa.R5, 3)
	f.MovSym(isa.R0, "shift")
	f.Add(isa.R5, isa.R0, isa.R5)
	f.Load(8, false, isa.R5, isa.R5, 0)
	f.Add(isa.R3, isa.R3, isa.R5)
	f.Jmp("scan")
	f.Label("scandone")

	// out[pidx] = (count, first)
	f.MovSym(isa.R1, "pidx")
	f.Load(8, false, isa.R2, isa.R1, 0)
	f.ShlI(isa.R3, isa.R2, 4)
	f.MovSym(isa.R4, "out")
	f.Add(isa.R4, isa.R4, isa.R3)
	f.Store(8, isa.R6, isa.R4, 0)
	f.Store(8, isa.R7, isa.R4, 8)
	f.AddI(isa.R2, isa.R2, 1)
	f.Store(8, isa.R2, isa.R1, 0)
	f.BrI(isa.CondLT, isa.R2, int64(len(searchPatterns)), "patloop")

	emitWriteOut(f, "out", int64(len(searchPatterns))*16)
	emitExit(f)
	return p
}
