// Package branch models the front-end prediction structures of the two
// simulators: tournament direction predictors in the two flavours the
// paper contrasts (Remark 6), branch target buffers in the two
// organizations of Table II, and the return address stack.
//
// The BTBs and the RAS hold their state in faultable arrays (they appear
// in Table IV's structure inventory); the direction predictor counters
// are plain state, matching the paper's focus on storage arrays that
// carry program-visible values.
package branch

import (
	"fmt"

	"repro/internal/bitarray"
)

// TournamentConfig parameterizes a tournament predictor.
type TournamentConfig struct {
	// LocalEntries is the number of per-branch history registers and
	// local counters (a power of two).
	LocalEntries int
	// LocalHistBits is the length of each local history register.
	LocalHistBits int
	// GlobalBits is the global history length; the global and choice
	// tables have 2^GlobalBits counters.
	GlobalBits int
	// ChoiceByAddress selects the MARSS-flavoured meta-predictor that
	// indexes the choice table by branch address; false selects the
	// Gem5-flavoured one indexed by global history. This is the
	// front-end difference the paper uses to explain diverging L1I
	// behaviour between the tools.
	ChoiceByAddress bool
}

// Prediction carries the per-branch state needed to train the predictor
// when the branch resolves.
type Prediction struct {
	Taken       bool
	localTaken  bool
	globalTaken bool
	usedGlobal  bool
	ghrBefore   uint64
	localIdx    int
	globalIdx   int
	choiceIdx   int
}

// Tournament is a local/global tournament predictor.
type Tournament struct {
	cfg       TournamentConfig
	localHist []uint64
	localCtr  []uint8
	globalCtr []uint8
	choiceCtr []uint8
	ghr       uint64
	commitGHR uint64

	lookups    uint64
	mispredict uint64
}

// NewTournament builds a predictor; it panics on bad geometry.
func NewTournament(cfg TournamentConfig) *Tournament {
	if cfg.LocalEntries <= 0 || cfg.LocalEntries&(cfg.LocalEntries-1) != 0 ||
		cfg.GlobalBits <= 0 || cfg.GlobalBits > 24 || cfg.LocalHistBits <= 0 || cfg.LocalHistBits > 24 {
		panic(fmt.Sprintf("branch: bad tournament config %+v", cfg))
	}
	n := 1 << cfg.GlobalBits
	t := &Tournament{
		cfg:       cfg,
		localHist: make([]uint64, cfg.LocalEntries),
		localCtr:  make([]uint8, 1<<cfg.LocalHistBits),
		globalCtr: make([]uint8, n),
		choiceCtr: make([]uint8, n),
	}
	// Counters start weakly taken; choice starts neutral-to-global.
	for i := range t.localCtr {
		t.localCtr[i] = 2
	}
	for i := range t.globalCtr {
		t.globalCtr[i] = 2
	}
	for i := range t.choiceCtr {
		t.choiceCtr[i] = 2
	}
	return t
}

// Lookups returns the number of direction predictions made.
func (t *Tournament) Lookups() uint64 { return t.lookups }

// Mispredicts returns the number of direction mispredictions recorded.
func (t *Tournament) Mispredicts() uint64 { return t.mispredict }

func taken2(c uint8) bool { return c >= 2 }

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// Predict returns the direction prediction for the conditional branch at
// pc and speculatively shifts the global history by the prediction (the
// mispredict path repairs it).
func (t *Tournament) Predict(pc uint64) Prediction {
	t.lookups++
	gmask := uint64(1<<t.cfg.GlobalBits - 1)
	li := int(pc>>2) & (t.cfg.LocalEntries - 1)
	lh := t.localHist[li] & uint64(1<<t.cfg.LocalHistBits-1)
	gi := int(t.ghr & gmask)
	var ci int
	if t.cfg.ChoiceByAddress {
		// MARSS flavour: the final decision is bound to the branch
		// address.
		ci = int(pc>>2) & int(gmask)
	} else {
		// Gem5 flavour: the decision is bound to the global history;
		// the branch address does not participate at all.
		ci = gi
	}
	p := Prediction{
		localTaken:  taken2(t.localCtr[lh]),
		globalTaken: taken2(t.globalCtr[gi]),
		usedGlobal:  taken2(t.choiceCtr[ci]),
		ghrBefore:   t.ghr,
		localIdx:    int(lh),
		globalIdx:   gi,
		choiceIdx:   ci,
	}
	if p.usedGlobal {
		p.Taken = p.globalTaken
	} else {
		p.Taken = p.localTaken
	}
	// Speculative history update with the predicted outcome.
	t.ghr = t.ghr << 1
	if p.Taken {
		t.ghr |= 1
	}
	return p
}

// Resolve trains the predictor with the actual outcome and repairs the
// speculative global history on a misprediction. It returns whether the
// direction was mispredicted.
func (t *Tournament) Resolve(pc uint64, p Prediction, taken bool) bool {
	// Train choice toward whichever component was right (only when
	// they disagreed).
	if p.localTaken != p.globalTaken {
		t.choiceCtr[p.choiceIdx] = bump(t.choiceCtr[p.choiceIdx], p.globalTaken == taken)
	}
	t.localCtr[p.localIdx] = bump(t.localCtr[p.localIdx], taken)
	t.globalCtr[p.globalIdx] = bump(t.globalCtr[p.globalIdx], taken)
	li := int(pc>>2) & (t.cfg.LocalEntries - 1)
	t.localHist[li] = t.localHist[li]<<1 | b2u(taken)
	t.commitGHR = t.commitGHR<<1 | b2u(taken)
	if p.Taken != taken {
		t.mispredict++
		t.ghr = p.ghrBefore<<1 | b2u(taken)
		return true
	}
	return false
}

// OnFlush repairs the speculative global history after a pipeline flush:
// predictions made by squashed wrong-path branches are discarded and the
// history reverts to the committed outcomes.
func (t *Tournament) OnFlush() { t.ghr = t.commitGHR }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ---- Branch target buffer ----------------------------------------------------

// BTBConfig describes a branch target buffer.
type BTBConfig struct {
	// Name prefixes the array structure names.
	Name string
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity; 1 means direct-mapped (the Gem5
	// organization).
	Ways int
}

// BTB is a branch target buffer with faultable valid/tag/target arrays.
type BTB struct {
	cfg     BTBConfig
	sets    int
	valid   *bitarray.Array
	tags    *bitarray.Array
	targets *bitarray.Array
	lru     []uint64
	clock   uint64

	hits   uint64
	misses uint64
}

// NewBTB builds a BTB; it panics on bad geometry.
func NewBTB(cfg BTBConfig) *BTB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("branch: bad BTB config %+v", cfg))
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("branch: BTB sets must be a power of two (%d)", sets))
	}
	b := &BTB{
		cfg:     cfg,
		sets:    sets,
		valid:   bitarray.New(cfg.Name+".valid", cfg.Entries, 1),
		tags:    bitarray.New(cfg.Name+".tag", cfg.Entries, 16),
		targets: bitarray.New(cfg.Name+".target", cfg.Entries, 32),
		lru:     make([]uint64, cfg.Entries),
	}
	b.tags.SetValidFunc(func(e int) bool { return b.valid.ReadBit(e, 0) != 0 })
	b.targets.SetValidFunc(func(e int) bool { return b.valid.ReadBit(e, 0) != 0 })
	return b
}

// Arrays returns the injectable arrays of the BTB.
func (b *BTB) Arrays() []*bitarray.Array {
	return []*bitarray.Array{b.valid, b.tags, b.targets}
}

// Hits returns the number of BTB hits.
func (b *BTB) Hits() uint64 { return b.hits }

// Misses returns the number of BTB misses.
func (b *BTB) Misses() uint64 { return b.misses }

func (b *BTB) index(pc uint64) (set int, tag uint64) {
	return int(pc>>1) & (b.sets - 1), pc >> 1 / uint64(b.sets) & 0xffff
}

// Lookup returns the predicted target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	set, tag := b.index(pc)
	base := set * b.cfg.Ways
	for w := 0; w < b.cfg.Ways; w++ {
		e := base + w
		if b.valid.ReadBit(e, 0) != 0 && b.tags.ReadWord(e, 0)&0xffff == tag {
			b.hits++
			b.clock++
			b.lru[e] = b.clock
			return b.targets.ReadWord(e, 0) & 0xffffffff, true
		}
	}
	b.misses++
	return 0, false
}

// Update installs or refreshes the target of the branch at pc.
func (b *BTB) Update(pc, target uint64) {
	set, tag := b.index(pc)
	base := set * b.cfg.Ways
	victim := base
	for w := 0; w < b.cfg.Ways; w++ {
		e := base + w
		if b.valid.ReadBit(e, 0) != 0 && b.tags.ReadWord(e, 0)&0xffff == tag {
			victim = e
			break
		}
		if b.valid.ReadBit(e, 0) == 0 {
			victim = e
			break
		}
		if b.lru[e] < b.lru[victim] {
			victim = e
		}
	}
	b.tags.WriteWord(victim, 0, tag)
	b.targets.WriteWord(victim, 0, target&0xffffffff)
	b.valid.WriteBit(victim, 0, 1)
	b.clock++
	b.lru[victim] = b.clock
}

// ---- Return address stack ----------------------------------------------------

// RAS is a circular return address stack with a faultable target array.
type RAS struct {
	entries *bitarray.Array
	size    int
	top     int
	depth   int
}

// NewRAS builds a return address stack of the given size.
func NewRAS(name string, size int) *RAS {
	if size <= 0 {
		panic("branch: RAS size must be positive")
	}
	return &RAS{entries: bitarray.New(name, size, 32), size: size}
}

// Array returns the injectable storage of the RAS.
func (r *RAS) Array() *bitarray.Array { return r.entries }

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % r.size
	r.entries.WriteWord(r.top, 0, addr&0xffffffff)
	if r.depth < r.size {
		r.depth++
	}
}

// Pop predicts the target of a return. An empty stack predicts 0 with
// ok=false.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.entries.ReadWord(r.top, 0) & 0xffffffff
	r.top = (r.top - 1 + r.size) % r.size
	r.depth--
	return addr, true
}

// Snapshot captures the stack position for misprediction recovery.
func (r *RAS) Snapshot() (top, depth int) { return r.top, r.depth }

// Restore rewinds the stack position to a snapshot.
func (r *RAS) Restore(top, depth int) { r.top, r.depth = top, depth }
