package branch

// TournamentState is a deep copy of a tournament predictor, used by the
// simulators' checkpointing support.
type TournamentState struct {
	LocalHist  []uint64
	LocalCtr   []uint8
	GlobalCtr  []uint8
	ChoiceCtr  []uint8
	GHR        uint64
	CommitGHR  uint64
	Lookups    uint64
	Mispredict uint64
}

// State captures the predictor.
func (t *Tournament) State() *TournamentState {
	s := &TournamentState{
		LocalHist:  make([]uint64, len(t.localHist)),
		LocalCtr:   make([]uint8, len(t.localCtr)),
		GlobalCtr:  make([]uint8, len(t.globalCtr)),
		ChoiceCtr:  make([]uint8, len(t.choiceCtr)),
		GHR:        t.ghr,
		CommitGHR:  t.commitGHR,
		Lookups:    t.lookups,
		Mispredict: t.mispredict,
	}
	copy(s.LocalHist, t.localHist)
	copy(s.LocalCtr, t.localCtr)
	copy(s.GlobalCtr, t.globalCtr)
	copy(s.ChoiceCtr, t.choiceCtr)
	return s
}

// SetState restores a previously captured state (copied, so one state
// may seed many predictors).
func (t *Tournament) SetState(s *TournamentState) {
	copy(t.localHist, s.LocalHist)
	copy(t.localCtr, s.LocalCtr)
	copy(t.globalCtr, s.GlobalCtr)
	copy(t.choiceCtr, s.ChoiceCtr)
	t.ghr = s.GHR
	t.commitGHR = s.CommitGHR
	t.lookups = s.Lookups
	t.mispredict = s.Mispredict
}

// BTBState is a deep copy of a branch target buffer.
type BTBState struct {
	Valid, Tags, Targets []uint64
	LRU                  []uint64
	Clock                uint64
	Hits, Misses         uint64
}

// State captures the BTB.
func (b *BTB) State() *BTBState {
	s := &BTBState{
		Valid:   b.valid.Snapshot(),
		Tags:    b.tags.Snapshot(),
		Targets: b.targets.Snapshot(),
		LRU:     make([]uint64, len(b.lru)),
		Clock:   b.clock,
		Hits:    b.hits,
		Misses:  b.misses,
	}
	copy(s.LRU, b.lru)
	return s
}

// SetState restores a previously captured state.
func (b *BTB) SetState(s *BTBState) {
	b.valid.RestoreSnapshot(s.Valid)
	b.tags.RestoreSnapshot(s.Tags)
	b.targets.RestoreSnapshot(s.Targets)
	copy(b.lru, s.LRU)
	b.clock = s.Clock
	b.hits = s.Hits
	b.misses = s.Misses
}

// RASState is a deep copy of the return address stack.
type RASState struct {
	Entries []uint64
	Top     int
	Depth   int
}

// State captures the RAS.
func (r *RAS) State() *RASState {
	return &RASState{Entries: r.entries.Snapshot(), Top: r.top, Depth: r.depth}
}

// SetState restores a previously captured state.
func (r *RAS) SetState(s *RASState) {
	r.entries.RestoreSnapshot(s.Entries)
	r.top = s.Top
	r.depth = s.Depth
}
