package branch

import (
	"testing"

	"repro/internal/bitarray"
)

func newT(byAddr bool) *Tournament {
	return NewTournament(TournamentConfig{
		LocalEntries: 1024, LocalHistBits: 10, GlobalBits: 12, ChoiceByAddress: byAddr,
	})
}

func TestTournamentLearnsAlwaysTaken(t *testing.T) {
	for _, byAddr := range []bool{true, false} {
		p := newT(byAddr)
		pc := uint64(0x1040)
		miss := 0
		for i := 0; i < 100; i++ {
			pr := p.Predict(pc)
			if p.Resolve(pc, pr, true) {
				miss++
			}
		}
		if miss > 4 {
			t.Errorf("byAddr=%v: %d mispredicts on always-taken", byAddr, miss)
		}
		if p.Lookups() != 100 || p.Mispredicts() != uint64(miss) {
			t.Errorf("byAddr=%v: counters %d/%d", byAddr, p.Lookups(), p.Mispredicts())
		}
	}
}

func TestTournamentLearnsAlternating(t *testing.T) {
	// A strict alternating pattern is learnable by both the local
	// history and the global history components.
	for _, byAddr := range []bool{true, false} {
		p := newT(byAddr)
		pc := uint64(0x2000)
		miss := 0
		for i := 0; i < 400; i++ {
			pr := p.Predict(pc)
			taken := i%2 == 0
			if p.Resolve(pc, pr, taken) {
				miss++
			}
		}
		// Allow warm-up noise only.
		if miss > 40 {
			t.Errorf("byAddr=%v: %d mispredicts on alternating", byAddr, miss)
		}
	}
}

func TestTournamentLearnsLoopPattern(t *testing.T) {
	// taken,taken,taken,not — a classic loop-exit pattern.
	for _, byAddr := range []bool{true, false} {
		p := newT(byAddr)
		pc := uint64(0x3000)
		miss := 0
		for i := 0; i < 800; i++ {
			pr := p.Predict(pc)
			taken := i%4 != 3
			if p.Resolve(pc, pr, taken) {
				miss++
			}
		}
		if miss > 80 {
			t.Errorf("byAddr=%v: %d mispredicts on loop pattern", byAddr, miss)
		}
	}
}

func TestTournamentGHRRepairOnMispredict(t *testing.T) {
	p := newT(false)
	pc := uint64(0x4000)
	pr := p.Predict(pc)
	actual := !pr.Taken // force a mispredict
	p.Resolve(pc, pr, actual)
	// After repair the GHR's LSB must reflect the actual outcome.
	if p.ghr&1 != b2u(actual) {
		t.Fatal("GHR not repaired with actual outcome")
	}
}

func TestTournamentFlavoursDiverge(t *testing.T) {
	// Two correlated branches: branch B's outcome equals branch A's
	// previous outcome. Drive both flavours with the identical stream
	// and require that their prediction sequences are not identical —
	// the front-end difference the paper leans on must be observable.
	pa := newT(true)
	pg := newT(false)
	seqA, seqG := "", ""
	rngState := uint64(12345)
	lastA := false
	for i := 0; i < 2000; i++ {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		outA := rngState>>62&1 == 1
		for _, pcPair := range []struct {
			p    *Tournament
			seq  *string
			isA  bool
			pcs  [2]uint64
			outB bool
		}{
			{pa, &seqA, true, [2]uint64{0x1000, 0x2000}, lastA},
			{pg, &seqG, false, [2]uint64{0x1000, 0x2000}, lastA},
		} {
			prA := pcPair.p.Predict(pcPair.pcs[0])
			pcPair.p.Resolve(pcPair.pcs[0], prA, outA)
			prB := pcPair.p.Predict(pcPair.pcs[1])
			pcPair.p.Resolve(pcPair.pcs[1], prB, pcPair.outB)
			if prB.Taken {
				*pcPair.seq += "T"
			} else {
				*pcPair.seq += "N"
			}
		}
		lastA = outA
	}
	if seqA == seqG {
		t.Error("address-indexed and history-indexed flavours produced identical prediction streams")
	}
}

func TestBTBRoundTrip(t *testing.T) {
	for _, cfg := range []BTBConfig{
		{Name: "btb.dm", Entries: 2048, Ways: 1},  // Gem5 organization
		{Name: "btb.dir", Entries: 1024, Ways: 4}, // MARSS direct
		{Name: "btb.ind", Entries: 512, Ways: 4},  // MARSS indirect
	} {
		b := NewBTB(cfg)
		if _, hit := b.Lookup(0x1234); hit {
			t.Fatalf("%s: cold hit", cfg.Name)
		}
		b.Update(0x1234, 0x5678)
		tgt, hit := b.Lookup(0x1234)
		if !hit || tgt != 0x5678 {
			t.Fatalf("%s: lookup = %#x, %v", cfg.Name, tgt, hit)
		}
		// Re-update with a new target replaces in place.
		b.Update(0x1234, 0x9abc)
		tgt, hit = b.Lookup(0x1234)
		if !hit || tgt != 0x9abc {
			t.Fatalf("%s: refresh = %#x, %v", cfg.Name, tgt, hit)
		}
		if b.Hits() != 2 || b.Misses() != 1 {
			t.Fatalf("%s: counters %d/%d", cfg.Name, b.Hits(), b.Misses())
		}
	}
}

func TestBTBSetAssocReplacement(t *testing.T) {
	b := NewBTB(BTBConfig{Name: "btb", Entries: 8, Ways: 4}) // 2 sets
	// Fill one set's 4 ways with branches mapping to the same set.
	// index uses pc>>1 & (sets-1); with 2 sets, pc increments of 4 keep
	// alternating sets, so use stride 4 starting at 0x1000 (set fixed).
	pcs := []uint64{0x1000, 0x1004, 0x1008, 0x100c, 0x1010}
	for i, pc := range pcs[:4] {
		b.Update(pc, uint64(0x100+i))
	}
	for i, pc := range pcs[:4] {
		if tgt, hit := b.Lookup(pc); !hit || tgt != uint64(0x100+i) {
			t.Fatalf("entry %d lost: %v", i, hit)
		}
	}
	b.Update(pcs[4], 0x999) // evicts the LRU (pcs[0], the oldest lookup)
	if _, hit := b.Lookup(pcs[0]); hit {
		t.Fatal("LRU entry survived")
	}
	if tgt, hit := b.Lookup(pcs[4]); !hit || tgt != 0x999 {
		t.Fatal("new entry missing")
	}
}

func TestBTBTargetFaultRedirects(t *testing.T) {
	b := NewBTB(BTBConfig{Name: "btb", Entries: 64, Ways: 1})
	b.Update(0x2000, 0x3000)
	// Find the valid entry.
	arrs := b.Arrays()
	valid, targets := arrs[0], arrs[2]
	entry := -1
	for e := 0; e < 64; e++ {
		if valid.ReadBit(e, 0) != 0 {
			entry = e
			break
		}
	}
	targets.Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: entry, Bit: 4, Start: 0})
	targets.Tick(0)
	tgt, hit := b.Lookup(0x2000)
	if !hit || tgt != 0x3000^0x10 {
		t.Fatalf("faulty target = %#x, want %#x", tgt, uint64(0x3000^0x10))
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS("ras", 16)
	for i := uint64(1); i <= 5; i++ {
		r.Push(0x1000 * i)
	}
	for i := uint64(5); i >= 1; i-- {
		a, ok := r.Pop()
		if !ok || a != 0x1000*i {
			t.Fatalf("pop %d = %#x, %v", i, a, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("empty pop succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS("ras", 4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	// Only the newest 4 survive: 6,5,4,3.
	for _, want := range []uint64{6, 5, 4, 3} {
		a, ok := r.Pop()
		if !ok || a != want {
			t.Fatalf("pop = %d, want %d", a, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("overwrapped pop succeeded")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS("ras", 8)
	r.Push(1)
	r.Push(2)
	top, depth := r.Snapshot()
	r.Push(3)
	r.Pop()
	r.Pop()
	r.Restore(top, depth)
	a, ok := r.Pop()
	if !ok || a != 2 {
		t.Fatalf("after restore pop = %d, %v", a, ok)
	}
}

func TestConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTournament(TournamentConfig{LocalEntries: 3, LocalHistBits: 4, GlobalBits: 4}) },
		func() { NewTournament(TournamentConfig{LocalEntries: 4, LocalHistBits: 0, GlobalBits: 4}) },
		func() { NewBTB(BTBConfig{Entries: 0, Ways: 1}) },
		func() { NewBTB(BTBConfig{Entries: 24, Ways: 4}) },
		func() { NewRAS("r", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config accepted")
				}
			}()
			f()
		}()
	}
}
