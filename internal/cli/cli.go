// Package cli is the shared flag surface of the campaign-running
// commands. faultcamp, figures, and faultcampd all expose the same
// campaign-execution and telemetry knobs; before this package each
// command re-declared its own copies (two dozen flags, drifting
// defaults, triple maintenance). Here they are declared once, bind onto
// core.CampaignConfig — the consolidated campaign API — and each
// command keeps only the flags that are genuinely its own.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/sims"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Resolve is the production Resolver: it materializes the simulator
// factory of a {tool, benchmark} cell through the sims registry and the
// workload table. Every command hands this to core.RunConfig /
// core.RunShard; tests substitute fakes.
func Resolve(tool, benchmark string) (core.Factory, error) {
	w, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return sims.Factory(tool, w)
}

// CampaignFlags holds the shared campaign-execution knobs after
// parsing. Config() turns them into a core.CampaignConfig.
type CampaignFlags struct {
	N             int
	Seed          int64
	Model         string
	Workers       int
	TimeoutFactor uint64
	NoEarlyStop   bool
	Checkpoint    bool
	Prune         bool
	PruneVerify   int
	Ladder        int
	RunWallLimit  time.Duration
	LiveOnly      bool
	DetailWindow  bool
	WindowPre     uint64
	WindowPost    uint64
	WindowVerify  int
	FFRungs       int
	NoDecodeCache bool
	Divergence    bool
	StopMargin    float64
	StopConf      float64
	StopEvery     int
	Exhaustive    bool
	Importance    bool
}

// Campaign registers the shared campaign-execution flags on fs.
// defaultN sets the command's default injection count (faultcamp and
// figures historically differ only there).
func Campaign(fs *flag.FlagSet, defaultN int) *CampaignFlags {
	c := &CampaignFlags{}
	fs.IntVar(&c.N, "n", defaultN, "injections per campaign when no explicit masks are given")
	fs.Int64Var(&c.Seed, "seed", 1, "mask generation seed")
	fs.StringVar(&c.Model, "model", "transient", "generated fault model (transient, intermittent, permanent)")
	fs.IntVar(&c.Workers, "workers", 0, "worker pool size (default GOMAXPROCS)")
	fs.Uint64Var(&c.TimeoutFactor, "timeout-factor", 3, "cycle limit as a multiple of the fault-free run")
	fs.BoolVar(&c.NoEarlyStop, "no-early-stop", false, "disable the §III.B early-stop optimizations")
	fs.BoolVar(&c.Checkpoint, "checkpoint", false, "share the fault-free prefix via a drained-machine checkpoint")
	fs.BoolVar(&c.Prune, "prune", false, "classify provably-masked faults from the golden-run liveness profile without simulating them")
	fs.IntVar(&c.PruneVerify, "prune-verify", 0, "simulate up to this many pruned masks per campaign and fail on a class mismatch (implies -prune)")
	fs.IntVar(&c.Ladder, "ladder", 0, "number of evenly spaced checkpoint rungs (>= 2, with -checkpoint; 0: single legacy checkpoint)")
	fs.DurationVar(&c.RunWallLimit, "run-wall-limit", 0, "per-run wall-clock backstop: classify a run as Timeout after this much host time (0: off)")
	fs.BoolVar(&c.LiveOnly, "live-only", false, "restrict generated faults to entries live at the end of the golden run (conditional vulnerability)")
	fs.BoolVar(&c.DetailWindow, "detail-window", false, "simulate cycle-accurately only inside a detail window around each fault, functionally everywhere else")
	fs.Uint64Var(&c.WindowPre, "window-pre", 2000, "cycle-accurate margin before the earliest fault arms (with -detail-window)")
	fs.Uint64Var(&c.WindowPost, "window-post", 1000, "cycle-accurate margin after the last fault settles (with -detail-window)")
	fs.IntVar(&c.WindowVerify, "window-verify", 0, "re-simulate up to this many windowed masks per campaign fully cycle-accurately and fail on a class mismatch (implies -detail-window)")
	fs.IntVar(&c.FFRungs, "ff-rungs", 0, "functional fast-forward rungs per row window entries resume from (with -detail-window; 0: default ladder, negative: fast-forward from boot)")
	fs.BoolVar(&c.NoDecodeCache, "no-decode-cache", false, "run the functional tier without the predecoded-instruction cache (with -detail-window; reference behaviour, byte-identical results)")
	fs.BoolVar(&c.Divergence, "divergence", false, "record per-run divergence provenance (first architectural divergence vs golden, corruption footprint, masking depth) to <key>.divergence.jsonl")
	fs.Float64Var(&c.StopMargin, "stop-margin", 0, "stop a campaign early once every outcome-class proportion is known to this ± margin at -stop-confidence (0: run the full budget)")
	fs.Float64Var(&c.StopConf, "stop-confidence", 0.99, "confidence level of the -stop-margin sequential stopping rule")
	fs.IntVar(&c.StopEvery, "stop-check-every", 0, "evaluate the -stop-margin rule every this many completed runs (0: default cadence)")
	fs.BoolVar(&c.Exhaustive, "exhaustive", false, "replace sampling with the equivalence-class-collapsed census of the whole single-bit transient fault population (implies -prune)")
	fs.BoolVar(&c.Importance, "importance-sampling", false, "oversample live fault sites from the golden-run liveness profile, with Horvitz-Thompson weights keeping the reported proportions unbiased")
	return c
}

// Config binds the parsed flags onto a validated CampaignConfig over
// the given cells.
func (c *CampaignFlags) Config(cells []core.CampaignCell) (core.CampaignConfig, error) {
	cfg := c.Apply(cells)
	return cfg, cfg.Validate()
}

// Apply binds the parsed flags onto a CampaignConfig without
// validating; for callers (figures) that consume the shared knobs but
// derive their own campaign cells later.
func (c *CampaignFlags) Apply(cells []core.CampaignCell) core.CampaignConfig {
	cfg := core.CampaignConfig{
		Campaigns:        cells,
		Injections:       c.N,
		Seed:             c.Seed,
		Model:            c.Model,
		LiveOnly:         c.LiveOnly,
		TimeoutFactor:    c.TimeoutFactor,
		DisableEarlyStop: c.NoEarlyStop,
		UseCheckpoint:    c.Checkpoint,
		Workers:          c.Workers,
		Prune:            c.Prune,
		PruneVerify:      c.PruneVerify,
		CheckpointLadder: c.Ladder,
		RunWallLimit:     c.RunWallLimit,
		Divergence:       c.Divergence,
	}
	// The margin flags carry defaults, so they bind only when windowing
	// is actually on — a windowless config must not grow schema-v2
	// fields (or trip validation) because of a default.
	if c.DetailWindow || c.WindowVerify > 0 {
		cfg.DetailWindow = c.DetailWindow
		cfg.WindowPre = c.WindowPre
		cfg.WindowPost = c.WindowPost
		cfg.WindowVerify = c.WindowVerify
		cfg.FFRungs = c.FFRungs
		cfg.NoDecodeCache = c.NoDecodeCache
	}
	// -stop-confidence carries a default, so the stop knobs bind only
	// when the rule is actually armed — a fixed-budget config must not
	// grow schema-v5 fields (or trip validation) because of a default.
	if c.StopMargin != 0 {
		cfg.StopMargin = c.StopMargin
		cfg.StopConfidence = c.StopConf
		cfg.StopCheckEvery = c.StopEvery
	} else if c.StopEvery != 0 {
		// An explicit cadence without a margin is a user error; bind it
		// so Validate rejects it instead of silently dropping the flag.
		cfg.StopCheckEvery = c.StopEvery
	}
	cfg.Exhaustive = c.Exhaustive
	cfg.ImportanceSampling = c.Importance
	// Stamp the lowest schema version that can express the config, so
	// configs without the new fields stay readable by legacy builds.
	cfg.SchemaVersion = cfg.WireSchemaVersion()
	return cfg
}

// TelemetryFlags holds the shared observability knobs after parsing.
type TelemetryFlags struct {
	Quiet         bool
	ProgressEvery time.Duration
	MetricsAddr   string
	Trace         bool
	Spans         bool
	SnapshotJSON  string
}

// Telemetry registers the shared observability flags on fs.
func Telemetry(fs *flag.FlagSet, progressDefault time.Duration) *TelemetryFlags {
	t := &TelemetryFlags{}
	fs.BoolVar(&t.Quiet, "quiet", false, "suppress the periodic progress lines (the final summary stays)")
	fs.DurationVar(&t.ProgressEvery, "progress-every", progressDefault, "period of the progress lines")
	fs.StringVar(&t.MetricsAddr, "metrics-addr", "", "serve /metrics, /snapshot.json, /events and /debug/pprof on this address (e.g. 127.0.0.1:8321)")
	fs.BoolVar(&t.Trace, "trace", false, "write a JSONL injection trace into the logs repository")
	fs.BoolVar(&t.Spans, "spans", false, "write a JSONL span trace (campaign/cell/run/phase timings) into the logs repository")
	fs.StringVar(&t.SnapshotJSON, "snapshot-json", "", "write the final telemetry snapshot as JSON to this file")
	return t
}

// Observability bundles the live telemetry stack of one command
// invocation: the collector, the SSE event stream, the optional trace
// sink and span tracer, the optional metrics server and the optional
// progress reporter. Build it with TelemetryFlags.Start, stop the
// reporter before printing the summary, Close everything on the way
// out.
type Observability struct {
	Collector *telemetry.Collector
	// Events is the SSE fan-out, always present (it costs nothing with
	// no subscribers); it is mounted at /events on the metrics server
	// and available for a command's own listener (faultcampd).
	Events *telemetry.EventStream
	Trace  *telemetry.TraceSink
	// Tracer is non-nil when -spans asked for span recording; attach it
	// to the campaign (core.Attach.Tracer or the coordinator options)
	// and flush the file with FlushSpans.
	Tracer   *telemetry.Tracer
	spanBuf  *telemetry.SpanBuffer
	server   *telemetry.Server
	reporter *telemetry.Reporter
}

// Start builds the telemetry stack the parsed flags ask for. Server
// announcements go to errw.
func (t *TelemetryFlags) Start(errw io.Writer) (*Observability, error) {
	o := &Observability{Collector: telemetry.New()}
	o.Events = telemetry.NewEventStream(o.Collector)
	o.Collector.AddSink(o.Events)
	if t.Spans {
		o.Tracer = telemetry.NewTracer(fmt.Sprintf("t-%d-%d", os.Getpid(), time.Now().Unix()), "c")
		o.spanBuf = telemetry.NewSpanBuffer()
		o.Tracer.AddSink(o.spanBuf)
		o.Tracer.AddSink(o.Events)
	}
	if t.MetricsAddr != "" {
		srv, err := telemetry.ServeHandler(t.MetricsAddr, o.Collector.HandlerWithEvents(o.Events))
		if err != nil {
			return nil, err
		}
		o.server = srv
		fmt.Fprintf(errw, "metrics listening on http://%s (/metrics /snapshot.json /events /debug/pprof)\n", srv.Addr())
	}
	if t.Trace {
		o.Trace = telemetry.NewTraceSink()
		o.Collector.AddSink(o.Trace)
	}
	return o, nil
}

// StartReporter starts the periodic progress reporter on w unless the
// flags asked for quiet. Each tick also broadcasts a "progress" frame
// to the SSE subscribers.
func (o *Observability) StartReporter(t *TelemetryFlags, w io.Writer) {
	o.StartReporterLine(t, w, func() string { return o.Collector.Snapshot().ProgressLine() })
}

// StartReporterLine is StartReporter with a custom line renderer — the
// distributed coordinator's progress view (per-worker lease columns) is
// wider than one collector's snapshot.
func (o *Observability) StartReporterLine(t *TelemetryFlags, w io.Writer, line func() string) {
	if !t.Quiet && o.reporter == nil {
		o.reporter = telemetry.StartReporterFunc(w, t.ProgressEvery, func() string {
			o.Events.Progress(o.Collector.Snapshot())
			return line()
		})
	}
}

// StopReporter stops the progress reporter (idempotent), so the final
// summary isn't interleaved with a late progress line.
func (o *Observability) StopReporter() {
	if o.reporter != nil {
		o.reporter.Stop()
		o.reporter = nil
	}
}

// Close stops the reporter, disconnects the SSE subscribers, and stops
// the metrics server.
func (o *Observability) Close() {
	o.StopReporter()
	o.Events.Close()
	if o.server != nil {
		o.server.Close()
		o.server = nil
	}
}

// Finish stops the reporter, takes the final snapshot, and writes it to
// the -snapshot-json file when one was asked for.
func (o *Observability) Finish(t *TelemetryFlags) (telemetry.Snapshot, error) {
	o.StopReporter()
	snap := o.Collector.Snapshot()
	if t.SnapshotJSON != "" {
		b, err := snap.JSON()
		if err != nil {
			return snap, err
		}
		if err := os.WriteFile(t.SnapshotJSON, append(b, '\n'), 0o644); err != nil {
			return snap, err
		}
	}
	return snap, nil
}

// FlushTrace writes the trace sink (when one is active) into the logs
// repository under key, and reports the trace path for the summary
// line; "" when tracing is off.
func (o *Observability) FlushTrace(logs *core.LogsRepo, key string) (string, error) {
	if o.Trace == nil {
		return "", nil
	}
	f, err := logs.CreateTrace(key)
	if err != nil {
		return "", err
	}
	if err := o.Trace.Flush(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return logs.TracePath(key), nil
}

// FlushSpans writes the buffered spans (when -spans is active) into the
// logs repository under key, and reports the span file path; "" when
// span tracing is off.
func (o *Observability) FlushSpans(logs *core.LogsRepo, key string) (string, error) {
	if o.spanBuf == nil {
		return "", nil
	}
	f, err := logs.CreateSpans(key)
	if err != nil {
		return "", err
	}
	if err := o.spanBuf.Flush(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return logs.SpansPath(key), nil
}

// FlushDivergence writes a divergence sink into the logs repository
// under key, and reports the file path; "" when sink is nil.
func FlushDivergence(sink *divergence.Sink, logs *core.LogsRepo, key string) (string, error) {
	if sink == nil {
		return "", nil
	}
	f, err := logs.CreateDivergence(key)
	if err != nil {
		return "", err
	}
	if err := sink.Flush(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return logs.DivergencePath(key), nil
}
