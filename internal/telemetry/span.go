package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanSchemaVersion is the version stamped into every span record this
// build writes; readers accept spans up to this version and reject
// newer ones.
//
// Version history:
//
//	1 — initial format (PR 7).
const SpanSchemaVersion = 1

// Span kinds, from the root down: a campaign span covers one matrix
// dispatch (or the whole distributed campaign on the coordinator), a
// cell span one {tool, benchmark, structure} campaign within it, a
// shard span one leased mask range of the distributed protocol, a run
// span one injection run, and a phase span one tier of a run
// (golden/fast-forward/window/drain on workers, merge on the
// coordinator).
const (
	SpanCampaign = "campaign"
	SpanCell     = "cell"
	SpanShard    = "shard"
	SpanRun      = "run"
	SpanPhase    = "phase"
)

// Span is one JSONL span record of the run-tracing pillar. Spans carry
// wall-clock endpoints (they are a timing artifact, exempt from the
// byte-stability rule the trace and divergence files obey) plus the
// simulated work the span covered: Cycles for detailed-tier spans,
// Steps for functional-tier spans.
type Span struct {
	SchemaVersion int `json:"schema_version,omitempty"`

	// TraceID groups every span of one campaign; SpanID is unique
	// within the trace and ParentID links the tree. Seq is a
	// per-process emission sequence number (spans are flushed in Seq
	// order, which keeps a single process's file stable for a given
	// interleaving).
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Seq      uint64 `json:"seq"`

	Kind string `json:"kind"`
	Name string `json:"name"`

	// Campaign and MaskID locate run/phase spans; Worker names the
	// process that emitted the span (the dist worker ID, or "local").
	Campaign string `json:"campaign,omitempty"`
	MaskID   *int   `json:"mask_id,omitempty"`
	Worker   string `json:"worker,omitempty"`

	StartUnixNS int64 `json:"start_unix_ns"`
	EndUnixNS   int64 `json:"end_unix_ns"`

	Cycles uint64 `json:"cycles,omitempty"`
	Steps  uint64 `json:"steps,omitempty"`
	Err    string `json:"err,omitempty"`
}

// SpanSink consumes finished spans; implementations must be safe for
// concurrent use.
type SpanSink interface {
	SpanEvent(sp Span)
}

// Tracer mints span identities and fans finished spans out to sinks.
// One Tracer spans one process; its prefix keeps span IDs unique
// across the fleet (the coordinator uses "c", workers their worker ID).
type Tracer struct {
	traceID string
	prefix  string
	ids     atomic.Uint64
	seq     atomic.Uint64

	mu    sync.Mutex
	sinks atomic.Value // []SpanSink, copy-on-write
}

// NewTracer returns a tracer for traceID, minting span IDs under
// prefix.
func NewTracer(traceID, prefix string) *Tracer {
	return &Tracer{traceID: traceID, prefix: prefix}
}

// TraceID returns the trace this tracer stamps into spans.
func (t *Tracer) TraceID() string { return t.traceID }

// AddSink attaches a span sink.
func (t *Tracer) AddSink(s SpanSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sinks []SpanSink
	if v := t.sinks.Load(); v != nil {
		sinks = append(sinks, v.([]SpanSink)...)
	}
	t.sinks.Store(append(sinks, s))
}

// NewSpanID mints a trace-unique span ID.
func (t *Tracer) NewSpanID() string {
	return t.prefix + "-" + strconv.FormatUint(t.ids.Add(1), 10)
}

// Emit finalizes a span: it stamps the trace ID, a fresh span ID if the
// span has none, the schema version and the next sequence number, then
// fans it out.
func (t *Tracer) Emit(sp Span) {
	if sp.TraceID == "" {
		sp.TraceID = t.traceID
	}
	if sp.SpanID == "" {
		sp.SpanID = t.NewSpanID()
	}
	if sp.SchemaVersion == 0 {
		sp.SchemaVersion = SpanSchemaVersion
	}
	sp.Seq = t.seq.Add(1)
	if v := t.sinks.Load(); v != nil {
		for _, s := range v.([]SpanSink) {
			s.SpanEvent(sp)
		}
	}
}

// Forward re-emits a span minted by another process (a worker span
// arriving at the coordinator): identities and timestamps are kept,
// only the local sequence number is reassigned so the merged file
// flushes in arrival order.
func (t *Tracer) Forward(sp Span) {
	if sp.SchemaVersion == 0 {
		sp.SchemaVersion = SpanSchemaVersion
	}
	sp.Seq = t.seq.Add(1)
	if v := t.sinks.Load(); v != nil {
		for _, s := range v.([]SpanSink) {
			s.SpanEvent(sp)
		}
	}
}

// ActiveSpan is an open span handle returned by Begin.
type ActiveSpan struct {
	t  *Tracer
	sp Span
}

// Begin opens a span now and returns its handle; the span is emitted
// by End. The span ID is minted eagerly so children can parent on it
// before the span ends.
func (t *Tracer) Begin(kind, name, parentID string) *ActiveSpan {
	return &ActiveSpan{t: t, sp: Span{
		SpanID:      t.NewSpanID(),
		ParentID:    parentID,
		Kind:        kind,
		Name:        name,
		StartUnixNS: time.Now().UnixNano(),
	}}
}

// ID returns the span's pre-minted ID for parenting children.
func (a *ActiveSpan) ID() string { return a.sp.SpanID }

// End stamps the end time, applies opts to the span, and emits it.
func (a *ActiveSpan) End(opts ...func(*Span)) {
	a.sp.EndUnixNS = time.Now().UnixNano()
	for _, o := range opts {
		o(&a.sp)
	}
	a.t.Emit(a.sp)
}

// SpanBuffer is a SpanSink accumulating spans in memory; Flush writes
// them in Seq order as JSON Lines.
type SpanBuffer struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpanBuffer returns an empty buffer.
func NewSpanBuffer() *SpanBuffer { return &SpanBuffer{} }

// SpanEvent implements SpanSink.
func (b *SpanBuffer) SpanEvent(sp Span) {
	b.mu.Lock()
	b.spans = append(b.spans, sp)
	b.mu.Unlock()
}

// Len reports the number of buffered spans.
func (b *SpanBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spans)
}

// Spans returns a copy of the buffered spans sorted by Seq.
func (b *SpanBuffer) Spans() []Span {
	b.mu.Lock()
	spans := append([]Span(nil), b.spans...)
	b.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	return spans
}

// Flush writes the buffered spans to w as JSON Lines.
func (b *SpanBuffer) Flush(w io.Writer) error {
	return WriteSpans(w, b.Spans())
}

// WriteSpans writes spans as JSON Lines, stamping the current schema
// version into spans that do not carry one.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		sp := spans[i]
		if sp.SchemaVersion == 0 {
			sp.SchemaVersion = SpanSchemaVersion
		}
		if err := enc.Encode(&sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans reads a JSONL span file, tolerating versionless spans and
// rejecting spans newer than this build understands.
func ReadSpans(r io.Reader) ([]Span, error) {
	var spans []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("span record %d: %w", len(spans), err)
		}
		if sp.SchemaVersion > SpanSchemaVersion {
			return nil, fmt.Errorf("span record %d has schema version %d, this build understands <= %d",
				len(spans), sp.SchemaVersion, SpanSchemaVersion)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}
