package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestTracerSpans checks span identity minting, parentage through
// Begin/End, and the buffer's Seq-ordered drain.
func TestTracerSpans(t *testing.T) {
	tr := NewTracer("trace-1", "c")
	buf := NewSpanBuffer()
	tr.AddSink(buf)

	root := tr.Begin(SpanCampaign, "campaign", "")
	child := tr.Begin(SpanShard, "shard-0", root.ID())
	child.End()
	root.End()

	spans := buf.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Seq order: the child ended first.
	if spans[0].Name != "shard-0" || spans[1].Name != "campaign" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].ParentID != spans[1].SpanID {
		t.Fatalf("child parent %q != root id %q", spans[0].ParentID, spans[1].SpanID)
	}
	for _, sp := range spans {
		if sp.TraceID != "trace-1" || sp.SchemaVersion != SpanSchemaVersion {
			t.Fatalf("span not stamped: %+v", sp)
		}
		if !strings.HasPrefix(sp.SpanID, "c-") {
			t.Fatalf("span id %q lacks the tracer prefix", sp.SpanID)
		}
		if sp.EndUnixNS < sp.StartUnixNS {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
	}
}

// TestTracerForward checks forwarding preserves remote identity (trace
// and span IDs survive) while the local tracer reassigns Seq so the
// merged stream stays totally ordered.
func TestTracerForward(t *testing.T) {
	local := NewTracer("trace-1", "c")
	buf := NewSpanBuffer()
	local.AddSink(buf)

	local.Begin(SpanCampaign, "campaign", "").End()
	remote := Span{TraceID: "trace-1", SpanID: "w1-s0-3", ParentID: "c-2",
		Kind: SpanRun, Name: "run-7", Worker: "w1", Seq: 3}
	local.Forward(remote)

	spans := buf.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	fwd := spans[1]
	if fwd.SpanID != "w1-s0-3" || fwd.ParentID != "c-2" || fwd.Worker != "w1" {
		t.Fatalf("forwarding rewrote remote identity: %+v", fwd)
	}
	if fwd.Seq <= spans[0].Seq {
		t.Fatalf("forwarded span seq %d not after local %d", fwd.Seq, spans[0].Seq)
	}
}

// TestSpanJSONLRoundTrip checks Write/ReadSpans, including the schema
// version gate.
func TestSpanJSONLRoundTrip(t *testing.T) {
	spans := []Span{
		{SchemaVersion: SpanSchemaVersion, TraceID: "t", SpanID: "c-1", Kind: SpanCampaign, Name: "campaign", Seq: 1},
		{SchemaVersion: SpanSchemaVersion, TraceID: "t", SpanID: "c-2", ParentID: "c-1", Kind: SpanPhase, Name: "golden", Seq: 2},
	}
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Name != "golden" || back[1].ParentID != "c-1" {
		t.Fatalf("round trip lost spans: %+v", back)
	}
	if _, err := ReadSpans(strings.NewReader(`{"schema_version":99,"span_id":"x"}` + "\n")); err == nil {
		t.Fatal("span from a newer schema accepted")
	}
}
