package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the metrics HTTP handler: Prometheus text exposition
// at /metrics, the JSON snapshot at /snapshot.json, and the standard
// net/http/pprof profiling endpoints under /debug/pprof/.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		b, err := c.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "campaign telemetry: /metrics /snapshot.json /debug/pprof/")
	})
	return mux
}

// HandlerWithEvents returns Handler with the SSE event stream mounted
// at /events on top of it.
func (c *Collector) HandlerWithEvents(es *EventStream) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/events", es)
	mux.Handle("/", c.Handler())
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the metrics endpoint on addr ("host:port"; port 0 picks a
// free one) and returns immediately; the server runs until Close.
func (c *Collector) Serve(addr string) (*Server, error) {
	return ServeHandler(addr, c.Handler())
}

// ServeHandler starts an HTTP endpoint serving h on addr; the server
// runs until Close.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
