package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// EventStream is the Server-Sent-Events fan-out of the live telemetry
// plane: it is both a run-event Sink and a SpanSink, broadcasting every
// event to all connected subscribers, and an http.Handler serving the
// /events endpoint.
//
// Two properties protect the scheduler's hot path: each event is
// marshalled exactly once regardless of subscriber count, and delivery
// is strictly non-blocking — a subscriber that cannot drain its
// buffered channel loses events (counted in dropped) instead of ever
// stalling a worker. Every new subscriber first receives a "snapshot"
// frame with the collector's current state, so a mid-campaign connect
// starts from a coherent baseline and the lossy event tail only ever
// under-reports deltas the next snapshot frame repairs.
type EventStream struct {
	c *Collector

	mu      sync.Mutex
	subs    map[chan []byte]struct{}
	nsubs   atomic.Int64 // len(subs) mirror; broadcast's lock-free fast path
	closed  bool
	dropped atomic.Uint64
}

// subBuffer is the per-subscriber channel depth; a slow consumer drops
// events beyond it.
const subBuffer = 256

// NewEventStream returns an event stream serving snapshots of c.
func NewEventStream(c *Collector) *EventStream {
	return &EventStream{c: c, subs: make(map[chan []byte]struct{})}
}

// Dropped reports events discarded because a subscriber was slow.
func (s *EventStream) Dropped() uint64 { return s.dropped.Load() }

// frame renders one SSE frame.
func frame(event string, data []byte) []byte {
	return []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
}

// broadcast marshals v once and offers the frame to every subscriber,
// never blocking. With no subscribers it returns before marshalling,
// so an always-attached stream costs the hot path nothing.
func (s *EventStream) broadcast(event string, v any) {
	if s.nsubs.Load() == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	f := frame(event, data)
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- f:
		default:
			s.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// RunEvent implements Sink: every finished run becomes a "run" frame.
func (s *EventStream) RunEvent(ev RunEvent) { s.broadcast("run", ev) }

// SpanEvent implements SpanSink: every finished span becomes a "span"
// frame.
func (s *EventStream) SpanEvent(sp Span) { s.broadcast("span", sp) }

// Progress broadcasts a "progress" frame with a full snapshot; the
// periodic reporter calls it at its print cadence.
func (s *EventStream) Progress(snap Snapshot) { s.broadcast("progress", snap) }

// Close disconnects every subscriber and refuses new ones.
func (s *EventStream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for ch := range s.subs {
		close(ch)
		delete(s.subs, ch)
	}
	s.nsubs.Store(0)
}

// subscribe registers a new subscriber channel, or returns nil if the
// stream is closed.
func (s *EventStream) subscribe() chan []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	ch := make(chan []byte, subBuffer)
	s.subs[ch] = struct{}{}
	s.nsubs.Store(int64(len(s.subs)))
	return ch
}

func (s *EventStream) unsubscribe(ch chan []byte) {
	s.mu.Lock()
	if _, ok := s.subs[ch]; ok {
		delete(s.subs, ch)
		close(ch)
	}
	s.nsubs.Store(int64(len(s.subs)))
	s.mu.Unlock()
}

// ServeHTTP implements the SSE endpoint: it registers the subscriber,
// replays a coherent "snapshot" frame, then streams frames until the
// client disconnects or the stream closes.
func (s *EventStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := s.subscribe()
	if ch == nil {
		http.Error(w, "stream closed", http.StatusGone)
		return
	}
	defer s.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe-then-snapshot: events arriving between registration and
	// this write appear after the snapshot, and counters only grow, so
	// the client's view is coherent from the first frame.
	if snap, err := json.Marshal(s.c.Snapshot()); err == nil {
		if _, err := w.Write(frame("snapshot", snap)); err != nil {
			return
		}
		fl.Flush()
	}

	for {
		select {
		case f, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(f); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
