package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter periodically prints one-line progress snapshots of a
// Collector to a writer — the live replacement for the scheduler's old
// unstructured per-campaign progress prints.
type Reporter struct {
	c    *Collector
	w    io.Writer
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartReporter begins printing a progress line every interval (default
// 5s when interval <= 0). Stop it before reading final results so the
// last line does not interleave.
func StartReporter(c *Collector, w io.Writer, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r := &Reporter{c: c, w: w, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				fmt.Fprintln(r.w, r.c.Snapshot().ProgressLine())
			}
		}
	}()
	return r
}

// StartReporterFunc begins printing the result of line every interval
// (default 5s when interval <= 0) — the custom-line variant used by the
// distributed coordinator, whose progress view (per-worker lease
// columns) is wider than one collector's snapshot. An empty line skips
// the tick.
func StartReporterFunc(w io.Writer, interval time.Duration, line func() string) *Reporter {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r := &Reporter{w: w, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				if l := line(); l != "" {
					fmt.Fprintln(r.w, l)
				}
			}
		}
	}()
	return r
}

// Stop halts the ticker and waits for the printing goroutine to exit.
// Safe to call more than once.
func (r *Reporter) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
