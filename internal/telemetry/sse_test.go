package telemetry

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  string
}

// readFrames parses n SSE frames off the wire, failing the test on
// timeout (the reader goroutine sends frames over a channel so the
// test never blocks forever on a missing frame).
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	ch := make(chan sseFrame, n)
	errCh := make(chan error, 1)
	go func() {
		for sent := 0; sent < n; {
			var f sseFrame
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					errCh <- err
					return
				}
				line = strings.TrimRight(line, "\n")
				if line == "" {
					break
				}
				if strings.HasPrefix(line, "event: ") {
					f.event = strings.TrimPrefix(line, "event: ")
				}
				if strings.HasPrefix(line, "data: ") {
					f.data = strings.TrimPrefix(line, "data: ")
				}
			}
			if f.event != "" || f.data != "" {
				ch <- f
				sent++
			}
		}
	}()
	frames := make([]sseFrame, 0, n)
	timeout := time.After(10 * time.Second)
	for len(frames) < n {
		select {
		case f := <-ch:
			frames = append(frames, f)
		case err := <-errCh:
			t.Fatalf("reading SSE stream: %v (got %d of %d frames)", err, len(frames), n)
		case <-timeout:
			t.Fatalf("timed out waiting for SSE frames: got %d of %d", len(frames), n)
		}
	}
	return frames
}

// TestEventStreamMidCampaignSubscribe connects a subscriber after the
// campaign has progressed and checks the first frame is a coherent
// "snapshot" reflecting the runs already done, with live "run" frames
// following.
func TestEventStreamMidCampaignSubscribe(t *testing.T) {
	c := New()
	c.Start(1)
	c.AddQueued(4)
	es := NewEventStream(c)
	c.AddSink(es)
	defer es.Close()

	// Two runs happen before anyone subscribes: no subscriber, no cost,
	// no buffering — the snapshot frame carries their totals instead.
	c.RunDone(nil, RunEvent{Campaign: "k", MaskID: 0, Class: "Masked", Status: "completed"})
	c.RunDone(nil, RunEvent{Campaign: "k", MaskID: 1, Class: "SDC", Status: "completed"})

	srv := httptest.NewServer(es)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	snap := readFrames(t, br, 1)[0]
	if snap.event != "snapshot" {
		t.Fatalf("first frame event = %q, want snapshot", snap.event)
	}
	if !strings.Contains(snap.data, `"runs_done": 2`) && !strings.Contains(snap.data, `"runs_done":2`) {
		t.Fatalf("snapshot frame does not carry the pre-subscribe runs: %s", snap.data)
	}

	// A run finishing after the subscribe arrives as a live frame.
	c.RunDone(nil, RunEvent{Campaign: "k", MaskID: 2, Class: "DUE", Status: "completed"})
	run := readFrames(t, br, 1)[0]
	if run.event != "run" {
		t.Fatalf("live frame event = %q, want run", run.event)
	}
	if !strings.Contains(run.data, `"MaskID":2`) || !strings.Contains(run.data, `"Class":"DUE"`) {
		t.Fatalf("run frame does not carry the event: %s", run.data)
	}
}

// TestEventStreamSlowConsumer fills a subscriber channel past its
// buffer without draining it and checks broadcast stays non-blocking:
// every excess event is dropped and counted, none stalls the sender.
func TestEventStreamSlowConsumer(t *testing.T) {
	c := New()
	es := NewEventStream(c)
	defer es.Close()
	ch := es.subscribe()
	if ch == nil {
		t.Fatal("subscribe returned nil on an open stream")
	}
	defer es.unsubscribe(ch)

	const extra = 50
	done := make(chan struct{})
	go func() {
		for i := 0; i < subBuffer+extra; i++ {
			es.RunEvent(RunEvent{MaskID: i, Class: "Masked"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("broadcast blocked on a slow consumer")
	}
	if got := es.Dropped(); got != extra {
		t.Fatalf("Dropped() = %d, want %d", got, extra)
	}
	if len(ch) != subBuffer {
		t.Fatalf("subscriber buffer holds %d frames, want %d", len(ch), subBuffer)
	}
}

// TestEventStreamNoSubscriberFastPath checks a stream with no
// subscribers drops broadcasts before marshalling: an unmarshalable
// value must not matter, and nothing is counted as dropped.
func TestEventStreamNoSubscriberFastPath(t *testing.T) {
	es := NewEventStream(New())
	defer es.Close()
	es.broadcast("run", make(chan int)) // json.Marshal would fail; fast path skips it
	if es.Dropped() != 0 {
		t.Fatalf("Dropped() = %d with no subscribers", es.Dropped())
	}
}

// TestEventStreamClose checks closed streams refuse new subscribers
// with 410 Gone, disconnect existing ones, and Close is idempotent.
func TestEventStreamClose(t *testing.T) {
	c := New()
	es := NewEventStream(c)
	srv := httptest.NewServer(es)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	readFrames(t, br, 1) // the snapshot frame: the subscriber is live

	es.Close()
	es.Close() // idempotent
	// The live subscriber's channel is closed: the stream ends.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := br.ReadString('\n'); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream did not end after Close")
		}
	}
	resp.Body.Close()

	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusGone {
		t.Fatalf("subscribe after Close: %d, want %d", resp2.StatusCode, http.StatusGone)
	}

	// Broadcasting into a closed stream is a no-op, not a panic.
	es.RunEvent(RunEvent{Class: "Masked"})
}

// TestHandlerWithEvents checks the /events route mounts over the
// standard handler without displacing /metrics.
func TestHandlerWithEvents(t *testing.T) {
	c := New()
	c.Start(1)
	es := NewEventStream(c)
	defer es.Close()
	srv := httptest.NewServer(c.HandlerWithEvents(es))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}
}
