package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestConcurrentAggregator hammers the collector from many goroutines
// and checks every snapshot total against the exactly-known ground
// truth. Run under -race this is the aggregator's thread-safety proof.
func TestConcurrentAggregator(t *testing.T) {
	const (
		goroutines    = 16
		runsPerWorker = 500
	)
	classes := []string{"Masked", "SDC", "DUE", "Timeout"}

	c := New()
	c.Start(goroutines)
	c.AddQueued(goroutines * runsPerWorker)
	camp := c.Campaign("k", "gefin-x86", "qsort", "rf.int")

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runsPerWorker; i++ {
				c.RunStarted()
				ev := RunEvent{
					Campaign:      "k",
					Class:         classes[(g+i)%len(classes)],
					Status:        "completed",
					Cycles:        7,
					Wall:          time.Microsecond,
					WatchedReads:  10,
					WatchedWrites: 4,
					ObservedReads: 2,
				}
				if i%5 == 0 {
					ev.EarlyStop = "overwritten"
				}
				c.RunDone(camp, ev)
			}
		}(g)
	}
	wg.Wait()

	s := c.Snapshot()
	total := uint64(goroutines * runsPerWorker)
	if s.RunsQueued != total || s.RunsStarted != total || s.RunsDone != total {
		t.Fatalf("queued/started/done = %d/%d/%d, want all %d",
			s.RunsQueued, s.RunsStarted, s.RunsDone, total)
	}
	if s.SimCycles != 7*total {
		t.Fatalf("SimCycles = %d, want %d", s.SimCycles, 7*total)
	}
	if want := total / 5; s.EarlyStops != want {
		t.Fatalf("EarlyStops = %d, want %d", s.EarlyStops, want)
	}
	if s.WatchedReads != 10*total || s.WatchedWrites != 4*total || s.ObservedReads != 2*total || s.ObservedWrites != 0 {
		t.Fatalf("watched/observed counters = %d/%d/%d/%d",
			s.WatchedReads, s.WatchedWrites, s.ObservedReads, s.ObservedWrites)
	}
	// 12 of 14 watched accesses per run skip the observation slow path.
	if want := 1 - 2.0/14.0; s.FastPathRate < want-1e-9 || s.FastPathRate > want+1e-9 {
		t.Fatalf("FastPathRate = %v, want %v", s.FastPathRate, want)
	}
	var sum uint64
	for _, cls := range classes {
		n := s.ClassCounts[cls]
		if n != total/uint64(len(classes)) {
			t.Fatalf("ClassCounts[%s] = %d, want %d", cls, n, total/uint64(len(classes)))
		}
		sum += n
	}
	if sum != total {
		t.Fatalf("class counts sum to %d, want %d", sum, total)
	}
	if s.StatusCounts["completed"] != total {
		t.Fatalf("StatusCounts[completed] = %d, want %d", s.StatusCounts["completed"], total)
	}
	if len(s.Campaigns) != 1 {
		t.Fatalf("got %d campaign rows, want 1", len(s.Campaigns))
	}
	row := s.Campaigns[0]
	if row.Runs != total || row.Cycles != 7*total {
		t.Fatalf("campaign row runs/cycles = %d/%d, want %d/%d", row.Runs, row.Cycles, total, 7*total)
	}
}

// TestCampaignRegistrationIdempotent checks that re-registering a key
// returns the same row rather than splitting its counters.
func TestCampaignRegistrationIdempotent(t *testing.T) {
	c := New()
	a := c.Campaign("k", "t", "b", "s")
	b := c.Campaign("k", "t", "b", "s")
	if a != b {
		t.Fatal("same key registered twice returned distinct rows")
	}
	c.RunDone(a, RunEvent{Class: "Masked"})
	c.RunDone(b, RunEvent{Class: "Masked"})
	if got := c.Snapshot().Campaigns[0].Runs; got != 2 {
		t.Fatalf("campaign runs = %d, want 2", got)
	}
}

// TestGoldenSource checks lazy golden-cache stats and the derived rate.
func TestGoldenSource(t *testing.T) {
	c := New()
	if s := c.Snapshot(); s.GoldenRuns != 0 || s.GoldenHitRate != 0 {
		t.Fatalf("snapshot before source: runs=%d rate=%v", s.GoldenRuns, s.GoldenHitRate)
	}
	c.SetGoldenSource(func() (uint64, uint64) { return 3, 9 })
	s := c.Snapshot()
	if s.GoldenRuns != 3 || s.GoldenHits != 9 {
		t.Fatalf("golden = %d+%d, want 3+9", s.GoldenRuns, s.GoldenHits)
	}
	if s.GoldenHitRate != 0.75 {
		t.Fatalf("GoldenHitRate = %v, want 0.75", s.GoldenHitRate)
	}
}

// TestSnapshotJSONRoundTrip checks the JSON rendering parses back into
// an identical snapshot.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := New()
	c.Start(2)
	c.AddQueued(1)
	c.RunStarted()
	cs := c.Campaign("k", "mafin-x86", "sha", "l1d.data")
	c.RunDone(cs, RunEvent{Class: "SDC", Status: "completed", Cycles: 42, WatchedReads: 5, ObservedReads: 1})
	s := c.Snapshot()

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.RunsDone != 1 || back.ClassCounts["SDC"] != 1 || back.SimCycles != 42 {
		t.Fatalf("round-trip lost counters: %+v", back)
	}
	if len(back.Campaigns) != 1 || back.Campaigns[0].Benchmark != "sha" {
		t.Fatalf("round-trip lost campaign rows: %+v", back.Campaigns)
	}
}

// TestClassOrdering checks the paper's presentation order for known
// classes and the alphabetical tail for unknown ones.
func TestClassOrdering(t *testing.T) {
	s := Snapshot{ClassCounts: map[string]uint64{
		"Zeta": 1, "SDC": 2, "Masked": 3, "Assert": 4, "Alpha": 5,
	}}
	want := "Masked=3 SDC=2 Assert=4 Alpha=5 Zeta=1"
	if got := s.ClassString(); got != want {
		t.Fatalf("ClassString = %q, want %q", got, want)
	}
}

// TestWritePrometheus checks the exposition contains the labeled
// counters and the campaign rows, and is deterministic across calls.
func TestWritePrometheus(t *testing.T) {
	c := New()
	c.Start(1)
	cs := c.Campaign("k", "gefin-arm", "qsort", "rf.int")
	c.RunDone(cs, RunEvent{Class: "DUE", Status: "sim-crash", Cycles: 10})
	s := c.Snapshot()

	var a, b bytes.Buffer
	if err := s.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Prometheus exposition is not deterministic")
	}
	for _, want := range []string{
		"faultinject_runs_done_total 1",
		"faultinject_sim_cycles_total 10",
		`faultinject_class_total{class="DUE"} 1`,
		`faultinject_status_total{status="sim-crash"} 1`,
		`faultinject_campaign_class_total{tool="gefin-arm",benchmark="qsort",structure="rf.int",class="DUE"} 1`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHandler checks /metrics, /snapshot.json, the index, and that the
// pprof mux is mounted.
func TestHandler(t *testing.T) {
	c := New()
	c.Start(1)
	c.RunDone(nil, RunEvent{Class: "Masked", Status: "completed"})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "faultinject_runs_done_total 1") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get("/snapshot.json")
	if code != http.StatusOK {
		t.Fatalf("/snapshot.json: code=%d", code)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/snapshot.json does not parse: %v", err)
	}
	if s.RunsDone != 1 {
		t.Fatalf("/snapshot.json RunsDone = %d, want 1", s.RunsDone)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/debug/pprof") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/: code=%d body=%q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
}

// TestServe checks the real listener path with ":0" port selection.
func TestServe(t *testing.T) {
	c := New()
	srv, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
}

// syncWriter serializes Reporter writes for inspection.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestReporter checks periodic progress lines appear and Stop is
// idempotent and final (no lines after).
func TestReporter(t *testing.T) {
	c := New()
	c.Start(1)
	c.AddQueued(10)
	c.RunDone(nil, RunEvent{Class: "Masked", Status: "completed", Cycles: 1})

	var w syncWriter
	r := StartReporter(c, &w, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(w.String(), "runs") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	out := w.String()
	if !strings.Contains(out, "1/10 runs") {
		t.Fatalf("progress output missing run counts: %q", out)
	}
	if !strings.Contains(out, "Masked=1") {
		t.Fatalf("progress output missing class histogram: %q", out)
	}
	time.Sleep(5 * time.Millisecond)
	if w.String() != out {
		t.Fatal("reporter printed after Stop")
	}
}

// TestTraceSinkDeterministic inserts events in scrambled order across
// goroutines and checks the flushed bytes are identical to a serial
// in-order flush — the worker-count independence property.
func TestTraceSinkDeterministic(t *testing.T) {
	mkEvent := func(camp string, id int) RunEvent {
		return RunEvent{
			Campaign: camp,
			MaskID:   id,
			Sites:    []fault.Site{{Structure: "rf.int", Entry: id, Bit: id % 8, Cycle: uint64(id) * 3}},
			Status:   "completed",
			Class:    "Masked",
			Cycles:   uint64(100 + id),
			Observed: id%2 == 0,
		}
	}

	serial := NewTraceSink()
	for _, camp := range []string{"a", "b"} {
		for id := 0; id < 50; id++ {
			serial.RunEvent(mkEvent(camp, id))
		}
	}
	var want bytes.Buffer
	if err := serial.Flush(&want); err != nil {
		t.Fatal(err)
	}

	scrambled := NewTraceSink()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				camp := "a"
				if g >= 2 {
					camp = "b"
				}
				scrambled.RunEvent(mkEvent(camp, (g%2)*25+i))
			}
		}(g)
	}
	wg.Wait()
	if scrambled.Len() != 100 {
		t.Fatalf("scrambled sink has %d records, want 100", scrambled.Len())
	}
	var got bytes.Buffer
	if err := scrambled.Flush(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("trace bytes depend on insertion order")
	}
}

// TestCollectorSinkFanout checks every sink sees every event exactly
// once.
func TestCollectorSinkFanout(t *testing.T) {
	c := New()
	a, b := NewTraceSink(), NewTraceSink()
	c.AddSink(a)
	c.AddSink(b)
	for i := 0; i < 10; i++ {
		c.RunDone(nil, RunEvent{Campaign: "k", MaskID: i, Class: "Masked"})
	}
	if a.Len() != 10 || b.Len() != 10 {
		t.Fatalf("sink lengths = %d/%d, want 10/10", a.Len(), b.Len())
	}
}

// TestSummaryLine spot-checks the final one-line campaign summary.
func TestSummaryLine(t *testing.T) {
	s := Snapshot{
		RunsDone:       240,
		ElapsedSeconds: 2.0,
		RunsPerSec:     120,
		McyclesPerSec:  3.5,
		ClassCounts:    map[string]uint64{"Masked": 200, "SDC": 40},
	}
	want := "240 runs in 2.0s (120.0 runs/s, 3.5 Mcyc/s): Masked=200 SDC=40"
	if got := s.SummaryLine(); got != want {
		t.Fatalf("SummaryLine = %q, want %q", got, want)
	}
}

// TestProgressLineShape checks the optional segments only appear when
// their counters are live.
func TestProgressLineShape(t *testing.T) {
	bare := Snapshot{ElapsedSeconds: 1, RunsDone: 1, RunsQueued: 2}
	line := bare.ProgressLine()
	for _, banned := range []string{"util", "golden", "fastpath"} {
		if strings.Contains(line, banned) {
			t.Errorf("bare progress line has %q segment: %q", banned, line)
		}
	}
	full := Snapshot{
		ElapsedSeconds: 1, RunsDone: 1, RunsQueued: 2, Workers: 4,
		GoldenRuns: 1, GoldenHits: 3, WatchedReads: 10, ObservedReads: 1,
		FastPathRate: 0.9, WorkerUtilization: 0.5,
		ClassCounts: map[string]uint64{"SDC": 1},
	}
	line = full.ProgressLine()
	for _, want := range []string{"util 50%", "golden 1+3hit", "fastpath 90.0%", "SDC=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("full progress line missing %q: %q", want, line)
		}
	}
}

// TestZeroElapsedNoNaN guards the rate math against division by zero
// before Start.
func TestZeroElapsedNoNaN(t *testing.T) {
	c := New()
	c.RunDone(nil, RunEvent{Class: "Masked"})
	s := c.Snapshot()
	b, err := s.JSON()
	if err != nil {
		t.Fatalf("snapshot with zero elapsed does not serialize: %v", err)
	}
	if strings.Contains(string(b), "NaN") || strings.Contains(string(b), "Inf") {
		t.Fatalf("snapshot has non-finite gauges: %s", b)
	}
}

// TestResumedAndPanicCounters pins the crash-safety counters: resumed
// events count toward run totals and class histograms (so resumed
// campaign snapshots still balance) but not toward simulated cycles,
// and both counters surface in the progress line and the Prometheus
// exposition.
func TestResumedAndPanicCounters(t *testing.T) {
	c := New()
	c.Start(2)
	c.AddQueued(2)
	camp := c.Campaign("k", "t", "b", "s")
	c.RunStarted()
	c.RunDone(camp, RunEvent{Campaign: "k", Class: "Masked", Status: "completed", Cycles: 100})
	c.RunStarted()
	c.RunDone(camp, RunEvent{Campaign: "k", Class: "SDC", Status: "completed", Cycles: 100, Resumed: true})
	c.PanicContained()
	s := c.Snapshot()
	if s.RunsDone != 2 || s.Resumed != 1 || s.PanicsContained != 1 {
		t.Fatalf("done/resumed/panics = %d/%d/%d, want 2/1/1", s.RunsDone, s.Resumed, s.PanicsContained)
	}
	if s.SimCycles != 100 {
		t.Fatalf("SimCycles = %d, want 100 (resumed cycles are another process's work)", s.SimCycles)
	}
	if s.ClassCounts["SDC"] != 1 || s.ClassCounts["Masked"] != 1 {
		t.Fatalf("class counts %v, want the resumed run included", s.ClassCounts)
	}
	line := s.ProgressLine()
	for _, want := range []string{"resumed 1", "panics 1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q lacks %q", line, want)
		}
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"faultinject_resumed_total 1", "faultinject_panics_contained_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("prometheus output lacks %q", want)
		}
	}
}
