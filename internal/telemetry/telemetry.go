// Package telemetry is the observability layer of the injection
// framework: an allocation-light event path the campaign scheduler emits
// into, a lock-free aggregator of campaign counters and gauges, and the
// consumers built on top of them — periodic human-readable progress
// lines, JSON / Prometheus snapshots served over HTTP, and the JSONL
// injection trace sink.
//
// The hot path is Collector.RunDone: a handful of atomic adds plus a
// sync.Map counter bump per finished injection run. Campaign rows are
// registered up front by the scheduler, so no per-run allocation or map
// construction happens while workers are hot. When no Collector is
// attached to the scheduler the event path costs nothing at all.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// RunEvent is the run-end lifecycle event of one injection run. The
// scheduler fills it after the run's record is in hand and hands it to
// Collector.RunDone, which folds it into the counters and fans it out to
// the attached sinks.
type RunEvent struct {
	// Campaign is the {tool, benchmark, structure} campaign key.
	Campaign string
	// Tool, Benchmark, Structure label the campaign row.
	Tool, Benchmark, Structure string
	// MaskID and Sites are the injected mask's coordinates.
	MaskID int
	Sites  []fault.Site
	// Status is the raw run status string; Class the default parser's
	// classification of the run.
	Status string
	Class  string
	// Cycles is the simulated cycle count; Wall the host wall time of
	// the run.
	Cycles uint64
	Wall   time.Duration
	// Observed reports whether any read consumed the faulty location,
	// and FirstObsCycle when the first one did.
	Observed      bool
	FirstObsCycle uint64
	// EarlyStop names the §III.B proof that ended an early-masked run
	// ("overwritten" or "skipped-invalid"); empty otherwise.
	EarlyStop string
	// WatchedReads/WatchedWrites are the total accesses to the run's
	// watched (fault-armed) arrays; ObservedReads/ObservedWrites the
	// subset that took the observation slow path. Their difference is
	// the bitarray fast-path hit count.
	WatchedReads, WatchedWrites   uint64
	ObservedReads, ObservedWrites uint64
	// Pruned marks a run the liveness pruner settled without simulation:
	// "dead" (provably masked at plan time) or "replicated" (verdict
	// copied from an equivalence-class representative); empty for
	// simulated runs. Pruned events carry zero Cycles/Wall and are
	// excluded from the throughput gauges.
	Pruned string
	// RepMask is the representative's mask ID for replicated runs, -1
	// otherwise.
	RepMask int
	// LadderRestored reports that the run restored from a checkpoint
	// rung (rather than booting), and RungCycle the capture cycle of
	// that rung.
	LadderRestored bool
	RungCycle      uint64
	// Resumed marks a run whose record was loaded from the durable run
	// journal of an earlier (interrupted) process instead of being
	// re-simulated. Resumed events carry the journaled outcome and trace
	// provenance but zero Wall, and are excluded from the throughput
	// gauges; the trace sink serializes them like any other run, which is
	// what keeps a resumed trace byte-identical to an uninterrupted one.
	Resumed bool
	// Windowed marks a run executed under a detail window (sampled
	// execution); WindowEntered reports that it was seeded from the
	// functional fast tier, WindowExited that it handed back to it once
	// the fault settled. FastSteps counts the instructions executed on
	// the functional tier (entry fast-forward plus tail) and
	// DetailCycles the cycles actually simulated cycle-accurately.
	Windowed      bool
	WindowEntered bool
	WindowExited  bool
	FastSteps     uint64
	DetailCycles  uint64
	// Diverged reports that the divergence probe saw the run's
	// committed-instruction stream leave the golden path (false when no
	// divergence recording is attached).
	Diverged bool
	// Stopped marks a run the cell's sequential stopping rule cancelled
	// before simulation. Stopped events carry zero Cycles/Wall and are
	// excluded from the throughput gauges, like pruned ones.
	Stopped bool
	// Weight is the record's Horvitz–Thompson sampling weight; zero for
	// uniformly drawn masks (read as 1 by the estimators).
	Weight float64
}

// Sink consumes run-end events, e.g. the JSONL trace writer. RunEvent
// must be safe for concurrent use; the scheduler's workers call it
// directly.
type Sink interface {
	RunEvent(ev RunEvent)
}

// counterMap is a grow-only map of named atomic counters. Bumping an
// existing key is lock-free (sync.Map read path); only the first bump of
// a new key allocates.
type counterMap struct{ m sync.Map }

func (c *counterMap) add(key string, n uint64) {
	if v, ok := c.m.Load(key); ok {
		v.(*atomic.Uint64).Add(n)
		return
	}
	v, _ := c.m.LoadOrStore(key, new(atomic.Uint64))
	v.(*atomic.Uint64).Add(n)
}

func (c *counterMap) snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	c.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

// CampaignStats is the per-{tool, benchmark, structure} aggregate. The
// scheduler registers one per campaign before dispatch and hands the
// pointer to every run of that campaign, so the hot path never looks a
// campaign up.
type CampaignStats struct {
	Tool, Benchmark, Structure string

	runs    atomic.Uint64
	cycles  atomic.Uint64
	classes counterMap
}

func (cs *CampaignStats) record(ev RunEvent) {
	cs.runs.Add(1)
	cs.cycles.Add(ev.Cycles)
	cs.classes.add(ev.Class, 1)
}

// Collector is the lock-free aggregator of campaign telemetry. One
// Collector may span several RunMatrix calls (e.g. the five figures of a
// full reproduction); counters only ever grow.
type Collector struct {
	startNanos atomic.Int64 // wall-clock start, first Start wins
	workers    atomic.Int64

	queued       atomic.Uint64
	started      atomic.Uint64
	done         atomic.Uint64
	earlyStops   atomic.Uint64
	divergedRuns atomic.Uint64
	simCycles    atomic.Uint64
	busyNanos    atomic.Int64

	prunedDead       atomic.Uint64
	prunedReplicated atomic.Uint64
	ladderRestores   atomic.Uint64
	resumed          atomic.Uint64
	panicsContained  atomic.Uint64

	windowedRuns  atomic.Uint64
	windowEntries atomic.Uint64
	windowExits   atomic.Uint64
	fastSteps     atomic.Uint64
	detailCycles  atomic.Uint64

	watchedReads, watchedWrites   atomic.Uint64
	observedReads, observedWrites atomic.Uint64

	stoppedRuns      atomic.Uint64
	cellsStopped     atomic.Uint64
	effectiveMargin  atomic.Uint64 // math.Float64bits, CAS-max across cells
	importanceWeight atomic.Uint64 // math.Float64bits, CAS-add of run weights

	statuses counterMap
	classes  counterMap

	goldenSource atomic.Value // func() (runs, hits uint64)
	ffSource     atomic.Value // func() (hits, builds uint64)
	decodeSource atomic.Value // func() (hits, misses uint64)
	sinks        atomic.Value // []Sink, copy-on-write

	mu        sync.Mutex // guards campaign registration only
	campaigns []*CampaignStats
	index     map[string]*CampaignStats
}

// New returns an empty Collector.
func New() *Collector {
	return &Collector{index: make(map[string]*CampaignStats)}
}

// Start stamps the wall-clock origin of the rate gauges and records the
// worker-pool size. The first call wins the origin; the worker count is
// updated every call (the last matrix dispatched decides it).
func (c *Collector) Start(workers int) {
	c.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	c.workers.Store(int64(workers))
}

// AddQueued accounts n runs entering the scheduler queue.
func (c *Collector) AddQueued(n int) { c.queued.Add(uint64(n)) } //nolint:gosec // n >= 0

// RunStarted accounts one run leaving the queue for a worker.
func (c *Collector) RunStarted() { c.started.Add(1) }

// PanicContained accounts one worker panic the scheduler's recover
// boundary converted into a per-run error.
func (c *Collector) PanicContained() { c.panicsContained.Add(1) }

// CellStopped accounts one campaign cell whose sequential stopping rule
// fired before the fixed budget was exhausted, and folds the cell's
// achieved margin into the effective-margin gauge (the worst — widest —
// margin across decided cells, a conservative summary of the fleet's
// statistical resolution).
func (c *Collector) CellStopped(effectiveMargin float64) {
	c.cellsStopped.Add(1)
	c.ObserveCellMargin(effectiveMargin)
}

// ObserveCellMargin folds one cell's achieved margin into the
// effective-margin gauge without counting a stop (used for cells that
// ran to budget, and for exhaustive cells reporting margin zero).
func (c *Collector) ObserveCellMargin(margin float64) {
	if margin < 0 || math.IsNaN(margin) {
		return
	}
	for {
		old := c.effectiveMargin.Load()
		if math.Float64frombits(old) >= margin {
			return
		}
		if c.effectiveMargin.CompareAndSwap(old, math.Float64bits(margin)) {
			return
		}
	}
}

// addWeight CAS-adds one run's importance weight into the float
// accumulator.
func (c *Collector) addWeight(w float64) {
	for {
		old := c.importanceWeight.Load()
		next := math.Float64bits(math.Float64frombits(old) + w)
		if c.importanceWeight.CompareAndSwap(old, next) {
			return
		}
	}
}

// Campaign registers (or returns the existing) per-campaign aggregate
// for a key. Registration takes a lock; it happens once per campaign at
// matrix-build time, never per run.
func (c *Collector) Campaign(key, tool, bench, structure string) *CampaignStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cs, ok := c.index[key]; ok {
		return cs
	}
	cs := &CampaignStats{Tool: tool, Benchmark: bench, Structure: structure}
	c.index[key] = cs
	c.campaigns = append(c.campaigns, cs)
	return cs
}

// SetGoldenSource attaches a live reader of golden-cache statistics
// (performed runs, memoized hits); the snapshot pulls it lazily so the
// cache needs no back-reference to the collector.
func (c *Collector) SetGoldenSource(f func() (runs, hits uint64)) {
	c.goldenSource.Store(f)
}

// SetFFRungSource attaches a live reader of the functional fast-forward
// rung ladder statistics (window entries seeded from a memoized rung,
// rung captures built); pulled lazily like the golden source.
func (c *Collector) SetFFRungSource(f func() (hits, builds uint64)) {
	c.ffSource.Store(f)
}

// SetDecodeSource attaches a live reader of the functional tier's
// predecoded-instruction cache statistics (dispatches served from the
// cache, dispatches through the byte-level decoder); pulled lazily like
// the golden source.
func (c *Collector) SetDecodeSource(f func() (hits, misses uint64)) {
	c.decodeSource.Store(f)
}

// AddSink attaches a run-event sink (e.g. a trace writer).
func (c *Collector) AddSink(s Sink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sinks []Sink
	if v := c.sinks.Load(); v != nil {
		sinks = append(sinks, v.([]Sink)...)
	}
	c.sinks.Store(append(sinks, s))
}

// RunDone folds one finished run into the aggregate and fans the event
// out to the sinks. cs may be nil for runs outside any registered
// campaign.
func (c *Collector) RunDone(cs *CampaignStats, ev RunEvent) {
	c.done.Add(1)
	if ev.Pruned == "" && !ev.Resumed {
		// Pruned runs simulated nothing and resumed runs simulated in an
		// earlier process; keeping their cycles out of the accumulator
		// keeps the Mcycles/s gauge about this process's work.
		c.simCycles.Add(ev.Cycles)
	}
	if ev.Resumed {
		c.resumed.Add(1)
	}
	c.busyNanos.Add(int64(ev.Wall))
	c.watchedReads.Add(ev.WatchedReads)
	c.watchedWrites.Add(ev.WatchedWrites)
	c.observedReads.Add(ev.ObservedReads)
	c.observedWrites.Add(ev.ObservedWrites)
	if ev.EarlyStop != "" {
		c.earlyStops.Add(1)
	}
	if ev.Diverged {
		c.divergedRuns.Add(1)
	}
	switch ev.Pruned {
	case "dead":
		c.prunedDead.Add(1)
	case "replicated":
		c.prunedReplicated.Add(1)
	}
	if ev.LadderRestored {
		c.ladderRestores.Add(1)
	}
	if ev.Stopped {
		c.stoppedRuns.Add(1)
	}
	if ev.Weight > 0 {
		c.addWeight(ev.Weight)
	}
	if ev.Windowed {
		c.windowedRuns.Add(1)
	}
	if ev.WindowEntered {
		c.windowEntries.Add(1)
	}
	if ev.WindowExited {
		c.windowExits.Add(1)
	}
	c.fastSteps.Add(ev.FastSteps)
	c.detailCycles.Add(ev.DetailCycles)
	c.statuses.add(ev.Status, 1)
	c.classes.add(ev.Class, 1)
	if cs != nil {
		cs.record(ev)
	}
	if v := c.sinks.Load(); v != nil {
		for _, s := range v.([]Sink) {
			s.RunEvent(ev)
		}
	}
}

// Snapshot captures a consistent-enough view of every counter and the
// derived gauges. Counters are read individually (not under one lock),
// so totals may be off by in-flight runs — fine for live metrics; the
// final snapshot after the scheduler returns is exact.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Workers:             int(c.workers.Load()),
		RunsQueued:          c.queued.Load(),
		RunsStarted:         c.started.Load(),
		RunsDone:            c.done.Load(),
		EarlyStops:          c.earlyStops.Load(),
		DivergedRuns:        c.divergedRuns.Load(),
		PrunedDead:          c.prunedDead.Load(),
		PrunedReplicated:    c.prunedReplicated.Load(),
		LadderRestores:      c.ladderRestores.Load(),
		Resumed:             c.resumed.Load(),
		PanicsContained:     c.panicsContained.Load(),
		SimCycles:           c.simCycles.Load(),
		WindowedRuns:        c.windowedRuns.Load(),
		WindowEntries:       c.windowEntries.Load(),
		WindowExits:         c.windowExits.Load(),
		FastSteps:           c.fastSteps.Load(),
		DetailCycles:        c.detailCycles.Load(),
		WatchedReads:        c.watchedReads.Load(),
		WatchedWrites:       c.watchedWrites.Load(),
		ObservedReads:       c.observedReads.Load(),
		ObservedWrites:      c.observedWrites.Load(),
		StoppedRuns:         c.stoppedRuns.Load(),
		CellsStoppedEarly:   c.cellsStopped.Load(),
		EffectiveMargin:     math.Float64frombits(c.effectiveMargin.Load()),
		ImportanceWeightSum: math.Float64frombits(c.importanceWeight.Load()),
		StatusCounts:        c.statuses.snapshot(),
		ClassCounts:         c.classes.snapshot(),
	}
	if start := c.startNanos.Load(); start != 0 {
		s.ElapsedSeconds = time.Since(time.Unix(0, start)).Seconds()
	}
	if s.ElapsedSeconds > 0 {
		s.RunsPerSec = float64(s.RunsDone) / s.ElapsedSeconds
		s.McyclesPerSec = float64(s.SimCycles) / 1e6 / s.ElapsedSeconds
		if s.Workers > 0 {
			s.WorkerUtilization = float64(c.busyNanos.Load()) / 1e9 / s.ElapsedSeconds / float64(s.Workers)
		}
	}
	if v := c.goldenSource.Load(); v != nil {
		s.GoldenRuns, s.GoldenHits = v.(func() (uint64, uint64))()
		if total := s.GoldenRuns + s.GoldenHits; total > 0 {
			s.GoldenHitRate = float64(s.GoldenHits) / float64(total)
		}
	}
	if v := c.ffSource.Load(); v != nil {
		s.FFRungHits, s.FFRungBuilds = v.(func() (uint64, uint64))()
	}
	if v := c.decodeSource.Load(); v != nil {
		s.DecodeHits, s.DecodeMisses = v.(func() (uint64, uint64))()
		if total := s.DecodeHits + s.DecodeMisses; total > 0 {
			s.DecodeHitRate = float64(s.DecodeHits) / float64(total)
		}
	}
	if total := s.WatchedReads + s.WatchedWrites; total > 0 {
		s.FastPathRate = 1 - float64(s.ObservedReads+s.ObservedWrites)/float64(total)
	}
	if s.RunsDone > 0 {
		s.PruneRate = float64(s.PrunedDead+s.PrunedReplicated) / float64(s.RunsDone)
	}
	if total := s.FastSteps + s.DetailCycles; total > 0 {
		// Fast-tier instructions and detail-window cycles are the two
		// tiers' units of work actually performed; their ratio is the
		// share of execution the detail window moved off the expensive
		// model. (SimCycles is the wrong denominator: composed windowed
		// records report whole-run cycle counts, fast-forwarded spans
		// included.)
		s.FastTierShare = float64(s.FastSteps) / float64(total)
	}
	c.mu.Lock()
	campaigns := append([]*CampaignStats(nil), c.campaigns...)
	c.mu.Unlock()
	for _, cs := range campaigns {
		s.Campaigns = append(s.Campaigns, CampaignSnapshot{
			Tool:      cs.Tool,
			Benchmark: cs.Benchmark,
			Structure: cs.Structure,
			Runs:      cs.runs.Load(),
			Cycles:    cs.cycles.Load(),
			Classes:   cs.classes.snapshot(),
		})
	}
	sort.Slice(s.Campaigns, func(i, j int) bool {
		a, b := s.Campaigns[i], s.Campaigns[j]
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Structure < b.Structure
	})
	return s
}
