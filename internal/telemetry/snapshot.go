package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Snapshot is a point-in-time view of the aggregate: every counter plus
// the derived rate gauges, serializable as JSON and as Prometheus text
// exposition.
type Snapshot struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Workers        int     `json:"workers"`

	RunsQueued   uint64 `json:"runs_queued"`
	RunsStarted  uint64 `json:"runs_started"`
	RunsDone     uint64 `json:"runs_done"`
	EarlyStops   uint64 `json:"early_stops"`
	DivergedRuns uint64 `json:"diverged_runs"`

	PrunedDead       uint64  `json:"pruned_dead"`
	PrunedReplicated uint64  `json:"pruned_replicated"`
	PruneRate        float64 `json:"prune_rate"`
	LadderRestores   uint64  `json:"ladder_restores"`
	Resumed          uint64  `json:"resumed"`
	PanicsContained  uint64  `json:"panics_contained"`

	WindowedRuns  uint64  `json:"windowed_runs"`
	WindowEntries uint64  `json:"window_entries"`
	WindowExits   uint64  `json:"window_exits"`
	FastSteps     uint64  `json:"fast_steps"`
	DetailCycles  uint64  `json:"detail_cycles"`
	FastTierShare float64 `json:"fast_tier_share"`

	RunsPerSec        float64 `json:"runs_per_sec"`
	SimCycles         uint64  `json:"sim_cycles"`
	McyclesPerSec     float64 `json:"mcycles_per_sec"`
	WorkerUtilization float64 `json:"worker_utilization"`

	GoldenRuns    uint64  `json:"golden_runs"`
	GoldenHits    uint64  `json:"golden_hits"`
	GoldenHitRate float64 `json:"golden_hit_rate"`

	// Functional-tier turbo gauges: window entries seeded from a
	// memoized fast-forward rung vs. rung captures built, and dynamic
	// dispatches served from the predecoded-instruction cache vs. pushed
	// through the byte-level decoder.
	FFRungHits    uint64  `json:"ff_rung_hits"`
	FFRungBuilds  uint64  `json:"ff_rung_builds"`
	DecodeHits    uint64  `json:"decode_hits"`
	DecodeMisses  uint64  `json:"decode_misses"`
	DecodeHitRate float64 `json:"decode_hit_rate"`

	WatchedReads   uint64  `json:"watched_reads"`
	WatchedWrites  uint64  `json:"watched_writes"`
	ObservedReads  uint64  `json:"observed_reads"`
	ObservedWrites uint64  `json:"observed_writes"`
	FastPathRate   float64 `json:"fast_path_rate"`

	// Adaptive-campaign gauges: runs cancelled by a cell's sequential
	// stopping rule, cells that stopped before their fixed budget, the
	// widest achieved margin across decided cells, and the sum of
	// Horvitz–Thompson importance weights folded into the estimators.
	StoppedRuns         uint64  `json:"stopped_runs"`
	CellsStoppedEarly   uint64  `json:"cells_stopped_early"`
	EffectiveMargin     float64 `json:"effective_margin"`
	ImportanceWeightSum float64 `json:"importance_weight_sum"`

	StatusCounts map[string]uint64  `json:"status_counts"`
	ClassCounts  map[string]uint64  `json:"class_counts"`
	Campaigns    []CampaignSnapshot `json:"campaigns,omitempty"`
}

// CampaignSnapshot is the per-{tool, benchmark, structure} slice of a
// Snapshot.
type CampaignSnapshot struct {
	Tool      string            `json:"tool"`
	Benchmark string            `json:"benchmark"`
	Structure string            `json:"structure"`
	Runs      uint64            `json:"runs"`
	Cycles    uint64            `json:"cycles"`
	Classes   map[string]uint64 `json:"classes"`
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// MergeSnapshots folds per-worker snapshots into one fleet-wide view —
// the coordinator's aggregation behind its /snapshot.json and /metrics.
// Raw counters and histograms add, ElapsedSeconds is the fleet maximum,
// and the derived gauges are recomputed from the summed counters (the
// throughput gauges divide the fleet's summed work by the maximum
// elapsed time, so they read as fleet throughput).
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	s := Snapshot{
		StatusCounts: map[string]uint64{},
		ClassCounts:  map[string]uint64{},
	}
	campIdx := map[[3]string]int{}
	var busySeconds float64 // worker-seconds inside runs, reconstructed
	for _, o := range snaps {
		if o.ElapsedSeconds > s.ElapsedSeconds {
			s.ElapsedSeconds = o.ElapsedSeconds
		}
		s.Workers += o.Workers
		s.RunsQueued += o.RunsQueued
		s.RunsStarted += o.RunsStarted
		s.RunsDone += o.RunsDone
		s.EarlyStops += o.EarlyStops
		s.DivergedRuns += o.DivergedRuns
		s.PrunedDead += o.PrunedDead
		s.PrunedReplicated += o.PrunedReplicated
		s.LadderRestores += o.LadderRestores
		s.Resumed += o.Resumed
		s.PanicsContained += o.PanicsContained
		s.WindowedRuns += o.WindowedRuns
		s.WindowEntries += o.WindowEntries
		s.WindowExits += o.WindowExits
		s.FastSteps += o.FastSteps
		s.DetailCycles += o.DetailCycles
		s.SimCycles += o.SimCycles
		s.GoldenRuns += o.GoldenRuns
		s.GoldenHits += o.GoldenHits
		s.FFRungHits += o.FFRungHits
		s.FFRungBuilds += o.FFRungBuilds
		s.DecodeHits += o.DecodeHits
		s.DecodeMisses += o.DecodeMisses
		s.WatchedReads += o.WatchedReads
		s.WatchedWrites += o.WatchedWrites
		s.ObservedReads += o.ObservedReads
		s.ObservedWrites += o.ObservedWrites
		s.StoppedRuns += o.StoppedRuns
		s.CellsStoppedEarly += o.CellsStoppedEarly
		s.ImportanceWeightSum += o.ImportanceWeightSum
		if o.EffectiveMargin > s.EffectiveMargin {
			// The fleet's effective margin is its worst cell's, so the
			// max — not the sum — survives merging.
			s.EffectiveMargin = o.EffectiveMargin
		}
		busySeconds += o.WorkerUtilization * o.ElapsedSeconds * float64(o.Workers)
		for k, v := range o.StatusCounts {
			s.StatusCounts[k] += v
		}
		for k, v := range o.ClassCounts {
			s.ClassCounts[k] += v
		}
		for _, cs := range o.Campaigns {
			key := [3]string{cs.Tool, cs.Benchmark, cs.Structure}
			i, ok := campIdx[key]
			if !ok {
				i = len(s.Campaigns)
				campIdx[key] = i
				s.Campaigns = append(s.Campaigns, CampaignSnapshot{
					Tool: cs.Tool, Benchmark: cs.Benchmark, Structure: cs.Structure,
					Classes: map[string]uint64{},
				})
			}
			s.Campaigns[i].Runs += cs.Runs
			s.Campaigns[i].Cycles += cs.Cycles
			for k, v := range cs.Classes {
				s.Campaigns[i].Classes[k] += v
			}
		}
	}
	sort.Slice(s.Campaigns, func(i, j int) bool {
		a, b := s.Campaigns[i], s.Campaigns[j]
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Structure < b.Structure
	})
	if s.ElapsedSeconds > 0 {
		s.RunsPerSec = float64(s.RunsDone) / s.ElapsedSeconds
		s.McyclesPerSec = float64(s.SimCycles) / 1e6 / s.ElapsedSeconds
		if s.Workers > 0 {
			s.WorkerUtilization = busySeconds / s.ElapsedSeconds / float64(s.Workers)
		}
	}
	if total := s.GoldenRuns + s.GoldenHits; total > 0 {
		s.GoldenHitRate = float64(s.GoldenHits) / float64(total)
	}
	if total := s.DecodeHits + s.DecodeMisses; total > 0 {
		s.DecodeHitRate = float64(s.DecodeHits) / float64(total)
	}
	if total := s.WatchedReads + s.WatchedWrites; total > 0 {
		s.FastPathRate = 1 - float64(s.ObservedReads+s.ObservedWrites)/float64(total)
	}
	if s.RunsDone > 0 {
		s.PruneRate = float64(s.PrunedDead+s.PrunedReplicated) / float64(s.RunsDone)
	}
	if total := s.FastSteps + s.DetailCycles; total > 0 {
		s.FastTierShare = float64(s.FastSteps) / float64(total)
	}
	return s
}

// classOrder is the paper's presentation order for the known classes;
// anything else (e.g. a coarse NonMasked) sorts after, alphabetically.
var classOrder = []string{"Masked", "SDC", "DUE", "Timeout", "Crash", "Assert"}

// orderedKeys returns the map keys with the known classes first in
// presentation order, the rest alphabetical.
func orderedKeys(m map[string]uint64) []string {
	rank := make(map[string]int, len(classOrder))
	for i, c := range classOrder {
		rank[c] = i
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, iok := rank[keys[i]]
		rj, jok := rank[keys[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return keys[i] < keys[j]
		}
	})
	return keys
}

// ProgressLine renders the one-line human-readable progress view the
// periodic reporter prints.
func (s Snapshot) ProgressLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%7.1fs] %d/%d runs  %.1f runs/s  %.1f Mcyc/s",
		s.ElapsedSeconds, s.RunsDone, s.RunsQueued, s.RunsPerSec, s.McyclesPerSec)
	if s.Workers > 0 {
		fmt.Fprintf(&b, "  util %.0f%%", 100*s.WorkerUtilization)
	}
	if s.GoldenRuns+s.GoldenHits > 0 {
		fmt.Fprintf(&b, "  golden %d+%dhit", s.GoldenRuns, s.GoldenHits)
	}
	if s.WatchedReads+s.WatchedWrites > 0 {
		fmt.Fprintf(&b, "  fastpath %.1f%%", 100*s.FastPathRate)
	}
	if s.PrunedDead+s.PrunedReplicated > 0 {
		fmt.Fprintf(&b, "  pruned %d+%drep (%.1f%%)", s.PrunedDead, s.PrunedReplicated, 100*s.PruneRate)
	}
	if s.LadderRestores > 0 {
		fmt.Fprintf(&b, "  restores %d", s.LadderRestores)
	}
	if s.WindowedRuns > 0 {
		fmt.Fprintf(&b, "  window %d/%d (fast %.1f%%)", s.WindowExits, s.WindowedRuns, 100*s.FastTierShare)
	}
	if s.DivergedRuns > 0 {
		fmt.Fprintf(&b, "  diverged %d", s.DivergedRuns)
	}
	if s.Resumed > 0 {
		fmt.Fprintf(&b, "  resumed %d", s.Resumed)
	}
	if s.CellsStoppedEarly > 0 {
		fmt.Fprintf(&b, "  stopped %dcell/%drun (margin %.3f)", s.CellsStoppedEarly, s.StoppedRuns, s.EffectiveMargin)
	}
	if s.ImportanceWeightSum > 0 {
		fmt.Fprintf(&b, "  wsum %.1f", s.ImportanceWeightSum)
	}
	if s.PanicsContained > 0 {
		fmt.Fprintf(&b, "  panics %d", s.PanicsContained)
	}
	if cls := s.ClassString(); cls != "" {
		fmt.Fprintf(&b, "  %s", cls)
	}
	return b.String()
}

// ClassString renders the outcome histogram as "Masked=12 SDC=3 ...".
func (s Snapshot) ClassString() string {
	parts := make([]string, 0, len(s.ClassCounts))
	for _, k := range orderedKeys(s.ClassCounts) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.ClassCounts[k]))
	}
	return strings.Join(parts, " ")
}

// SummaryLine renders the final one-line campaign summary: outcome
// counts, wall time, and throughput.
func (s Snapshot) SummaryLine() string {
	return fmt.Sprintf("%d runs in %.1fs (%.1f runs/s, %.1f Mcyc/s): %s",
		s.RunsDone, s.ElapsedSeconds, s.RunsPerSec, s.McyclesPerSec, s.ClassString())
}

// promEscape escapes a Prometheus label value.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// metricDef declares one scalar Prometheus metric: which Snapshot
// field it exports, under what name and type, and its help line. The
// exposition renders the table in order, so output is deterministic,
// and the prometheus completeness test cross-checks the table against
// the Snapshot struct by reflection — a new numeric snapshot field
// without a table entry fails CI instead of silently missing HELP/TYPE.
type metricDef struct {
	field string // Snapshot struct field name
	name  string // metric name without the faultinject_ prefix
	typ   string // "counter" or "gauge"
	help  string
}

// metricDefs lists every scalar metric in emission order.
var metricDefs = []metricDef{
	{"ElapsedSeconds", "elapsed_seconds", "gauge", "Wall-clock seconds since the collector started."},
	{"Workers", "workers", "gauge", "Scheduler worker-pool size."},
	{"RunsQueued", "runs_queued_total", "counter", "Injection runs entered into the scheduler queue."},
	{"RunsStarted", "runs_started_total", "counter", "Injection runs dispatched to workers."},
	{"RunsDone", "runs_done_total", "counter", "Injection runs finished."},
	{"EarlyStops", "early_stops_total", "counter", "Runs ended early by a provably-masked fault."},
	{"DivergedRuns", "diverged_runs_total", "counter", "Runs whose committed-instruction stream left the golden path."},
	{"PrunedDead", "pruned_dead_total", "counter", "Masks classified Masked at plan time without simulation."},
	{"PrunedReplicated", "pruned_replicated_total", "counter", "Masks whose verdict was copied from an equivalence-class representative."},
	{"PruneRate", "prune_rate", "gauge", "Fraction of finished runs settled without simulation."},
	{"LadderRestores", "ladder_restores_total", "counter", "Runs restored from a checkpoint-ladder rung instead of booting."},
	{"Resumed", "resumed_total", "counter", "Completed masks loaded from the run journal instead of re-simulated."},
	{"PanicsContained", "panics_contained_total", "counter", "Worker panics converted into per-run errors by the containment boundary."},
	{"SimCycles", "sim_cycles_total", "counter", "Simulated cycles across finished runs."},
	{"WindowedRuns", "windowed_runs_total", "counter", "Runs executed under a detail window (sampled execution)."},
	{"WindowEntries", "window_entries_total", "counter", "Runs seeded from the functional fast tier at the window entry."},
	{"WindowExits", "window_exits_total", "counter", "Runs handed back to the functional tier after the fault settled."},
	{"FastSteps", "fast_instrs_total", "counter", "Instructions executed on the functional fast tier."},
	{"DetailCycles", "detail_cycles_total", "counter", "Cycles simulated cycle-accurately inside detail windows."},
	{"FastTierShare", "fast_tier_share", "gauge", "Share of execution work done on the functional fast tier."},
	{"RunsPerSec", "runs_per_second", "gauge", "Finished runs per wall-clock second."},
	{"McyclesPerSec", "mcycles_per_second", "gauge", "Simulated megacycles per wall-clock second."},
	{"WorkerUtilization", "worker_utilization", "gauge", "Fraction of worker time spent inside runs."},
	{"GoldenRuns", "golden_runs_total", "counter", "Golden reference simulations performed."},
	{"GoldenHits", "golden_hits_total", "counter", "Golden references served from the memoizer."},
	{"FFRungHits", "ff_rung_hits_total", "counter", "Window entries seeded from a memoized fast-forward rung."},
	{"FFRungBuilds", "ff_rung_builds_total", "counter", "Functional fast-forward rung captures built."},
	{"DecodeHits", "decode_hits_total", "counter", "Functional dispatches served from the predecoded-instruction cache."},
	{"DecodeMisses", "decode_misses_total", "counter", "Functional dispatches decoded from instruction bytes."},
	{"DecodeHitRate", "decode_hit_rate", "gauge", "Share of functional dispatches served predecoded."},
	{"GoldenHitRate", "golden_hit_rate", "gauge", "Memoized fraction of golden lookups."},
	{"WatchedReads", "watched_reads_total", "counter", "Reads of fault-armed arrays."},
	{"WatchedWrites", "watched_writes_total", "counter", "Writes of fault-armed arrays."},
	{"ObservedReads", "observed_reads_total", "counter", "Reads that took the observation slow path."},
	{"ObservedWrites", "observed_writes_total", "counter", "Writes that took the observation slow path."},
	{"FastPathRate", "fast_path_rate", "gauge", "Fraction of watched accesses skipping observation."},
	{"StoppedRuns", "stopped_runs_total", "counter", "Runs cancelled by a cell's sequential stopping rule."},
	{"CellsStoppedEarly", "cells_stopped_early_total", "counter", "Campaign cells whose stopping rule fired before the fixed budget."},
	{"EffectiveMargin", "effective_margin", "gauge", "Widest achieved confidence-interval half-width across decided cells."},
	{"ImportanceWeightSum", "importance_weight_sum", "gauge", "Sum of Horvitz-Thompson importance weights across finished runs."},
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, deterministically ordered, every metric carrying HELP and
// TYPE lines. Metric names carry the faultinject_ prefix.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	sv := reflect.ValueOf(s)
	for _, d := range metricDefs {
		f := sv.FieldByName(d.field)
		fmt.Fprintf(&b, "# HELP faultinject_%s %s\n# TYPE faultinject_%s %s\n", d.name, d.help, d.name, d.typ)
		switch f.Kind() {
		case reflect.Uint64:
			if d.typ == "gauge" {
				fmt.Fprintf(&b, "faultinject_%s %g\n", d.name, float64(f.Uint()))
			} else {
				fmt.Fprintf(&b, "faultinject_%s %d\n", d.name, f.Uint())
			}
		case reflect.Int:
			fmt.Fprintf(&b, "faultinject_%s %g\n", d.name, float64(f.Int()))
		case reflect.Float64:
			fmt.Fprintf(&b, "faultinject_%s %g\n", d.name, f.Float())
		default:
			panic(fmt.Sprintf("telemetry: metricDef %s names non-numeric Snapshot field %s", d.name, d.field))
		}
	}

	fmt.Fprintf(&b, "# HELP faultinject_status_total Runs by raw run status.\n# TYPE faultinject_status_total counter\n")
	for _, k := range orderedKeys(s.StatusCounts) {
		fmt.Fprintf(&b, "faultinject_status_total{status=%q} %d\n", promEscape(k), s.StatusCounts[k])
	}
	fmt.Fprintf(&b, "# HELP faultinject_class_total Runs by fault-effect class.\n# TYPE faultinject_class_total counter\n")
	for _, k := range orderedKeys(s.ClassCounts) {
		fmt.Fprintf(&b, "faultinject_class_total{class=%q} %d\n", promEscape(k), s.ClassCounts[k])
	}
	if len(s.Campaigns) > 0 {
		fmt.Fprintf(&b, "# HELP faultinject_campaign_class_total Runs by campaign and class.\n# TYPE faultinject_campaign_class_total counter\n")
		for _, cs := range s.Campaigns {
			for _, k := range orderedKeys(cs.Classes) {
				fmt.Fprintf(&b, "faultinject_campaign_class_total{tool=%q,benchmark=%q,structure=%q,class=%q} %d\n",
					promEscape(cs.Tool), promEscape(cs.Benchmark), promEscape(cs.Structure),
					promEscape(k), cs.Classes[k])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
