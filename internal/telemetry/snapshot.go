package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time view of the aggregate: every counter plus
// the derived rate gauges, serializable as JSON and as Prometheus text
// exposition.
type Snapshot struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Workers        int     `json:"workers"`

	RunsQueued  uint64 `json:"runs_queued"`
	RunsStarted uint64 `json:"runs_started"`
	RunsDone    uint64 `json:"runs_done"`
	EarlyStops  uint64 `json:"early_stops"`

	PrunedDead       uint64  `json:"pruned_dead"`
	PrunedReplicated uint64  `json:"pruned_replicated"`
	PruneRate        float64 `json:"prune_rate"`
	LadderRestores   uint64  `json:"ladder_restores"`
	Resumed          uint64  `json:"resumed"`
	PanicsContained  uint64  `json:"panics_contained"`

	WindowedRuns  uint64  `json:"windowed_runs"`
	WindowEntries uint64  `json:"window_entries"`
	WindowExits   uint64  `json:"window_exits"`
	FastSteps     uint64  `json:"fast_steps"`
	DetailCycles  uint64  `json:"detail_cycles"`
	FastTierShare float64 `json:"fast_tier_share"`

	RunsPerSec        float64 `json:"runs_per_sec"`
	SimCycles         uint64  `json:"sim_cycles"`
	McyclesPerSec     float64 `json:"mcycles_per_sec"`
	WorkerUtilization float64 `json:"worker_utilization"`

	GoldenRuns    uint64  `json:"golden_runs"`
	GoldenHits    uint64  `json:"golden_hits"`
	GoldenHitRate float64 `json:"golden_hit_rate"`

	WatchedReads   uint64  `json:"watched_reads"`
	WatchedWrites  uint64  `json:"watched_writes"`
	ObservedReads  uint64  `json:"observed_reads"`
	ObservedWrites uint64  `json:"observed_writes"`
	FastPathRate   float64 `json:"fast_path_rate"`

	StatusCounts map[string]uint64  `json:"status_counts"`
	ClassCounts  map[string]uint64  `json:"class_counts"`
	Campaigns    []CampaignSnapshot `json:"campaigns,omitempty"`
}

// CampaignSnapshot is the per-{tool, benchmark, structure} slice of a
// Snapshot.
type CampaignSnapshot struct {
	Tool      string            `json:"tool"`
	Benchmark string            `json:"benchmark"`
	Structure string            `json:"structure"`
	Runs      uint64            `json:"runs"`
	Cycles    uint64            `json:"cycles"`
	Classes   map[string]uint64 `json:"classes"`
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// classOrder is the paper's presentation order for the known classes;
// anything else (e.g. a coarse NonMasked) sorts after, alphabetically.
var classOrder = []string{"Masked", "SDC", "DUE", "Timeout", "Crash", "Assert"}

// orderedKeys returns the map keys with the known classes first in
// presentation order, the rest alphabetical.
func orderedKeys(m map[string]uint64) []string {
	rank := make(map[string]int, len(classOrder))
	for i, c := range classOrder {
		rank[c] = i
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, iok := rank[keys[i]]
		rj, jok := rank[keys[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return keys[i] < keys[j]
		}
	})
	return keys
}

// ProgressLine renders the one-line human-readable progress view the
// periodic reporter prints.
func (s Snapshot) ProgressLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%7.1fs] %d/%d runs  %.1f runs/s  %.1f Mcyc/s",
		s.ElapsedSeconds, s.RunsDone, s.RunsQueued, s.RunsPerSec, s.McyclesPerSec)
	if s.Workers > 0 {
		fmt.Fprintf(&b, "  util %.0f%%", 100*s.WorkerUtilization)
	}
	if s.GoldenRuns+s.GoldenHits > 0 {
		fmt.Fprintf(&b, "  golden %d+%dhit", s.GoldenRuns, s.GoldenHits)
	}
	if s.WatchedReads+s.WatchedWrites > 0 {
		fmt.Fprintf(&b, "  fastpath %.1f%%", 100*s.FastPathRate)
	}
	if s.PrunedDead+s.PrunedReplicated > 0 {
		fmt.Fprintf(&b, "  pruned %d+%drep (%.1f%%)", s.PrunedDead, s.PrunedReplicated, 100*s.PruneRate)
	}
	if s.LadderRestores > 0 {
		fmt.Fprintf(&b, "  restores %d", s.LadderRestores)
	}
	if s.WindowedRuns > 0 {
		fmt.Fprintf(&b, "  window %d/%d (fast %.1f%%)", s.WindowExits, s.WindowedRuns, 100*s.FastTierShare)
	}
	if s.Resumed > 0 {
		fmt.Fprintf(&b, "  resumed %d", s.Resumed)
	}
	if s.PanicsContained > 0 {
		fmt.Fprintf(&b, "  panics %d", s.PanicsContained)
	}
	if cls := s.ClassString(); cls != "" {
		fmt.Fprintf(&b, "  %s", cls)
	}
	return b.String()
}

// ClassString renders the outcome histogram as "Masked=12 SDC=3 ...".
func (s Snapshot) ClassString() string {
	parts := make([]string, 0, len(s.ClassCounts))
	for _, k := range orderedKeys(s.ClassCounts) {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.ClassCounts[k]))
	}
	return strings.Join(parts, " ")
}

// SummaryLine renders the final one-line campaign summary: outcome
// counts, wall time, and throughput.
func (s Snapshot) SummaryLine() string {
	return fmt.Sprintf("%d runs in %.1fs (%.1f runs/s, %.1f Mcyc/s): %s",
		s.RunsDone, s.ElapsedSeconds, s.RunsPerSec, s.McyclesPerSec, s.ClassString())
}

// promEscape escapes a Prometheus label value.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, deterministically ordered. Metric names carry the
// faultinject_ prefix.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP faultinject_%s %s\n# TYPE faultinject_%s counter\nfaultinject_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP faultinject_%s %s\n# TYPE faultinject_%s gauge\nfaultinject_%s %g\n",
			name, help, name, name, v)
	}
	gauge("elapsed_seconds", "Wall-clock seconds since the collector started.", s.ElapsedSeconds)
	gauge("workers", "Scheduler worker-pool size.", float64(s.Workers))
	counter("runs_queued_total", "Injection runs entered into the scheduler queue.", s.RunsQueued)
	counter("runs_started_total", "Injection runs dispatched to workers.", s.RunsStarted)
	counter("runs_done_total", "Injection runs finished.", s.RunsDone)
	counter("early_stops_total", "Runs ended early by a provably-masked fault.", s.EarlyStops)
	counter("pruned_dead_total", "Masks classified Masked at plan time without simulation.", s.PrunedDead)
	counter("pruned_replicated_total", "Masks whose verdict was copied from an equivalence-class representative.", s.PrunedReplicated)
	gauge("prune_rate", "Fraction of finished runs settled without simulation.", s.PruneRate)
	counter("ladder_restores_total", "Runs restored from a checkpoint-ladder rung instead of booting.", s.LadderRestores)
	counter("resumed_total", "Completed masks loaded from the run journal instead of re-simulated.", s.Resumed)
	counter("panics_contained_total", "Worker panics converted into per-run errors by the containment boundary.", s.PanicsContained)
	counter("sim_cycles_total", "Simulated cycles across finished runs.", s.SimCycles)
	counter("windowed_runs_total", "Runs executed under a detail window (sampled execution).", s.WindowedRuns)
	counter("window_entries_total", "Runs seeded from the functional fast tier at the window entry.", s.WindowEntries)
	counter("window_exits_total", "Runs handed back to the functional tier after the fault settled.", s.WindowExits)
	counter("fast_instrs_total", "Instructions executed on the functional fast tier.", s.FastSteps)
	counter("detail_cycles_total", "Cycles simulated cycle-accurately inside detail windows.", s.DetailCycles)
	gauge("fast_tier_share", "Share of execution work done on the functional fast tier.", s.FastTierShare)
	gauge("runs_per_second", "Finished runs per wall-clock second.", s.RunsPerSec)
	gauge("mcycles_per_second", "Simulated megacycles per wall-clock second.", s.McyclesPerSec)
	gauge("worker_utilization", "Fraction of worker time spent inside runs.", s.WorkerUtilization)
	counter("golden_runs_total", "Golden reference simulations performed.", s.GoldenRuns)
	counter("golden_hits_total", "Golden references served from the memoizer.", s.GoldenHits)
	gauge("golden_hit_rate", "Memoized fraction of golden lookups.", s.GoldenHitRate)
	counter("watched_reads_total", "Reads of fault-armed arrays.", s.WatchedReads)
	counter("watched_writes_total", "Writes of fault-armed arrays.", s.WatchedWrites)
	counter("observed_reads_total", "Reads that took the observation slow path.", s.ObservedReads)
	counter("observed_writes_total", "Writes that took the observation slow path.", s.ObservedWrites)
	gauge("fast_path_rate", "Fraction of watched accesses skipping observation.", s.FastPathRate)

	fmt.Fprintf(&b, "# HELP faultinject_status_total Runs by raw run status.\n# TYPE faultinject_status_total counter\n")
	for _, k := range orderedKeys(s.StatusCounts) {
		fmt.Fprintf(&b, "faultinject_status_total{status=%q} %d\n", promEscape(k), s.StatusCounts[k])
	}
	fmt.Fprintf(&b, "# HELP faultinject_class_total Runs by fault-effect class.\n# TYPE faultinject_class_total counter\n")
	for _, k := range orderedKeys(s.ClassCounts) {
		fmt.Fprintf(&b, "faultinject_class_total{class=%q} %d\n", promEscape(k), s.ClassCounts[k])
	}
	if len(s.Campaigns) > 0 {
		fmt.Fprintf(&b, "# HELP faultinject_campaign_class_total Runs by campaign and class.\n# TYPE faultinject_campaign_class_total counter\n")
		for _, cs := range s.Campaigns {
			for _, k := range orderedKeys(cs.Classes) {
				fmt.Fprintf(&b, "faultinject_campaign_class_total{tool=%q,benchmark=%q,structure=%q,class=%q} %d\n",
					promEscape(cs.Tool), promEscape(cs.Benchmark), promEscape(cs.Structure),
					promEscape(k), cs.Classes[k])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
