package telemetry

import (
	"io"
	"sort"
	"sync"

	"repro/internal/fault"
)

// TraceSink buffers one fault.TraceRecord per finished injection run and
// writes them as JSONL on Flush, sorted by (campaign, mask id). Workers
// finish in nondeterministic order, so buffering and sorting is what
// makes the trace byte-stable for a fixed seed regardless of the worker
// count. Records carry no wall-clock fields for the same reason.
type TraceSink struct {
	mu   sync.Mutex
	recs []fault.TraceRecord
}

// NewTraceSink returns an empty trace sink; attach it with
// Collector.AddSink and call Flush after the scheduler returns.
func NewTraceSink() *TraceSink {
	return &TraceSink{}
}

// RunEvent implements Sink.
func (s *TraceSink) RunEvent(ev RunEvent) {
	rec := fault.TraceRecord{
		Campaign:      ev.Campaign,
		MaskID:        ev.MaskID,
		Sites:         ev.Sites,
		Status:        ev.Status,
		Class:         ev.Class,
		Cycles:        ev.Cycles,
		Observed:      ev.Observed,
		FirstObsCycle: ev.FirstObsCycle,
		EarlyStop:     ev.EarlyStop,
		Pruned:        ev.Pruned,
		Stopped:       ev.Stopped,
	}
	if ev.Pruned == "replicated" {
		rep := ev.RepMask
		rec.RepMask = &rep
	}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// Len reports the number of buffered records.
func (s *TraceSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns the buffered records in their deterministic
// (campaign, mask id) order.
func (s *TraceSink) Records() []fault.TraceRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := append([]fault.TraceRecord(nil), s.recs...)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Campaign != recs[j].Campaign {
			return recs[i].Campaign < recs[j].Campaign
		}
		return recs[i].MaskID < recs[j].MaskID
	})
	return recs
}

// Flush writes the buffered records to w as sorted JSON lines.
func (s *TraceSink) Flush(w io.Writer) error {
	return fault.WriteTrace(w, s.Records())
}
