package telemetry

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestPrometheusCompleteness cross-checks metricDefs against the
// Snapshot struct by reflection, both ways: every numeric Snapshot
// field must have a metric definition (a new counter without HELP/TYPE
// fails here, not in a scrape), and every definition must name a real
// numeric field with a well-formed type and help line.
func TestPrometheusCompleteness(t *testing.T) {
	byField := make(map[string]metricDef, len(metricDefs))
	byName := make(map[string]bool, len(metricDefs))
	for _, d := range metricDefs {
		if _, dup := byField[d.field]; dup {
			t.Errorf("metricDefs: field %s defined twice", d.field)
		}
		byField[d.field] = d
		if byName[d.name] {
			t.Errorf("metricDefs: metric name %s used twice", d.name)
		}
		byName[d.name] = true
		if d.typ != "counter" && d.typ != "gauge" {
			t.Errorf("metricDefs: %s has type %q, want counter or gauge", d.name, d.typ)
		}
		if strings.TrimSpace(d.help) == "" {
			t.Errorf("metricDefs: %s has no help line", d.name)
		}
		if d.typ == "counter" && !strings.HasSuffix(d.name, "_total") {
			t.Errorf("metricDefs: counter %s does not end in _total", d.name)
		}
	}

	st := reflect.TypeOf(Snapshot{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64, reflect.Int, reflect.Float64:
			d, ok := byField[f.Name]
			if !ok {
				t.Errorf("Snapshot field %s has no metricDefs entry: it would be exported without HELP/TYPE", f.Name)
				continue
			}
			delete(byField, f.Name)
			_ = d
		case reflect.Map, reflect.Slice:
			// StatusCounts/ClassCounts/Campaigns render as labeled
			// families with their own hardcoded HELP/TYPE blocks.
		default:
			t.Errorf("Snapshot field %s has unhandled kind %s", f.Name, f.Type.Kind())
		}
	}
	for field := range byField {
		t.Errorf("metricDefs entry %s names no Snapshot field", field)
	}
}

// TestPrometheusEveryMetricHasHelpAndType scrapes a rendered exposition
// and checks each emitted sample line is preceded by its HELP and TYPE.
func TestPrometheusEveryMetricHasHelpAndType(t *testing.T) {
	c := New()
	c.Start(2)
	cs := c.Campaign("k", "gefin-x86", "qsort", "rf.int")
	c.RunDone(cs, RunEvent{Class: "SDC", Status: "completed", Cycles: 5, Diverged: true})
	var buf bytes.Buffer
	if err := c.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	helped := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if !helped[name] {
			t.Errorf("sample %q emitted without a preceding # HELP", line)
		}
		if !typed[name] {
			t.Errorf("sample %q emitted without a preceding # TYPE", line)
		}
	}
	if !helped["faultinject_diverged_runs_total"] {
		t.Error("diverged_runs_total missing from the exposition")
	}
}

// TestMergeSnapshots checks the fleet aggregation: counters add,
// elapsed is the fleet maximum, utilization is reconstructed from
// per-worker busy seconds, campaign rows merge by key and sort.
func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{
		ElapsedSeconds: 10, Workers: 2,
		RunsQueued: 6, RunsStarted: 6, RunsDone: 6, DivergedRuns: 2,
		SimCycles: 600, GoldenRuns: 1, GoldenHits: 2,
		WatchedReads: 100, ObservedReads: 10,
		WorkerUtilization: 0.5, // 10s × 2 workers × 0.5 = 10 busy-seconds
		StatusCounts:      map[string]uint64{"completed": 6},
		ClassCounts:       map[string]uint64{"Masked": 4, "SDC": 2},
		Campaigns: []CampaignSnapshot{
			{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int", Runs: 6, Cycles: 600,
				Classes: map[string]uint64{"Masked": 4, "SDC": 2}},
		},
	}
	b := Snapshot{
		ElapsedSeconds: 8, Workers: 2,
		RunsQueued: 4, RunsStarted: 4, RunsDone: 4, DivergedRuns: 1,
		SimCycles: 400, GoldenRuns: 1, GoldenHits: 1,
		WatchedReads: 50, ObservedReads: 5,
		WorkerUtilization: 1.0, // 8s × 2 workers × 1.0 = 16 busy-seconds
		StatusCounts:      map[string]uint64{"completed": 4},
		ClassCounts:       map[string]uint64{"Masked": 4},
		Campaigns: []CampaignSnapshot{
			{Tool: "gefin-x86", Benchmark: "qsort", Structure: "lsq.data", Runs: 2, Cycles: 100,
				Classes: map[string]uint64{"Masked": 2}},
			{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int", Runs: 2, Cycles: 300,
				Classes: map[string]uint64{"Masked": 2}},
		},
	}
	m := MergeSnapshots(a, b)

	if m.RunsDone != 10 || m.RunsQueued != 10 || m.DivergedRuns != 3 || m.SimCycles != 1000 {
		t.Fatalf("summed counters wrong: %+v", m)
	}
	if m.ElapsedSeconds != 10 || m.Workers != 4 {
		t.Fatalf("elapsed/workers = %v/%d, want 10/4", m.ElapsedSeconds, m.Workers)
	}
	// 26 busy-seconds over 10s × 4 workers = 0.65.
	if diff := m.WorkerUtilization - 0.65; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("WorkerUtilization = %v, want 0.65", m.WorkerUtilization)
	}
	if m.RunsPerSec != 1.0 {
		t.Fatalf("RunsPerSec = %v, want 1.0", m.RunsPerSec)
	}
	if m.GoldenHitRate != 0.6 {
		t.Fatalf("GoldenHitRate = %v, want 0.6", m.GoldenHitRate)
	}
	if m.ClassCounts["Masked"] != 8 || m.ClassCounts["SDC"] != 2 || m.StatusCounts["completed"] != 10 {
		t.Fatalf("histograms wrong: %v %v", m.ClassCounts, m.StatusCounts)
	}
	if len(m.Campaigns) != 2 {
		t.Fatalf("got %d campaign rows, want 2 (merged by key)", len(m.Campaigns))
	}
	// Sorted by {tool, benchmark, structure}: lsq.data before rf.int.
	if m.Campaigns[0].Structure != "lsq.data" || m.Campaigns[1].Structure != "rf.int" {
		t.Fatalf("campaign rows unsorted: %+v", m.Campaigns)
	}
	if m.Campaigns[1].Runs != 8 || m.Campaigns[1].Cycles != 900 || m.Campaigns[1].Classes["Masked"] != 6 {
		t.Fatalf("rf.int row not merged: %+v", m.Campaigns[1])
	}

	// Merging nothing yields a zero snapshot without NaNs.
	z := MergeSnapshots()
	if s := fmt.Sprint(z.RunsPerSec, z.WorkerUtilization, z.GoldenHitRate); strings.Contains(s, "NaN") {
		t.Fatalf("empty merge has non-finite gauges: %s", s)
	}
}

// TestMergeSnapshotsEqualsSingleCollector: merging per-worker snapshots
// that partition one campaign's events must reproduce the counters a
// single collector fed all events would report — the property behind
// the coordinator's /snapshot.json equalling the sum of its workers.
func TestMergeSnapshotsEqualsSingleCollector(t *testing.T) {
	mkEvent := func(i int) RunEvent {
		cls := "Masked"
		if i%3 == 0 {
			cls = "SDC"
		}
		return RunEvent{Campaign: "k", MaskID: i, Class: cls, Status: "completed",
			Cycles: uint64(10 * (i + 1)), WatchedReads: 7, ObservedReads: 1, Diverged: i%4 == 0}
	}

	whole := New()
	whole.Start(2)
	wholeCS := whole.Campaign("k", "t", "b", "s")
	var workers [2]*Collector
	var wcs [2]*CampaignStats
	for w := range workers {
		workers[w] = New()
		workers[w].Start(1)
		wcs[w] = workers[w].Campaign("k", "t", "b", "s")
	}
	for i := 0; i < 20; i++ {
		ev := mkEvent(i)
		whole.AddQueued(1)
		whole.RunStarted()
		whole.RunDone(wholeCS, ev)
		w := i % 2
		workers[w].AddQueued(1)
		workers[w].RunStarted()
		workers[w].RunDone(wcs[w], ev)
	}
	want := whole.Snapshot()
	got := MergeSnapshots(workers[0].Snapshot(), workers[1].Snapshot())

	type counters struct {
		Done, Cycles, Diverged, Watched, Observed uint64
		SDC, Masked                               uint64
		CampRuns                                  uint64
	}
	pick := func(s Snapshot) counters {
		return counters{s.RunsDone, s.SimCycles, s.DivergedRuns, s.WatchedReads, s.ObservedReads,
			s.ClassCounts["SDC"], s.ClassCounts["Masked"], s.Campaigns[0].Runs}
	}
	if pick(want) != pick(got) {
		t.Fatalf("merged fleet counters differ from the single-collector truth:\nwant %+v\ngot  %+v", pick(want), pick(got))
	}
}
