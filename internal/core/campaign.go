package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/bitarray"
	"repro/internal/divergence"
	"repro/internal/fault"
)

// GoldenInfo is the fault-free reference run of a campaign.
type GoldenInfo struct {
	Tool       string            `json:"tool"`
	Benchmark  string            `json:"benchmark"`
	Structure  string            `json:"structure"`
	Cycles     uint64            `json:"cycles"`
	Committed  uint64            `json:"committed"`
	OutputHash string            `json:"output_hash"`
	OutputLen  int               `json:"output_len"`
	Stats      map[string]uint64 `json:"stats"`
}

// LogRecord is the per-injection-run line of the logs repository — the
// raw material the Parser classifies. Keeping raw outcomes (rather than
// classes) in the logs is what lets the classification be reconfigured
// without re-running the campaign (§III.B of the paper).
type LogRecord struct {
	MaskID        int          `json:"mask_id"`
	Sites         []fault.Site `json:"sites"`
	Status        string       `json:"status"`
	ExitCode      uint64       `json:"exit_code"`
	OutputHash    string       `json:"output_hash"`
	OutputMatch   bool         `json:"output_match"`
	Cycles        uint64       `json:"cycles"`
	Committed     uint64       `json:"committed"`
	EventKinds    []string     `json:"event_kinds,omitempty"`
	FatalExc      string       `json:"fatal_exc,omitempty"`
	AssertMsg     string       `json:"assert_msg,omitempty"`
	CommitStalled bool         `json:"commit_stalled,omitempty"`
	// Weight is the mask's Horvitz–Thompson sampling weight (zero reads
	// as 1); importance-sampled campaigns carry it into the logs so the
	// reweighted estimators work from the records alone.
	Weight float64 `json:"weight,omitempty"`
}

// CampaignSpec describes one injection campaign: one tool, one benchmark,
// one structure, a set of fault masks, and the factory that boots a fresh
// simulator instance per run.
type CampaignSpec struct {
	Tool      string
	Benchmark string
	Structure string
	Masks     []fault.Mask
	Factory   Factory
	// TimeoutFactor multiplies the fault-free cycle count to form the
	// per-run cycle limit; the paper uses 3.
	TimeoutFactor uint64
	// Workers sets the worker pool size; 0 means GOMAXPROCS.
	Workers int
	// DisableEarlyStop turns off the §III.B optimizations (ablation).
	DisableEarlyStop bool
	// UseCheckpoint enables checkpoint-based prefix sharing: the
	// controller checkpoints the fault-free machine at one fifth of the
	// golden run and restores it into every injection run whose faults
	// all start beyond that point. Opt-in because restored runs see a
	// drained pipeline at the checkpoint, which can shift borderline
	// outcomes relative to boot-runs of the same masks.
	UseCheckpoint bool
	// Golden, when non-nil, is a precomputed fault-free reference for
	// this campaign's {tool, benchmark} (typically memoized in a
	// GoldenCache); the controller uses it instead of performing its own
	// golden run. Benchmark/Structure/Tool fields are overwritten from
	// the spec.
	Golden *GoldenInfo
	// Exhaustive marks a cell whose mask set enumerates the collapsed
	// equivalence-class space of the whole fault population (one
	// representative per liveness interval, cycle-mass weighted); the
	// result is stamped complete with zero margin instead of sampled.
	Exhaustive bool
}

// CampaignResult is the outcome of a whole campaign.
type CampaignResult struct {
	Golden  GoldenInfo
	Records []LogRecord
	// Adaptive summarizes the sequential-stopping outcome of the cell;
	// nil for fixed-budget campaigns.
	Adaptive *AdaptiveInfo
}

// AdaptiveInfo is the per-cell outcome of the adaptive control plane:
// how many runs the stopping rule actually spent and the margin it
// achieved, or the completeness stamp of an exhaustive cell.
type AdaptiveInfo struct {
	// StoppedEarly reports whether the sequential rule cancelled the
	// cell's tail before its budget was spent.
	StoppedEarly bool `json:"stopped_early,omitempty"`
	// SimulatedRuns is the number of runs that fed the estimator (the
	// cell's spend); PlannedRuns the budget it would have spent.
	SimulatedRuns int `json:"simulated_runs"`
	PlannedRuns   int `json:"planned_runs"`
	// EffectiveMargin is the widest class half-width at the stop point
	// (or at budget exhaustion), at Confidence.
	EffectiveMargin float64 `json:"effective_margin"`
	Confidence      float64 `json:"confidence,omitempty"`
	// Complete marks an exhaustive cell: the collapsed mask space was
	// enumerated in full, so the proportions are a census with zero
	// margin rather than an estimate.
	Complete bool `json:"complete,omitempty"`
}

func hashOutput(out []byte) string {
	h := sha256.Sum256(out)
	return hex.EncodeToString(h[:8])
}

// Golden performs the fault-free reference run of a factory's simulator.
func Golden(f Factory) (GoldenInfo, error) {
	g, _, err := goldenRun(f)
	return g, err
}

// goldenRun performs the fault-free reference run and also returns the
// finished machine, which the GoldenCache keeps for live-entry probing
// and geometry lookups.
func goldenRun(f Factory) (GoldenInfo, Simulator, error) {
	sim := f()
	res := sim.Run(1 << 62)
	if res.Status != RunCompleted {
		return GoldenInfo{}, nil, fmt.Errorf("core: golden run did not complete: %v (%s)", res.Status, res.AssertMsg)
	}
	if len(res.Events) != 0 {
		return GoldenInfo{}, nil, fmt.Errorf("core: golden run recorded %d kernel events", len(res.Events))
	}
	return GoldenInfo{
		Tool:       sim.Name(),
		Cycles:     res.Cycles,
		Committed:  res.Committed,
		OutputHash: hashOutput(res.Output),
		OutputLen:  len(res.Output),
		Stats:      sim.Stats(),
	}, sim, nil
}

// RunOne executes a single injection run against a fresh simulator.
func RunOne(f Factory, m fault.Mask, golden GoldenInfo, timeoutFactor uint64, earlyStop bool) (LogRecord, error) {
	return RunOneFrom(f, nil, 0, m, golden, timeoutFactor, earlyStop)
}

// minSiteCycle returns the earliest fault activation of the mask. An
// empty (fault-free) mask reports ^uint64(0) — "no fault ever" — which
// is correct for earliest-fault aggregation but must NOT be fed to
// selectRung: a fault-free run is defined to boot from scratch, not to
// restore the highest checkpoint rung (runInjection guards this).
func minSiteCycle(m fault.Mask) uint64 {
	min := ^uint64(0)
	for _, s := range m.Sites {
		if s.Cycle < min {
			min = s.Cycle
		}
	}
	return min
}

// runStats is the per-run telemetry gathered from the watched arrays
// after an injection run finishes: the fault-observation outcome and the
// fast-path/slow-path access split the telemetry layer aggregates. It is
// filled only when a collector is attached.
type runStats struct {
	faultStatus bitarray.Status
	firstObs    uint64
	observed    bool
	reads       uint64
	writes      uint64
	obsReads    uint64
	obsWrites   uint64
	// restored reports whether the run started from a checkpoint rung,
	// and rungCycle which cycle that rung was captured at.
	restored  bool
	rungCycle uint64
	// Detail-window provenance: windowed marks a run executed under a
	// detail window, entered/exited whether it was seeded from the fast
	// tier and whether it handed off back to it; fastSteps counts the
	// instructions executed functionally (entry plus tail) and
	// detailCycles the cycles actually simulated cycle-accurately.
	windowed      bool
	windowEntered bool
	windowExited  bool
	fastSteps     uint64
	detailCycles  uint64
	// entrySteps/tailSteps split fastSteps into the fast-forward and
	// drain phases for span synthesis; entryWall/detailWall/tailWall
	// are the host wall times of the three execution phases.
	entrySteps uint64
	tailSteps  uint64
	entryWall  time.Duration
	detailWall time.Duration
	tailWall   time.Duration
	// Divergence provenance: div, when non-nil, is the commit-stream
	// probe runInjection attaches to the simulated machine; touches,
	// lastTouch and corrupt are the corruption footprint gathered from
	// the watched arrays after the run.
	div       *divergence.Probe
	touches   uint64
	lastTouch uint64
	corrupt   []string
}

// earlyStopReason names the §III.B proof behind an early-masked run.
func (s *runStats) earlyStopReason() string {
	switch s.faultStatus {
	case bitarray.StatusOverwritten:
		return "overwritten"
	case bitarray.StatusSkippedInvalid:
		return "skipped-invalid"
	default:
		return ""
	}
}

// gather reads the post-run state of the watched arrays.
func (s *runStats) gather(watch []*bitarray.Array) {
	for _, arr := range watch {
		s.reads += arr.Reads()
		s.writes += arr.Writes()
		s.obsReads += arr.ObservedReads()
		s.obsWrites += arr.ObservedWrites()
		if c, ok := arr.FirstObservation(); ok && (!s.observed || c < s.firstObs) {
			s.observed, s.firstObs = true, c
		}
		if n, last := arr.FaultTouches(); n > 0 {
			s.touches += n
			if last > s.lastTouch {
				s.lastTouch = last
			}
			s.corrupt = append(s.corrupt, arr.Name())
		}
		switch st := arr.FaultStatus(); st {
		case bitarray.StatusOverwritten:
			s.faultStatus = st
		case bitarray.StatusSkippedInvalid:
			if s.faultStatus != bitarray.StatusOverwritten {
				s.faultStatus = st
			}
		}
	}
}

// RunOneFrom executes a single injection run, seeding the machine from
// checkpoint cp (taken at cpCycle) when every fault of the mask starts
// beyond it.
func RunOneFrom(f Factory, cp any, cpCycle uint64, m fault.Mask, golden GoldenInfo, timeoutFactor uint64, earlyStop bool) (LogRecord, error) {
	var rungs []LadderRung
	if cp != nil {
		rungs = []LadderRung{{State: cp, Cycle: cpCycle}}
	}
	return runInjection(f, rungs, m, golden, timeoutFactor, earlyStop, nil, nil, nil)
}

// runInjection is RunOneFrom plus optional telemetry gathering; stats is
// nil when no collector is attached, keeping the uninstrumented path
// identical to the pre-telemetry one. rungs is the (possibly empty)
// checkpoint ladder of the campaign's row; the run restores the highest
// rung captured before its earliest fault, or boots from scratch. win,
// when non-nil on a window-capable simulator, turns on detail-window
// execution: the run fast-forwards to just before its earliest fault on
// the functional tier, simulates cycle-accurately only until the fault
// provably settles (or, for win.noExit, to the end — the verify mode),
// and finishes functionally.
func runInjection(f Factory, rungs []LadderRung, m fault.Mask, golden GoldenInfo, timeoutFactor uint64, earlyStop bool, win *windowConfig, ff *ffLadder, stats *runStats) (LogRecord, error) {
	sim := f()
	wi, _ := sim.(Windower)
	// Fault-free masks never window: with no site there is no window to
	// place, and the run is defined to be the plain golden trajectory.
	canWindow := win != nil && wi != nil && len(m.Sites) > 0 && golden.Cycles > 0
	if stats != nil {
		stats.windowed = canWindow
	}
	// startCycle is where cycle-accurate simulation begins (window
	// entry, rung cycle, or boot at zero) — the base of the
	// detail-cycles accounting.
	var startCycle uint64
	seeded := false
	// Empty masks boot from scratch: with no site to bound the restore,
	// minSiteCycle reports ^uint64(0) and selectRung would hand back the
	// highest rung, silently turning a fault-free reference run into a
	// restored one.
	if len(m.Sites) > 0 {
		minSite := minSiteCycle(m)
		ri := selectRung(rungs, minSite)
		if canWindow {
			// Prefer the functional fast-forward when it gets closer to
			// the window entry than the best checkpoint rung; the pre
			// margin both warms the cold microarchitectural state and
			// absorbs the approximation of placing the entry by the
			// golden run's average commit rate.
			var entry uint64
			if minSite > win.pre {
				entry = minSite - win.pre
			}
			var rungCycle uint64
			if ri >= 0 {
				rungCycle = rungs[ri].Cycle
			}
			if entry > rungCycle {
				t0 := time.Now()
				var fast uint64
				seeded, fast = windowEntry(wi, golden, entry, ff, win.noDecode)
				if seeded {
					startCycle = entry
					if stats != nil {
						stats.windowEntered = true
						stats.fastSteps += fast
						stats.entrySteps = fast
						stats.entryWall = time.Since(t0)
					}
				}
			}
		}
		if !seeded && ri >= 0 {
			if ck, ok := sim.(Checkpointer); ok {
				if err := ck.Restore(rungs[ri].State); err != nil {
					return LogRecord{}, fmt.Errorf("core: restoring checkpoint: %w", err)
				}
				startCycle = rungs[ri].Cycle
				if stats != nil {
					stats.restored, stats.rungCycle = true, rungs[ri].Cycle
				}
			}
		}
	}
	structures := sim.Structures()
	var watch []*bitarray.Array
	var watched map[string]bool
	if len(m.Sites) > 1 {
		// A multi-site mask can place several sites on one structure;
		// watching the array once per site would double-count its access
		// stats and make the simulator tick it twice per cycle.
		watched = make(map[string]bool, len(m.Sites))
	}
	for _, s := range m.Sites {
		arr, ok := structures[s.Structure]
		if !ok {
			return LogRecord{}, fmt.Errorf("core: mask %d targets unknown structure %q on %s", m.ID, s.Structure, sim.Name())
		}
		// Validate before Arm: bitarray.Arm panics on an out-of-range
		// target, which must surface as a per-run error naming the mask
		// (a hand-edited mask file must not abort the whole campaign
		// process).
		if s.Entry < 0 || s.Entry >= arr.Entries() || s.Bit < 0 || s.Bit >= arr.BitsPerEntry() {
			return LogRecord{}, fmt.Errorf("core: mask %d: fault target (%d,%d) outside the %d×%d geometry of %s on %s",
				m.ID, s.Entry, s.Bit, arr.Entries(), arr.BitsPerEntry(), s.Structure, sim.Name())
		}
		bf, err := s.Fault()
		if err != nil {
			return LogRecord{}, fmt.Errorf("core: mask %d: %v", m.ID, err)
		}
		arr.Arm(bf)
		if watched != nil {
			if watched[s.Structure] {
				continue
			}
			watched[s.Structure] = true
		}
		watch = append(watch, arr)
	}
	sim.WatchArrays(watch)
	sim.SetEarlyStop(earlyStop)
	if stats != nil && stats.div != nil {
		if cp, ok := sim.(CommitProbed); ok {
			cp.SetCommitProbe(stats.div)
		}
	}
	if timeoutFactor == 0 {
		timeoutFactor = 3
	}
	var res RunResult
	exited := false
	t0 := time.Now()
	if canWindow && !win.noExit {
		res, exited = wi.RunWindow(golden.Cycles*timeoutFactor, win.post)
	} else {
		res = sim.Run(golden.Cycles * timeoutFactor)
	}
	if stats != nil {
		stats.detailWall = time.Since(t0)
	}
	// Gather before any capture: the watched arrays' raw access counters
	// still bump on capture-time reads.
	if stats != nil {
		stats.gather(watch)
	}
	if exited {
		st, err := wi.CaptureArch()
		if err != nil {
			return LogRecord{}, fmt.Errorf("core: mask %d: window exit: %v", m.ID, err)
		}
		t1 := time.Now()
		var tailSteps uint64
		res, tailSteps = windowTail(wi.Image(), st, golden, timeoutFactor, win.noDecode)
		if stats != nil {
			stats.windowExited = true
			stats.fastSteps += tailSteps
			stats.tailSteps = tailSteps
			stats.tailWall = time.Since(t1)
			stats.detailCycles = st.Cycle - startCycle
		}
	} else if canWindow && stats != nil && res.Cycles >= startCycle {
		stats.detailCycles = res.Cycles - startCycle
	}

	rec := LogRecord{
		MaskID:        m.ID,
		Sites:         m.Sites,
		Status:        res.Status.String(),
		ExitCode:      res.ExitCode,
		OutputHash:    hashOutput(res.Output),
		Cycles:        res.Cycles,
		Committed:     res.Committed,
		FatalExc:      "",
		AssertMsg:     res.AssertMsg,
		CommitStalled: res.CommitStalled,
		Weight:        m.Weight,
	}
	if res.Status == RunProcessCrash || res.Status == RunSystemCrash {
		rec.FatalExc = res.FatalExc.String()
	}
	rec.OutputMatch = rec.OutputHash == golden.OutputHash && res.ExitCode == 0
	for _, ev := range res.Events {
		rec.EventKinds = append(rec.EventKinds, ev.Exc.String())
	}
	// The record is fully extracted and every capture is a copy: the
	// simulator is dead, so its RAM can go back to the boot pool.
	if mr, ok := sim.(memReleaser); ok {
		mr.ReleaseMemory()
	}
	return rec, nil
}

// memReleaser is the optional boot-pool hook of a simulator: a machine
// that can hand its RAM back for recycling once a run is over.
type memReleaser interface{ ReleaseMemory() }

// RunCampaign is the injection campaign controller: it resolves the
// golden reference (running it unless spec.Golden supplies a memoized
// one), then dispatches every mask to a worker pool of simulator
// instances and collects the logs in mask order. It is the
// single-campaign case of the matrix scheduler, so a failing worker
// cancels the pool promptly and the error of the earliest failing mask
// is returned deterministically.
func RunCampaign(spec CampaignSpec) (*CampaignResult, error) {
	results, err := RunMatrix([]CampaignSpec{spec}, MatrixOptions{Workers: spec.Workers})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}
