package core_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

// fakeSim is a minimal deterministic Simulator for scheduler plumbing
// tests: it exercises its single array every cycle so armed faults go
// through the normal consume/overwrite lifecycle, and completes with a
// fixed output.
type fakeSim struct {
	arr       *bitarray.Array
	watch     []*bitarray.Array
	earlyStop bool
}

func newFakeSim() *fakeSim {
	return &fakeSim{arr: bitarray.New("s", 8, 64), earlyStop: true}
}

func (s *fakeSim) Name() string { return "Fake" }
func (s *fakeSim) ISA() string  { return "x86" }
func (s *fakeSim) Structures() map[string]*bitarray.Array {
	return map[string]*bitarray.Array{"s": s.arr}
}
func (s *fakeSim) WatchArrays(arrs []*bitarray.Array) { s.watch = arrs }
func (s *fakeSim) SetEarlyStop(on bool)               { s.earlyStop = on }
func (s *fakeSim) Stats() map[string]uint64           { return map[string]uint64{"ops": 100} }

func (s *fakeSim) Run(limit uint64) core.RunResult {
	const cycles = 100
	out := make([]byte, 8)
	for cyc := uint64(0); cyc < cycles && cyc < limit; cyc++ {
		for _, a := range s.watch {
			st := a.Tick(cyc)
			if s.earlyStop && (st == bitarray.StatusOverwritten || st == bitarray.StatusSkippedInvalid) {
				return core.RunResult{Status: core.RunEarlyMasked, Cycles: cyc, Committed: cyc}
			}
		}
		s.arr.WriteUint64(int(cyc%4), cyc)
		out[0] ^= byte(s.arr.ReadUint64(int(cyc % 4)))
	}
	return core.RunResult{Status: core.RunCompleted, Output: out, Cycles: cycles, Committed: cycles}
}

func countingFactory(calls *int64) core.Factory {
	return func() core.Simulator {
		atomic.AddInt64(calls, 1)
		return newFakeSim()
	}
}

func fakeMasks(n int) []fault.Mask {
	masks := make([]fault.Mask, n)
	for i := range masks {
		masks[i] = fault.Mask{ID: i, Sites: []fault.Site{{
			Structure: "s", Entry: i % 8, Bit: i % 64,
			Model: fault.ModelTransient, Cycle: uint64(10 + i),
		}}}
	}
	return masks
}

// The memoizer must return a GoldenInfo byte-identical to a fresh
// Golden run of the same factory.
func TestGoldenCacheMatchesFreshRun(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	fresh, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewGoldenCache()
	memo, err := cache.Golden(sims.GeFINX86, "qsort", f)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Benchmark = "qsort" // the cache stamps the row's benchmark
	fb, _ := json.Marshal(fresh)
	mb, _ := json.Marshal(memo)
	if string(fb) != string(mb) {
		t.Fatalf("memoized golden differs from fresh run:\nfresh: %s\nmemo:  %s", fb, mb)
	}
	if cache.Runs() != 1 {
		t.Fatalf("cache performed %d runs, want 1", cache.Runs())
	}
	// A second lookup is served from memory.
	if _, err := cache.Golden(sims.GeFINX86, "qsort", f); err != nil {
		t.Fatal(err)
	}
	if cache.Runs() != 1 {
		t.Fatalf("cache re-ran the golden: %d runs", cache.Runs())
	}
}

// A matrix of several structures per {tool, benchmark} row must perform
// exactly one golden simulation per row, not one (or two) per campaign:
// total factory calls = 1 golden per row + 1 per injection run.
func TestRunMatrixGoldenRunsOncePerRow(t *testing.T) {
	var calls int64
	factory := countingFactory(&calls)
	cache := core.NewGoldenCache()
	var specs []core.CampaignSpec
	rows := []string{"b1", "b2"}
	structures := []string{"sA", "sB", "sC"}
	const masksPer = 4
	for _, bench := range rows {
		for range structures {
			specs = append(specs, core.CampaignSpec{
				Tool: "fake", Benchmark: bench, Structure: "s",
				Masks: fakeMasks(masksPer), Factory: factory,
			})
		}
	}
	results, err := core.RunMatrix(specs, core.MatrixOptions{Workers: 4, Golden: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("results %d, want %d", len(results), len(specs))
	}
	if got := cache.Runs(); got != len(rows) {
		t.Fatalf("golden runs = %d, want exactly %d (one per {tool,benchmark} row)", got, len(rows))
	}
	wantCalls := int64(len(rows) + len(specs)*masksPer)
	if calls != wantCalls {
		t.Fatalf("factory calls = %d, want %d (1 golden per row + 1 per injection run)", calls, wantCalls)
	}
	for _, res := range results {
		if len(res.Records) != masksPer {
			t.Fatalf("records %d, want %d", len(res.Records), masksPer)
		}
		for i, r := range res.Records {
			if r.MaskID != i {
				t.Fatalf("record %d carries mask id %d (mask order lost)", i, r.MaskID)
			}
		}
	}
}

// A supplied CampaignSpec.Golden must suppress the controller's own
// golden run entirely.
func TestRunCampaignSuppliedGoldenSkipsRun(t *testing.T) {
	var calls int64
	factory := countingFactory(&calls)
	golden, err := core.Golden(factory)
	if err != nil {
		t.Fatal(err)
	}
	calls = 0
	res, err := core.RunCampaign(core.CampaignSpec{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: fakeMasks(3), Factory: factory, Workers: 2,
		Golden: &golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 calls: one boot-only probe for plan-time mask validation (a
	// supplied golden bypasses the cache's memoized machine, so geometry
	// must come from somewhere) plus one per injection run — but no
	// golden simulation.
	if calls != 4 {
		t.Fatalf("factory calls = %d, want 4 (geometry probe + injection runs, golden supplied)", calls)
	}
	if res.Golden.Benchmark != "b" || res.Golden.Structure != "s" || res.Golden.Tool != "fake" {
		t.Fatalf("golden fields not restamped: %+v", res.Golden)
	}
}

// The flattened queue must produce identical records regardless of the
// worker count.
func TestRunMatrixWorkerCountParity(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	buildSpecs := func() []core.CampaignSpec {
		var specs []core.CampaignSpec
		for _, structure := range []string{"rf.int", "lsq.data"} {
			arr := sim.Structures()[structure]
			masks, err := fault.Generate(fault.GeneratorSpec{
				Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
				MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 6, Seed: 13,
			})
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, core.CampaignSpec{
				Tool: "gefin-x86", Benchmark: "qsort", Structure: structure,
				Masks: masks, Factory: f, TimeoutFactor: 3,
			})
		}
		return specs
	}
	run := func(workers int) []*core.CampaignResult {
		res, err := core.RunMatrix(buildSpecs(), core.MatrixOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	for s := range serial {
		if !reflect.DeepEqual(serial[s].Records, parallel[s].Records) {
			t.Fatalf("campaign %d records differ between Workers=1 and Workers=8:\n%+v\nvs\n%+v",
				s, serial[s].Records, parallel[s].Records)
		}
		a := (core.Parser{}).ParseAll(serial[s].Records)
		b := (core.Parser{}).ParseAll(parallel[s].Records)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("campaign %d classification differs: %v vs %v", s, a, b)
		}
		for i, r := range serial[s].Records {
			if r.MaskID != i {
				t.Fatalf("campaign %d record %d has mask id %d", s, i, r.MaskID)
			}
		}
	}
}

// A malformed mask must surface the error of the earliest mask — since
// plan-time validation these are caught before anything is queued, so
// the guarantee holds trivially here; the runtime (worker-pool) half of
// the contract is covered by TestRunMatrixContainedPanicFirstError.
func TestRunMatrixFirstErrorDeterministic(t *testing.T) {
	var calls int64
	factory := countingFactory(&calls)
	masks := fakeMasks(12)
	// Two poisoned masks: the scheduler must always report the earlier.
	masks[3].Sites[0].Structure = "bogus-early"
	masks[7].Sites[0].Structure = "bogus-late"
	for _, workers := range []int{1, 2, 8} {
		_, err := core.RunMatrix([]core.CampaignSpec{{
			Tool: "fake", Benchmark: "b", Structure: "s",
			Masks: masks, Factory: factory,
		}}, core.MatrixOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: poisoned campaign succeeded", workers)
		}
		if !strings.Contains(err.Error(), "bogus-early") {
			t.Fatalf("workers=%d: got %v, want the mask-3 error", workers, err)
		}
	}
	// Same contract through the single-campaign controller.
	if _, err := core.RunCampaign(core.CampaignSpec{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: masks, Factory: factory, Workers: 4,
	}); err == nil || !strings.Contains(err.Error(), "bogus-early") {
		t.Fatalf("RunCampaign error = %v, want the mask-3 error", err)
	}
}

// LiveEntries must match a fresh twin probe of the same structure.
func TestGoldenCacheLiveEntries(t *testing.T) {
	w, err := workload.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	f, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewGoldenCache()
	live, err := cache.LiveEntries(sims.GeFINX86, "qsort", f, "l1d.data")
	if err != nil {
		t.Fatal(err)
	}
	// Twin reference: replay the golden run from boot and probe.
	twin := f()
	if res := twin.Run(1 << 62); res.Status != core.RunCompleted {
		t.Fatalf("twin run: %v", res.Status)
	}
	arr := twin.Structures()["l1d.data"]
	var want []int
	for e := 0; e < arr.Entries(); e++ {
		if arr.EntryValid(e) {
			want = append(want, e)
		}
	}
	if !reflect.DeepEqual(live, want) {
		t.Fatalf("live entries differ from twin probe: %v vs %v", live, want)
	}
	if len(live) == 0 {
		t.Fatal("no live entries found in l1d.data after qsort")
	}
	// Memoized: second call performs no extra simulation.
	runs := cache.Runs()
	if _, err := cache.LiveEntries(sims.GeFINX86, "qsort", f, "l1d.data"); err != nil {
		t.Fatal(err)
	}
	if cache.Runs() != runs {
		t.Fatal("second LiveEntries probe re-simulated")
	}
	if _, _, ok, err := cache.Geometry(sims.GeFINX86, "qsort", f, "no-such"); err != nil || ok {
		t.Fatalf("unknown structure geometry: ok=%v err=%v", ok, err)
	}
}
