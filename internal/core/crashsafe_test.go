package core_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
)

// A mask targeting coordinates outside its structure's geometry must be
// rejected by name at plan time — before any injection run (whose Arm
// would panic) is dispatched.
func TestRunMatrixValidatesMasksUpFront(t *testing.T) {
	var calls int64
	factory := countingFactory(&calls)
	masks := fakeMasks(8)
	masks[5].Sites[0].Entry = 99 // the fake structure is 8×64
	_, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: masks, Factory: factory,
	}}, core.MatrixOptions{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "mask 5") {
		t.Fatalf("err = %v, want a validation error naming mask 5", err)
	}
	if calls != 1 {
		t.Fatalf("factory calls = %d, want 1 (golden only: nothing may simulate after failed validation)", calls)
	}
}

// panicSim panics like a buggy simulator internal whenever its armed
// fault targets bit 63 — a failure mode plan-time validation cannot see.
type panicSim struct{ *fakeSim }

func (s *panicSim) Run(limit uint64) core.RunResult {
	if f, ok := s.arr.ArmedFault(); ok && f.Bit == 63 {
		panic("injected worker panic")
	}
	return s.fakeSim.Run(limit)
}

// A panic escaping a run must be contained to that run and surface as
// the error of the earliest poisoned mask, regardless of worker count —
// never abort the process, never report the later mask.
func TestRunMatrixContainedPanicFirstError(t *testing.T) {
	factory := func() core.Simulator { return &panicSim{newFakeSim()} }
	masks := fakeMasks(12)
	masks[4].Sites[0].Bit = 63
	masks[9].Sites[0].Bit = 63
	for _, workers := range []int{1, 2, 8} {
		col := telemetry.New()
		_, err := core.RunMatrix([]core.CampaignSpec{{
			Tool: "fake", Benchmark: "b", Structure: "s",
			Masks: masks, Factory: factory,
		}}, core.MatrixOptions{Workers: workers, Telemetry: col})
		if err == nil {
			t.Fatalf("workers=%d: poisoned campaign succeeded", workers)
		}
		if !strings.Contains(err.Error(), "mask 4: contained panic") {
			t.Fatalf("workers=%d: err = %v, want the contained panic of mask 4", workers, err)
		}
		var pe *core.PanicError
		if !errors.As(err, &pe) || pe.MaskID != 4 || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: err %v does not unwrap to a PanicError with mask 4 and a stack", workers, err)
		}
		if snap := col.Snapshot(); snap.PanicsContained == 0 {
			t.Fatalf("workers=%d: telemetry reports no contained panics", workers)
		}
	}
}

// assertSim escalates an armed bit-62 fault into a simulator-internal
// AssertError panic — the simulator's own Run recovery never sees it.
type assertSim struct{ *fakeSim }

func (s *assertSim) Run(limit uint64) core.RunResult {
	if f, ok := s.arr.ArmedFault(); ok && f.Bit == 62 {
		panic(core.AssertError{Msg: "rob entry bounds check failed"})
	}
	return s.fakeSim.Run(limit)
}

// An AssertError escaping a run is an outcome, not a scheduler failure:
// the containment boundary classifies it as an assert record and the
// campaign completes.
func TestRunMatrixEscapedAssertBecomesRecord(t *testing.T) {
	factory := func() core.Simulator { return &assertSim{newFakeSim()} }
	masks := fakeMasks(6)
	masks[2].Sites[0].Bit = 62
	res, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: masks, Factory: factory,
	}}, core.MatrixOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := res[0].Records[2]
	if rec.Status != core.RunAssert.String() || rec.AssertMsg != "rob entry bounds check failed" {
		t.Fatalf("escaped assert recorded as %+v", rec)
	}
	if cls, _ := (core.Parser{}).Classify(rec); cls != core.ClassAssert {
		t.Fatalf("escaped assert classified %s", cls)
	}
	for i, r := range res[0].Records {
		if i != 2 && r.Status == core.RunAssert.String() {
			t.Fatalf("record %d also reports an assert: %+v", i, r)
		}
	}
}

// truncateLines rewrites path keeping only its first keep lines —
// simulating a campaign killed mid-flight with keep runs acknowledged.
func truncateLines(t *testing.T, path string, keep int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) <= keep {
		t.Fatalf("journal has only %d lines, cannot keep %d", len(lines)-1, keep)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines[:keep], "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A resumed campaign must reproduce the uninterrupted run exactly: same
// records, byte-identical trace, with the journaled masks loaded (not
// re-simulated) and counted as resumed.
func TestMatrixJournalResumeCounts(t *testing.T) {
	const n, keep = 10, 4
	path := filepath.Join(t.TempDir(), "j.journal.jsonl")

	run := func(resume bool, calls *int64) ([]core.LogRecord, telemetry.Snapshot, []byte) {
		j, err := fault.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		col := telemetry.New()
		trace := telemetry.NewTraceSink()
		col.AddSink(trace)
		res, err := core.RunMatrix([]core.CampaignSpec{{
			Tool: "fake", Benchmark: "b", Structure: "s",
			Masks: fakeMasks(n), Factory: countingFactory(calls),
		}}, core.MatrixOptions{Workers: 2, Telemetry: col, Journal: j, Resume: resume})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		return res[0].Records, col.Snapshot(), buf.Bytes()
	}

	var refCalls int64
	refRecs, refSnap, refTrace := run(false, &refCalls)
	if refSnap.Resumed != 0 {
		t.Fatalf("reference run reports %d resumed", refSnap.Resumed)
	}

	truncateLines(t, path, keep)

	var resCalls int64
	gotRecs, snap, gotTrace := run(true, &resCalls)
	if !reflect.DeepEqual(gotRecs, refRecs) {
		t.Fatalf("resumed records differ:\n%+v\nvs\n%+v", gotRecs, refRecs)
	}
	if snap.Resumed != keep {
		t.Fatalf("snapshot reports %d resumed, want %d", snap.Resumed, keep)
	}
	if want := int64(1 + n - keep); resCalls != want {
		t.Fatalf("resume made %d factory calls, want %d (1 golden + %d remaining runs)", resCalls, want, n-keep)
	}
	if !bytes.Equal(gotTrace, refTrace) {
		t.Fatalf("resumed trace differs from the uninterrupted trace:\n%s\nvs\n%s", gotTrace, refTrace)
	}
	entries, err := fault.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("journal holds %d entries after resume, want %d", len(entries), n)
	}
}

// The resume guarantee must also hold with pruning, prune-verify and the
// checkpoint ladder in play on real simulators: the plan is regenerated
// deterministically, journaled masks skip the queue, and the records and
// trace stay byte-identical to an uninterrupted run.
func TestMatrixJournalResumeDifferential(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	buildSpecs := func() []core.CampaignSpec {
		var specs []core.CampaignSpec
		for _, structure := range []string{"rf.int", "l1d.data"} {
			arr := sim.Structures()[structure]
			// Enough masks that pruning (heavy on both structures) still
			// leaves several simulated runs for the journal to hold.
			masks, err := fault.Generate(fault.GeneratorSpec{
				Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
				MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 25, Seed: 17,
			})
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, core.CampaignSpec{
				Tool: "gefin-x86", Benchmark: "qsort", Structure: structure,
				Masks: masks, Factory: f, TimeoutFactor: 3, UseCheckpoint: true,
			})
		}
		return specs
	}
	run := func(path string, resume bool) ([]*core.CampaignResult, []byte, telemetry.Snapshot) {
		j, err := fault.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		col := telemetry.New()
		trace := telemetry.NewTraceSink()
		col.AddSink(trace)
		res, err := core.RunMatrix(buildSpecs(), core.MatrixOptions{
			Workers: 4, Telemetry: col, Journal: j, Resume: resume,
			Prune: true, PruneVerify: 2, CheckpointLadder: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes(), col.Snapshot()
	}

	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.journal.jsonl")
	resPath := filepath.Join(dir, "resumed.journal.jsonl")
	ref, refTrace, _ := run(refPath, false)

	// The resumed journal is the reference journal cut mid-write.
	data, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(resPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	total := strings.Count(string(data), "\n")
	if total < 2 {
		t.Fatalf("reference journal has only %d lines — raise the mask counts so pruning leaves runs to journal", total)
	}
	keep := total / 2
	truncateLines(t, resPath, keep)

	got, gotTrace, snap := run(resPath, true)
	for s := range ref {
		if !reflect.DeepEqual(got[s].Records, ref[s].Records) {
			t.Fatalf("campaign %d: resumed records differ from reference", s)
		}
	}
	if !bytes.Equal(gotTrace, refTrace) {
		t.Fatalf("resumed trace differs from the uninterrupted trace")
	}
	if snap.Resumed != uint64(keep) {
		t.Fatalf("snapshot reports %d resumed, want %d", snap.Resumed, keep)
	}
}

// An empty (fault-free) mask must boot from scratch and replay the whole
// golden run — not silently restore the highest checkpoint rung, which
// ^uint64(0) fed into rung selection used to do.
func TestEmptyMaskBootsFromScratch(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	col := telemetry.New()
	res, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int",
		Masks: []fault.Mask{{ID: 0}}, Factory: f, UseCheckpoint: true,
	}}, core.MatrixOptions{Workers: 1, Telemetry: col, CheckpointLadder: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec, g := res[0].Records[0], res[0].Golden
	if rec.Status != core.RunCompleted.String() || !rec.OutputMatch {
		t.Fatalf("fault-free run: %+v", rec)
	}
	if rec.Cycles != g.Cycles {
		t.Fatalf("fault-free run took %d cycles, golden %d — it restored a checkpoint rung", rec.Cycles, g.Cycles)
	}
	if snap := col.Snapshot(); snap.LadderRestores != 0 {
		t.Fatalf("fault-free run restored %d rungs, want 0", snap.LadderRestores)
	}
}

// eventSink captures raw run events for per-run stat assertions.
type eventSink struct {
	mu  sync.Mutex
	evs []telemetry.RunEvent
}

func (s *eventSink) RunEvent(ev telemetry.RunEvent) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}

// A mask with several sites on the same structure must watch (and tick)
// that structure once: duplicate registration double-counted its access
// stats and advanced its fault clock twice per cycle.
func TestMultiSiteSameStructureWatchDedupe(t *testing.T) {
	// Cycle 1000 never arrives in the 100-cycle fake run, so the access
	// counters reflect plumbing alone, not fault behavior.
	site := func(entry, bit int) fault.Site {
		return fault.Site{Structure: "s", Entry: entry, Bit: bit, Model: fault.ModelTransient, Cycle: 1000}
	}
	run := func(sites []fault.Site) telemetry.RunEvent {
		var calls int64
		col := telemetry.New()
		sink := &eventSink{}
		col.AddSink(sink)
		_, err := core.RunMatrix([]core.CampaignSpec{{
			Tool: "fake", Benchmark: "b", Structure: "s",
			Masks: []fault.Mask{{ID: 0, Sites: sites}}, Factory: countingFactory(&calls),
		}}, core.MatrixOptions{Workers: 1, Telemetry: col})
		if err != nil {
			t.Fatal(err)
		}
		if len(sink.evs) != 1 {
			t.Fatalf("captured %d events, want 1", len(sink.evs))
		}
		return sink.evs[0]
	}
	single := run([]fault.Site{site(0, 1)})
	double := run([]fault.Site{site(0, 1), site(2, 3)})
	if double.WatchedReads != single.WatchedReads || double.WatchedWrites != single.WatchedWrites {
		t.Fatalf("multi-site mask double-counts its structure: reads %d vs %d, writes %d vs %d",
			double.WatchedReads, single.WatchedReads, double.WatchedWrites, single.WatchedWrites)
	}
}

// wedgeSim blocks forever inside Run whenever a fault is armed — the
// cycle budget never fires because cycles never advance.
type wedgeSim struct {
	*fakeSim
	release chan struct{}
}

func (s *wedgeSim) Run(limit uint64) core.RunResult {
	if _, ok := s.arr.ArmedFault(); ok {
		<-s.release
		return core.RunResult{Status: core.RunCycleLimit, Cycles: limit}
	}
	return s.fakeSim.Run(limit)
}

// The wall-clock backstop must reclaim worker slots from wedged runs and
// record them as commit-stalled cycle-limit runs (class Timeout,
// deadlock detail).
func TestRunWallLimitClassifiesWedgedRuns(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	factory := func() core.Simulator { return &wedgeSim{fakeSim: newFakeSim(), release: release} }
	res, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: fakeMasks(3), Factory: factory,
	}}, core.MatrixOptions{Workers: 2, RunWallLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res[0].Records {
		if rec.Status != core.RunCycleLimit.String() || !rec.CommitStalled {
			t.Fatalf("record %d: %+v, want a commit-stalled cycle-limit record", i, rec)
		}
		if cls, det := (core.Parser{}).Classify(rec); cls != core.ClassTimeout || det != core.DetailDeadlock {
			t.Fatalf("record %d classified %s/%s, want Timeout/deadlock", i, cls, det)
		}
		if rec.MaskID != i {
			t.Fatalf("record %d carries mask id %d", i, rec.MaskID)
		}
	}
}
