package core_test

import (
	"bytes"
	"testing"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
)

func telemetrySpecs(t *testing.T, f core.Factory) []core.CampaignSpec {
	t.Helper()
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	var specs []core.CampaignSpec
	for _, structure := range []string{"rf.int", "lsq.data"} {
		arr := sim.Structures()[structure]
		masks, err := fault.Generate(fault.GeneratorSpec{
			Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
			MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 8, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, core.CampaignSpec{
			Tool: sims.GeFINX86, Benchmark: "qsort", Structure: structure,
			Masks: masks, Factory: f, TimeoutFactor: 3,
		})
	}
	return specs
}

// The collector's outcome histogram after a matrix must be identical to
// what the offline parser computes from the stored records, and the
// run-accounting counters must balance exactly — the telemetry layer is
// a second bookkeeper of the same campaign, not an approximation.
func TestMatrixTelemetryMatchesClassification(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	specs := telemetrySpecs(t, f)

	cache := core.NewGoldenCache()
	collector := telemetry.New()
	trace := telemetry.NewTraceSink()
	collector.AddSink(trace)
	results, err := core.RunMatrix(specs, core.MatrixOptions{
		Workers: 4, Golden: cache, Telemetry: collector,
	})
	if err != nil {
		t.Fatal(err)
	}

	totalRuns := 0
	wantClasses := make(map[string]uint64)
	for _, res := range results {
		totalRuns += len(res.Records)
		b := (core.Parser{}).ParseAll(res.Records)
		for cls, n := range b.Counts {
			wantClasses[string(cls)] += uint64(n)
		}
	}

	s := collector.Snapshot()
	if s.RunsQueued != uint64(totalRuns) || s.RunsStarted != uint64(totalRuns) || s.RunsDone != uint64(totalRuns) {
		t.Fatalf("queued/started/done = %d/%d/%d, want all %d",
			s.RunsQueued, s.RunsStarted, s.RunsDone, totalRuns)
	}
	if len(s.ClassCounts) != len(wantClasses) {
		t.Fatalf("telemetry classes %v, parser classes %v", s.ClassCounts, wantClasses)
	}
	for cls, want := range wantClasses {
		if got := s.ClassCounts[cls]; got != want {
			t.Fatalf("ClassCounts[%s] = %d, parser says %d", cls, got, want)
		}
	}
	if trace.Len() != totalRuns {
		t.Fatalf("trace has %d records, want one per injection (%d)", trace.Len(), totalRuns)
	}

	// The golden gauge mirrors the cache: one performed run for the
	// single {tool, benchmark} row, the second campaign served as a hit.
	if got := int(s.GoldenRuns); got != cache.Runs() {
		t.Fatalf("GoldenRuns = %d, cache says %d", got, cache.Runs())
	}
	if s.GoldenRuns != 1 {
		t.Fatalf("GoldenRuns = %d, want 1 (one {tool,benchmark} row)", s.GoldenRuns)
	}
	if s.GoldenHits == 0 {
		t.Fatal("no golden-cache hits recorded across two campaigns of one row")
	}
	if s.SimCycles == 0 || s.Workers != 4 {
		t.Fatalf("SimCycles=%d Workers=%d", s.SimCycles, s.Workers)
	}
	if s.WatchedReads+s.WatchedWrites == 0 {
		t.Fatal("no watched-array traffic recorded")
	}
	if s.FastPathRate <= 0 || s.FastPathRate > 1 {
		t.Fatalf("FastPathRate = %v, want within (0, 1]", s.FastPathRate)
	}

	// Two campaign rows, each with its own classification slice.
	if len(s.Campaigns) != 2 {
		t.Fatalf("got %d campaign rows, want 2", len(s.Campaigns))
	}
	for i, res := range results {
		b := (core.Parser{}).ParseAll(res.Records)
		var row telemetry.CampaignSnapshot
		for _, r := range s.Campaigns {
			if r.Structure == specs[i].Structure {
				row = r
			}
		}
		if row.Runs != uint64(len(res.Records)) {
			t.Fatalf("campaign %s row has %d runs, want %d", specs[i].Structure, row.Runs, len(res.Records))
		}
		for cls, n := range b.Counts {
			if row.Classes[string(cls)] != uint64(n) {
				t.Fatalf("campaign %s class %s = %d, parser says %d",
					specs[i].Structure, cls, row.Classes[string(cls)], n)
			}
		}
	}
}

// The JSONL trace for a fixed seed must be byte-identical regardless of
// the worker count: workers finish in nondeterministic order, and the
// sink's (campaign, mask id) sort is what restores determinism.
func TestTraceByteStableAcrossWorkerCounts(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)

	flush := func(workers int) []byte {
		collector := telemetry.New()
		trace := telemetry.NewTraceSink()
		collector.AddSink(trace)
		if _, err := core.RunMatrix(telemetrySpecs(t, f), core.MatrixOptions{
			Workers: workers, Telemetry: collector,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := flush(1)
	if len(serial) == 0 {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 8} {
		if got := flush(workers); !bytes.Equal(serial, got) {
			t.Fatalf("trace bytes differ between Workers=1 and Workers=%d", workers)
		}
	}

	// And the bytes decode back into exactly one row per injection with
	// the campaign keys the scheduler stamped.
	recs, err := fault.ReadTrace(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16 {
		t.Fatalf("trace has %d rows, want 16 (2 campaigns x 8 masks)", len(recs))
	}
	for _, rec := range recs {
		if rec.Campaign == "" || rec.Class == "" || rec.Status == "" {
			t.Fatalf("trace row missing fields: %+v", rec)
		}
		if len(rec.Sites) == 0 {
			t.Fatalf("trace row %d has no mask coordinates", rec.MaskID)
		}
	}
}

// obsSim reads entries 0-1 every cycle (faults there get observed) and
// writes entries 2-3 without reading them back (faults there get proven
// overwritten, triggering an early stop); entries 4-7 stay untouched.
type obsSim struct {
	arr       *bitarray.Array
	watch     []*bitarray.Array
	earlyStop bool
}

func (s *obsSim) Name() string { return "Obs" }
func (s *obsSim) ISA() string  { return "x86" }
func (s *obsSim) Structures() map[string]*bitarray.Array {
	return map[string]*bitarray.Array{"s": s.arr}
}
func (s *obsSim) WatchArrays(arrs []*bitarray.Array) { s.watch = arrs }
func (s *obsSim) SetEarlyStop(on bool)               { s.earlyStop = on }
func (s *obsSim) Stats() map[string]uint64           { return nil }

func (s *obsSim) Run(limit uint64) core.RunResult {
	const cycles = 100
	out := make([]byte, 8)
	for cyc := uint64(0); cyc < cycles && cyc < limit; cyc++ {
		for _, a := range s.watch {
			st := a.Tick(cyc)
			if s.earlyStop && (st == bitarray.StatusOverwritten || st == bitarray.StatusSkippedInvalid) {
				return core.RunResult{Status: core.RunEarlyMasked, Cycles: cyc, Committed: cyc}
			}
		}
		out[0] ^= byte(s.arr.ReadUint64(0))
		out[1] ^= byte(s.arr.ReadUint64(1))
		s.arr.WriteUint64(2+int(cyc%2), cyc)
	}
	return core.RunResult{Status: core.RunCompleted, Output: out, Cycles: cycles, Committed: cycles}
}

// Early-stop proofs and the observation lifecycle must flow through to
// the events: with obsSim every fault lands in an entry that is either
// read (observed, with a first-observation cycle), blind-written
// (proven overwritten — an early stop with its reason), or untouched.
func TestTelemetryEarlyStopAndObservation(t *testing.T) {
	factory := core.Factory(func() core.Simulator {
		return &obsSim{arr: bitarray.New("s", 8, 64), earlyStop: true}
	})
	collector := telemetry.New()
	trace := telemetry.NewTraceSink()
	collector.AddSink(trace)
	if _, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: fakeMasks(12), Factory: factory,
	}}, core.MatrixOptions{Workers: 3, Telemetry: collector}); err != nil {
		t.Fatal(err)
	}
	s := collector.Snapshot()
	var observed, early int
	for _, rec := range trace.Records() {
		switch {
		case rec.Observed:
			observed++
			if rec.FirstObsCycle < rec.Sites[0].Cycle {
				t.Fatalf("mask %d observed at cycle %d before injection at %d",
					rec.MaskID, rec.FirstObsCycle, rec.Sites[0].Cycle)
			}
		case rec.EarlyStop != "":
			early++
			if rec.EarlyStop != "overwritten" && rec.EarlyStop != "skipped-invalid" {
				t.Fatalf("mask %d has unknown early-stop reason %q", rec.MaskID, rec.EarlyStop)
			}
		}
	}
	if observed == 0 {
		t.Fatal("no run observed its fault")
	}
	if early == 0 {
		t.Fatal("no run stopped early on a proven-overwritten fault")
	}
	if uint64(early) != s.EarlyStops {
		t.Fatalf("trace says %d early stops, collector says %d", early, s.EarlyStops)
	}
	if s.ObservedReads == 0 {
		t.Fatal("no observation slow-path reads counted")
	}
	if s.ObservedReads+s.ObservedWrites > s.WatchedReads+s.WatchedWrites {
		t.Fatalf("observed accesses (%d) exceed watched accesses (%d)",
			s.ObservedReads+s.ObservedWrites, s.WatchedReads+s.WatchedWrites)
	}
}
