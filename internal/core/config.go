package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitarray"
	"repro/internal/divergence"
	"repro/internal/fault"
	"repro/internal/prune"
	"repro/internal/telemetry"
)

// ConfigSchemaVersion is the CampaignConfig format version this build
// writes and serves; the distributed protocol carries it so a worker
// from a newer build never misreads a coordinator's config (and vice
// versa).
//
// Version history:
//
//	1 — initial consolidated config (PR 5).
//	2 — detail-window fields (detail_window, window_pre_cycles,
//	    window_post_cycles, window_verify). A config that uses none of
//	    them is served as version 1, so legacy readers keep working.
//	3 — divergence-provenance recording (divergence). Served as the
//	    lowest version that can express the config, as before.
//	4 — functional-tier turbo knobs (ff_rungs, no_decode_cache). Both
//	    only tune how windowed runs execute — results are byte-identical
//	    across settings — so a config leaving them at zero is still
//	    served at the lowest version expressing it.
//	5 — adaptive campaign control (stop_margin, stop_confidence,
//	    stop_check_every, exhaustive, importance_sampling). As before, a
//	    config using none of them is served at the lowest version that
//	    expresses it.
const ConfigSchemaVersion = 5

// CampaignCell is one {tool, benchmark, structure} campaign of a
// config. Cells reference tools and benchmarks by name — a config is
// fully serializable, which is what lets the distributed coordinator
// hand the exact same description to remote workers that the local path
// consumes — and a Resolver materializes the simulator factories.
type CampaignCell struct {
	Tool      string `json:"tool"`
	Benchmark string `json:"benchmark"`
	Structure string `json:"structure"`
	// Injections overrides CampaignConfig.Injections for this cell
	// (0: inherit).
	Injections int `json:"injections,omitempty"`
	// Seed overrides CampaignConfig.Seed for this cell (0: inherit).
	Seed int64 `json:"seed,omitempty"`
	// Masks, when non-empty, is the explicit fault population of the
	// cell (e.g. loaded from a masks repository); Injections/Seed/Model
	// generation is skipped and LiveOnly remapping does not apply —
	// explicit masks are injected exactly as given.
	Masks []fault.Mask `json:"masks,omitempty"`
}

// CampaignConfig is the consolidated, validated description of an
// injection campaign matrix — the one public knob surface that replaces
// the MatrixOptions/CampaignSpec sprawl (and the per-CLI flag wiring on
// top of it). The same value drives local execution (RunConfig), shard
// execution on a remote worker (RunShard), and the coordinator's
// planning; it serializes as JSON for the wire and for config files.
//
// Everything in a CampaignConfig is portable: process-local resources
// (golden caches, telemetry collectors, journals) attach separately via
// Attach, so shipping a config to another machine can never smuggle a
// dangling handle along.
type CampaignConfig struct {
	// SchemaVersion stamps the config format version; zero means
	// "current" on the way in and is stamped to ConfigSchemaVersion when
	// the config is served over the wire.
	SchemaVersion int `json:"schema_version,omitempty"`
	// Campaigns are the cells of the matrix.
	Campaigns []CampaignCell `json:"campaigns"`
	// Injections is the per-cell mask count when a cell has no explicit
	// Masks and no Injections override.
	Injections int `json:"injections,omitempty"`
	// Seed drives deterministic mask generation (cells may override).
	Seed int64 `json:"seed,omitempty"`
	// Model is the generated fault model ("transient", "intermittent",
	// "permanent"); empty means transient.
	Model string `json:"model,omitempty"`
	// LiveOnly remaps generated fault entries onto the entries live at
	// the end of the golden run (conditional vulnerability).
	LiveOnly bool `json:"live_only,omitempty"`
	// TimeoutFactor multiplies the fault-free cycle count to form the
	// per-run cycle limit; 0 means the paper's 3.
	TimeoutFactor uint64 `json:"timeout_factor,omitempty"`
	// DisableEarlyStop turns off the §III.B optimizations (ablation).
	DisableEarlyStop bool `json:"disable_early_stop,omitempty"`
	// UseCheckpoint shares each row's fault-free prefix via drained-
	// machine checkpoints.
	UseCheckpoint bool `json:"use_checkpoint,omitempty"`
	// Workers is the simulation worker-pool size of the executing
	// process — each distributed worker applies it locally; 0 means
	// GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Prune enables golden-run liveness pruning; PruneVerify
	// additionally simulates up to that many pruned masks per campaign
	// and fails on a class mismatch (implies Prune).
	Prune       bool `json:"prune,omitempty"`
	PruneVerify int  `json:"prune_verify,omitempty"`
	// CheckpointLadder is the number of evenly spaced restore rungs per
	// row (>= 2, with UseCheckpoint); 0 keeps the legacy single
	// checkpoint.
	CheckpointLadder int `json:"checkpoint_ladder,omitempty"`
	// RunWallLimit bounds the host wall-clock time of a single run
	// (serialized as nanoseconds); 0 is off.
	RunWallLimit time.Duration `json:"run_wall_limit_ns,omitempty"`
	// DetailWindow enables sampled execution: each run simulates
	// cycle-accurately only inside a detail window around its fault and
	// on the functional interpreter everywhere else. WindowPre and
	// WindowPost are the margins, in cycles, of cycle-accurate
	// simulation kept before the earliest fault arms and after the last
	// fault settles. WindowVerify re-simulates up to that many windowed
	// masks per campaign fully cycle-accurately from the same window
	// entry and fails on an outcome-class disagreement (implies
	// DetailWindow).
	DetailWindow bool   `json:"detail_window,omitempty"`
	WindowPre    uint64 `json:"window_pre_cycles,omitempty"`
	WindowPost   uint64 `json:"window_post_cycles,omitempty"`
	WindowVerify int    `json:"window_verify,omitempty"`
	// FFRungs sizes the functional fast-forward rung ladder window
	// entries resume from (per {tool, benchmark} row, memoized lazily):
	// 0 means the default ladder, negative disables it so every entry
	// fast-forwards from boot. NoDecodeCache forces every functional
	// dispatch through the slow byte-level decoder instead of the
	// per-image predecoded instruction cache. Both are pure performance
	// knobs for windowed execution — records, traces, journals and
	// divergence files are byte-identical across settings.
	FFRungs       int  `json:"ff_rungs,omitempty"`
	NoDecodeCache bool `json:"no_decode_cache,omitempty"`
	// Divergence enables provenance recording: every run is probed
	// against the golden commit-stream signature and a per-mask
	// divergence record (first architectural divergence, corruption
	// footprint, masking depth) is produced alongside the campaign logs.
	// In a distributed campaign the workers measure and the coordinator
	// assembles the single-node-identical record file.
	Divergence bool `json:"divergence,omitempty"`
	// StopMargin arms sequential-confidence early stopping: a cell stops
	// once every outcome-class proportion is estimated to ±StopMargin at
	// StopConfidence, evaluated every StopCheckEvery completed runs (0:
	// a default cadence) in the cell's deterministic simulation order.
	// Remaining masks are settled as stopped-early provenance rows, so
	// logs, traces and journals stay byte-stable and resumable. Zero
	// disables the rule; StopConfidence is required with it.
	StopMargin     float64 `json:"stop_margin,omitempty"`
	StopConfidence float64 `json:"stop_confidence,omitempty"`
	StopCheckEvery int     `json:"stop_check_every,omitempty"`
	// Exhaustive replaces sampling with the equivalence-class-collapsed
	// census of the whole single-bit transient fault population: one
	// cycle-mass-weighted representative mask per liveness interval per
	// (entry, bit), enumerated from the golden-run profile. Implies
	// Prune; the cell result is stamped complete with zero margin.
	// Mutually exclusive with explicit masks, generated-count sampling
	// knobs, live_only, importance_sampling and stop_margin.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// ImportanceSampling draws the generated masks preferentially from
	// the live portion of the fault population (golden-run liveness as
	// the importance distribution), carrying Horvitz–Thompson weights
	// that keep the reported class proportions unbiased. Mutually
	// exclusive with explicit masks, live_only and exhaustive.
	ImportanceSampling bool `json:"importance_sampling,omitempty"`
}

// usesWindow reports whether any detail-window field is in use — the
// schema-version-2 surface. Configs without it are served as version 1
// so legacy readers keep working.
func (c CampaignConfig) usesWindow() bool {
	return c.DetailWindow || c.WindowPre != 0 || c.WindowPost != 0 || c.WindowVerify != 0
}

// usesAdaptive reports whether any adaptive-control field is in use —
// the schema-version-5 surface.
func (c CampaignConfig) usesAdaptive() bool {
	return c.StopMargin != 0 || c.StopConfidence != 0 || c.StopCheckEvery != 0 ||
		c.Exhaustive || c.ImportanceSampling
}

// WireSchemaVersion is the schema version a zero-version config is
// stamped with when served over the wire: the lowest version that can
// express it.
func (c CampaignConfig) WireSchemaVersion() int {
	if c.usesAdaptive() {
		return 5
	}
	if c.FFRungs != 0 || c.NoDecodeCache {
		return 4
	}
	if c.Divergence {
		return 3
	}
	if c.usesWindow() {
		return 2
	}
	return 1
}

// Validate checks the config and names the offending field of the first
// problem, in the JSON spelling, so a CLI or protocol error message
// points at what to fix.
func (c CampaignConfig) Validate() error {
	bad := func(field, format string, args ...any) error {
		return fmt.Errorf("core: campaign config: %s: %s", field, fmt.Sprintf(format, args...))
	}
	if c.SchemaVersion > ConfigSchemaVersion {
		return bad("schema_version", "version %d is newer than this build understands (<= %d)", c.SchemaVersion, ConfigSchemaVersion)
	}
	if len(c.Campaigns) == 0 {
		return bad("campaigns", "empty — nothing to run")
	}
	if c.Injections < 0 {
		return bad("injections", "negative count %d", c.Injections)
	}
	if c.Model != "" {
		if _, err := fault.Model(c.Model).Kind(); err != nil {
			return bad("model", "unknown model %q", c.Model)
		}
	}
	if c.Workers < 0 {
		return bad("workers", "negative pool size %d", c.Workers)
	}
	if c.PruneVerify < 0 {
		return bad("prune_verify", "negative sample size %d", c.PruneVerify)
	}
	if c.CheckpointLadder < 0 || c.CheckpointLadder == 1 {
		return bad("checkpoint_ladder", "%d rungs (want 0, or >= 2)", c.CheckpointLadder)
	}
	if c.RunWallLimit < 0 {
		return bad("run_wall_limit_ns", "negative limit %d", c.RunWallLimit)
	}
	if c.WindowVerify < 0 {
		return bad("window_verify", "negative sample size %d", c.WindowVerify)
	}
	if !c.DetailWindow && c.WindowVerify == 0 && (c.WindowPre != 0 || c.WindowPost != 0) {
		return bad("detail_window", "window margins set but windowing is off")
	}
	if !c.DetailWindow && c.WindowVerify == 0 && c.FFRungs != 0 {
		return bad("ff_rungs", "fast-forward rungs set but windowing is off")
	}
	// Adaptive campaign control. The comparisons are NaN-safe: a NaN
	// margin or confidence fails the positive-range test and is rejected
	// rather than silently disabling the rule.
	if c.StopMargin != 0 && !(c.StopMargin > 0 && c.StopMargin < 1) {
		return bad("stop_margin", "margin %v outside (0, 1)", c.StopMargin)
	}
	if c.StopMargin > 0 {
		if _, err := fault.ZFor(c.StopConfidence); err != nil {
			return bad("stop_confidence", "confidence %v outside (0, 1) (required with stop_margin)", c.StopConfidence)
		}
	} else {
		if c.StopConfidence != 0 {
			return bad("stop_confidence", "set without stop_margin")
		}
		if c.StopCheckEvery != 0 {
			return bad("stop_check_every", "set without stop_margin")
		}
	}
	if c.StopCheckEvery < 0 {
		return bad("stop_check_every", "negative cadence %d", c.StopCheckEvery)
	}
	if c.Exhaustive {
		if c.StopMargin != 0 {
			return bad("exhaustive", "a census has nothing to stop early (unset stop_margin)")
		}
		if c.ImportanceSampling {
			return bad("exhaustive", "a census has nothing to sample (unset importance_sampling)")
		}
		if c.LiveOnly {
			return bad("exhaustive", "the census already enumerates liveness exactly (unset live_only)")
		}
		if c.model() != fault.ModelTransient {
			return bad("exhaustive", "the census covers transient faults only, not %q", c.Model)
		}
	}
	if c.ImportanceSampling {
		if c.LiveOnly {
			return bad("importance_sampling", "mutually exclusive with live_only")
		}
		if c.model() != fault.ModelTransient {
			return bad("importance_sampling", "covers transient faults only, not %q", c.Model)
		}
	}
	for i, cell := range c.Campaigns {
		field := func(name string) string { return fmt.Sprintf("campaigns[%d].%s", i, name) }
		if cell.Tool == "" {
			return bad(field("tool"), "empty")
		}
		if cell.Benchmark == "" {
			return bad(field("benchmark"), "empty")
		}
		if cell.Structure == "" {
			return bad(field("structure"), "empty")
		}
		if cell.Injections < 0 {
			return bad(field("injections"), "negative count %d", cell.Injections)
		}
		if cell.Seed < 0 {
			return bad(field("seed"), "negative seed %d", cell.Seed)
		}
		if (c.Exhaustive || c.ImportanceSampling) && len(cell.Masks) > 0 {
			knob := "exhaustive"
			if c.ImportanceSampling {
				knob = "importance_sampling"
			}
			return bad(field("masks"), "explicit masks are mutually exclusive with %s", knob)
		}
		// An exhaustive cell's population comes from the census, not an
		// injection count.
		if !c.Exhaustive && len(cell.Masks) == 0 && c.MaskCount(i) <= 0 {
			return bad(field("injections"), "no explicit masks and no injection count (set injections on the cell or the config)")
		}
		for j, m := range cell.Masks {
			for k, s := range m.Sites {
				if _, err := s.Model.Kind(); err != nil {
					return bad(fmt.Sprintf("campaigns[%d].masks[%d].sites[%d].model", i, j, k), "unknown model %q", s.Model)
				}
			}
		}
	}
	return nil
}

// MaskCount reports how many masks campaign cell i will run — the shard
// planner's unit of work. It needs no simulator: explicit masks count
// themselves, generated ones come from the configured injection counts.
func (c CampaignConfig) MaskCount(i int) int {
	cell := c.Campaigns[i]
	if len(cell.Masks) > 0 {
		return len(cell.Masks)
	}
	if cell.Injections > 0 {
		return cell.Injections
	}
	return c.Injections
}

// Keys returns the campaign key of every cell, in cell order — the
// labels of journal lines, telemetry rows and log files.
func (c CampaignConfig) Keys() []string {
	keys := make([]string, len(c.Campaigns))
	for i, cell := range c.Campaigns {
		keys[i] = fault.CampaignKey(cell.Tool, cell.Benchmark, cell.Structure)
	}
	return keys
}

func (c CampaignConfig) model() fault.Model {
	if c.Model == "" {
		return fault.ModelTransient
	}
	return fault.Model(c.Model)
}

func (c CampaignConfig) cellSeed(i int) int64 {
	if s := c.Campaigns[i].Seed; s != 0 {
		return s
	}
	return c.Seed
}

// Resolver materializes the simulator factory of a {tool, benchmark}
// pair named by a config cell. The core package defines only the shape:
// the sims wiring lives above core (cli.Resolve), and tests substitute
// fakes.
type Resolver func(tool, benchmark string) (Factory, error)

// Attach carries the process-local, non-serializable resources of a
// config run — exactly the parts a CampaignConfig deliberately cannot
// express.
type Attach struct {
	// Golden shares a golden-run memoizer across calls; nil uses a
	// private cache.
	Golden *GoldenCache
	// Telemetry receives the run-end event stream; nil costs nothing.
	Telemetry *telemetry.Collector
	// Journal receives one fsync'd line per completed run; Resume loads
	// completed masks from it instead of re-simulating. RunShard ignores
	// both — in a distributed campaign the coordinator owns the journal
	// as the exactly-once completion ledger.
	Journal *fault.Journal
	Resume  bool
	// Divergence receives the per-mask provenance records when the
	// config's Divergence knob is on; nil drops them.
	Divergence *divergence.Sink
	// Tracer emits campaign/cell/run/phase spans parented under
	// TraceParent; SpanWorker labels the emitting process on run and
	// phase spans.
	Tracer      *telemetry.Tracer
	TraceParent string
	SpanWorker  string
}

func (c CampaignConfig) matrixOptions(att Attach, cache *GoldenCache) MatrixOptions {
	return MatrixOptions{
		Workers:          c.Workers,
		Golden:           cache,
		Telemetry:        att.Telemetry,
		Prune:            c.Prune || c.Exhaustive,
		PruneVerify:      c.PruneVerify,
		CheckpointLadder: c.CheckpointLadder,
		Journal:          att.Journal,
		Resume:           att.Resume,
		RunWallLimit:     c.RunWallLimit,
		DetailWindow:     c.DetailWindow,
		WindowPre:        c.WindowPre,
		WindowPost:       c.WindowPost,
		WindowVerify:     c.WindowVerify,
		FFRungs:          c.FFRungs,
		NoDecodeCache:    c.NoDecodeCache,
		Divergence:       att.Divergence,
		Tracer:           att.Tracer,
		TraceParent:      att.TraceParent,
		SpanWorker:       att.SpanWorker,
		StopMargin:       c.StopMargin,
		StopConfidence:   c.StopConfidence,
		StopCheckEvery:   c.StopCheckEvery,
	}
}

// buildSpec materializes the scheduler spec of cell i: the factory from
// the resolver, and the mask population either verbatim (explicit
// masks) or generated deterministically from {seed, model, injections}
// against the golden geometry. Two processes building the same cell of
// the same config produce identical masks — the root of the distributed
// path's byte-identity.
func (c CampaignConfig) buildSpec(i int, resolve Resolver, cache *GoldenCache) (CampaignSpec, error) {
	cell := c.Campaigns[i]
	factory, err := resolve(cell.Tool, cell.Benchmark)
	if err != nil {
		return CampaignSpec{}, err
	}
	masks := cell.Masks
	if len(masks) == 0 {
		golden, err := cache.Golden(cell.Tool, cell.Benchmark, factory)
		if err != nil {
			return CampaignSpec{}, err
		}
		entries, bits, ok, err := cache.Geometry(cell.Tool, cell.Benchmark, factory, cell.Structure)
		if err != nil {
			return CampaignSpec{}, err
		}
		if !ok {
			return CampaignSpec{}, fmt.Errorf("core: campaigns[%d]: %s has no structure %q", i, golden.Tool, cell.Structure)
		}
		genSpec := fault.GeneratorSpec{
			Structure: cell.Structure, Entries: entries, BitsPerEntry: bits,
			MaxCycle: golden.Cycles, Model: c.model(),
			Count: c.MaskCount(i), Seed: c.cellSeed(i),
		}
		switch {
		case c.Exhaustive, c.ImportanceSampling:
			// Both profile-driven generators read the boot liveness
			// profile of the cell's structure — the same profile the
			// pruner derives its plan from, so the equivalence classes
			// agree by construction.
			profs, perr := cache.Profiles(cell.Tool, cell.Benchmark, factory, nil, []string{cell.Structure})
			if perr != nil {
				return CampaignSpec{}, perr
			}
			var prof *bitarray.Profile
			if len(profs) > 0 {
				prof = profs[0][cell.Structure]
			}
			if prof == nil {
				return CampaignSpec{}, fmt.Errorf("core: campaigns[%d]: %s/%s exposes no liveness profile for %s (simulator has no cycle source)",
					i, cell.Tool, cell.Benchmark, cell.Structure)
			}
			if c.Exhaustive {
				masks, err = fault.EnumerateExhaustive(genSpec, prof)
			} else {
				masks, err = fault.GenerateImportance(genSpec, prof, 0)
			}
		default:
			masks, err = fault.Generate(genSpec)
		}
		if err != nil {
			return CampaignSpec{}, err
		}
		if c.LiveOnly {
			live, err := cache.LiveEntries(cell.Tool, cell.Benchmark, factory, cell.Structure)
			if err != nil {
				return CampaignSpec{}, err
			}
			if len(live) == 0 {
				return CampaignSpec{}, fmt.Errorf("core: campaigns[%d]: no live entries in %s at the end of the %s/%s golden run",
					i, cell.Structure, cell.Tool, cell.Benchmark)
			}
			for mi := range masks {
				for si := range masks[mi].Sites {
					masks[mi].Sites[si].Entry = live[masks[mi].Sites[si].Entry%len(live)]
				}
			}
		}
	}
	return CampaignSpec{
		Tool: cell.Tool, Benchmark: cell.Benchmark, Structure: cell.Structure,
		Masks: masks, Factory: factory,
		TimeoutFactor:    c.TimeoutFactor,
		DisableEarlyStop: c.DisableEarlyStop,
		UseCheckpoint:    c.UseCheckpoint,
		Exhaustive:       c.Exhaustive,
	}, nil
}

// BuildSpecs materializes every cell of the config (see buildSpec).
func (c CampaignConfig) BuildSpecs(resolve Resolver, cache *GoldenCache) ([]CampaignSpec, error) {
	specs := make([]CampaignSpec, len(c.Campaigns))
	for i := range c.Campaigns {
		spec, err := c.buildSpec(i, resolve, cache)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	return specs, nil
}

// RunConfig executes a whole campaign config locally — the consolidated
// entry point the CLIs use, and the reference semantics the distributed
// path must reproduce byte-for-byte.
func RunConfig(cfg CampaignConfig, resolve Resolver, att Attach) ([]*CampaignResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if resolve == nil {
		return nil, fmt.Errorf("core: RunConfig needs a Resolver to materialize simulator factories")
	}
	cache := att.Golden
	if cache == nil {
		cache = NewGoldenCache()
	}
	specs, err := cfg.BuildSpecs(resolve, cache)
	if err != nil {
		return nil, err
	}
	results, _, err := runMatrix(specs, cfg.matrixOptions(att, cache), nil)
	return results, err
}

// ShardRun is the wire form of one mask of an executed shard: the log
// record plus the trace provenance and telemetry extras the coordinator
// needs to reproduce the single-node event stream. A replicated row
// carries only its identity (the representative may live in another
// shard); the coordinator copies the representative's verdict at merge
// time exactly as the single-node plan fill-in does.
type ShardRun struct {
	// Index is the mask index within the campaign cell.
	Index int `json:"index"`
	// Record is the completed log record; for a replicated row only
	// MaskID and Sites are meaningful.
	Record LogRecord `json:"record"`
	// Pruned is "" (simulated), "dead" or "replicated"; RepIndex names
	// the representative's mask index for replicated rows.
	Pruned   string `json:"pruned,omitempty"`
	RepIndex int    `json:"rep_index,omitempty"`
	// Trace provenance of simulated rows (see fault.TraceRecord).
	Observed      bool   `json:"observed,omitempty"`
	FirstObsCycle uint64 `json:"first_obs_cycle,omitempty"`
	EarlyStop     string `json:"early_stop,omitempty"`
	// Telemetry extras of simulated rows.
	WallNS         int64  `json:"wall_ns,omitempty"`
	WatchedReads   uint64 `json:"watched_reads,omitempty"`
	WatchedWrites  uint64 `json:"watched_writes,omitempty"`
	ObservedReads  uint64 `json:"observed_reads,omitempty"`
	ObservedWrites uint64 `json:"observed_writes,omitempty"`
	LadderRestored bool   `json:"ladder_restored,omitempty"`
	RungCycle      uint64 `json:"rung_cycle,omitempty"`
	Windowed       bool   `json:"windowed,omitempty"`
	WindowEntered  bool   `json:"window_entered,omitempty"`
	WindowExited   bool   `json:"window_exited,omitempty"`
	FastSteps      uint64 `json:"fast_steps,omitempty"`
	DetailCycles   uint64 `json:"detail_cycles,omitempty"`
	// Divergence provenance of simulated rows (configs with Divergence
	// on; all additive, so protocol version 1 peers interoperate).
	Diverged          bool     `json:"diverged,omitempty"`
	DivergeCycle      uint64   `json:"diverge_cycle,omitempty"`
	DivergeIndex      uint64   `json:"diverge_index,omitempty"`
	FaultTouches      uint64   `json:"fault_touches,omitempty"`
	LastTouchCycle    uint64   `json:"last_touch_cycle,omitempty"`
	CorruptStructures []string `json:"corrupt_structures,omitempty"`

	// Resumed marks a run replayed from a journal rather than received
	// from a worker — coordinator-local bookkeeping, never on the wire.
	Resumed bool `json:"-"`
}

// DivergenceRecord rebuilds the divergence-provenance row of this run —
// the coordinator's merge path calls it with the resolved record so the
// assembled file is byte-identical to a single-node run's.
func (s ShardRun) DivergenceRecord(campaign string) divergence.Record {
	cls, _ := (Parser{}).Classify(s.Record)
	d := divergence.Record{
		Campaign:          campaign,
		MaskID:            s.Record.MaskID,
		Status:            s.Record.Status,
		Class:             string(cls),
		Cycles:            s.Record.Cycles,
		Observed:          s.Observed,
		FirstObsCycle:     s.FirstObsCycle,
		FaultTouches:      s.FaultTouches,
		LastTouchCycle:    s.LastTouchCycle,
		CorruptStructures: s.CorruptStructures,
		Diverged:          s.Diverged,
		DivergeCycle:      s.DivergeCycle,
		DivergeIndex:      s.DivergeIndex,
		Pruned:            s.Pruned,
		Resumed:           s.Resumed,
	}
	d.Derive()
	return d
}

// ShardResult is the outcome of one executed shard: the golden header
// of the cell (identical from every shard — deterministic simulators)
// and one run per mask of the window.
type ShardResult struct {
	Golden GoldenInfo `json:"golden"`
	Runs   []ShardRun `json:"runs"`
}

// eventCapture buffers run-end events by mask ID so RunShard can read
// back the telemetry extras of its simulated runs.
type eventCapture struct {
	mu     sync.Mutex
	byMask map[int]telemetry.RunEvent
}

func (c *eventCapture) RunEvent(ev telemetry.RunEvent) {
	c.mu.Lock()
	c.byMask[ev.MaskID] = ev
	c.mu.Unlock()
}

// RunShard executes the mask window [lo, hi) of campaign cell `campaign`
// — a distributed worker's unit of work. The full cell is rebuilt
// deterministically from the config (masks, checkpoint placement, prune
// plan), so every plan-time decision matches what a single-node run of
// the whole config would decide; only the windowed masks simulate.
// Pruned-dead rows are settled locally (their verdict needs only the
// golden reference); replicated rows are returned as stubs for the
// coordinator to resolve against their representative at merge time.
//
// att.Journal/att.Resume are ignored: the coordinator owns the journal
// of a distributed campaign as its exactly-once completion ledger.
// att.Golden is worth sharing across a worker's shards — goldens,
// ladders and liveness profiles all memoize in it.
func RunShard(cfg CampaignConfig, campaign, lo, hi int, resolve Resolver, att Attach) (*ShardResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Exhaustive {
		return nil, fmt.Errorf("core: exhaustive campaigns have no fixed shard geometry (the census size is profile-derived); run them single-node")
	}
	// The coordinator owns the global stop decision of an adaptive
	// distributed campaign; a shard must run its whole window, so the
	// local stopping rule is disarmed here.
	cfg.StopMargin, cfg.StopConfidence, cfg.StopCheckEvery = 0, 0, 0
	if resolve == nil {
		return nil, fmt.Errorf("core: RunShard needs a Resolver to materialize simulator factories")
	}
	if campaign < 0 || campaign >= len(cfg.Campaigns) {
		return nil, fmt.Errorf("core: shard targets campaign %d of %d", campaign, len(cfg.Campaigns))
	}
	n := cfg.MaskCount(campaign)
	if lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("core: shard window [%d,%d) outside campaign %d's %d masks", lo, hi, campaign, n)
	}
	cache := att.Golden
	if cache == nil {
		cache = NewGoldenCache()
	}
	spec, err := cfg.buildSpec(campaign, resolve, cache)
	if err != nil {
		return nil, err
	}
	if len(spec.Masks) != n {
		return nil, fmt.Errorf("core: campaign %d materialized %d masks, config promises %d", campaign, len(spec.Masks), n)
	}

	// A private collector with a capture sink reads back the per-run
	// telemetry extras; the caller's collector (if any) must not see
	// shard-local events — the coordinator re-emits the merged stream.
	collector := telemetry.New()
	capture := &eventCapture{byMask: make(map[int]telemetry.RunEvent, hi-lo)}
	collector.AddSink(capture)
	// Divergence is measured shard-locally into a private sink and
	// shipped per run; the coordinator assembles the campaign-wide file.
	var dsink *divergence.Sink
	if cfg.Divergence {
		dsink = divergence.NewSink()
	}
	opt := cfg.matrixOptions(Attach{
		Telemetry:   collector,
		Divergence:  dsink,
		Tracer:      att.Tracer,
		TraceParent: att.TraceParent,
		SpanWorker:  att.SpanWorker,
	}, cache)

	results, plans, err := runMatrix([]CampaignSpec{spec}, opt, []maskWindow{{lo, hi}})
	if err != nil {
		return nil, err
	}
	res, plan := results[0], plans[0]

	var divByMask map[int]divergence.Record
	if dsink != nil {
		recs := dsink.Records()
		divByMask = make(map[int]divergence.Record, len(recs))
		for _, d := range recs {
			divByMask[d.MaskID] = d
		}
	}

	out := &ShardResult{Golden: res.Golden, Runs: make([]ShardRun, 0, hi-lo)}
	for m := lo; m < hi; m++ {
		run := ShardRun{Index: m}
		action := prune.Simulate
		if plan != nil {
			action = plan.Decisions[m].Action
		}
		switch action {
		case prune.Dead:
			run.Record = res.Records[m]
			run.Pruned = "dead"
		case prune.Replicate:
			run.Pruned = "replicated"
			run.RepIndex = plan.Decisions[m].Rep
			run.Record = LogRecord{MaskID: spec.Masks[m].ID, Sites: spec.Masks[m].Sites}
		default:
			run.Record = res.Records[m]
			capture.mu.Lock()
			ev, ok := capture.byMask[run.Record.MaskID]
			capture.mu.Unlock()
			if ok {
				run.Observed = ev.Observed
				run.FirstObsCycle = ev.FirstObsCycle
				run.EarlyStop = ev.EarlyStop
				run.WallNS = int64(ev.Wall)
				run.WatchedReads, run.WatchedWrites = ev.WatchedReads, ev.WatchedWrites
				run.ObservedReads, run.ObservedWrites = ev.ObservedReads, ev.ObservedWrites
				run.LadderRestored, run.RungCycle = ev.LadderRestored, ev.RungCycle
				run.Windowed, run.WindowEntered, run.WindowExited = ev.Windowed, ev.WindowEntered, ev.WindowExited
				run.FastSteps, run.DetailCycles = ev.FastSteps, ev.DetailCycles
			}
			if d, ok := divByMask[run.Record.MaskID]; ok {
				run.Diverged, run.DivergeCycle, run.DivergeIndex = d.Diverged, d.DivergeCycle, d.DivergeIndex
				run.FaultTouches, run.LastTouchCycle = d.FaultTouches, d.LastTouchCycle
				run.CorruptStructures = d.CorruptStructures
			}
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}
