package core

import (
	"repro/internal/asm"
	"repro/internal/handoff"
	"repro/internal/interp"
)

// Windower is the optional detail-window capability of a simulator (both
// cycle-accurate cores implement it). The scheduler uses it for sampled
// execution: each injected run simulates cycle-accurately only inside a
// window around its fault and runs on the functional tier everywhere
// else, with architectural state handed across the window edges.
type Windower interface {
	// Image returns the program image the machine was booted with; the
	// scheduler seeds functional-tier machines from it.
	Image() *asm.Image
	// SeedArch loads an architectural state captured on the functional
	// tier into the freshly booted machine. Call it before arming
	// faults.
	SeedArch(st *handoff.State)
	// RunWindow runs like Run, but once every armed fault has settled, a
	// post margin has elapsed and no residual corruption is resident in
	// a cache or TLB, the pipeline drains and it returns exited=true;
	// the caller finishes the run on the functional tier. Terminal
	// outcomes inside the window return exited=false with the result.
	RunWindow(limitCycles, postMargin uint64) (res RunResult, exited bool)
	// CaptureArch snapshots the architectural state of the drained
	// machine for the handoff back to the functional tier.
	CaptureArch() (*handoff.State, error)
}

// windowConfig is the per-run detail-window policy the scheduler hands
// down to runInjection.
type windowConfig struct {
	// pre and post are the margins, in cycles, of cycle-accurate
	// simulation kept before the earliest fault arms and after the last
	// fault settles.
	pre, post uint64
	// noExit keeps the run cycle-accurate after the window entry — the
	// window-verify re-run: it shares the windowed run's exact entry
	// trajectory (rung or functional fast-forward) but never hands off
	// to the functional tail, so any class disagreement indicts the
	// window-exit proof, not the entry.
	noExit bool
	// noDecode runs the functional tier without the predecoded
	// instruction cache (the -no-decode-cache reference behaviour).
	noDecode bool
}

// StatusOfOutcome maps a functional-tier outcome onto the campaign
// outcome taxonomy — the one shared mapping that makes windowed runs
// classify identically to cycle-accurate ones. The functional tier has
// no cycle clock, so its step limit is the cycle-limit (timeout)
// status.
func StatusOfOutcome(o interp.Outcome) RunStatus {
	switch o {
	case interp.Completed:
		return RunCompleted
	case interp.ProcessCrash:
		return RunProcessCrash
	case interp.SystemCrash:
		return RunSystemCrash
	case interp.StepLimit:
		return RunCycleLimit
	default:
		return RunSimCrash
	}
}

// ResultOfInterp converts a functional-tier result into the RunResult
// form the campaign records are built from. The functional tier counts
// instructions, not cycles; Cycles is accounted at one instruction per
// cycle so progress fields stay comparable across tiers.
func ResultOfInterp(r interp.Result) RunResult {
	return RunResult{
		Status:    StatusOfOutcome(r.Outcome),
		ExitCode:  r.ExitCode,
		Output:    r.Output,
		Committed: r.Steps,
		Cycles:    r.Steps,
		Events:    r.Events,
		FatalExc:  r.FatalExc,
	}
}

// windowEntry fast-forwards a run to its detail-window entry on the
// functional tier: the functional model executes the fault-free prefix
// up to the instruction matching the entry cycle (by the golden run's
// average commit rate), and the captured architectural state seeds the
// cycle-accurate machine. With a fast-forward rung ladder the replay
// resumes from the highest memoized rung at or below the entry
// instruction instead of from boot; the functional tier is
// deterministic, so the captured state — and everything downstream of
// it — is identical either way. It reports whether the machine was
// seeded and the fast-forwarded step count; a prefix the functional
// model finishes before the entry (or an entry of zero) leaves the
// machine untouched and the caller falls back to a checkpoint rung or
// boot.
func windowEntry(wi Windower, golden GoldenInfo, entry uint64, ff *ffLadder, noDecode bool) (seeded bool, steps uint64) {
	if entry == 0 || golden.Cycles == 0 {
		return false, 0
	}
	entryInstr := entry * golden.Committed / golden.Cycles
	if entryInstr == 0 {
		return false, 0
	}
	fm := ff.machineAt(wi.Image(), entryInstr)
	if fm == nil {
		fm = interp.New(wi.Image())
		if noDecode {
			fm.DisableDecodeCache()
		}
	}
	// Seeded machines inherit the rung's step count, so the remaining
	// slice lands exactly on entryInstr and fr.Steps reports the same
	// total a from-boot fast-forward would.
	fr := fm.Continue(entryInstr - fm.Steps())
	if fr.Outcome != interp.StepLimit {
		// The program completes (or crashes — impossible fault-free)
		// before the window opens at functional pace: no prefix to skip.
		fm.Release()
		return false, 0
	}
	st := fm.Capture()
	fm.Release()
	// The capture carries the functional tier's step count as its time
	// base; the cycle-accurate machine resumes the golden cycle clock at
	// the window edge so absolute fault cycles keep their meaning.
	st.Cycle = entry
	wi.SeedArch(st)
	return true, fr.Steps
}

// windowTail finishes a run that left its detail window on the
// functional tier: the captured architectural state seeds a functional
// machine, which runs under the instruction budget matching the run's
// cycle budget (golden committed count times the timeout factor). Tail
// cycles are accounted at one instruction per cycle on top of the
// capture cycle.
func windowTail(img *asm.Image, st *handoff.State, golden GoldenInfo, timeoutFactor uint64, noDecode bool) (RunResult, uint64) {
	stepBudget := golden.Committed * timeoutFactor
	if st.Committed >= stepBudget {
		// The window itself consumed the whole instruction budget; the
		// run is a timeout without a tail.
		return RunResult{
			Status:    RunCycleLimit,
			ExitCode:  st.Kern.ExitCode,
			Output:    append([]byte(nil), st.Kern.Output...),
			Committed: st.Committed,
			Cycles:    st.Cycle,
			Events:    st.Kern.Events,
		}, 0
	}
	tail := interp.Seed(img, st)
	if noDecode {
		tail.DisableDecodeCache()
	}
	tr := tail.Continue(stepBudget - st.Committed)
	tail.Release()
	tailSteps := tr.Steps - st.Committed
	res := ResultOfInterp(tr)
	res.Cycles = st.Cycle + tailSteps
	return res, tailSteps
}
