package core_test

import (
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
)

// profSim is fakeSim plus a cycle source, which makes it profilable —
// the exhaustive and importance generators need the golden liveness
// profile of the target structure.
type profSim struct {
	fakeSim
	cycle uint64
}

func newProfSim() *profSim { return &profSim{fakeSim: *newFakeSim()} }

func (s *profSim) CurrentCycle() uint64 { return s.cycle }

func (s *profSim) Run(limit uint64) core.RunResult {
	const cycles = 100
	out := make([]byte, 8)
	for cyc := uint64(0); cyc < cycles && cyc < limit; cyc++ {
		s.cycle = cyc
		for _, a := range s.watch {
			st := a.Tick(cyc)
			if s.earlyStop && (st == bitarray.StatusOverwritten || st == bitarray.StatusSkippedInvalid) {
				return core.RunResult{Status: core.RunEarlyMasked, Cycles: cyc, Committed: cyc}
			}
		}
		s.arr.WriteUint64(int(cyc%4), cyc)
		out[0] ^= byte(s.arr.ReadUint64(int(cyc % 4)))
	}
	return core.RunResult{Status: core.RunCompleted, Output: out, Cycles: cycles, Committed: cycles}
}

// adaptiveConfig is the shared cell of the early-stopping differentials:
// a margin loose enough (25pp at 99%) that the Wilson rule decides at
// the first boundary regardless of the observed counts — the worst-case
// half-width at n=25 is ~22.9pp — so every test below stops at exactly
// 25 of 60 runs, deterministically.
func adaptiveConfig(tool string) core.CampaignConfig {
	return core.CampaignConfig{
		Campaigns:      []core.CampaignCell{{Tool: tool, Benchmark: "qsort", Structure: "rf.int"}},
		Injections:     60,
		Seed:           7,
		StopMargin:     0.25,
		StopConfidence: 0.99,
		StopCheckEvery: 25,
	}
}

func runAdaptive(t *testing.T, cfg core.CampaignConfig, att core.Attach) *core.CampaignResult {
	t.Helper()
	if att.Golden == nil {
		att.Golden = core.NewGoldenCache()
	}
	results, err := core.RunConfig(cfg, simsResolver(t), att)
	if err != nil {
		t.Fatal(err)
	}
	return results[0]
}

// Criterion (a): on every tool, an early-stopped cell's simulated
// prefix is byte-identical to the same prefix of the fixed-budget run
// (same seed, same mask stream), and its class proportions agree with
// the full-budget estimate within the sum of the two margins.
func TestAdaptiveStopAgreesWithFixedBudget(t *testing.T) {
	for _, tool := range []string{sims.GeFINX86, sims.GeFINARM, sims.MaFINX86} {
		t.Run(tool, func(t *testing.T) {
			cache := core.NewGoldenCache()
			cfg := adaptiveConfig(tool)
			adaptive := runAdaptive(t, cfg, core.Attach{Golden: cache})

			fixed := cfg
			fixed.StopMargin, fixed.StopConfidence, fixed.StopCheckEvery = 0, 0, 0
			full := runAdaptive(t, fixed, core.Attach{Golden: cache})
			if full.Adaptive != nil {
				t.Fatalf("fixed-budget run carries adaptive info: %+v", full.Adaptive)
			}

			a := adaptive.Adaptive
			if a == nil || !a.StoppedEarly {
				t.Fatalf("adaptive cell did not stop early: %+v", a)
			}
			if a.SimulatedRuns != 25 || a.PlannedRuns != 60 {
				t.Fatalf("spend = %d/%d, want 25/60", a.SimulatedRuns, a.PlannedRuns)
			}
			if !(a.EffectiveMargin > 0 && a.EffectiveMargin <= cfg.StopMargin) {
				t.Fatalf("achieved margin %v outside (0, %v]", a.EffectiveMargin, cfg.StopMargin)
			}
			if len(adaptive.Records) != 60 {
				t.Fatalf("records = %d, want the full population of 60", len(adaptive.Records))
			}
			// The simulated prefix is the fixed-budget run's prefix, exactly.
			if !reflect.DeepEqual(adaptive.Records[:25], full.Records[:25]) {
				t.Fatalf("simulated prefix differs from the fixed-budget prefix")
			}
			// The cancelled tail is provenance-only stopped rows over the
			// same masks the fixed run simulated.
			for i, rec := range adaptive.Records[25:] {
				if rec.Status != core.RunStopped.String() {
					t.Fatalf("tail record %d has status %q, want %q", i, rec.Status, core.RunStopped)
				}
				if rec.MaskID != full.Records[25+i].MaskID {
					t.Fatalf("tail record %d settles mask %d, fixed run simulated %d", i, rec.MaskID, full.Records[25+i].MaskID)
				}
				if rec.OutputHash != "" || rec.Cycles != 0 {
					t.Fatalf("stopped row %d carries simulation results: %+v", i, rec)
				}
			}
			// Proportion agreement: both estimate the same population
			// proportion, each within its own margin at 99%.
			p := core.Parser{}
			bStop, bFull := p.ParseAll(adaptive.Records), p.ParseAll(full.Records)
			if bStop.Total != 25 || bFull.Total != 60 {
				t.Fatalf("parsed totals %d/%d, want 25/60 (stopped rows must not count)", bStop.Total, bFull.Total)
			}
			pop := uint64(len(full.Records)) // population floor; real N only widens the fixed margin
			tol := 100 * (a.EffectiveMargin + fault.MarginFor(pop*1000, 60, 0.99))
			for _, cls := range core.Classes {
				d := math.Abs(bStop.Pct(cls) - bFull.Pct(cls))
				if d > tol {
					t.Fatalf("class %s: stopped %.1f%% vs fixed %.1f%% differ by %.1fpp > %.1fpp", cls, bStop.Pct(cls), bFull.Pct(cls), d, tol)
				}
			}
		})
	}
}

// The stop decision must not depend on worker interleaving: 1, 2 and 4
// workers produce identical records, identical adaptive info, and the
// telemetry plane counts the stopped tail once.
func TestAdaptiveStopDeterministicAcrossWorkers(t *testing.T) {
	cache := core.NewGoldenCache()
	var ref *core.CampaignResult
	for _, workers := range []int{1, 2, 4} {
		cfg := adaptiveConfig(sims.GeFINX86)
		cfg.Workers = workers
		collector := telemetry.New()
		res := runAdaptive(t, cfg, core.Attach{Golden: cache, Telemetry: collector})
		if ref == nil {
			ref = res
		} else {
			if !reflect.DeepEqual(res.Records, ref.Records) {
				t.Fatalf("workers=%d: records differ from workers=1", workers)
			}
			if !reflect.DeepEqual(res.Adaptive, ref.Adaptive) {
				t.Fatalf("workers=%d: adaptive info %+v differs from %+v", workers, res.Adaptive, ref.Adaptive)
			}
		}
		snap := collector.Snapshot()
		if snap.StoppedRuns != 35 {
			t.Fatalf("workers=%d: telemetry stopped_runs = %d, want 35", workers, snap.StoppedRuns)
		}
		if snap.CellsStoppedEarly != 1 {
			t.Fatalf("workers=%d: cells_stopped_early = %d, want 1", workers, snap.CellsStoppedEarly)
		}
		if !(snap.EffectiveMargin > 0 && snap.EffectiveMargin <= 0.25) {
			t.Fatalf("workers=%d: effective_margin = %v", workers, snap.EffectiveMargin)
		}
	}
}

// Criterion (d), resume leg: a journaled adaptive campaign killed
// mid-flight re-derives the identical stop point on -resume — the
// contiguous-prefix discipline makes the decision a function of the
// mask order, not of which completions had landed at the kill.
func TestAdaptiveResumeReproducesStopPoint(t *testing.T) {
	cache := core.NewGoldenCache()
	cfg := adaptiveConfig(sims.GeFINX86)
	cfg.Workers = 4
	ref := runAdaptive(t, cfg, core.Attach{Golden: cache})

	// A full journaled run stands in for the pre-kill process; truncating
	// its journal to the first 7 lines simulates the kill, leaving an
	// out-of-order subset (completion order, 4 workers) with holes.
	dir := t.TempDir()
	path := dir + "/cell.journal.jsonl"
	j, err := fault.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	runAdaptive(t, cfg, core.Attach{Golden: cache, Journal: j})
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 8 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines[:7], "")), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := fault.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := runAdaptive(t, cfg, core.Attach{Golden: cache, Journal: j2, Resume: true})
	if !reflect.DeepEqual(resumed.Records, ref.Records) {
		t.Fatalf("resumed records differ from the uninterrupted run")
	}
	if !reflect.DeepEqual(resumed.Adaptive, ref.Adaptive) {
		t.Fatalf("resumed adaptive info %+v, want %+v", resumed.Adaptive, ref.Adaptive)
	}
}

// Criterion (d), composition leg: early stopping under pruning, the
// checkpoint ladder and the detail window still stops, settles every
// mask exactly once, and is deterministic across worker counts.
func TestAdaptiveStopComposesWithPruneLadderWindow(t *testing.T) {
	cache := core.NewGoldenCache()
	var ref *core.CampaignResult
	for _, workers := range []int{1, 4} {
		cfg := adaptiveConfig(sims.GeFINX86)
		// Pruning proves ~96% of rf.int masks dead, so the budget must be
		// large enough that the surviving simulated stream still crosses
		// the first evaluation boundary; the pruned masks cost nothing.
		cfg.Injections = 2000
		cfg.Workers = workers
		cfg.Prune = true
		cfg.UseCheckpoint = true
		cfg.CheckpointLadder = 3
		cfg.DetailWindow = true
		cfg.WindowPre = 2000
		cfg.WindowPost = 1000
		res := runAdaptive(t, cfg, core.Attach{Golden: cache})
		if res.Adaptive == nil || !res.Adaptive.StoppedEarly {
			t.Fatalf("workers=%d: composed cell did not stop early: %+v", workers, res.Adaptive)
		}
		if len(res.Records) != 2000 {
			t.Fatalf("workers=%d: %d records, want every mask settled", workers, len(res.Records))
		}
		seen := make(map[int]bool)
		stopped := 0
		for _, rec := range res.Records {
			if seen[rec.MaskID] {
				t.Fatalf("workers=%d: mask %d settled twice", workers, rec.MaskID)
			}
			seen[rec.MaskID] = true
			if rec.Status == core.RunStopped.String() {
				stopped++
			}
		}
		if stopped == 0 {
			t.Fatalf("workers=%d: stop fired but no stopped rows", workers)
		}
		if ref == nil {
			ref = res
		} else if !reflect.DeepEqual(res.Records, ref.Records) {
			t.Fatalf("workers=%d: composed records differ from workers=1", workers)
		}
	}
}

// Criterion (b): the Horvitz-Thompson reweighted Masked estimate of an
// importance-sampled campaign agrees with the uniform estimate of the
// same cell — the boost changes where the samples land, not what the
// estimator converges to.
func TestImportanceSamplingUnbiasedEstimate(t *testing.T) {
	cache := core.NewGoldenCache()
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: sims.GeFINX86, Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 120,
		Seed:       11,
		Workers:    4,
	}
	uniform := runAdaptive(t, cfg, core.Attach{Golden: cache})
	cfg.ImportanceSampling = true
	weighted := runAdaptive(t, cfg, core.Attach{Golden: cache})

	p := core.Parser{}
	bu, bw := p.ParseAll(uniform.Records), p.ParseAll(weighted.Records)
	if bu.Weighted() {
		t.Fatalf("uniform campaign reads as weighted")
	}
	if !bw.Weighted() {
		t.Fatalf("importance-sampled campaign carries no weights")
	}
	if math.Abs(bw.WeightSum-120) > 40 {
		t.Fatalf("weight sum %.1f too far from n=120 (E[w]=1)", bw.WeightSum)
	}
	for _, v := range []float64{bw.WeightSum, bw.WeightedPct(core.ClassMasked), bw.WeightedVulnerability()} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite weighted estimate: %v", v)
		}
	}
	// Each estimate carries a ~12pp margin at n=120; HT reweighting
	// inflates the weighted one's variance, so allow both plus slack.
	if d := math.Abs(bw.WeightedPct(core.ClassMasked) - bu.Pct(core.ClassMasked)); d > 30 {
		t.Fatalf("weighted Masked %.1f%% vs uniform %.1f%%: differ by %.1fpp", bw.WeightedPct(core.ClassMasked), bu.Pct(core.ClassMasked), d)
	}
}

// Criterion (c): exhaustive mode enumerates exactly the collapsed
// equivalence-class space of the golden liveness profile, settles every
// class once with its cycle-mass weight, and stamps the cell complete.
// Real cells have multi-million-class censuses, so this runs against the
// deterministic fake simulator (8x64 bits, 100 cycles).
func TestExhaustiveCensusComplete(t *testing.T) {
	factory := core.Factory(func() core.Simulator { return newProfSim() })
	resolve := func(tool, benchmark string) (core.Factory, error) { return factory, nil }

	// The ground truth, enumerated independently of the config path.
	cache := core.NewGoldenCache()
	golden, err := cache.Golden("fake", "b", factory)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := cache.Profiles("fake", "b", factory, nil, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	prof := profs[0]["s"]
	want, err := fault.EnumerateExhaustive(fault.GeneratorSpec{
		Structure: "s", Entries: prof.Entries, BitsPerEntry: prof.BitsPerEntry,
		MaxCycle: golden.Cycles, Model: fault.ModelTransient, Seed: 1,
	}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 64 {
		t.Fatalf("census suspiciously small (%d classes); the fake's access pattern should collapse 8x64x100 bits into hundreds", len(want))
	}

	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "fake", Benchmark: "b", Structure: "s"}},
		Exhaustive: true,
		Seed:       1,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	results, err := core.RunConfig(cfg, resolve, core.Attach{Golden: core.NewGoldenCache()})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	a := res.Adaptive
	if a == nil || !a.Complete {
		t.Fatalf("exhaustive cell not marked complete: %+v", a)
	}
	if a.StoppedEarly || a.EffectiveMargin != 0 {
		t.Fatalf("census must have zero margin and no stop: %+v", a)
	}
	if a.PlannedRuns != len(want) {
		t.Fatalf("planned %d classes, independent enumeration has %d", a.PlannedRuns, len(want))
	}
	if len(res.Records) != len(want) {
		t.Fatalf("%d records, want one per equivalence class (%d)", len(res.Records), len(want))
	}
	// Every class settled exactly once, at its representative site, with
	// its cycle-mass weight; the weights tile the raw population.
	population := float64(prof.Entries) * float64(prof.BitsPerEntry) * float64(golden.Cycles)
	var sum float64
	for i, rec := range res.Records {
		if rec.MaskID != want[i].ID || rec.Weight != want[i].Weight {
			t.Fatalf("record %d: mask %d weight %v, want mask %d weight %v", i, rec.MaskID, rec.Weight, want[i].ID, want[i].Weight)
		}
		if !reflect.DeepEqual(rec.Sites, want[i].Sites) {
			t.Fatalf("record %d: sites %+v, want %+v", i, rec.Sites, want[i].Sites)
		}
		if rec.Status == core.RunStopped.String() {
			t.Fatalf("census row %d is a stopped row", i)
		}
		sum += rec.Weight
	}
	if sum != population {
		t.Fatalf("census weights sum to %v, want the raw population %v", sum, population)
	}
	b := core.Parser{}.ParseAll(res.Records)
	if b.WeightSum != population {
		t.Fatalf("breakdown weight sum %v, want %v", b.WeightSum, population)
	}
	if v := b.WeightedVulnerability(); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("non-finite census vulnerability: %v", v)
	}
}
