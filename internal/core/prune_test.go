package core_test

import (
	"sync"
	"testing"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
)

// readerSim is a deterministic toy simulator built so every pruning
// decision occurs: it writes its single hot entry once (cycle 10), reads
// it once (cycle 50), and never touches entry 1. Faults before the write
// are overwritten, faults between write and read are live and fall into
// one equivalence interval, faults after the read are never accessed.
type readerSim struct {
	arr   *bitarray.Array
	watch []*bitarray.Array
	cycle uint64
}

func newReaderSim() core.Simulator {
	return &readerSim{arr: bitarray.New("r", 2, 64)}
}

func (s *readerSim) Name() string                    { return "Reader" }
func (s *readerSim) ISA() string                     { return "x86" }
func (s *readerSim) CurrentCycle() uint64            { return s.cycle }
func (s *readerSim) SetEarlyStop(on bool)            {}
func (s *readerSim) Stats() map[string]uint64        { return map[string]uint64{} }
func (s *readerSim) WatchArrays(a []*bitarray.Array) { s.watch = a }
func (s *readerSim) Structures() map[string]*bitarray.Array {
	return map[string]*bitarray.Array{"r": s.arr}
}

func (s *readerSim) Run(limit uint64) core.RunResult {
	const cycles = 100
	var out byte
	for cyc := uint64(0); cyc < cycles && cyc < limit; cyc++ {
		s.cycle = cyc
		for _, a := range s.watch {
			a.Tick(cyc)
		}
		if cyc == 10 {
			s.arr.WriteUint64(0, 0xAB)
		}
		if cyc == 50 {
			out = byte(s.arr.ReadUint64(0))
		}
	}
	return core.RunResult{Status: core.RunCompleted, Output: []byte{out}, Cycles: cycles, Committed: cycles}
}

// readerMasks covers every plan outcome: overwritten, same-interval
// live duplicates, never-accessed (late and untouched-entry).
func readerMasks() []fault.Mask {
	site := func(entry, bit int, cycle uint64) []fault.Site {
		return []fault.Site{{Structure: "r", Entry: entry, Bit: bit, Model: fault.ModelTransient, Cycle: cycle}}
	}
	return []fault.Mask{
		{ID: 0, Sites: site(0, 3, 5)},  // overwritten at 10 → dead
		{ID: 1, Sites: site(0, 3, 20)}, // live until the read at 50: representative
		{ID: 2, Sites: site(0, 3, 30)}, // same interval → replicated (SDC)
		{ID: 3, Sites: site(0, 3, 49)}, // same interval → replicated
		{ID: 4, Sites: site(0, 3, 60)}, // after the read → never accessed
		{ID: 5, Sites: site(1, 3, 20)}, // untouched entry → never accessed
		{ID: 6, Sites: site(0, 7, 20)}, // different bit, read covers word → live, own class
	}
}

func classesOf(t *testing.T, recs []core.LogRecord) []core.Class {
	t.Helper()
	out := make([]core.Class, len(recs))
	for i, r := range recs {
		out[i], _ = core.Parser{}.Classify(r)
	}
	return out
}

// The whole point of the pruner: a pruned matrix must classify every
// mask exactly like the unpruned one.
func TestPruneDifferentialOnToySim(t *testing.T) {
	spec := func() core.CampaignSpec {
		return core.CampaignSpec{
			Tool: "Reader", Benchmark: "toy", Structure: "r",
			Masks: readerMasks(), Factory: newReaderSim, TimeoutFactor: 3,
		}
	}
	plain, err := core.RunMatrix([]core.CampaignSpec{spec()}, core.MatrixOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	collector := telemetry.New()
	trace := telemetry.NewTraceSink()
	collector.AddSink(trace)
	pruned, err := core.RunMatrix([]core.CampaignSpec{spec()}, core.MatrixOptions{
		Workers: 2, Telemetry: collector, Prune: true, PruneVerify: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := classesOf(t, plain[0].Records)
	got := classesOf(t, pruned[0].Records)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mask %d: pruned class %v, plain class %v", i, got[i], want[i])
		}
	}
	// Live faults at bit 3 flip the output byte: SDC for the
	// representative and both replicas.
	for _, i := range []int{1, 2, 3, 6} {
		if got[i] != core.ClassSDC {
			t.Errorf("mask %d: %v, want SDC", i, got[i])
		}
	}

	snap := collector.Snapshot()
	if snap.PrunedDead != 3 {
		t.Errorf("PrunedDead = %d, want 3", snap.PrunedDead)
	}
	if snap.PrunedReplicated != 2 {
		t.Errorf("PrunedReplicated = %d, want 2", snap.PrunedReplicated)
	}
	if snap.RunsQueued != 7 || snap.RunsStarted != 7 || snap.RunsDone != 7 {
		t.Errorf("run accounting %d/%d/%d, want 7/7/7 (verify runs must be invisible)",
			snap.RunsQueued, snap.RunsStarted, snap.RunsDone)
	}

	// The trace still carries one row per injection, in mask order, with
	// prune provenance on the settled rows.
	rows := trace.Records()
	if len(rows) != len(readerMasks()) {
		t.Fatalf("trace rows = %d, want %d", len(rows), len(readerMasks()))
	}
	wantPruned := []string{"dead", "", "replicated", "replicated", "dead", "dead", ""}
	for i, row := range rows {
		if row.MaskID != i {
			t.Fatalf("trace row %d out of order: mask %d", i, row.MaskID)
		}
		if row.Pruned != wantPruned[i] {
			t.Errorf("trace row %d: pruned %q, want %q", i, row.Pruned, wantPruned[i])
		}
		if row.Pruned == "replicated" {
			if row.RepMask == nil || *row.RepMask != 1 {
				t.Errorf("trace row %d: rep_mask %v, want 1", i, row.RepMask)
			}
		} else if row.RepMask != nil {
			t.Errorf("trace row %d: unexpected rep_mask %v", i, *row.RepMask)
		}
	}
}

// pruneSpecsFor builds small real campaigns over two structures for one
// tool on qsort.
func pruneSpecsFor(t *testing.T, tool string, useCheckpoint bool) []core.CampaignSpec {
	t.Helper()
	f := qsortFactory(t, tool)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	var specs []core.CampaignSpec
	for _, structure := range []string{"rf.int", "l1d.data"} {
		arr := sim.Structures()[structure]
		masks, err := fault.Generate(fault.GeneratorSpec{
			Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
			MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 12, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, core.CampaignSpec{
			Tool: tool, Benchmark: "qsort", Structure: structure,
			Masks: masks, Factory: f, TimeoutFactor: 3,
			UseCheckpoint: useCheckpoint,
		})
	}
	return specs
}

// Pruned and unpruned matrices must classify identically on the real
// simulators — both tools, both ISAs — with and without checkpoint
// restores in play. PruneVerify doubles as an in-matrix differential
// assertion on a sample of the pruned masks.
func TestPruneDifferentialRealSims(t *testing.T) {
	for _, tool := range []string{sims.MaFINX86, sims.GeFINX86, sims.GeFINARM} {
		for _, ladder := range []int{0, 3} {
			useCP := ladder > 0
			plain, err := core.RunMatrix(pruneSpecsFor(t, tool, useCP), core.MatrixOptions{
				Workers: 4, CheckpointLadder: ladder,
			})
			if err != nil {
				t.Fatalf("%s ladder=%d plain: %v", tool, ladder, err)
			}
			pruned, err := core.RunMatrix(pruneSpecsFor(t, tool, useCP), core.MatrixOptions{
				Workers: 4, CheckpointLadder: ladder, Prune: true, PruneVerify: 6,
			})
			if err != nil {
				t.Fatalf("%s ladder=%d pruned: %v", tool, ladder, err)
			}
			for s := range plain {
				want := classesOf(t, plain[s].Records)
				got := classesOf(t, pruned[s].Records)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s ladder=%d %s mask %d: pruned %v, plain %v",
							tool, ladder, plain[s].Golden.Structure, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// The checkpoint ladder alone (no pruning) must not change any verdict
// relative to the legacy single checkpoint, and restored runs must be
// visible on the telemetry gauges.
func TestCheckpointLadderMatchesLegacy(t *testing.T) {
	legacy, err := core.RunMatrix(pruneSpecsFor(t, sims.GeFINX86, true), core.MatrixOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	collector := telemetry.New()
	ladder, err := core.RunMatrix(pruneSpecsFor(t, sims.GeFINX86, true), core.MatrixOptions{
		Workers: 4, CheckpointLadder: 4, Telemetry: collector,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := range legacy {
		want := classesOf(t, legacy[s].Records)
		got := classesOf(t, ladder[s].Records)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s mask %d: ladder %v, legacy %v", legacy[s].Golden.Structure, i, got[i], want[i])
			}
		}
	}
	if collector.Snapshot().LadderRestores == 0 {
		t.Error("no run restored from a ladder rung")
	}
}

// A simulator without a cycle source cannot be profiled; pruning must
// degrade to simulating everything rather than failing or misclassifying.
func TestPruneWithoutCycleSourceDegrades(t *testing.T) {
	var calls int64
	factory := countingFactory(&calls)
	spec := core.CampaignSpec{
		Tool: "fake", Benchmark: "b", Structure: "s",
		Masks: fakeMasks(6), Factory: factory, TimeoutFactor: 3,
	}
	collector := telemetry.New()
	res, err := core.RunMatrix([]core.CampaignSpec{spec}, core.MatrixOptions{
		Workers: 2, Prune: true, PruneVerify: 4, Telemetry: collector,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Records) != 6 {
		t.Fatalf("records = %d", len(res[0].Records))
	}
	snap := collector.Snapshot()
	if snap.PrunedDead+snap.PrunedReplicated != 0 {
		t.Fatalf("pruned %d+%d masks without a profile", snap.PrunedDead, snap.PrunedReplicated)
	}
	if snap.RunsDone != 6 {
		t.Fatalf("RunsDone = %d", snap.RunsDone)
	}
}

// Concurrent pruned matrices sharing one golden cache and collector must
// be race-free (run with -race) and each reach the same classification.
func TestPruneConcurrentMatricesSharedCache(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	arr := sim.Structures()["rf.int"]
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: "rf.int", Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewGoldenCache()
	collector := telemetry.New()
	const rounds = 3
	out := make([][]*core.CampaignResult, rounds)
	errs := make([]error, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out[r], errs[r] = core.RunMatrix([]core.CampaignSpec{{
				Tool: sims.GeFINX86, Benchmark: "qsort", Structure: "rf.int",
				Masks: masks, Factory: f, TimeoutFactor: 3, UseCheckpoint: true,
			}}, core.MatrixOptions{
				Workers: 2, Golden: cache, Telemetry: collector,
				Prune: true, CheckpointLadder: 3,
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		if errs[r] != nil {
			t.Fatalf("round %d: %v", r, errs[r])
		}
	}
	base := classesOf(t, out[0][0].Records)
	for r := 1; r < rounds; r++ {
		got := classesOf(t, out[r][0].Records)
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("round %d mask %d: %v, want %v", r, i, got[i], base[i])
			}
		}
	}
}
