package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/asm"
	"repro/internal/handoff"
	"repro/internal/interp"
)

// defaultFFRungs is the rung count of the functional fast-forward
// ladder when the FFRungs knob is left at zero: enough rungs that the
// average window entry replays under 1/64th of the golden prefix,
// while the COW paged snapshots keep the memoized states far below
// rungs × memory size.
const defaultFFRungs = 32

// ffLadder memoizes functional-tier architectural states at quantized
// step points of a row's fault-free prefix — the functional twin of the
// detailed checkpoint ladder. windowEntry seeds from the highest rung
// at or below its entry instruction instead of replaying from boot, so
// the shared prefix is executed once per rung per row rather than once
// per mask.
//
// Determinism: the functional tier is a deterministic machine, so the
// state captured after N steps is identical whether those N steps ran
// in one slice from boot or resumed from a memoized capture at an
// earlier step (interp.Seed restores the full architectural state and
// the step count). The seeded window entry is therefore byte-identical
// to the from-boot one, which is what keeps logs, traces, divergence
// records and the journal unchanged. Captures share unchanged memory
// pages copy-on-write with the snapshot they resumed from, bounding
// ladder size.
type ffLadder struct {
	quantum  uint64 // steps between rung points; 0 disables the ladder
	noDecode bool   // build rungs with the decode cache disabled too
	// hits and builds alias the owning GoldenCache's matrix-wide
	// counters (the ff_rung telemetry gauges).
	hits, builds *atomic.Uint64

	mu    sync.Mutex
	rungs map[uint64]*handoff.State // step → capture; nil = prefix ends before step
}

func newFFLadder(quantum uint64, noDecode bool, hits, builds *atomic.Uint64) *ffLadder {
	return &ffLadder{quantum: quantum, noDecode: noDecode, hits: hits, builds: builds,
		rungs: make(map[uint64]*handoff.State)}
}

// machineAt returns a functional machine positioned at the highest rung
// step at or below entryInstr, building and memoizing any missing rung
// from the nearest memoized one below it. A nil return means no rung
// applies (ladder disabled, entry before the first rung, or the prefix
// completes before the rung point) and the caller fast-forwards from
// boot exactly as the unoptimised path does.
func (l *ffLadder) machineAt(img *asm.Image, entryInstr uint64) *interp.Machine {
	if l == nil || l.quantum == 0 {
		return nil
	}
	step := entryInstr - entryInstr%l.quantum
	if step == 0 {
		return nil
	}
	st := l.rung(img, step)
	if st == nil {
		return nil
	}
	m := interp.Seed(img, st)
	if l.noDecode {
		m.DisableDecodeCache()
	}
	return m
}

// rung returns the memoized capture at the given step, building it on
// first use. Builds hold the ladder lock: concurrent workers wanting
// the same rung would otherwise all replay the same prefix, which is
// precisely the cost the ladder exists to pay once.
func (l *ffLadder) rung(img *asm.Image, step uint64) *handoff.State {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.rungs[step]; ok {
		if st != nil {
			l.hits.Add(1)
		}
		return st
	}
	var fm *interp.Machine
	for s := step - l.quantum; s > 0; s -= l.quantum {
		if st := l.rungs[s]; st != nil {
			fm = interp.Seed(img, st)
			break
		}
	}
	if fm == nil {
		fm = interp.New(img)
	}
	if l.noDecode {
		fm.DisableDecodeCache()
	}
	fr := fm.Continue(step - fm.Steps())
	if fr.Outcome != interp.StepLimit {
		// The prefix completes (at functional pace) before the rung
		// point; memoize the miss so later entries skip the replay.
		fm.Release()
		l.rungs[step] = nil
		return nil
	}
	st := fm.Capture()
	fm.Release()
	l.rungs[step] = st
	l.builds.Add(1)
	return st
}
