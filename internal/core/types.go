// Package core is the paper's primary contribution: the differential
// microarchitecture-level fault injection framework. It defines the
// dispatcher interface the two simulators implement, the fault mask
// generator wiring, the injection campaign controller with its early-stop
// optimizations and worker pool, and the parser that classifies every
// injection run into the reliability classes of §III.A (Masked, SDC,
// DUE, Timeout, Crash, Assert).
package core

import (
	"fmt"

	"repro/internal/bitarray"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// RunStatus is the raw result of a single simulation run, before the
// Parser maps it (together with the golden output) to a reliability
// class.
type RunStatus uint8

const (
	// RunCompleted means the program exited via the exit syscall.
	RunCompleted RunStatus = iota
	// RunProcessCrash means a fatal exception killed the program.
	RunProcessCrash
	// RunSystemCrash means the simulated kernel panicked.
	RunSystemCrash
	// RunAssert means a simulator-internal assertion fired.
	RunAssert
	// RunSimCrash means the simulator itself crashed (a recovered Go
	// panic).
	RunSimCrash
	// RunCycleLimit means the run exceeded its cycle budget (timeout).
	RunCycleLimit
	// RunEarlyMasked means the run was stopped by an early-stop
	// optimization with the fault provably masked (§III.B: fault in an
	// invalid entry, or overwritten before ever being read).
	RunEarlyMasked
	// RunPruned means the run was never simulated: the golden-run
	// liveness profile proved the fault dead (overwritten, evicted or
	// never accessed before any read) at plan time, so the outcome is
	// Masked with certainty — the §III.B proof moved before simulation.
	RunPruned
	// RunStopped means the run was never simulated because its cell's
	// sequential-confidence stopping rule decided before the run's turn:
	// every outcome-class proportion reached the target margin, so the
	// remaining masks were cancelled deterministically. Unlike RunPruned
	// the outcome is unknown — stopped rows are provenance, not verdicts,
	// and are excluded from class proportions.
	RunStopped
)

var runStatusNames = [...]string{
	RunCompleted: "completed", RunProcessCrash: "process-crash",
	RunSystemCrash: "system-crash", RunAssert: "assert",
	RunSimCrash: "simulator-crash", RunCycleLimit: "cycle-limit",
	RunEarlyMasked: "early-masked", RunPruned: "pruned",
	RunStopped: "stopped-early",
}

// String returns the log name of the status.
func (s RunStatus) String() string {
	if int(s) < len(runStatusNames) {
		return runStatusNames[s]
	}
	return fmt.Sprintf("RunStatus(%d)", uint8(s))
}

// RunResult is everything a single simulation run reports to the
// injection campaign controller.
type RunResult struct {
	Status   RunStatus
	ExitCode uint64
	// Output is the simulated output file, compared against the golden
	// run for the Masked/SDC decision.
	Output []byte
	// Cycles and Committed report progress; the Parser uses them to
	// separate deadlocks from livelocks on timeouts.
	Committed uint64
	Cycles    uint64
	// Events are the recoverable exceptions recorded by the kernel
	// (the DUE indications).
	Events []kernel.Event
	// FatalExc identifies the exception behind a process/system crash.
	FatalExc isa.Exception
	// AssertMsg carries the message of a fired assertion or recovered
	// simulator panic.
	AssertMsg string
	// CommitStalled is set on cycle-limit runs that made no commit
	// progress over the deadlock window (deadlock rather than
	// livelock).
	CommitStalled bool
}

// AssertError is the panic payload of a simulator-internal assertion
// (the MARSS-style dense checks of the paper's Remark 8). Simulator Run
// methods recover it and report RunAssert.
type AssertError struct {
	Msg string
}

// Error implements error.
func (e AssertError) Error() string { return "assert: " + e.Msg }

// Assert panics with an AssertError when cond is false.
func Assert(cond bool, msg string) {
	if !cond {
		panic(AssertError{Msg: msg})
	}
}

// Simulator is the injector-dispatcher interface of Fig. 1: the contract
// between the injection campaign controller and a microarchitectural
// simulator. One Simulator instance is one simulated machine booted with
// one workload image; campaigns build a fresh instance per injection run.
type Simulator interface {
	// Name identifies the tool configuration, e.g. "MaFIN-x86".
	Name() string
	// ISA returns "x86" or "arm".
	ISA() string
	// Structures returns the injectable storage arrays by structure
	// name (e.g. "rf.int", "l1d.data", "lsq.data").
	Structures() map[string]*bitarray.Array
	// WatchArrays tells the simulator which arrays have armed faults so
	// it ticks their fault state machines each cycle and can stop early
	// when the outcome is decided.
	WatchArrays(arrs []*bitarray.Array)
	// SetEarlyStop enables or disables the §III.B early-stop
	// optimizations (enabled by default; the ablation benchmark turns
	// them off).
	SetEarlyStop(on bool)
	// Run simulates until program end, a crash, an assertion, or the
	// cycle limit, and reports the result.
	Run(limitCycles uint64) RunResult
	// Stats returns the runtime statistics counters used by the
	// differential analysis (issued/committed loads, cache hit/miss
	// counters, mispredictions, ...).
	Stats() map[string]uint64
}

// Factory builds a fresh Simulator instance for one run.
type Factory func() Simulator

// CommitProbe observes the committed architectural instruction stream
// of a simulated machine: one call per committed instruction with its
// PC, its architectural commit index (CommittedInstrs-1, continuous
// across checkpoint restores and window seams) and the commit cycle.
// The divergence recorder attaches one per injected run; the commit
// path pays a nil check when none is attached.
type CommitProbe interface {
	Commit(pc, index, cycle uint64)
}

// CommitProbed is the optional capability of simulators that can
// attach a CommitProbe to their commit stage (both detailed cores
// implement it).
type CommitProbed interface {
	SetCommitProbe(p CommitProbe)
}

// Checkpointer is the optional checkpointing capability of a simulator
// (both simulators implement it). The campaign controller uses it the
// way the paper uses simulator checkpoints: the fault-free prefix of the
// run is executed once, captured on a drained machine, and restored into
// every injection run whose faults start beyond the checkpoint.
type Checkpointer interface {
	// RunTo simulates fault-free until the machine drains at or beyond
	// the target cycle; it reports the cycle reached and whether the
	// program finished first.
	RunTo(target uint64) (reached uint64, finished bool, err error)
	// Checkpoint captures the drained machine state.
	Checkpoint() (any, error)
	// Restore loads a checkpoint captured by a machine of the same
	// configuration; the state is copied.
	Restore(state any) error
}

// StructureGeom describes one injectable structure for mask generation.
type StructureGeom struct {
	Name         string
	Entries      int
	BitsPerEntry int
}

// Geometries lists the injectable structures of a simulator.
func Geometries(s Simulator) []StructureGeom {
	var out []StructureGeom
	for name, arr := range s.Structures() {
		out = append(out, StructureGeom{Name: name, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry()})
	}
	return out
}
