package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
)

// LogsRepo is the on-disk "logs repository" of Fig. 1: one JSON-lines
// file per campaign, a golden-run header followed by one record per
// injection. The Parser (and the classify command) consume it offline.
type LogsRepo struct {
	dir string
}

// NewLogsRepo opens (creating if needed) a logs repository rooted at dir.
func NewLogsRepo(dir string) (*LogsRepo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating logs repository: %w", err)
	}
	return &LogsRepo{dir: dir}, nil
}

// Dir returns the repository root.
func (r *LogsRepo) Dir() string { return r.dir }

func (r *LogsRepo) file(key string) string {
	return filepath.Join(r.dir, key+".log.jsonl")
}

// Store writes one campaign's golden header and records. Like the masks
// repository, the write is atomic (temp file + rename) so a crash at
// finalize time cannot leave a truncated log file.
func (r *LogsRepo) Store(key string, res *CampaignResult) error {
	err := fault.AtomicWrite(r.file(key), func(w *bufio.Writer) error {
		enc := json.NewEncoder(w)
		if err := enc.Encode(&res.Golden); err != nil {
			return err
		}
		for i := range res.Records {
			if err := enc.Encode(&res.Records[i]); err != nil {
				return err
			}
		}
		if res.Adaptive != nil {
			if err := enc.Encode(logTrailer{Adaptive: res.Adaptive}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: storing logs for %s: %w", key, err)
	}
	return nil
}

// logTrailer is the optional last line of a campaign log file, carrying
// result fields that are not per-record — today the adaptive-control
// outcome. Fixed-budget campaign files simply lack the line; ReadLogs
// tells the two apart by the presence of the "adaptive" key.
type logTrailer struct {
	Adaptive *AdaptiveInfo `json:"adaptive"`
}

// CreateTrace creates (truncating) the JSONL injection trace file named
// name+".trace.jsonl" in the repository — the opt-in per-injection
// debugging record stream that lives next to the campaign logs.
func (r *LogsRepo) CreateTrace(name string) (*os.File, error) {
	f, err := os.Create(r.TracePath(name))
	if err != nil {
		return nil, fmt.Errorf("core: creating trace for %s: %w", name, err)
	}
	return f, nil
}

// TracePath returns the trace file path for a name.
func (r *LogsRepo) TracePath(name string) string {
	return filepath.Join(r.dir, name+".trace.jsonl")
}

// CreateDivergence creates (truncating) the JSONL divergence-provenance
// file named name+".divergence.jsonl" in the repository.
func (r *LogsRepo) CreateDivergence(name string) (*os.File, error) {
	f, err := os.Create(r.DivergencePath(name))
	if err != nil {
		return nil, fmt.Errorf("core: creating divergence file for %s: %w", name, err)
	}
	return f, nil
}

// DivergencePath returns the divergence-provenance file path for a name.
func (r *LogsRepo) DivergencePath(name string) string {
	return filepath.Join(r.dir, name+".divergence.jsonl")
}

// CreateSpans creates (truncating) the JSONL span-trace file named
// name+".spans.jsonl" in the repository.
func (r *LogsRepo) CreateSpans(name string) (*os.File, error) {
	f, err := os.Create(r.SpansPath(name))
	if err != nil {
		return nil, fmt.Errorf("core: creating spans file for %s: %w", name, err)
	}
	return f, nil
}

// SpansPath returns the span-trace file path for a name.
func (r *LogsRepo) SpansPath(name string) string {
	return filepath.Join(r.dir, name+".spans.jsonl")
}

// JournalPath returns the durable run-journal path for a name — the
// append-only crash-recovery record stream that lives next to the
// campaign logs (the logs file itself is rewritten whole at the end of a
// campaign, so it cannot serve as the recovery record).
func (r *LogsRepo) JournalPath(name string) string {
	return filepath.Join(r.dir, name+".journal.jsonl")
}

// Load reads one campaign's result back.
func (r *LogsRepo) Load(key string) (*CampaignResult, error) {
	f, err := os.Open(r.file(key))
	if err != nil {
		return nil, fmt.Errorf("core: loading logs for %s: %w", key, err)
	}
	defer f.Close()
	return ReadLogs(f)
}

// Campaigns lists stored campaign keys.
func (r *LogsRepo) Campaigns() ([]string, error) {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("core: listing logs repository: %w", err)
	}
	var keys []string
	const suffix = ".log.jsonl"
	for _, e := range ents {
		name := e.Name()
		if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
			keys = append(keys, name[:len(name)-len(suffix)])
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// ReadLogs parses a campaign log stream.
func ReadLogs(rd io.Reader) (*CampaignResult, error) {
	dec := json.NewDecoder(rd)
	var res CampaignResult
	if err := dec.Decode(&res.Golden); err != nil {
		return nil, fmt.Errorf("core: reading golden header: %w", err)
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return &res, nil
			}
			return nil, fmt.Errorf("core: reading log record: %w", err)
		}
		var trailer logTrailer
		if err := json.Unmarshal(raw, &trailer); err == nil && trailer.Adaptive != nil {
			res.Adaptive = trailer.Adaptive
			continue
		}
		var rec LogRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("core: reading log record: %w", err)
		}
		res.Records = append(res.Records, rec)
	}
}
