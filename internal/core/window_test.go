package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
)

// windowSpecs builds the standard two-structure qsort campaign pair used
// by the detail-window tests: register-file faults (settle fast, long
// functional tails) and L1D faults (residency-gated exits).
func windowSpecs(t *testing.T, tool string, f core.Factory, count int, seed int64) []core.CampaignSpec {
	t.Helper()
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	var specs []core.CampaignSpec
	for _, structure := range []string{"rf.int", "l1d.data"} {
		arr := sim.Structures()[structure]
		masks, err := fault.Generate(fault.GeneratorSpec{
			Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
			MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: count, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, core.CampaignSpec{
			Tool: tool, Benchmark: "qsort", Structure: structure,
			Masks: masks, Factory: f, TimeoutFactor: 3,
		})
	}
	return specs
}

func classesPerMask(t *testing.T, results []*core.CampaignResult) [][]core.Class {
	t.Helper()
	out := make([][]core.Class, len(results))
	for i, res := range results {
		out[i] = make([]core.Class, len(res.Records))
		for j, rec := range res.Records {
			out[i][j], _ = (core.Parser{}).Classify(rec)
		}
	}
	return out
}

// TestDetailWindowDifferential is the window-on vs window-off
// differential: the same campaigns, once fully cycle-accurate and once
// under a detail window. Windowing is sampled execution — the
// functional fast-forward reaches the window entry along a slightly
// different trajectory than a warm cycle-accurate machine, so
// borderline masks may individually reclassify (the same acceptance as
// checkpoint restores; per-trajectory soundness is what
// TestWindowVerifyAgrees pins down). What must hold is the statistical
// contract: the vast majority of masks classify identically and the
// per-structure class distributions stay within a small drift — and the
// windowed run must actually use the fast tier (otherwise the test
// proves nothing).
func TestDetailWindowDifferential(t *testing.T) {
	for _, tc := range []struct {
		tool string
		// wantExits: whether any run should hand its tail back to the
		// functional tier. On gem5 dirty write-back lines become
		// capture-safe, so l1d tails exit. On MaFIN every rf.int mask
		// early-masks at the site (physical registers recycle fast — no
		// tail survives) and dual-copy caches pin resident corruption,
		// so zero exits is the correct, optimal outcome there; the fast
		// tier still absorbs the whole pre-fault prefix.
		wantExits bool
	}{{sims.MaFINX86, false}, {sims.GeFINX86, true}} {
		tool := tc.tool
		t.Run(tool, func(t *testing.T) {
			f := qsortFactory(t, tool)
			specs := windowSpecs(t, tool, f, 25, 41)

			run := func(window bool) ([]*core.CampaignResult, telemetry.Snapshot) {
				col := telemetry.New()
				opt := core.MatrixOptions{Workers: 4, Telemetry: col}
				if window {
					opt.DetailWindow = true
					opt.WindowPre = 2000
					opt.WindowPost = 1000
				}
				res, err := core.RunMatrix(specs, opt)
				if err != nil {
					t.Fatal(err)
				}
				return res, col.Snapshot()
			}

			full, fullSnap := run(false)
			windowed, winSnap := run(true)

			if fullSnap.WindowedRuns != 0 || fullSnap.FastSteps != 0 {
				t.Fatalf("window-off run reports window telemetry: %d runs, %d fast steps",
					fullSnap.WindowedRuns, fullSnap.FastSteps)
			}
			if winSnap.WindowedRuns == 0 || winSnap.WindowEntries == 0 {
				t.Fatalf("windowed campaign never used the window: %d windowed, %d entries",
					winSnap.WindowedRuns, winSnap.WindowEntries)
			}
			if tc.wantExits && winSnap.WindowExits == 0 {
				t.Fatalf("no run handed its tail back to the functional tier: %+v", winSnap)
			}
			if winSnap.FastSteps == 0 || winSnap.FastTierShare == 0 {
				t.Fatalf("windowed campaign did no fast-tier work: %+v", winSnap)
			}
			t.Logf("%s: %d/%d runs exited the window, fast-tier share %.1f%%",
				tool, winSnap.WindowExits, winSnap.WindowedRuns, 100*winSnap.FastTierShare)

			fullCls, winCls := classesPerMask(t, full), classesPerMask(t, windowed)
			same, total := 0, 0
			for i := range fullCls {
				drift := map[core.Class]int{}
				for j := range fullCls[i] {
					total++
					if fullCls[i][j] == winCls[i][j] {
						same++
					} else {
						t.Logf("%s mask %d: window-off %s, window-on %s (borderline reclassification)",
							specs[i].Structure, j, fullCls[i][j], winCls[i][j])
					}
					drift[fullCls[i][j]]--
					drift[winCls[i][j]]++
				}
				for cls, d := range drift {
					if d < 0 {
						d = -d
					}
					if max := len(fullCls[i]) / 5; d > max {
						t.Errorf("%s: class %s count drifts by %d under windowing (tolerance %d of %d masks)",
							specs[i].Structure, cls, d, max, len(fullCls[i]))
					}
				}
			}
			if same*10 < total*7 {
				t.Errorf("only %d/%d masks classify identically under windowing (want >= 70%%)", same, total)
			}
			t.Logf("%s: %d/%d masks classify identically", tool, same, total)
		})
	}
}

// TestWindowExitsWithoutEarlyStop pins down the MaFIN window exit path.
// With early-stop on, every qsort rf.int mask is proven masked at the
// injection site, so no tail survives to be handed back (see
// TestDetailWindowDifferential). With early-stop disabled the runs keep
// going, the applied faults are architecturally capture-safe in the
// drained register file, and the tails must run on the functional tier
// — with the class verdicts still agreeing with the full cycle-accurate
// runs.
func TestWindowExitsWithoutEarlyStop(t *testing.T) {
	f := qsortFactory(t, sims.MaFINX86)
	specs := windowSpecs(t, sims.MaFINX86, f, 15, 41)[:1] // rf.int only
	specs[0].DisableEarlyStop = true

	run := func(window bool) (*core.CampaignResult, telemetry.Snapshot) {
		col := telemetry.New()
		opt := core.MatrixOptions{Workers: 4, Telemetry: col}
		if window {
			opt.DetailWindow = true
			opt.WindowPre = 2000
			opt.WindowPost = 1000
		}
		res, err := core.RunMatrix(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res[0], col.Snapshot()
	}
	full, _ := run(false)
	windowed, snap := run(true)

	if snap.WindowExits == 0 || snap.FastSteps == 0 {
		t.Fatalf("no functional tails ran: %+v", snap)
	}
	t.Logf("mafin-x86 no-early-stop: %d/%d exits, fast-tier share %.1f%%",
		snap.WindowExits, snap.WindowedRuns, 100*snap.FastTierShare)
	same := 0
	for j := range full.Records {
		fc, _ := (core.Parser{}).Classify(full.Records[j])
		wc, _ := (core.Parser{}).Classify(windowed.Records[j])
		if fc == wc {
			same++
		} else {
			t.Logf("mask %d: window-off %s, window-on %s", j, fc, wc)
		}
	}
	if same*10 < len(full.Records)*7 {
		t.Errorf("only %d/%d masks classify identically (want >= 70%%)", same, len(full.Records))
	}
}

// TestWindowVerifyAgrees runs the differential guard itself: a windowed
// campaign with -window-verify re-simulates a sample fully
// cycle-accurately from the same window entries, and the matrix fails on
// any outcome-class disagreement. Zero disagreements is the acceptance
// bar of the window-exit proof.
func TestWindowVerifyAgrees(t *testing.T) {
	f := qsortFactory(t, sims.GeFINARM)
	specs := windowSpecs(t, sims.GeFINARM, f, 20, 23)
	col := telemetry.New()
	if _, err := core.RunMatrix(specs, core.MatrixOptions{
		Workers: 4, Telemetry: col,
		DetailWindow: true, WindowPre: 2000, WindowPost: 1000, WindowVerify: 6,
	}); err != nil {
		t.Fatalf("window-verify: %v", err)
	}
	if snap := col.Snapshot(); snap.WindowExits == 0 {
		t.Fatalf("no run exited its window — the guard verified nothing: %+v", snap)
	}
}

// TestWindowComposesWithPruneLadderResume is the composition
// differential: detail-window execution stacked with liveness pruning
// (plus its verify guard), a checkpoint ladder, and a journal resumed
// mid-campaign must reproduce the uninterrupted windowed run's records
// and injection trace byte-identically.
func TestWindowComposesWithPruneLadderResume(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	buildSpecs := func() []core.CampaignSpec {
		specs := windowSpecs(t, "gefin-x86", f, 25, 17)
		for i := range specs {
			specs[i].UseCheckpoint = true
		}
		return specs
	}
	run := func(path string, resume bool) ([]*core.CampaignResult, []byte, telemetry.Snapshot) {
		j, err := fault.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		col := telemetry.New()
		trace := telemetry.NewTraceSink()
		col.AddSink(trace)
		res, err := core.RunMatrix(buildSpecs(), core.MatrixOptions{
			Workers: 4, Telemetry: col, Journal: j, Resume: resume,
			Prune: true, PruneVerify: 2, CheckpointLadder: 3,
			DetailWindow: true, WindowPre: 2000, WindowPost: 1000, WindowVerify: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Flush(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes(), col.Snapshot()
	}

	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.journal.jsonl")
	resPath := filepath.Join(dir, "resumed.journal.jsonl")
	ref, refTrace, refSnap := run(refPath, false)
	if refSnap.WindowExits == 0 {
		t.Fatalf("composed campaign never exited a window: %+v", refSnap)
	}

	data, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(resPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	total := strings.Count(string(data), "\n")
	if total < 2 {
		t.Fatalf("reference journal has only %d lines", total)
	}
	truncateLines(t, resPath, total/2)

	got, gotTrace, _ := run(resPath, true)
	for s := range ref {
		if !reflect.DeepEqual(got[s].Records, ref[s].Records) {
			t.Fatalf("campaign %d: resumed windowed records differ from reference", s)
		}
	}
	if !bytes.Equal(gotTrace, refTrace) {
		t.Fatalf("resumed windowed trace differs from the uninterrupted trace")
	}
}
