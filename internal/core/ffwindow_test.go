package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/asm"
	"repro/internal/handoff"
	"repro/internal/interp"
	"repro/internal/workload"
)

// captureWindower is a fake window-capable simulator that just records
// the architectural state windowEntry seeds it with.
type captureWindower struct {
	img *asm.Image
	st  *handoff.State
}

func (c *captureWindower) Image() *asm.Image          { return c.img }
func (c *captureWindower) SeedArch(st *handoff.State) { c.st = st }
func (c *captureWindower) RunWindow(limitCycles, postMargin uint64) (RunResult, bool) {
	return RunResult{}, false
}
func (c *captureWindower) CaptureArch() (*handoff.State, error) { return nil, nil }

// TestWindowEntryRungStateIdentity is the determinism proof of the
// functional fast-forward rung ladder, on every workload and both ISAs:
// windowEntry seeded through a rung must hand the simulator an
// architectural state byte-identical (handoff.Equal) to the one a
// from-boot fast-forward captures at the same step, and must report the
// same fast-forwarded step count. Run twice per entry so both the
// rung-build and the rung-hit paths are compared.
func TestWindowEntryRungStateIdentity(t *testing.T) {
	for _, w := range workload.All() {
		for _, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
			w, tgt := w, tgt
			t.Run(w.Name+"/"+tgt.String(), func(t *testing.T) {
				t.Parallel()
				img, err := w.Image(tgt)
				if err != nil {
					t.Fatal(err)
				}
				total := interp.Run(img, uint64(1)<<62).Steps
				if total < 16 {
					t.Fatalf("workload too short to window: %d steps", total)
				}
				// A golden reference with Cycles == Committed makes the
				// entry cycle equal the entry instruction, so the test
				// pins exact step points.
				golden := GoldenInfo{Cycles: total, Committed: total}
				var hits, builds atomic.Uint64
				ladder := newFFLadder(total/8, false, &hits, &builds)

				for _, entry := range []uint64{total / 3, total / 2, 3 * total / 4} {
					for pass := 0; pass < 2; pass++ {
						boot := &captureWindower{img: img}
						seeded, steps := windowEntry(boot, golden, entry, nil, false)
						if !seeded {
							t.Fatalf("entry %d: from-boot fast-forward did not seed", entry)
						}
						rung := &captureWindower{img: img}
						rseeded, rsteps := windowEntry(rung, golden, entry, ladder, false)
						if !rseeded {
							t.Fatalf("entry %d: rung fast-forward did not seed", entry)
						}
						if steps != rsteps {
							t.Fatalf("entry %d: fast-forward steps %d from boot, %d via rung", entry, steps, rsteps)
						}
						if err := handoff.Equal(boot.st, rung.st); err != nil {
							t.Fatalf("entry %d pass %d: rung-seeded state differs: %v", entry, pass, err)
						}
						if boot.st.Cycle != rung.st.Cycle {
							t.Fatalf("entry %d: seeded cycle %d from boot, %d via rung", entry, boot.st.Cycle, rung.st.Cycle)
						}
					}
				}
				if builds.Load() == 0 {
					t.Fatal("ladder built no rungs — the rung path was never exercised")
				}
				if hits.Load() == 0 {
					t.Fatal("ladder served no rung hits — the memoized path was never exercised")
				}
			})
		}
	}
}
