package core_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

func qsortFactory(t *testing.T, tool string) core.Factory {
	t.Helper()
	w, err := workload.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	f, err := sims.Factory(tool, w)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGolden(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cycles == 0 || g.Committed == 0 || g.OutputLen != 8192 || g.OutputHash == "" {
		t.Fatalf("golden: %+v", g)
	}
	if g.Tool != "GeFIN-x86" {
		t.Fatalf("tool %q", g.Tool)
	}
	if g.Stats["committed_loads"] == 0 {
		t.Fatal("missing stats")
	}
}

func TestRunCampaignAndClassify(t *testing.T) {
	f := qsortFactory(t, sims.MaFINX86)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	geom := sim.Structures()["rf.int"]
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: "rf.int", Entries: geom.Entries(), BitsPerEntry: geom.BitsPerEntry(),
		MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 30, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunCampaign(core.CampaignSpec{
		Tool: "MaFIN-x86", Benchmark: "qsort", Structure: "rf.int",
		Masks: masks, Factory: f, TimeoutFactor: 3, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 30 {
		t.Fatalf("records %d", len(res.Records))
	}
	for i, r := range res.Records {
		if r.MaskID != i {
			t.Fatalf("record %d has mask id %d (order lost)", i, r.MaskID)
		}
		if len(r.Sites) != 1 || r.Sites[0].Structure != "rf.int" {
			t.Fatalf("record %d sites: %+v", i, r.Sites)
		}
	}
	b := core.Parser{}.ParseAll(res.Records)
	if b.Total != 30 {
		t.Fatalf("breakdown total %d", b.Total)
	}
	if b.Counts[core.ClassMasked] == 0 {
		t.Fatalf("register file campaign with no masked outcomes: %+v", b.Counts)
	}
	sum := 0
	for _, c := range core.Classes {
		sum += b.Counts[c]
	}
	if sum != b.Total {
		t.Fatalf("class counts %v don't sum to %d", b.Counts, b.Total)
	}
	t.Logf("qsort/rf.int on MaFIN: %s", b)
}

func TestCampaignDeterministic(t *testing.T) {
	f := qsortFactory(t, sims.GeFINARM)
	g, err := core.Golden(f)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	geom := sim.Structures()["lsq.data"]
	masks, _ := fault.Generate(fault.GeneratorSpec{
		Structure: "lsq.data", Entries: geom.Entries(), BitsPerEntry: geom.BitsPerEntry(),
		MaxCycle: g.Cycles, Model: fault.ModelTransient, Count: 10, Seed: 5,
	})
	run := func() []core.LogRecord {
		res, err := core.RunCampaign(core.CampaignSpec{
			Benchmark: "qsort", Structure: "lsq.data", Masks: masks, Factory: f, Workers: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Status != b[i].Status || a[i].OutputHash != b[i].OutputHash {
			t.Fatalf("run %d differs across repetitions: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunOneUnknownStructure(t *testing.T) {
	f := qsortFactory(t, sims.GeFINX86)
	g, _ := core.Golden(f)
	m := fault.Mask{ID: 0, Sites: []fault.Site{{Structure: "nope", Model: fault.ModelTransient, Cycle: 1}}}
	if _, err := core.RunOne(f, m, g, 3, true); err == nil {
		t.Fatal("unknown structure accepted")
	}
}

func TestParserClassification(t *testing.T) {
	p := core.Parser{}
	cases := []struct {
		rec core.LogRecord
		cls core.Class
		det core.Detail
	}{
		{core.LogRecord{Status: "early-masked"}, core.ClassMasked, core.DetailNone},
		{core.LogRecord{Status: "pruned"}, core.ClassMasked, core.DetailNone},
		{core.LogRecord{Status: "completed", OutputMatch: true}, core.ClassMasked, core.DetailNone},
		{core.LogRecord{Status: "completed"}, core.ClassSDC, core.DetailNone},
		{core.LogRecord{Status: "completed", OutputMatch: true, EventKinds: []string{"alignment"}}, core.ClassDUE, core.DetailFalseDUE},
		{core.LogRecord{Status: "completed", EventKinds: []string{"syscall-error"}}, core.ClassDUE, core.DetailTrueDUE},
		{core.LogRecord{Status: "cycle-limit", CommitStalled: true}, core.ClassTimeout, core.DetailDeadlock},
		{core.LogRecord{Status: "cycle-limit"}, core.ClassTimeout, core.DetailLivelock},
		{core.LogRecord{Status: "process-crash"}, core.ClassCrash, core.DetailProcCrash},
		{core.LogRecord{Status: "system-crash"}, core.ClassCrash, core.DetailSysCrash},
		{core.LogRecord{Status: "simulator-crash"}, core.ClassCrash, core.DetailSimCrash},
		{core.LogRecord{Status: "assert"}, core.ClassAssert, core.DetailNone},
	}
	for i, c := range cases {
		cls, det := p.Classify(c.rec)
		if cls != c.cls || det != c.det {
			t.Errorf("case %d: got %v/%v, want %v/%v", i, cls, det, c.cls, c.det)
		}
	}
	// Reconfiguration: group simulator crashes with asserts.
	p2 := core.Parser{GroupSimCrashWithAssert: true}
	if cls, _ := p2.Classify(core.LogRecord{Status: "simulator-crash"}); cls != core.ClassAssert {
		t.Error("regrouping option ignored")
	}
	// Coarse-grain configuration.
	p3 := core.Parser{CoarseMaskedOnly: true}
	if cls, _ := p3.Classify(core.LogRecord{Status: "process-crash"}); cls != core.NonMasked {
		t.Error("coarse option ignored")
	}
	if cls, _ := p3.Classify(core.LogRecord{Status: "early-masked"}); cls != core.ClassMasked {
		t.Error("coarse option broke masked")
	}
}

func TestBreakdownMath(t *testing.T) {
	recs := []core.LogRecord{
		{Status: "completed", OutputMatch: true},
		{Status: "completed", OutputMatch: true},
		{Status: "completed"},
		{Status: "process-crash"},
	}
	b := core.Parser{}.ParseAll(recs)
	if b.Pct(core.ClassMasked) != 50 || b.Pct(core.ClassSDC) != 25 || b.Pct(core.ClassCrash) != 25 {
		t.Fatalf("percentages: %+v", b.Counts)
	}
	if b.Vulnerability() != 50 {
		t.Fatalf("vulnerability %v", b.Vulnerability())
	}
	if !strings.Contains(b.String(), "vuln=50.00%") {
		t.Fatalf("string: %s", b)
	}
}

func TestLogsRepoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	repo, err := core.NewLogsRepo(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.CampaignResult{
		Golden: core.GoldenInfo{Tool: "T", Benchmark: "b", Structure: "s",
			Cycles: 100, OutputHash: "abcd", Stats: map[string]uint64{"x": 1}},
		Records: []core.LogRecord{
			{MaskID: 0, Status: "completed", OutputMatch: true},
			{MaskID: 1, Status: "assert", AssertMsg: "boom"},
		},
	}
	if err := repo.Store("T__b__s", res); err != nil {
		t.Fatal(err)
	}
	back, err := repo.Load("T__b__s")
	if err != nil {
		t.Fatal(err)
	}
	if back.Golden.Tool != "T" || back.Golden.Stats["x"] != 1 {
		t.Fatalf("golden: %+v", back.Golden)
	}
	if len(back.Records) != 2 || back.Records[1].AssertMsg != "boom" {
		t.Fatalf("records: %+v", back.Records)
	}
	keys, err := repo.Campaigns()
	if err != nil || len(keys) != 1 || keys[0] != "T__b__s" {
		t.Fatalf("campaigns: %v %v", keys, err)
	}
	if _, err := repo.Load("missing"); err == nil {
		t.Fatal("missing load succeeded")
	}
	if back.Adaptive != nil {
		t.Fatalf("fixed-budget logs grew an adaptive trailer: %+v", back.Adaptive)
	}
}

func TestLogsRepoRoundTripAdaptiveTrailer(t *testing.T) {
	repo, err := core.NewLogsRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := &core.CampaignResult{
		Golden: core.GoldenInfo{Tool: "T", Benchmark: "b", Structure: "s", Cycles: 100},
		Records: []core.LogRecord{
			{MaskID: 0, Status: "completed", OutputMatch: true},
			{MaskID: 1, Status: core.RunStopped.String()},
		},
		Adaptive: &core.AdaptiveInfo{
			StoppedEarly: true, SimulatedRuns: 1, PlannedRuns: 2,
			EffectiveMargin: 0.1049, Confidence: 0.99,
		},
	}
	if err := repo.Store("T__b__s", res); err != nil {
		t.Fatal(err)
	}
	back, err := repo.Load("T__b__s")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 2 {
		t.Fatalf("trailer leaked into the records: %+v", back.Records)
	}
	if !reflect.DeepEqual(back.Adaptive, res.Adaptive) {
		t.Fatalf("adaptive trailer round-trip: got %+v want %+v", back.Adaptive, res.Adaptive)
	}
}

func TestAssertHelper(t *testing.T) {
	core.Assert(true, "fine")
	defer func() {
		r := recover()
		ae, ok := r.(core.AssertError)
		if !ok || ae.Msg != "bad" || ae.Error() != "assert: bad" {
			t.Fatalf("recover: %v", r)
		}
	}()
	core.Assert(false, "bad")
}

func TestGeometries(t *testing.T) {
	f := qsortFactory(t, sims.MaFINX86)
	gs := core.Geometries(f())
	found := false
	for _, g := range gs {
		if g.Name == "l1d.data" && g.Entries == 512 && g.BitsPerEntry == 512 {
			found = true
		}
	}
	if !found {
		t.Fatalf("l1d.data geometry missing: %+v", gs)
	}
}
