package core

import (
	"repro/internal/adaptive"
	"repro/internal/fault"
)

// cellStopper drives one campaign cell's sequential stopping rule inside
// the matrix scheduler. The estimator itself is order-blind; what makes
// early stopping deterministic across worker counts, resumes, and
// distributed shards is the contiguous-prefix discipline enforced here:
// completions are buffered per position in the cell's fixed simulation
// order (plan-simulated masks in mask-ID order) and fed to the estimator
// only as the contiguous done-prefix extends, with the decision evaluated
// exactly when the prefix reaches a boundary (every cadence completions).
// A resume journal with holes — positions that were in flight at the
// kill — therefore re-derives the identical stop point: the estimator
// sees exactly the multiset of classes in positions [0, boundary) at
// each evaluation, never a raced superset.
//
// The stopper is not safe for concurrent use; the scheduler serializes
// noteCompleted under its dispatch mutex.
type cellStopper struct {
	est      *adaptive.Estimator
	simOrder []int       // mask IDs of plan-simulated masks, ascending
	posOf    map[int]int // mask ID -> position in simOrder
	cadence  int

	done    []bool   // per-position completion
	classOf []string // per-position outcome class, valid where done
	prefix  int      // positions [0, prefix) fed to the estimator

	boundary    int     // next evaluation point (run count)
	stoppedAt   int     // run count at decision, -1 while undecided
	cutoff      int     // mask ID of the last counted run, valid when stopped
	finalMargin float64 // achieved margin at the decision, valid when stopped
}

// newCellStopper builds the stopper of one cell over its simulation
// order. Returns nil when there is nothing to decide (no simulated
// masks).
func newCellStopper(est *adaptive.Estimator, simOrder []int, cadence int) *cellStopper {
	if est == nil || len(simOrder) == 0 {
		return nil
	}
	if cadence < 1 {
		cadence = adaptive.DefaultCheckEvery
	}
	posOf := make(map[int]int, len(simOrder))
	for i, id := range simOrder {
		posOf[id] = i
	}
	s := &cellStopper{
		est:       est,
		simOrder:  simOrder,
		posOf:     posOf,
		cadence:   cadence,
		done:      make([]bool, len(simOrder)),
		classOf:   make([]string, len(simOrder)),
		boundary:  cadence,
		stoppedAt: -1,
	}
	if s.boundary > len(simOrder) {
		s.boundary = len(simOrder)
	}
	return s
}

// stopped reports whether the cell's rule has fired; masks with ID above
// cutoff are then settled as stopped-early provenance, not simulated.
func (s *cellStopper) stopped() bool { return s != nil && s.stoppedAt >= 0 }

// dispatchable reports whether the mask may be handed to a worker:
// its position must sit below the current evaluation boundary (runs past
// the boundary would be wasted if the boundary decides) and the cell
// must not have stopped.
func (s *cellStopper) dispatchable(maskID int) bool {
	if s == nil {
		return true
	}
	if s.stoppedAt >= 0 {
		return false
	}
	pos, ok := s.posOf[maskID]
	return !ok || pos < s.boundary
}

// cancelled reports whether the mask was settled by the stop decision.
func (s *cellStopper) cancelled(maskID int) bool {
	return s.stopped() && maskID > s.cutoff
}

// noteCompleted records the outcome class of the mask at one simulation
// position and extends the estimator's contiguous prefix, evaluating the
// stopping rule at each boundary the prefix crosses. A decision at the
// final boundary (the whole population) is not a stop — there is nothing
// left to cancel — so stoppedAt stays -1 and the cell reads as run to
// budget with a known achieved margin.
func (s *cellStopper) noteCompleted(maskID int, class string) {
	if s == nil || s.stoppedAt >= 0 {
		return
	}
	pos, ok := s.posOf[maskID]
	if !ok || s.done[pos] {
		return
	}
	s.done[pos] = true
	s.classOf[pos] = class
	for s.prefix < len(s.done) && s.done[s.prefix] {
		s.est.Add(s.classOf[s.prefix])
		s.prefix++
		if s.prefix == s.boundary {
			if s.est.Decided() && s.boundary < len(s.simOrder) {
				s.stoppedAt = s.boundary
				s.cutoff = s.simOrder[s.boundary-1]
				s.finalMargin = s.est.EffectiveMargin()
				return
			}
			s.boundary += s.cadence
			if s.boundary > len(s.simOrder) {
				s.boundary = len(s.simOrder)
			}
		}
	}
}

// stoppedRecord synthesizes the log record of a run cancelled by the
// stopping rule: provenance only — no outcome, no cycles, no output
// hash. The mask's coordinates and sampling weight are preserved so
// resume, smokecheck, and the report reweighting see the full mask
// population.
func stoppedRecord(m fault.Mask) LogRecord {
	return LogRecord{
		MaskID: m.ID,
		Sites:  m.Sites,
		Status: RunStopped.String(),
		Weight: m.Weight,
	}
}

// ClassStrings converts the parser's class universe for the sequential
// estimator — shared by the matrix scheduler and the distributed
// coordinator so both feed identically-configured stopping rules.
func ClassStrings() []string {
	out := make([]string, len(Classes))
	for i, c := range Classes {
		out[i] = string(c)
	}
	return out
}
