package core

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/fault"
)

// PanicError is the per-run error a contained worker panic is converted
// into: the scheduler's recover boundary catches any non-AssertError
// panic escaping a run (simulator internals, mask arming, checkpoint
// restore) and fails that one run deterministically instead of aborting
// the whole campaign process.
type PanicError struct {
	MaskID int
	Value  any
	Stack  []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: mask %d: contained panic: %v", e.MaskID, e.Value)
}

// runContained is runInjection behind a recover boundary. An escaped
// AssertError — a simulator-internal assertion the simulator's own Run
// recovery did not see, e.g. one firing during mask arming — is
// classified as a RunAssert record, keeping the campaign alive; any
// other panic becomes a PanicError the scheduler surfaces through its
// deterministic first-error ordering.
func runContained(f Factory, rungs []LadderRung, m fault.Mask, golden GoldenInfo, timeoutFactor uint64, earlyStop bool, win *windowConfig, ff *ffLadder, stats *runStats) (rec LogRecord, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ae, ok := r.(AssertError); ok {
			rec = LogRecord{
				MaskID:     m.ID,
				Sites:      m.Sites,
				Status:     RunAssert.String(),
				OutputHash: hashOutput(nil),
				AssertMsg:  ae.Msg,
			}
			err = nil
			return
		}
		rec = LogRecord{}
		err = &PanicError{MaskID: m.ID, Value: r, Stack: debug.Stack()}
	}()
	return runInjection(f, rungs, m, golden, timeoutFactor, earlyStop, win, ff, stats)
}

// wallTimeoutRecord is the record of a run that exceeded the wall-clock
// backstop: the simulator never reported back, so the run is classified
// like a commit-stalled cycle-limit run — Timeout with the deadlock
// detail — which is what a wedged machine is.
func wallTimeoutRecord(m fault.Mask) LogRecord {
	return LogRecord{
		MaskID:        m.ID,
		Sites:         m.Sites,
		Status:        RunCycleLimit.String(),
		OutputHash:    hashOutput(nil),
		CommitStalled: true,
	}
}

// runGuarded is the scheduler's per-run execution boundary: containment
// always, plus — when wallLimit is positive — a wall-clock deadline
// backstopping the cycle-budget timeout. A run that overruns the
// deadline is classified Timeout and its goroutine abandoned (it keeps
// its own private runStats so the worker slot can move on without a data
// race); the cycle budget bounds simulated time, the wall limit bounds
// host time when a simulator bug stops cycles from advancing at all.
func runGuarded(f Factory, rungs []LadderRung, m fault.Mask, golden GoldenInfo, timeoutFactor uint64, earlyStop bool, win *windowConfig, ff *ffLadder, wallLimit time.Duration, stats *runStats) (LogRecord, error) {
	if wallLimit <= 0 {
		return runContained(f, rungs, m, golden, timeoutFactor, earlyStop, win, ff, stats)
	}
	type result struct {
		rec   LogRecord
		err   error
		stats *runStats
	}
	ch := make(chan result, 1)
	go func() {
		var inner *runStats
		if stats != nil {
			inner = new(runStats)
			// The commit probe rides into the contained run; the normal
			// path's copy-back returns it unchanged.
			inner.div = stats.div
		}
		rec, err := runContained(f, rungs, m, golden, timeoutFactor, earlyStop, win, ff, inner)
		ch <- result{rec, err, inner}
	}()
	timer := time.NewTimer(wallLimit)
	defer timer.Stop()
	select {
	case res := <-ch:
		if stats != nil && res.stats != nil {
			*stats = *res.stats
		}
		return res.rec, res.err
	case <-timer.C:
		if stats != nil {
			// The abandoned goroutine keeps folding commits into the
			// probe; drop our reference so the caller never reads racing
			// state. The wall-timeout record carries no divergence
			// verdict — host-timing verdicts are nondeterministic anyway.
			stats.div = nil
		}
		return wallTimeoutRecord(m), nil
	}
}

// journalEntry builds the durable-journal line of one completed run:
// the raw record plus the trace provenance a resumed campaign needs to
// reproduce its JSONL injection trace byte-identically.
func journalEntry(key string, rec LogRecord, stats *runStats) (fault.JournalEntry, error) {
	raw, err := json.Marshal(&rec)
	if err != nil {
		return fault.JournalEntry{}, fmt.Errorf("core: journaling %s mask %d: %w", key, rec.MaskID, err)
	}
	e := fault.JournalEntry{Campaign: key, MaskID: rec.MaskID, Record: raw}
	if stats != nil {
		e.Observed, e.FirstObsCycle = stats.observed, stats.firstObs
		if rec.Status == RunEarlyMasked.String() {
			e.EarlyStop = stats.earlyStopReason()
		}
	}
	return e, nil
}
