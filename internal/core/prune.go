package core

import (
	"fmt"
	"sort"

	"repro/internal/bitarray"
	"repro/internal/fault"
	"repro/internal/prune"
)

// CycleSource is implemented by simulators whose current cycle can be
// sampled while they run; the golden-run liveness profiler needs it to
// stamp array accesses. Both simulators implement it. A simulator
// without it simply opts out of pruning — every mask is simulated.
type CycleSource interface {
	CurrentCycle() uint64
}

// LadderRung is one restore point of a checkpoint ladder: a drained
// machine state and the cycle it was captured at. Rungs are ordered by
// cycle; an injection run restores from the highest rung strictly below
// its earliest fault cycle.
type LadderRung struct {
	State any
	Cycle uint64
}

// selectRung returns the index of the highest rung whose cycle precedes
// minSite (the run can only restore state captured before its first
// fault applies), or -1 when the run must boot from scratch. The
// strict inequality matches the single-checkpoint rule: a fault starting
// exactly at the capture cycle boots from scratch.
func selectRung(rungs []LadderRung, minSite uint64) int {
	best := -1
	for i, r := range rungs {
		if r.Cycle >= minSite {
			break
		}
		best = i
	}
	return best
}

// makeLadder captures k evenly spaced drained checkpoints along the
// fault-free run by chaining RunTo on a single machine: rung i targets
// (i+1)/(k+1) of the golden cycle count. Dirty-page memory snapshots
// make every capture after the first a delta of the pages touched since
// the previous rung. Rungs the drain overshoots (or the program end
// preempts) are dropped; a nil ladder falls back to boot-only runs.
func makeLadder(f Factory, golden GoldenInfo, k int) []LadderRung {
	base, ok := f().(Checkpointer)
	if !ok || k < 1 {
		return nil
	}
	var rungs []LadderRung
	var last uint64
	for i := 0; i < k; i++ {
		target := golden.Cycles * uint64(i+1) / uint64(k+1) //nolint:gosec // i, k are small positives
		if target == 0 || target <= last {
			continue
		}
		reached, finished, err := base.RunTo(target)
		if err != nil || finished {
			break
		}
		if reached <= last {
			continue
		}
		st, err := base.Checkpoint()
		if err != nil {
			break
		}
		rungs = append(rungs, LadderRung{State: st, Cycle: reached})
		last = reached
	}
	return rungs
}

// profileReplay runs one fault-free replay of a row — from boot when
// rung is nil, else restored from the rung — with liveness profiling on
// the named structures, and returns the per-structure profiles. It
// returns (nil, nil) when the simulator cannot be profiled (no
// CycleSource), which disables pruning rather than failing the
// campaign. The replay must finish like the golden run with the golden
// output: pruning verdicts derive from this trajectory, so a divergent
// replay is an error, not a degradation.
func profileReplay(f Factory, rung *LadderRung, structures []string, golden GoldenInfo) (prune.Profiles, error) {
	sim := f()
	cs, ok := sim.(CycleSource)
	if !ok {
		return nil, nil
	}
	if rung != nil {
		ck, ok := sim.(Checkpointer)
		if !ok {
			return nil, nil
		}
		if err := ck.Restore(rung.State); err != nil {
			return nil, fmt.Errorf("core: profiled replay restore: %w", err)
		}
	}
	arrs := sim.Structures()
	var profiled []*bitarray.Array
	for _, name := range structures {
		if arr, ok := arrs[name]; ok {
			arr.StartProfile(cs.CurrentCycle)
			profiled = append(profiled, arr)
		}
	}
	res := sim.Run(1 << 62)
	if res.Status != RunCompleted {
		return nil, fmt.Errorf("core: profiled replay did not complete: %v (%s)", res.Status, res.AssertMsg)
	}
	if len(res.Events) != 0 {
		return nil, fmt.Errorf("core: profiled replay recorded %d kernel events", len(res.Events))
	}
	if h := hashOutput(res.Output); h != golden.OutputHash {
		return nil, fmt.Errorf("core: profiled replay output %s differs from golden %s", h, golden.OutputHash)
	}
	out := make(prune.Profiles, len(profiled))
	for _, arr := range profiled {
		p := arr.StopProfile()
		out[p.Name] = p
	}
	return out, nil
}

// maskStructures returns the sorted union of structure names targeted by
// any site of any mask of the specs — the arrays a row's profiled
// replays need to record.
func maskStructures(specs []CampaignSpec) []string {
	set := make(map[string]bool)
	for _, spec := range specs {
		for _, m := range spec.Masks {
			for _, s := range m.Sites {
				set[s.Structure] = true
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildRowProfiles runs the profiled replays of one row: index 0 is the
// boot trajectory, index r+1 the replay restored from rung r. A nil
// result (no error) means the simulator cannot be profiled.
func buildRowProfiles(f Factory, rungs []LadderRung, structures []string, golden GoldenInfo) ([]prune.Profiles, error) {
	boot, err := profileReplay(f, nil, structures, golden)
	if err != nil {
		return nil, err
	}
	if boot == nil {
		return nil, nil
	}
	profiles := make([]prune.Profiles, 1+len(rungs))
	profiles[0] = boot
	for i := range rungs {
		p, err := profileReplay(f, &rungs[i], structures, golden)
		if err != nil {
			return nil, err
		}
		profiles[1+i] = p
	}
	return profiles, nil
}

// planMasks builds the pruning plan of one spec against its row's
// profiles: each mask is classified against the profile of the
// trajectory its run would actually follow (boot, or its selected
// ladder rung), which keeps plan-time verdicts and runtime restores
// consistent.
func planMasks(spec *CampaignSpec, rungs []LadderRung, profiles []prune.Profiles) (*prune.Plan, []int) {
	if profiles == nil {
		return nil, nil
	}
	rungOf := make([]int, len(spec.Masks))
	for m, mask := range spec.Masks {
		// Empty masks boot from scratch (see runInjection); keeping the
		// plan-time rung in step with the runtime restore decision is
		// what makes pruning verdicts trajectory-sound.
		if spec.UseCheckpoint && len(mask.Sites) > 0 {
			rungOf[m] = selectRung(rungs, minSiteCycle(mask))
		} else {
			rungOf[m] = -1
		}
	}
	return prune.BuildPlan(spec.Masks, profiles, rungOf), rungOf
}

// prunedRecord synthesizes the log record of a dead-pruned mask: the
// identical-prefix argument proves the run would complete with the
// golden output, so the record reports the golden hash, a match, and
// the distinguished "pruned" status (classified Masked). Cycles stay
// zero — nothing was simulated.
func prunedRecord(m fault.Mask, golden GoldenInfo) LogRecord {
	return LogRecord{
		MaskID:      m.ID,
		Sites:       m.Sites,
		Status:      RunPruned.String(),
		OutputHash:  golden.OutputHash,
		OutputMatch: true,
		Weight:      m.Weight,
	}
}

// sampleVerify picks up to n pruned mask indices of a plan, evenly
// spaced over the pruned masks in mask order — a deterministic sample
// for the -prune-verify differential mode.
func sampleVerify(plan *prune.Plan, n int) []int {
	if plan == nil || n <= 0 {
		return nil
	}
	var pruned []int
	for i, d := range plan.Decisions {
		if d.Action != prune.Simulate {
			pruned = append(pruned, i)
		}
	}
	if len(pruned) <= n {
		return pruned
	}
	out := make([]int, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, pruned[j*len(pruned)/n])
	}
	return out
}
