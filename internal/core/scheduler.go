package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/divergence"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/prune"
	"repro/internal/telemetry"
)

// GoldenCache memoizes fault-free reference runs per {tool, benchmark}.
// A figure matrix shares one golden run across every structure campaign
// of a row (the pre-scheduler path simulated it 2× per structure: once
// in the report layer and once in the campaign controller), and the
// finished machine is kept so LiveOnly entry probing and mask-geometry
// lookups reuse it instead of simulating a twin. Safe for concurrent
// use.
type GoldenCache struct {
	mu      sync.Mutex
	entries map[goldenKey]*goldenEntry
	runs    int
	calls   int

	// ffHits and ffBuilds aggregate the functional fast-forward rung
	// ladder activity across the cache's rows — the ff_rung telemetry
	// gauges. Atomics: windowEntry touches them on the run path.
	ffHits, ffBuilds atomic.Uint64
}

type goldenKey struct{ tool, bench string }

type goldenEntry struct {
	once   sync.Once
	golden GoldenInfo
	sim    Simulator
	err    error

	mu   sync.Mutex
	live map[string][]int // structure → entries live at end of golden run

	// ladderMu guards the memoized checkpoint ladder separately from mu:
	// capturing a ladder simulates most of a golden run, and geometry or
	// live-entry lookups must not block behind it.
	ladderMu sync.Mutex
	ladderK  int
	ladder   []LadderRung

	// profMu guards the memoized liveness profiles (see Profiles), keyed
	// by rung placement and profiled-structure set. Separate from mu for
	// the same reason as ladderMu: a profiled replay simulates a whole
	// golden run.
	profMu   sync.Mutex
	profiles map[string][]prune.Profiles

	// sigMu guards the memoized commit-stream signature (see
	// CommitSignature); building one simulates a whole golden run.
	sigMu sync.Mutex
	sig   *divergence.Signature

	// ffMu guards the memoized functional fast-forward rung ladder (see
	// FFLadder); its rungs fill lazily on the run path under the
	// ladder's own lock.
	ffMu      sync.Mutex
	ffQuantum uint64
	ff        *ffLadder
}

// NewGoldenCache returns an empty memoizer.
func NewGoldenCache() *GoldenCache {
	return &GoldenCache{entries: make(map[goldenKey]*goldenEntry)}
}

func (c *GoldenCache) entry(tool, bench string) *goldenEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[goldenKey{tool, bench}]
	if !ok {
		e = &goldenEntry{}
		c.entries[goldenKey{tool, bench}] = e
	}
	return e
}

// Golden returns the memoized fault-free reference of the {tool, bench}
// row, simulating it on f's machine only on the first call. The returned
// GoldenInfo carries Benchmark but no Structure; campaign code copies it
// and fills the cell-specific fields.
func (c *GoldenCache) Golden(tool, bench string, f Factory) (GoldenInfo, error) {
	e := c.entry(tool, bench)
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	e.once.Do(func() {
		e.golden, e.sim, e.err = goldenRun(f)
		e.golden.Benchmark = bench
		c.mu.Lock()
		c.runs++
		c.mu.Unlock()
	})
	if e.err != nil {
		return GoldenInfo{}, e.err
	}
	g := e.golden
	// Hand out a private stats map: cells of a matrix must not alias.
	g.Stats = make(map[string]uint64, len(e.golden.Stats))
	for k, v := range e.golden.Stats {
		g.Stats[k] = v
	}
	return g, nil
}

// Runs reports how many golden simulations the cache actually performed
// (as opposed to served from memory) — the figure tests assert exactly
// one per {tool, benchmark} row.
func (c *GoldenCache) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Stats reports the golden lookups split into performed simulations and
// memoized hits — the golden-cache hit-rate gauge of the telemetry
// snapshot. (Geometry and LiveEntries lookups route through Golden, so
// their reuse of the memoized machine counts as hits too.)
func (c *GoldenCache) Stats() (runs, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hits = c.calls - c.runs
	if hits < 0 {
		hits = 0
	}
	return c.runs, hits
}

// Geometry returns the {entries, bitsPerEntry} geometry of one structure
// on the row's machine, reusing the memoized golden simulator. ok is
// false when the tool has no such structure.
func (c *GoldenCache) Geometry(tool, bench string, f Factory, structure string) (entries, bits int, ok bool, err error) {
	e := c.entry(tool, bench)
	if _, gerr := c.Golden(tool, bench, f); gerr != nil {
		return 0, 0, false, gerr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	arr, found := e.sim.Structures()[structure]
	if !found {
		return 0, 0, false, nil
	}
	return arr.Entries(), arr.BitsPerEntry(), true, nil
}

// LiveEntries returns the entries of structure holding live data at the
// end of the row's golden run — the LiveOnly fault population. The probe
// reuses the memoized golden machine (the pre-scheduler path simulated a
// twin from boot for every campaign) and is itself memoized per
// structure.
func (c *GoldenCache) LiveEntries(tool, bench string, f Factory, structure string) ([]int, error) {
	e := c.entry(tool, bench)
	if _, gerr := c.Golden(tool, bench, f); gerr != nil {
		return nil, gerr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if live, ok := e.live[structure]; ok {
		return live, nil
	}
	arr, found := e.sim.Structures()[structure]
	if !found {
		return nil, fmt.Errorf("core: %s has no structure %q", e.golden.Tool, structure)
	}
	var live []int
	for i := 0; i < arr.Entries(); i++ {
		if arr.EntryValid(i) {
			live = append(live, i)
		}
	}
	if e.live == nil {
		e.live = make(map[string][]int)
	}
	e.live[structure] = live
	return live, nil
}

// Ladder returns the memoized K-rung checkpoint ladder of the {tool,
// bench} row, capturing it on first use (or when a different K is
// requested) by chaining RunTo/Checkpoint on one machine. An empty
// ladder means the simulator cannot checkpoint; runs boot from scratch.
func (c *GoldenCache) Ladder(tool, bench string, f Factory, k int) ([]LadderRung, error) {
	e := c.entry(tool, bench)
	if _, err := c.Golden(tool, bench, f); err != nil {
		return nil, err
	}
	e.ladderMu.Lock()
	defer e.ladderMu.Unlock()
	if e.ladderK != k {
		e.ladder = makeLadder(f, e.golden, k)
		e.ladderK = k
	}
	return e.ladder, nil
}

// Profiles returns the memoized liveness profiles of the row's replay
// trajectories (boot plus one per rung) for one profiled-structure set,
// running the profiled replays only on the first call. Memoization is
// keyed by the rung capture cycles and the structure names: a shard
// worker re-planning the same campaign hits the memo instead of
// re-simulating 1+len(rungs) golden replays per shard. A nil result (no
// error) means the simulator cannot be profiled and pruning is off for
// the row.
func (c *GoldenCache) Profiles(tool, bench string, f Factory, rungs []LadderRung, structures []string) ([]prune.Profiles, error) {
	e := c.entry(tool, bench)
	if _, err := c.Golden(tool, bench, f); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%v|%q", rungCycles(rungs), structures)
	e.profMu.Lock()
	defer e.profMu.Unlock()
	if p, ok := e.profiles[key]; ok {
		return p, nil
	}
	p, err := buildRowProfiles(f, rungs, structures, e.golden)
	if err != nil {
		return nil, err
	}
	if e.profiles == nil {
		e.profiles = make(map[string][]prune.Profiles)
	}
	e.profiles[key] = p
	return p, nil
}

// CommitSignature returns the memoized golden commit-stream signature
// of the {tool, bench} row — the per-block hash sequence of fault-free
// committed-instruction PCs that divergence probes compare injected
// runs against — building it on first use with one probed golden
// replay. A nil signature (no error) means the simulator exposes no
// commit probe; divergence records for the row then carry the
// corruption footprint but no divergence verdict.
func (c *GoldenCache) CommitSignature(tool, bench string, f Factory) (*divergence.Signature, error) {
	e := c.entry(tool, bench)
	e.sigMu.Lock()
	defer e.sigMu.Unlock()
	if e.sig != nil {
		return e.sig, nil
	}
	sim := f()
	cp, ok := sim.(CommitProbed)
	if !ok {
		return nil, nil
	}
	b := divergence.NewSignatureBuilder()
	cp.SetCommitProbe(b)
	res := sim.Run(1 << 62)
	if res.Status != RunCompleted {
		return nil, fmt.Errorf("core: signature replay for %s/%s did not complete: %v (%s)", tool, bench, res.Status, res.AssertMsg)
	}
	sig := b.Signature()
	e.sig = &sig
	return e.sig, nil
}

// FFLadder returns the memoized functional fast-forward rung ladder of
// the {tool, bench} row for the given rung count, creating it (empty)
// on first use. Unlike the detailed checkpoint ladder, creation costs
// nothing: rungs are captured lazily on the run path, each from the
// nearest lower rung. golden supplies the committed count the rung
// quantum is derived from, so supplied-golden specs resolve without a
// cache-side reference run.
func (c *GoldenCache) FFLadder(tool, bench string, golden GoldenInfo, rungs int, noDecode bool) *ffLadder {
	if rungs <= 0 || golden.Committed == 0 {
		return nil
	}
	quantum := golden.Committed / uint64(rungs) //nolint:gosec // rungs > 0
	if quantum == 0 {
		return nil
	}
	e := c.entry(tool, bench)
	e.ffMu.Lock()
	defer e.ffMu.Unlock()
	if e.ff == nil || e.ffQuantum != quantum || e.ff.noDecode != noDecode {
		e.ff = newFFLadder(quantum, noDecode, &c.ffHits, &c.ffBuilds)
		e.ffQuantum = quantum
	}
	return e.ff
}

// FFStats reports the matrix-wide functional fast-forward ladder
// activity: window entries seeded from a memoized rung vs. rung
// captures built. The telemetry snapshot polls it as a lazy source.
func (c *GoldenCache) FFStats() (hits, builds uint64) {
	return c.ffHits.Load(), c.ffBuilds.Load()
}

// rungCycles projects a ladder onto its capture cycles — the part of a
// rung that identifies the replay trajectory it induces.
func rungCycles(rungs []LadderRung) []uint64 {
	out := make([]uint64, len(rungs))
	for i, r := range rungs {
		out[i] = r.Cycle
	}
	return out
}

// MatrixOptions configures RunMatrix.
type MatrixOptions struct {
	// Workers is the size of the single global worker pool shared by
	// every campaign of the matrix; 0 means GOMAXPROCS. Per-spec Workers
	// values are ignored — decoupling pool size from per-campaign mask
	// count is the point of the matrix scheduler.
	Workers int
	// Golden optionally shares a golden-run memoizer across RunMatrix
	// calls (e.g. across the five figures of a full reproduction). When
	// nil the call uses a private cache.
	Golden *GoldenCache
	// Telemetry, when non-nil, receives one run-end event per injection
	// run plus queue/worker/golden-cache counters. A nil collector costs
	// nothing on the run path. Events are classified with the default
	// Parser; the logs repository remains the source for reconfigurable
	// offline classification.
	Telemetry *telemetry.Collector
	// Prune enables golden-run liveness pruning: per row, a profiled
	// fault-free replay records every access of the targeted structures,
	// and masks whose fault is provably dead (overwritten, evicted or
	// never accessed before any read) are classified Masked without
	// simulation; masks falling into the same inter-access interval are
	// collapsed to one simulated representative whose verdict the class
	// shares. When checkpoint restores are in play, one extra replay per
	// rung keeps the verdicts sound against the restored trajectories.
	Prune bool
	// PruneVerify, when positive, additionally simulates up to that many
	// pruned masks per campaign and fails the matrix when a simulated
	// class disagrees with the pruned verdict — the differential guard
	// of the pruning engine. It implies Prune.
	PruneVerify int
	// CheckpointLadder is the number of evenly spaced restore points
	// captured per row for its UseCheckpoint campaigns: K rungs at
	// (i+1)/(K+1) of the golden run, each run restoring the highest rung
	// below its earliest fault. Values below 2 keep the legacy single
	// earliest-fault checkpoint.
	CheckpointLadder int
	// Journal, when non-nil, receives one fsync'd JSONL line per
	// completed injection run — the record plus its trace provenance —
	// before the worker moves on, so a killed campaign loses at most the
	// runs that were in flight. Verify re-runs and plan-settled (pruned)
	// masks are not journaled: the former never enter the results, the
	// latter are replayed from the deterministic plan on resume.
	Journal *fault.Journal
	// Resume replays the journal into the results before dispatch:
	// masks already journaled for a campaign key load their record from
	// the journal, skip the queue, and count as resumed in telemetry.
	// The final records — and the injection trace — are byte-identical
	// to an uninterrupted run. Requires Journal.
	Resume bool
	// RunWallLimit, when positive, bounds the host wall-clock time of a
	// single injection run. The cycle budget (TimeoutFactor) bounds
	// simulated time; this backstop catches a wedged simulator whose
	// cycles stop advancing at all. A run over the limit is recorded as
	// a commit-stalled cycle-limit run (class Timeout, deadlock detail)
	// and its goroutine abandoned. Wall-timeout verdicts depend on host
	// timing, so set this comfortably above any honest run.
	RunWallLimit time.Duration
	// DetailWindow enables sampled execution on window-capable
	// simulators: each injected run simulates cycle-accurately only
	// inside a detail window around its fault — entered by a functional
	// fast-forward (or a checkpoint rung, whichever is closer) and left
	// once every fault provably settled with no residual corruption in a
	// cache or TLB — and runs on the functional interpreter everywhere
	// else. WindowPre and WindowPost are the margins, in cycles, of
	// cycle-accurate simulation kept before the earliest fault arms and
	// after the last fault settles; runs whose fault never settles stay
	// cycle-accurate to the end.
	DetailWindow bool
	WindowPre    uint64
	WindowPost   uint64
	// WindowVerify, when positive, additionally re-simulates up to that
	// many windowed masks per campaign fully cycle-accurately from the
	// same window entry and fails the matrix when an outcome class
	// disagrees with the windowed verdict — the differential guard of
	// the window-exit proof. It implies DetailWindow.
	WindowVerify int
	// FFRungs sizes the functional fast-forward rung ladder windowed
	// runs enter their detail window through: per {tool, benchmark} row,
	// functional-tier states are memoized at FFRungs evenly spaced step
	// points of the fault-free prefix (lazily, on first use) and each
	// window entry resumes from the nearest rung at or below its entry
	// instruction instead of replaying from boot. Zero means the default
	// ladder; negative disables it (every entry fast-forwards from
	// boot). The seeded states are identical either way, so results,
	// traces and journals are byte-identical across settings.
	FFRungs int
	// NoDecodeCache forces every functional-tier dispatch through the
	// slow byte-level Fetch+Decode path instead of the per-image
	// predecoded instruction cache — the reference behaviour for the
	// differential guards; results are byte-identical either way.
	NoDecodeCache bool
	// Divergence, when non-nil, receives one provenance record per mask:
	// where the injected run's committed-instruction stream first left
	// the golden path (measured against a per-row golden signature
	// memoized in the golden cache), how long the corruption lived in the
	// watched arrays, and how the run ended. Pruned and resumed masks get
	// footprint-free records flagged with their provenance. Like the
	// records and the trace, the sink's sorted contents are byte-stable
	// across worker counts.
	Divergence *divergence.Sink
	// Tracer, when non-nil, emits campaign/cell/run/phase spans for the
	// matrix, parented under TraceParent (empty for a root span).
	// SpanWorker labels the emitting process on run and phase spans (a
	// dist worker ID, or "local").
	Tracer      *telemetry.Tracer
	TraceParent string
	SpanWorker  string
	// StopMargin, when positive, arms the sequential-confidence stopping
	// rule on every cell: completions are folded into per-class Wilson
	// score intervals in the cell's deterministic simulation order, the
	// rule is evaluated every StopCheckEvery completions, and once every
	// class proportion is pinned to ±StopMargin at StopConfidence the
	// cell's remaining masks are cancelled and settled as stopped-early
	// provenance rows. The stop point is a pure function of the mask
	// population, so logs, traces and journals stay byte-stable across
	// worker counts and resumes. Ignored in shard mode (windows non-nil):
	// the distributed coordinator owns the global stop decision.
	StopMargin     float64
	StopConfidence float64
	StopCheckEvery int
}

// scheduledRun is one injection run of the flattened matrix queue.
type scheduledRun struct {
	spec int // index into the specs slice
	mask int // index into that spec's mask slice
	// verify is the slot index of a prune-verify run (simulated only to
	// cross-check a pruned verdict, stored outside the records), or -1
	// for a normal run.
	verify int
	// wverify is the slot index of a window-verify run (a windowed mask
	// re-simulated fully cycle-accurately, stored outside the records),
	// or -1 for a normal run.
	wverify int
}

// campaignPrep is the per-campaign state resolved before dispatch.
type campaignPrep struct {
	golden GoldenInfo
	rungs  []LadderRung
	plan   *prune.Plan
	// ff is the row's functional fast-forward rung ladder (nil when
	// windowing is off or the ladder is disabled).
	ff *ffLadder
}

// RunMatrix executes a set of {tool, benchmark, structure} campaigns as
// one flattened work queue on a single shared worker pool, so short
// campaigns no longer serialize behind long ones. Results are returned
// in spec order with records in mask order, byte-identical to running
// each campaign alone: per-run work goes through the same RunOneFrom
// path, golden references are memoized per {tool, benchmark} row rather
// than re-simulated per campaign, and checkpoint prefixes (UseCheckpoint)
// are computed once per row and shared across its structures.
//
// On a worker error the pool cancels promptly — in-flight runs finish,
// queued runs are abandoned — and the error of the earliest queued run
// that failed is returned. Each run executes behind a containment
// boundary: a panic escaping the simulator or the fault-arming path is
// converted into that run's error (surfaced through the same
// deterministic first-error ordering) instead of aborting the process,
// and masks are validated against structure geometry before anything is
// queued.
//
// Deprecated: RunMatrix predates the consolidated campaign API. New
// callers should describe campaigns with a CampaignConfig and use
// RunConfig (local execution) or RunShard (one mask window of a
// distributed campaign); both run through the same scheduler. RunMatrix
// stays as a thin wrapper so existing callers compile unchanged.
func RunMatrix(specs []CampaignSpec, opt MatrixOptions) ([]*CampaignResult, error) {
	results, _, err := runMatrix(specs, opt, nil)
	return results, err
}

// maskWindow restricts the scheduler to the half-open mask index range
// [lo, hi) of one spec — the shard executor's view of a campaign. The
// spec still carries the full mask set, so plan-time artifacts whose
// placement depends on the whole campaign (checkpoint positions, prune
// plans, mask validation) are computed exactly as a single-node run
// computes them; only queueing and record fill-in are windowed.
type maskWindow struct{ lo, hi int }

// runMatrix is the scheduler core behind RunMatrix, RunConfig and
// RunShard. windows, when non-nil, holds one mask window per spec and
// limits simulation and record fill-in to the windowed masks: out-of-
// window records stay zero, plan-settled replicated masks are left to
// the merge layer (their representative may live in another window),
// and prune-verify samples only masks whose comparison record exists in
// the window. The per-spec prune plans are returned alongside the
// results so shard executors can report per-mask provenance.
func runMatrix(specs []CampaignSpec, opt MatrixOptions, windows []maskWindow) ([]*CampaignResult, []*prune.Plan, error) {
	cache := opt.Golden
	if cache == nil {
		cache = NewGoldenCache()
	}
	if windows != nil {
		if len(windows) != len(specs) {
			return nil, nil, fmt.Errorf("core: %d mask windows for %d specs", len(windows), len(specs))
		}
		for i, w := range windows {
			if w.lo < 0 || w.hi > len(specs[i].Masks) || w.lo > w.hi {
				return nil, nil, fmt.Errorf("core: spec %d: mask window [%d,%d) outside [0,%d)", i, w.lo, w.hi, len(specs[i].Masks))
			}
		}
	}
	inWindow := func(spec, m int) bool {
		return windows == nil || (m >= windows[spec].lo && m < windows[spec].hi)
	}

	// Span tracing: the matrix is one campaign span; all golden-derived
	// preparation (reference runs, ladders, prune profiles, commit
	// signatures) is covered by one "golden" phase child, and each
	// campaign gets a cell span the run spans parent on.
	tr := opt.Tracer
	var matrixSpan, goldenSpan *telemetry.ActiveSpan
	if tr != nil {
		matrixSpan = tr.Begin(telemetry.SpanCampaign, "matrix", opt.TraceParent)
		goldenSpan = tr.Begin(telemetry.SpanPhase, "golden", matrixSpan.ID())
	}

	preps := make([]campaignPrep, len(specs))
	for i, spec := range specs {
		var g GoldenInfo
		if spec.Golden != nil {
			g = *spec.Golden
		} else {
			var err error
			g, err = cache.Golden(spec.Tool, spec.Benchmark, spec.Factory)
			if err != nil {
				return nil, nil, err
			}
		}
		g.Benchmark = spec.Benchmark
		g.Structure = spec.Structure
		if spec.Tool != "" {
			g.Tool = spec.Tool
		}
		preps[i].golden = g
	}

	// Fail malformed masks at plan time, before anything simulates:
	// arming a fault outside its structure's geometry panics deep inside
	// the bitarray, so a typo in a hand-edited mask file must be named up
	// front (mask ID and site) rather than surface as a contained panic
	// halfway through a long campaign. Geometry comes from the memoized
	// golden machine; a supplied golden bypasses the cache, so one
	// boot-only probe instance answers instead.
	for i := range specs {
		spec := &specs[i]
		var geom func(string) (int, int, bool)
		var geomErr error
		if spec.Golden == nil {
			geom = func(structure string) (int, int, bool) {
				entries, bits, ok, err := cache.Geometry(spec.Tool, spec.Benchmark, spec.Factory, structure)
				if err != nil {
					geomErr = err
					return 0, 0, false
				}
				return entries, bits, ok
			}
		} else {
			arrs := spec.Factory().Structures()
			geom = func(structure string) (int, int, bool) {
				arr, ok := arrs[structure]
				if !ok {
					return 0, 0, false
				}
				return arr.Entries(), arr.BitsPerEntry(), true
			}
		}
		for _, m := range spec.Masks {
			if err := m.ValidateSites(geom); err != nil {
				if geomErr != nil {
					return nil, nil, geomErr
				}
				return nil, nil, fmt.Errorf("core: campaign %s: %v",
					fault.CampaignKey(preps[i].golden.Tool, spec.Benchmark, spec.Structure), err)
			}
		}
	}

	// Resolve the restore points once per {tool, benchmark} row and share
	// them across the row's structures; every run still decides
	// individually which rung (if any) its earliest fault permits. With a
	// ladder (K >= 2) the rungs sit at fixed fractions of the golden run
	// and are memoized in the cache; the legacy single checkpoint is
	// placed just before the earliest fault of the row's
	// checkpoint-enabled campaigns and wrapped as a one-rung ladder.
	earliest := make(map[goldenKey]uint64)
	for i, spec := range specs {
		if !spec.UseCheckpoint {
			continue
		}
		key := goldenKey{preps[i].golden.Tool, spec.Benchmark}
		e, ok := earliest[key]
		if !ok {
			e = ^uint64(0)
		}
		for _, m := range spec.Masks {
			if c := minSiteCycle(m); c < e {
				e = c
			}
		}
		earliest[key] = e
	}
	rows := make(map[goldenKey][]LadderRung)
	for i, spec := range specs {
		if !spec.UseCheckpoint {
			continue
		}
		key := goldenKey{preps[i].golden.Tool, spec.Benchmark}
		rungs, done := rows[key]
		if !done {
			if opt.CheckpointLadder >= 2 {
				var err error
				rungs, err = cache.Ladder(key.tool, key.bench, spec.Factory, opt.CheckpointLadder)
				if err != nil {
					return nil, nil, err
				}
			} else if cp, cpCycle := makeCheckpoint(spec.Factory, preps[i].golden, earliest[key]); cp != nil {
				rungs = []LadderRung{{State: cp, Cycle: cpCycle}}
			}
			rows[key] = rungs
		}
		preps[i].rungs = rungs
	}

	// Liveness pruning: one profiled fault-free replay per row trajectory
	// (boot plus one per rung) classifies provably-dead masks Masked and
	// collapses interval-equivalent masks at plan time, before anything is
	// queued.
	pruneOn := opt.Prune || opt.PruneVerify > 0
	if pruneOn {
		type rowKey struct {
			key   goldenKey
			rungs int // rows with and without restores profile separately
		}
		profiled := make(map[rowKey][]prune.Profiles)
		structures := maskStructures(specs)
		for i := range specs {
			spec := &specs[i]
			key := rowKey{goldenKey{preps[i].golden.Tool, spec.Benchmark}, len(preps[i].rungs)}
			profiles, done := profiled[key]
			if !done {
				var err error
				if spec.Golden == nil {
					// The cache memoizes the profiled replays per {rungs,
					// structures}, so a worker re-planning the same campaign
					// for every shard profiles the row once, not once per
					// shard. A supplied golden bypasses the cache (its row
					// may not be the cache's), so it profiles locally.
					profiles, err = cache.Profiles(spec.Tool, spec.Benchmark, spec.Factory, preps[i].rungs, structures)
				} else {
					profiles, err = buildRowProfiles(spec.Factory, preps[i].rungs, structures, preps[i].golden)
				}
				if err != nil {
					return nil, nil, err
				}
				profiled[key] = profiles
			}
			preps[i].plan, _ = planMasks(spec, preps[i].rungs, profiles)
		}
	}

	// Campaign keys label journal lines and telemetry rows alike.
	keys := make([]string, len(specs))
	for i, spec := range specs {
		tool := spec.Tool
		if tool == "" {
			tool = preps[i].golden.Tool
		}
		keys[i] = fault.CampaignKey(tool, spec.Benchmark, spec.Structure)
	}

	// Divergence provenance: resolve the golden commit-stream signature
	// once per {tool, benchmark} row. Supplied-golden specs resolve
	// through the cache too — the signature replay is deterministic and
	// depends only on the factory, so the row's cells share one replay.
	dsink := opt.Divergence
	var sigs []*divergence.Signature
	if dsink != nil {
		sigs = make([]*divergence.Signature, len(specs))
		for i, spec := range specs {
			sig, err := cache.CommitSignature(preps[i].golden.Tool, spec.Benchmark, spec.Factory)
			if err != nil {
				return nil, nil, err
			}
			sigs[i] = sig
		}
	}

	var cellSpans []*telemetry.ActiveSpan
	if tr != nil {
		goldenSpan.End()
		cellSpans = make([]*telemetry.ActiveSpan, len(specs))
		for i := range specs {
			cellSpans[i] = tr.Begin(telemetry.SpanCell, keys[i], matrixSpan.ID())
		}
	}

	// Resume: index the journal's acknowledged runs by {campaign, mask}.
	// The queue fill below consults it after the prune plan — plans are
	// regenerated deterministically, so a journaled mask the plan now
	// settles without simulation stays with the plan's verdict.
	jnl := opt.Journal
	var journaled map[string]map[int]*fault.JournalEntry
	if opt.Resume && jnl != nil {
		past := jnl.Entries()
		journaled = make(map[string]map[int]*fault.JournalEntry)
		for k := range past {
			e := &past[k]
			byMask := journaled[e.Campaign]
			if byMask == nil {
				byMask = make(map[int]*fault.JournalEntry)
				journaled[e.Campaign] = byMask
			}
			byMask[e.MaskID] = e
		}
	}
	type resumedRun struct {
		spec  int
		entry *fault.JournalEntry
		rec   LogRecord
	}
	var resumed []resumedRun

	// Detail-window policy: one shared config for the real runs, plus
	// the no-exit variant the window-verify re-runs use to stay
	// cycle-accurate from the same window entry.
	var win, winNoExit *windowConfig
	if opt.DetailWindow || opt.WindowVerify > 0 {
		win = &windowConfig{pre: opt.WindowPre, post: opt.WindowPost, noDecode: opt.NoDecodeCache}
		winNoExit = &windowConfig{pre: opt.WindowPre, post: opt.WindowPost, noDecode: opt.NoDecodeCache, noExit: true}
		// Resolve the functional fast-forward rung ladder once per row;
		// the rungs themselves are captured lazily on the run path.
		if opt.FFRungs >= 0 {
			n := opt.FFRungs
			if n == 0 {
				n = defaultFFRungs
			}
			for i := range specs {
				preps[i].ff = cache.FFLadder(preps[i].golden.Tool, specs[i].Benchmark,
					preps[i].golden, n, opt.NoDecodeCache)
			}
		}
	}

	// Flatten every injection run into one shared queue, spec-major and
	// mask-minor, skipping masks the plan settled without simulation and
	// masks the journal already holds a completed record for. The
	// prune-verify and window-verify samples ride on the same queue as
	// extra runs whose records land in side tables, never in the
	// results.
	records := make([][]LogRecord, len(specs))
	verifyIdx := make([][]int, len(specs))
	verifyRecs := make([][]LogRecord, len(specs))
	wverifyIdx := make([][]int, len(specs))
	wverifyRecs := make([][]LogRecord, len(specs))
	var queue []scheduledRun
	totalMasks := 0
	adaptiveOn := opt.StopMargin > 0 && windows == nil
	simOrders := make([][]int, len(specs))
	for i, spec := range specs {
		records[i] = make([]LogRecord, len(spec.Masks))
		plan := preps[i].plan
		var simIdx []int // masks this spec actually simulates
		for m := range spec.Masks {
			if !inWindow(i, m) {
				continue
			}
			totalMasks++
			if plan != nil && plan.Decisions[m].Action != prune.Simulate {
				continue
			}
			if adaptiveOn {
				// The cell's simulation order includes journaled masks —
				// real and stopped alike — so positions (and therefore
				// evaluation boundaries) are identical across resumes.
				simOrders[i] = append(simOrders[i], spec.Masks[m].ID)
			}
			if e := journaled[keys[i]][spec.Masks[m].ID]; e != nil {
				var rec LogRecord
				if err := json.Unmarshal(e.Record, &rec); err != nil {
					return nil, nil, fmt.Errorf("core: journal record for %s mask %d: %w", e.Campaign, e.MaskID, err)
				}
				if !reflect.DeepEqual(rec.Sites, spec.Masks[m].Sites) {
					return nil, nil, fmt.Errorf("core: journal record for %s mask %d was taken with different fault sites — stale journal for this mask set", e.Campaign, e.MaskID)
				}
				records[i][m] = rec
				resumed = append(resumed, resumedRun{spec: i, entry: e, rec: rec})
				continue
			}
			simIdx = append(simIdx, m)
			queue = append(queue, scheduledRun{spec: i, mask: m, verify: -1, wverify: -1})
		}
		if opt.PruneVerify > 0 {
			// Windowed: verify only masks whose planned verdict this window
			// can reproduce — a dead mask in the window, or a replicated
			// mask whose representative's record is simulated here too.
			for _, m := range sampleVerify(plan, opt.PruneVerify) {
				if !inWindow(i, m) {
					continue
				}
				if d := plan.Decisions[m]; d.Action == prune.Replicate && !inWindow(i, d.Rep) {
					continue
				}
				verifyIdx[i] = append(verifyIdx[i], m)
			}
			verifyRecs[i] = make([]LogRecord, len(verifyIdx[i]))
			for j, m := range verifyIdx[i] {
				queue = append(queue, scheduledRun{spec: i, mask: m, verify: j, wverify: -1})
			}
		}
		if opt.WindowVerify > 0 {
			wverifyIdx[i] = sampleWindowVerify(simIdx, opt.WindowVerify)
			wverifyRecs[i] = make([]LogRecord, len(wverifyIdx[i]))
			for j, m := range wverifyIdx[i] {
				queue = append(queue, scheduledRun{spec: i, mask: m, verify: -1, wverify: j})
			}
		}
	}

	// Sequential-confidence early stopping: one stopper per cell over its
	// deterministic simulation order. Journaled completions are prefed
	// here (stopped provenance rows excluded — they are settled outcomes
	// of the previous process's stop decision, which this process
	// re-derives from the real completions alone), so a resumed campaign
	// re-evaluates the rule at the same boundaries over the same class
	// multisets and stops at the identical point.
	var stoppers []*cellStopper
	if adaptiveOn {
		stoppers = make([]*cellStopper, len(specs))
		for i := range specs {
			est, err := adaptive.New(adaptive.Config{
				Margin:     opt.StopMargin,
				Confidence: opt.StopConfidence,
				CheckEvery: opt.StopCheckEvery,
				Classes:    ClassStrings(),
			})
			if err != nil {
				return nil, nil, err
			}
			stoppers[i] = newCellStopper(est, simOrders[i], opt.StopCheckEvery)
		}
		for _, r := range resumed {
			if r.rec.Status == RunStopped.String() {
				continue
			}
			cls, _ := (Parser{}).Classify(r.rec)
			stoppers[r.spec].noteCompleted(r.rec.MaskID, string(cls))
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queue) {
		workers = len(queue)
	}

	// Telemetry: register every campaign row up front so the run path
	// never allocates or locks, and let the snapshot pull golden-cache
	// statistics live.
	tel := opt.Telemetry
	var camps []*telemetry.CampaignStats
	if tel != nil {
		tel.SetGoldenSource(func() (uint64, uint64) {
			r, h := cache.Stats()
			return uint64(r), uint64(h) //nolint:gosec // counters are non-negative
		})
		tel.SetFFRungSource(cache.FFStats)
		tel.SetDecodeSource(interp.DecodeCacheStats)
		tel.Start(workers)
		// Queue accounting counts masks, not queue slots: pruned and
		// resumed masks complete at fill time (so queued == done holds),
		// and verify re-runs are invisible to telemetry.
		tel.AddQueued(totalMasks)
		camps = make([]*telemetry.CampaignStats, len(specs))
		for i, spec := range specs {
			tool := spec.Tool
			if tool == "" {
				tool = preps[i].golden.Tool
			}
			camps[i] = tel.Campaign(keys[i], tool, spec.Benchmark, spec.Structure)
		}
		// Resumed runs completed in an earlier process; their events carry
		// the journaled trace provenance (so the trace sink reproduces the
		// uninterrupted trace byte-for-byte) but zero Wall and Resumed set,
		// keeping the throughput gauges about this process's work.
		for _, r := range resumed {
			spec := &specs[r.spec]
			cls, _ := (Parser{}).Classify(r.rec)
			tel.RunStarted()
			tel.RunDone(camps[r.spec], telemetry.RunEvent{
				Campaign:      keys[r.spec],
				Tool:          camps[r.spec].Tool,
				Benchmark:     spec.Benchmark,
				Structure:     spec.Structure,
				MaskID:        r.rec.MaskID,
				Sites:         r.rec.Sites,
				Status:        r.rec.Status,
				Class:         string(cls),
				Cycles:        r.rec.Cycles,
				Observed:      r.entry.Observed,
				FirstObsCycle: r.entry.FirstObsCycle,
				EarlyStop:     r.entry.EarlyStop,
				Resumed:       true,
				Stopped:       r.rec.Status == RunStopped.String(),
				Weight:        r.rec.Weight,
			})
		}
	}
	// Resumed masks get divergence records rebuilt from the journal's
	// provenance: outcome and observation survive, the commit-stream
	// verdict and footprint do not (the run happened in another process),
	// so the rows are flagged Resumed rather than byte-compared against
	// an uninterrupted campaign's.
	if dsink != nil {
		for _, r := range resumed {
			d := divergenceRecord(keys[r.spec], r.rec, nil)
			d.Observed = r.entry.Observed
			d.FirstObsCycle = r.entry.FirstObsCycle
			d.Resumed = true
			d.Derive()
			dsink.Add(d)
		}
	}

	var (
		mu          sync.Mutex
		next        int
		head        int
		stop        bool
		firstErr    error
		firstErrRun = -1
		wg          sync.WaitGroup
	)
	var cond *sync.Cond
	var taken []bool
	if adaptiveOn {
		cond = sync.NewCond(&mu)
		taken = make([]bool, len(queue))
	}
	fail := func(run int, err error) {
		mu.Lock()
		if firstErrRun < 0 || run < firstErrRun {
			firstErrRun, firstErr = run, err
		}
		stop = true
		if cond != nil {
			cond.Broadcast()
		}
		mu.Unlock()
	}
	// takeNext hands a worker its next queue index. The fixed-budget path
	// is the original O(1) cursor. With stoppers armed, dispatch scans
	// for the first untaken entry whose mask sits below its cell's
	// current evaluation boundary — dispatching past the boundary would
	// waste (and worse, make nondeterministic) runs the boundary may
	// cancel. Entries a stop decision cancelled are consumed without
	// dispatch; verify re-runs are never gated (they cross-check settled
	// verdicts, not the estimator's). A worker that finds only gated
	// entries blocks until a completion advances a boundary or a failure
	// stops the pool.
	takeNext := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if !adaptiveOn {
			if stop || next >= len(queue) {
				return 0, false
			}
			i := next
			next++
			return i, true
		}
		for {
			if stop {
				return 0, false
			}
			for head < len(queue) && taken[head] {
				head++
			}
			gated := false
			for j := head; j < len(queue); j++ {
				if taken[j] {
					continue
				}
				r := queue[j]
				if r.verify >= 0 || r.wverify >= 0 {
					taken[j] = true
					return j, true
				}
				id := specs[r.spec].Masks[r.mask].ID
				s := stoppers[r.spec]
				if s.cancelled(id) {
					taken[j] = true
					continue
				}
				if !s.dispatchable(id) {
					gated = true
					continue
				}
				taken[j] = true
				return j, true
			}
			if !gated {
				return 0, false
			}
			cond.Wait()
		}
	}
	// noteErr accounts a per-run failure before the deterministic
	// first-error selection; a contained panic bumps the telemetry
	// counter even when a different run's error ultimately wins.
	noteErr := func(run int, err error) {
		var pe *PanicError
		if tel != nil && errors.As(err, &pe) {
			tel.PanicContained()
		}
		fail(run, err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := takeNext()
				if !ok {
					return
				}
				r := queue[i]
				spec := &specs[r.spec]
				prep := &preps[r.spec]
				if r.verify >= 0 {
					// Prune-verify re-run: simulate a pruned mask for the
					// differential check, bypassing telemetry, the journal
					// and the results entirely. It runs under the same
					// window policy as the real runs — the check is about
					// the prune verdict, not the execution tier.
					rec, err := runGuarded(spec.Factory, prep.rungs, spec.Masks[r.mask],
						prep.golden, spec.TimeoutFactor, !spec.DisableEarlyStop, win, prep.ff, opt.RunWallLimit, nil)
					if err != nil {
						noteErr(i, err)
						return
					}
					verifyRecs[r.spec][r.verify] = rec
					continue
				}
				if r.wverify >= 0 {
					// Window-verify re-run: simulate a windowed mask fully
					// cycle-accurately from the same window entry, bypassing
					// telemetry, the journal and the results entirely.
					rec, err := runGuarded(spec.Factory, prep.rungs, spec.Masks[r.mask],
						prep.golden, spec.TimeoutFactor, !spec.DisableEarlyStop, winNoExit, prep.ff, opt.RunWallLimit, nil)
					if err != nil {
						noteErr(i, err)
						return
					}
					wverifyRecs[r.spec][r.wverify] = rec
					continue
				}
				var stats *runStats
				var runStart time.Time
				if tel != nil || jnl != nil || dsink != nil || tr != nil {
					stats = new(runStats)
				}
				if dsink != nil && sigs[r.spec] != nil {
					stats.div = divergence.NewProbe(sigs[r.spec])
				}
				if tel != nil {
					tel.RunStarted()
				}
				if tel != nil || tr != nil {
					runStart = time.Now()
				}
				rec, err := runGuarded(spec.Factory, prep.rungs, spec.Masks[r.mask],
					prep.golden, spec.TimeoutFactor, !spec.DisableEarlyStop, win, prep.ff, opt.RunWallLimit, stats)
				if err != nil {
					noteErr(i, err)
					return
				}
				records[r.spec][r.mask] = rec
				if adaptiveOn {
					// Feed the cell's stopper and wake gated workers: the
					// contiguous prefix may have extended past a boundary,
					// releasing the next chunk — or deciding the cell.
					cls, _ := (Parser{}).Classify(rec)
					mu.Lock()
					stoppers[r.spec].noteCompleted(rec.MaskID, string(cls))
					cond.Broadcast()
					mu.Unlock()
				}
				if jnl != nil {
					// Durability point: the record is not acknowledged until
					// its journal line is fsync'd, so a crash can only lose
					// runs that a resume will redo, never corrupt one.
					e, jerr := journalEntry(keys[r.spec], rec, stats)
					if jerr == nil {
						jerr = jnl.Append(e)
					}
					if jerr != nil {
						fail(i, jerr)
						return
					}
				}
				if dsink != nil {
					dsink.Add(divergenceRecord(keys[r.spec], rec, stats))
				}
				if tel != nil {
					cls, _ := (Parser{}).Classify(rec)
					early := ""
					if rec.Status == RunEarlyMasked.String() {
						early = stats.earlyStopReason()
					}
					diverged := false
					if stats.div != nil {
						diverged, _, _ = stats.div.Diverged()
					}
					tel.RunDone(camps[r.spec], telemetry.RunEvent{
						Campaign:       keys[r.spec],
						Tool:           camps[r.spec].Tool,
						Benchmark:      spec.Benchmark,
						Structure:      spec.Structure,
						MaskID:         rec.MaskID,
						Sites:          rec.Sites,
						Status:         rec.Status,
						Class:          string(cls),
						Cycles:         rec.Cycles,
						Wall:           time.Since(runStart),
						Observed:       stats.observed,
						FirstObsCycle:  stats.firstObs,
						EarlyStop:      early,
						WatchedReads:   stats.reads,
						WatchedWrites:  stats.writes,
						ObservedReads:  stats.obsReads,
						ObservedWrites: stats.obsWrites,
						LadderRestored: stats.restored,
						RungCycle:      stats.rungCycle,
						Windowed:       stats.windowed,
						WindowEntered:  stats.windowEntered,
						WindowExited:   stats.windowExited,
						FastSteps:      stats.fastSteps,
						DetailCycles:   stats.detailCycles,
						Diverged:       diverged,
						Weight:         rec.Weight,
					})
				}
				if tr != nil {
					emitRunSpans(tr, cellSpans[r.spec].ID(), opt.SpanWorker, keys[r.spec], rec, stats, runStart)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	// Settle the masks the stop decisions cancelled: every in-window mask
	// past the cell's cutoff — queued, dead-pruned or replicated alike —
	// becomes a synthetic stopped-early provenance row. Settling the
	// whole tail uniformly (rather than only the queued entries) is what
	// keeps single-node and distributed campaigns byte-identical: a
	// coordinator cancelling a shard cannot know the shard's plan
	// actions. Rows a resumed journal already settled keep their
	// journaled record and get no duplicate telemetry or journal line.
	if adaptiveOn {
		for i := range specs {
			st := stoppers[i]
			if st == nil {
				continue
			}
			if tel != nil {
				if st.stopped() {
					tel.CellStopped(st.finalMargin)
				} else if st.est.N() > 0 {
					tel.ObserveCellMargin(st.est.EffectiveMargin())
				}
			}
			if !st.stopped() {
				continue
			}
			spec := &specs[i]
			for m := range spec.Masks {
				if !inWindow(i, m) || !st.cancelled(spec.Masks[m].ID) {
					continue
				}
				if records[i][m].Status != "" {
					continue // resumed stopped row, already accounted
				}
				rec := stoppedRecord(spec.Masks[m])
				records[i][m] = rec
				if jnl != nil {
					e, jerr := journalEntry(keys[i], rec, nil)
					if jerr == nil {
						e.StoppedEarly = true
						jerr = jnl.Append(e)
					}
					if jerr != nil {
						return nil, nil, jerr
					}
				}
				if dsink != nil {
					dsink.Add(divergenceRecord(keys[i], rec, nil))
				}
				if tel != nil {
					cls, _ := (Parser{}).Classify(rec)
					tel.RunStarted()
					tel.RunDone(camps[i], telemetry.RunEvent{
						Campaign:  keys[i],
						Tool:      camps[i].Tool,
						Benchmark: spec.Benchmark,
						Structure: spec.Structure,
						MaskID:    rec.MaskID,
						Sites:     rec.Sites,
						Status:    rec.Status,
						Class:     string(cls),
						Stopped:   true,
						Weight:    rec.Weight,
					})
				}
			}
		}
	}

	// Fill the records the plan settled without simulation: dead masks get
	// the synthetic pruned record, collapsed masks a copy of their
	// representative's verdict. Telemetry sees one started/done pair per
	// pruned mask (keeping queued == done) with the prune provenance on
	// the event; the collector excludes them from throughput gauges.
	for i := range specs {
		plan := preps[i].plan
		if plan == nil {
			continue
		}
		spec := &specs[i]
		for m, d := range plan.Decisions {
			if !inWindow(i, m) {
				continue
			}
			if adaptiveOn && stoppers[i].cancelled(spec.Masks[m].ID) {
				continue // settled as a stopped-early row above
			}
			var pruned string
			repMask := -1
			switch d.Action {
			case prune.Simulate:
				continue
			case prune.Dead:
				records[i][m] = prunedRecord(spec.Masks[m], preps[i].golden)
				pruned = "dead"
			case prune.Replicate:
				if windows != nil {
					// The representative may live in another shard's window;
					// replicated rows are resolved at merge time from the
					// representative's completed record, reproducing exactly
					// this copy-and-restamp. Skipping the local fill (even
					// when the representative happens to be in-window) keeps
					// every shard's treatment of replicated rows identical.
					continue
				}
				rec := records[i][d.Rep]
				rec.MaskID = spec.Masks[m].ID
				rec.Sites = spec.Masks[m].Sites
				rec.Weight = spec.Masks[m].Weight
				records[i][m] = rec
				pruned = "replicated"
				repMask = spec.Masks[d.Rep].ID
			}
			if dsink != nil {
				d := divergenceRecord(keys[i], records[i][m], nil)
				d.Pruned = pruned
				dsink.Add(d)
			}
			if tel != nil {
				rec := records[i][m]
				cls, _ := (Parser{}).Classify(rec)
				tel.RunStarted()
				tel.RunDone(camps[i], telemetry.RunEvent{
					Campaign:  keys[i],
					Tool:      camps[i].Tool,
					Benchmark: spec.Benchmark,
					Structure: spec.Structure,
					MaskID:    rec.MaskID,
					Sites:     rec.Sites,
					Status:    rec.Status,
					Class:     string(cls),
					Cycles:    rec.Cycles,
					Pruned:    pruned,
					RepMask:   repMask,
					Weight:    rec.Weight,
				})
			}
		}
	}

	// The differential guard of -prune-verify: every sampled pruned mask
	// was also simulated for real; its class must agree with the verdict
	// the plan assigned. (Classes, not raw statuses: a dead-pruned run
	// reports "pruned" where the simulation reports "early-masked" or
	// "completed" — all Masked.)
	for i := range specs {
		for j, m := range verifyIdx[i] {
			// A replicated mask's planned verdict is its representative's
			// class; comparing against the representative's record directly
			// keeps the check meaningful in windowed mode, where replicated
			// rows are filled at merge time rather than here.
			ri := m
			if d := preps[i].plan.Decisions[m]; d.Action == prune.Replicate {
				ri = d.Rep
			}
			if records[i][ri].Status == RunStopped.String() || verifyRecs[i][j].Status == "" {
				// The stop decision settled the comparison target (or
				// cancelled the verify run before it dispatched); there is
				// no planned verdict to check against.
				continue
			}
			planned, _ := (Parser{}).Classify(records[i][ri])
			simulated, _ := (Parser{}).Classify(verifyRecs[i][j])
			if planned != simulated {
				d := preps[i].plan.Decisions[m]
				return nil, nil, fmt.Errorf(
					"core: prune-verify mismatch on %s mask %d (%s, reason %q): pruned class %s, simulated class %s (status %s)",
					fault.CampaignKey(preps[i].golden.Tool, specs[i].Benchmark, specs[i].Structure),
					specs[i].Masks[m].ID, d.Action, d.Reason, planned, simulated, verifyRecs[i][j].Status)
			}
		}
	}

	// The differential guard of -window-verify: every sampled windowed
	// mask was also re-simulated fully cycle-accurately from the same
	// window entry; its outcome class must agree with the windowed
	// record's. A disagreement indicts the window-exit proof (settle,
	// drain or residual-safety) or the functional tail.
	for i := range specs {
		for j, m := range wverifyIdx[i] {
			if records[i][m].Status == RunStopped.String() || wverifyRecs[i][j].Status == "" {
				continue // stop decision settled the windowed record
			}
			windowed, _ := (Parser{}).Classify(records[i][m])
			full, _ := (Parser{}).Classify(wverifyRecs[i][j])
			if windowed != full {
				return nil, nil, fmt.Errorf(
					"core: window-verify mismatch on %s mask %d: windowed class %s (status %s), cycle-accurate class %s (status %s)",
					fault.CampaignKey(preps[i].golden.Tool, specs[i].Benchmark, specs[i].Structure),
					specs[i].Masks[m].ID, windowed, records[i][m].Status, full, wverifyRecs[i][j].Status)
			}
		}
	}

	if tr != nil {
		for i := range specs {
			key := keys[i]
			cellSpans[i].End(func(sp *telemetry.Span) { sp.Campaign = key })
		}
		matrixSpan.End()
	}

	results := make([]*CampaignResult, len(specs))
	plans := make([]*prune.Plan, len(specs))
	for i := range specs {
		results[i] = &CampaignResult{Golden: preps[i].golden, Records: records[i]}
		plans[i] = preps[i].plan
		if adaptiveOn && stoppers[i] != nil {
			st := stoppers[i]
			info := &AdaptiveInfo{
				StoppedEarly:    st.stopped(),
				SimulatedRuns:   st.est.N(),
				PlannedRuns:     len(st.simOrder),
				EffectiveMargin: st.est.EffectiveMargin(),
				Confidence:      opt.StopConfidence,
			}
			if st.stopped() {
				info.SimulatedRuns = st.stoppedAt
				info.EffectiveMargin = st.finalMargin
			}
			results[i].Adaptive = info
		}
		if specs[i].Exhaustive {
			// An exhaustive cell enumerated its collapsed mask space; its
			// estimate is a census, not a sample: complete, zero margin.
			sim := len(specs[i].Masks)
			if preps[i].plan != nil {
				sim = preps[i].plan.Simulated
			}
			results[i].Adaptive = &AdaptiveInfo{
				Complete:      true,
				SimulatedRuns: sim,
				PlannedRuns:   len(specs[i].Masks),
			}
		}
	}
	return results, plans, nil
}

// divergenceRecord builds the provenance row of one completed mask.
// stats is nil for rows nothing was simulated for in this process
// (pruned, resumed); they carry the outcome but no footprint or
// divergence verdict.
func divergenceRecord(campaign string, rec LogRecord, stats *runStats) divergence.Record {
	cls, _ := (Parser{}).Classify(rec)
	d := divergence.Record{
		Campaign: campaign,
		MaskID:   rec.MaskID,
		Status:   rec.Status,
		Class:    string(cls),
		Cycles:   rec.Cycles,
	}
	if stats != nil {
		d.Observed = stats.observed
		d.FirstObsCycle = stats.firstObs
		d.FaultTouches = stats.touches
		d.LastTouchCycle = stats.lastTouch
		d.CorruptStructures = stats.corrupt
		if stats.div != nil {
			d.Diverged, d.DivergeCycle, d.DivergeIndex = stats.div.Diverged()
		}
	}
	d.Derive()
	return d
}

// emitRunSpans emits the span of one injection run plus its execution
// phases, synthesized from the per-run stats: fast-forward (functional
// window entry), window (the cycle-accurate section — the whole run
// when no window applies is not a phase of its own), and drain (the
// functional tail after window exit).
func emitRunSpans(tr *telemetry.Tracer, parent, worker, campaign string, rec LogRecord, stats *runStats, start time.Time) {
	mask := rec.MaskID
	run := telemetry.Span{
		SpanID:      tr.NewSpanID(),
		ParentID:    parent,
		Kind:        telemetry.SpanRun,
		Name:        fmt.Sprintf("mask-%d", rec.MaskID),
		Campaign:    campaign,
		MaskID:      &mask,
		Worker:      worker,
		StartUnixNS: start.UnixNano(),
		EndUnixNS:   time.Now().UnixNano(),
		Cycles:      rec.Cycles,
	}
	tr.Emit(run)
	t := start
	phase := func(name string, wall time.Duration, cycles, steps uint64) {
		tr.Emit(telemetry.Span{
			SpanID:      tr.NewSpanID(),
			ParentID:    run.SpanID,
			Kind:        telemetry.SpanPhase,
			Name:        name,
			Campaign:    campaign,
			MaskID:      &mask,
			Worker:      worker,
			StartUnixNS: t.UnixNano(),
			EndUnixNS:   t.Add(wall).UnixNano(),
			Cycles:      cycles,
			Steps:       steps,
		})
		t = t.Add(wall)
	}
	if stats.windowEntered {
		phase("fast-forward", stats.entryWall, 0, stats.entrySteps)
	}
	if stats.windowed {
		phase("window", stats.detailWall, stats.detailCycles, 0)
	}
	if stats.windowExited {
		phase("drain", stats.tailWall, 0, stats.tailSteps)
	}
}

// sampleWindowVerify picks up to n evenly spaced masks from the
// simulated masks of one spec — the window-verify sample. Sampling the
// queued masks (rather than all masks) keeps the guard about runs that
// actually executed under the window policy.
func sampleWindowVerify(sim []int, n int) []int {
	if n <= 0 || len(sim) == 0 {
		return nil
	}
	if len(sim) <= n {
		return append([]int(nil), sim...)
	}
	out := make([]int, 0, n)
	for j := 0; j < n; j++ {
		out = append(out, sim[j*len(sim)/n])
	}
	return out
}

// makeCheckpoint captures the fault-free prefix of a row on a drained
// machine: the target sits at one fifth of the golden run, pushed later
// when every checkpoint-enabled fault of the row starts later still, and
// capped at four fifths.
func makeCheckpoint(f Factory, golden GoldenInfo, earliest uint64) (any, uint64) {
	// Leave room for the drain overshoot: the machine settles some
	// cycles past the target, and the checkpoint must still precede
	// the earliest fault.
	const drainMargin = 2000
	target := golden.Cycles / 5
	if earliest != ^uint64(0) && earliest > drainMargin && earliest-drainMargin > target {
		target = earliest - drainMargin
	}
	if limit := golden.Cycles * 4 / 5; target > limit {
		target = limit
	}
	base, ok := f().(Checkpointer)
	if !ok || target == 0 {
		return nil, 0
	}
	reached, finished, err := base.RunTo(target)
	if err != nil || finished || reached >= earliest {
		return nil, 0
	}
	st, err := base.Checkpoint()
	if err != nil {
		return nil, 0
	}
	return st, reached
}
