package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/sims"
)

// runWithDivergence runs cfg with a divergence sink attached and
// returns the flushed provenance bytes plus the campaign results.
func runWithDivergence(t *testing.T, cfg core.CampaignConfig) ([]byte, []*core.CampaignResult) {
	t.Helper()
	sink := divergence.NewSink()
	results, err := core.RunConfig(cfg, simsResolver(t), core.Attach{
		Golden: core.NewGoldenCache(), Divergence: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), results
}

// TestDivergenceByteStability is the worker-count independence proof of
// the provenance file: the same campaign simulated on 1 and 4 workers
// must flush byte-identical divergence JSONL — every field is a
// deterministic function of the plan and the machines, not of
// scheduling. Run under -race this is also the recorder's thread-safety
// check.
func TestDivergenceByteStability(t *testing.T) {
	base := core.CampaignConfig{
		Campaigns: []core.CampaignCell{
			{Tool: sims.GeFINX86, Benchmark: "qsort", Structure: "rf.int"},
		},
		Injections: 16,
		Seed:       42, // this seed's mask population includes diverging runs

		Divergence: true,
	}
	ref := base
	ref.Workers = 1
	want, wantRes := runWithDivergence(t, ref)

	wide := base
	wide.Workers = 4
	got, _ := runWithDivergence(t, wide)
	if !bytes.Equal(want, got) {
		t.Fatalf("divergence bytes depend on worker count\n--- workers=1\n%s--- workers=4\n%s", want, got)
	}

	recs, err := divergence.ReadRecords(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != base.Injections {
		t.Fatalf("got %d divergence records, want %d (one per injection)", len(recs), base.Injections)
	}
	for i, rec := range recs {
		if rec.MaskID != i {
			t.Fatalf("record %d has mask id %d (order lost)", i, rec.MaskID)
		}
		if rec.SchemaVersion != divergence.SchemaVersion {
			t.Fatalf("record %d carries schema version %d", i, rec.SchemaVersion)
		}
	}

	// Consistency with the log records: same classes, and an SDC or DUE
	// from a consumed fault must be explainable — the paper's premise is
	// that non-masked outcomes follow fault consumption.
	byMask := map[int]divergence.Record{}
	for _, rec := range recs {
		byMask[rec.MaskID] = rec
	}
	diverged := 0
	for _, lr := range wantRes[0].Records {
		rec, ok := byMask[lr.MaskID]
		if !ok {
			t.Fatalf("log record %d has no divergence record", lr.MaskID)
		}
		if cls, _ := (core.Parser{}).Classify(lr); rec.Class != string(cls) {
			t.Fatalf("mask %d: divergence class %q != parsed class %q", lr.MaskID, rec.Class, cls)
		}
		if rec.Diverged {
			diverged++
			if !rec.Observed {
				t.Fatalf("mask %d diverged without the fault ever being consumed: %+v", lr.MaskID, rec)
			}
			if rec.DivergeCycle < rec.FirstObsCycle {
				t.Fatalf("mask %d diverged before first consumption: %+v", lr.MaskID, rec)
			}
			if rec.PropagationCycles != rec.DivergeCycle-rec.FirstObsCycle {
				t.Fatalf("mask %d propagation depth inconsistent: %+v", lr.MaskID, rec)
			}
		}
	}
	if diverged == 0 {
		t.Fatal("no run diverged: the probe saw nothing (seed too tame or probe dead)")
	}
}

// TestDivergenceWithPruneAndLadder checks the recorder composes with
// the scheduler's accelerations: pruned rows appear as unsimulated
// provenance stubs, simulated rows keep their measurements, and the
// file stays worker-count independent.
func TestDivergenceWithPruneAndLadder(t *testing.T) {
	base := core.CampaignConfig{
		Campaigns: []core.CampaignCell{
			{Tool: sims.GeFINX86, Benchmark: "qsort", Structure: "rf.int"},
		},
		Injections: 12,
		Seed:       9,
		Divergence: true,
		Prune:      true, UseCheckpoint: true, CheckpointLadder: 2,
	}
	ref := base
	ref.Workers = 1
	want, _ := runWithDivergence(t, ref)
	wide := base
	wide.Workers = 4
	got, _ := runWithDivergence(t, wide)
	if !bytes.Equal(want, got) {
		t.Fatalf("pruned divergence bytes depend on worker count\n--- workers=1\n%s--- workers=4\n%s", want, got)
	}

	recs, err := divergence.ReadRecords(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != base.Injections {
		t.Fatalf("got %d records, want %d", len(recs), base.Injections)
	}
	pruned := 0
	for _, rec := range recs {
		if rec.Pruned != "" {
			pruned++
			if rec.Observed || rec.Diverged || rec.FaultTouches != 0 {
				t.Fatalf("pruned row carries simulated measurements: %+v", rec)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("prune settled nothing; the stub path is untested (pick another seed)")
	}
}
