package core

import "fmt"

// Class is a fault-effect class of §III.A.
type Class string

// The six classes of the paper's reliability reports.
const (
	ClassMasked  Class = "Masked"
	ClassSDC     Class = "SDC"
	ClassDUE     Class = "DUE"
	ClassTimeout Class = "Timeout"
	ClassCrash   Class = "Crash"
	ClassAssert  Class = "Assert"
)

// Classes lists the classes in the paper's presentation order.
var Classes = []Class{ClassMasked, ClassSDC, ClassDUE, ClassTimeout, ClassCrash, ClassAssert}

// Detail is the fine-grained sub-class the parser can optionally report:
// false/true DUE, deadlock/livelock, process/system/simulator crash.
type Detail string

// Detail values.
const (
	DetailNone      Detail = ""
	DetailFalseDUE  Detail = "false-DUE"
	DetailTrueDUE   Detail = "true-DUE"
	DetailDeadlock  Detail = "deadlock"
	DetailLivelock  Detail = "livelock"
	DetailProcCrash Detail = "process-crash"
	DetailSysCrash  Detail = "system-crash"
	DetailSimCrash  Detail = "simulator-crash"
)

// Parser maps raw log records to fault-effect classes. It is the
// reconfigurable third module of the injection framework: changing its
// options re-classifies existing logs without re-running any campaign.
type Parser struct {
	// GroupSimCrashWithAssert moves simulator crashes from the Crash
	// class into Assert, grouping faulty behaviours attributed to
	// simulator malfunction together (the regrouping example of
	// §III.B).
	GroupSimCrashWithAssert bool
	// CoarseMaskedOnly collapses every non-masked class into a single
	// "NonMasked" pseudo-class.
	CoarseMaskedOnly bool
}

// NonMasked is the pseudo-class used by the coarse-grained configuration.
const NonMasked Class = "NonMasked"

// ClassStopped is the pseudo-class of runs an adaptive campaign's
// stopping rule cancelled before simulation. It is deliberately absent
// from Classes: a stopped row carries provenance, not an outcome, and
// must never dilute the reported proportions.
const ClassStopped Class = "Stopped"

// Classify maps one log record to its class and detail.
func (p Parser) Classify(rec LogRecord) (Class, Detail) {
	cls, det := p.classify(rec)
	if p.CoarseMaskedOnly && cls != ClassMasked && cls != ClassStopped {
		return NonMasked, det
	}
	return cls, det
}

func (p Parser) classify(rec LogRecord) (Class, Detail) {
	switch rec.Status {
	case RunEarlyMasked.String(), RunPruned.String():
		return ClassMasked, DetailNone
	case RunStopped.String():
		return ClassStopped, DetailNone
	case RunCompleted.String():
		clean := len(rec.EventKinds) == 0
		switch {
		case clean && rec.OutputMatch:
			return ClassMasked, DetailNone
		case clean:
			return ClassSDC, DetailNone
		case rec.OutputMatch:
			return ClassDUE, DetailFalseDUE
		default:
			return ClassDUE, DetailTrueDUE
		}
	case RunCycleLimit.String():
		if rec.CommitStalled {
			return ClassTimeout, DetailDeadlock
		}
		return ClassTimeout, DetailLivelock
	case RunProcessCrash.String():
		return ClassCrash, DetailProcCrash
	case RunSystemCrash.String():
		return ClassCrash, DetailSysCrash
	case RunSimCrash.String():
		if p.GroupSimCrashWithAssert {
			return ClassAssert, DetailSimCrash
		}
		return ClassCrash, DetailSimCrash
	case RunAssert.String():
		return ClassAssert, DetailNone
	default:
		// Unknown statuses (from a newer log format) group with
		// simulator malfunction.
		return ClassAssert, DetailSimCrash
	}
}

// Breakdown is the classification histogram of one campaign.
type Breakdown struct {
	Total   int
	Counts  map[Class]int
	Details map[Detail]int
	// Weights and WeightSum carry the Horvitz–Thompson weight mass per
	// class — the self-normalized estimator of importance-sampled
	// campaigns. A record without a weight counts as weight 1, so for
	// uniform campaigns WeightedPct degenerates to Pct exactly.
	Weights   map[Class]float64
	WeightSum float64
	// NonUnit records that at least one run carried a weight other than
	// 1 — the log came from a weighted mask population.
	NonUnit bool
}

// ParseAll classifies a full campaign log. Early-stopped rows are
// counted under ClassStopped but excluded from Total: they were never
// decided, so they must not dilute the class proportions the margin
// was declared for.
func (p Parser) ParseAll(recs []LogRecord) Breakdown {
	b := Breakdown{
		Counts:  make(map[Class]int),
		Details: make(map[Detail]int),
		Weights: make(map[Class]float64),
	}
	for _, r := range recs {
		cls, det := p.Classify(r)
		b.Counts[cls]++
		if cls == ClassStopped {
			continue
		}
		b.Total++
		w := r.Weight
		if w <= 0 {
			w = 1
		} else if w != 1 {
			b.NonUnit = true
		}
		b.Weights[cls] += w
		b.WeightSum += w
		if det != DetailNone {
			b.Details[det]++
		}
	}
	return b
}

// Pct returns the percentage of runs in the class.
func (b Breakdown) Pct(c Class) float64 {
	if b.Total == 0 {
		return 0
	}
	return 100 * float64(b.Counts[c]) / float64(b.Total)
}

// WeightedPct returns the Horvitz–Thompson self-normalized percentage of
// the class — the unbiased estimate of its uniform-population proportion
// under importance-sampled (or cycle-mass-weighted exhaustive) mask
// populations. Equal to Pct when every record weighs 1.
func (b Breakdown) WeightedPct(c Class) float64 {
	if b.WeightSum == 0 {
		return 0
	}
	return 100 * b.Weights[c] / b.WeightSum
}

// WeightedVulnerability is the weighted analog of Vulnerability.
func (b Breakdown) WeightedVulnerability() float64 {
	return 100 - b.WeightedPct(ClassMasked)
}

// Weighted reports whether the log carried non-unit sampling weights,
// i.e. whether WeightedPct says anything Pct doesn't.
func (b Breakdown) Weighted() bool { return b.NonUnit }

// Vulnerability returns the sum of all non-masked percentages — the
// paper's vulnerability metric.
func (b Breakdown) Vulnerability() float64 {
	return 100 - b.Pct(ClassMasked)
}

// String renders the breakdown as one report row.
func (b Breakdown) String() string {
	s := ""
	for _, c := range Classes {
		s += fmt.Sprintf("%s=%5.2f%% ", c, b.Pct(c))
	}
	return fmt.Sprintf("%svuln=%5.2f%% (n=%d)", s, b.Vulnerability(), b.Total)
}
