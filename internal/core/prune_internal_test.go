package core

import (
	"testing"

	"repro/internal/prune"
)

func TestSelectRung(t *testing.T) {
	rungs := []LadderRung{{Cycle: 100}, {Cycle: 200}, {Cycle: 300}}
	cases := []struct {
		minSite uint64
		want    int
	}{
		{50, -1},
		{100, -1}, // strict: a fault at the capture cycle boots from scratch
		{101, 0},
		{250, 1},
		{300, 1},
		{301, 2},
		{^uint64(0), 2},
	}
	for _, c := range cases {
		if got := selectRung(rungs, c.minSite); got != c.want {
			t.Errorf("selectRung(%d) = %d, want %d", c.minSite, got, c.want)
		}
	}
	if got := selectRung(nil, 500); got != -1 {
		t.Errorf("selectRung(nil) = %d", got)
	}
}

func TestSampleVerify(t *testing.T) {
	plan := &prune.Plan{Decisions: []prune.Decision{
		{Action: prune.Simulate},
		{Action: prune.Dead},
		{Action: prune.Replicate},
		{Action: prune.Simulate},
		{Action: prune.Dead},
		{Action: prune.Dead},
	}}
	if got := sampleVerify(plan, 0); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if got := sampleVerify(nil, 5); got != nil {
		t.Errorf("nil plan: %v", got)
	}
	all := sampleVerify(plan, 10)
	if len(all) != 4 {
		t.Fatalf("n=10: %v", all)
	}
	two := sampleVerify(plan, 2)
	if len(two) != 2 {
		t.Fatalf("n=2: %v", two)
	}
	// The sample is deterministic, evenly spaced, and only pruned masks.
	for _, i := range two {
		if plan.Decisions[i].Action == prune.Simulate {
			t.Errorf("sampled a simulated mask %d", i)
		}
	}
	if again := sampleVerify(plan, 2); again[0] != two[0] || again[1] != two[1] {
		t.Errorf("sample not deterministic: %v vs %v", two, again)
	}
}
