package core_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

// simsResolver is the production-shaped Resolver the CLIs use, rebuilt
// here because core cannot import sims.
func simsResolver(t *testing.T) core.Resolver {
	t.Helper()
	return func(tool, benchmark string) (core.Factory, error) {
		w, err := workload.ByName(benchmark)
		if err != nil {
			return nil, err
		}
		return sims.Factory(tool, w)
	}
}

// Validate must name the offending field in the JSON spelling.
func TestCampaignConfigValidate(t *testing.T) {
	good := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "t", Benchmark: "b", Structure: "s"}},
		Injections: 4,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name  string
		field string
		mut   func(*core.CampaignConfig)
	}{
		{"future version", "schema_version", func(c *core.CampaignConfig) { c.SchemaVersion = core.ConfigSchemaVersion + 1 }},
		{"no campaigns", "campaigns", func(c *core.CampaignConfig) { c.Campaigns = nil }},
		{"negative injections", "injections", func(c *core.CampaignConfig) { c.Injections = -1 }},
		{"unknown model", "model", func(c *core.CampaignConfig) { c.Model = "cosmic" }},
		{"negative workers", "workers", func(c *core.CampaignConfig) { c.Workers = -2 }},
		{"negative prune verify", "prune_verify", func(c *core.CampaignConfig) { c.PruneVerify = -1 }},
		{"one-rung ladder", "checkpoint_ladder", func(c *core.CampaignConfig) { c.CheckpointLadder = 1 }},
		{"negative ladder", "checkpoint_ladder", func(c *core.CampaignConfig) { c.CheckpointLadder = -3 }},
		{"negative wall limit", "run_wall_limit_ns", func(c *core.CampaignConfig) { c.RunWallLimit = -1 }},
		{"empty tool", "campaigns[0].tool", func(c *core.CampaignConfig) { c.Campaigns[0].Tool = "" }},
		{"empty benchmark", "campaigns[0].benchmark", func(c *core.CampaignConfig) { c.Campaigns[0].Benchmark = "" }},
		{"empty structure", "campaigns[0].structure", func(c *core.CampaignConfig) { c.Campaigns[0].Structure = "" }},
		{"negative cell injections", "campaigns[0].injections", func(c *core.CampaignConfig) { c.Campaigns[0].Injections = -1 }},
		{"no masks anywhere", "campaigns[0].injections", func(c *core.CampaignConfig) { c.Injections = 0 }},
		{"bad mask model", "campaigns[0].masks[0].sites[0].model", func(c *core.CampaignConfig) {
			c.Campaigns[0].Masks = []fault.Mask{{Sites: []fault.Site{{Structure: "s", Model: "warp"}}}}
		}},
		{"stop margin above domain", "stop_margin", func(c *core.CampaignConfig) { c.StopMargin = 1.5 }},
		{"negative stop margin", "stop_margin", func(c *core.CampaignConfig) { c.StopMargin = -0.1 }},
		{"margin without confidence", "stop_confidence", func(c *core.CampaignConfig) { c.StopMargin = 0.05 }},
		{"confidence out of domain", "stop_confidence", func(c *core.CampaignConfig) {
			c.StopMargin, c.StopConfidence = 0.05, 1.0
		}},
		{"confidence without margin", "stop_confidence", func(c *core.CampaignConfig) { c.StopConfidence = 0.99 }},
		{"cadence without margin", "stop_check_every", func(c *core.CampaignConfig) { c.StopCheckEvery = 25 }},
		{"negative cadence", "stop_check_every", func(c *core.CampaignConfig) {
			c.StopMargin, c.StopConfidence, c.StopCheckEvery = 0.05, 0.99, -1
		}},
		{"exhaustive with stop margin", "exhaustive", func(c *core.CampaignConfig) {
			c.Exhaustive = true
			c.StopMargin, c.StopConfidence = 0.05, 0.99
		}},
		{"exhaustive with importance sampling", "exhaustive", func(c *core.CampaignConfig) {
			c.Exhaustive, c.ImportanceSampling = true, true
		}},
		{"exhaustive with live-only", "exhaustive", func(c *core.CampaignConfig) {
			c.Exhaustive, c.LiveOnly = true, true
		}},
		{"exhaustive with permanent model", "exhaustive", func(c *core.CampaignConfig) {
			c.Exhaustive, c.Model = true, "permanent"
		}},
		{"importance sampling with live-only", "importance_sampling", func(c *core.CampaignConfig) {
			c.ImportanceSampling, c.LiveOnly = true, true
		}},
		{"importance sampling with intermittent model", "importance_sampling", func(c *core.CampaignConfig) {
			c.ImportanceSampling, c.Model = true, "intermittent"
		}},
		{"explicit masks with exhaustive", "campaigns[0].masks", func(c *core.CampaignConfig) {
			c.Exhaustive = true
			c.Campaigns[0].Masks = []fault.Mask{{Sites: []fault.Site{{Structure: "s", Model: "transient"}}}}
		}},
		{"explicit masks with importance sampling", "campaigns[0].masks", func(c *core.CampaignConfig) {
			c.ImportanceSampling = true
			c.Campaigns[0].Masks = []fault.Mask{{Sites: []fault.Site{{Structure: "s", Model: "transient"}}}}
		}},
	}
	for _, tc := range cases {
		cfg := good
		cfg.Campaigns = []core.CampaignCell{good.Campaigns[0]}
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), "campaign config: "+tc.field+":") {
			t.Fatalf("%s: error %q does not name field %q", tc.name, err, tc.field)
		}
	}
}

func TestCampaignConfigMaskCountAndKeys(t *testing.T) {
	cfg := core.CampaignConfig{
		Injections: 10,
		Campaigns: []core.CampaignCell{
			{Tool: "t", Benchmark: "b", Structure: "s1"},
			{Tool: "t", Benchmark: "b", Structure: "s2", Injections: 3},
			{Tool: "t", Benchmark: "b", Structure: "s3", Masks: make([]fault.Mask, 7)},
		},
	}
	for i, want := range []int{10, 3, 7} {
		if got := cfg.MaskCount(i); got != want {
			t.Fatalf("MaskCount(%d) = %d, want %d", i, got, want)
		}
	}
	keys := cfg.Keys()
	if len(keys) != 3 || keys[1] != fault.CampaignKey("t", "b", "s2") {
		t.Fatalf("Keys() = %v", keys)
	}
}

// RunConfig must reproduce the legacy hand-wired path (cache + Generate
// + RunMatrix with an explicit golden ref) exactly: same masks, same
// records, same golden header.
func TestRunConfigMatchesLegacyPath(t *testing.T) {
	const tool, bench, structure = sims.GeFINX86, "qsort", "rf.int"
	const n, seed = 6, int64(42)
	resolve := simsResolver(t)

	// Legacy path, as cmd/faultcamp wired it before the config API.
	f, err := resolve(tool, bench)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewGoldenCache()
	golden, err := cache.Golden(tool, bench, f)
	if err != nil {
		t.Fatal(err)
	}
	entries, bits, ok, err := cache.Geometry(tool, bench, f, structure)
	if err != nil || !ok {
		t.Fatalf("geometry: ok=%v err=%v", ok, err)
	}
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: structure, Entries: entries, BitsPerEntry: bits,
		MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: n, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := core.RunMatrix([]core.CampaignSpec{{
		Tool: tool, Benchmark: bench, Structure: structure,
		Masks: masks, Factory: f, Golden: &golden,
	}}, core.MatrixOptions{Golden: cache})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: tool, Benchmark: bench, Structure: structure}},
		Injections: n,
		Seed:       seed,
	}
	got, err := core.RunConfig(cfg, resolve, core.Attach{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Records) != n {
		t.Fatalf("RunConfig shape: %d results", len(got))
	}
	if !reflect.DeepEqual(got[0].Golden, legacy[0].Golden) {
		t.Fatalf("golden header differs: %+v vs %+v", got[0].Golden, legacy[0].Golden)
	}
	for i := range legacy[0].Records {
		l, g := legacy[0].Records[i], got[0].Records[i]
		if !reflect.DeepEqual(l, g) {
			t.Fatalf("record %d differs: legacy %+v config %+v", i, l, g)
		}
	}
}

// The union of shards must equal the single-node run: simulated and
// pruned-dead rows verbatim, replicated rows as stubs whose
// representative carries the verdict.
func TestRunShardUnionMatchesRunConfig(t *testing.T) {
	resolve := simsResolver(t)
	cfg := core.CampaignConfig{
		Campaigns: []core.CampaignCell{
			{Tool: sims.GeFINX86, Benchmark: "qsort", Structure: "rf.int"},
		},
		Injections: 8, Seed: 7,
		Prune: true, UseCheckpoint: true, CheckpointLadder: 2,
	}
	full, err := core.RunConfig(cfg, resolve, core.Attach{})
	if err != nil {
		t.Fatal(err)
	}
	records := full[0].Records

	shared := core.NewGoldenCache()
	seen := make(map[int]bool)
	for _, win := range [][2]int{{0, 3}, {3, 6}, {6, 8}} {
		shard, err := core.RunShard(cfg, 0, win[0], win[1], resolve, core.Attach{Golden: shared})
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", win[0], win[1], err)
		}
		if !reflect.DeepEqual(shard.Golden, full[0].Golden) {
			t.Fatalf("shard [%d,%d) golden header differs", win[0], win[1])
		}
		if len(shard.Runs) != win[1]-win[0] {
			t.Fatalf("shard [%d,%d) returned %d runs", win[0], win[1], len(shard.Runs))
		}
		for _, run := range shard.Runs {
			if run.Index < win[0] || run.Index >= win[1] || seen[run.Index] {
				t.Fatalf("run index %d out of window or duplicated", run.Index)
			}
			seen[run.Index] = true
			want := records[run.Index]
			switch run.Pruned {
			case "replicated":
				// The stub names its representative; the representative's
				// single-node verdict is what the merge will copy.
				repClass, _ := (core.Parser{}).Classify(records[run.RepIndex])
				wantClass, _ := (core.Parser{}).Classify(want)
				if repClass != wantClass {
					t.Fatalf("mask %d: rep %d classifies %v, single-node says %v",
						run.Index, run.RepIndex, repClass, wantClass)
				}
				if run.Record.MaskID != want.MaskID {
					t.Fatalf("mask %d: stub mask id %d", run.Index, run.Record.MaskID)
				}
			default: // simulated or dead: verdict settled in-shard
				if !reflect.DeepEqual(run.Record, want) {
					t.Fatalf("mask %d (%q) differs: shard %+v single-node %+v", run.Index, run.Pruned, run.Record, want)
				}
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("shards covered %d of 8 masks", len(seen))
	}
	// The shared cache profiled and laddered once — shards reuse, not
	// re-simulate, plan-time work.
	if runs := shared.Runs(); runs == 0 {
		t.Fatal("shared cache recorded no golden runs")
	}
}

func TestRunShardValidation(t *testing.T) {
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "t", Benchmark: "b", Structure: "s"}},
		Injections: 4,
	}
	resolve := func(tool, benchmark string) (core.Factory, error) { return nil, nil }
	if _, err := core.RunShard(cfg, 1, 0, 2, resolve, core.Attach{}); err == nil {
		t.Fatal("campaign index out of range accepted")
	}
	for _, win := range [][2]int{{-1, 2}, {0, 5}, {2, 2}, {3, 1}} {
		if _, err := core.RunShard(cfg, 0, win[0], win[1], resolve, core.Attach{}); err == nil {
			t.Fatalf("window [%d,%d) accepted", win[0], win[1])
		}
	}
	if _, err := core.RunShard(cfg, 0, 0, 2, nil, core.Attach{}); err == nil {
		t.Fatal("nil resolver accepted")
	}
	if _, err := core.RunConfig(cfg, nil, core.Attach{}); err == nil {
		t.Fatal("RunConfig with nil resolver accepted")
	}
}
