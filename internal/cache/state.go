package cache

// State is a deep copy of a cache's full contents — arrays, metadata and
// counters — used by the simulators' checkpointing support (the paper's
// injectors use simulator checkpoints to skip common prefixes of
// injection runs).
type State struct {
	Tags, Valid, Data []uint64
	Dirty             []bool
	LRU               []uint64
	Clock             uint64
	Stats             Stats
}

// State captures the cache.
func (c *Cache) State() *State {
	s := &State{
		Tags:  c.tags.Snapshot(),
		Valid: c.valid.Snapshot(),
		Data:  c.data.Snapshot(),
		Dirty: make([]bool, len(c.dirty)),
		LRU:   make([]uint64, len(c.lruClock)),
		Clock: c.clock,
		Stats: c.stats,
	}
	copy(s.Dirty, c.dirty)
	copy(s.LRU, c.lruClock)
	return s
}

// SetState restores a previously captured state. The state is copied, so
// one State may seed many cache instances concurrently.
func (c *Cache) SetState(s *State) {
	c.tags.RestoreSnapshot(s.Tags)
	c.valid.RestoreSnapshot(s.Valid)
	c.data.RestoreSnapshot(s.Data)
	copy(c.dirty, s.Dirty)
	copy(c.lruClock, s.LRU)
	c.clock = s.Clock
	c.stats = s.Stats
}

// TLBState is a deep copy of a TLB.
type TLBState struct {
	Valid, Tags, PPNs []uint64
	LRU               []uint64
	Clock             uint64
	Stats             TLBStats
}

// State captures the TLB.
func (t *TLB) State() *TLBState {
	s := &TLBState{
		Valid: t.valid.Snapshot(),
		Tags:  t.tags.Snapshot(),
		PPNs:  t.ppns.Snapshot(),
		LRU:   make([]uint64, len(t.lru)),
		Clock: t.clock,
		Stats: t.stats,
	}
	copy(s.LRU, t.lru)
	return s
}

// SetState restores a previously captured state.
func (t *TLB) SetState(s *TLBState) {
	t.valid.RestoreSnapshot(s.Valid)
	t.tags.RestoreSnapshot(s.Tags)
	t.ppns.RestoreSnapshot(s.PPNs)
	copy(t.lru, s.LRU)
	t.clock = s.Clock
	t.stats = s.Stats
}
