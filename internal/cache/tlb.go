package cache

import (
	"fmt"

	"repro/internal/bitarray"
)

// PageBits is the page size (4 KiB pages).
const PageBits = 12

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	// Name prefixes the structure names ("dtlb" gives "dtlb.tag", ...).
	Name string
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity.
	Ways int
	// MissLatency is the page-walk cost in cycles.
	MissLatency int
}

// TLBStats counts translation activity.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// TLB models a translation buffer with faultable valid, tag and
// physical-page-number arrays. The simulated machine maps virtual pages
// identically onto physical pages, so a fault-free translation is the
// identity — but a fault in a stored PPN silently redirects accesses to
// a different physical page, and a fault in a tag or valid bit causes
// spurious misses or false hits, exactly the failure modes the paper
// injects into the Data/Instruction TLBs.
type TLB struct {
	cfg   TLBConfig
	sets  int
	valid *bitarray.Array
	tags  *bitarray.Array // virtual page number tags
	ppns  *bitarray.Array // stored physical page numbers
	lru   []uint64
	clock uint64
	stats TLBStats
}

// NewTLB builds a TLB; it panics on bad geometry.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("tlb %q: bad geometry %+v", cfg.Name, cfg))
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("tlb %q: sets must be a power of two", cfg.Name))
	}
	t := &TLB{
		cfg:   cfg,
		sets:  sets,
		valid: bitarray.New(cfg.Name+".valid", cfg.Entries, 1),
		tags:  bitarray.New(cfg.Name+".tag", cfg.Entries, 16),
		ppns:  bitarray.New(cfg.Name+".ppn", cfg.Entries, 16),
		lru:   make([]uint64, cfg.Entries),
	}
	t.tags.SetValidFunc(func(e int) bool { return t.valid.ReadBit(e, 0) != 0 })
	t.ppns.SetValidFunc(func(e int) bool { return t.valid.ReadBit(e, 0) != 0 })
	return t
}

// Stats returns the translation counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// Arrays returns the injectable arrays: valid, tag and PPN.
func (t *TLB) Arrays() []*bitarray.Array {
	return []*bitarray.Array{t.valid, t.tags, t.ppns}
}

// EntryValid reports whether the entry currently holds a valid
// translation. The detail-window scheduler treats a fault in a valid
// TLB entry as still resident: the stored translation keeps steering
// accesses, so the run may not leave the cycle-accurate window.
func (t *TLB) EntryValid(e int) bool {
	return e >= 0 && e < t.cfg.Entries && t.valid.ReadBit(e, 0) != 0
}

// Translate maps a virtual address to a physical address, returning the
// added latency on a miss.
func (t *TLB) Translate(vaddr uint64) (paddr uint64, lat int) {
	vpn := vaddr >> PageBits
	set := int(vpn) & (t.sets - 1)
	tag := vpn & 0xffff
	base := set * t.cfg.Ways
	for w := 0; w < t.cfg.Ways; w++ {
		e := base + w
		if t.valid.ReadBit(e, 0) != 0 && t.tags.ReadWord(e, 0)&0xffff == tag {
			t.stats.Hits++
			t.clock++
			t.lru[e] = t.clock
			ppn := t.ppns.ReadWord(e, 0) & 0xffff
			return ppn<<PageBits | vaddr&(1<<PageBits-1), 0
		}
	}
	// Miss: walk (identity mapping) and fill the LRU way.
	t.stats.Misses++
	victim := base
	for w := 0; w < t.cfg.Ways; w++ {
		e := base + w
		if t.valid.ReadBit(e, 0) == 0 {
			victim = e
			break
		}
		if t.lru[e] < t.lru[victim] {
			victim = e
		}
	}
	t.tags.WriteWord(victim, 0, tag)
	t.ppns.WriteWord(victim, 0, vpn&0xffff)
	t.valid.WriteBit(victim, 0, 1)
	t.clock++
	t.lru[victim] = t.clock
	return vaddr, t.cfg.MissLatency
}
