package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/bitarray"
	"repro/internal/mem"
)

func newHierarchy(dual bool) (*Cache, *Cache, *mem.Memory) {
	m := mem.New()
	l2 := New(Config{Name: "l2", Size: 1 << 20, LineSize: 64, Ways: 16, Latency: 12, DualCopy: dual}, MemLevel{M: m, Lat: 100})
	l1 := New(Config{Name: "l1d", Size: 32 << 10, LineSize: 64, Ways: 4, Latency: 2, DualCopy: dual}, l2)
	return l1, l2, m
}

func TestGeometryChecks(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "x", Size: 0, LineSize: 64, Ways: 4},
		{Name: "x", Size: 1000, LineSize: 64, Ways: 4},
		{Name: "x", Size: 48 << 10, LineSize: 64, Ways: 4}, // 192 sets, not pow2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg, MemLevel{M: mem.New(), Lat: 1})
		}()
	}
	c := New(Config{Name: "l1", Size: 32 << 10, LineSize: 64, Ways: 4, Latency: 2}, MemLevel{M: mem.New(), Lat: 1})
	if c.sets != 128 {
		t.Fatalf("sets = %d, want 128 (the paper's L1 geometry)", c.sets)
	}
}

func TestReadThroughAndHit(t *testing.T) {
	l1, l2, m := newHierarchy(false)
	m.RawWrite(0x2000, []byte{0xaa, 0xbb, 0xcc, 0xdd})
	buf := make([]byte, 4)
	lat, hit := l1.Read(0x2000, buf)
	if hit {
		t.Fatal("cold read hit")
	}
	if buf[0] != 0xaa || buf[3] != 0xdd {
		t.Fatalf("data %x", buf)
	}
	if lat < 2+12+100 {
		t.Fatalf("miss latency %d too small", lat)
	}
	lat, hit = l1.Read(0x2002, buf[:2])
	if !hit || lat != 2 {
		t.Fatalf("warm read: hit=%v lat=%d", hit, lat)
	}
	if l1.Stats().ReadHits != 1 || l1.Stats().ReadMisses != 1 {
		t.Fatalf("stats %+v", l1.Stats())
	}
	if l2.Stats().ReadMisses != 1 {
		t.Fatalf("l2 stats %+v", l2.Stats())
	}
}

func TestWriteAllocateAndWriteBack(t *testing.T) {
	l1, _, m := newHierarchy(false)
	l1.Write(0x3000, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	// Write-back: memory must still be stale.
	buf := make([]byte, 8)
	m.RawRead(0x3000, buf)
	if buf[0] != 0 {
		t.Fatal("write-back cache wrote memory on store")
	}
	// Read through the cache sees the new data.
	l1.Read(0x3000, buf)
	if buf[0] != 1 || buf[7] != 8 {
		t.Fatalf("cached data %x", buf)
	}
	// Evict the set: lines mapping to the same set are 32KB/4ways = 8KB apart.
	for i := uint64(1); i <= 4; i++ {
		l1.Read(0x3000+i*8192, buf)
	}
	// Dirty line must have been written back through L2; pull it from L2.
	got := make([]byte, 8)
	l1.Read(0x3000, got)
	if got[0] != 1 || got[7] != 8 {
		t.Fatalf("after eviction: %x", got)
	}
	if l1.Stats().Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
}

func TestDualCopyWritesMemoryImmediately(t *testing.T) {
	l1, l2, m := newHierarchy(true)
	l1.Write(0x4000, []byte{9, 8, 7, 6})
	buf := make([]byte, 4)
	m.RawRead(0x4000, buf)
	if buf[0] != 9 || buf[3] != 6 {
		t.Fatalf("dual-copy store did not reach memory: %x", buf)
	}
	// L2 allocated the line on the L1 refill; its array copy must also
	// be current.
	if !l2.Present(0x4000) {
		t.Fatal("line not in L2")
	}
	l2buf := make([]byte, 4)
	l2.Read(0x4000, l2buf)
	if l2buf[0] != 9 {
		t.Fatalf("l2 shadow copy stale: %x", l2buf)
	}
	if l1.Stats().Writebacks != 0 {
		t.Fatal("dual-copy cache performed a writeback")
	}
}

func TestDualCopyEvictionDiscardsCorruption(t *testing.T) {
	// In dual-copy mode a fault in a dirty line dies at eviction:
	// memory holds the clean copy.
	l1, _, m := newHierarchy(true)
	l1.Write(0x5000, []byte{0x11, 0x22})
	// Corrupt the cached copy directly (as an injected fault would).
	l1.DataArray().Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: lineIndexOf(l1, 0x5000), Bit: 0, Start: 0})
	l1.DataArray().Tick(0)
	// Evict without reading.
	buf := make([]byte, 2)
	for i := uint64(1); i <= 4; i++ {
		l1.Read(0x5000+i*8192, buf)
	}
	if l1.DataArray().FaultStatus() != bitarray.StatusOverwritten {
		t.Fatalf("fault status %v, want overwritten (provably masked)", l1.DataArray().FaultStatus())
	}
	m.RawRead(0x5000, buf)
	if buf[0] != 0x11 {
		t.Fatalf("memory corrupted: %x", buf)
	}
	// Re-reading through the cache sees clean data again.
	l1.Read(0x5000, buf)
	if buf[0] != 0x11 || buf[1] != 0x22 {
		t.Fatalf("reload got %x", buf)
	}
}

func TestWriteBackEvictionPropagatesCorruption(t *testing.T) {
	// In write-back mode the same scenario propagates the corruption.
	l1, _, m := newHierarchy(false)
	l1.Write(0x5000, []byte{0x11, 0x22})
	l1.DataArray().Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: lineIndexOf(l1, 0x5000), Bit: 0, Start: 0})
	l1.DataArray().Tick(0)
	buf := make([]byte, 2)
	for i := uint64(1); i <= 4; i++ {
		l1.Read(0x5000+i*8192, buf)
	}
	if l1.DataArray().FaultStatus() != bitarray.StatusConsumed {
		t.Fatalf("fault status %v, want consumed (writeback read the line)", l1.DataArray().FaultStatus())
	}
	// The flipped bit 0 of the line turned 0x11 into 0x10.
	l1.Read(0x5000, buf)
	if buf[0] != 0x10 {
		t.Fatalf("corruption lost: %x", buf)
	}
	_ = m
}

// lineIndexOf finds the line index currently holding addr.
func lineIndexOf(c *Cache, addr uint64) int {
	line, ok := c.lookup(addr)
	if !ok {
		panic("line not present")
	}
	return line
}

func TestTagFaultLosesLine(t *testing.T) {
	l1, _, m := newHierarchy(false)
	m.RawWrite(0x6000, []byte{0x42})
	buf := make([]byte, 1)
	l1.Read(0x6000, buf)
	line := lineIndexOf(l1, 0x6000)
	// Flip a tag bit: the line becomes unreachable, next read misses.
	l1.tags.Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: line, Bit: 3, Start: 0})
	l1.tags.Tick(0)
	before := l1.Stats().ReadMisses
	l1.Read(0x6000, buf)
	if l1.Stats().ReadMisses != before+1 {
		t.Fatal("tag fault did not cause a miss")
	}
	if buf[0] != 0x42 {
		t.Fatalf("refetched data wrong: %x", buf)
	}
}

func TestValidBitFaultDropsLine(t *testing.T) {
	l1, _, m := newHierarchy(false)
	m.RawWrite(0x7000, []byte{0x55})
	buf := make([]byte, 1)
	l1.Read(0x7000, buf)
	line := lineIndexOf(l1, 0x7000)
	l1.valid.Arm(bitarray.Fault{Kind: bitarray.Permanent, Entry: line, Bit: 0, StuckVal: 0, Start: 0})
	l1.valid.Tick(0)
	before := l1.Stats().ReadMisses
	l1.Read(0x7000, buf)
	if l1.Stats().ReadMisses != before+1 {
		t.Fatal("cleared valid bit did not cause a miss")
	}
}

func TestLineCrossingAccess(t *testing.T) {
	l1, _, m := newHierarchy(false)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.RawWrite(0x203c, want) // crosses the 0x2040 line boundary
	buf := make([]byte, 8)
	l1.Read(0x203c, buf)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("crossing read byte %d = %d", i, buf[i])
		}
	}
	l1.Write(0x30fc, want)
	l1.Read(0x30fc, buf)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("crossing write byte %d = %d", i, buf[i])
		}
	}
}

func TestLRUReplacement(t *testing.T) {
	l1, _, _ := newHierarchy(false)
	buf := make([]byte, 1)
	// Fill the 4 ways of set 0 (8KB stride), touching A last.
	addrs := []uint64{0x2000, 0x4000, 0x6000, 0x8000}
	for _, a := range addrs {
		l1.Read(a, buf)
	}
	l1.Read(addrs[0], buf) // A now MRU
	// A 5th line evicts the LRU — which is addrs[1], not addrs[0].
	l1.Read(0xA000, buf)
	if !l1.Present(addrs[0]) {
		t.Fatal("MRU line evicted")
	}
	if l1.Present(addrs[1]) {
		t.Fatal("LRU line survived")
	}
}

func TestPrefetch(t *testing.T) {
	l1, _, _ := newHierarchy(false)
	if l1.Present(0x9000) {
		t.Fatal("unexpected line")
	}
	l1.Prefetch(0x9000)
	if !l1.Present(0x9000) {
		t.Fatal("prefetch did not install line")
	}
	if l1.Stats().Prefetches != 1 {
		t.Fatal("prefetch not counted")
	}
	l1.Prefetch(0x9000) // present: no-op
	if l1.Stats().Prefetches != 1 {
		t.Fatal("duplicate prefetch counted")
	}
	buf := make([]byte, 1)
	before := l1.Stats().ReadHits
	l1.Read(0x9000, buf)
	if l1.Stats().ReadHits != before+1 {
		t.Fatal("prefetched line missed")
	}
}

// Property: for any sequence of writes followed by reads through a
// write-back hierarchy, reads return exactly what was last written
// (functional transparency of the cache model, fault-free).
func TestPropCacheTransparency(t *testing.T) {
	type op struct {
		Addr uint16
		Val  byte
	}
	f := func(ops []op, dual bool) bool {
		l1, _, _ := newHierarchy(dual)
		want := make(map[uint64]byte)
		base := uint64(0x100000)
		for _, o := range ops {
			a := base + uint64(o.Addr)
			l1.Write(a, []byte{o.Val})
			want[a] = o.Val
		}
		buf := make([]byte, 1)
		for a, v := range want {
			l1.Read(a, buf)
			if buf[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBIdentityAndStats(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "dtlb", Entries: 64, Ways: 4, MissLatency: 30})
	pa, lat := tlb.Translate(0x123456)
	if pa != 0x123456 {
		t.Fatalf("translate = %#x", pa)
	}
	if lat != 30 {
		t.Fatalf("cold translate latency %d", lat)
	}
	pa, lat = tlb.Translate(0x123999) // same page
	if pa != 0x123999 || lat != 0 {
		t.Fatalf("warm translate = %#x lat %d", pa, lat)
	}
	s := tlb.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTLBPPNFaultRedirects(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "dtlb", Entries: 64, Ways: 4, MissLatency: 30})
	tlb.Translate(0x5000) // fill vpn 5
	// Find the entry and flip PPN bit 1: page 5 → page 7.
	var entry = -1
	for e := 0; e < 64; e++ {
		if tlb.valid.ReadBit(e, 0) != 0 {
			entry = e
			break
		}
	}
	if entry < 0 {
		t.Fatal("no valid entry")
	}
	tlb.ppns.Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: entry, Bit: 1, Start: 0})
	tlb.ppns.Tick(0)
	pa, _ := tlb.Translate(0x5123)
	if pa != 0x7123 {
		t.Fatalf("faulty translate = %#x, want 0x7123", pa)
	}
}

func TestTLBArraysExposed(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "itlb", Entries: 32, Ways: 4, MissLatency: 20})
	arrs := tlb.Arrays()
	if len(arrs) != 3 {
		t.Fatalf("arrays %d", len(arrs))
	}
	names := map[string]bool{}
	for _, a := range arrs {
		names[a.Name()] = true
	}
	for _, n := range []string{"itlb.valid", "itlb.tag", "itlb.ppn"} {
		if !names[n] {
			t.Errorf("missing array %s", n)
		}
	}
}

func TestCacheArraysExposed(t *testing.T) {
	l1, _, _ := newHierarchy(false)
	arrs := l1.Arrays()
	if len(arrs) != 3 {
		t.Fatalf("arrays %d", len(arrs))
	}
	if l1.DataArray().Name() != "l1d.data" {
		t.Fatalf("data array name %q", l1.DataArray().Name())
	}
	if l1.DataArray().TotalBits() != 32<<10<<3 {
		t.Fatalf("l1d data bits = %d", l1.DataArray().TotalBits())
	}
}
