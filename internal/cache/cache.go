// Package cache models set-associative write-back caches with real
// storage: the tag, valid-bit and data arrays are bitarray.Arrays, so
// faults injected into them propagate exactly the way the paper's
// injectors propagate them — a flipped data bit corrupts the next load
// that hits the line, a flipped tag bit makes a line unreachable (or
// falsely reachable), a cleared valid bit silently drops a line.
//
// Two write-policy modes mirror the two simulators:
//
//   - WriteBack (the Gem5-like mode): the data array is the only copy of
//     a dirty line; evictions write the array contents — including any
//     injected corruption — down the hierarchy.
//   - DualCopy (the MARSS-like mode): MARSS keeps program data in its
//     main-memory model, and MaFIN's added data arrays mirror it. Stores
//     update the arrays of every level holding the line and main memory
//     itself; evictions discard the array copy without writing back, so
//     corruption dies with the line unless a load reads it first. This
//     is the extra L1D masking mechanism of the paper's Remark 3.
package cache

import (
	"fmt"

	"repro/internal/bitarray"
	"repro/internal/mem"
)

// Level is a lower memory level a cache refills from and writes back to.
type Level interface {
	// ReadLine fills dst with the line at the aligned address addr and
	// returns the access latency in cycles.
	ReadLine(addr uint64, dst []byte) int
	// WriteLine writes a full line (write-back path) and returns the
	// latency.
	WriteLine(addr uint64, src []byte) int
	// ShadowWrite propagates a store in dual-copy mode: levels update
	// their array copy if they hold the line; main memory always takes
	// the data. No latency is modeled — the timing of the store was
	// already paid at the top level.
	ShadowWrite(addr uint64, src []byte)
	// Timing performs a tags-only access: hit/miss state and latency
	// are modeled but no data moves. It reproduces the unmodified
	// MARSS, whose caches tracked tags while program data lived in main
	// memory (the §III.C data-array ablation).
	Timing(addr uint64, n int, write bool) int
}

// MemLevel adapts main memory as the bottom Level.
type MemLevel struct {
	M *mem.Memory
	// Lat is the access latency in cycles.
	Lat int
}

// ReadLine implements Level.
func (m MemLevel) ReadLine(addr uint64, dst []byte) int {
	m.M.RawRead(addr, dst)
	return m.Lat
}

// WriteLine implements Level.
func (m MemLevel) WriteLine(addr uint64, src []byte) int {
	m.M.RawWrite(addr, src)
	return m.Lat
}

// ShadowWrite implements Level.
func (m MemLevel) ShadowWrite(addr uint64, src []byte) {
	m.M.RawWrite(addr, src)
}

// Timing implements Level.
func (m MemLevel) Timing(addr uint64, n int, write bool) int { return m.Lat }

// Config describes one cache.
type Config struct {
	// Name prefixes the structure names of the arrays ("l1d" gives
	// "l1d.data", "l1d.tag", "l1d.valid").
	Name string
	// Size is the capacity in bytes.
	Size int
	// LineSize is the line size in bytes.
	LineSize int
	// Ways is the associativity.
	Ways int
	// Latency is the hit latency in cycles.
	Latency int
	// DualCopy selects the MARSS-like dual-copy write policy; false
	// selects true write-back.
	DualCopy bool
}

// TagBits is the width of the stored tag field.
const TagBits = 32

// Stats are the per-cache access counters backing the paper's
// remark-supporting statistics.
type Stats struct {
	ReadHits     uint64
	ReadMisses   uint64
	WriteHits    uint64
	WriteMisses  uint64
	Writebacks   uint64
	Replacements uint64
	Prefetches   uint64
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     int
	offBits  uint
	setBits  uint
	tags     *bitarray.Array
	valid    *bitarray.Array
	data     *bitarray.Array
	dirty    []bool
	lruClock []uint64 // per line: last-use timestamp
	clock    uint64
	lower    Level
	stats    Stats
	lineBuf  []byte
}

// New builds a cache over the given lower level. It panics on a bad
// geometry, which is a configuration programming error.
func New(cfg Config, lower Level) *Cache {
	if cfg.Size <= 0 || cfg.LineSize <= 0 || cfg.Ways <= 0 ||
		cfg.Size%(cfg.LineSize*cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %q: bad geometry %+v", cfg.Name, cfg))
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Ways)
	if sets&(sets-1) != 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %q: sets (%d) and line size must be powers of two", cfg.Name, sets))
	}
	lines := sets * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		offBits:  uint(log2(cfg.LineSize)),
		setBits:  uint(log2(sets)),
		tags:     bitarray.New(cfg.Name+".tag", lines, TagBits),
		valid:    bitarray.New(cfg.Name+".valid", lines, 1),
		data:     bitarray.New(cfg.Name+".data", lines, cfg.LineSize*8),
		dirty:    make([]bool, lines),
		lruClock: make([]uint64, lines),
		lower:    lower,
		lineBuf:  make([]byte, cfg.LineSize),
	}
	// A fault aimed at an invalid line's data can be skipped
	// immediately (the paper's invalid-entry early stop).
	c.data.SetValidFunc(func(line int) bool { return c.valid.ReadBit(line, 0) != 0 })
	c.tags.SetValidFunc(func(line int) bool { return c.valid.ReadBit(line, 0) != 0 })
	return c
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Arrays returns the injectable storage arrays of the cache: data, tag
// and valid-bit arrays.
func (c *Cache) Arrays() []*bitarray.Array {
	return []*bitarray.Array{c.data, c.tags, c.valid}
}

// DataArray returns the data array (the structure the paper's Figs. 3–5
// inject into).
func (c *Cache) DataArray() *bitarray.Array { return c.data }

func (c *Cache) setOf(addr uint64) int {
	return int(addr >> c.offBits & uint64(c.sets-1))
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> (c.offBits + c.setBits) & (1<<TagBits - 1)
}

func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineSize) - 1)
}

// lookup finds the way holding addr in its set, reading the tag and
// valid arrays (so that faults in them are observed). It returns the
// line index and whether it hit.
func (c *Cache) lookup(addr uint64) (int, bool) {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		line := base + w
		if c.valid.ReadBit(line, 0) != 0 && c.tags.ReadWord(line, 0)&(1<<TagBits-1) == tag {
			return line, true
		}
	}
	return -1, false
}

// victim picks the line to replace in the set of addr: an invalid way if
// any, else the LRU way.
func (c *Cache) victim(addr uint64) int {
	set := c.setOf(addr)
	base := set * c.cfg.Ways
	oldest, oldestClock := base, c.lruClock[base]
	for w := 0; w < c.cfg.Ways; w++ {
		line := base + w
		if c.valid.ReadBit(line, 0) == 0 {
			return line
		}
		if c.lruClock[line] < oldestClock {
			oldest, oldestClock = line, c.lruClock[line]
		}
	}
	return oldest
}

// evict removes the line, writing it back when dirty in write-back mode.
func (c *Cache) evict(line int, lat *int) {
	if c.valid.ReadBit(line, 0) == 0 {
		return
	}
	c.stats.Replacements++
	if c.dirty[line] && !c.cfg.DualCopy {
		// Write-back: the array copy — faults included — goes down.
		c.stats.Writebacks++
		c.data.ReadBytes(line, 0, c.lineBuf)
		tag := c.tags.ReadWord(line, 0) & (1<<TagBits - 1)
		set := line / c.cfg.Ways
		addr := tag<<(c.offBits+c.setBits) | uint64(set)<<c.offBits
		*lat += c.lower.WriteLine(addr, c.lineBuf)
	} else {
		// The array copy dies without being read; a live transient
		// fault in it is provably masked.
		c.data.InvalidateObserve(line)
	}
	c.dirty[line] = false
	c.valid.WriteBit(line, 0, 0)
}

// refill brings the line containing addr into the cache and returns its
// line index, accumulating latency.
func (c *Cache) refill(addr uint64, lat *int) int {
	la := c.lineAddr(addr)
	line := c.victim(la)
	c.evict(line, lat)
	*lat += c.lower.ReadLine(la, c.lineBuf)
	c.data.WriteBytes(line, 0, c.lineBuf)
	c.tags.WriteWord(line, 0, c.tagOf(la))
	c.valid.WriteBit(line, 0, 1)
	c.dirty[line] = false
	c.clock++
	c.lruClock[line] = c.clock
	return line
}

// Read copies len(dst) bytes at addr through the cache, returning the
// latency and whether every touched line hit.
func (c *Cache) Read(addr uint64, dst []byte) (lat int, hit bool) {
	hit = true
	for len(dst) > 0 {
		la := c.lineAddr(addr)
		off := int(addr - la)
		n := c.cfg.LineSize - off
		if n > len(dst) {
			n = len(dst)
		}
		lat += c.cfg.Latency
		line, ok := c.lookup(addr)
		if ok {
			c.stats.ReadHits++
		} else {
			c.stats.ReadMisses++
			hit = false
			line = c.refill(addr, &lat)
		}
		c.clock++
		c.lruClock[line] = c.clock
		c.data.ReadBytes(line, off, dst[:n])
		dst = dst[n:]
		addr += uint64(n)
	}
	return lat, hit
}

// Write stores src at addr through the cache (write-allocate), returning
// latency and hit status. In dual-copy mode the store also propagates to
// every lower level holding the line and to main memory.
func (c *Cache) Write(addr uint64, src []byte) (lat int, hit bool) {
	hit = true
	a := addr
	s := src
	for len(s) > 0 {
		la := c.lineAddr(a)
		off := int(a - la)
		n := c.cfg.LineSize - off
		if n > len(s) {
			n = len(s)
		}
		lat += c.cfg.Latency
		line, ok := c.lookup(a)
		if ok {
			c.stats.WriteHits++
		} else {
			c.stats.WriteMisses++
			hit = false
			line = c.refill(a, &lat)
		}
		c.clock++
		c.lruClock[line] = c.clock
		c.data.WriteBytes(line, off, s[:n])
		c.dirty[line] = true
		s = s[n:]
		a += uint64(n)
	}
	if c.cfg.DualCopy {
		c.lower.ShadowWrite(addr, src)
	}
	return lat, hit
}

// Prefetch brings the line holding addr into the cache if absent, with
// no demand latency accounted (the prefetcher works off the critical
// path).
func (c *Cache) Prefetch(addr uint64) {
	if _, ok := c.lookup(addr); ok {
		return
	}
	if c.lineAddr(addr)+uint64(c.cfg.LineSize) > mem.Size {
		return
	}
	c.stats.Prefetches++
	var lat int
	c.refill(addr, &lat)
}

// Present reports whether the line holding addr is cached; used by
// shadow propagation and by tests.
func (c *Cache) Present(addr uint64) bool {
	_, ok := c.lookup(addr)
	return ok
}

// FlushDirty writes every dirty valid line back down the hierarchy,
// exactly as eviction would — including any injected corruption, and at
// the address the (possibly corrupted) stored tag names. Afterwards the
// lower levels hold the architecturally authoritative data. In dual-copy
// mode main memory is already authoritative and nothing moves. Lines
// stay valid and resident; only the dirty bits clear.
func (c *Cache) FlushDirty() {
	if c.cfg.DualCopy {
		return
	}
	for line := range c.dirty {
		if !c.dirty[line] || c.valid.ReadBit(line, 0) == 0 {
			continue
		}
		c.stats.Writebacks++
		c.data.ReadBytes(line, 0, c.lineBuf)
		tag := c.tags.ReadWord(line, 0) & (1<<TagBits - 1)
		set := line / c.cfg.Ways
		addr := tag<<(c.offBits+c.setBits) | uint64(set)<<c.offBits
		c.lower.WriteLine(addr, c.lineBuf)
		c.dirty[line] = false
	}
}

// LineCaptureSafe reports whether a fault resident in the given line can
// no longer diverge a run whose RAM is about to become the only copy of
// program data: the line is invalid (its content is unreachable), or —
// in write-back mode — dirty, in which case FlushDirty pushes the
// array's content (corruption included) to RAM exactly as the eventual
// eviction would. A clean valid line is unsafe in both modes: the true
// run would keep serving the (possibly corrupt) array copy while RAM
// holds different bytes.
func (c *Cache) LineCaptureSafe(line int) bool {
	if line < 0 || line >= len(c.dirty) {
		return true
	}
	if c.valid.ReadBit(line, 0) == 0 {
		return true
	}
	return c.dirty[line] && !c.cfg.DualCopy
}

// ---- Level implementation (a cache can back another cache) ------------------

// ReadLine implements Level.
func (c *Cache) ReadLine(addr uint64, dst []byte) int {
	lat, _ := c.Read(addr, dst)
	return lat
}

// WriteLine implements Level.
func (c *Cache) WriteLine(addr uint64, src []byte) int {
	lat, _ := c.Write(addr, src)
	return lat
}

// Timing implements Level: a tags-only access that models hit/miss state,
// replacement and latency without moving data.
func (c *Cache) Timing(addr uint64, n int, write bool) int {
	lat := 0
	a := addr
	for n > 0 {
		la := c.lineAddr(a)
		seg := c.cfg.LineSize - int(a-la)
		if seg > n {
			seg = n
		}
		lat += c.cfg.Latency
		line, ok := c.lookup(a)
		if ok {
			if write {
				c.stats.WriteHits++
			} else {
				c.stats.ReadHits++
			}
		} else {
			if write {
				c.stats.WriteMisses++
			} else {
				c.stats.ReadMisses++
			}
			line = c.victim(la)
			if c.valid.ReadBit(line, 0) != 0 {
				c.stats.Replacements++
				if c.dirty[line] && !c.cfg.DualCopy {
					c.stats.Writebacks++
					lat += c.lower.Timing(la, c.cfg.LineSize, true)
				}
			}
			lat += c.lower.Timing(la, c.cfg.LineSize, false)
			c.tags.WriteWord(line, 0, c.tagOf(la))
			c.valid.WriteBit(line, 0, 1)
			c.dirty[line] = false
		}
		if write {
			c.dirty[line] = true
		}
		c.clock++
		c.lruClock[line] = c.clock
		n -= seg
		a += uint64(seg)
	}
	return lat
}

// ShadowWrite implements Level: update the array copy if the line is
// present (without disturbing LRU or stats), then pass the data down.
func (c *Cache) ShadowWrite(addr uint64, src []byte) {
	a := addr
	s := src
	for len(s) > 0 {
		la := c.lineAddr(a)
		off := int(a - la)
		n := c.cfg.LineSize - off
		if n > len(s) {
			n = len(s)
		}
		if line, ok := c.lookup(a); ok {
			c.data.WriteBytes(line, off, s[:n])
		}
		s = s[n:]
		a += uint64(n)
	}
	c.lower.ShadowWrite(addr, src)
}
