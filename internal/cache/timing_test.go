package cache

import (
	"testing"

	"repro/internal/mem"
)

// TestTimingModeMatchesDataModeBehaviour drives the same access pattern
// through a data-moving hierarchy and a tags-only one: hit/miss
// accounting and latency must match exactly (the §III.C ablation keeps
// the timing model of the original MARSS).
func TestTimingModeMatchesDataModeBehaviour(t *testing.T) {
	mkPattern := func() []struct {
		addr  uint64
		n     int
		write bool
	} {
		var ops []struct {
			addr  uint64
			n     int
			write bool
		}
		state := uint64(99)
		for i := 0; i < 3000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			addr := 0x100000 + state%(40<<10)
			n := int(state>>40%8) + 1
			ops = append(ops, struct {
				addr  uint64
				n     int
				write bool
			}{addr, n, state>>60%3 == 0})
		}
		return ops
	}

	dataL1, _, _ := newHierarchy(false)
	timingL1, _, _ := newHierarchy(false)
	buf := make([]byte, 8)
	for _, op := range mkPattern() {
		var latA, latB int
		if op.write {
			latA, _ = dataL1.Write(op.addr, buf[:op.n])
			latB = timingL1.Timing(op.addr, op.n, true)
		} else {
			latA, _ = dataL1.Read(op.addr, buf[:op.n])
			latB = timingL1.Timing(op.addr, op.n, false)
		}
		if latA != latB {
			t.Fatalf("latency diverged at %#x n=%d write=%v: %d vs %d",
				op.addr, op.n, op.write, latA, latB)
		}
	}
	a, b := dataL1.Stats(), timingL1.Stats()
	if a.ReadHits != b.ReadHits || a.ReadMisses != b.ReadMisses ||
		a.WriteHits != b.WriteHits || a.WriteMisses != b.WriteMisses ||
		a.Replacements != b.Replacements || a.Writebacks != b.Writebacks {
		t.Fatalf("stats diverged:\n data:   %+v\n timing: %+v", a, b)
	}
}

func TestTimingModeMovesNoData(t *testing.T) {
	m := mem.New()
	m.RawWrite(0x2000, []byte{0xAB})
	c := New(Config{Name: "c", Size: 4 << 10, LineSize: 64, Ways: 2, Latency: 1},
		MemLevel{M: m, Lat: 10})
	c.Timing(0x2000, 1, false)
	// The line is now resident for timing purposes…
	if lat := c.Timing(0x2000, 1, false); lat != 1 {
		t.Fatalf("warm timing lat %d", lat)
	}
	// …but its data array was never filled.
	buf := make([]byte, 1)
	c.DataArray().ReadBytes(lineIndexOf(c, 0x2000), 0, buf)
	if buf[0] != 0 {
		t.Fatal("timing mode moved data into the array")
	}
}
