package svc_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/svc"
	"repro/internal/svc/api"
	"repro/internal/svc/client"
	"repro/internal/telemetry"
)

// newService builds a service over fresh spool/logs/index directories
// rooted at dir.
func newService(t *testing.T, dir string, mut func(*svc.Options)) *svc.Service {
	t.Helper()
	logs, err := core.NewLogsRepo(filepath.Join(dir, "logs"))
	if err != nil {
		t.Fatal(err)
	}
	spool, err := svc.OpenSpool(filepath.Join(dir, "spool"))
	if err != nil {
		t.Fatal(err)
	}
	index, err := fault.NewResultIndex(filepath.Join(dir, "index"))
	if err != nil {
		t.Fatal(err)
	}
	opt := svc.Options{
		Logs:      logs,
		Spool:     spool,
		Index:     index,
		Resolve:   cli.Resolve,
		ShardSize: 4,
		LeaseTTL:  10 * time.Second,
	}
	if mut != nil {
		mut(&opt)
	}
	s, err := svc.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startWorker runs a fleet worker against the service URL until the
// returned stop function is called.
func startWorker(t *testing.T, url, id string) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- dist.RunWorker(ctx, url, dist.WorkerOptions{
			ID:      id,
			Resolve: cli.Resolve,
			Poll:    20 * time.Millisecond,
		})
	}()
	return func() {
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("worker %s: %v", id, err)
		}
	}
}

// singleNodeReference runs cfg through core.RunConfig and returns the
// per-key log bytes and the trace bytes — the semantics every service
// campaign must reproduce exactly.
func singleNodeReference(t *testing.T, cfg core.CampaignConfig) (map[string][]byte, []byte) {
	t.Helper()
	collector := telemetry.New()
	sink := telemetry.NewTraceSink()
	collector.AddSink(sink)
	results, err := core.RunConfig(cfg, cli.Resolve, core.Attach{
		Golden: core.NewGoldenCache(), Telemetry: collector,
	})
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	logs, err := core.NewLogsRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for i, key := range cfg.Keys() {
		if err := logs.Store(key, results[i]); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(logs.Dir(), key+".log.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		out[key] = b
	}
	var trace bytes.Buffer
	if err := sink.Flush(&trace); err != nil {
		t.Fatal(err)
	}
	return out, trace.Bytes()
}

// compareCampaignArtifacts reads the service-side logs and trace of a
// campaign and compares them byte-for-byte against the reference.
func compareCampaignArtifacts(t *testing.T, logsDir string, cfg core.CampaignConfig, wantLogs map[string][]byte, wantTrace []byte) {
	t.Helper()
	keys := cfg.Keys()
	for _, key := range keys {
		got, err := os.ReadFile(filepath.Join(logsDir, key+".log.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantLogs[key]) {
			t.Errorf("logs for %s differ from single-node reference (%d vs %d bytes)", key, len(got), len(wantLogs[key]))
		}
	}
	traceKey := "matrix"
	if len(keys) == 1 {
		traceKey = keys[0]
	}
	got, err := os.ReadFile(filepath.Join(logsDir, traceKey+".trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantTrace) {
		t.Errorf("trace differs from single-node reference (%d vs %d bytes)", len(got), len(wantTrace))
	}
}

func waitState(t *testing.T, cl *client.Client, id string, pred func(api.CampaignStatus) bool, what string) api.CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := cl.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %s (state %s, %d/%d shards)", id, what, st.State, st.ShardsCompleted, st.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceTwoTenantsEndToEnd is the service acceptance differential:
// two tenants submit campaigns over /v1, one shared fleet worker (which
// joins late) runs them, one campaign is cancelled mid-run, and the
// completed one's logs and trace are byte-identical to a single-node
// RunConfig of the same config.
func TestServiceTwoTenantsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s := newService(t, dir, func(o *svc.Options) {
		o.Tenants = []svc.Tenant{
			{Name: "alice", Token: "tok-alice"},
			{Name: "bob", Token: "tok-bob"},
		}
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx := context.Background()

	clA := client.New(srv.URL, client.WithToken("tok-alice"))
	clB := client.New(srv.URL, client.WithToken("tok-bob"))

	// Unauthenticated and wrongly-authenticated requests get the
	// envelope, not data.
	var ae *api.Error
	if _, err := client.New(srv.URL).List(ctx); !client.AsError(err, &ae) || ae.Code != api.CodeUnauthorized {
		t.Fatalf("tokenless list: got %v, want unauthorized", err)
	}
	if _, err := client.New(srv.URL, client.WithToken("bogus")).List(ctx); !client.AsError(err, &ae) || ae.Code != api.CodeUnauthorized {
		t.Fatalf("bogus-token list: got %v, want unauthorized", err)
	}

	cfgA := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 12,
		Seed:       7,
	}
	cfgB := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "lsq.data"}},
		Injections: 60,
		Seed:       9,
	}
	stA, err := clA.Submit(ctx, api.SubmitRequest{Name: "alice-run", Options: api.SubmitOptions{Trace: true}, Config: cfgA})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	stB, err := clB.Submit(ctx, api.SubmitRequest{Name: "bob-run", Config: cfgB})
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	if stA.ID == stB.ID {
		t.Fatalf("both campaigns got ID %s", stA.ID)
	}

	// Tenant isolation: bob cannot see (or cancel) alice's campaign.
	if _, err := clB.Get(ctx, stA.ID); !client.AsError(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("cross-tenant get: got %v, want not_found", err)
	}
	if _, err := clB.Cancel(ctx, stA.ID); !client.AsError(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("cross-tenant cancel: got %v, want not_found", err)
	}

	// The worker joins after both submissions.
	stop := startWorker(t, srv.URL, "late-worker")
	defer stop()

	final, err := clA.Wait(ctx, stA.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait A: %v", err)
	}
	if final.State != api.StateDone {
		t.Fatalf("campaign A finished %s (%s), want done", final.State, final.Error)
	}

	// Cancel B once it is demonstrably mid-run, then verify its leases
	// are released: the campaign goes terminal with cancelled shards and
	// a fresh lease finds no work in it.
	waitState(t, clB, stB.ID, func(st api.CampaignStatus) bool {
		return st.State == api.StateRunning && st.ShardsCompleted >= 1
	}, "running with a completed shard")
	if _, err := clB.Cancel(ctx, stB.ID); err != nil {
		t.Fatalf("cancel B: %v", err)
	}
	finalB, err := clB.Wait(ctx, stB.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait B: %v", err)
	}
	if finalB.State != api.StateCancelled {
		t.Fatalf("campaign B finished %s, want cancelled", finalB.State)
	}
	if finalB.ShardsCancelled == 0 {
		t.Fatalf("cancelled campaign retired no shards: %+v", finalB)
	}
	if lease := s.Lease("probe-worker"); lease.Status != api.StatusWait {
		t.Fatalf("lease after cancel: %s (campaign %s), want wait", lease.Status, lease.CampaignID)
	}

	// Byte-identity for the completed campaign.
	wantLogs, wantTrace := singleNodeReference(t, cfgA)
	compareCampaignArtifacts(t, filepath.Join(dir, "logs", stA.ID), cfgA, wantLogs, wantTrace)

	// Results are served from the index, with sane aggregates.
	res, err := clA.Results(ctx, stA.ID)
	if err != nil {
		t.Fatalf("results A: %v", err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Runs != cfgA.Injections {
		t.Fatalf("results A: %+v, want 1 cell with %d runs", res.Cells, cfgA.Injections)
	}
	total := 0.0
	for _, share := range res.Cells[0].Shares {
		total += share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("outcome shares sum to %f, want 1", total)
	}
	// The cancelled campaign has no index entry.
	if _, err := clB.Results(ctx, stB.ID); !client.AsError(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("results for cancelled campaign: got %v, want not_found", err)
	}
}

// TestServiceQuotasAndPriorities exercises the scheduler without any
// workers: per-tenant concurrency holds a second campaign in the
// queue until the first leaves, and the per-tenant open-campaign cap
// rejects further submissions with quota_exceeded.
func TestServiceQuotasAndPriorities(t *testing.T) {
	dir := t.TempDir()
	s := newService(t, dir, func(o *svc.Options) {
		o.Tenants = []svc.Tenant{{Name: "bob", Token: "tok-bob", MaxActive: 1}}
		o.MaxQueuedPerTenant = 2
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx := context.Background()
	cl := client.New(srv.URL, client.WithToken("tok-bob"))

	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 10,
		Seed:       3,
	}
	st1, err := cl.Submit(ctx, api.SubmitRequest{Name: "first", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := cl.Submit(ctx, api.SubmitRequest{Name: "second", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var ae *api.Error
	if _, err := cl.Submit(ctx, api.SubmitRequest{Name: "third", Config: cfg}); !client.AsError(err, &ae) || ae.Code != api.CodeQuotaExceeded {
		t.Fatalf("third submit: got %v, want quota_exceeded", err)
	}

	// The first campaign occupies bob's single slot; the second stays
	// queued even though the service-wide limit has room.
	waitState(t, cl, st1.ID, func(st api.CampaignStatus) bool { return st.State == api.StateRunning }, "running")
	if st, _ := cl.Get(ctx, st2.ID); st.State != api.StateQueued {
		t.Fatalf("second campaign is %s, want queued behind the quota", st.State)
	}
	if _, err := cl.Cancel(ctx, st1.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, st1.ID, func(st api.CampaignStatus) bool { return st.State == api.StateCancelled }, "cancelled")
	// The freed slot starts the queued campaign.
	waitState(t, cl, st2.ID, func(st api.CampaignStatus) bool { return st.State != api.StateQueued }, "scheduled")
	if _, err := cl.Cancel(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, st2.ID, func(st api.CampaignStatus) bool { return api.TerminalState(st.State) }, "terminal")
}

// TestServiceRestartResume is the durability acceptance: a journaling
// campaign interrupted by a daemon "crash" (service abandoned mid-run)
// is re-enqueued by a new service on the same spool, resumes from the
// journal without duplicating or losing runs, and its final logs and
// trace are byte-identical to an uninterrupted single-node run.
func TestServiceRestartResume(t *testing.T) {
	dir := t.TempDir()
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 40,
		Seed:       3,
	}
	ctx := context.Background()

	s1 := newService(t, dir, nil)
	srv1 := httptest.NewServer(s1.Handler())
	cl1 := client.New(srv1.URL)
	st, err := cl1.Submit(ctx, api.SubmitRequest{
		Name:    "durable",
		Options: api.SubmitOptions{Trace: true, Journal: true},
		Config:  cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop1 := startWorker(t, srv1.URL, "w1")
	waitState(t, cl1, st.ID, func(s api.CampaignStatus) bool {
		return s.ShardsCompleted >= 2 && !api.TerminalState(s.State)
	}, "mid-run with merged shards")
	// "Crash": stop the worker and the HTTP plane, then shut the
	// service down. Close leaves the running campaign's spool entry
	// live — exactly what a SIGKILL would have left behind.
	stop1()
	srv1.Close()
	s1.Close()

	s2 := newService(t, dir, nil)
	defer s2.Close()
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	cl2 := client.New(srv2.URL)

	got, err := cl2.Get(ctx, st.ID)
	if err != nil {
		t.Fatalf("restarted service lost campaign %s: %v", st.ID, err)
	}
	if !got.Resumed {
		t.Fatalf("restored campaign not marked resumed: %+v", got)
	}
	stop2 := startWorker(t, srv2.URL, "w2")
	defer stop2()
	final, err := cl2.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("resumed campaign finished %s (%s), want done", final.State, final.Error)
	}

	wantLogs, wantTrace := singleNodeReference(t, cfg)
	compareCampaignArtifacts(t, filepath.Join(dir, "logs", st.ID), cfg, wantLogs, wantTrace)
}

// TestServiceWorkerPlaneEnvelope pins the /v1 error contract the
// fleet worker depends on: /v1/config answers the not_found envelope
// (the fleet-mode trigger) and unknown paths answer not_found too.
func TestServiceWorkerPlaneEnvelope(t *testing.T) {
	s := newService(t, t.TempDir(), nil)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cl := client.New(srv.URL, client.WithRetry(1, time.Millisecond))
	ctx := context.Background()

	var ae *api.Error
	if _, err := cl.Config(ctx); !client.AsError(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("GET /v1/config: got %v, want not_found envelope", err)
	}
	if _, err := cl.CampaignConfig(ctx, "nope"); !client.AsError(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("GET /v1/campaigns/nope/config: got %v, want not_found", err)
	}
	// With no campaigns submitted, leases wait (the fleet idles).
	lease, err := cl.Lease(ctx, "w0")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Status != api.StatusWait {
		t.Fatalf("lease on empty service: %s, want wait", lease.Status)
	}
	if lease.WaitMS <= 0 {
		t.Fatalf("wait lease carries no backoff hint: %+v", lease)
	}
}
