package svc

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dist"
	"repro/internal/svc/api"
)

// tenantFor authenticates a campaign-API request. In open mode (no
// tenants configured) every request acts as the anonymous tenant.
func (s *Service) tenantFor(r *http.Request) (string, *api.Error) {
	if len(s.byToken) == 0 {
		return "", nil
	}
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if !strings.HasPrefix(h, prefix) {
		return "", apiErr(http.StatusUnauthorized, api.CodeUnauthorized, "missing bearer token")
	}
	t := s.byToken[strings.TrimSpace(strings.TrimPrefix(h, prefix))]
	if t == nil {
		return "", apiErr(http.StatusUnauthorized, api.CodeUnauthorized, "unknown token")
	}
	return t.Name, nil
}

func writeAPIError(w http.ResponseWriter, err error) {
	var ae *api.Error
	if errors.As(err, &ae) {
		api.WriteError(w, ae.StatusCode, ae.Code, "%s", ae.Message)
		return
	}
	api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
}

// authed wraps a campaign-API handler with bearer authentication.
func (s *Service) authed(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, aerr := s.tenantFor(r)
		if aerr != nil {
			writeAPIError(w, aerr)
			return
		}
		h(w, r, tenant)
	}
}

func (s *Service) campaignByID(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.camps[id]
}

// Handler returns the service's full /v1 HTTP surface: the tenant
// campaign API, the campaign-scoped worker and observability plane,
// the fleet worker protocol, and the service-wide telemetry endpoints
// (with their deprecated unprefixed aliases).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	// Campaign queue API (bearer-authenticated when tenants are set).
	mux.HandleFunc("/v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		tenant, aerr := s.tenantFor(r)
		if aerr != nil {
			writeAPIError(w, aerr)
			return
		}
		switch r.Method {
		case http.MethodGet:
			api.WriteJSON(w, s.List(tenant))
		case http.MethodPost:
			var req api.SubmitRequest
			if !api.ReadJSON(w, r, &req) {
				return
			}
			st, err := s.Submit(tenant, req)
			if err != nil {
				writeAPIError(w, err)
				return
			}
			api.WriteJSON(w, st)
		default:
			api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "GET or POST only")
		}
	})
	mux.HandleFunc("/v1/campaigns/{id}", dist.MethodOnly(http.MethodGet,
		s.authed(func(w http.ResponseWriter, r *http.Request, tenant string) {
			st, err := s.Get(tenant, r.PathValue("id"))
			if err != nil {
				writeAPIError(w, err)
				return
			}
			api.WriteJSON(w, st)
		})))
	mux.HandleFunc("/v1/campaigns/{id}/cancel", dist.MethodOnly(http.MethodPost,
		s.authed(func(w http.ResponseWriter, r *http.Request, tenant string) {
			st, err := s.Cancel(tenant, r.PathValue("id"))
			if err != nil {
				writeAPIError(w, err)
				return
			}
			api.WriteJSON(w, st)
		})))
	mux.HandleFunc("/v1/campaigns/{id}/results", dist.MethodOnly(http.MethodGet,
		s.authed(func(w http.ResponseWriter, r *http.Request, tenant string) {
			res, err := s.Results(tenant, r.PathValue("id"))
			if err != nil {
				writeAPIError(w, err)
				return
			}
			api.WriteJSON(w, res)
		})))

	// Campaign-scoped worker and observability plane (open: workers and
	// dashboards are deployment infrastructure, not tenants).
	mux.HandleFunc("/v1/campaigns/{id}/config", dist.MethodOnly(http.MethodGet,
		func(w http.ResponseWriter, r *http.Request) {
			resp, err := s.CampaignConfig(r.PathValue("id"))
			if err != nil {
				writeAPIError(w, err)
				return
			}
			api.WriteJSON(w, resp)
		}))
	mux.HandleFunc("/v1/campaigns/{id}/snapshot.json", dist.MethodOnly(http.MethodGet,
		func(w http.ResponseWriter, r *http.Request) {
			c := s.campaignByID(r.PathValue("id"))
			if c == nil || c.tel == nil {
				api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no telemetry for campaign %q", r.PathValue("id"))
				return
			}
			b, err := c.tel.Snapshot().JSON()
			if err != nil {
				api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(b, '\n'))
		}))
	mux.HandleFunc("/v1/campaigns/{id}/metrics", dist.MethodOnly(http.MethodGet,
		func(w http.ResponseWriter, r *http.Request) {
			c := s.campaignByID(r.PathValue("id"))
			if c == nil || c.tel == nil {
				api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no telemetry for campaign %q", r.PathValue("id"))
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			c.tel.Snapshot().WritePrometheus(w)
		}))
	mux.HandleFunc("/v1/campaigns/{id}/fleet.json", dist.MethodOnly(http.MethodGet,
		func(w http.ResponseWriter, r *http.Request) {
			c := s.campaignByID(r.PathValue("id"))
			if c == nil || c.coord == nil {
				api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no fleet view for campaign %q", r.PathValue("id"))
				return
			}
			api.WriteJSON(w, c.coord.Fleet())
		}))
	mux.HandleFunc("/v1/campaigns/{id}/events", dist.MethodOnly(http.MethodGet,
		func(w http.ResponseWriter, r *http.Request) {
			c := s.campaignByID(r.PathValue("id"))
			if c == nil || c.events == nil {
				api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no event stream for campaign %q", r.PathValue("id"))
				return
			}
			c.events.ServeHTTP(w, r)
		}))

	// Fleet worker protocol. /v1/config deliberately answers not_found:
	// that is how a worker learns it joined a multi-campaign service and
	// must fetch per-campaign configs named by its leases.
	mux.HandleFunc("/v1/config", dist.MethodOnly(http.MethodGet,
		func(w http.ResponseWriter, r *http.Request) {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound,
				"multi-campaign service: leases name their campaign; fetch /v1/campaigns/{id}/config")
		}))
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req api.LeaseRequest
		if !api.ReadJSON(w, r, &req) {
			return
		}
		if req.WorkerID == "" {
			api.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "worker_id is required")
			return
		}
		api.WriteJSON(w, s.Lease(req.WorkerID))
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req api.HeartbeatRequest
		if !api.ReadJSON(w, r, &req) {
			return
		}
		api.WriteJSON(w, s.Heartbeat(req))
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req api.CompleteRequest
		if !api.ReadJSON(w, r, &req) {
			return
		}
		api.WriteJSON(w, s.Complete(req))
	})
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var req api.SnapshotRequest
		if !api.ReadJSON(w, r, &req) {
			return
		}
		api.WriteJSON(w, s.PushSnapshot(req))
	})

	// Service-wide observability plane (plus unprefixed deprecated
	// aliases).
	dist.MountObs(mux, dist.ObsEndpoints{
		Snapshot: s.FleetSnapshot,
		Fleet:    s.Fleet,
		Events:   http.HandlerFunc(s.serveEvents),
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no such endpoint: %s", r.URL.Path)
			return
		}
		fmt.Fprintln(w, "faultcampd service: /v1/campaigns  /v1/campaigns/{id}{,/cancel,/results,/config,/events,/snapshot.json,/metrics,/fleet.json}  /v1/{lease,heartbeat,complete,snapshot}  /v1/{snapshot.json,metrics,fleet.json,events}")
	})
	return mux
}

// serveEvents is the service-root SSE feed: it follows the liveliest
// campaign (the newest non-terminal one, or the newest overall), which
// makes the root endpoint behave exactly like the single-campaign
// coordinator's when only one campaign exists.
func (s *Service) serveEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var best *campaign
	for _, c := range s.camps {
		if c.events == nil {
			continue
		}
		if best == nil {
			best = c
			continue
		}
		bestLive := !api.TerminalState(best.entry.State)
		live := !api.TerminalState(c.entry.State)
		if live != bestLive {
			if live {
				best = c
			}
			continue
		}
		if c.entry.Seq > best.entry.Seq {
			best = c
		}
	}
	s.mu.Unlock()
	if best == nil {
		api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no campaign event stream yet")
		return
	}
	best.events.ServeHTTP(w, r)
}
