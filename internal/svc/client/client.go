// Package client is the Go client of the campaign service's /v1 HTTP
// API — the one request path shared by the fleet worker, the faultctl
// CLI and the one-shot compatibility mode of faultcampd. It owns the
// concerns every ad-hoc http.Post call used to reimplement: typed
// envelope errors, context cancellation, and retry-with-backoff on
// connection errors and 5xx responses (a daemon restarting mid-campaign
// looks like a brief connection refusal; the retry budget is sized to
// ride it out).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/svc/api"
	"repro/internal/telemetry"
)

// Client talks to one campaign-service (or single-campaign
// coordinator) base URL.
type Client struct {
	base       string
	hc         *http.Client
	token      string
	attempts   int
	backoff    time.Duration
	maxBackoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithToken sends the tenant API token as a Bearer credential.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// WithHTTPClient substitutes the HTTP client (tests, custom timeouts).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry overrides the retry budget: attempts total tries with
// exponential backoff starting at base (capped at 2s between tries).
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) {
		if attempts > 0 {
			c.attempts = attempts
		}
		if base > 0 {
			c.backoff = base
		}
	}
}

// New builds a client for the service at base (e.g. "http://host:port").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimSuffix(base, "/"),
		hc:         &http.Client{Timeout: 60 * time.Second},
		attempts:   8,
		backoff:    100 * time.Millisecond,
		maxBackoff: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the service base URL.
func (c *Client) Base() string { return c.base }

// do runs one JSON round trip with the retry policy: connection errors
// and 5xx envelopes retry with exponential backoff; 4xx envelopes and
// context cancellation return immediately. out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding %s %s: %w", method, path, err)
		}
		body = b
	}
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff << (attempt - 1)
			if delay > c.maxBackoff {
				delay = c.maxBackoff
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		var rd *bytes.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err // connection refused, reset, timeout: retryable
			continue
		}
		if resp.StatusCode != http.StatusOK {
			apiErr := api.DecodeError(resp.StatusCode, resp.Body)
			resp.Body.Close()
			if apiErr.IsRetryable() {
				lastErr = apiErr
				continue
			}
			return apiErr
		}
		if out == nil {
			resp.Body.Close()
			return nil
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("client: decoding %s %s: %w", method, path, err)
		}
		return nil
	}
	return fmt.Errorf("client: %s %s%s: %w", method, c.base, path, lastErr)
}

// Retryable reports whether an error from this client is transient —
// a connection failure or a 5xx envelope that outlived the retry
// budget — rather than a definitive 4xx answer.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *api.Error
	if AsError(err, &apiErr) {
		return apiErr.IsRetryable()
	}
	// Network-level failure (no envelope ever arrived).
	return true
}

// AsError unwraps an *api.Error from err, mirroring errors.As without
// making every caller import errors for one call.
func AsError(err error, target **api.Error) bool {
	for err != nil {
		if e, ok := err.(*api.Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ----- worker protocol -----

// Config fetches the single-campaign coordinator config.
func (c *Client) Config(ctx context.Context) (api.ConfigResponse, error) {
	var out api.ConfigResponse
	err := c.do(ctx, http.MethodGet, "/v1/config", nil, &out)
	return out, err
}

// CampaignConfig fetches one service campaign's config by ID.
func (c *Client) CampaignConfig(ctx context.Context, id string) (api.ConfigResponse, error) {
	var out api.ConfigResponse
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/config", nil, &out)
	return out, err
}

// Lease polls for a shard assignment.
func (c *Client) Lease(ctx context.Context, workerID string) (api.LeaseResponse, error) {
	var out api.LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/lease", api.LeaseRequest{WorkerID: workerID}, &out)
	return out, err
}

// Heartbeat extends a shard lease.
func (c *Client) Heartbeat(ctx context.Context, req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	var out api.HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/heartbeat", req, &out)
	return out, err
}

// Complete delivers a shard result.
func (c *Client) Complete(ctx context.Context, req api.CompleteRequest) (api.CompleteResponse, error) {
	var out api.CompleteResponse
	err := c.do(ctx, http.MethodPost, "/v1/complete", req, &out)
	return out, err
}

// PushSnapshot pushes a worker telemetry snapshot to the fleet plane.
func (c *Client) PushSnapshot(ctx context.Context, req api.SnapshotRequest) (api.SnapshotResponse, error) {
	var out api.SnapshotResponse
	err := c.do(ctx, http.MethodPost, "/v1/snapshot", req, &out)
	return out, err
}

// ----- campaign service -----

// Submit enqueues a campaign and returns its initial status.
func (c *Client) Submit(ctx context.Context, req api.SubmitRequest) (api.CampaignStatus, error) {
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SubmitSchemaVersion
	}
	var out api.CampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", req, &out)
	return out, err
}

// Get fetches one campaign's status.
func (c *Client) Get(ctx context.Context, id string) (api.CampaignStatus, error) {
	var out api.CampaignStatus
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &out)
	return out, err
}

// List fetches every campaign visible to the caller's tenant.
func (c *Client) List(ctx context.Context) (api.CampaignList, error) {
	var out api.CampaignList
	err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Cancel requests cancellation and returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (api.CampaignStatus, error) {
	var out api.CampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns/"+id+"/cancel", nil, &out)
	return out, err
}

// Results fetches the indexed per-cell outcome breakdowns.
func (c *Client) Results(ctx context.Context, id string) (api.ResultsResponse, error) {
	var out api.ResultsResponse
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/results", nil, &out)
	return out, err
}

// Snapshot fetches one campaign's merged telemetry snapshot — the
// single-node-equivalent collector view.
func (c *Client) Snapshot(ctx context.Context, id string) (telemetry.Snapshot, error) {
	var out telemetry.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/snapshot.json", nil, &out)
	return out, err
}

// FleetSnapshot fetches the service-wide fleet aggregation (the
// /v1/snapshot.json view).
func (c *Client) FleetSnapshot(ctx context.Context) (telemetry.Snapshot, error) {
	var out telemetry.Snapshot
	err := c.do(ctx, http.MethodGet, "/v1/snapshot.json", nil, &out)
	return out, err
}

// Fleet fetches the service-wide per-worker accounting.
func (c *Client) Fleet(ctx context.Context) ([]api.WorkerStatus, error) {
	var out []api.WorkerStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet.json", nil, &out)
	return out, err
}

// Wait polls a campaign until it reaches a terminal state. Transient
// errors (the daemon restarting) keep polling; definitive 4xx answers
// abort.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (api.CampaignStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			if !Retryable(err) {
				return st, err
			}
		} else if api.TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return api.CampaignStatus{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}
