// Package svc is the always-on campaign service behind faultcampd: a
// durable submission queue, a per-tenant quota and priority scheduler,
// and a campaign lifecycle engine that multiplexes many distributed
// coordinators over one shared worker fleet. Campaign state lives in a
// spool directory (one JSON file per campaign, written atomically), so
// queued and running campaigns survive a daemon crash: on restart the
// service re-enqueues them and — when they journaled their runs —
// resumes them through the coordinator's exactly-once replay instead of
// re-running from scratch.
package svc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/svc/api"
)

// SpoolSchemaVersion stamps spool entries so a future daemon can tell
// old campaign files from new ones.
const SpoolSchemaVersion = 1

// SpoolEntry is the durable record of one submitted campaign — the
// whole submission (config and artifact options included) plus the
// lifecycle bookkeeping, so a restarted daemon can rebuild its queue
// from the spool directory alone.
type SpoolEntry struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	// Seq is the service-wide submission sequence number; it breaks
	// priority ties (earlier submissions first) and seeds ID generation
	// after a restart.
	Seq      int64  `json:"seq"`
	Tenant   string `json:"tenant,omitempty"`
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority,omitempty"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	// Resumed marks a campaign that was live (planning or beyond) when
	// the previous daemon died and was re-enqueued on restart.
	Resumed         bool  `json:"resumed,omitempty"`
	SubmittedUnixNS int64 `json:"submitted_unix_ns,omitempty"`
	StartedUnixNS   int64 `json:"started_unix_ns,omitempty"`
	FinishedUnixNS  int64 `json:"finished_unix_ns,omitempty"`

	Options api.SubmitOptions   `json:"options"`
	Config  core.CampaignConfig `json:"config"`
}

// Spool is the on-disk campaign queue: one <id>.json file per
// campaign, each written whole via temp-file-and-rename so a crash
// mid-write can never leave a torn entry (the previous state survives
// instead).
type Spool struct {
	dir string
}

// OpenSpool opens (creating if needed) a spool directory.
func OpenSpool(dir string) (*Spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("svc: creating spool: %w", err)
	}
	return &Spool{dir: dir}, nil
}

// Dir returns the spool root.
func (s *Spool) Dir() string { return s.dir }

func (s *Spool) file(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Put writes (atomically, replacing) one campaign's durable state.
func (s *Spool) Put(e *SpoolEntry) error {
	err := fault.AtomicWrite(s.file(e.ID), func(w *bufio.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(e)
	})
	if err != nil {
		return fmt.Errorf("svc: spooling campaign %s: %w", e.ID, err)
	}
	return nil
}

// Scan loads every spooled campaign, sorted by submission sequence.
func (s *Spool) Scan() ([]*SpoolEntry, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("svc: scanning spool: %w", err)
	}
	var out []*SpoolEntry
	for _, de := range ents {
		name := de.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("svc: scanning spool: %w", err)
		}
		var e SpoolEntry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("svc: spool entry %s: %w", name, err)
		}
		if e.SchemaVersion > SpoolSchemaVersion {
			return nil, fmt.Errorf("svc: spool entry %s: schema version %d newer than this build (%d)",
				name, e.SchemaVersion, SpoolSchemaVersion)
		}
		if e.ID != strings.TrimSuffix(name, ".json") {
			return nil, fmt.Errorf("svc: spool entry %s names campaign %q", name, e.ID)
		}
		out = append(out, &e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
