package svc

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/divergence"
	"repro/internal/fault"
	"repro/internal/svc/api"
	"repro/internal/telemetry"
)

// Tenant is one API tenant of the campaign service: a bearer token and
// a concurrency quota. With no tenants configured the service runs in
// open mode — every request acts as the anonymous tenant with no quota.
type Tenant struct {
	Name  string
	Token string
	// MaxActive caps the tenant's concurrently running campaigns;
	// submissions beyond it queue until a slot frees. 0 means no cap.
	MaxActive int
}

// Options configure a Service.
type Options struct {
	// Logs is the root logs repository. Campaign artifacts go into a
	// per-campaign subdirectory unless the submission asks for Flat.
	Logs *core.LogsRepo
	// Spool is the durable campaign queue.
	Spool *Spool
	// Index is the queryable result repository fed at finalize time.
	Index *fault.ResultIndex
	// Resolve maps (tool, benchmark) to a simulator factory — the
	// service validates submissions against it and builds the mask
	// populations an adaptive or resumed coordinator needs.
	Resolve core.Resolver

	// Tenants enables bearer-token authentication; empty runs open.
	Tenants []Tenant
	// MaxActive caps concurrently running campaigns service-wide
	// (default 4). MaxQueuedPerTenant, when set, bounds a tenant's
	// non-terminal campaigns — submissions beyond it are rejected with
	// quota_exceeded rather than queued.
	MaxActive          int
	MaxQueuedPerTenant int

	// Coordinator knobs, shared by every campaign.
	ShardSize    int
	LeaseTTL     time.Duration
	MaxRetries   int
	RetryBackoff time.Duration

	// ExitWhenIdle makes the lease endpoint answer "done" once every
	// submitted campaign is terminal, so a fleet drains and exits —
	// the one-shot compatibility mode. An always-on service leaves it
	// off and workers idle-poll between campaigns.
	ExitWhenIdle bool

	Logf func(format string, args ...any)

	now func() time.Time // test hook
}

// campaign is the in-memory lifecycle state of one spooled campaign.
// The entry is the durable truth; everything else is live plumbing,
// nil until the campaign starts (and for terminal campaigns restored
// from the spool).
type campaign struct {
	entry *SpoolEntry

	coord   *dist.Coordinator
	tel     *telemetry.Collector
	events  *telemetry.EventStream
	trace   *telemetry.TraceSink
	spanBuf *telemetry.SpanBuffer
	dsink   *divergence.Sink
	logs    *core.LogsRepo

	// cancelReason, once set, cancels the campaign as soon as a
	// coordinator exists — it covers the gap where a cancel lands
	// while the campaign is still planning.
	cancelReason string
}

// workerView is the service-level fleet plane: one row per worker that
// has leased, completed or pushed a snapshot, across all campaigns.
type workerView struct {
	lastSeen time.Time
	snap     *telemetry.Snapshot
	final    bool
}

// Service is the always-on multi-campaign engine: it owns the spool,
// schedules queued campaigns under the quotas, runs each through its
// own dist.Coordinator, and multiplexes one shared worker fleet across
// all of them (leases carry the campaign ID).
type Service struct {
	opt     Options
	byName  map[string]*Tenant
	byToken map[string]*Tenant

	stopCh chan struct{}
	wg     sync.WaitGroup

	mu      sync.Mutex
	seq     int64
	camps   map[string]*campaign
	workers map[string]*workerView
	closed  bool
}

// New builds a Service, restoring the spool: terminal campaigns become
// queryable history, queued ones re-enter the queue, and campaigns
// that were live when the previous daemon died are re-enqueued with
// Resumed set — when they journaled their runs, their coordinators
// replay the journals instead of re-running finished masks.
func New(opt Options) (*Service, error) {
	if opt.Logs == nil || opt.Spool == nil || opt.Index == nil || opt.Resolve == nil {
		return nil, errors.New("svc: Logs, Spool, Index and Resolve are required")
	}
	if opt.MaxActive <= 0 {
		opt.MaxActive = 4
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	if opt.now == nil {
		opt.now = time.Now
	}
	s := &Service{
		opt:     opt,
		byName:  make(map[string]*Tenant),
		byToken: make(map[string]*Tenant),
		stopCh:  make(chan struct{}),
		camps:   make(map[string]*campaign),
		workers: make(map[string]*workerView),
	}
	for i := range opt.Tenants {
		t := &opt.Tenants[i]
		if t.Name == "" || t.Token == "" {
			return nil, fmt.Errorf("svc: tenant %d: name and token are required", i)
		}
		if _, dup := s.byName[t.Name]; dup {
			return nil, fmt.Errorf("svc: duplicate tenant %q", t.Name)
		}
		if _, dup := s.byToken[t.Token]; dup {
			return nil, fmt.Errorf("svc: tenants %q and %q share a token", s.byToken[t.Token].Name, t.Name)
		}
		s.byName[t.Name] = t
		s.byToken[t.Token] = t
	}
	entries, err := opt.Spool.Scan()
	if err != nil {
		return nil, err
	}
	requeued := 0
	for _, e := range entries {
		if e.Seq >= s.seq {
			s.seq = e.Seq + 1
		}
		if !api.TerminalState(e.State) {
			if e.State != api.StateQueued {
				e.Resumed = true
				requeued++
			}
			e.State = api.StateQueued
			if err := opt.Spool.Put(e); err != nil {
				return nil, err
			}
		}
		s.camps[e.ID] = &campaign{entry: e}
	}
	if len(entries) > 0 {
		s.opt.Logf("svc: restored %d campaigns from spool (%d re-enqueued mid-run)", len(entries), requeued)
	}
	s.mu.Lock()
	s.scheduleLocked()
	s.mu.Unlock()
	return s, nil
}

// Close stops the scheduler and waits for the campaign goroutines to
// park. Running campaigns are NOT cancelled: their spool entries stay
// live, so the next daemon on the same spool resumes them — Close is
// the graceful half of what a SIGKILL leaves behind anyway.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopCh)
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.camps {
		if c.events != nil {
			c.events.Close()
		}
	}
}

func (s *Service) stopping() bool {
	select {
	case <-s.stopCh:
		return true
	default:
		return false
	}
}

func apiErr(status int, code, format string, args ...any) *api.Error {
	return &api.Error{StatusCode: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------
// Campaign API.

// Submit validates and enqueues a campaign for the tenant, returning
// its initial status. All errors are *api.Error.
func (s *Service) Submit(tenant string, req api.SubmitRequest) (api.CampaignStatus, error) {
	if req.SchemaVersion > api.SubmitSchemaVersion {
		return api.CampaignStatus{}, apiErr(http.StatusBadRequest, api.CodeBadRequest,
			"submit schema version %d newer than this service (%d)", req.SchemaVersion, api.SubmitSchemaVersion)
	}
	cfg := req.Config
	if err := cfg.Validate(); err != nil {
		return api.CampaignStatus{}, apiErr(http.StatusBadRequest, api.CodeBadRequest, "invalid config: %v", err)
	}
	// Fail fast on what is checkable without a simulator, exactly like
	// the single-campaign coordinator: unknown tools and benchmarks die
	// at submission, not on the first worker.
	for i, cell := range cfg.Campaigns {
		if _, err := s.opt.Resolve(cell.Tool, cell.Benchmark); err != nil {
			return api.CampaignStatus{}, apiErr(http.StatusBadRequest, api.CodeBadRequest, "campaigns[%d]: %v", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return api.CampaignStatus{}, apiErr(http.StatusServiceUnavailable, api.CodeUnavailable, "service shutting down")
	}
	if s.opt.MaxQueuedPerTenant > 0 {
		open := 0
		for _, c := range s.camps {
			if c.entry.Tenant == tenant && !api.TerminalState(c.entry.State) {
				open++
			}
		}
		if open >= s.opt.MaxQueuedPerTenant {
			return api.CampaignStatus{}, apiErr(http.StatusTooManyRequests, api.CodeQuotaExceeded,
				"tenant %q already has %d open campaigns", tenant, open)
		}
	}
	id := fmt.Sprintf("c%05d", s.seq)
	e := &SpoolEntry{
		SchemaVersion:   SpoolSchemaVersion,
		ID:              id,
		Seq:             s.seq,
		Tenant:          tenant,
		Name:            req.Name,
		Priority:        req.Priority,
		State:           api.StateQueued,
		SubmittedUnixNS: s.opt.now().UnixNano(),
		Options:         req.Options,
		Config:          cfg,
	}
	s.seq++
	if err := s.opt.Spool.Put(e); err != nil {
		return api.CampaignStatus{}, apiErr(http.StatusInternalServerError, api.CodeInternal, "spooling campaign: %v", err)
	}
	c := &campaign{entry: e}
	s.camps[id] = c
	s.opt.Logf("svc: campaign %s submitted by %q (%d cells, priority %d)", id, tenant, len(cfg.Campaigns), e.Priority)
	s.scheduleLocked()
	return s.statusLocked(c), nil
}

// lookup returns the tenant's campaign; unknown IDs and other tenants'
// campaigns are both not_found, so IDs cannot be probed across tenants.
func (s *Service) lookupLocked(tenant, id string) (*campaign, error) {
	c := s.camps[id]
	if c == nil || (len(s.byName) > 0 && c.entry.Tenant != tenant) {
		return nil, apiErr(http.StatusNotFound, api.CodeNotFound, "no campaign %q", id)
	}
	return c, nil
}

// Get returns one campaign's status.
func (s *Service) Get(tenant, id string) (api.CampaignStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookupLocked(tenant, id)
	if err != nil {
		return api.CampaignStatus{}, err
	}
	return s.statusLocked(c), nil
}

// List returns the tenant's campaigns in submission order.
func (s *Service) List(tenant string) api.CampaignList {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cs []*campaign
	for _, c := range s.camps {
		if len(s.byName) > 0 && c.entry.Tenant != tenant {
			continue
		}
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].entry.Seq < cs[j].entry.Seq })
	out := api.CampaignList{SchemaVersion: api.SubmitSchemaVersion, Campaigns: make([]api.CampaignStatus, 0, len(cs))}
	for _, c := range cs {
		out.Campaigns = append(out.Campaigns, s.statusLocked(c))
	}
	return out
}

// Cancel cancels a queued or running campaign (idempotent on terminal
// ones). A running campaign's coordinator retires its outstanding
// leases, so workers move on at their next contact.
func (s *Service) Cancel(tenant, id string) (api.CampaignStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.lookupLocked(tenant, id)
	if err != nil {
		return api.CampaignStatus{}, err
	}
	switch {
	case api.TerminalState(c.entry.State):
		// Nothing to do.
	case c.entry.State == api.StateQueued:
		c.entry.State = api.StateCancelled
		c.entry.Error = "cancelled before start"
		c.entry.FinishedUnixNS = s.opt.now().UnixNano()
		s.put(c.entry)
		s.opt.Logf("svc: campaign %s cancelled while queued", id)
		s.scheduleLocked()
	default:
		c.cancelReason = "cancelled by " + orAnon(tenant)
		if c.coord != nil {
			c.coord.Cancel(c.cancelReason)
		}
		// The campaign goroutine observes the coordinator failure and
		// finishes the lifecycle transition.
	}
	return s.statusLocked(c), nil
}

func orAnon(tenant string) string {
	if tenant == "" {
		return "request"
	}
	return tenant
}

// Results serves a finished campaign's indexed outcome breakdowns.
func (s *Service) Results(tenant, id string) (api.ResultsResponse, error) {
	s.mu.Lock()
	c, err := s.lookupLocked(tenant, id)
	if err != nil {
		s.mu.Unlock()
		return api.ResultsResponse{}, err
	}
	state := c.entry.State
	s.mu.Unlock()
	if !api.TerminalState(state) {
		return api.ResultsResponse{}, apiErr(http.StatusConflict, api.CodeConflict,
			"campaign %s is %s; results are indexed at completion", id, state)
	}
	if !s.opt.Index.Has(id) {
		return api.ResultsResponse{}, apiErr(http.StatusNotFound, api.CodeNotFound,
			"no results indexed for campaign %s (state %s)", id, state)
	}
	cells, err := s.opt.Index.Load(id)
	if err != nil {
		return api.ResultsResponse{}, apiErr(http.StatusInternalServerError, api.CodeInternal, "loading results: %v", err)
	}
	return api.ResultsResponse{SchemaVersion: api.SubmitSchemaVersion, ID: id, State: state, Cells: cells}, nil
}

func (s *Service) statusLocked(c *campaign) api.CampaignStatus {
	e := c.entry
	cfg := e.Config
	masks := 0
	for i := range cfg.Campaigns {
		masks += cfg.MaskCount(i)
	}
	st := api.CampaignStatus{
		SchemaVersion:   api.SubmitSchemaVersion,
		ID:              e.ID,
		Tenant:          e.Tenant,
		Name:            e.Name,
		Priority:        e.Priority,
		State:           e.State,
		Error:           e.Error,
		Resumed:         e.Resumed,
		Keys:            cfg.Keys(),
		Masks:           masks,
		SubmittedUnixNS: e.SubmittedUnixNS,
		StartedUnixNS:   e.StartedUnixNS,
		FinishedUnixNS:  e.FinishedUnixNS,
		Options:         e.Options,
	}
	if c.coord != nil {
		cs := c.coord.Stats()
		st.Shards = cs.Shards
		st.ShardsCompleted = cs.Completed
		st.Requeues = cs.Requeues
		st.Duplicates = cs.Duplicates
		st.ShardsCancelled = cs.Cancelled
	}
	return st
}

// put persists a spool entry, logging (rather than failing the caller)
// when the disk write fails — in-memory state stays authoritative for
// this process either way.
func (s *Service) put(e *SpoolEntry) {
	if err := s.opt.Spool.Put(e); err != nil {
		s.opt.Logf("svc: %v", err)
	}
}

// ---------------------------------------------------------------------
// Scheduler and campaign lifecycle.

// scheduleLocked starts queued campaigns while the global and
// per-tenant concurrency allow, highest priority first and submission
// order within a priority.
func (s *Service) scheduleLocked() {
	if s.closed {
		return
	}
	running := 0
	perTenant := make(map[string]int)
	var queued []*campaign
	for _, c := range s.camps {
		switch c.entry.State {
		case api.StatePlanning, api.StateRunning, api.StateFinalizing:
			running++
			perTenant[c.entry.Tenant]++
		case api.StateQueued:
			queued = append(queued, c)
		}
	}
	sort.Slice(queued, func(i, j int) bool {
		if queued[i].entry.Priority != queued[j].entry.Priority {
			return queued[i].entry.Priority > queued[j].entry.Priority
		}
		return queued[i].entry.Seq < queued[j].entry.Seq
	})
	for _, c := range queued {
		if running >= s.opt.MaxActive {
			return
		}
		if t := s.byName[c.entry.Tenant]; t != nil && t.MaxActive > 0 && perTenant[t.Name] >= t.MaxActive {
			continue
		}
		c.entry.State = api.StatePlanning
		if c.entry.StartedUnixNS == 0 {
			c.entry.StartedUnixNS = s.opt.now().UnixNano()
		}
		s.put(c.entry)
		running++
		perTenant[c.entry.Tenant]++
		s.wg.Add(1)
		go s.run(c)
	}
}

// run drives one campaign's lifecycle: build the telemetry stack and
// coordinator (replaying the run journal when resuming), wait for the
// fleet to finish the shards, then merge artifacts and index results.
func (s *Service) run(c *campaign) {
	defer s.wg.Done()
	e := c.entry
	id, cfg, opts := e.ID, e.Config, e.Options

	tel := telemetry.New()
	events := telemetry.NewEventStream(tel)
	tel.AddSink(events)
	var traceSink *telemetry.TraceSink
	if opts.Trace {
		traceSink = telemetry.NewTraceSink()
		tel.AddSink(traceSink)
	}
	var tracer *telemetry.Tracer
	var spanBuf *telemetry.SpanBuffer
	if opts.Spans {
		tracer = telemetry.NewTracer("t-"+id, "c")
		spanBuf = telemetry.NewSpanBuffer()
		tracer.AddSink(spanBuf)
		tracer.AddSink(events)
	}
	var dsink *divergence.Sink
	if cfg.Divergence {
		dsink = divergence.NewSink()
	}
	logs := s.opt.Logs
	if !opts.Flat {
		var err error
		if logs, err = core.NewLogsRepo(filepath.Join(s.opt.Logs.Dir(), id)); err != nil {
			s.finish(c, err)
			return
		}
	}

	// The deterministic mask populations, built once on demand — an
	// adaptive coordinator needs them to settle stopped tails, a
	// resuming one to check journals for staleness.
	var (
		specsOnce sync.Once
		specs     []core.CampaignSpec
		specsErr  error
	)
	masksFor := func(i int) ([]fault.Mask, error) {
		specsOnce.Do(func() {
			specs, specsErr = cfg.BuildSpecs(s.opt.Resolve, core.NewGoldenCache())
		})
		if specsErr != nil {
			return nil, specsErr
		}
		return specs[i].Masks, nil
	}

	copt := dist.CoordinatorOptions{
		ShardSize:    s.opt.ShardSize,
		LeaseTTL:     s.opt.LeaseTTL,
		MaxRetries:   s.opt.MaxRetries,
		RetryBackoff: s.opt.RetryBackoff,
		Telemetry:    tel,
		Tracer:       tracer,
		Divergence:   dsink,
		MasksFor:     masksFor,
		Logf: func(format string, args ...any) {
			s.opt.Logf("campaign "+id+": "+format, args...)
		},
	}
	if opts.Journal {
		copt.JournalFor = func(key string) (*fault.Journal, error) {
			return fault.OpenJournal(logs.JournalPath(key))
		}
		copt.Resume = e.Resumed
	}
	coord, err := dist.New(cfg, copt)
	if err != nil {
		s.finish(c, err)
		return
	}

	s.mu.Lock()
	c.coord, c.tel, c.events, c.trace, c.spanBuf, c.dsink, c.logs = coord, tel, events, traceSink, spanBuf, dsink, logs
	e.State = api.StateRunning
	s.put(e)
	if c.cancelReason != "" {
		coord.Cancel(c.cancelReason)
	}
	s.mu.Unlock()
	st := coord.Stats()
	s.opt.Logf("svc: campaign %s running (%d shards, %d already merged from journal)", id, st.Shards, coord.ResumedRuns())

	results, err := coord.Wait(waitContext{s.stopCh})
	if s.stopping() {
		// Graceful shutdown mid-run: close the journals and leave the
		// spool entry live, so the next daemon resumes the campaign.
		coord.Close()
		return
	}
	if err != nil {
		coord.Close()
		s.finish(c, err)
		return
	}

	s.mu.Lock()
	e.State = api.StateFinalizing
	s.put(e)
	s.mu.Unlock()

	ferr := s.finalize(id, cfg, opts, logs, results, traceSink, spanBuf, dsink)
	coord.Close()
	s.finish(c, ferr)
}

// finalize merges a completed campaign's artifacts into the logs
// repository and feeds the result index — the service-side equivalent
// of the one-shot coordinator's post-Wait sequence.
func (s *Service) finalize(id string, cfg core.CampaignConfig, opts api.SubmitOptions, logs *core.LogsRepo,
	results []*core.CampaignResult, traceSink *telemetry.TraceSink, spanBuf *telemetry.SpanBuffer, dsink *divergence.Sink) error {
	keys := cfg.Keys()
	for i, res := range results {
		if err := logs.Store(keys[i], res); err != nil {
			return err
		}
	}
	akey := opts.ArtifactKey
	if akey == "" {
		akey = "matrix"
		if len(keys) == 1 {
			akey = keys[0]
		}
	}
	if traceSink != nil {
		if err := flushTo(logs.CreateTrace, akey, traceSink.Flush); err != nil {
			return err
		}
	}
	if dsink != nil {
		if err := flushTo(logs.CreateDivergence, akey, dsink.Flush); err != nil {
			return err
		}
	}
	if spanBuf != nil {
		if err := flushTo(logs.CreateSpans, akey, spanBuf.Flush); err != nil {
			return err
		}
	}
	return s.opt.Index.Store(id, outcomeCells(cfg, keys, results, dsink))
}

// flushTo writes one buffered artifact stream into a freshly created
// repository file.
func flushTo(create func(string) (*os.File, error), key string, flush func(io.Writer) error) error {
	f, err := create(key)
	if err != nil {
		return err
	}
	if err := flush(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// finish moves a campaign to its terminal state and persists it. On a
// graceful shutdown the transition is skipped: the spool keeps the
// live state for the next daemon to resume.
func (s *Service) finish(c *campaign, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopping() {
		return
	}
	e := c.entry
	switch {
	case err == nil:
		e.State = api.StateDone
		e.Error = ""
	case errors.Is(err, dist.ErrCancelled):
		e.State = api.StateCancelled
		e.Error = err.Error()
	default:
		e.State = api.StateFailed
		e.Error = err.Error()
	}
	e.FinishedUnixNS = s.opt.now().UnixNano()
	s.put(e)
	s.opt.Logf("svc: campaign %s %s", e.ID, e.State)
	s.scheduleLocked()
}

// waitContext adapts the service stop channel to the context the
// coordinator's Wait loop expects, without tying campaign goroutines
// to any request-scoped context.
type waitContext struct {
	done chan struct{}
}

func (w waitContext) Deadline() (time.Time, bool) { return time.Time{}, false }
func (w waitContext) Done() <-chan struct{}       { return w.done }
func (w waitContext) Value(any) any               { return nil }
func (w waitContext) Err() error {
	select {
	case <-w.done:
		return errors.New("svc: service shutting down")
	default:
		return nil
	}
}

// outcomeCells computes the indexed per-cell outcome breakdowns served
// by GET /v1/campaigns/{id}/results.
func outcomeCells(cfg core.CampaignConfig, keys []string, results []*core.CampaignResult, dsink *divergence.Sink) []fault.OutcomeIndex {
	var divByKey map[string][]divergence.Record
	if dsink != nil {
		divByKey = make(map[string][]divergence.Record)
		for _, rec := range dsink.Records() {
			divByKey[rec.Campaign] = append(divByKey[rec.Campaign], rec)
		}
	}
	cells := make([]fault.OutcomeIndex, len(results))
	for i, res := range results {
		cell := cfg.Campaigns[i]
		b := core.Parser{}.ParseAll(res.Records)
		statuses := make(map[string]int)
		for _, r := range res.Records {
			statuses[r.Status]++
		}
		classes := make(map[string]int)
		shares := make(map[string]float64)
		wshares := make(map[string]float64)
		for cls, n := range b.Counts {
			classes[string(cls)] = n
			if cls == core.ClassStopped {
				continue
			}
			shares[string(cls)] = b.Pct(cls) / 100
			wshares[string(cls)] = b.WeightedPct(cls) / 100
		}
		oi := fault.OutcomeIndex{
			SchemaVersion:  fault.OutcomeIndexSchemaVersion,
			Key:            keys[i],
			Tool:           cell.Tool,
			Benchmark:      cell.Benchmark,
			Structure:      cell.Structure,
			Runs:           b.Total,
			WeightSum:      b.WeightSum,
			Statuses:       statuses,
			Classes:        classes,
			Shares:         shares,
			WeightedShares: wshares,
			Vulnerability:  b.WeightedVulnerability() / 100,
		}
		if res.Adaptive != nil {
			oi.Adaptive = &fault.AdaptiveIndexSummary{
				StoppedEarly:    res.Adaptive.StoppedEarly,
				SimulatedRuns:   res.Adaptive.SimulatedRuns,
				PlannedRuns:     res.Adaptive.PlannedRuns,
				EffectiveMargin: res.Adaptive.EffectiveMargin,
				Confidence:      res.Adaptive.Confidence,
			}
		}
		if recs := divByKey[keys[i]]; len(recs) > 0 {
			sum := &fault.DivergenceIndexSummary{Records: len(recs)}
			var propSum, timeSum float64
			var propN, timeN int
			for _, r := range recs {
				if r.Diverged {
					sum.Diverged++
				}
				if r.Observed && r.Diverged {
					propSum += float64(r.PropagationCycles)
					propN++
				}
				if r.Observed {
					timeSum += float64(r.TimeToOutcome)
					timeN++
				}
			}
			if propN > 0 {
				sum.MeanPropagationCycles = propSum / float64(propN)
			}
			if timeN > 0 {
				sum.MeanTimeToOutcome = timeSum / float64(timeN)
			}
			oi.Divergence = sum
		}
		cells[i] = oi
	}
	return cells
}

// ---------------------------------------------------------------------
// Worker plane: one fleet, many campaigns.

func (s *Service) workerLocked(id string) *workerView {
	w := s.workers[id]
	if w == nil {
		w = &workerView{}
		s.workers[id] = w
	}
	w.lastSeen = s.opt.now()
	return w
}

// runnableLocked returns the non-terminal campaigns in scheduling
// order (priority, then submission).
func (s *Service) runnableLocked() []*campaign {
	var cs []*campaign
	for _, c := range s.camps {
		if !api.TerminalState(c.entry.State) {
			cs = append(cs, c)
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].entry.Priority != cs[j].entry.Priority {
			return cs[i].entry.Priority > cs[j].entry.Priority
		}
		return cs[i].entry.Seq < cs[j].entry.Seq
	})
	return cs
}

// Lease assigns the worker a shard from the highest-priority campaign
// that has one, stamping the campaign ID into the response. With no
// work anywhere: wait — or done, once every campaign is terminal and
// the service was built to exit when idle.
func (s *Service) Lease(workerID string) api.LeaseResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workerLocked(workerID)
	live := s.runnableLocked()
	var wait int64 = 500
	for _, c := range live {
		if c.coord == nil {
			continue // still planning; work is coming
		}
		resp := c.coord.Lease(workerID)
		switch resp.Status {
		case api.StatusShard:
			resp.CampaignID = c.entry.ID
			return resp
		case api.StatusWait:
			if resp.WaitMS > 0 && resp.WaitMS < wait {
				wait = resp.WaitMS
			}
		}
		// done/failed: the campaign goroutine is mid-transition;
		// skip it and look at the next campaign.
	}
	if len(live) == 0 && s.opt.ExitWhenIdle && len(s.camps) > 0 {
		return api.LeaseResponse{Status: api.StatusDone}
	}
	return api.LeaseResponse{Status: api.StatusWait, WaitMS: wait}
}

// Heartbeat routes a lease extension to its campaign's coordinator.
func (s *Service) Heartbeat(req api.HeartbeatRequest) api.HeartbeatResponse {
	s.mu.Lock()
	s.workerLocked(req.WorkerID)
	var coord *dist.Coordinator
	if c := s.camps[req.CampaignID]; c != nil {
		coord = c.coord
	}
	s.mu.Unlock()
	if coord == nil {
		return api.HeartbeatResponse{OK: false}
	}
	return coord.Heartbeat(req)
}

// Complete routes a shard completion to its campaign's coordinator and
// folds the piggybacked worker snapshot into the service fleet plane.
func (s *Service) Complete(req api.CompleteRequest) api.CompleteResponse {
	s.mu.Lock()
	w := s.workerLocked(req.WorkerID)
	if req.Snapshot != nil && !w.final {
		snap := *req.Snapshot
		w.snap = &snap
	}
	var coord *dist.Coordinator
	if c := s.camps[req.CampaignID]; c != nil {
		coord = c.coord
	}
	s.mu.Unlock()
	if coord == nil {
		return api.CompleteResponse{OK: false, Error: fmt.Sprintf("unknown campaign %q", req.CampaignID)}
	}
	return coord.Complete(req)
}

// PushSnapshot records a worker's out-of-cycle telemetry snapshot in
// the service fleet plane (final ones freeze the worker's last word).
func (s *Service) PushSnapshot(req api.SnapshotRequest) api.SnapshotResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.workerLocked(req.WorkerID)
	if !w.final {
		snap := req.Snapshot
		w.snap = &snap
		if req.Final {
			w.final = true
		}
	}
	return api.SnapshotResponse{OK: true}
}

// CampaignConfig serves a campaign's coordinator config to a fleet
// worker, stamped with the campaign ID.
func (s *Service) CampaignConfig(id string) (api.ConfigResponse, error) {
	s.mu.Lock()
	var coord *dist.Coordinator
	c := s.camps[id]
	if c != nil {
		coord = c.coord
	}
	s.mu.Unlock()
	if c == nil || coord == nil {
		return api.ConfigResponse{}, apiErr(http.StatusNotFound, api.CodeNotFound, "no running campaign %q", id)
	}
	resp := coord.Config()
	resp.CampaignID = id
	return resp, nil
}

// FleetSnapshot merges every worker's last pushed snapshot into the
// service-wide view, overlaying the coordinator-side early-stop
// counters of adaptive campaigns (workers never see a stopped run, so
// the overlay cannot double-count).
func (s *Service) FleetSnapshot() telemetry.Snapshot {
	s.mu.Lock()
	ids := make([]string, 0, len(s.workers))
	for id, w := range s.workers {
		if w.snap != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	snaps := make([]telemetry.Snapshot, 0, len(ids))
	for _, id := range ids {
		snaps = append(snaps, *s.workers[id].snap)
	}
	var own []telemetry.Snapshot
	for _, c := range s.camps {
		if c.tel != nil && c.entry.Config.StopMargin > 0 {
			own = append(own, c.tel.Snapshot())
		}
	}
	s.mu.Unlock()
	merged := telemetry.MergeSnapshots(snaps...)
	for _, o := range own {
		merged.StoppedRuns += o.StoppedRuns
		merged.CellsStoppedEarly += o.CellsStoppedEarly
		if o.EffectiveMargin > merged.EffectiveMargin {
			merged.EffectiveMargin = o.EffectiveMargin
		}
	}
	return merged
}

// Fleet returns the service-wide per-worker accounting: the union of
// every campaign coordinator's lease bookkeeping plus workers known
// only from snapshot pushes.
func (s *Service) Fleet() []api.WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.now()
	rows := make(map[string]*api.WorkerStatus)
	for id, w := range s.workers {
		lag := now.Sub(w.lastSeen).Seconds()
		if lag < 0 {
			lag = 0
		}
		rows[id] = &api.WorkerStatus{ID: id, Shard: -1, LagSeconds: lag, Final: w.final}
	}
	for _, c := range s.camps {
		if c.coord == nil {
			continue
		}
		for _, ws := range c.coord.Fleet() {
			r := rows[ws.ID]
			if r == nil {
				r = &api.WorkerStatus{ID: ws.ID, Shard: -1, LagSeconds: ws.LagSeconds}
				rows[ws.ID] = r
			}
			r.ShardsDone += ws.ShardsDone
			if ws.Shard >= 0 {
				r.Shard = ws.Shard
			}
			if ws.LagSeconds < r.LagSeconds {
				r.LagSeconds = ws.LagSeconds
			}
		}
	}
	ids := make([]string, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]api.WorkerStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, *rows[id])
	}
	return out
}

// WaitFleetFinal blocks until every worker that ever pushed a snapshot
// has pushed its final one (or the timeout passes), mirroring the
// single-campaign coordinator's fleet settling.
func (s *Service) WaitFleetFinal(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		settled := len(s.workers) > 0
		for _, w := range s.workers {
			if w.snap != nil && !w.final {
				settled = false
			}
		}
		s.mu.Unlock()
		if settled {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Idle reports whether every submitted campaign reached a terminal
// state (false while the spool is empty — nothing was submitted yet).
func (s *Service) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.camps) == 0 {
		return false
	}
	for _, c := range s.camps {
		if !api.TerminalState(c.entry.State) {
			return false
		}
	}
	return true
}
