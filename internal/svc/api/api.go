// Package api is the versioned wire surface of the campaign service:
// every request and response body exchanged over the /v1 HTTP API, the
// shared JSON error envelope, and the worker protocol types the
// distributed layer speaks. The types live in one place so the daemon,
// the Go client and the coordinator cannot drift — internal/dist
// re-exports the worker-protocol subset as type aliases for
// compatibility with existing callers.
//
// Error contract: every non-200 response carries the envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// with a stable machine-readable code and a human-readable message.
// 200 responses carry the endpoint's documented body and nothing else.
package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// ProtocolVersion is the coordinator/worker wire format version. A
// worker refuses a coordinator speaking a newer version (and vice versa
// the coordinator's config carries its own schema version), so a
// mixed-build fleet fails loudly instead of merging subtly different
// outputs. The campaign-ID fields of the multi-campaign service are
// additive — a version-1 peer ignores them — so the version stays 1.
const ProtocolVersion = 1

// SubmitSchemaVersion is the campaign-service request/response format
// version this build writes; requests stamped newer are rejected.
const SubmitSchemaVersion = 1

// Error codes of the shared envelope.
const (
	CodeBadRequest       = "bad_request"
	CodeUnauthorized     = "unauthorized"
	CodeForbidden        = "forbidden"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeConflict         = "conflict"
	CodeQuotaExceeded    = "quota_exceeded"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
)

// ErrorDetail is the inner object of the error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-200 response.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// Error is the typed client-side form of an envelope: the HTTP status
// plus the decoded code and message. The svc/client package returns it
// for every non-200 response, so callers switch on Code (or status
// class) instead of parsing message strings.
type Error struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("api: HTTP %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// IsRetryable reports whether the error is transient service-side state
// (5xx) rather than a caller mistake — the client's retry predicate.
func (e *Error) IsRetryable() bool { return e.StatusCode >= 500 }

// WriteError writes the shared error envelope with the given status.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// WriteJSON writes a 200 JSON body.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		WriteError(w, http.StatusInternalServerError, CodeInternal, "encoding response: %v", err)
	}
}

// ReadJSON decodes a POST body into v, answering the shared envelope
// itself (405 on a non-POST method, 400 on an undecodable body) and
// reporting whether the caller should proceed.
func ReadJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// DecodeError turns a non-200 response into a typed *Error, decoding
// the envelope when present and falling back to the raw body text for
// peers that predate it.
func DecodeError(status int, body io.Reader) *Error {
	raw, _ := io.ReadAll(io.LimitReader(body, 4096))
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return &Error{StatusCode: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	code := CodeInternal
	if status < 500 {
		code = CodeBadRequest
	}
	return &Error{StatusCode: status, Code: code, Message: strings.TrimSpace(string(raw))}
}

// ---------------------------------------------------------------------
// Worker protocol (leases, completions, fleet telemetry).

// Shard is one unit of distributed work: the mask window [MaskLo,
// MaskHi) of one campaign cell of the config. TraceID/SpanID, when set,
// carry the coordinator's span context: the worker parents the shard's
// matrix span under SpanID so the coordinator assembles one end-to-end
// span tree. Both are additive — a version-1 peer ignores them.
type Shard struct {
	ID       int    `json:"id"`
	Campaign int    `json:"campaign"`
	MaskLo   int    `json:"mask_lo"`
	MaskHi   int    `json:"mask_hi"`
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
}

// ConfigResponse is the body of GET /v1/config (and, in the
// multi-campaign service, GET /v1/campaigns/{id}/config): the full
// campaign config plus the lease terms the coordinator enforces.
// CampaignID names the service campaign the config belongs to; empty
// from a single-campaign coordinator.
type ConfigResponse struct {
	ProtocolVersion int                 `json:"protocol_version"`
	Config          core.CampaignConfig `json:"config"`
	LeaseTTLMS      int64               `json:"lease_ttl_ms"`
	CampaignID      string              `json:"campaign_id,omitempty"`
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease statuses.
const (
	// StatusShard carries a shard assignment.
	StatusShard = "shard"
	// StatusWait means every runnable shard is leased or backing off;
	// poll again after WaitMS.
	StatusWait = "wait"
	// StatusDone means every shard completed; the worker may exit.
	StatusDone = "done"
	// StatusFailed means the campaign failed terminally (a worker
	// reported a deterministic error, or a shard ran out of retries).
	StatusFailed = "failed"
)

// LeaseResponse is the body of a lease reply. CampaignID, when set,
// names the service campaign the shard belongs to — a fleet worker
// echoes it on heartbeats and completions so the service routes them
// to the right coordinator. Additive: a version-1 single-campaign peer
// never sets it.
type LeaseResponse struct {
	Status     string `json:"status"`
	Shard      *Shard `json:"shard,omitempty"`
	WaitMS     int64  `json:"wait_ms,omitempty"`
	Error      string `json:"error,omitempty"`
	CampaignID string `json:"campaign_id,omitempty"`
}

// HeartbeatRequest extends a shard lease. CampaignID routes the
// heartbeat in the multi-campaign service; empty against a
// single-campaign coordinator.
type HeartbeatRequest struct {
	WorkerID   string `json:"worker_id"`
	ShardID    int    `json:"shard_id"`
	CampaignID string `json:"campaign_id,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. OK false means the lease
// was lost (expired and requeued, the shard completed elsewhere, or the
// campaign was cancelled); the worker's result, if it still sends one,
// will be deduplicated.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest delivers a shard's outcome. A non-empty Error marks
// the shard — and with it the campaign — failed: shard execution is
// deterministic, so retrying the same masks on another worker would
// fail identically. CampaignID routes the completion in the
// multi-campaign service.
type CompleteRequest struct {
	WorkerID   string            `json:"worker_id"`
	ShardID    int               `json:"shard_id"`
	CampaignID string            `json:"campaign_id,omitempty"`
	Result     *core.ShardResult `json:"result,omitempty"`
	Error      string            `json:"error,omitempty"`
	// Spans are the shard's worker-side spans (matrix, cell, run,
	// phase), forwarded into the coordinator's merged span file.
	// Snapshot piggybacks the worker's current telemetry snapshot for
	// the fleet aggregation. Both additive.
	Spans    []telemetry.Span    `json:"spans,omitempty"`
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

// CompleteResponse acknowledges a completion. Accepted false means the
// shard had already been completed (a requeued shard finished twice);
// the duplicate was discarded, which is fine — the merge ledger is
// exactly-once per mask. Done and Failed report the campaign's terminal
// state in the acknowledgement itself, so the worker that delivers the
// final shard learns the outcome without racing the coordinator's
// shutdown on one more lease poll.
type CompleteResponse struct {
	OK       bool   `json:"ok"`
	Accepted bool   `json:"accepted"`
	Done     bool   `json:"done,omitempty"`
	Failed   string `json:"failed,omitempty"`
	Error    string `json:"error,omitempty"`
}

// SnapshotRequest is the body of POST /v1/snapshot: a worker pushing
// its telemetry snapshot to the fleet aggregation outside the shard
// cycle — a draining worker posts its last word with Final set, so the
// fleet view stays complete after the worker exits.
type SnapshotRequest struct {
	WorkerID string             `json:"worker_id"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
	Final    bool               `json:"final,omitempty"`
}

// SnapshotResponse acknowledges a snapshot push.
type SnapshotResponse struct {
	OK bool `json:"ok"`
}

// WorkerStatus is the per-worker accounting row served at
// /v1/fleet.json — one entry per worker the coordinator (or the
// service's fleet plane) has heard from.
type WorkerStatus struct {
	ID         string  `json:"id"`
	Shard      int     `json:"shard"` // currently leased shard, -1 when idle
	ShardsDone int     `json:"shards_done"`
	LagSeconds float64 `json:"lag_seconds"` // seconds since last contact
	Final      bool    `json:"final,omitempty"`
}

// ---------------------------------------------------------------------
// Campaign service (submission, lifecycle, results).

// Campaign lifecycle states. Terminal states are StateDone,
// StateFailed and StateCancelled; everything else is live.
const (
	StateQueued     = "queued"
	StatePlanning   = "planning"
	StateRunning    = "running"
	StateFinalizing = "finalizing"
	StateDone       = "done"
	StateFailed     = "failed"
	StateCancelled  = "cancelled"
)

// TerminalState reports whether a lifecycle state is final.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SubmitOptions are the per-campaign artifact knobs of a submission —
// the service-side equivalent of faultcamp's -trace/-spans/-journal
// flags plus artifact placement.
type SubmitOptions struct {
	// Trace writes the JSONL injection trace beside the campaign logs.
	Trace bool `json:"trace,omitempty"`
	// Spans writes the JSONL span trace (campaign/shard/merge timings).
	Spans bool `json:"spans,omitempty"`
	// Journal journals every merged simulated run (fsync'd) — required
	// for the campaign to resume across a daemon restart instead of
	// re-running from scratch.
	Journal bool `json:"journal,omitempty"`
	// Divergence is implied by the config's own divergence knob; the
	// flag here only controls whether the provenance file is flushed.
	// ArtifactKey overrides the trace/spans/divergence file stem; the
	// default is the campaign key for single-cell configs and "matrix"
	// otherwise.
	ArtifactKey string `json:"artifact_key,omitempty"`
	// Flat stores artifacts at the logs-repository root under the
	// legacy single-campaign names instead of a per-campaign
	// subdirectory. The one-shot compatibility mode uses it; service
	// submissions normally leave it off so same-key campaigns from
	// different tenants never collide.
	Flat bool `json:"flat,omitempty"`
}

// SubmitRequest is the body of POST /v1/campaigns.
type SubmitRequest struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	// Name is a human label; the service generates the campaign ID.
	Name string `json:"name,omitempty"`
	// Priority orders the queue (higher first, then submission order).
	Priority int `json:"priority,omitempty"`
	// Options select the artifacts recorded beside the merged logs.
	Options SubmitOptions `json:"options,omitempty"`
	// Config is the campaign to run, validated on submission.
	Config core.CampaignConfig `json:"config"`
}

// CampaignStatus is the body of GET /v1/campaigns/{id} and the element
// of list responses.
type CampaignStatus struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	ID            string `json:"id"`
	Tenant        string `json:"tenant,omitempty"`
	Name          string `json:"name,omitempty"`
	Priority      int    `json:"priority,omitempty"`
	State         string `json:"state"`
	Error         string `json:"error,omitempty"`
	// Resumed marks a campaign restored from the spool after a daemon
	// restart mid-run and resumed from its journal.
	Resumed bool `json:"resumed,omitempty"`
	// Keys are the campaign-cell keys; Masks the total mask budget.
	Keys  []string `json:"keys,omitempty"`
	Masks int      `json:"masks,omitempty"`
	// Shard accounting, live while running and frozen at finalize.
	Shards          int `json:"shards,omitempty"`
	ShardsCompleted int `json:"shards_completed,omitempty"`
	Requeues        int `json:"requeues,omitempty"`
	Duplicates      int `json:"duplicates,omitempty"`
	ShardsCancelled int `json:"shards_cancelled,omitempty"`
	// Unix-nanosecond lifecycle timestamps (zero when not reached).
	SubmittedUnixNS int64 `json:"submitted_unix_ns,omitempty"`
	StartedUnixNS   int64 `json:"started_unix_ns,omitempty"`
	FinishedUnixNS  int64 `json:"finished_unix_ns,omitempty"`

	Options SubmitOptions `json:"options,omitempty"`
}

// CampaignList is the body of GET /v1/campaigns.
type CampaignList struct {
	SchemaVersion int              `json:"schema_version,omitempty"`
	Campaigns     []CampaignStatus `json:"campaigns"`
}

// ResultsResponse is the body of GET /v1/campaigns/{id}/results: the
// indexed per-cell outcome breakdowns of a finished campaign, served
// from the result index without re-reading the JSONL logs.
type ResultsResponse struct {
	SchemaVersion int                  `json:"schema_version,omitempty"`
	ID            string               `json:"id"`
	State         string               `json:"state"`
	Cells         []fault.OutcomeIndex `json:"cells"`
}
