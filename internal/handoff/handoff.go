// Package handoff carries architectural machine state between the
// execution tiers of the detail-window scheduler: the functional
// interpreter (internal/interp) and the two cycle-accurate cores
// (internal/marss, internal/gem5). A State is exactly the
// architecturally visible machine — program counter, committed register
// values, RAM, and kernel state — with no microarchitectural content,
// so any two tiers that agree on a State agree on every future
// architectural event of the program.
package handoff

import (
	"bytes"
	"fmt"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// State is an architectural machine snapshot at an instruction boundary.
type State struct {
	// PC is the next instruction to execute.
	PC uint64
	// IntRegs are the committed integer register values.
	IntRegs [isa.NumIntRegs]uint64
	// FPRegs are the committed FP register values as raw IEEE-754 bits.
	FPRegs [isa.NumFPRegs]uint64
	// Mem is the RAM image. On the cycle-accurate cores the capture path
	// is responsible for making RAM architecturally authoritative first
	// (write-back caches flush their dirty lines).
	Mem *mem.PagedSnapshot
	// Kern is a deep copy of the kernel state: accumulated output, exit
	// state, and the recoverable-exception event log.
	Kern kernel.Kernel
	// Cycle is the capture timestamp in the capturing tier's own time
	// base (cycles for the cores, steps for the interpreter). It is
	// bookkeeping, not architectural state; Equal ignores it.
	Cycle uint64
	// Committed is the number of committed macro-instructions, identical
	// across tiers at the same instruction boundary.
	Committed uint64
}

// numPages is the page count of the simulated RAM.
const numPages = int(mem.Size / mem.PageSize)

var zeroPage [mem.PageSize]byte

// pageEqual compares two snapshot pages where nil means all-zero.
func pageEqual(a, b []byte) bool {
	if a == nil {
		a = zeroPage[:]
	}
	if b == nil {
		b = zeroPage[:]
	}
	return bytes.Equal(a, b)
}

// Equal reports whether two states are architecturally identical,
// returning a diff-describing error on the first mismatch. Capture
// timestamps (State.Cycle) and event cycle stamps are not compared:
// the tiers count time in different units, and the architectural
// content of an event is its (PC, exception, info) triple.
func Equal(a, b *State) error {
	if a.PC != b.PC {
		return fmt.Errorf("handoff: PC %#x != %#x", a.PC, b.PC)
	}
	if a.Committed != b.Committed {
		return fmt.Errorf("handoff: committed instructions %d != %d", a.Committed, b.Committed)
	}
	for i := range a.IntRegs {
		if a.IntRegs[i] != b.IntRegs[i] {
			return fmt.Errorf("handoff: int reg %d: %#x != %#x", i, a.IntRegs[i], b.IntRegs[i])
		}
	}
	for i := range a.FPRegs {
		if a.FPRegs[i] != b.FPRegs[i] {
			return fmt.Errorf("handoff: fp reg %d: %#x != %#x", i, a.FPRegs[i], b.FPRegs[i])
		}
	}
	for p := 0; p < numPages; p++ {
		if !pageEqual(a.Mem.Page(p), b.Mem.Page(p)) {
			return fmt.Errorf("handoff: memory page %d (addr %#x) differs", p, uint64(p)*mem.PageSize)
		}
	}
	if !bytes.Equal(a.Kern.Output, b.Kern.Output) {
		return fmt.Errorf("handoff: kernel output differs (%d vs %d bytes)", len(a.Kern.Output), len(b.Kern.Output))
	}
	if a.Kern.Exited != b.Kern.Exited || a.Kern.ExitCode != b.Kern.ExitCode {
		return fmt.Errorf("handoff: exit state (%v,%d) != (%v,%d)",
			a.Kern.Exited, a.Kern.ExitCode, b.Kern.Exited, b.Kern.ExitCode)
	}
	if a.Kern.Panicked != b.Kern.Panicked {
		return fmt.Errorf("handoff: panicked %v != %v", a.Kern.Panicked, b.Kern.Panicked)
	}
	if len(a.Kern.Events) != len(b.Kern.Events) {
		return fmt.Errorf("handoff: event count %d != %d", len(a.Kern.Events), len(b.Kern.Events))
	}
	for i := range a.Kern.Events {
		ea, eb := a.Kern.Events[i], b.Kern.Events[i]
		if ea.PC != eb.PC || ea.Exc != eb.Exc || ea.Info != eb.Info {
			return fmt.Errorf("handoff: event %d: {pc %#x exc %v info %#x} != {pc %#x exc %v info %#x}",
				i, ea.PC, ea.Exc, ea.Info, eb.PC, eb.Exc, eb.Info)
		}
	}
	return nil
}
