package handoff_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/handoff"
	"repro/internal/interp"
	"repro/internal/sims"
	"repro/internal/workload"
)

// windower is the capability surface the handoff tests exercise on the
// cycle-accurate cores (mirrors core.Windower plus RunTo from
// core.Checkpointer).
type windower interface {
	core.Windower
	RunTo(target uint64) (uint64, bool, error)
	Run(limit uint64) core.RunResult
}

// TestCaptureMatchesInterp is the any-point equality cross-check of the
// handoff layer: drain each cycle-accurate core mid-run, capture its
// architectural state, and demand bit-exact equality with a functional
// machine run to the same committed-instruction count — for every tool
// and every workload, at two different handoff points. This is the
// soundness base of detail-window execution: if the two tiers disagree
// architecturally at an arbitrary drained point, handing a run between
// them would silently change its outcome.
func TestCaptureMatchesInterp(t *testing.T) {
	for _, tool := range sims.Tools() {
		for _, w := range workload.All() {
			t.Run(tool+"/"+w.Name, func(t *testing.T) {
				f, err := sims.Factory(tool, w)
				if err != nil {
					t.Fatal(err)
				}
				for _, target := range []uint64{1500, 6000} {
					sim, ok := f().(windower)
					if !ok {
						t.Fatalf("%s simulator is not window-capable", tool)
					}
					if _, finished, err := sim.RunTo(target); err != nil {
						t.Fatal(err)
					} else if finished {
						// Program shorter than the handoff point; the other
						// target still covers the workload.
						continue
					}
					st, err := sim.CaptureArch()
					if err != nil {
						t.Fatal(err)
					}
					if st.Committed == 0 {
						t.Fatalf("capture at cycle target %d committed nothing", target)
					}
					fm := interp.New(sim.Image())
					if r := fm.Continue(st.Committed); r.Outcome != interp.StepLimit {
						t.Fatalf("functional run ended early at %d steps: %v", st.Committed, r.Outcome)
					}
					if err := handoff.Equal(fm.Capture(), st); err != nil {
						t.Fatalf("cycle target %d (committed %d): %v", target, st.Committed, err)
					}
				}
			})
		}
	}
}

// TestSeedArchRoundTrip checks the opposite direction of the handoff:
// state captured on the functional tier, seeded into a freshly booted
// cycle-accurate machine, must capture back bit-identically — and the
// seeded machine must finish the program with exactly the output and
// exit state the functional tier produces.
func TestSeedArchRoundTrip(t *testing.T) {
	for _, tool := range sims.Tools() {
		t.Run(tool, func(t *testing.T) {
			w, err := workload.ByName("qsort")
			if err != nil {
				t.Fatal(err)
			}
			f, err := sims.Factory(tool, w)
			if err != nil {
				t.Fatal(err)
			}
			sim, ok := f().(windower)
			if !ok {
				t.Fatalf("%s simulator is not window-capable", tool)
			}
			ref := interp.New(sim.Image())
			full := ref.Continue(1 << 62)
			if full.Outcome != interp.Completed {
				t.Fatalf("functional reference did not complete: %v", full.Outcome)
			}

			fm := interp.New(sim.Image())
			if r := fm.Continue(3000); r.Outcome != interp.StepLimit {
				t.Fatalf("functional prefix ended early: %v", r.Outcome)
			}
			st := fm.Capture()
			st.Cycle = 12345 // an arbitrary cycle-domain entry point
			sim.SeedArch(st)
			got, err := sim.CaptureArch()
			if err != nil {
				t.Fatal(err)
			}
			if err := handoff.Equal(st, got); err != nil {
				t.Fatalf("round trip: %v", err)
			}
			if got.Cycle != st.Cycle {
				t.Fatalf("seeded machine starts at cycle %d, want %d", got.Cycle, st.Cycle)
			}

			res := sim.Run(1 << 62)
			if res.Status != core.RunCompleted || res.ExitCode != 0 {
				t.Fatalf("seeded run: %v exit %d", res.Status, res.ExitCode)
			}
			if string(res.Output) != string(full.Output) {
				t.Fatalf("seeded run output differs from the functional reference (%d vs %d bytes)",
					len(res.Output), len(full.Output))
			}
			if res.Committed != full.Steps {
				t.Fatalf("seeded run committed %d instructions, functional reference %d", res.Committed, full.Steps)
			}
		})
	}
}
