package sims

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/gem5"
	"repro/internal/isa"
	"repro/internal/marss"
)

// build compiles a hand-written program for both ISAs and returns the
// images keyed by target.
func build(t *testing.T, p *asm.Program) (cisc, risc *asm.Image) {
	t.Helper()
	var err error
	cisc, err = p.Build(asm.TargetCISC)
	if err != nil {
		t.Fatal(err)
	}
	risc, err = p.Build(asm.TargetRISC)
	if err != nil {
		t.Fatal(err)
	}
	return cisc, risc
}

// runAll runs the program on all three machines and returns the results.
func runAll(t *testing.T, p *asm.Program, limit uint64) map[string]core.RunResult {
	t.Helper()
	imgC, imgR := build(t, p)
	return map[string]core.RunResult{
		MaFINX86: marss.New(marss.DefaultConfig(), imgC).Run(limit),
		GeFINX86: gem5.New(gem5.DefaultConfig(gem5.ISAX86), imgC).Run(limit),
		GeFINARM: gem5.New(gem5.DefaultConfig(gem5.ISAARM), imgR).Run(limit),
	}
}

func TestOutcomeLivelock(t *testing.T) {
	// An infinite loop that keeps committing: a cycle-limit timeout
	// without a commit stall — the parser's livelock.
	p := asm.NewProgram()
	f := p.Func("main")
	f.MovImm(isa.R1, 0)
	f.Label("spin")
	f.AddI(isa.R1, isa.R1, 1)
	f.Jmp("spin")
	for tool, res := range runAll(t, p, 300_000) {
		if res.Status != core.RunCycleLimit {
			t.Errorf("%s: %v, want cycle-limit", tool, res.Status)
		}
		if res.CommitStalled {
			t.Errorf("%s: flagged as deadlock while committing", tool)
		}
		cls, det := core.Parser{}.Classify(core.LogRecord{
			Status: res.Status.String(), CommitStalled: res.CommitStalled})
		if cls != core.ClassTimeout || det != core.DetailLivelock {
			t.Errorf("%s: classified %v/%v", tool, cls, det)
		}
	}
}

func TestOutcomeNullDereferenceCrashes(t *testing.T) {
	// A load from the guard page is a process crash on every machine.
	p := asm.NewProgram()
	f := p.Func("main")
	f.MovImm(isa.R1, 0)
	f.Load(8, false, isa.R2, isa.R1, 16)
	f.MovImm(isa.R0, 2)
	f.Syscall()
	for tool, res := range runAll(t, p, 1_000_000) {
		if res.Status != core.RunProcessCrash {
			t.Errorf("%s: %v, want process-crash", tool, res.Status)
		}
		if res.FatalExc != isa.ExcPageFault {
			t.Errorf("%s: fatal exc %v", tool, res.FatalExc)
		}
	}
}

func TestOutcomeStoreToTextCrashes(t *testing.T) {
	// Self-modifying stores hit the read-only text segment.
	p := asm.NewProgram()
	f := p.Func("main")
	f.MovImm(isa.R1, 0x1000) // text base
	f.MovImm(isa.R2, 0x99)
	f.Store(1, isa.R2, isa.R1, 0)
	f.MovImm(isa.R0, 2)
	f.Syscall()
	for tool, res := range runAll(t, p, 1_000_000) {
		if res.Status != core.RunProcessCrash || res.FatalExc != isa.ExcProtFault {
			t.Errorf("%s: %v/%v, want process-crash/protection-fault", tool, res.Status, res.FatalExc)
		}
	}
}

func TestOutcomeJumpIntoKernelPanics(t *testing.T) {
	// Committed control flow into the kernel region is a system crash.
	p := asm.NewProgram()
	p.Bss("slot", 8)
	f := p.Func("main")
	f.MovSym(isa.R1, "slot")
	f.MovImm(isa.R2, 0x300040) // inside the kernel region
	f.Store(8, isa.R2, isa.R1, 0)
	// Corrupt-able indirect control flow: jump through a poisoned
	// memory slot, like a smashed function pointer would.
	f.Load(8, false, isa.R3, isa.R1, 0)
	f.JmpReg(isa.R3)
	for tool, res := range runAll(t, p, 1_000_000) {
		if res.Status != core.RunSystemCrash {
			t.Errorf("%s: %v, want system-crash", tool, res.Status)
		}
	}
}

func TestOutcomeDivideByZeroISASplit(t *testing.T) {
	// Division by zero traps on the CISC ISA (process crash) and
	// silently yields zero on the RISC ISA — the architectural split
	// that makes corrupted divisors an x86-only crash source.
	p := asm.NewProgram()
	p.Bss("out", 8)
	f := p.Func("main")
	f.MovImm(isa.R1, 100)
	f.MovImm(isa.R2, 0)
	f.Div(isa.R3, isa.R1, isa.R2)
	f.MovSym(isa.R4, "out")
	f.Store(8, isa.R3, isa.R4, 0)
	f.MovImm(isa.R0, 1)
	f.MovSym(isa.R1, "out")
	f.MovImm(isa.R2, 8)
	f.Syscall()
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()
	res := runAll(t, p, 1_000_000)
	for _, tool := range []string{MaFINX86, GeFINX86} {
		if res[tool].Status != core.RunProcessCrash || res[tool].FatalExc != isa.ExcDivZero {
			t.Errorf("%s: %v/%v, want divide-error crash", tool, res[tool].Status, res[tool].FatalExc)
		}
	}
	arm := res[GeFINARM]
	if arm.Status != core.RunCompleted {
		t.Fatalf("arm: %v, want completed", arm.Status)
	}
	if len(arm.Output) != 8 || arm.Output[0] != 0 {
		t.Errorf("arm: div-by-zero result %x, want zeros", arm.Output)
	}
}

func TestOutcomeUnalignedAccessIsARMDUE(t *testing.T) {
	// An unaligned word access completes with a recorded alignment
	// event on the ARM-flavoured machine (a DUE when the output is
	// still correct) and silently on the x86-flavoured ones.
	p := asm.NewProgram()
	p.Bss("buf", 16)
	f := p.Func("main")
	f.MovSym(isa.R1, "buf")
	f.MovImm(isa.R2, 0x1122334455667788)
	f.Store(8, isa.R2, isa.R1, 3) // unaligned
	f.Load(8, false, isa.R3, isa.R1, 3)
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()
	res := runAll(t, p, 1_000_000)
	for _, tool := range []string{MaFINX86, GeFINX86} {
		if res[tool].Status != core.RunCompleted || len(res[tool].Events) != 0 {
			t.Errorf("%s: %v with %d events, want clean completion",
				tool, res[tool].Status, len(res[tool].Events))
		}
	}
	arm := res[GeFINARM]
	if arm.Status != core.RunCompleted {
		t.Fatalf("arm: %v", arm.Status)
	}
	if len(arm.Events) == 0 {
		t.Fatal("arm: no alignment events recorded")
	}
	for _, ev := range arm.Events {
		if ev.Exc != isa.ExcAlignment {
			t.Fatalf("arm: unexpected event %v", ev.Exc)
		}
	}
	// Classification: completed + events + (assume matching output) →
	// false DUE.
	rec := core.LogRecord{Status: arm.Status.String(), OutputMatch: true,
		EventKinds: []string{"alignment"}}
	if cls, det := (core.Parser{}).Classify(rec); cls != core.ClassDUE || det != core.DetailFalseDUE {
		t.Fatalf("classified %v/%v", cls, det)
	}
}

func TestOutcomeBadSyscallIsDUE(t *testing.T) {
	// A write() from an unmapped buffer: the kernel records EFAULT and
	// the program completes — a true-DUE (output missing).
	p := asm.NewProgram()
	f := p.Func("main")
	f.MovImm(isa.R0, 1)
	f.MovImm(isa.R1, 0x10) // guard page
	f.MovImm(isa.R2, 32)
	f.Syscall()
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()
	for tool, res := range runAll(t, p, 1_000_000) {
		if res.Status != core.RunCompleted {
			t.Errorf("%s: %v", tool, res.Status)
			continue
		}
		if len(res.Events) != 1 || res.Events[0].Exc != isa.ExcSyscallErr {
			t.Errorf("%s: events %v, want one syscall-error", tool, res.Events)
		}
		if len(res.Output) != 0 {
			t.Errorf("%s: output written from bad buffer", tool)
		}
	}
}

func TestOutcomeDeadlockDetection(t *testing.T) {
	// A load whose address depends on an uncached, never-completing
	// chain cannot be constructed fault-free; instead verify that the
	// deadlock window machinery reports CommitStalled on a run whose
	// cycle limit expires while the pipeline is stalled on a
	// permanently-broken state. We approximate by injecting a
	// permanent stuck-at fault into the issue queue payload of a tight
	// loop — many such runs wedge the scheduler.
	w := buildLoopProgram(t)
	wedged := false
	for i := 0; i < 12 && !wedged; i++ {
		cpu := gem5.New(gem5.DefaultConfig(gem5.ISAX86), w)
		arr := cpu.Structures()["iq"]
		arr.Arm(bitarrayFault(i))
		cpu.WatchArrays([]*bitarray.Array{arr})
		cpu.SetEarlyStop(false) // let it wedge rather than early-stop
		res := cpu.Run(200_000)
		if res.Status == core.RunCycleLimit && res.CommitStalled {
			wedged = true
		}
	}
	if !wedged {
		t.Error("no deadlock observed: stuck-at faults in IQ operand fields must wedge the scheduler")
	}
}

func buildLoopProgram(t *testing.T) *asm.Image {
	t.Helper()
	p := asm.NewProgram()
	p.Bss("out", 8)
	f := p.Func("main")
	f.MovImm(isa.R1, 0)
	f.MovImm(isa.R2, 0)
	f.Label("l")
	f.Add(isa.R2, isa.R2, isa.R1)
	f.AddI(isa.R1, isa.R1, 1)
	f.BrI(isa.CondLT, isa.R1, 1_000_000, "l")
	f.MovImm(isa.R0, 2)
	f.MovImm(isa.R1, 0)
	f.Syscall()
	img, err := p.Build(asm.TargetCISC)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// bitarrayFault builds a deterministic permanent stuck-at fault aimed at
// the packed src1 operand field of an issue-queue entry (bits 84–95 of
// the payload): redirecting a source to a never-ready physical register
// wedges the scheduler — the deadlock the probe is looking for.
func bitarrayFault(i int) bitarray.Fault {
	return bitarray.Fault{
		Kind: bitarray.Permanent, Entry: i % 32, Bit: 84 + i%12,
		StuckVal: uint8(1 - i%2), Start: 1000,
	}
}
