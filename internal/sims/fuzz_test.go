package sims

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/asm/progen"
	"repro/internal/core"
	"repro/internal/gem5"
	"repro/internal/interp"
	"repro/internal/marss"
)

// TestSimulatorsMatchReferenceOnRandomPrograms fuzzes both
// microarchitectural simulators against the functional reference model:
// random generated programs must produce identical outputs on the
// MARSS-like core, the Gem5-like core (both ISAs) and the interpreter —
// catching out-of-order bookkeeping bugs (forwarding, speculation,
// recovery) that the fixed workloads might never trip.
func TestSimulatorsMatchReferenceOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 simulators over a fleet of random programs")
	}
	const programs = 15
	for seed := int64(100); seed < 100+programs; seed++ {
		p := progen.Generate(seed)
		imgC, err := p.Build(asm.TargetCISC)
		if err != nil {
			t.Fatal(err)
		}
		imgR, err := p.Build(asm.TargetRISC)
		if err != nil {
			t.Fatal(err)
		}
		want := interp.Run(imgC, 5_000_000)
		if want.Outcome != interp.Completed {
			t.Fatalf("seed %d reference: %v", seed, want.Outcome)
		}
		runs := map[string]core.RunResult{
			MaFINX86: marss.New(marss.DefaultConfig(), imgC).Run(50_000_000),
			GeFINX86: gem5.New(gem5.DefaultConfig(gem5.ISAX86), imgC).Run(50_000_000),
			GeFINARM: gem5.New(gem5.DefaultConfig(gem5.ISAARM), imgR).Run(50_000_000),
		}
		for tool, res := range runs {
			if res.Status != core.RunCompleted {
				t.Fatalf("seed %d %s: %v (%s)", seed, tool, res.Status, res.AssertMsg)
			}
			if !bytes.Equal(res.Output, want.Output) {
				t.Fatalf("seed %d %s: output diverges from reference", seed, tool)
			}
		}
	}
}
