// Package sims wires the three evaluated tool configurations of the
// paper — MaFIN-x86, GeFIN-x86 and GeFIN-ARM (Table II) — to simulator
// factories the injection campaign controller can consume.
package sims

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/gem5"
	"repro/internal/marss"
	"repro/internal/workload"
)

// Tool names, matching the labels of the paper's figures.
const (
	MaFINX86 = "mafin-x86"
	GeFINX86 = "gefin-x86"
	GeFINARM = "gefin-arm"
)

// Tools returns the three configurations in the paper's bar order
// (M-x86, G-x86, G-ARM).
func Tools() []string { return []string{MaFINX86, GeFINX86, GeFINARM} }

// ShortLabel maps a tool name to the paper's bar label.
func ShortLabel(tool string) string {
	switch tool {
	case MaFINX86:
		return "M-x86"
	case GeFINX86:
		return "G-x86"
	case GeFINARM:
		return "G-ARM"
	default:
		return tool
	}
}

// Factory builds a simulator factory for one tool running one benchmark.
// The image is linked once and shared; every factory call boots a fresh
// machine.
func Factory(tool string, w workload.Workload) (core.Factory, error) {
	switch tool {
	case MaFINX86:
		img, err := w.Image(asm.TargetCISC)
		if err != nil {
			return nil, err
		}
		return func() core.Simulator { return marss.New(marss.DefaultConfig(), img) }, nil
	case GeFINX86:
		img, err := w.Image(asm.TargetCISC)
		if err != nil {
			return nil, err
		}
		return func() core.Simulator { return gem5.New(gem5.DefaultConfig(gem5.ISAX86), img) }, nil
	case GeFINARM:
		img, err := w.Image(asm.TargetRISC)
		if err != nil {
			return nil, err
		}
		return func() core.Simulator { return gem5.New(gem5.DefaultConfig(gem5.ISAARM), img) }, nil
	default:
		return nil, fmt.Errorf("sims: unknown tool %q (have %v)", tool, Tools())
	}
}
