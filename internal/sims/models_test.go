package sims

import (
	"bytes"
	"testing"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestPermanentDominatesTransient pins the fault-model severity
// ordering: for identical fault sites, a permanent stuck-at does at
// least as much aggregate damage as a single transient flip — the
// paper's Table III models must be ordered this way or the stuck-at
// window logic is broken.
func TestPermanentDominatesTransient(t *testing.T) {
	w, err := workload.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factory(GeFINX86, w)
	if err != nil {
		t.Fatal(err)
	}
	goldenSim := f()
	gres := goldenSim.Run(1 << 62)
	if gres.Status != core.RunCompleted {
		t.Fatal(gres.Status)
	}
	arr := goldenSim.Structures()["l1d.data"]
	live := []int{}
	for e := 0; e < arr.Entries() && len(live) < 30; e++ {
		if arr.EntryValid(e) {
			live = append(live, e)
		}
	}
	if len(live) < 10 {
		t.Fatalf("only %d live lines", len(live))
	}

	count := func(kind bitarray.FaultKind) int {
		nonMasked := 0
		for i, e := range live {
			sim := f()
			a := sim.Structures()["l1d.data"]
			a.Arm(bitarray.Fault{
				Kind: kind, Entry: e, Bit: (i * 41) % 512,
				StuckVal: uint8(i % 2), Start: gres.Cycles / 3,
				Duration: gres.Cycles,
			})
			sim.WatchArrays([]*bitarray.Array{a})
			res := sim.Run(gres.Cycles * 3)
			masked := res.Status == core.RunEarlyMasked ||
				(res.Status == core.RunCompleted && bytes.Equal(res.Output, gres.Output) && len(res.Events) == 0)
			if !masked {
				nonMasked++
			}
		}
		return nonMasked
	}

	trans := count(bitarray.Transient)
	perm := count(bitarray.Permanent)
	t.Logf("non-masked on identical sites: transient %d, permanent %d (of %d)", trans, perm, len(live))
	if perm < trans {
		t.Errorf("permanent faults (%d non-masked) milder than transient (%d)", perm, trans)
	}
	if perm == 0 {
		t.Error("no permanent fault caused damage on live L1D lines")
	}
}
