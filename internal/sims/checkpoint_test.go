package sims

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

// TestCheckpointRestoreCompletesIdentically: a machine restored from a
// mid-run drained checkpoint must finish the program with exactly the
// output of a straight run — on every tool configuration.
func TestCheckpointRestoreCompletesIdentically(t *testing.T) {
	w, err := workload.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range Tools() {
		factory, err := Factory(tool, w)
		if err != nil {
			t.Fatal(err)
		}
		straight := factory().Run(1 << 62)
		if straight.Status != core.RunCompleted {
			t.Fatalf("%s: straight run %v", tool, straight.Status)
		}

		base := factory()
		ck, ok := base.(core.Checkpointer)
		if !ok {
			t.Fatalf("%s does not implement Checkpointer", tool)
		}
		reached, finished, err := ck.RunTo(straight.Cycles / 3)
		if err != nil || finished {
			t.Fatalf("%s: RunTo: reached=%d finished=%v err=%v", tool, reached, finished, err)
		}
		if reached < straight.Cycles/3 {
			t.Fatalf("%s: reached %d < target %d", tool, reached, straight.Cycles/3)
		}
		cp, err := ck.Checkpoint()
		if err != nil {
			t.Fatalf("%s: checkpoint: %v", tool, err)
		}

		// Restore into two fresh machines: both must complete with the
		// straight-run output, and identically to each other.
		var restored []core.RunResult
		for i := 0; i < 2; i++ {
			sim := factory()
			if err := sim.(core.Checkpointer).Restore(cp); err != nil {
				t.Fatalf("%s: restore: %v", tool, err)
			}
			res := sim.Run(1 << 62)
			if res.Status != core.RunCompleted {
				t.Fatalf("%s: restored run %v (%s)", tool, res.Status, res.AssertMsg)
			}
			if !bytes.Equal(res.Output, straight.Output) {
				t.Fatalf("%s: restored output differs from straight run", tool)
			}
			restored = append(restored, res)
		}
		if restored[0].Cycles != restored[1].Cycles {
			t.Fatalf("%s: restores not deterministic: %d vs %d cycles",
				tool, restored[0].Cycles, restored[1].Cycles)
		}
		// The checkpoint must also not mutate when restored (deep copy):
		// a third restore after two full runs must still work.
		sim := factory()
		if err := sim.(core.Checkpointer).Restore(cp); err != nil {
			t.Fatal(err)
		}
		if res := sim.Run(1 << 62); !bytes.Equal(res.Output, straight.Output) {
			t.Fatalf("%s: checkpoint state was mutated by earlier restores", tool)
		}
	}
}

// TestCheckpointRejectsForeignState pins the type safety of Restore.
func TestCheckpointRejectsForeignState(t *testing.T) {
	w, _ := workload.ByName("qsort")
	mf, _ := Factory(MaFINX86, w)
	gf, _ := Factory(GeFINX86, w)
	m := mf().(core.Checkpointer)
	if _, _, err := m.RunTo(5000); err != nil {
		t.Fatal(err)
	}
	cp, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := gf().(core.Checkpointer).Restore(cp); err == nil {
		t.Fatal("gem5 accepted a marss checkpoint")
	}
}

// TestCampaignWithCheckpointMatchesOutcomeMix: a checkpointed campaign
// classifies the same way as a boot-run campaign at the aggregate level
// (identical masks, the same machine state at injection time for every
// fault past the checkpoint would be ideal; we assert the golden output
// check still holds and every record lands in a defined state).
func TestCampaignWithCheckpointMatchesOutcomeMix(t *testing.T) {
	w, _ := workload.ByName("qsort")
	factory, _ := Factory(GeFINX86, w)
	golden, err := core.Golden(factory)
	if err != nil {
		t.Fatal(err)
	}
	sim := factory()
	arr := sim.Structures()["rf.int"]
	masks, _ := fault.Generate(fault.GeneratorSpec{
		Structure: "rf.int", Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 24, Seed: 9,
	})
	run := func(useCP bool) core.Breakdown {
		res, err := core.RunCampaign(core.CampaignSpec{
			Benchmark: "qsort", Structure: "rf.int", Masks: masks,
			Factory: factory, UseCheckpoint: useCP, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return core.Parser{}.ParseAll(res.Records)
	}
	plain := run(false)
	ckpt := run(true)
	if plain.Total != ckpt.Total {
		t.Fatalf("totals differ: %d vs %d", plain.Total, ckpt.Total)
	}
	// The masked counts may differ by a run or two at a drained
	// checkpoint boundary, but not wholesale.
	d := plain.Counts[core.ClassMasked] - ckpt.Counts[core.ClassMasked]
	if d < -4 || d > 4 {
		t.Fatalf("checkpointing changed the masked count too much: %v vs %v", plain.Counts, ckpt.Counts)
	}
}
