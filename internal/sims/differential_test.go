package sims

import (
	"testing"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/workload"
)

// liveEntries returns the indices of structure entries still valid at
// the end of a golden run — for the L1I these are the resident (hot)
// code lines.
func liveEntries(t *testing.T, tool, bench, structure string) ([]int, uint64) {
	t.Helper()
	w, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factory(tool, w)
	if err != nil {
		t.Fatal(err)
	}
	sim := f()
	res := sim.Run(1 << 62)
	if res.Status != core.RunCompleted {
		t.Fatalf("golden %s/%s: %v", tool, bench, res.Status)
	}
	arr := sim.Structures()[structure]
	var live []int
	for e := 0; e < arr.Entries(); e++ {
		if arr.EntryValid(e) {
			live = append(live, e)
		}
	}
	return live, res.Cycles
}

// injectInto runs one injection into a fresh simulator.
func injectInto(t *testing.T, tool, bench, structure string, entry, bit int, cycle, limit uint64) core.RunResult {
	t.Helper()
	w, _ := workload.ByName(bench)
	f, _ := Factory(tool, w)
	sim := f()
	arr := sim.Structures()[structure]
	arr.Arm(bitarray.Fault{Kind: bitarray.Transient, Entry: entry, Bit: bit, Start: cycle})
	sim.WatchArrays([]*bitarray.Array{arr})
	return sim.Run(limit)
}

// TestRemark8AssertVsCrash pins the paper's Remark 8 mechanism: the same
// hot instruction-cache corruption that stops MARSS with an internal
// assertion is delivered as an architectural fault — a crash — by Gem5.
func TestRemark8AssertVsCrash(t *testing.T) {
	const bench = "sha"
	counts := map[string]map[core.RunStatus]int{}
	for _, tool := range []string{MaFINX86, GeFINX86} {
		live, cycles := liveEntries(t, tool, bench, "l1i.data")
		if len(live) < 8 {
			t.Fatalf("%s: only %d live L1I lines", tool, len(live))
		}
		counts[tool] = map[core.RunStatus]int{}
		n := 0
		for _, e := range live {
			// Several bit positions per hot line, injected early so
			// the corrupted line is certain to be fetched again.
			for _, bit := range []int{1, 40, 81, 122, 203, 284, 365, 446} {
				res := injectInto(t, tool, bench, "l1i.data", e, bit, cycles/8, cycles*3)
				counts[tool][res.Status]++
				n++
				if n >= 160 {
					break
				}
			}
			if n >= 160 {
				break
			}
		}
	}
	t.Logf("MaFIN: %v", counts[MaFINX86])
	t.Logf("GeFIN: %v", counts[GeFINX86])
	mAssert := counts[MaFINX86][core.RunAssert]
	gAssert := counts[GeFINX86][core.RunAssert]
	gCrash := counts[GeFINX86][core.RunProcessCrash] + counts[GeFINX86][core.RunSystemCrash] +
		counts[GeFINX86][core.RunSimCrash]
	if mAssert == 0 {
		t.Error("MaFIN produced no assertions from hot L1I corruption (Remark 8 mechanism missing)")
	}
	if gAssert >= mAssert {
		t.Errorf("GeFIN asserts (%d) >= MaFIN asserts (%d); the assert-density contrast is gone", gAssert, mAssert)
	}
	if gCrash == 0 {
		t.Error("GeFIN produced no crashes from hot L1I corruption")
	}
}

// TestRemark3DualCopyMasking pins the Remark 3 cache-policy contrast at
// the system level: identical dirty-line corruption, injected into the
// same physical line state on both tools, is masked more often by the
// MARSS-like dual-copy hierarchy than by the Gem5-like write-back one.
func TestRemark3DualCopyMasking(t *testing.T) {
	const bench = "qsort"
	vulns := map[string]int{}
	for _, tool := range []string{MaFINX86, GeFINX86} {
		live, cycles := liveEntries(t, tool, bench, "l1d.data")
		if len(live) < 16 {
			t.Fatalf("%s: only %d live L1D lines", tool, len(live))
		}
		w, _ := workload.ByName(bench)
		f, _ := Factory(tool, w)
		golden := f()
		gres := golden.Run(1 << 62)
		nonMasked := 0
		n := 0
		for i, e := range live {
			res := injectInto(t, tool, bench, "l1d.data", e, (i*37)%512, cycles/2, cycles*3)
			if !(res.Status == core.RunEarlyMasked ||
				(res.Status == core.RunCompleted && string(res.Output) == string(gres.Output) && len(res.Events) == 0)) {
				nonMasked++
			}
			n++
			if n >= 120 {
				break
			}
		}
		vulns[tool] = nonMasked
	}
	t.Logf("non-masked dirty-line corruptions: MaFIN %d, GeFIN %d", vulns[MaFINX86], vulns[GeFINX86])
	if vulns[MaFINX86] > vulns[GeFINX86] {
		t.Errorf("MaFIN (%d) more vulnerable than GeFIN (%d) on targeted L1D faults; dual-copy masking not visible",
			vulns[MaFINX86], vulns[GeFINX86])
	}
}
