package sims

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestAllToolsAllBenchmarksFaultFree is the repository's central
// integration test: every tool configuration must run every benchmark to
// completion, producing exactly the pure-Go reference output with no
// kernel events. It also logs the fault-free cycle counts that size the
// injection campaigns.
func TestAllToolsAllBenchmarksFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("30 full simulations; skipped in -short mode")
	}
	for _, w := range workload.All() {
		want := w.Reference()
		for _, tool := range Tools() {
			f, err := Factory(tool, w)
			if err != nil {
				t.Fatalf("%s/%s: %v", tool, w.Name, err)
			}
			sim := f()
			res := sim.Run(1 << 62)
			if res.Status != core.RunCompleted {
				t.Errorf("%s/%s: %v (%s) after %d cycles",
					tool, w.Name, res.Status, res.AssertMsg, res.Cycles)
				continue
			}
			if !bytes.Equal(res.Output, want) {
				t.Errorf("%s/%s: output mismatch (%d vs %d bytes)",
					tool, w.Name, len(res.Output), len(want))
				continue
			}
			if len(res.Events) != 0 {
				t.Errorf("%s/%s: kernel events %v", tool, w.Name, res.Events[:1])
			}
			s := sim.Stats()
			t.Logf("%s/%-6s: %8d cycles, %8d instrs, IPC %.2f",
				tool, w.Name, res.Cycles, res.Committed,
				float64(s["committed_uops"])/float64(res.Cycles))
		}
	}
}

func TestFactoryUnknownTool(t *testing.T) {
	w, _ := workload.ByName("qsort")
	if _, err := Factory("nope", w); err == nil {
		t.Fatal("unknown tool accepted")
	}
}

func TestShortLabels(t *testing.T) {
	want := map[string]string{MaFINX86: "M-x86", GeFINX86: "G-x86", GeFINARM: "G-ARM"}
	for tool, lbl := range want {
		if ShortLabel(tool) != lbl {
			t.Errorf("%s label %q", tool, ShortLabel(tool))
		}
	}
}
