package sims

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

// BenchmarkSimulatorThroughput measures host-side simulation speed
// (simulated cycles per host second) for each tool on one benchmark —
// the number that sizes real injection campaigns.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	for _, tool := range Tools() {
		factory, err := Factory(tool, w)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tool, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				sim := factory()
				res := sim.Run(1 << 62)
				if res.Status != core.RunCompleted {
					b.Fatalf("%v", res.Status)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
		})
	}
}

// BenchmarkInjectionRun measures one full injection run (boot, arm,
// simulate, classify) — the unit cost of a campaign.
func BenchmarkInjectionRun(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := Factory(GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		live, _ := liveMask(i, golden.Cycles)
		if _, err := core.RunOne(factory, live, golden, 3, true); err != nil {
			b.Fatal(err)
		}
	}
}

// liveMask derives a deterministic single-site mask for the benchmark.
func liveMask(i int, cycles uint64) (fault.Mask, bool) {
	return fault.Mask{ID: i, Sites: []fault.Site{{
		Structure: "rf.int",
		Entry:     (i * 13) % 256,
		Bit:       (i * 29) % 64,
		Model:     fault.ModelTransient,
		Cycle:     uint64(i%10+1) * cycles / 11,
	}}}, true
}
