package bitarray

import "testing"

// Fault-free traffic must never touch the observation counters, and
// slow-path traffic must count exactly the accesses made while the
// observation gate is up — the invariant behind the telemetry layer's
// fast-path hit rate.
func TestObservationCounters(t *testing.T) {
	a := New("s", 4, 64)
	a.WriteUint64(1, 42)
	a.ReadUint64(1)
	if a.ObservedReads() != 0 || a.ObservedWrites() != 0 {
		t.Fatalf("fault-free traffic took the slow path: %d reads, %d writes",
			a.ObservedReads(), a.ObservedWrites())
	}

	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 5, Start: 10})
	a.Tick(10) // injection: live, gate up
	a.WriteUint64(2, 7)
	a.ReadUint64(2)
	if a.ObservedReads() != 1 || a.ObservedWrites() != 1 {
		t.Fatalf("live-fault traffic = %d/%d observed reads/writes, want 1/1",
			a.ObservedReads(), a.ObservedWrites())
	}

	a.ReadUint64(1) // consumes the transient: gate drops
	if a.ObservedReads() != 2 {
		t.Fatalf("consuming read not counted: %d", a.ObservedReads())
	}
	a.ReadUint64(1)
	a.WriteUint64(1, 9)
	if a.ObservedReads() != 2 || a.ObservedWrites() != 1 {
		t.Fatalf("post-consumption traffic took the slow path: %d/%d",
			a.ObservedReads(), a.ObservedWrites())
	}
	if a.Reads() != 4 || a.Writes() != 3 {
		t.Fatalf("total accesses = %d/%d reads/writes, want 4/3", a.Reads(), a.Writes())
	}
}

// The byte-range accessors share the same counters and first-observation
// stamping as the word accessors.
func TestObservationCountersByteRange(t *testing.T) {
	a := New("s", 4, 64)
	a.WriteUint64(0, 0xffff)
	a.Arm(Fault{Kind: Transient, Entry: 0, Bit: 3, Start: 7})
	a.Tick(7)
	buf := make([]byte, 8)
	a.ReadBytes(0, 0, buf)
	if a.ObservedReads() != 1 {
		t.Fatalf("byte read not counted: %d", a.ObservedReads())
	}
	if cyc, ok := a.FirstObservation(); !ok || cyc != 7 {
		t.Fatalf("FirstObservation = %d,%v, want 7,true", cyc, ok)
	}
}

// FirstObservation must report the Tick cycle of the read that consumed
// the fault, and stay absent for faults that are never read.
func TestFirstObservation(t *testing.T) {
	a := New("s", 4, 64)
	a.WriteUint64(1, 42)
	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 0, Start: 10})
	if _, ok := a.FirstObservation(); ok {
		t.Fatal("observation reported before injection")
	}
	a.Tick(10)
	if _, ok := a.FirstObservation(); ok {
		t.Fatal("observation reported before any read")
	}
	a.Tick(25)
	a.ReadUint64(1)
	cyc, ok := a.FirstObservation()
	if !ok || cyc != 25 {
		t.Fatalf("FirstObservation = %d,%v, want 25,true", cyc, ok)
	}
	// Later reads must not move the stamp.
	a.Tick(40)
	a.ReadUint64(1)
	if cyc, _ := a.FirstObservation(); cyc != 25 {
		t.Fatalf("FirstObservation moved to %d after a later read", cyc)
	}

	// An overwritten fault is never observed.
	b := New("s", 4, 64)
	b.WriteUint64(2, 7)
	b.Arm(Fault{Kind: Transient, Entry: 2, Bit: 0, Start: 0})
	b.Tick(0)
	b.WriteUint64(2, 7)
	if st := b.FaultStatus(); st != StatusOverwritten {
		t.Fatalf("status = %v, want StatusOverwritten", st)
	}
	if _, ok := b.FirstObservation(); ok {
		t.Fatal("overwritten fault reported an observation")
	}
}

// Reset must clear the observation counters along with the access
// counters so checkpoint-restored runs start from zero.
func TestResetClearsObservationCounters(t *testing.T) {
	a := New("s", 4, 64)
	a.WriteUint64(0, 1)
	a.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 0, StuckVal: 1, Start: 0})
	a.Tick(0)
	a.ReadUint64(0)
	a.WriteUint64(0, 2)
	if a.ObservedReads() == 0 || a.ObservedWrites() == 0 {
		t.Fatal("setup made no slow-path accesses")
	}
	a.Reset()
	if a.Reads() != 0 || a.Writes() != 0 || a.ObservedReads() != 0 || a.ObservedWrites() != 0 {
		t.Fatalf("Reset left counters: %d/%d reads, %d/%d observed",
			a.Reads(), a.Writes(), a.ObservedReads(), a.ObservedWrites())
	}
}
