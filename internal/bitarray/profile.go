package bitarray

import (
	"sort"
	"sync"
)

// AccessKind classifies one liveness-profile event.
type AccessKind uint8

const (
	// AccessRead is a read covering a bit range of an entry.
	AccessRead AccessKind = iota
	// AccessWrite is a write covering a bit range of an entry.
	AccessWrite
	// AccessEvict is an entry-wide invalidation (InvalidateObserve).
	AccessEvict
)

// String returns the profile-event name of the kind.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessEvict:
		return "evict"
	default:
		return "unknown"
	}
}

// ProfileEvent is one access of one entry during a profiled fault-free
// run. The bit range mirrors exactly what the fault-observation slow
// path of the corresponding accessor would check against an armed fault:
// word accesses cover their whole 64-bit word (including single-bit
// writes, which go through the word path), byte-range accesses cover
// [off*8, off*8+len*8), and evictions cover the whole entry. Keeping the
// ranges identical to the runtime observation rules is what makes
// profile-based fault classification agree with simulation.
type ProfileEvent struct {
	// Cycle is the simulator cycle the access happened at. Events of one
	// entry are ordered by Cycle; ties keep execution order.
	Cycle uint64
	// FirstBit and NBits delimit the covered bit range of the entry.
	FirstBit uint16
	NBits    uint16
	// Kind is the access kind.
	Kind AccessKind
}

// Covers reports whether the event's bit range includes bit.
func (e ProfileEvent) Covers(bit int) bool {
	return int(e.FirstBit) <= bit && bit < int(e.FirstBit)+int(e.NBits)
}

// Profile is the liveness profile of one array over one fault-free run:
// per entry, the ordered accesses with their covered bit ranges. The
// pruning engine queries it to find the first access at or after a fault
// injection cycle that would touch the faulty bit.
type Profile struct {
	// Name is the structure name of the profiled array.
	Name string
	// Entries and BitsPerEntry echo the array geometry.
	Entries      int
	BitsPerEntry int
	// Events holds, per entry, the accesses in nondecreasing cycle order
	// (within a cycle, in execution order).
	Events [][]ProfileEvent
}

// NextCovering returns the index and value of the first event of entry at
// or after cycle whose bit range covers bit. ok is false when no such
// event exists — the bit is never accessed again. The fault state machine
// ticks at the top of a cycle before any work, so an access in the
// injection cycle itself already sees the fault and counts.
func (p *Profile) NextCovering(entry, bit int, cycle uint64) (int, ProfileEvent, bool) {
	if entry < 0 || entry >= len(p.Events) {
		return 0, ProfileEvent{}, false
	}
	evs := p.Events[entry]
	i := sort.Search(len(evs), func(j int) bool { return evs[j].Cycle >= cycle })
	for ; i < len(evs); i++ {
		if evs[i].Covers(bit) {
			return i, evs[i], true
		}
	}
	return 0, ProfileEvent{}, false
}

// EventCount returns the total number of recorded events.
func (p *Profile) EventCount() int {
	n := 0
	for _, evs := range p.Events {
		n += len(evs)
	}
	return n
}

// profiler is the recording state attached to an Array while profiling
// is on. It exists only during fault-free golden replays, so it never
// coexists with hot injection runs; the accessors gate on a single nil
// check, keeping the disabled cost to one predictable branch. Events go
// into fixed-size execution-order chunks — a full chunk is set aside
// and a fresh one started, so recording never copies what it already
// recorded (a golden replay logs millions of events per array; growing
// one flat slice spends more time in copies than in the recording) —
// and are bucketed per entry only at StopProfile.
type profiler struct {
	cycle  func() uint64
	chunks [][]flatEvent // full chunks, in execution order
	cur    []flatEvent   // chunk being filled, len < cap outside profRecord
}

// flatEvent is one recorded access before per-entry bucketing.
type flatEvent struct {
	cycle           uint64
	entry           int32
	firstBit, nbits uint16
	kind            AccessKind
}

// profChunk is the event capacity of one recording chunk (~1.5 MiB).
const profChunk = 1 << 16

// chunkPool recycles recording chunks across profiling sessions and
// arrays; a recycled chunk is re-sliced empty and overwritten by
// appends, so it needs no zeroing either.
var chunkPool sync.Pool

func newChunk() []flatEvent {
	if v := chunkPool.Get(); v != nil {
		return (*v.(*[]flatEvent))[:0]
	}
	return make([]flatEvent, 0, profChunk)
}

// StartProfile turns on liveness profiling, sampling the current cycle
// from cycle on every access. Profiling records every read, write and
// eviction per entry until StopProfile; it is meant for fault-free
// golden replays, not for injection runs.
func (a *Array) StartProfile(cycle func() uint64) {
	a.prof = &profiler{
		cycle: cycle,
		cur:   newChunk(),
	}
}

// StopProfile turns profiling off and returns the recorded profile, or
// nil when profiling was never started. The flat buffer is bucketed
// into exactly-sized per-entry slices here; the stable fill preserves
// execution order within a cycle.
func (a *Array) StopProfile() *Profile {
	p := a.prof
	if p == nil {
		return nil
	}
	a.prof = nil
	all := append(p.chunks, p.cur)
	counts := make([]int, a.entries)
	for _, recs := range all {
		for _, r := range recs {
			counts[r.entry]++
		}
	}
	events := make([][]ProfileEvent, a.entries)
	for e, n := range counts {
		if n > 0 {
			events[e] = make([]ProfileEvent, 0, n)
		}
	}
	// Chunks are bucketed in recording order, so per-entry event order
	// stays the execution order.
	for _, recs := range all {
		for _, r := range recs {
			events[r.entry] = append(events[r.entry], ProfileEvent{
				Cycle:    r.cycle,
				FirstBit: r.firstBit,
				NBits:    r.nbits,
				Kind:     r.kind,
			})
		}
	}
	for i := range all {
		chunkPool.Put(&all[i])
	}
	p.chunks, p.cur = nil, nil
	return &Profile{
		Name:         a.name,
		Entries:      a.entries,
		BitsPerEntry: a.bitsPerEntry,
		Events:       events,
	}
}

// profRecord appends one event for entry. Callers pass the same bit
// range the matching observe function would check.
func (a *Array) profRecord(kind AccessKind, entry, firstBit, nbits int) {
	p := a.prof
	if len(p.cur) == cap(p.cur) {
		p.chunks = append(p.chunks, p.cur)
		p.cur = newChunk()
	}
	p.cur = append(p.cur, flatEvent{
		cycle:    p.cycle(),
		entry:    int32(entry),     //nolint:gosec // entries is far below 2^31
		firstBit: uint16(firstBit), //nolint:gosec // bitsPerEntry is far below 64k
		nbits:    uint16(nbits),    //nolint:gosec // ranges are entry-bounded
		kind:     kind,
	})
}
