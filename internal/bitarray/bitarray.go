// Package bitarray models hardware storage arrays at bit granularity.
//
// Every microarchitectural structure that holds state in the simulators —
// register files, cache tag/valid/data arrays, load/store queues, issue
// queues, reorder buffers, branch target buffers, TLBs — is built on
// Array. An Array is a grid of entries × bits-per-entry storage cells that
// supports ordinary word/byte access plus fault arming: single bits can be
// flipped (transient faults) or forced to a value for a window of cycles
// (intermittent faults) or forever (permanent faults).
//
// Arrays also observe accesses to the faulty location so that an injection
// campaign can stop a run early when the outcome is already decided: a
// transient fault whose bit is overwritten before it is ever read is
// guaranteed masked (optimization (ii) of the paper, §III.B), and a fault
// injected into an invalid/unused entry is likewise guaranteed masked
// (optimization (i)).
package bitarray

import "fmt"

// Status describes the lifecycle of an armed fault inside an Array.
type Status uint8

const (
	// StatusNone means no fault is armed.
	StatusNone Status = iota
	// StatusArmed means a fault is armed but its start cycle has not
	// been reached yet.
	StatusArmed
	// StatusLive means the fault has been applied and no read has
	// touched the faulty bit yet.
	StatusLive
	// StatusConsumed means at least one read has observed the faulty
	// location after the fault was applied; the outcome now depends on
	// program behaviour and the run must execute to its end.
	StatusConsumed
	// StatusOverwritten means a write fully covered the flipped bit
	// before any read observed it; a transient fault in this state is
	// guaranteed masked and the run may stop early.
	StatusOverwritten
	// StatusSkippedInvalid means the fault targeted an entry that was
	// invalid/unused at injection time; guaranteed masked.
	StatusSkippedInvalid
)

// String returns the reliability-report name of the status.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusArmed:
		return "armed"
	case StatusLive:
		return "live"
	case StatusConsumed:
		return "consumed"
	case StatusOverwritten:
		return "overwritten"
	case StatusSkippedInvalid:
		return "skipped-invalid"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// FaultKind selects one of the fault models of Table III of the paper.
type FaultKind uint8

const (
	// Transient flips the bit once at the start cycle.
	Transient FaultKind = iota
	// Intermittent forces the bit to StuckVal from the start cycle for
	// Duration cycles.
	Intermittent
	// Permanent forces the bit to StuckVal from the start cycle to the
	// end of the simulation.
	Permanent
)

// String returns the fault-model name used in mask repositories.
func (k FaultKind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Intermittent:
		return "intermittent"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault describes a single-bit fault armed on an Array.
type Fault struct {
	Kind     FaultKind
	Entry    int    // target entry index
	Bit      int    // bit position within the entry (0 = LSB of byte 0)
	StuckVal uint8  // 0 or 1; used by Intermittent and Permanent
	Start    uint64 // activation cycle
	Duration uint64 // active window in cycles; used by Intermittent
}

// faultState is the live tracking attached to an Array once a fault is
// armed on it.
type faultState struct {
	f      Fault
	status Status
	// active reports whether a stuck-at window is currently forcing the
	// bit (intermittent within window, permanent after start).
	active bool
	// observed records the first read that touched the faulty location
	// after injection, and the Tick cycle it happened at.
	observed bool
	obsCycle uint64
	// touches counts every read that consumed the faulty location and
	// lastTouch stamps the latest one — the corruption footprint over
	// time the divergence recorder reports. Both are bumped only inside
	// the already-matched observation branch, so the fast path and the
	// unmatched slow path pay nothing for them.
	touches   uint64
	lastTouch uint64
}

// ValidFunc reports whether an entry currently holds live (allocated,
// valid) state. Structures attach one so that the injector can apply the
// invalid-entry early stop.
type ValidFunc func(entry int) bool

// Array is a faultable storage array of entries × bitsPerEntry bits.
// The zero value is not usable; use New.
type Array struct {
	name         string
	entries      int
	bitsPerEntry int
	wordsPerEnt  int
	data         []uint64 // entries * wordsPerEnt words, little-endian bit order
	valid        ValidFunc
	faults       []*faultState
	// needObs caches whether any armed fault can still interact with an
	// access: a live transient (a read consumes it, a covering write
	// masks it) or a stuck-at fault inside its forcing window. It is the
	// fast-path gate of the Read*/Write* accessors — the innermost loop
	// of every simulation — so golden runs, runs whose fault has settled
	// (consumed, overwritten, skipped) and runs whose intermittent
	// window has expired skip the observation bookkeeping entirely.
	needObs bool

	// Access counters; cheap and useful for the statistics module.
	reads  uint64
	writes uint64
	// Observation slow-path counters: accesses that ran an observe
	// function because needObs was up. The fast-path hit count the
	// telemetry layer reports is (reads+writes) - (obsReads+obsWrites);
	// incrementing only on the slow path keeps the fast path untouched.
	obsReads  uint64
	obsWrites uint64
	// tickCycle is the cycle of the latest Tick, used to stamp the
	// first-observation cycle of a consumed fault.
	tickCycle uint64

	// prof, when non-nil, records every access into a liveness profile
	// (see profile.go). It is nil outside golden-run profiling, so the
	// accessors pay one predictable branch for it.
	prof *profiler
}

// New returns an Array named name with entries entries of bitsPerEntry
// bits each. It panics if the geometry is not positive, since array
// geometry is fixed at configuration time and a bad geometry is a
// programming error.
func New(name string, entries, bitsPerEntry int) *Array {
	if entries <= 0 || bitsPerEntry <= 0 {
		panic(fmt.Sprintf("bitarray.New(%q): bad geometry %d×%d", name, entries, bitsPerEntry))
	}
	w := (bitsPerEntry + 63) / 64
	return &Array{
		name:         name,
		entries:      entries,
		bitsPerEntry: bitsPerEntry,
		wordsPerEnt:  w,
		data:         make([]uint64, entries*w),
	}
}

// Name returns the structure name the array was created with.
func (a *Array) Name() string { return a.name }

// Entries returns the number of entries.
func (a *Array) Entries() int { return a.entries }

// BitsPerEntry returns the number of bits in each entry.
func (a *Array) BitsPerEntry() int { return a.bitsPerEntry }

// TotalBits returns the total number of storage bits, the population size
// used by statistical fault sampling.
func (a *Array) TotalBits() int { return a.entries * a.bitsPerEntry }

// Reads returns the number of read accesses performed so far.
func (a *Array) Reads() uint64 { return a.reads }

// Writes returns the number of write accesses performed so far.
func (a *Array) Writes() uint64 { return a.writes }

// ObservedReads returns the reads that took the observation slow path;
// Reads() - ObservedReads() is the fast-path read hit count.
func (a *Array) ObservedReads() uint64 { return a.obsReads }

// ObservedWrites returns the writes that took the observation slow path.
func (a *Array) ObservedWrites() uint64 { return a.obsWrites }

// FirstObservation returns the cycle of the earliest read that consumed
// any armed fault's location after injection, and whether one happened.
func (a *Array) FirstObservation() (uint64, bool) {
	min, ok := ^uint64(0), false
	for _, fs := range a.faults {
		if fs.observed && fs.obsCycle < min {
			min, ok = fs.obsCycle, true
		}
	}
	if !ok {
		return 0, false
	}
	return min, true
}

// FaultTouches returns the total number of reads that consumed any
// armed fault's location and the Tick cycle of the latest one — the
// corruption footprint the divergence recorder reports.
func (a *Array) FaultTouches() (n, last uint64) {
	for _, fs := range a.faults {
		n += fs.touches
		if fs.lastTouch > last {
			last = fs.lastTouch
		}
	}
	return n, last
}

// SetValidFunc attaches a validity probe used by the invalid-entry early
// stop. A nil probe means every entry is considered valid.
func (a *Array) SetValidFunc(f ValidFunc) { a.valid = f }

// EntryValid reports whether the entry currently holds live state.
func (a *Array) EntryValid(entry int) bool {
	if a.valid == nil {
		return true
	}
	return a.valid(entry)
}

// checkEntry is kept inlinable (the formatting panic lives in its own
// function): it runs on every access of every array, so the bounds
// check must cost a compare, not a call.
func (a *Array) checkEntry(entry int) {
	if entry < 0 || entry >= a.entries {
		a.entryPanic(entry)
	}
}

//go:noinline
func (a *Array) entryPanic(entry int) {
	panic(fmt.Sprintf("bitarray %q: entry %d out of range [0,%d)", a.name, entry, a.entries))
}

// ---- Plain storage access -------------------------------------------------

// ReadWord reads the 64-bit word at word index word of entry. Bits beyond
// bitsPerEntry read as zero. The access is observed against any live
// fault.
func (a *Array) ReadWord(entry, word int) uint64 {
	a.checkEntry(entry)
	a.reads++
	if a.prof != nil {
		a.profRecord(AccessRead, entry, word*64, 64)
	}
	v := a.data[entry*a.wordsPerEnt+word]
	if a.needObs {
		v = a.observeRead(entry, word*64, 64, v)
	}
	return v
}

// WriteWord writes the 64-bit word at word index word of entry.
func (a *Array) WriteWord(entry, word int, v uint64) {
	a.checkEntry(entry)
	a.writes++
	if a.prof != nil {
		a.profRecord(AccessWrite, entry, word*64, 64)
	}
	if a.needObs {
		v = a.observeWrite(entry, word*64, 64, v)
	}
	a.data[entry*a.wordsPerEnt+word] = v
}

// ReadWordPair reads words 0 and 1 of entry — the access shape of
// queue-like arrays whose entries pack into two words. It is
// semantically exactly two ReadWord calls (same counters, same profile
// events in the same order, same per-word fault observation) with the
// per-access overhead paid once; issue-stage scans are hot enough for
// the difference to show on whole-campaign throughput.
func (a *Array) ReadWordPair(entry int) (w0, w1 uint64) {
	a.checkEntry(entry)
	a.reads += 2
	if a.prof != nil {
		a.profRecord(AccessRead, entry, 0, 64)
		a.profRecord(AccessRead, entry, 64, 64)
	}
	base := entry * a.wordsPerEnt
	w0 = a.data[base]
	w1 = a.data[base+1]
	if a.needObs {
		w0 = a.observeRead(entry, 0, 64, w0)
		w1 = a.observeRead(entry, 64, 64, w1)
	}
	return w0, w1
}

// ReadUint64 reads word 0 of entry; convenience for register-file-like
// arrays whose entries are at most 64 bits wide.
func (a *Array) ReadUint64(entry int) uint64 { return a.ReadWord(entry, 0) }

// WriteUint64 writes word 0 of entry.
func (a *Array) WriteUint64(entry int, v uint64) { a.WriteWord(entry, 0, v) }

// ReadBytes fills dst with len(dst) bytes starting at byte offset off of
// entry. It is used by cache-line-shaped arrays.
func (a *Array) ReadBytes(entry, off int, dst []byte) {
	a.checkEntry(entry)
	a.reads++
	if a.prof != nil {
		a.profRecord(AccessRead, entry, off*8, len(dst)*8)
	}
	base := entry * a.wordsPerEnt
	for i := range dst {
		bo := off + i
		w := a.data[base+bo/8]
		dst[i] = byte(w >> uint((bo%8)*8)) //nolint:gosec // bounded shift
	}
	if a.needObs {
		a.observeReadBytes(entry, off, len(dst), dst)
	}
}

// WriteBytes stores src at byte offset off of entry.
func (a *Array) WriteBytes(entry, off int, src []byte) {
	a.checkEntry(entry)
	a.writes++
	if a.prof != nil {
		a.profRecord(AccessWrite, entry, off*8, len(src)*8)
	}
	if a.needObs {
		src = a.observeWriteBytes(entry, off, src)
	}
	base := entry * a.wordsPerEnt
	for i, b := range src {
		bo := off + i
		wi := base + bo/8
		sh := uint((bo % 8) * 8)
		a.data[wi] = a.data[wi]&^(0xff<<sh) | uint64(b)<<sh
	}
}

// ReadBit reads a single bit of entry. Bit 0 is the LSB of byte 0.
func (a *Array) ReadBit(entry, bit int) uint8 {
	w := a.ReadWord(entry, bit/64)
	return uint8(w>>uint(bit%64)) & 1
}

// WriteBit writes a single bit of entry.
func (a *Array) WriteBit(entry, bit int, v uint8) {
	word := bit / 64
	a.checkEntry(entry)
	a.writes++
	if a.prof != nil {
		// A single-bit write observes (and so covers) its whole word,
		// matching the observeWrite call below.
		a.profRecord(AccessWrite, entry, word*64, 64)
	}
	idx := entry*a.wordsPerEnt + word
	cur := a.data[idx]
	mask := uint64(1) << uint(bit%64)
	nv := cur &^ mask
	if v != 0 {
		nv |= mask
	}
	if a.needObs {
		nv = a.observeWrite(entry, word*64, 64, nv)
	}
	a.data[idx] = nv
}

// rawFlip flips a stored bit without access accounting; used when the
// injector applies a transient fault.
func (a *Array) rawFlip(entry, bit int) {
	a.data[entry*a.wordsPerEnt+bit/64] ^= 1 << uint(bit%64)
}

// rawBit returns the stored bit without access accounting.
func (a *Array) rawBit(entry, bit int) uint8 {
	return uint8(a.data[entry*a.wordsPerEnt+bit/64]>>uint(bit%64)) & 1
}

// rawSet stores a bit without access accounting.
func (a *Array) rawSet(entry, bit int, v uint8) {
	idx := entry*a.wordsPerEnt + bit/64
	mask := uint64(1) << uint(bit%64)
	if v != 0 {
		a.data[idx] |= mask
	} else {
		a.data[idx] &^= mask
	}
}

// Reset zeroes all storage and clears access counters. Any armed fault is
// kept armed (Reset is used between the golden warm-up and the faulty run
// only by tests; campaigns build fresh simulators instead).
func (a *Array) Reset() {
	for i := range a.data {
		a.data[i] = 0
	}
	a.reads, a.writes = 0, 0
	a.obsReads, a.obsWrites = 0, 0
}

// Snapshot returns a copy of the raw storage, for checkpointing.
func (a *Array) Snapshot() []uint64 {
	s := make([]uint64, len(a.data))
	copy(s, a.data)
	return s
}

// RestoreSnapshot restores raw storage from a Snapshot copy. It panics if
// the snapshot does not match the array geometry.
func (a *Array) RestoreSnapshot(s []uint64) {
	if len(s) != len(a.data) {
		panic(fmt.Sprintf("bitarray %q: snapshot size %d != %d", a.name, len(s), len(a.data)))
	}
	copy(a.data, s)
}

// ---- Fault arming and observation ------------------------------------------

// Arm attaches fault f to the array. Several faults may be armed on one
// array (multi-bit upsets); each is tracked independently. A fault does
// not affect storage until Tick reaches its start cycle.
func (a *Array) Arm(f Fault) {
	if f.Entry < 0 || f.Entry >= a.entries || f.Bit < 0 || f.Bit >= a.bitsPerEntry {
		panic(fmt.Sprintf("bitarray %q: fault target (%d,%d) out of range %d×%d",
			a.name, f.Entry, f.Bit, a.entries, a.bitsPerEntry))
	}
	a.faults = append(a.faults, &faultState{f: f, status: StatusArmed})
	// Conservatively observe until the first Tick settles the state; an
	// armed-but-unapplied fault is a no-op in the observe functions, so
	// this exactly matches the pre-fast-path behaviour.
	a.needObs = true
}

// Disarm removes every armed fault.
func (a *Array) Disarm() {
	a.faults = nil
	a.needObs = false
}

// needsObs reports whether the fault can still interact with an access:
// a live transient waits for its consuming read or masking write, and a
// stuck-at fault forces the cell only while its window is active. A
// consumed/overwritten/skipped transient and an expired intermittent are
// inert — every observe function is a no-op on them.
func (fs *faultState) needsObs() bool {
	if fs.f.Kind == Transient {
		return fs.status == StatusLive
	}
	return fs.active
}

// updateObs recomputes the fast-path gate after a fault state change.
func (a *Array) updateObs() {
	for _, fs := range a.faults {
		if fs.needsObs() {
			a.needObs = true
			return
		}
	}
	a.needObs = false
}

// FaultStatus aggregates the status of the armed faults, for the
// early-stop decision: a run may stop only when every fault is provably
// masked, so the aggregate reports a live or consumed fault whenever one
// exists, and a masked status only when all faults settled masked.
func (a *Array) FaultStatus() Status {
	if len(a.faults) == 0 {
		return StatusNone
	}
	agg := StatusNone
	for _, fs := range a.faults {
		switch fs.status {
		case StatusLive:
			return StatusLive
		case StatusConsumed:
			agg = StatusConsumed
		case StatusArmed:
			if agg != StatusConsumed {
				agg = StatusArmed
			}
		case StatusOverwritten, StatusSkippedInvalid:
			if agg == StatusNone {
				agg = fs.status
			}
		}
	}
	return agg
}

// ArmedFault returns the first armed fault and whether any is armed.
func (a *Array) ArmedFault() (Fault, bool) {
	if len(a.faults) == 0 {
		return Fault{}, false
	}
	return a.faults[0].f, true
}

// Faults returns the armed faults, in arming order. The detail-window
// scheduler inspects them to decide whether residual corruption can
// still be serving from the array.
func (a *Array) Faults() []Fault {
	fs := make([]Fault, len(a.faults))
	for i, s := range a.faults {
		fs[i] = s.f
	}
	return fs
}

// FaultsApplied reports whether the fault machinery is done *changing*
// this array: every armed fault has had its flip applied (or was skipped
// on an invalid entry) and no stuck-at window is still forcing the bit.
// An armed-but-unapplied fault and an active intermittent or permanent
// fault keep the array unapplied — the cell's future content still
// depends on the fault machinery, so a cycle-accurate run may not leave
// the detail window yet. A live-but-unread transient does NOT block:
// once the flip is in the cell, its effect is ordinary (possibly
// corrupt) stored state, which an architectural capture of a drained
// machine carries over exactly — residency safety of cache and TLB
// cells is the caller's separate concern (see the simulators'
// residencySafe).
func (a *Array) FaultsApplied() bool {
	for _, fs := range a.faults {
		if fs.status == StatusArmed || fs.active {
			return false
		}
	}
	return true
}

// Tick advances every fault's state machine to cycle. The simulator core
// calls it once per cycle before doing any work for that cycle. It
// returns the aggregate status so the campaign controller can early-stop.
func (a *Array) Tick(cycle uint64) Status {
	if len(a.faults) == 0 {
		return StatusNone
	}
	a.tickCycle = cycle
	for _, fs := range a.faults {
		switch fs.status {
		case StatusArmed:
			if cycle >= fs.f.Start {
				a.apply(fs)
			}
		case StatusLive, StatusConsumed:
			if fs.f.Kind == Intermittent && fs.active && cycle >= fs.f.Start+fs.f.Duration {
				fs.active = false
			}
		}
	}
	a.updateObs()
	return a.FaultStatus()
}

// apply performs the initial injection at the start cycle.
func (a *Array) apply(fs *faultState) {
	if !a.EntryValid(fs.f.Entry) && fs.f.Kind == Transient {
		fs.status = StatusSkippedInvalid
		return
	}
	switch fs.f.Kind {
	case Transient:
		a.rawFlip(fs.f.Entry, fs.f.Bit)
		fs.status = StatusLive
	case Intermittent, Permanent:
		// The cell is forced to the stuck value for the window; a
		// write during the window cannot change the cell.
		a.rawSet(fs.f.Entry, fs.f.Bit, fs.f.StuckVal)
		fs.active = true
		fs.status = StatusLive
	}
}

// stuckActive reports whether a stuck-at window currently forces the bit.
func (fs *faultState) stuckActive() bool {
	return fs.active && (fs.f.Kind == Intermittent || fs.f.Kind == Permanent)
}

// observeRead is called on every word read when faults are armed. It
// applies stuck-at forcing and records read consumption.
func (a *Array) observeRead(entry, firstBit, nbits int, v uint64) uint64 {
	a.obsReads++
	changed := false
	for _, fs := range a.faults {
		if fs.status != StatusLive && fs.status != StatusConsumed {
			continue
		}
		if entry != fs.f.Entry || fs.f.Bit < firstBit || fs.f.Bit >= firstBit+nbits {
			continue
		}
		if fs.stuckActive() {
			mask := uint64(1) << uint(fs.f.Bit-firstBit)
			if fs.f.StuckVal != 0 {
				v |= mask
			} else {
				v &^= mask
			}
		}
		changed = changed || fs.status != StatusConsumed
		if !fs.observed {
			fs.observed, fs.obsCycle = true, a.tickCycle
		}
		fs.touches++
		fs.lastTouch = a.tickCycle
		fs.status = StatusConsumed
	}
	if changed {
		a.updateObs()
	}
	return v
}

// observeWrite is called on every word write when faults are armed. For a
// live transient fault a covering write that lands before any read proves
// masking. For an active stuck-at fault the cell refuses the new bit.
func (a *Array) observeWrite(entry, firstBit, nbits int, v uint64) uint64 {
	a.obsWrites++
	changed := false
	for _, fs := range a.faults {
		if entry != fs.f.Entry || fs.f.Bit < firstBit || fs.f.Bit >= firstBit+nbits {
			continue
		}
		if fs.stuckActive() {
			mask := uint64(1) << uint(fs.f.Bit-firstBit)
			if fs.f.StuckVal != 0 {
				v |= mask
			} else {
				v &^= mask
			}
			continue
		}
		if fs.status == StatusLive && fs.f.Kind == Transient {
			fs.status = StatusOverwritten
			changed = true
		}
	}
	if changed {
		a.updateObs()
	}
	return v
}

// observeReadBytes applies fault observation to a byte-range read result.
func (a *Array) observeReadBytes(entry, off, n int, dst []byte) {
	a.obsReads++
	first := off * 8
	changed := false
	for _, fs := range a.faults {
		if fs.status != StatusLive && fs.status != StatusConsumed {
			continue
		}
		if entry != fs.f.Entry || fs.f.Bit < first || fs.f.Bit >= first+n*8 {
			continue
		}
		if fs.stuckActive() {
			rel := fs.f.Bit - first
			mask := byte(1) << uint(rel%8)
			if fs.f.StuckVal != 0 {
				dst[rel/8] |= mask
			} else {
				dst[rel/8] &^= mask
			}
		}
		changed = changed || fs.status != StatusConsumed
		if !fs.observed {
			fs.observed, fs.obsCycle = true, a.tickCycle
		}
		fs.touches++
		fs.lastTouch = a.tickCycle
		fs.status = StatusConsumed
	}
	if changed {
		a.updateObs()
	}
}

// observeWriteBytes applies fault observation to a byte-range write. It
// returns the (possibly forced) bytes to store; it never modifies src in
// place.
func (a *Array) observeWriteBytes(entry, off int, src []byte) []byte {
	a.obsWrites++
	first := off * 8
	out := src
	changed := false
	for _, fs := range a.faults {
		if entry != fs.f.Entry || fs.f.Bit < first || fs.f.Bit >= first+len(src)*8 {
			continue
		}
		if fs.stuckActive() {
			if &out[0] == &src[0] {
				out = make([]byte, len(src))
				copy(out, src)
			}
			rel := fs.f.Bit - first
			mask := byte(1) << uint(rel%8)
			if fs.f.StuckVal != 0 {
				out[rel/8] |= mask
			} else {
				out[rel/8] &^= mask
			}
			continue
		}
		if fs.status == StatusLive && fs.f.Kind == Transient {
			fs.status = StatusOverwritten
			changed = true
		}
	}
	if changed {
		a.updateObs()
	}
	return out
}

// InvalidateObserve tells the array that entry was invalidated (its live
// state discarded) by the structure that owns it. A live transient fault
// in a discarded entry can never be read again, so it is equivalent to
// overwritten-before-read.
func (a *Array) InvalidateObserve(entry int) {
	if a.prof != nil {
		// Invalidation discards the entry's live state whatever the bit,
		// so the event covers the whole entry.
		a.profRecord(AccessEvict, entry, 0, a.bitsPerEntry)
	}
	changed := false
	for _, fs := range a.faults {
		if fs.status == StatusLive && fs.f.Kind == Transient && entry == fs.f.Entry {
			fs.status = StatusOverwritten
			changed = true
		}
	}
	if changed {
		a.updateObs()
	}
}
