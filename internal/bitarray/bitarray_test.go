package bitarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	a := New("rf", 256, 64)
	if a.Entries() != 256 || a.BitsPerEntry() != 64 {
		t.Fatalf("geometry = %d×%d, want 256×64", a.Entries(), a.BitsPerEntry())
	}
	if a.TotalBits() != 256*64 {
		t.Fatalf("TotalBits = %d, want %d", a.TotalBits(), 256*64)
	}
	if a.Name() != "rf" {
		t.Fatalf("Name = %q, want rf", a.Name())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, g := range [][2]int{{0, 8}, {8, 0}, {-1, 8}, {8, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", g[0], g[1])
				}
			}()
			New("bad", g[0], g[1])
		}()
	}
}

func TestWordRoundTrip(t *testing.T) {
	a := New("rf", 8, 64)
	a.WriteUint64(3, 0xdeadbeefcafef00d)
	if got := a.ReadUint64(3); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadUint64 = %#x", got)
	}
	if got := a.ReadUint64(2); got != 0 {
		t.Fatalf("neighbouring entry disturbed: %#x", got)
	}
}

func TestByteRoundTrip(t *testing.T) {
	a := New("line", 4, 512) // 64-byte cache lines
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i * 7)
	}
	a.WriteBytes(1, 0, src)
	dst := make([]byte, 64)
	a.ReadBytes(1, 0, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, dst[i], src[i])
		}
	}
	// Partial read within the line.
	part := make([]byte, 8)
	a.ReadBytes(1, 16, part)
	for i := range part {
		if part[i] != src[16+i] {
			t.Fatalf("partial byte %d = %#x, want %#x", i, part[i], src[16+i])
		}
	}
	// Partial unaligned write.
	a.WriteBytes(1, 5, []byte{0xaa, 0xbb, 0xcc})
	a.ReadBytes(1, 4, part)
	want := []byte{src[4], 0xaa, 0xbb, 0xcc, src[8], src[9], src[10], src[11]}
	for i := range part {
		if part[i] != want[i] {
			t.Fatalf("after unaligned write, byte %d = %#x, want %#x", i, part[i], want[i])
		}
	}
}

func TestBitAccess(t *testing.T) {
	a := New("v", 16, 1)
	a.WriteBit(5, 0, 1)
	if a.ReadBit(5, 0) != 1 {
		t.Fatal("bit not set")
	}
	a.WriteBit(5, 0, 0)
	if a.ReadBit(5, 0) != 0 {
		t.Fatal("bit not cleared")
	}
}

func TestAccessCounters(t *testing.T) {
	a := New("c", 4, 64)
	a.WriteUint64(0, 1)
	a.WriteUint64(1, 2)
	_ = a.ReadUint64(0)
	if a.Reads() != 1 || a.Writes() != 2 {
		t.Fatalf("reads=%d writes=%d, want 1,2", a.Reads(), a.Writes())
	}
}

func TestTransientFlipAndConsume(t *testing.T) {
	a := New("rf", 8, 64)
	a.WriteUint64(2, 0)
	a.Arm(Fault{Kind: Transient, Entry: 2, Bit: 5, Start: 10})
	if st := a.Tick(9); st != StatusArmed {
		t.Fatalf("status before start = %v", st)
	}
	if st := a.Tick(10); st != StatusLive {
		t.Fatalf("status at start = %v", st)
	}
	got := a.ReadUint64(2)
	if got != 1<<5 {
		t.Fatalf("flipped value = %#x, want %#x", got, uint64(1<<5))
	}
	if a.FaultStatus() != StatusConsumed {
		t.Fatalf("after read status = %v, want consumed", a.FaultStatus())
	}
}

func TestTransientOverwrittenBeforeRead(t *testing.T) {
	a := New("rf", 8, 64)
	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 63, Start: 0})
	a.Tick(0)
	a.WriteUint64(1, 0x1234) // covers bit 63 before any read
	if a.FaultStatus() != StatusOverwritten {
		t.Fatalf("status = %v, want overwritten", a.FaultStatus())
	}
	if got := a.ReadUint64(1); got != 0x1234 {
		t.Fatalf("value after overwrite = %#x", got)
	}
}

func TestTransientReadThenWriteStaysConsumed(t *testing.T) {
	a := New("rf", 8, 64)
	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 0, Start: 0})
	a.Tick(0)
	_ = a.ReadUint64(1)
	a.WriteUint64(1, 0)
	if a.FaultStatus() != StatusConsumed {
		t.Fatalf("status = %v, want consumed (read happened first)", a.FaultStatus())
	}
}

func TestTransientOtherEntryDoesNotConsume(t *testing.T) {
	a := New("rf", 8, 64)
	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 0, Start: 0})
	a.Tick(0)
	_ = a.ReadUint64(2)
	a.WriteUint64(3, 9)
	if a.FaultStatus() != StatusLive {
		t.Fatalf("status = %v, want live", a.FaultStatus())
	}
}

func TestInvalidEntrySkip(t *testing.T) {
	a := New("lsq", 8, 64)
	a.SetValidFunc(func(e int) bool { return e != 4 })
	a.Arm(Fault{Kind: Transient, Entry: 4, Bit: 1, Start: 0})
	if st := a.Tick(0); st != StatusSkippedInvalid {
		t.Fatalf("status = %v, want skipped-invalid", st)
	}
	if got := a.ReadUint64(4); got != 0 {
		t.Fatalf("storage disturbed by skipped fault: %#x", got)
	}
}

func TestPermanentStuckAt1(t *testing.T) {
	a := New("rf", 4, 64)
	a.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 3, StuckVal: 1, Start: 0})
	a.Tick(0)
	if got := a.ReadUint64(0); got != 1<<3 {
		t.Fatalf("stuck-at-1 read = %#x, want %#x", got, uint64(1<<3))
	}
	// A write cannot clear the stuck cell.
	a.WriteUint64(0, 0)
	if got := a.ReadUint64(0); got != 1<<3 {
		t.Fatalf("after write, stuck-at-1 read = %#x, want %#x", got, uint64(1<<3))
	}
	// Other bits written normally.
	a.WriteUint64(0, 0xf0)
	if got := a.ReadUint64(0); got != 0xf0|1<<3 {
		t.Fatalf("read = %#x, want %#x", got, uint64(0xf0|1<<3))
	}
}

func TestPermanentStuckAt0(t *testing.T) {
	a := New("rf", 4, 64)
	a.WriteUint64(1, ^uint64(0))
	a.Arm(Fault{Kind: Permanent, Entry: 1, Bit: 60, StuckVal: 0, Start: 5})
	a.Tick(5)
	if got := a.ReadUint64(1); got != ^uint64(0)&^(1<<60) {
		t.Fatalf("stuck-at-0 read = %#x", got)
	}
}

func TestIntermittentWindow(t *testing.T) {
	a := New("rf", 4, 64)
	a.Arm(Fault{Kind: Intermittent, Entry: 0, Bit: 0, StuckVal: 1, Start: 10, Duration: 5})
	a.Tick(9)
	if got := a.ReadUint64(0); got != 0 {
		t.Fatalf("before window read = %#x, want 0", got)
	}
	a.Tick(10)
	if got := a.ReadUint64(0); got != 1 {
		t.Fatalf("in window read = %#x, want 1", got)
	}
	a.WriteUint64(0, 0) // cell refuses the write during the window
	if got := a.ReadUint64(0); got != 1 {
		t.Fatalf("in window after write read = %#x, want 1", got)
	}
	a.Tick(15) // window over
	a.WriteUint64(0, 0)
	if got := a.ReadUint64(0); got != 0 {
		t.Fatalf("after window read = %#x, want 0", got)
	}
}

func TestIntermittentResidueAfterWindow(t *testing.T) {
	// If nothing rewrites the cell after the window, the stuck value
	// remains stored (the cell could not hold writes during the window).
	a := New("rf", 4, 64)
	a.WriteUint64(0, 0)
	a.Arm(Fault{Kind: Intermittent, Entry: 0, Bit: 2, StuckVal: 1, Start: 0, Duration: 3})
	a.Tick(0)
	a.Tick(10)
	if got := a.ReadUint64(0); got != 1<<2 {
		t.Fatalf("residue read = %#x, want %#x", got, uint64(1<<2))
	}
}

func TestByteRangeFaultObservation(t *testing.T) {
	a := New("line", 2, 512)
	// Fault at byte 20, bit 3 → bit position 163.
	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 20*8 + 3, Start: 0})
	a.Tick(0)
	// A read of bytes [0,8) does not touch it.
	buf := make([]byte, 8)
	a.ReadBytes(1, 0, buf)
	if a.FaultStatus() != StatusLive {
		t.Fatalf("status after non-covering read = %v", a.FaultStatus())
	}
	// A write of bytes [16,24) covers it → overwritten.
	a.WriteBytes(1, 16, make([]byte, 8))
	if a.FaultStatus() != StatusOverwritten {
		t.Fatalf("status after covering write = %v", a.FaultStatus())
	}
}

func TestByteRangeConsume(t *testing.T) {
	a := New("line", 2, 512)
	a.WriteBytes(0, 0, make([]byte, 64))
	a.Arm(Fault{Kind: Transient, Entry: 0, Bit: 9, Start: 0}) // byte 1, bit 1
	a.Tick(0)
	buf := make([]byte, 4)
	a.ReadBytes(0, 0, buf)
	if a.FaultStatus() != StatusConsumed {
		t.Fatalf("status = %v, want consumed", a.FaultStatus())
	}
	if buf[1] != 1<<1 {
		t.Fatalf("flipped byte = %#x, want %#x", buf[1], byte(1<<1))
	}
}

func TestStuckAtByteRange(t *testing.T) {
	a := New("line", 1, 512)
	a.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 8, StuckVal: 1, Start: 0})
	a.Tick(0)
	src := make([]byte, 64)
	a.WriteBytes(0, 0, src)
	if src[1] != 0 {
		t.Fatal("observeWriteBytes modified caller's slice")
	}
	dst := make([]byte, 64)
	a.ReadBytes(0, 0, dst)
	if dst[1] != 1 {
		t.Fatalf("stuck byte = %#x, want 1", dst[1])
	}
}

func TestInvalidateObserve(t *testing.T) {
	a := New("lsq", 8, 64)
	a.Arm(Fault{Kind: Transient, Entry: 3, Bit: 0, Start: 0})
	a.Tick(0)
	a.InvalidateObserve(2)
	if a.FaultStatus() != StatusLive {
		t.Fatalf("status after unrelated invalidate = %v", a.FaultStatus())
	}
	a.InvalidateObserve(3)
	if a.FaultStatus() != StatusOverwritten {
		t.Fatalf("status after invalidate = %v, want overwritten", a.FaultStatus())
	}
}

func TestSnapshotRestore(t *testing.T) {
	a := New("rf", 4, 64)
	a.WriteUint64(0, 111)
	a.WriteUint64(3, 333)
	snap := a.Snapshot()
	a.WriteUint64(0, 999)
	a.RestoreSnapshot(snap)
	if a.ReadUint64(0) != 111 || a.ReadUint64(3) != 333 {
		t.Fatal("restore did not bring back snapshot state")
	}
}

func TestArmPanicsOutOfRange(t *testing.T) {
	a := New("rf", 4, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("Arm out of range did not panic")
		}
	}()
	a.Arm(Fault{Kind: Transient, Entry: 4, Bit: 0})
}

// Property: for any sequence of writes with no fault armed, reads return
// exactly what was written (the array is plain storage).
func TestPropPlainStorage(t *testing.T) {
	f := func(vals []uint64) bool {
		a := New("p", 16, 64)
		want := make(map[int]uint64)
		for i, v := range vals {
			e := i % 16
			a.WriteUint64(e, v)
			want[e] = v
		}
		for e, v := range want {
			if a.ReadUint64(e) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a transient fault flips exactly one bit — the armed one — and
// every other entry and bit is untouched.
func TestPropTransientFlipsExactlyOneBit(t *testing.T) {
	f := func(seed int64, entry8, bit6 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New("p", 8, 64)
		orig := make([]uint64, 8)
		for e := range orig {
			orig[e] = rng.Uint64()
			a.WriteUint64(e, orig[e])
		}
		entry := int(entry8 % 8)
		bit := int(bit6 % 64)
		a.Arm(Fault{Kind: Transient, Entry: entry, Bit: bit, Start: 0})
		a.Tick(0)
		for e := 0; e < 8; e++ {
			want := orig[e]
			if e == entry {
				want ^= 1 << uint(bit)
			}
			if a.ReadUint64(e) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: overwrite-before-read always yields StatusOverwritten and
// leaves the stored value equal to the written value, i.e. the fault is
// provably masked.
func TestPropOverwriteMasks(t *testing.T) {
	f := func(v uint64, bit6 uint8) bool {
		a := New("p", 1, 64)
		bit := int(bit6 % 64)
		a.Arm(Fault{Kind: Transient, Entry: 0, Bit: bit, Start: 0})
		a.Tick(0)
		a.WriteUint64(0, v)
		return a.FaultStatus() == StatusOverwritten && a.ReadUint64(0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: under a permanent stuck-at fault, every read observes the
// stuck value at the armed bit regardless of the write sequence.
func TestPropPermanentAlwaysStuck(t *testing.T) {
	f := func(writes []uint64, bit6, sv uint8) bool {
		a := New("p", 1, 64)
		bit := int(bit6 % 64)
		stuck := sv & 1
		a.Arm(Fault{Kind: Permanent, Entry: 0, Bit: bit, StuckVal: stuck, Start: 0})
		a.Tick(0)
		for _, w := range writes {
			a.WriteUint64(0, w)
			got := a.ReadUint64(0)
			if uint8(got>>uint(bit))&1 != stuck {
				return false
			}
			// All other bits must equal the written value.
			mask := ^(uint64(1) << uint(bit))
			if got&mask != w&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadWord(b *testing.B) {
	a := New("rf", 256, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.ReadWord(i&255, 0)
	}
}

func BenchmarkReadWordWithFaultArmed(b *testing.B) {
	a := New("rf", 256, 64)
	a.Arm(Fault{Kind: Permanent, Entry: 7, Bit: 3, StuckVal: 1, Start: 0})
	a.Tick(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.ReadWord(i&255, 0)
	}
}

func TestMultipleArmedFaults(t *testing.T) {
	// Two independent transient faults on one array — a multi-bit upset.
	a := New("mbu", 8, 64)
	a.Arm(Fault{Kind: Transient, Entry: 2, Bit: 0, Start: 0})
	a.Arm(Fault{Kind: Transient, Entry: 2, Bit: 1, Start: 0})
	if st := a.Tick(0); st != StatusLive {
		t.Fatalf("aggregate after apply = %v", st)
	}
	if got := a.ReadUint64(2); got != 3 {
		t.Fatalf("double flip read = %#x, want 3", got)
	}
	if a.FaultStatus() != StatusConsumed {
		t.Fatalf("aggregate after read = %v", a.FaultStatus())
	}

	// One fault overwritten, the other still live: aggregate must stay
	// live (no early stop while any fault can still propagate).
	b := New("mbu2", 8, 64)
	b.Arm(Fault{Kind: Transient, Entry: 1, Bit: 5, Start: 0})
	b.Arm(Fault{Kind: Transient, Entry: 3, Bit: 9, Start: 0})
	b.Tick(0)
	b.WriteUint64(1, 0) // masks the first fault only
	if st := b.FaultStatus(); st != StatusLive {
		t.Fatalf("aggregate with one live fault = %v, want live", st)
	}
	b.WriteUint64(3, 0)
	if st := b.FaultStatus(); st != StatusOverwritten {
		t.Fatalf("aggregate with all masked = %v, want overwritten", st)
	}
}

func TestDisarmClearsAll(t *testing.T) {
	a := New("d", 4, 8)
	a.Arm(Fault{Kind: Transient, Entry: 0, Bit: 0, Start: 0})
	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 1, Start: 0})
	a.Disarm()
	if a.FaultStatus() != StatusNone {
		t.Fatal("disarm left faults armed")
	}
}

func TestStuckAtPairForcesBothBits(t *testing.T) {
	a := New("p", 2, 64)
	a.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 0, StuckVal: 1, Start: 0})
	a.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 1, StuckVal: 1, Start: 0})
	a.Tick(0)
	a.WriteUint64(0, 0)
	if got := a.ReadUint64(0); got != 3 {
		t.Fatalf("double stuck read = %#x, want 3", got)
	}
}
