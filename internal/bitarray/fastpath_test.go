package bitarray

import "testing"

// benchSink defeats dead-code elimination in the benchmarks.
var benchSink uint64

// trace runs one deterministic access mix over the array and records
// every value read plus the final counters, so two arrays can be
// compared access-for-access.
func trace(a *Array) (reads []uint64, nr, nw uint64) {
	buf := make([]byte, 8)
	for cyc := uint64(0); cyc < 400; cyc++ {
		a.Tick(cyc)
		e := int(cyc) % a.Entries()
		a.WriteUint64(e, 0x8000_0000_0000_0000|cyc)
		reads = append(reads, a.ReadUint64(e))
		a.WriteBytes(e, 2, []byte{byte(cyc), byte(cyc >> 8)})
		a.ReadBytes(e, 0, buf)
		for _, b := range buf {
			reads = append(reads, uint64(b))
		}
	}
	return reads, a.Reads(), a.Writes()
}

// An armed-then-expired fault must leave the read/write traces and the
// Reads()/Writes() counters identical to a fault-free array: the fast
// path may skip observation bookkeeping, but never an actual access.
func TestFastPathTraceParity(t *testing.T) {
	clean := New("s", 8, 64)
	faulty := New("s", 8, 64)
	// Intermittent stuck-at-1 on a bit the written pattern always holds
	// at 1 (bit 63 of 0x8000...|cyc, untouched by the byte writes), so
	// the active window forces the cell to the value it would have
	// anyway and the traces stay byte-identical even while the fault is
	// live.
	faulty.Arm(Fault{Kind: Intermittent, Entry: 3, Bit: 63, StuckVal: 1, Start: 50, Duration: 100})
	if !faulty.needObs {
		t.Fatal("Arm did not raise the observation gate")
	}

	cr, crr, crw := trace(clean)
	fr, frr, frw := trace(faulty)
	if len(cr) != len(fr) {
		t.Fatalf("trace lengths differ: %d vs %d", len(cr), len(fr))
	}
	for i := range cr {
		if cr[i] != fr[i] {
			t.Fatalf("read %d differs: clean %#x, faulty %#x", i, cr[i], fr[i])
		}
	}
	if crr != frr || crw != frw {
		t.Fatalf("counters differ: clean %d/%d, faulty %d/%d", crr, crw, frr, frw)
	}
	// The window expired at cycle 150, so after the trace the gate must
	// be down again while the consumed status is still reported.
	if faulty.needObs {
		t.Fatal("observation gate still up after the stuck-at window expired")
	}
	if st := faulty.FaultStatus(); st != StatusConsumed {
		t.Fatalf("expired fault status = %v, want StatusConsumed", st)
	}
}

// The gate must track the fault lifecycle exactly: up from Arm through
// the live window, down once every fault is inert.
func TestFastPathGateLifecycle(t *testing.T) {
	a := New("s", 4, 64)
	a.WriteUint64(1, 42) // make the entry live before the fault lands

	a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 5, Start: 10})
	if !a.needObs {
		t.Fatal("gate down after Arm")
	}
	// Before Start the fault is armed but unapplied: every observe
	// function skips it, so the first Tick may lower the gate.
	a.Tick(5)
	if a.needObs {
		t.Fatal("gate up for an armed-but-unapplied fault after Tick")
	}
	a.Tick(10) // injection: live
	if !a.needObs {
		t.Fatal("gate down while fault is live")
	}
	a.ReadUint64(1) // consuming read: transient becomes inert
	if a.needObs {
		t.Fatal("gate up after the transient was consumed")
	}
	if st := a.FaultStatus(); st != StatusConsumed {
		t.Fatalf("status = %v, want StatusConsumed", st)
	}

	// A masking write on a second live transient also lowers the gate.
	b := New("s", 4, 64)
	b.WriteUint64(2, 7)
	b.Arm(Fault{Kind: Transient, Entry: 2, Bit: 0, Start: 0})
	b.Tick(0)
	if !b.needObs {
		t.Fatal("gate down while fault is live")
	}
	b.WriteUint64(2, 7)
	if b.needObs {
		t.Fatal("gate up after the transient was overwritten")
	}
	if st := b.FaultStatus(); st != StatusOverwritten {
		t.Fatalf("status = %v, want StatusOverwritten", st)
	}

	// Disarm always lowers the gate.
	c := New("s", 4, 64)
	c.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 0, StuckVal: 1, Start: 0})
	c.Tick(0)
	if !c.needObs {
		t.Fatal("gate down while a permanent fault forces the cell")
	}
	c.Disarm()
	if c.needObs {
		t.Fatal("gate up after Disarm")
	}
}

// An intermittent window that expires must lower the gate even with no
// intervening access, and a permanent fault must keep it up forever.
func TestFastPathGateExpiry(t *testing.T) {
	a := New("s", 4, 64)
	a.WriteUint64(0, 1)
	a.Arm(Fault{Kind: Intermittent, Entry: 0, Bit: 3, StuckVal: 1, Start: 10, Duration: 20})
	a.Tick(10)
	if !a.needObs {
		t.Fatal("gate down inside the stuck-at window")
	}
	a.Tick(29)
	if !a.needObs {
		t.Fatal("gate down one cycle before expiry")
	}
	a.Tick(30)
	if a.needObs {
		t.Fatal("gate up after the window expired")
	}

	p := New("s", 4, 64)
	p.Arm(Fault{Kind: Permanent, Entry: 0, Bit: 3, StuckVal: 1, Start: 0})
	for cyc := uint64(0); cyc < 1000; cyc += 100 {
		p.Tick(cyc)
		if !p.needObs {
			t.Fatalf("gate down at cycle %d for a permanent fault", cyc)
		}
	}
}

// benchArray builds a 64×64 array with every entry written once.
func benchArray() *Array {
	a := New("s", 64, 64)
	for e := 0; e < 64; e++ {
		a.WriteUint64(e, uint64(e)*0x9e3779b97f4a7c15)
	}
	return a
}

// The inert-fault paths are the hot loops of every injection run after
// its fault settles (consumed, overwritten, or expired); these
// benchmarks pin the fast-path win over the always-observe baseline
// (compare BenchmarkReadWordWithFaultArmed for the live stuck-at cost).
func BenchmarkReadWordInertFault(b *testing.B) {
	cases := []struct {
		name string
		prep func(*Array)
	}{
		{"ExpiredIntermittent", func(a *Array) {
			a.Arm(Fault{Kind: Intermittent, Entry: 1, Bit: 2, StuckVal: 1, Start: 0, Duration: 5})
			a.Tick(0)
			a.Tick(10) // window over: fault inert, still armed on the array
		}},
		{"ConsumedTransient", func(a *Array) {
			a.Arm(Fault{Kind: Transient, Entry: 1, Bit: 2, Start: 0})
			a.Tick(0)
			a.ReadUint64(1) // consume it
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			a := benchArray()
			c.prep(a)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink ^= a.ReadWord(i&63, 0)
			}
		})
	}
}

func BenchmarkWriteWordInertFault(b *testing.B) {
	for _, armed := range []bool{false, true} {
		name := "NoFault"
		if armed {
			name = "ExpiredIntermittent"
		}
		b.Run(name, func(b *testing.B) {
			a := benchArray()
			if armed {
				a.Arm(Fault{Kind: Intermittent, Entry: 1, Bit: 2, StuckVal: 1, Start: 0, Duration: 5})
				a.Tick(0)
				a.Tick(10)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.WriteWord(i&63, 0, uint64(i))
			}
		})
	}
}
