package bitarray

import "testing"

// fakeClock is a settable cycle source for profiling tests.
type fakeClock struct{ c uint64 }

func (f *fakeClock) now() uint64 { return f.c }

func TestProfileRecordsAccessRanges(t *testing.T) {
	a := New("l1d.data", 4, 512)
	clk := &fakeClock{}
	a.StartProfile(clk.now)

	clk.c = 10
	a.ReadWord(1, 0)
	clk.c = 20
	a.WriteWord(1, 2, 0xABCD)
	clk.c = 30
	a.ReadBytes(2, 3, make([]byte, 4))
	clk.c = 40
	a.WriteBytes(2, 8, []byte{1, 2})
	clk.c = 50
	a.WriteBit(3, 70, 1)
	clk.c = 60
	a.InvalidateObserve(3)

	p := a.StopProfile()
	if p == nil {
		t.Fatal("StopProfile returned nil after StartProfile")
	}
	if p.Name != "l1d.data" || p.Entries != 4 || p.BitsPerEntry != 512 {
		t.Fatalf("profile header %q %d×%d", p.Name, p.Entries, p.BitsPerEntry)
	}
	want := map[int][]ProfileEvent{
		1: {
			{Cycle: 10, FirstBit: 0, NBits: 64, Kind: AccessRead},
			{Cycle: 20, FirstBit: 128, NBits: 64, Kind: AccessWrite},
		},
		2: {
			{Cycle: 30, FirstBit: 24, NBits: 32, Kind: AccessRead},
			{Cycle: 40, FirstBit: 64, NBits: 16, Kind: AccessWrite},
		},
		3: {
			// A single-bit write covers its whole word, like the
			// observation slow path does.
			{Cycle: 50, FirstBit: 64, NBits: 64, Kind: AccessWrite},
			{Cycle: 60, FirstBit: 0, NBits: 512, Kind: AccessEvict},
		},
	}
	for e, evs := range want {
		if got := p.Events[e]; len(got) != len(evs) {
			t.Fatalf("entry %d: %d events, want %d: %v", e, len(got), len(evs), got)
		}
		for i, ev := range evs {
			if p.Events[e][i] != ev {
				t.Errorf("entry %d event %d = %+v, want %+v", e, i, p.Events[e][i], ev)
			}
		}
	}
	if n := p.EventCount(); n != 6 {
		t.Errorf("EventCount = %d, want 6", n)
	}
}

func TestProfileReadBitRoutesThroughWord(t *testing.T) {
	a := New("valid", 8, 1)
	clk := &fakeClock{c: 5}
	a.StartProfile(clk.now)
	a.ReadBit(3, 0)
	p := a.StopProfile()
	evs := p.Events[3]
	if len(evs) != 1 || evs[0].Kind != AccessRead || evs[0].NBits != 64 {
		t.Fatalf("ReadBit events = %v", evs)
	}
}

func TestNextCovering(t *testing.T) {
	p := &Profile{
		Name: "x", Entries: 2, BitsPerEntry: 128,
		Events: [][]ProfileEvent{
			{
				{Cycle: 10, FirstBit: 0, NBits: 64, Kind: AccessWrite},
				{Cycle: 20, FirstBit: 64, NBits: 64, Kind: AccessRead},
				{Cycle: 30, FirstBit: 0, NBits: 128, Kind: AccessEvict},
			},
			nil,
		},
	}
	// Injection before the first event of the word: the write covers it.
	if i, ev, ok := p.NextCovering(0, 5, 0); !ok || i != 0 || ev.Kind != AccessWrite {
		t.Fatalf("bit 5 cycle 0: i=%d ev=%+v ok=%v", i, ev, ok)
	}
	// The fault machine ticks before the cycle's accesses, so an access
	// in the injection cycle itself counts.
	if i, ev, ok := p.NextCovering(0, 5, 10); !ok || i != 0 || ev.Kind != AccessWrite {
		t.Fatalf("bit 5 cycle 10: i=%d ev=%+v ok=%v", i, ev, ok)
	}
	// After the write, the next covering event of bit 5 is the eviction.
	if i, ev, ok := p.NextCovering(0, 5, 11); !ok || i != 2 || ev.Kind != AccessEvict {
		t.Fatalf("bit 5 cycle 11: i=%d ev=%+v ok=%v", i, ev, ok)
	}
	// Bit 70 is covered by the read at 20.
	if i, ev, ok := p.NextCovering(0, 70, 11); !ok || i != 1 || ev.Kind != AccessRead {
		t.Fatalf("bit 70 cycle 11: i=%d ev=%+v ok=%v", i, ev, ok)
	}
	// Past every event: never accessed again.
	if _, _, ok := p.NextCovering(0, 5, 31); ok {
		t.Fatal("bit 5 cycle 31 should have no covering event")
	}
	// Untouched entry and out-of-range entries.
	if _, _, ok := p.NextCovering(1, 0, 0); ok {
		t.Fatal("entry 1 should have no events")
	}
	if _, _, ok := p.NextCovering(-1, 0, 0); ok {
		t.Fatal("entry -1 should be rejected")
	}
}

func TestStopProfileWithoutStart(t *testing.T) {
	a := New("x", 1, 64)
	if p := a.StopProfile(); p != nil {
		t.Fatalf("StopProfile without StartProfile = %+v", p)
	}
	// Unprofiled accesses must not record or panic.
	a.ReadWord(0, 0)
	a.WriteWord(0, 0, 1)
}

func TestProfileCoexistsWithObservation(t *testing.T) {
	// Profiling a run with an armed fault must not disturb the fault
	// state machine (campaigns never do this, but the hooks sit on the
	// same accessors).
	a := New("x", 2, 64)
	a.Arm(Fault{Kind: Transient, Entry: 0, Bit: 3, Start: 1})
	clk := &fakeClock{}
	a.StartProfile(clk.now)
	a.Tick(1)
	clk.c = 2
	a.WriteWord(0, 0, 0)
	if st := a.FaultStatus(); st != StatusOverwritten {
		t.Fatalf("fault status = %v, want overwritten", st)
	}
	p := a.StopProfile()
	if p.EventCount() != 1 {
		t.Fatalf("EventCount = %d", p.EventCount())
	}
}
